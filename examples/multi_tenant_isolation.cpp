// multi_tenant_isolation.cpp — the security story (use-case 1 of the
// paper): two tenants on one converged cluster must not be able to read
// or interfere with each other's RDMA traffic.
//
// Demonstrates, end to end:
//   1. each tenant's job gets its own VNI;
//   2. cross-VNI traffic never delivers (switch ACLs / NIC VNI binding);
//   3. the UID-spoof attack — setuid() inside a user-namespaced
//      container — defeats the legacy driver but NOT the netns-extended
//      driver the paper contributes.
//
//   $ ./build/examples/multi_tenant_isolation
#include <cstdio>

#include "core/stack.hpp"
#include "util/log.hpp"

using namespace shs;

namespace {

core::SlingshotStack::PodHandle pod_proc(core::SlingshotStack& stack,
                                         k8s::Uid job) {
  for (const auto& pod : stack.pods_of_job(job)) {
    if (pod.status.phase == k8s::PodPhase::kRunning) {
      return stack.exec_in_pod(pod.meta.uid).value();
    }
  }
  std::abort();
}

k8s::Pod running_pod(core::SlingshotStack& stack, k8s::Uid job) {
  for (const auto& pod : stack.pods_of_job(job)) {
    if (pod.status.phase == k8s::PodPhase::kRunning) return pod;
  }
  std::abort();
}

}  // namespace

int main() {
  Log::set_level(LogLevel::kWarn);
  std::printf("== multi-tenant isolation on Slingshot-K8s ==\n\n");

  core::SlingshotStack stack;

  // Two tenants, one job each.
  auto tenant_a = stack.submit_job({.name = "tenant-a-solver",
                                    .ns = "tenant-a",
                                    .vni_annotation = "true",
                                    .pods = 1,
                                    .run_duration = 600 * kSecond});
  auto tenant_b = stack.submit_job({.name = "tenant-b-analytics",
                                    .ns = "tenant-b",
                                    .vni_annotation = "true",
                                    .pods = 1,
                                    .run_duration = 600 * kSecond});
  stack.wait_job_start(tenant_a.value());
  stack.wait_job_start(tenant_b.value());

  const auto pod_a = running_pod(stack, tenant_a.value());
  const auto pod_b = running_pod(stack, tenant_b.value());
  std::printf("[1] tenant A job on %s with VNI %u\n",
              pod_a.status.node.c_str(), pod_a.status.vni);
  std::printf("    tenant B job on %s with VNI %u\n",
              pod_b.status.node.c_str(), pod_b.status.vni);

  // 2. Tenant A tries to reach tenant B.
  auto ha = pod_proc(stack, tenant_a.value());
  auto hb = pod_proc(stack, tenant_b.value());
  auto dom_a = stack.domain_for(ha).value();
  auto dom_b = stack.domain_for(hb).value();

  auto cross = dom_a.open_endpoint(pod_b.status.vni);
  std::printf("\n[2] tenant A requests an endpoint on tenant B's VNI %u:\n"
              "    -> %s\n",
              pod_b.status.vni, cross.status().to_string().c_str());

  auto ep_a = dom_a.open_endpoint(pod_a.status.vni).value();
  auto ep_b = dom_b.open_endpoint(pod_b.status.vni).value();
  auto send = ep_a->tsend(ep_b->addr(), 1, {}, 64, 0);
  std::printf("    tenant A sends on its own VNI to B's endpoint address:\n"
              "    -> %s\n",
              send.is_ok() ? "accepted by the switch (same-node case), but "
                             "the NIC drops the VNI mismatch"
                           : send.status().to_string().c_str());
  auto rx = ep_b->trecv_sync(1, {}, 100);
  std::printf("    tenant B's receive: %s  (nothing ever arrives)\n",
              rx.status().to_string().c_str());

  // 3. The spoofing attack, against both driver generations.
  std::printf("\n[3] UID-spoof attack (setuid(0->victim) inside a "
              "user-namespaced container):\n");
  auto attacker = pod_proc(stack, tenant_b.value());
  auto& node = stack.node(attacker.node_index);
  (void)node.kernel->setuid(attacker.pid, 0);  // ns-root, mapped uid

  // 3a. netns-extended driver (the paper's contribution): blocked.
  auto dom_attacker = stack.domain_for(attacker).value();
  auto spoof = dom_attacker.open_endpoint(pod_a.status.vni);
  std::printf("    netns-extended driver: %s\n",
              spoof.status().to_string().c_str());

  // 3b. Flip the same node's driver to legacy mode and install the kind
  //     of UID-member service a pre-container deployment would have.
  node.driver->set_mode(cxi::AuthMode::kLegacyInNamespace);
  cxi::CxiServiceDesc legacy_svc;
  legacy_svc.name = "legacy-uid-1000";
  legacy_svc.members = {{cxi::MemberType::kUid, 1000}};
  legacy_svc.vnis = {pod_a.status.vni};
  (void)node.driver->svc_alloc(node.root_pid, legacy_svc);
  (void)node.kernel->setuid(attacker.pid, 1000);
  auto spoof_legacy = dom_attacker.open_endpoint(pod_a.status.vni);
  std::printf("    legacy driver + uid-member service: %s\n",
              spoof_legacy.is_ok()
                  ? "ENDPOINT GRANTED — the attack succeeds (this is the "
                    "gap the paper closes)"
                  : spoof_legacy.status().to_string().c_str());
  node.driver->set_mode(cxi::AuthMode::kNetnsExtended);

  // 4. Audit trail.
  std::printf("\n[4] VNI database audit log:\n");
  for (const auto& rec : stack.registry().audit_log()) {
    std::printf("    t=%6.2fs %-12s vni=%-6u %s\n", to_seconds(rec.ts),
                rec.op.c_str(), rec.vni, rec.detail.c_str());
  }

  std::printf("\nIsolation holds under the netns-extended stack; the legacy "
              "stack is spoofable.\n");
  return 0;
}
