// coscheduled_traffic_classes.cpp — use-case 1 of the paper's intro:
// "co-scheduling a low-latency critical application with a less
// latency-sensitive task such as check-pointing", using different
// Slingshot traffic classes so the bulk traffic cannot hurt the solver.
//
// One job, two workloads inside it: a latency-critical ping-pong on
// LOW_LATENCY and a checkpoint stream on BULK_DATA hammering the same
// destination port.  The demo measures solver latency with and without
// the competing checkpoint traffic.
//
//   $ ./build/examples/coscheduled_traffic_classes
#include <cstdio>
#include <thread>

#include "core/stack.hpp"
#include "osu/osu.hpp"
#include "util/log.hpp"

using namespace shs;

int main() {
  Log::set_level(LogLevel::kWarn);
  std::printf("== co-scheduled traffic classes: solver vs checkpointing "
              "==\n\n");

  core::SlingshotStack stack;
  auto job = stack.submit_job({.name = "coscheduled",
                               .vni_annotation = "true",
                               .pods = 2,
                               .run_duration = 600 * kSecond,
                               .spread_key = "cosched"});
  stack.wait_job_start(job.value());
  const auto pods = stack.pods_of_job(job.value());
  const hsn::Vni vni = pods[0].status.vni;
  std::printf("[1] job running on VNI %u, pods on %s and %s\n", vni,
              pods[0].status.node.c_str(), pods[1].status.node.c_str());

  auto h0 = stack.exec_in_pod(pods[0].meta.uid).value();
  auto h1 = stack.exec_in_pod(pods[1].meta.uid).value();
  auto dom0 = stack.domain_for(h0).value();
  auto dom1 = stack.domain_for(h1).value();

  // Solver endpoints: LOW_LATENCY class.
  auto solver0 =
      dom0.open_endpoint(vni, hsn::TrafficClass::kLowLatency).value();
  auto solver1 =
      dom1.open_endpoint(vni, hsn::TrafficClass::kLowLatency).value();
  // Checkpoint endpoints: BULK_DATA class.
  auto ckpt0 =
      dom0.open_endpoint(vni, hsn::TrafficClass::kBulkData).value();
  auto ckpt1 =
      dom1.open_endpoint(vni, hsn::TrafficClass::kBulkData).value();

  // 2. Solver latency on an idle fabric.
  auto comm = mpi::Communicator::create({solver0.get(), solver1.get()});
  osu::LatencyOptions opts;
  opts.iterations = 400;
  const double idle_lat = osu::run_osu_latency(*comm, 8, opts).value_or(-1);
  std::printf("[2] solver latency, idle fabric:        %.2f us\n", idle_lat);

  // 3. Start the checkpoint stream (4 MiB writes, BULK_DATA) and measure
  //    the solver again while the stream is running.
  std::atomic<bool> stop{false};
  std::thread checkpointer([&] {
    std::vector<std::byte> window(4 << 20);
    auto mr = ckpt1->mr_reg(window);
    if (!mr.is_ok()) return;
    SimTime vt = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      auto t = ckpt0->rma_write_sync(solver1->addr().nic, mr.value(), 0, {},
                                     window.size(), vt, 2000);
      if (!t.is_ok()) break;
      vt = t.value();
    }
  });
  const double busy_lat = osu::run_osu_latency(*comm, 8, opts).value_or(-1);
  stop.store(true);
  checkpointer.join();
  std::printf("[3] solver latency, checkpoint running: %.2f us "
              "(LOW_LATENCY rides a higher-priority class)\n",
              busy_lat);

  // 4. The same checkpoint stream measured on its own class.
  std::printf("[4] traffic-class queueing penalties (per hop, modeled):\n");
  for (const auto tc :
       {hsn::TrafficClass::kDedicatedAccess, hsn::TrafficClass::kLowLatency,
        hsn::TrafficClass::kBulkData, hsn::TrafficClass::kBestEffort}) {
    std::printf("    %-18s +%.2f us\n",
                std::string(hsn::traffic_class_name(tc)).c_str(),
                to_micros(stack.fabric().timing()->tc_penalty(tc)));
  }

  const auto counters = stack.fabric().total_counters_for_vni(vni);
  std::printf("\n    fabric totals on VNI %u: %llu packets, %.1f GB "
              "delivered, %llu dropped\n",
              vni, static_cast<unsigned long long>(counters.delivered),
              static_cast<double>(counters.bytes_delivered) / 1e9,
              static_cast<unsigned long long>(counters.dropped_total()));
  std::printf("\nThe solver's latency stays in its class while bulk "
              "checkpointing saturates the link.\n");
  return 0;
}
