// scaleout_topologies.cpp — walkthrough of the multi-switch fabric
// topologies: builds the same 32-node cluster as a single switch (which
// cannot physically host 32 ports on real Rosetta hardware, but the model
// allows it as a baseline), a 2-level fat-tree, and a dragonfly, then
// compares hop counts, one-way latency, and inter-switch traffic for the
// same pair of communicating tenants.
#include <cstdio>

#include "hsn/fabric.hpp"

using namespace shs;
using namespace shs::hsn;

namespace {

void demo(const char* name, TopologyConfig topo) {
  TimingConfig timing;
  timing.jitter_amplitude = 0;
  timing.run_bias_amplitude = 0;
  auto fabric = Fabric::create(32, timing, /*seed=*/42, topo);

  constexpr Vni kVni = 4242;
  for (NicAddr a = 0; a < 32; ++a) {
    (void)fabric->switch_for(a)->authorize_vni(a, kVni);
  }
  auto src_ep = fabric->nic(0).alloc_endpoint(kVni, TrafficClass::kLowLatency);
  auto near_ep = fabric->nic(1).alloc_endpoint(kVni, TrafficClass::kLowLatency);
  auto far_ep = fabric->nic(31).alloc_endpoint(kVni, TrafficClass::kLowLatency);

  std::printf("%-14s %zu switches", name, fabric->switch_count());

  (void)fabric->nic(0).post_send(src_ep.value(), 1, near_ep.value(), 1,
                                 4096, {}, 0);
  auto near_pkt = fabric->nic(1).wait_rx(near_ep.value(), 1000);
  (void)fabric->nic(0).post_send(src_ep.value(), 31, far_ep.value(), 1,
                                 4096, {}, 0);
  auto far_pkt = fabric->nic(31).wait_rx(far_ep.value(), 1000);
  if (near_pkt.is_ok() && far_pkt.is_ok()) {
    std::printf("  |  0->1: %d hops, %.2f us  |  0->31: %d hops, %.2f us",
                near_pkt.value().hops,
                to_micros(near_pkt.value().arrival_vt),
                far_pkt.value().hops,
                to_micros(far_pkt.value().arrival_vt));
  }
  std::printf("  |  uplink bytes: %llu\n",
              static_cast<unsigned long long>(fabric->cross_switch_bytes()));
}

}  // namespace

int main() {
  std::printf("32-node cluster, same workload, three fabric plans:\n\n");

  demo("single-switch", {});

  TopologyConfig fat_tree;
  fat_tree.kind = TopologyKind::kFatTree;
  fat_tree.nodes_per_switch = 8;  // 4 leaves
  fat_tree.spines = 2;
  demo("fat-tree", fat_tree);

  TopologyConfig dragonfly;
  dragonfly.kind = TopologyKind::kDragonfly;
  dragonfly.nodes_per_switch = 8;   // 4 edge switches
  dragonfly.switches_per_group = 2; // 2 groups
  demo("dragonfly", dragonfly);

  std::printf(
      "\nSame-switch pairs stay at one hop-latency; cross-switch pairs pay\n"
      "per-link serialization + propagation on every inter-switch link,\n"
      "with per-link virtual-time bandwidth accounting under contention.\n");
  return 0;
}
