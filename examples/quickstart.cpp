// quickstart.cpp — the 5-minute tour of the Slingshot-Kubernetes stack.
//
// Brings up a two-node converged cluster, submits a Kubernetes Job with
// the `vni: true` annotation (Listing 1 of the paper), waits for the VNI
// Service + CXI CNI plugin to do their work, then runs an RDMA ping-pong
// between the job's two pods over the job's private Virtual Network.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "core/stack.hpp"
#include "core/version.hpp"
#include "osu/osu.hpp"
#include "util/log.hpp"

using namespace shs;

int main() {
  Log::set_level(LogLevel::kWarn);
  std::printf("== shsk8s quickstart: multi-tenant Slingshot RDMA on k8s ==\n");
  for (const auto& [component, version] : core::stack_versions()) {
    std::printf("   %-36s %s\n", component.c_str(), version.c_str());
  }

  // 1. Bring up the cluster: 2 nodes, netns-extended CXI driver, CXI CNI
  //    plugin chained after the bridge overlay, VNI service running.
  core::SlingshotStack stack;
  std::printf("\n[1] cluster up: %zu nodes, Rosetta switch, VNI service\n",
              stack.node_count());

  // 2. Submit a job with the vni:true annotation — one line of YAML in
  //    the real system, one option here.
  auto job = stack.submit_job({.name = "quickstart-job",
                               .vni_annotation = "true",
                               .pods = 2,
                               .run_duration = 600 * kSecond,
                               .spread_key = "quickstart"});
  if (!job.is_ok()) {
    std::printf("submit failed: %s\n", job.status().to_string().c_str());
    return 1;
  }
  std::printf("[2] submitted job 'quickstart-job' (vni: \"true\", 2 pods)\n");

  // 3. Wait for admission: VNI controller syncs, CNI plugin installs the
  //    netns-member CXI services, kubelet starts the pods.
  if (!stack.wait_job_start(job.value())) {
    std::printf("job never started\n");
    return 1;
  }
  const auto pods = stack.pods_of_job(job.value());
  const auto j = stack.api().get_job(job.value()).value();
  std::printf("[3] job running after %.2f s (virtual): VNI %u granted\n",
              to_seconds(j.status.start_vt - j.meta.creation_vt),
              pods[0].status.vni);
  for (const auto& pod : pods) {
    std::printf("    pod %-18s node %-8s netns inode %llu\n",
                pod.meta.name.c_str(), pod.status.node.c_str(),
                static_cast<unsigned long long>(pod.status.netns_inode));
  }

  // 4. Open netns-authenticated RDMA endpoints inside both pods.
  auto h0 = stack.exec_in_pod(pods[0].meta.uid).value();
  auto h1 = stack.exec_in_pod(pods[1].meta.uid).value();
  auto dom0 = stack.domain_for(h0).value();
  auto dom1 = stack.domain_for(h1).value();
  auto ep0 = dom0.open_endpoint(pods[0].status.vni);
  auto ep1 = dom1.open_endpoint(pods[1].status.vni);
  if (!ep0.is_ok() || !ep1.is_ok()) {
    std::printf("endpoint allocation failed\n");
    return 1;
  }
  std::printf("[4] RDMA endpoints allocated (netns-member CXI services)\n");

  // 5. OSU-style ping-pong over the private VNI.
  auto comm = mpi::Communicator::create({ep0.value().get(),
                                         ep1.value().get()});
  osu::LatencyOptions lat_opts;
  lat_opts.iterations = 500;
  auto latency = osu::run_osu_latency(*comm, 8, lat_opts);
  osu::BwOptions bw_opts;
  bw_opts.iterations = 100;
  auto bw = osu::run_osu_bw(*comm, 1 << 20, bw_opts);
  std::printf("[5] osu_latency(8 B)  = %.2f us   (one-way)\n",
              latency.value_or(-1));
  std::printf("    osu_bw(1 MB)      = %.0f MB/s (line rate 25'000 MB/s)\n",
              bw.value_or(-1));

  // 6. Clean up: deleting the job releases the VNI into quarantine.
  (void)stack.delete_job(job.value());
  stack.wait_job_gone(job.value());
  std::printf("[6] job deleted: VNI in 30 s quarantine (%zu quarantined)\n",
              stack.registry().quarantined_count(stack.loop().now()));
  std::printf("\nDone. See examples/multi_tenant_isolation.cpp for the "
              "security story.\n");
  return 0;
}
