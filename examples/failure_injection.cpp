// failure_injection.cpp — operational failure modes of the stack, from
// the control plane (Section III-C: "Jobs annotated with that label will
// therefore only launch successfully if the VNI service is running") to
// the data plane (links and switches die; the fabric manager re-routes).
//
// Control-plane scenarios:
//   1. VNI endpoint outage: annotated jobs stall, plain jobs unaffected,
//      stalled jobs launch once the service returns;
//   2. VNI database crash mid-commit: journal recovery restores exactly
//      the committed state (no VNI lost, none double-allocated);
//   3. pod with an over-long termination grace: rejected outright by the
//      CXI CNI plugin (the 30 s quarantine contract).
// Data-plane scenarios:
//   4. spine switch dies mid-job: in-flight traffic drops during the
//      detection window, the fabric manager republishes repaired routes
//      (re-route latency is measured), traffic resumes over the
//      surviving spine, and restoring the spine returns the fabric to
//      pristine routing;
//   5. a pod's home (leaf) switch dies: the scheduler drains the pod,
//      the job controller replaces it, and the replacement lands on a
//      healthy leaf;
//   6. the fabric manager itself crashes mid-repair: the stack watchdog
//      detects the outage, degrades the NIC retry budgets, restarts the
//      controller from its journal, and the repaired plan republishes
//      per-switch with stagger (stale-epoch losses fenced, not silent).
//
//   $ ./build/examples/failure_injection
#include <cstdio>

#include "core/stack.hpp"
#include "util/log.hpp"

using namespace shs;

namespace {

/// Per-reason drop breakdown of the fabric's accounting, labeled with
/// the stable drop_reason_name() strings — the audit trail that shows
/// every lost packet was counted under exactly one reason (plus the
/// NIC-side RX-overflow backpressure counter, which lives on the NICs
/// rather than the switches).
void print_drop_breakdown(core::SlingshotStack& stack) {
  const auto t = stack.fabric().total_counters();
  const struct {
    hsn::DropReason reason;
    std::uint64_t count;
  } rows[] = {
      {hsn::DropReason::kSrcNotAuthorized, t.dropped_src_unauthorized},
      {hsn::DropReason::kDstNotAuthorized, t.dropped_dst_unauthorized},
      {hsn::DropReason::kUnknownDestination, t.dropped_unknown_dst},
      {hsn::DropReason::kNoRoute, t.dropped_no_route},
      {hsn::DropReason::kLinkDown, t.dropped_link_down},
      {hsn::DropReason::kLossInjected, t.dropped_loss},
      {hsn::DropReason::kCorrupt, t.dropped_corrupt},
      {hsn::DropReason::kStaleEpoch, t.dropped_stale_epoch},
      {hsn::DropReason::kAckLost, t.ack_lost},
      {hsn::DropReason::kRxOverflow, stack.fabric().total_rx_overflow()},
  };
  std::printf("    drop breakdown (%llu switch drops, %llu delivered):\n",
              static_cast<unsigned long long>(t.dropped_total()),
              static_cast<unsigned long long>(t.delivered));
  std::uint64_t sum = 0;
  for (const auto& row : rows) {
    // Lost ACKs and RX-ring overflows are accounted outside the switch
    // drop total (the payload was delivered / the drop is NIC-side).
    if (row.reason != hsn::DropReason::kAckLost &&
        row.reason != hsn::DropReason::kRxOverflow) {
      sum += row.count;
    }
    if (row.count == 0) continue;
    std::printf("      %-16s %llu\n", hsn::drop_reason_name(row.reason),
                static_cast<unsigned long long>(row.count));
  }
  std::printf("    breakdown audit: reasons sum to dropped_total: %s\n",
              sum == t.dropped_total() ? "yes" : "NO (unaccounted loss!)");
}

/// Edge switch of a pod's node (kInvalidSwitch when unbound).
hsn::SwitchId pod_switch(core::SlingshotStack& stack, const k8s::Pod& pod) {
  for (std::size_t i = 0; i < stack.node_count(); ++i) {
    if (stack.node(i).name == pod.status.node) {
      return stack.fabric().home_switch(stack.node(i).nic);
    }
  }
  return hsn::kInvalidSwitch;
}

void data_plane_scenarios() {
  // 8 nodes, 2 per leaf -> 4 leaves (switches 0-3) under 2 spines (4-5).
  core::StackConfig cfg;
  cfg.nodes = 8;
  cfg.topology.kind = hsn::TopologyKind::kFatTree;
  cfg.topology.nodes_per_switch = 2;
  cfg.topology.spines = 2;
  core::SlingshotStack stack(cfg);

  // A 4-pod spread job: topology spread fills two leaves, so two pods
  // are guaranteed to sit on different switches — cross-spine traffic.
  auto job = stack.submit_job({.name = "mpi-ranks",
                               .vni_annotation = "true",
                               .pods = 4,
                               .run_duration = 3600 * kSecond,
                               .spread_key = "ranks"});
  if (!job.is_ok() ||
      !stack.run_until(
          [&] {
            int running = 0;
            for (const auto& p : stack.pods_of_job(job.value())) {
              if (p.status.phase == k8s::PodPhase::kRunning) ++running;
            }
            return running == 4;
          },
          120 * kSecond)) {
    std::printf("[4] SKIPPED: the 4-pod job never came up\n");
    return;
  }

  // Pick two ranks on different leaves.
  auto pods = stack.pods_of_job(job.value());
  std::size_t a = 0;
  std::size_t b = 1;
  for (std::size_t i = 1; i < pods.size(); ++i) {
    if (pod_switch(stack, pods[i]) != pod_switch(stack, pods[a])) b = i;
  }
  const hsn::SwitchId leaf_a = pod_switch(stack, pods[a]);
  const hsn::SwitchId leaf_b = pod_switch(stack, pods[b]);
  if (leaf_a == hsn::kInvalidSwitch || leaf_b == hsn::kInvalidSwitch ||
      leaf_a == leaf_b) {
    std::printf("[4] SKIPPED: no cross-leaf pod pair to drive\n");
    return;
  }

  // -- 4. Spine death mid-job. ----------------------------------------------
  std::printf("[4] killing the spine carrying leaf %u -> leaf %u traffic "
              "mid-job...\n", leaf_a, leaf_b);
  auto ha = stack.exec_in_pod(pods[a].meta.uid).value();
  auto hb = stack.exec_in_pod(pods[b].meta.uid).value();
  auto dom_a = stack.domain_for(ha).value();
  auto dom_b = stack.domain_for(hb).value();
  auto ep_a = dom_a.open_endpoint(pods[a].status.vni).value();
  auto ep_b = dom_b.open_endpoint(pods[b].status.vni).value();

  const auto send_once = [&](std::uint64_t tag) {
    return ep_a->tsend(ep_b->addr(), tag, {}, 64 * 1024,
                       stack.loop().now());
  };
  std::printf("    healthy send:  %s\n",
              send_once(1).status().to_string().c_str());

  const hsn::SwitchId spine =
      stack.fabric().plan()->next_hop[leaf_a].at(leaf_b);
  (void)stack.fail_switch(spine);
  std::printf("    spine %u FAILED; send in the detection window: %s\n",
              spine, send_once(2).status().to_string().c_str());

  stack.run_for(cfg.fm_reroute_delay * 2);  // fabric manager reacts
  std::printf("    re-route completed in %.0f us (virtual); send after "
              "re-route: %s\n",
              to_micros(stack.last_reroute_latency()),
              send_once(3).status().to_string().c_str());

  (void)stack.restore_switch(spine);
  stack.run_for(cfg.fm_reroute_delay * 2);
  std::printf("    spine restored (plan v%llu, %zu re-routes measured); "
              "send: %s\n",
              static_cast<unsigned long long>(
                  stack.fabric().plan()->version),
              stack.reroute_events(),
              send_once(4).status().to_string().c_str());
  const auto dropped =
      stack.fabric().total_counters().dropped_link_down;
  std::printf("    packets lost to the failure window: %llu\n",
              static_cast<unsigned long long>(dropped));
  print_drop_breakdown(stack);
  std::printf("\n");

  // -- 5. Leaf death: drain and reschedule. ---------------------------------
  std::printf("[5] killing leaf %u (home of pod %s)...\n", leaf_a,
              pods[a].meta.name.c_str());
  (void)stack.fail_switch(leaf_a);
  const bool rescheduled = stack.run_until(
      [&] {
        int healthy_running = 0;
        for (const auto& p : stack.pods_of_job(job.value())) {
          if (p.status.phase == k8s::PodPhase::kRunning &&
              !p.meta.deletion_requested &&
              pod_switch(stack, p) != leaf_a) {
            ++healthy_running;
          }
        }
        return healthy_running == 4;
      },
      300 * kSecond);
  const auto telemetry = stack.scheduler().bind_telemetry();
  std::printf("    drained %zu pod(s) (%zu evicted), all 4 ranks running "
              "on healthy leaves: %s\n",
              telemetry.drained_total(), telemetry.drained_evicted,
              rescheduled ? "yes" : "NO");
  (void)stack.restore_switch(leaf_a);
  stack.run_for(cfg.fm_reroute_delay * 2);
  std::printf("    leaf restored; fabric healthy again\n");
  print_drop_breakdown(stack);
}

// -- 6. Fabric-manager crash: watchdog detection, degraded routing, ---------
//       journal-replay restart, staggered republish.
void control_plane_crash_scenario() {
  core::StackConfig cfg;
  cfg.nodes = 8;
  cfg.topology.kind = hsn::TopologyKind::kFatTree;
  cfg.topology.nodes_per_switch = 2;
  cfg.topology.spines = 2;
  cfg.fm_reroute_delay = from_millis(1);
  cfg.fm_watchdog = true;
  cfg.fm_watchdog_interval = from_millis(2);
  cfg.publish_stagger = from_micros(50);
  core::SlingshotStack stack(cfg);
  hsn::FabricManager& fm = stack.fabric().manager();

  std::printf("[6] crashing the fabric manager mid-repair (after the "
              "journal write)...\n");
  fm.arm_crash({.point =
                    hsn::ControlPlaneFaultProfile::CrashPoint::kAfterJournal});
  (void)stack.fail_switch(4);  // spine death triggers the doomed repair
  stack.run_for(cfg.fm_reroute_delay + from_micros(100));
  std::printf("    controller crashed: %s — switches keep routing the "
              "last-applied epoch\n", fm.crashed() ? "yes" : "NO");

  stack.run_for(from_millis(1) + from_micros(200));  // watchdog tick 1
  std::printf("    watchdog detected the outage; NICs degraded (stretched "
              "retry budgets): %s\n",
              stack.fabric().nic(0).degraded() ? "yes" : "NO");

  stack.run_for(from_millis(40));  // restart + staggered waves drain
  std::printf("    restarted from the journal: crashed=%s degraded=%s\n",
              fm.crashed() ? "yes" : "no",
              stack.fabric().nic(0).degraded() ? "yes" : "no");
  std::printf("    recovery metrics: fm_downtime %.0f us (virtual), "
              "recovered publishes %zu, stale-epoch drops %llu, "
              "plan v%llu\n",
              to_micros(stack.fm_downtime_vt()),
              stack.recovered_publishes(),
              static_cast<unsigned long long>(stack.stale_epoch_drops()),
              static_cast<unsigned long long>(
                  stack.published_plan_version()));
  print_drop_breakdown(stack);
}

}  // namespace

int main() {
  Log::set_level(LogLevel::kError);
  std::printf("== failure injection: VNI service outage, DB crash, bad "
              "grace,\n   spine/leaf death + fabric-manager re-routing "
              "==\n\n");

  core::SlingshotStack stack;

  // -- 1. Endpoint outage. --------------------------------------------------
  std::printf("[1] taking the VNI endpoint DOWN, submitting two jobs...\n");
  stack.set_vni_endpoint_available(false);
  auto vni_job = stack.submit_job({.name = "needs-vni",
                                   .vni_annotation = "true",
                                   .pods = 1,
                                   .run_duration = 30 * kSecond});
  auto plain_job = stack.submit_job({.name = "plain",
                                     .pods = 1,
                                     .run_duration = from_millis(100)});
  const bool plain_done =
      stack.wait_job_complete(plain_job.value(), 60 * kSecond);
  const bool vni_started =
      stack.wait_job_start(vni_job.value(), 5 * kSecond);
  std::printf("    plain job completed: %s   annotated job started: %s\n",
              plain_done ? "yes" : "NO", vni_started ? "YES (bug!)" : "no");

  std::printf("    bringing the endpoint back UP...\n");
  stack.set_vni_endpoint_available(true);
  const bool recovered = stack.wait_job_start(vni_job.value(), 60 * kSecond);
  std::printf("    annotated job started after recovery: %s\n\n",
              recovered ? "yes" : "NO");

  // -- 2. Database crash mid-commit. ----------------------------------------
  std::printf("[2] crashing the VNI database mid-commit...\n");
  const std::size_t allocated_before = stack.registry().allocated_count();
  stack.database().crash_on_commit();
  // The next acquisition journals, then "loses power" halfway through.
  auto crashed = stack.registry().acquire("job/crash-victim",
                                          stack.loop().now());
  std::printf("    acquisition during crash: %s\n",
              crashed.status().to_string().c_str());
  std::printf("    database crashed: %s\n",
              stack.database().crashed() ? "yes" : "no");
  const Status rec = stack.database().recover();
  std::printf("    recovery: %s — journal replayed %zu commits\n",
              rec.to_string().c_str(), stack.database().journal_commits());
  // The journaled acquisition survived the crash atomically.
  auto survived = stack.registry().find_by_owner("job/crash-victim");
  std::printf("    crash-victim's VNI after recovery: %s (allocated: "
              "%zu -> %zu)\n",
              survived.is_ok() ? "present (journaled before the crash)"
                               : "absent",
              allocated_before, stack.registry().allocated_count());
  // Exclusivity still holds: a fresh acquire gets a different VNI.
  auto fresh = stack.registry().acquire("job/after-crash",
                                        stack.loop().now());
  std::printf("    post-recovery acquire: VNI %u (distinct: %s)\n\n",
              fresh.value_or(0),
              (survived.is_ok() && fresh.is_ok() &&
               fresh.value() != survived.value())
                  ? "yes"
                  : "n/a");

  // -- 3. Grace-period violation. --------------------------------------------
  std::printf("[3] submitting a VNI job with terminationGracePeriod=120s "
              "(> 30 s cap)...\n");
  auto greedy = stack.submit_job({.name = "greedy-grace",
                                  .vni_annotation = "true",
                                  .pods = 1,
                                  .grace_s = 120});
  stack.run_until(
      [&] {
        const auto pods = stack.pods_of_job(greedy.value());
        return !pods.empty() &&
               pods.front().status.phase == k8s::PodPhase::kFailed;
      },
      60 * kSecond);
  for (const auto& pod : stack.pods_of_job(greedy.value())) {
    std::printf("    pod %s: %s — %s\n", pod.meta.name.c_str(),
                k8s::pod_phase_name(pod.status.phase),
                pod.status.message.c_str());
  }
  // -- 4 & 5. Data-plane failures on a multi-switch fabric. -----------------
  data_plane_scenarios();
  std::printf("\n");

  // -- 6. Control-plane crash, watchdog recovery. ---------------------------
  control_plane_crash_scenario();

  std::printf("\nAll failure modes degrade exactly as the design "
              "requires.\n");
  return 0;
}
