// failure_injection.cpp — operational failure modes of the VNI service
// and how the stack degrades (Section III-C: "Jobs annotated with that
// label will therefore only launch successfully if the VNI service is
// running").
//
// Scenarios:
//   1. VNI endpoint outage: annotated jobs stall, plain jobs unaffected,
//      stalled jobs launch once the service returns;
//   2. VNI database crash mid-commit: journal recovery restores exactly
//      the committed state (no VNI lost, none double-allocated);
//   3. pod with an over-long termination grace: rejected outright by the
//      CXI CNI plugin (the 30 s quarantine contract).
//
//   $ ./build/examples/failure_injection
#include <cstdio>

#include "core/stack.hpp"
#include "util/log.hpp"

using namespace shs;

int main() {
  Log::set_level(LogLevel::kError);
  std::printf("== failure injection: VNI service outage, DB crash, bad "
              "grace ==\n\n");

  core::SlingshotStack stack;

  // -- 1. Endpoint outage. --------------------------------------------------
  std::printf("[1] taking the VNI endpoint DOWN, submitting two jobs...\n");
  stack.set_vni_endpoint_available(false);
  auto vni_job = stack.submit_job({.name = "needs-vni",
                                   .vni_annotation = "true",
                                   .pods = 1,
                                   .run_duration = 30 * kSecond});
  auto plain_job = stack.submit_job({.name = "plain",
                                     .pods = 1,
                                     .run_duration = from_millis(100)});
  const bool plain_done =
      stack.wait_job_complete(plain_job.value(), 60 * kSecond);
  const bool vni_started =
      stack.wait_job_start(vni_job.value(), 5 * kSecond);
  std::printf("    plain job completed: %s   annotated job started: %s\n",
              plain_done ? "yes" : "NO", vni_started ? "YES (bug!)" : "no");

  std::printf("    bringing the endpoint back UP...\n");
  stack.set_vni_endpoint_available(true);
  const bool recovered = stack.wait_job_start(vni_job.value(), 60 * kSecond);
  std::printf("    annotated job started after recovery: %s\n\n",
              recovered ? "yes" : "NO");

  // -- 2. Database crash mid-commit. ----------------------------------------
  std::printf("[2] crashing the VNI database mid-commit...\n");
  const std::size_t allocated_before = stack.registry().allocated_count();
  stack.database().crash_on_commit();
  // The next acquisition journals, then "loses power" halfway through.
  auto crashed = stack.registry().acquire("job/crash-victim",
                                          stack.loop().now());
  std::printf("    acquisition during crash: %s\n",
              crashed.status().to_string().c_str());
  std::printf("    database crashed: %s\n",
              stack.database().crashed() ? "yes" : "no");
  const Status rec = stack.database().recover();
  std::printf("    recovery: %s — journal replayed %zu commits\n",
              rec.to_string().c_str(), stack.database().journal_commits());
  // The journaled acquisition survived the crash atomically.
  auto survived = stack.registry().find_by_owner("job/crash-victim");
  std::printf("    crash-victim's VNI after recovery: %s (allocated: "
              "%zu -> %zu)\n",
              survived.is_ok() ? "present (journaled before the crash)"
                               : "absent",
              allocated_before, stack.registry().allocated_count());
  // Exclusivity still holds: a fresh acquire gets a different VNI.
  auto fresh = stack.registry().acquire("job/after-crash",
                                        stack.loop().now());
  std::printf("    post-recovery acquire: VNI %u (distinct: %s)\n\n",
              fresh.value_or(0),
              (survived.is_ok() && fresh.is_ok() &&
               fresh.value() != survived.value())
                  ? "yes"
                  : "n/a");

  // -- 3. Grace-period violation. --------------------------------------------
  std::printf("[3] submitting a VNI job with terminationGracePeriod=120s "
              "(> 30 s cap)...\n");
  auto greedy = stack.submit_job({.name = "greedy-grace",
                                  .vni_annotation = "true",
                                  .pods = 1,
                                  .grace_s = 120});
  stack.run_until(
      [&] {
        const auto pods = stack.pods_of_job(greedy.value());
        return !pods.empty() &&
               pods.front().status.phase == k8s::PodPhase::kFailed;
      },
      60 * kSecond);
  for (const auto& pod : stack.pods_of_job(greedy.value())) {
    std::printf("    pod %s: %s — %s\n", pod.meta.name.c_str(),
                k8s::pod_phase_name(pod.status.phase),
                pod.status.message.c_str());
  }
  std::printf("\nAll failure modes degrade exactly as the design "
              "requires.\n");
  return 0;
}
