// vni_claims_workflow.cpp — the VNI Claims ownership model (Section
// III-C1, Fig. 4 right): a multi-job scientific workflow whose stages
// must talk to each other over Slingshot.
//
// A per-resource VNI would wall each job off; a VNI *Claim* gives the
// whole workflow one shared virtual network:
//   1. create VniClaim "pipeline"  (Listing 2)
//   2. submit producer + consumer jobs annotated `vni: pipeline`
//      (Listing 3) — both redeem the same claim;
//   3. stream data producer -> consumer across jobs via RDMA;
//   4. claim deletion stalls until the last user job is gone.
//
//   $ ./build/examples/vni_claims_workflow
#include <cstdio>

#include "core/stack.hpp"
#include "util/log.hpp"

using namespace shs;

namespace {
k8s::Pod running_pod(core::SlingshotStack& stack, k8s::Uid job) {
  for (const auto& pod : stack.pods_of_job(job)) {
    if (pod.status.phase == k8s::PodPhase::kRunning) return pod;
  }
  std::abort();
}
}  // namespace

int main() {
  Log::set_level(LogLevel::kWarn);
  std::printf("== VNI Claims: one virtual network for a multi-job workflow "
              "==\n\n");

  core::SlingshotStack stack;

  // 1. The claim (its name is what jobs reference).
  auto claim = stack.create_claim("workflow", "pipeline");
  std::printf("[1] VniClaim 'pipeline' created in namespace 'workflow'\n");

  // 2. Two jobs redeem it.
  auto producer = stack.submit_job({.name = "producer",
                                    .ns = "workflow",
                                    .vni_annotation = "pipeline",
                                    .pods = 1,
                                    .run_duration = 600 * kSecond});
  auto consumer = stack.submit_job({.name = "consumer",
                                    .ns = "workflow",
                                    .vni_annotation = "pipeline",
                                    .pods = 1,
                                    .run_duration = 600 * kSecond});
  stack.wait_job_start(producer.value());
  stack.wait_job_start(consumer.value());
  const auto prod_pod = running_pod(stack, producer.value());
  const auto cons_pod = running_pod(stack, consumer.value());
  std::printf("[2] producer VNI %u on %s; consumer VNI %u on %s  (shared)\n",
              prod_pod.status.vni, prod_pod.status.node.c_str(),
              cons_pod.status.vni, cons_pod.status.node.c_str());

  // The CRD picture: one owning VNI instance (the claim's) + two virtual
  // instances (one per redeeming job).
  std::size_t owning = 0;
  std::size_t virt = 0;
  for (const auto& v : stack.api().list_vni_objects()) {
    v.virtual_instance ? ++virt : ++owning;
  }
  std::printf("    VNI CRD instances: %zu owning, %zu virtual\n", owning,
              virt);

  // 3. Cross-job RDMA stream: producer pushes 64 MiB to the consumer via
  //    one-sided writes into a registered ring buffer.
  auto hp = stack.exec_in_pod(prod_pod.meta.uid).value();
  auto hc = stack.exec_in_pod(cons_pod.meta.uid).value();
  auto dom_p = stack.domain_for(hp).value();
  auto dom_c = stack.domain_for(hc).value();
  auto ep_p = dom_p.open_endpoint(prod_pod.status.vni).value();
  auto ep_c = dom_c.open_endpoint(cons_pod.status.vni).value();

  std::vector<std::byte> ring(1 << 20);
  auto mr = ep_c->mr_reg(ring).value();
  SimTime vt = 0;
  constexpr int kChunks = 64;
  for (int i = 0; i < kChunks; ++i) {
    auto t = ep_p->rma_write_sync(
        cons_pod.status.node == "node-0" ? 0 : 1, mr, 0, {}, ring.size(), vt);
    if (!t.is_ok()) {
      std::printf("stream failed: %s\n", t.status().to_string().c_str());
      return 1;
    }
    vt = t.value();
  }
  const double gb = kChunks * static_cast<double>(ring.size()) / 1e9;
  std::printf("[3] streamed %.1f GB producer->consumer in %.2f ms virtual "
              "(%.1f GB/s)\n",
              gb, to_millis(vt), gb / to_seconds(vt));

  // 4. Claim deletion stalls while jobs use it.
  (void)stack.delete_claim(claim.value());
  stack.run_for(3 * kSecond);
  const bool still_there = stack.api().get_vni_claim(claim.value()).is_ok();
  std::printf("\n[4] claim deleted while jobs run -> still present: %s "
              "(deletion stalls, as required)\n",
              still_there ? "yes" : "NO (bug!)");

  (void)stack.delete_job(producer.value());
  (void)stack.delete_job(consumer.value());
  stack.wait_job_gone(producer.value());
  stack.wait_job_gone(consumer.value());
  stack.run_until(
      [&] { return !stack.api().get_vni_claim(claim.value()).is_ok(); },
      30 * kSecond);
  std::printf("    after both jobs terminated -> claim gone: %s\n",
              !stack.api().get_vni_claim(claim.value()).is_ok() ? "yes"
                                                                : "NO");
  std::printf("    VNI released into quarantine: %zu quarantined\n",
              stack.registry().quarantined_count(stack.loop().now()));
  return 0;
}
