#include "mpi/comm.hpp"

#include <algorithm>

namespace shs::mpi {

std::unique_ptr<Communicator> Communicator::create(
    std::vector<ofi::Endpoint*> endpoints) {
  auto comm = std::unique_ptr<Communicator>(new Communicator());
  comm->addrs_.reserve(endpoints.size());
  for (const auto* ep : endpoints) comm->addrs_.push_back(ep->addr());
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    comm->ranks_.push_back(std::make_unique<RankContext>(
        comm.get(), static_cast<int>(i), endpoints[i]));
  }
  return comm;
}

int RankContext::size() const noexcept { return comm_->size(); }

Status RankContext::send(int dst, std::uint32_t tag,
                         std::span<const std::byte> data,
                         std::uint64_t size) {
  if (dst < 0 || dst >= comm_->size()) {
    return invalid_argument("bad rank");
  }
  auto r = ep_->tsend(comm_->addr_of(dst), wire_tag(rank_, tag), data, size,
                      vt_);
  if (!r.is_ok()) return r.status();
  vt_ = r.value();
  return Status::ok();
}

Result<RecvInfo> RankContext::recv(int src, std::uint32_t tag,
                                   std::span<std::byte> buffer,
                                   int real_timeout_ms) {
  if (src < 0 || src >= comm_->size()) {
    return Result<RecvInfo>(invalid_argument("bad rank"));
  }
  auto r = ep_->trecv_sync(wire_tag(src, tag), buffer, real_timeout_ms);
  if (!r.is_ok()) return Result<RecvInfo>(r.status());
  // Lamport merge: the local clock jumps to the arrival time if the
  // message was still in flight.
  vt_ = std::max(vt_, r.value().vt);
  return RecvInfo{r.value().size, src};
}

Status RankContext::barrier() {
  // Tag space 0xB000_0000+ is reserved for barriers; the epoch counter
  // keeps successive barriers from matching each other's tokens.
  const std::uint32_t tag = 0xB0000000u + barrier_epoch_++;
  if (rank_ == 0) {
    for (int r = 1; r < size(); ++r) {
      auto in = recv(r, tag, {});
      if (!in.is_ok()) return in.status();
    }
    for (int r = 1; r < size(); ++r) {
      SHS_RETURN_IF_ERROR(send(r, tag, {}, 0));
    }
    return Status::ok();
  }
  SHS_RETURN_IF_ERROR(send(0, tag, {}, 0));
  auto release = recv(0, tag, {});
  return release.status();
}

}  // namespace shs::mpi
