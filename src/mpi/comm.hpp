// comm.hpp — a minimal MPI-like point-to-point layer over the ofi
// endpoints (the paper runs OSU over Open MPI over patched libfabric).
//
// Scope: exactly what the OSU micro-benchmarks need — ranks, blocking
// tagged send/recv with source matching, and a barrier.  Each rank runs
// on its own OS thread and owns a virtual clock; receives merge the
// sender's packet-arrival time into the local clock (Lamport-style), so
// bandwidth and latency measurements read off virtual time and are
// reproducible regardless of host scheduling.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "ofi/endpoint.hpp"
#include "util/status.hpp"

namespace shs::mpi {

struct RecvInfo {
  std::uint64_t size = 0;
  int source = -1;
};

class Communicator;

/// Per-rank handle.  NOT thread-safe: use from the owning rank's thread.
class RankContext {
 public:
  RankContext(Communicator* comm, int rank, ofi::Endpoint* ep) noexcept
      : comm_(comm), rank_(rank), ep_(ep) {}

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept;

  /// Blocking tagged send of `size` bytes to `dst`.  Empty `data` sends a
  /// size-only (timing) message.
  Status send(int dst, std::uint32_t tag, std::span<const std::byte> data,
              std::uint64_t size);

  /// Blocking tagged receive from `src`.
  Result<RecvInfo> recv(int src, std::uint32_t tag,
                        std::span<std::byte> buffer,
                        int real_timeout_ms = 10'000);

  /// Linear barrier through rank 0.
  Status barrier();

  /// This rank's virtual clock (nanoseconds).
  [[nodiscard]] SimTime vt() const noexcept { return vt_; }

 private:
  /// Wire tag: (src_rank+1) in the top bits so receives match by source.
  [[nodiscard]] static std::uint64_t wire_tag(int src,
                                              std::uint32_t tag) noexcept {
    return (static_cast<std::uint64_t>(src + 1) << 32) | tag;
  }

  Communicator* comm_;
  int rank_;
  ofi::Endpoint* ep_;
  SimTime vt_ = 0;
  std::uint32_t barrier_epoch_ = 0;
};

/// The world: rank -> endpoint addresses.  Construct via `create`.
class Communicator {
 public:
  /// Non-owning: endpoints must outlive the communicator.
  static std::unique_ptr<Communicator> create(
      std::vector<ofi::Endpoint*> endpoints);

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(ranks_.size());
  }
  [[nodiscard]] RankContext& rank(int i) { return *ranks_.at(i); }
  [[nodiscard]] ofi::FiAddr addr_of(int i) const { return addrs_.at(i); }

 private:
  Communicator() = default;
  friend class RankContext;
  std::vector<std::unique_ptr<RankContext>> ranks_;
  std::vector<ofi::FiAddr> addrs_;
};

}  // namespace shs::mpi
