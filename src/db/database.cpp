#include "db/database.hpp"

#include <algorithm>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace shs::db {

namespace {
constexpr const char* kTag = "db";
}

// ---------------------------------------------------------------------------
// Transaction

Transaction::Transaction(Database& database)
    : db_(database), lock_(database.write_mutex_) {}

Transaction::~Transaction() {
  if (active_) rollback();
}

Result<RowId> Transaction::insert(const std::string& table, Row row) {
  if (!active_) return Result<RowId>(failed_precondition("txn closed"));
  const auto it = db_.tables_.find(table);
  if (it == db_.tables_.end()) {
    return Result<RowId>(not_found(strfmt("no table %s", table.c_str())));
  }
  if (row.size() != it->second.schema.columns.size()) {
    return Result<RowId>(invalid_argument(
        strfmt("table %s expects %zu columns, got %zu", table.c_str(),
               it->second.schema.columns.size(), row.size())));
  }
  // IDs are allocated eagerly under the writer lock; a rollback burns
  // them, which matches "rowids are never reused".
  const RowId id = it->second.next_id++;
  ops_.push_back(Op{Op::Kind::kInsert, table, id, std::move(row)});
  return id;
}

Status Transaction::update(const std::string& table, RowId id, Row row) {
  if (!active_) return failed_precondition("txn closed");
  auto current = get(table, id);
  if (!current.is_ok()) return current.status();
  ops_.push_back(Op{Op::Kind::kUpdate, table, id, std::move(row)});
  return Status::ok();
}

Status Transaction::erase(const std::string& table, RowId id) {
  if (!active_) return failed_precondition("txn closed");
  auto current = get(table, id);
  if (!current.is_ok()) return current.status();
  ops_.push_back(Op{Op::Kind::kErase, table, id, {}});
  return Status::ok();
}

Result<Row> Transaction::get(const std::string& table, RowId id) const {
  if (!active_) return Result<Row>(failed_precondition("txn closed"));
  // Own-writes overlay: newest buffered op for (table, id) wins.
  for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) {
    if (it->table == table && it->id == id) {
      if (it->kind == Op::Kind::kErase) {
        return Result<Row>(not_found(strfmt("row %llu erased in txn",
                                            static_cast<unsigned long long>(id))));
      }
      return it->row;
    }
  }
  const auto t = db_.tables_.find(table);
  if (t == db_.tables_.end()) {
    return Result<Row>(not_found(strfmt("no table %s", table.c_str())));
  }
  const auto r = t->second.rows.find(id);
  if (r == t->second.rows.end()) {
    return Result<Row>(not_found(strfmt("no row %llu in %s",
                                        static_cast<unsigned long long>(id),
                                        table.c_str())));
  }
  return r->second;
}

Result<std::vector<std::pair<RowId, Row>>> Transaction::scan(
    const std::string& table,
    const std::function<bool(const Row&)>& pred) const {
  if (!active_) {
    return Result<std::vector<std::pair<RowId, Row>>>(
        failed_precondition("txn closed"));
  }
  const auto t = db_.tables_.find(table);
  if (t == db_.tables_.end()) {
    return Result<std::vector<std::pair<RowId, Row>>>(
        not_found(strfmt("no table %s", table.c_str())));
  }
  // Materialize committed rows, overlay buffered ops in order.
  std::map<RowId, Row> view = t->second.rows;
  for (const Op& op : ops_) {
    if (op.table != table) continue;
    switch (op.kind) {
      case Op::Kind::kInsert:
      case Op::Kind::kUpdate:
        view[op.id] = op.row;
        break;
      case Op::Kind::kErase:
        view.erase(op.id);
        break;
    }
  }
  std::vector<std::pair<RowId, Row>> out;
  for (auto& [id, row] : view) {
    if (!pred || pred(row)) out.emplace_back(id, std::move(row));
  }
  return out;
}

Status Transaction::commit() {
  if (!active_) return failed_precondition("txn closed");
  active_ = false;
  if (db_.crashed_) {
    lock_.unlock();
    return unavailable("database crashed; recover() first");
  }
  // 1. Journal first (write-ahead): once journaled, the commit is durable.
  db_.journal_.push_back(Database::JournalEntry{ops_});
  // 2. Apply to the live tables.  A simulated crash stops halfway.
  const bool crash = db_.crash_next_commit_;
  db_.crash_next_commit_ = false;
  std::size_t apply_n = ops_.size();
  if (crash) {
    apply_n = db_.crash_after_ops_
                  ? std::min(*db_.crash_after_ops_, ops_.size())
                  : ops_.size() / 2;
    db_.crash_after_ops_.reset();
  }
  for (std::size_t i = 0; i < apply_n; ++i) {
    const Status st = db_.apply_locked(ops_[i]);
    if (!st.is_ok()) {
      SHS_ERROR(kTag) << "apply failed mid-commit: " << st;
      db_.crashed_ = true;
      lock_.unlock();
      return internal_error("commit apply failed: " + st.message());
    }
  }
  if (crash) {
    db_.crashed_ = true;
    SHS_WARN(kTag) << "simulated crash mid-commit (" << apply_n << "/"
                   << ops_.size() << " ops applied)";
    lock_.unlock();
    return internal_error("simulated crash during commit");
  }
  ops_.clear();
  lock_.unlock();
  return Status::ok();
}

void Transaction::rollback() {
  if (!active_) return;
  active_ = false;
  ops_.clear();
  lock_.unlock();
}

// ---------------------------------------------------------------------------
// Database

Status Database::create_table(const TableSchema& schema) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  if (tables_.contains(schema.name)) {
    return already_exists(strfmt("table %s exists", schema.name.c_str()));
  }
  if (schema.columns.empty()) {
    return invalid_argument("a table needs at least one column");
  }
  tables_.emplace(schema.name, TableData{schema, {}, 1});
  return Status::ok();
}

bool Database::has_table(const std::string& name) const {
  std::lock_guard<std::mutex> lock(write_mutex_);
  return tables_.contains(name);
}

std::vector<std::string> Database::table_names() const {
  std::lock_guard<std::mutex> lock(write_mutex_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, data] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

std::unique_ptr<Transaction> Database::begin() {
  return std::unique_ptr<Transaction>(new Transaction(*this));
}

Status Database::with_transaction(
    const std::function<Status(Transaction&)>& fn, int max_attempts) {
  Status last = internal_error("with_transaction never ran");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    auto txn = begin();
    Status st = fn(*txn);
    if (!st.is_ok()) {
      txn->rollback();
      if (st.code() == Code::kAborted) {
        last = st;
        continue;  // retry
      }
      return st;
    }
    st = txn->commit();
    if (st.is_ok() || st.code() != Code::kAborted) return st;
    last = st;
  }
  return last;
}

Result<std::vector<std::pair<RowId, Row>>> Database::snapshot(
    const std::string& table,
    const std::function<bool(const Row&)>& pred) const {
  std::lock_guard<std::mutex> lock(write_mutex_);
  const auto t = tables_.find(table);
  if (t == tables_.end()) {
    return Result<std::vector<std::pair<RowId, Row>>>(
        not_found(strfmt("no table %s", table.c_str())));
  }
  std::vector<std::pair<RowId, Row>> out;
  for (const auto& [id, row] : t->second.rows) {
    if (!pred || pred(row)) out.emplace_back(id, row);
  }
  return out;
}

std::size_t Database::row_count(const std::string& table) const {
  std::lock_guard<std::mutex> lock(write_mutex_);
  const auto t = tables_.find(table);
  return t == tables_.end() ? 0 : t->second.rows.size();
}

Status Database::apply_locked(const Transaction::Op& op) {
  const auto t = tables_.find(op.table);
  if (t == tables_.end()) {
    return not_found(strfmt("no table %s", op.table.c_str()));
  }
  switch (op.kind) {
    case Transaction::Op::Kind::kInsert:
    case Transaction::Op::Kind::kUpdate:
      t->second.rows[op.id] = op.row;
      t->second.next_id = std::max(t->second.next_id, op.id + 1);
      break;
    case Transaction::Op::Kind::kErase:
      t->second.rows.erase(op.id);
      break;
  }
  return Status::ok();
}

void Database::crash_on_commit() noexcept {
  std::lock_guard<std::mutex> lock(write_mutex_);
  crash_next_commit_ = true;
}

void Database::crash_on_commit_after_ops(std::size_t n) noexcept {
  std::lock_guard<std::mutex> lock(write_mutex_);
  crash_next_commit_ = true;
  crash_after_ops_ = n;
}

bool Database::crashed() const noexcept {
  std::lock_guard<std::mutex> lock(write_mutex_);
  return crashed_;
}

Status Database::recover() {
  std::lock_guard<std::mutex> lock(write_mutex_);
  // Rebuild from the journal: wipe live rows, replay every committed
  // transaction in order.  The half-applied commit journaled before the
  // crash, so replay restores it completely — atomicity holds.
  for (auto& [name, data] : tables_) {
    data.rows.clear();
    data.next_id = 1;
  }
  for (const JournalEntry& entry : journal_) {
    for (const auto& op : entry.ops) {
      const Status st = apply_locked(op);
      if (!st.is_ok()) return st;
    }
  }
  crashed_ = false;
  SHS_INFO(kTag) << "recovered from journal: " << journal_.size()
                 << " commits replayed";
  return Status::ok();
}

std::size_t Database::journal_commits() const {
  std::lock_guard<std::mutex> lock(write_mutex_);
  return journal_.size();
}

}  // namespace shs::db
