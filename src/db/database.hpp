// database.hpp — a small embedded ACID store (the paper uses SQLite).
//
// The VNI Endpoint keeps the ground truth of VNI assignments in a
// relational store and leans on ACID transactions to rule out
// Time-of-Check-to-Time-of-Use races between concurrent acquisition
// requests (Section III-C2).  This module supplies exactly those
// guarantees in-process:
//
//  * serializable isolation — one writer at a time (SQLite's write lock);
//  * atomicity — a transaction's effects apply all-or-nothing, via a redo
//    journal that is replayed on recovery;
//  * durability (simulated) — committed redo records survive an injected
//    crash; `recover()` replays them onto fresh tables;
//  * fault injection — `crash_on_commit()` makes the next commit "lose
//    power" midway through applying, so tests can verify that recovery
//    yields exactly the committed prefix.
//
// Values are typed (int64 / string / null); tables are schemaless beyond
// a fixed column count, which is all the VNI schema needs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "util/status.hpp"

namespace shs::db {

/// A cell: NULL, integer, or text.
using Value = std::variant<std::monostate, std::int64_t, std::string>;
/// A row: fixed-width tuple of cells.
using Row = std::vector<Value>;
/// Row identifier, unique within a table, never reused.
using RowId = std::uint64_t;

[[nodiscard]] inline std::int64_t as_int(const Value& v) {
  return std::get<std::int64_t>(v);
}
[[nodiscard]] inline const std::string& as_text(const Value& v) {
  return std::get<std::string>(v);
}
[[nodiscard]] inline bool is_null(const Value& v) {
  return std::holds_alternative<std::monostate>(v);
}

/// Schema of one table.
struct TableSchema {
  std::string name;
  std::vector<std::string> columns;
};

class Database;

/// An exclusive (serializable) transaction.  Obtain via
/// `Database::begin()`; commit explicitly — destruction rolls back.
class Transaction {
 public:
  ~Transaction();
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;
  Transaction(Transaction&&) = delete;

  /// Inserts `row` into `table`; returns its RowId.
  Result<RowId> insert(const std::string& table, Row row);
  /// Replaces the row `id` in `table`.
  Status update(const std::string& table, RowId id, Row row);
  /// Deletes row `id` from `table`.
  Status erase(const std::string& table, RowId id);
  /// Reads one row (transaction-local view: sees own writes).
  Result<Row> get(const std::string& table, RowId id) const;
  /// Scans `table`, returning (id, row) pairs satisfying `pred`
  /// (transaction-local view).  Null `pred` selects everything.
  Result<std::vector<std::pair<RowId, Row>>> scan(
      const std::string& table,
      const std::function<bool(const Row&)>& pred = nullptr) const;

  /// Applies all buffered writes atomically and releases the lock.
  Status commit();
  /// Discards buffered writes and releases the lock.
  void rollback();

  [[nodiscard]] bool active() const noexcept { return active_; }

 private:
  friend class Database;
  explicit Transaction(Database& database);

  struct Op {
    enum class Kind : std::uint8_t { kInsert, kUpdate, kErase } kind;
    std::string table;
    RowId id = 0;
    Row row;
  };

  Database& db_;
  std::unique_lock<std::mutex> lock_;
  bool active_ = true;
  std::vector<Op> ops_;  ///< redo log, applied on commit
};

/// The store.  Thread-safe: `begin()` blocks until the writer lock frees.
class Database {
 public:
  Database() = default;

  /// Creates `schema.name`; fails if it exists.
  Status create_table(const TableSchema& schema);
  [[nodiscard]] bool has_table(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> table_names() const;

  /// Opens an exclusive transaction (serializable).
  [[nodiscard]] std::unique_ptr<Transaction> begin();

  /// Runs `fn` inside a transaction, committing on OK; retries kAborted
  /// results up to `max_attempts` times.
  Status with_transaction(const std::function<Status(Transaction&)>& fn,
                          int max_attempts = 5);

  /// Convenience snapshot read outside any transaction.
  Result<std::vector<std::pair<RowId, Row>>> snapshot(
      const std::string& table,
      const std::function<bool(const Row&)>& pred = nullptr) const;
  [[nodiscard]] std::size_t row_count(const std::string& table) const;

  // -- Fault injection & recovery (tests and failure-mode benches).

  /// The next commit crashes midway: some ops applied, some not, journal
  /// already durable.  The database enters the `crashed` state and every
  /// subsequent call fails until `recover()` runs.
  void crash_on_commit() noexcept;
  /// Like `crash_on_commit()`, but pins the power cut to an exact op
  /// boundary: the next commit applies `min(n, op_count)` ops and then
  /// crashes.  Lets tests sweep every intermediate state of a
  /// multi-op transaction.
  void crash_on_commit_after_ops(std::size_t n) noexcept;
  [[nodiscard]] bool crashed() const noexcept;
  /// Rebuilds all tables by replaying the committed journal; clears the
  /// crashed state.  Demonstrates atomicity: the half-applied commit is
  /// either fully present (it journaled before the crash) or fully absent.
  Status recover();

  /// Committed journal length (diagnostics).
  [[nodiscard]] std::size_t journal_commits() const;

 private:
  friend class Transaction;

  struct TableData {
    TableSchema schema;
    std::map<RowId, Row> rows;  // ordered: deterministic scans
    RowId next_id = 1;
  };
  struct JournalEntry {
    std::vector<Transaction::Op> ops;
  };

  /// Applies one op to the live tables.  Caller holds write_mutex_.
  Status apply_locked(const Transaction::Op& op);

  mutable std::mutex write_mutex_;  ///< the single-writer lock
  mutable std::mutex meta_mutex_;   ///< guards tables_/journal_ topology
  std::unordered_map<std::string, TableData> tables_;
  std::vector<JournalEntry> journal_;
  bool crash_next_commit_ = false;
  std::optional<std::size_t> crash_after_ops_;  ///< op boundary override
  bool crashed_ = false;
};

}  // namespace shs::db
