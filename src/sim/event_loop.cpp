#include "sim/event_loop.hpp"

#include <algorithm>
#include <utility>

namespace shs::sim {

void EventLoop::push_event(Event e) {
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(), EventOrder{});
}

EventLoop::TaskId EventLoop::push(SimTime t, Callback cb, SimDuration period) {
  const TaskId id = next_id_++;
  callbacks_.emplace(id, std::move(cb));
  push_event(Event{std::max(t, now_), next_seq_++, id, period});
  return id;
}

EventLoop::TaskId EventLoop::schedule_at(SimTime t, Callback cb) {
  return push(t, std::move(cb), 0);
}

EventLoop::TaskId EventLoop::schedule_after(SimDuration delay, Callback cb) {
  return push(now_ + std::max<SimDuration>(delay, 0), std::move(cb), 0);
}

EventLoop::TaskId EventLoop::schedule_periodic(SimDuration period,
                                               Callback cb) {
  const SimDuration p = std::max<SimDuration>(period, 1);
  return push(now_ + p, std::move(cb), p);
}

bool EventLoop::cancel(TaskId id) {
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  cancelled_.insert(id);  // lazily dropped when the heap entry surfaces
  // Keep the heap within 2x the live entries: without this, a workload
  // that schedules and cancels in a loop (connection retries, churn
  // tests) grows the queue and the cancelled set without bound even
  // though pending() stays small.
  if (cancelled_.size() > callbacks_.size() &&
      heap_.size() > kInitialQueueCapacity) {
    compact();
  }
  return true;
}

void EventLoop::compact() {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    const auto c = cancelled_.find(heap_[i].id);
    if (c != cancelled_.end()) {
      cancelled_.erase(c);  // reclaimed here instead of lazily on pop
      continue;
    }
    heap_[kept++] = heap_[i];
  }
  heap_.resize(kept);
  std::make_heap(heap_.begin(), heap_.end(), EventOrder{});
}

bool EventLoop::pop_next(Event& out) {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), EventOrder{});
    Event e = heap_.back();
    heap_.pop_back();
    const auto cancelled_it = cancelled_.find(e.id);
    if (cancelled_it != cancelled_.end()) {
      cancelled_.erase(cancelled_it);
      continue;
    }
    out = e;
    return true;
  }
  return false;
}

std::size_t EventLoop::run_until_idle(std::size_t max_events) {
  if (running_) return 0;  // no nested dispatch; see running()
  running_ = true;
  std::size_t executed = 0;
  stop_requested_ = false;
  Event e;
  while (executed < max_events && !stop_requested_ && pop_next(e)) {
    now_ = std::max(now_, e.time);
    const auto cb_it = callbacks_.find(e.id);
    if (cb_it == callbacks_.end()) continue;  // cancelled mid-flight
    if (e.period > 0) {
      // Re-arm before running so the callback may cancel itself.
      push_event(Event{now_ + e.period, next_seq_++, e.id, e.period});
      cb_it->second();
    } else {
      Callback cb = std::move(cb_it->second);
      callbacks_.erase(cb_it);
      cb();
    }
    ++executed;
  }
  running_ = false;
  return executed;
}

std::size_t EventLoop::run_until(SimTime t) {
  if (running_) return 0;  // no nested dispatch; see running()
  running_ = true;
  std::size_t executed = 0;
  stop_requested_ = false;
  while (!stop_requested_) {
    if (heap_.empty()) break;
    // Peek through cancellations without executing past `t`.
    Event e;
    if (!pop_next(e)) break;
    if (e.time > t) {
      // Put it back; it belongs to the future.
      push_event(e);
      break;
    }
    now_ = std::max(now_, e.time);
    const auto cb_it = callbacks_.find(e.id);
    if (cb_it == callbacks_.end()) continue;
    if (e.period > 0) {
      push_event(Event{now_ + e.period, next_seq_++, e.id, e.period});
      cb_it->second();
    } else {
      Callback cb = std::move(cb_it->second);
      callbacks_.erase(cb_it);
      cb();
    }
    ++executed;
  }
  // Advance the clock to the window end only on a clean drain.  If
  // stop() aborted the window there may be events with timestamps in
  // (now_, t] still queued; jumping now_ to t would make them fire with
  // the clock already past their own timestamps on the next run.
  if (!stop_requested_) now_ = std::max(now_, t);
  running_ = false;
  return executed;
}

bool EventLoop::idle() const noexcept { return pending() == 0; }

std::size_t EventLoop::pending() const noexcept {
  return callbacks_.size();
}

}  // namespace shs::sim
