// event_loop.hpp — single-threaded discrete-event simulator.
//
// The Kubernetes control-plane model (API server, controllers, kubelets,
// CNI invocations, VNI service) runs entirely on this loop in *virtual*
// time: each stage schedules its continuation after a modeled latency.
// That makes the 3-minute spike test of the paper (Fig 11) regenerate in
// milliseconds, deterministically.
//
// The loop is deliberately single-threaded (events at equal timestamps are
// ordered by insertion), so every admission-test run is reproducible.  The
// RDMA data path does NOT use this loop — it uses per-link virtual-time
// accounting in src/hsn so that application threads can block naturally.
//
// Memory: the event queue is a binary heap over a reserved vector.
// Cancellation is lazy (a cancelled id is dropped when its heap entry
// surfaces), but the heap is compacted whenever cancelled entries
// outnumber live ones, so queue memory stays bounded under arbitrary
// schedule/cancel churn — long-running soak workloads cannot grow the
// loop without growing the number of genuinely pending tasks.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/units.hpp"

namespace shs::sim {

/// Discrete-event loop over virtual nanoseconds.
class EventLoop {
 public:
  using Callback = std::function<void()>;
  using TaskId = std::uint64_t;
  static constexpr TaskId kInvalidTask = 0;

  EventLoop() { heap_.reserve(kInitialQueueCapacity); }
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `cb` at absolute virtual time `t` (clamped to >= now).
  TaskId schedule_at(SimTime t, Callback cb);

  /// Schedules `cb` after `delay` from now.
  TaskId schedule_after(SimDuration delay, Callback cb);

  /// Schedules `cb` every `period`, first firing at now + `period`.
  /// Periodic tasks run until cancelled or the loop is destroyed.
  TaskId schedule_periodic(SimDuration period, Callback cb);

  /// Cancels a pending (or periodic) task.  Returns false if unknown or
  /// already executed.
  bool cancel(TaskId id);

  /// Runs events until the queue is empty (or `max_events` processed).
  /// Returns the number of events executed.
  std::size_t run_until_idle(
      std::size_t max_events = std::numeric_limits<std::size_t>::max());

  /// Runs all events with timestamp <= `t`, then advances now() to `t`.
  /// Returns the number of events executed.
  std::size_t run_until(SimTime t);

  /// Runs for `d` of virtual time from the current instant.
  std::size_t run_for(SimDuration d) { return run_until(now_ + d); }

  /// Requests that the current run_* call return after the in-flight
  /// callback completes.  Only meaningful from within a callback.
  void stop() noexcept { stop_requested_ = true; }

  /// True while a run_* call is dispatching events.  Re-entrant run_*
  /// calls (e.g. a NIC retry hook advancing the loop from within a
  /// callback the loop itself is executing) are refused — they return 0
  /// without dispatching — because nested dispatch would interleave
  /// now_ updates and break the (time, seq) execution order.  Callers
  /// that may run in both contexts guard with `if (!loop.running())`.
  [[nodiscard]] bool running() const noexcept { return running_; }

  /// True when no events are pending.
  [[nodiscard]] bool idle() const noexcept;

  /// Number of pending (non-cancelled) events.
  [[nodiscard]] std::size_t pending() const noexcept;

  /// Heap entries currently held (pending + not-yet-reclaimed cancelled).
  /// Compaction keeps this within a small factor of pending() — the
  /// observable the churn-boundedness test asserts on.
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return heap_.size();
  }

 private:
  static constexpr std::size_t kInitialQueueCapacity = 256;

  struct Event {
    SimTime time = 0;
    std::uint64_t seq = 0;  ///< tie-breaker: FIFO among equal timestamps
    TaskId id = kInvalidTask;
    SimDuration period = 0;  ///< > 0 for periodic tasks
    // Callbacks live in a side map so cancel() can free them eagerly.
  };
  /// Max-heap comparator that makes the (time, seq)-smallest entry the
  /// heap top — std::push_heap/std::pop_heap with this ordering yield a
  /// min-queue, exactly the old std::priority_queue behaviour.
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  TaskId push(SimTime t, Callback cb, SimDuration period);
  void push_event(Event e);
  bool pop_next(Event& out);
  /// Removes every cancelled entry from the heap in one pass and
  /// restores the heap property.  Ordering of the survivors is fully
  /// determined by (time, seq), so compaction never perturbs execution
  /// order — it only reclaims memory.
  void compact();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  TaskId next_id_ = 1;
  bool stop_requested_ = false;
  bool running_ = false;  ///< re-entrancy guard; see running()
  std::vector<Event> heap_;  ///< binary heap under EventOrder
  std::unordered_set<TaskId> cancelled_;
  std::unordered_map<TaskId, Callback> callbacks_;
};

}  // namespace shs::sim
