// osu.hpp — OSU micro-benchmark workloads (osu_bw, osu_latency).
//
// Reimplements the measurement loops of the OSU suite the paper uses
// (Section IV-A): window-based streaming bandwidth and ping-pong latency,
// with warm-up (skip) iterations, over the mini-MPI layer.  The two ranks
// run on two OS threads; results read off the ranks' *virtual* clocks, so
// they reflect the calibrated Slingshot timing model, not host load.
#pragma once

#include <cstdint>
#include <vector>

#include "mpi/comm.hpp"
#include "util/status.hpp"

namespace shs::osu {

/// The packet-size sweep of Figs 5-8: 1 B, 2 B, ... 1 MB.
std::vector<std::uint64_t> default_size_sweep();

struct BwOptions {
  int iterations = 400;  ///< measured iterations (paper: 10'000)
  int skip = 10;         ///< warm-up iterations
  int window = 32;       ///< messages in flight per iteration (OSU: 64)
};

struct LatencyOptions {
  int iterations = 1000;  ///< measured iterations (paper: 20'000)
  int skip = 20;
};

/// Runs osu_bw between ranks 0 and 1 of `comm` (two threads).
/// Returns throughput in MB/s computed from virtual time.
Result<double> run_osu_bw(mpi::Communicator& comm, std::uint64_t size,
                          const BwOptions& options = {});

/// Runs osu_latency (ping-pong) between ranks 0 and 1 of `comm`.
/// Returns one-way latency in microseconds.
Result<double> run_osu_latency(mpi::Communicator& comm, std::uint64_t size,
                               const LatencyOptions& options = {});

}  // namespace shs::osu
