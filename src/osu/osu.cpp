#include "osu/osu.hpp"

#include <thread>

#include "util/units.hpp"

namespace shs::osu {

namespace {
constexpr std::uint32_t kBwDataTag = 101;
constexpr std::uint32_t kBwAckTag = 102;
constexpr std::uint32_t kPingTag = 201;
constexpr std::uint32_t kPongTag = 202;
}  // namespace

std::vector<std::uint64_t> default_size_sweep() {
  std::vector<std::uint64_t> sizes;
  for (std::uint64_t s = 1; s <= (1ULL << 20); s <<= 1) sizes.push_back(s);
  return sizes;
}

Result<double> run_osu_bw(mpi::Communicator& comm, std::uint64_t size,
                          const BwOptions& options) {
  if (comm.size() < 2) {
    return Result<double>(invalid_argument("osu_bw needs two ranks"));
  }
  mpi::RankContext& sender = comm.rank(0);
  mpi::RankContext& receiver = comm.rank(1);

  Status sender_status = Status::ok();
  Status receiver_status = Status::ok();
  SimTime t_begin = 0;
  SimTime t_end = 0;

  std::thread recv_thread([&] {
    for (int it = 0; it < options.iterations + options.skip; ++it) {
      for (int w = 0; w < options.window; ++w) {
        auto r = receiver.recv(0, kBwDataTag, {});
        if (!r.is_ok()) {
          receiver_status = r.status();
          return;
        }
      }
      // Window acknowledgement, as osu_bw's receiver sends after each
      // window (4-byte ack in the original).
      const Status st = receiver.send(0, kBwAckTag, {}, 4);
      if (!st.is_ok()) {
        receiver_status = st;
        return;
      }
    }
  });

  for (int it = 0; it < options.iterations + options.skip; ++it) {
    if (it == options.skip) t_begin = sender.vt();
    for (int w = 0; w < options.window; ++w) {
      const Status st = sender.send(1, kBwDataTag, {}, size);
      if (!st.is_ok()) {
        sender_status = st;
        break;
      }
    }
    if (!sender_status.is_ok()) break;
    auto ack = sender.recv(1, kBwAckTag, {});
    if (!ack.is_ok()) {
      sender_status = ack.status();
      break;
    }
  }
  t_end = sender.vt();
  recv_thread.join();

  if (!sender_status.is_ok()) return Result<double>(sender_status);
  if (!receiver_status.is_ok()) return Result<double>(receiver_status);

  const double bytes = static_cast<double>(size) *
                       static_cast<double>(options.iterations) *
                       static_cast<double>(options.window);
  const double seconds = to_seconds(t_end - t_begin);
  if (seconds <= 0) return Result<double>(internal_error("no elapsed time"));
  return bytes / seconds / 1.0e6;  // MB/s, as OSU reports
}

Result<double> run_osu_latency(mpi::Communicator& comm, std::uint64_t size,
                               const LatencyOptions& options) {
  if (comm.size() < 2) {
    return Result<double>(invalid_argument("osu_latency needs two ranks"));
  }
  mpi::RankContext& ping = comm.rank(0);
  mpi::RankContext& pong = comm.rank(1);

  Status ping_status = Status::ok();
  Status pong_status = Status::ok();
  SimTime t_begin = 0;
  SimTime t_end = 0;

  std::thread pong_thread([&] {
    for (int it = 0; it < options.iterations + options.skip; ++it) {
      auto r = pong.recv(0, kPingTag, {});
      if (!r.is_ok()) {
        pong_status = r.status();
        return;
      }
      const Status st = pong.send(0, kPongTag, {}, size);
      if (!st.is_ok()) {
        pong_status = st;
        return;
      }
    }
  });

  for (int it = 0; it < options.iterations + options.skip; ++it) {
    if (it == options.skip) t_begin = ping.vt();
    const Status st = ping.send(1, kPingTag, {}, size);
    if (!st.is_ok()) {
      ping_status = st;
      break;
    }
    auto r = ping.recv(1, kPongTag, {});
    if (!r.is_ok()) {
      ping_status = r.status();
      break;
    }
  }
  t_end = ping.vt();
  pong_thread.join();

  if (!ping_status.is_ok()) return Result<double>(ping_status);
  if (!pong_status.is_ok()) return Result<double>(pong_status);

  const double us = to_micros(t_end - t_begin);
  // One-way latency: total round-trip time over 2*iterations.
  return us / (2.0 * static_cast<double>(options.iterations));
}

}  // namespace shs::osu
