// drc.hpp — Dynamic RDMA Credential service (extension).
//
// The paper mentions HPE's DRC mechanism as the alternative to ahead-of-
// time CXI service configuration: "the HPE-provided Dynamic RDMA
// Credential (DRC) mechanism can be used, which allows users to request
// new VNIs at run time" (Section II-C).  This module implements that
// path on top of the same VNI registry, so non-Kubernetes workloads can
// acquire an isolated VNI + CXI service at runtime — and so tests can
// compare both acquisition paths against the same exclusivity rules.
#pragma once

#include <string>

#include "core/vni_registry.hpp"
#include "cxi/driver.hpp"
#include "linuxsim/kernel.hpp"
#include "sim/event_loop.hpp"

namespace shs::core {

/// A granted credential: the VNI plus the CXI service that admits the
/// requesting process (by netns).
struct DrcCredential {
  hsn::Vni vni = hsn::kInvalidVni;
  cxi::SvcId svc = cxi::kInvalidSvc;
  std::string owner;
  linuxsim::NetNsInode netns = 0;
};

class DrcService {
 public:
  DrcService(VniRegistry& registry, sim::EventLoop& loop)
      : registry_(registry), loop_(loop) {}

  /// Acquires a VNI for `requester` and installs a netns-member CXI
  /// service on `driver` (using `privileged` for the root-only call).
  /// `owner_tag` names the credential in the VNI database.
  Result<DrcCredential> request(cxi::CxiDriver& driver,
                                linuxsim::Kernel& kernel,
                                linuxsim::Pid requester,
                                linuxsim::Pid privileged,
                                const std::string& owner_tag);

  /// Releases the credential: destroys the service, quarantines the VNI.
  Status release(cxi::CxiDriver& driver, linuxsim::Pid privileged,
                 const DrcCredential& cred);

 private:
  VniRegistry& registry_;
  sim::EventLoop& loop_;
};

}  // namespace shs::core
