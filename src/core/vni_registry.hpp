// vni_registry.hpp — the VNI Database schema and operations (Section
// III-C2).
//
// Stores the cluster-wide ground truth of VNI assignments in the embedded
// ACID store:
//   * `vni_alloc`  — one row per allocated or quarantined VNI
//     (vni, owner, state, acquired_at, released_at);
//   * `vni_users`  — claim-redemption bookkeeping (vni, user);
//   * `audit_log`  — every allocation/release/user change, as the paper
//     requires ("we keep a log for all VNI allocation and release
//     requests, as well as VNI user addition and removal requests").
//
// Every multi-step operation (check-then-insert acquisition, release,
// user add/remove) executes inside a single serializable transaction, so
// two concurrent acquisitions can never hand out the same VNI — the
// TOCTOU hazard the paper eliminates via SQLite's ACID properties.
//
// Released VNIs sit in *quarantine* for `quarantine` (default 30 s of
// virtual time) before becoming acquirable again: a straggling pod whose
// job died may hold a CXI service for up to the 30 s grace period, and a
// quarantined VNI must never be re-issued within that window.
//
// Hot path: the registry keeps an in-memory index over `vni_alloc` — a
// free-list of acquirable VNIs, an owner -> allocation map, and a
// quarantine expiry queue — so an acquisition costs O(log n) instead of
// a full table scan per request.  The database stays the ground truth:
// index updates apply only after a successful commit, and any failed
// transaction (including an injected crash) marks the index stale so it
// is rebuilt from the recovered tables on next use.  Journal-recovery
// semantics are therefore identical to the scan-based implementation.
#pragma once

#include <map>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/database.hpp"
#include "hsn/types.hpp"
#include "util/status.hpp"
#include "util/units.hpp"

namespace shs::core {

struct VniRegistryConfig {
  hsn::Vni vni_min = 1024;
  hsn::Vni vni_max = 65'535;
  SimDuration quarantine = 30 * kSecond;
};

struct VniAuditRecord {
  SimTime ts = 0;
  std::string op;
  hsn::Vni vni = hsn::kInvalidVni;
  std::string detail;
};

class VniRegistry {
 public:
  /// Creates the schema in `database` (tables must not already exist).
  VniRegistry(db::Database& database, VniRegistryConfig config = {});

  /// Atomically acquires a free VNI for `owner`.  Quarantined VNIs whose
  /// window has expired are garbage-collected in the same transaction.
  Result<hsn::Vni> acquire(const std::string& owner, SimTime now);

  /// Releases the VNI owned by `owner` into quarantine.
  Status release(const std::string& owner, SimTime now);

  /// The VNI currently allocated to `owner`.
  Result<hsn::Vni> find_by_owner(const std::string& owner) const;

  /// Adds `user` to `vni` (idempotent).
  Status add_user(hsn::Vni vni, const std::string& user, SimTime now);
  /// Removes `user` from `vni` (idempotent: removing an absent user is
  /// OK, because /finalize can be called more than once).
  Status remove_user(hsn::Vni vni, const std::string& user, SimTime now);
  [[nodiscard]] std::vector<std::string> users(hsn::Vni vni) const;

  // -- Introspection.
  [[nodiscard]] std::size_t allocated_count() const;
  [[nodiscard]] std::size_t quarantined_count(SimTime now) const;
  [[nodiscard]] std::vector<VniAuditRecord> audit_log() const;
  [[nodiscard]] const VniRegistryConfig& config() const noexcept {
    return config_;
  }

 private:
  void audit(db::Transaction& txn, SimTime now, const std::string& op,
             hsn::Vni vni, const std::string& detail);

  /// One live `vni_alloc` row, as the index tracks it.
  struct AllocEntry {
    hsn::Vni vni = hsn::kInvalidVni;
    db::RowId row = 0;
  };
  struct QuarantineEntry {
    SimTime released = 0;
    db::RowId row = 0;
  };

  /// Rebuilds the in-memory index from a table snapshot.  Caller holds
  /// index_mutex_.
  Status rebuild_index_locked();

  db::Database& db_;
  VniRegistryConfig config_;

  /// Guards the index (acquire/release may race from test threads; the
  /// database itself is already serialized).
  mutable std::mutex index_mutex_;
  /// True until the first rebuild and again after any failed commit —
  /// the crash-recovery hook that keeps the index honest.
  bool index_stale_ = true;
  /// VNIs acquirable right now (allocated and in-window quarantined ones
  /// excluded).  Ordered: acquisition grants the lowest, like the scan.
  std::set<hsn::Vni> free_;
  std::unordered_map<std::string, AllocEntry> owners_;
  std::unordered_map<hsn::Vni, QuarantineEntry> quarantined_;
  /// Quarantine expiry queue (released_at -> vni) so GC pops only what
  /// actually expired.
  std::multimap<SimTime, hsn::Vni> expiry_;
};

}  // namespace shs::core
