// device_plugin.hpp — model of HPE's CXI Kubernetes *device plugin*
// (related work, Section V).
//
// The device plugin registers CXI NICs as a Kubernetes resource and, at
// container creation, mounts the CXI character device and libraries into
// the container.  Crucially — and this is the contrast the paper draws —
// it "does not handle CXI service management and instead assumes external
// management", so by itself it provides *shared* NIC access with no
// container-granular isolation: every pod that gets the device can only
// authenticate against whatever externally-managed (typically global)
// services exist.
//
// Implemented here so the repository can demonstrate that difference:
// device-plugin-only pods land on the default service's global VNI, while
// CXI-CNI pods get per-job netns-isolated VNIs (see device_plugin_test).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "k8s/objects.hpp"
#include "util/status.hpp"

namespace shs::core {

/// What the plugin injects into a container at allocation time.
struct DeviceMount {
  std::string device_path;    ///< e.g. /dev/cxi0
  std::string library_path;   ///< e.g. /usr/lib64/libcxi.so
  k8s::Uid pod_uid = k8s::kNoUid;
};

/// Per-node device plugin: advertises `shares` slots on one NIC (the
/// k8s-rdma-shared-dev-plugin model the paper cites as variant 1).
class CxiDevicePlugin {
 public:
  CxiDevicePlugin(std::string node, int shares)
      : node_(std::move(node)), shares_(shares) {}

  [[nodiscard]] const std::string& node() const noexcept { return node_; }
  /// Advertised resource capacity ("hpe.com/cxi": shares).
  [[nodiscard]] int capacity() const noexcept { return shares_; }
  [[nodiscard]] int allocated() const noexcept {
    return static_cast<int>(mounts_.size());
  }

  /// Allocates a device share to `pod` and returns the mount spec.
  /// Fails with kResourceExhausted once all shares are taken.
  Result<DeviceMount> allocate(const k8s::Pod& pod);

  /// Releases the pod's share (idempotent).
  Status release(k8s::Uid pod_uid);

  [[nodiscard]] bool has_device(k8s::Uid pod_uid) const {
    return mounts_.contains(pod_uid);
  }

 private:
  std::string node_;
  int shares_;
  std::map<k8s::Uid, DeviceMount> mounts_;
};

}  // namespace shs::core
