#include "core/vni_endpoint.hpp"

#include "util/log.hpp"
#include "util/strings.hpp"

namespace shs::core {

namespace {
constexpr const char* kTag = "vni-endpoint";
}

std::string VniEndpoint::job_owner_key(const k8s::Job& job) {
  return strfmt("job/%s/%s#%llu", job.meta.ns.c_str(),
                job.meta.name.c_str(),
                static_cast<unsigned long long>(job.meta.uid));
}

std::string VniEndpoint::claim_owner_key(const std::string& ns,
                                         const std::string& claim_name) {
  return strfmt("claim/%s/%s", ns.c_str(), claim_name.c_str());
}

Result<std::vector<k8s::VniObject>> VniEndpoint::sync_job(
    const k8s::Job& job) {
  using R = Result<std::vector<k8s::VniObject>>;
  if (!available_) return R(unavailable("VNI endpoint is down"));
  ++counters_.sync_job;

  const std::string ann = job.meta.annotation(k8s::kVniAnnotation);
  if (ann.empty()) return std::vector<k8s::VniObject>{};

  k8s::VniObject child;
  child.meta.name = job.meta.name + "-vni";
  child.meta.ns = job.meta.ns;
  child.bound_kind = "Job";
  child.bound_name = job.meta.name;
  child.bound_uid = job.meta.uid;

  if (ann == "true") {
    // Per-Resource model: the job owns a fresh VNI.
    auto vni = registry_.acquire(job_owner_key(job), loop_.now());
    if (!vni.is_ok()) return R(vni.status());
    ++counters_.acquisitions;
    child.vni = vni.value();
    child.virtual_instance = false;
    SHS_DEBUG(kTag) << "sync_job " << job.meta.name << " -> VNI "
                    << child.vni;
    return std::vector<k8s::VniObject>{child};
  }

  // Claims model: the annotation names a VniClaim; the job becomes a user
  // of the claim's VNI through a virtual (non-owning) instance.
  auto vni = registry_.find_by_owner(claim_owner_key(job.meta.ns, ann));
  if (!vni.is_ok()) {
    return R(not_found(strfmt("no VNI claim '%s' in namespace %s",
                              ann.c_str(), job.meta.ns.c_str())));
  }
  const Status add =
      registry_.add_user(vni.value(), job_owner_key(job), loop_.now());
  if (!add.is_ok()) return R(add);
  child.vni = vni.value();
  child.virtual_instance = true;
  child.claim_name = ann;
  return std::vector<k8s::VniObject>{child};
}

Result<bool> VniEndpoint::finalize_job(const k8s::Job& job) {
  if (!available_) return Result<bool>(unavailable("VNI endpoint is down"));
  ++counters_.finalize_job;

  const std::string ann = job.meta.annotation(k8s::kVniAnnotation);
  if (ann.empty()) return true;

  if (ann == "true") {
    const Status st = registry_.release(job_owner_key(job), loop_.now());
    if (!st.is_ok()) return Result<bool>(st);
    ++counters_.releases;
    return true;
  }
  // Virtual instance: drop this job as a user of the claim's VNI.
  auto vni = registry_.find_by_owner(claim_owner_key(job.meta.ns, ann));
  if (!vni.is_ok()) return true;  // claim already gone; nothing to undo
  const Status st =
      registry_.remove_user(vni.value(), job_owner_key(job), loop_.now());
  if (!st.is_ok()) return Result<bool>(st);
  return true;
}

Result<std::vector<k8s::VniObject>> VniEndpoint::sync_claim(
    const k8s::VniClaim& claim) {
  using R = Result<std::vector<k8s::VniObject>>;
  if (!available_) return R(unavailable("VNI endpoint is down"));
  ++counters_.sync_claim;

  const std::string owner =
      claim_owner_key(claim.meta.ns, claim.spec.claim_name);
  auto vni = registry_.acquire(owner, loop_.now());
  if (!vni.is_ok()) return R(vni.status());
  ++counters_.acquisitions;

  k8s::VniObject child;
  child.meta.name = claim.meta.name + "-vni";
  child.meta.ns = claim.meta.ns;
  child.vni = vni.value();
  child.bound_kind = "VniClaim";
  child.bound_name = claim.meta.name;
  child.bound_uid = claim.meta.uid;
  child.virtual_instance = false;
  child.claim_name = claim.spec.claim_name;
  return std::vector<k8s::VniObject>{child};
}

Result<bool> VniEndpoint::finalize_claim(const k8s::VniClaim& claim) {
  if (!available_) return Result<bool>(unavailable("VNI endpoint is down"));
  ++counters_.finalize_claim;

  const std::string owner =
      claim_owner_key(claim.meta.ns, claim.spec.claim_name);
  auto vni = registry_.find_by_owner(owner);
  if (!vni.is_ok()) return true;  // already released
  if (!registry_.users(vni.value()).empty()) {
    // Deletion only proceeds once every redeeming job is gone.
    return false;
  }
  const Status st = registry_.release(owner, loop_.now());
  if (!st.is_ok()) return Result<bool>(st);
  ++counters_.releases;
  return true;
}

}  // namespace shs::core
