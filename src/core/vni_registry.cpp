#include "core/vni_registry.hpp"

#include <algorithm>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace shs::core {

namespace {
constexpr const char* kTag = "vni-db";
constexpr const char* kAllocTable = "vni_alloc";
constexpr const char* kUsersTable = "vni_users";
constexpr const char* kAuditTable = "audit_log";

// vni_alloc columns.
constexpr std::size_t kColVni = 0;
constexpr std::size_t kColOwner = 1;
constexpr std::size_t kColState = 2;      // "allocated" | "quarantine"
constexpr std::size_t kColAcquired = 3;
constexpr std::size_t kColReleased = 4;

// vni_users columns.
constexpr std::size_t kUColVni = 0;
constexpr std::size_t kUColUser = 1;
}  // namespace

VniRegistry::VniRegistry(db::Database& database, VniRegistryConfig config)
    : db_(database), config_(config) {
  (void)db_.create_table(
      {kAllocTable, {"vni", "owner", "state", "acquired_at", "released_at"}});
  (void)db_.create_table({kUsersTable, {"vni", "user"}});
  (void)db_.create_table({kAuditTable, {"ts", "op", "vni", "detail"}});
}

void VniRegistry::audit(db::Transaction& txn, SimTime now,
                        const std::string& op, hsn::Vni vni,
                        const std::string& detail) {
  (void)txn.insert(kAuditTable,
                   {static_cast<std::int64_t>(now), op,
                    static_cast<std::int64_t>(vni), detail});
}

Status VniRegistry::rebuild_index_locked() {
  if (db_.crashed()) {
    // snapshot() would serve the half-applied mid-crash tables; trusting
    // them would let a post-recovery acquire double-allocate a VNI the
    // journal preserved.  Stay stale until recover() has replayed it.
    return failed_precondition("VNI database crashed; recover() first");
  }
  auto rows = db_.snapshot(kAllocTable);
  if (!rows.is_ok()) return rows.status();
  free_.clear();
  owners_.clear();
  quarantined_.clear();
  expiry_.clear();
  for (hsn::Vni v = config_.vni_min; v <= config_.vni_max; ++v) {
    free_.insert(v);
  }
  for (const auto& [id, row] : rows.value()) {
    const auto vni = static_cast<hsn::Vni>(db::as_int(row[kColVni]));
    free_.erase(vni);
    if (db::as_text(row[kColState]) == "allocated") {
      owners_.emplace(db::as_text(row[kColOwner]), AllocEntry{vni, id});
    } else {
      const SimTime released = db::as_int(row[kColReleased]);
      quarantined_.emplace(vni, QuarantineEntry{released, id});
      expiry_.emplace(released, vni);
    }
  }
  index_stale_ = false;
  return Status::ok();
}

Result<hsn::Vni> VniRegistry::acquire(const std::string& owner, SimTime now) {
  std::lock_guard<std::mutex> lock(index_mutex_);
  if (index_stale_) {
    SHS_RETURN_IF_ERROR(rebuild_index_locked());
  }

  // Idempotent re-acquisition by the same owner (the /sync hook may fire
  // for both create and update events).
  if (const auto it = owners_.find(owner); it != owners_.end()) {
    return it->second.vni;
  }

  // Quarantined VNIs whose window expired become candidates again; their
  // rows are garbage-collected inside the grant transaction, exactly as
  // the scan-based implementation did.
  std::vector<std::pair<hsn::Vni, db::RowId>> expired;
  for (auto it = expiry_.begin();
       it != expiry_.end() && now - it->first >= config_.quarantine; ++it) {
    expired.emplace_back(it->second, quarantined_.at(it->second).row);
  }

  // Lowest acquirable VNI: the free-list head or an expired quarantined
  // VNI below it, matching the scan's lowest-free-wins order.
  hsn::Vni granted = free_.empty() ? hsn::kInvalidVni : *free_.begin();
  for (const auto& [vni, row] : expired) {
    if (granted == hsn::kInvalidVni || vni < granted) granted = vni;
  }
  if (granted == hsn::kInvalidVni) {
    // Exhausted: like the scan path, nothing commits (the expired-row GC
    // rolls back with the failed transaction, i.e. never starts).
    return Result<hsn::Vni>(resource_exhausted("VNI pool exhausted"));
  }

  db::RowId granted_row = 0;
  const Status st = db_.with_transaction([&](db::Transaction& txn) -> Status {
    for (const auto& [vni, row] : expired) {
      SHS_RETURN_IF_ERROR(txn.erase(kAllocTable, row));
    }
    auto ins = txn.insert(
        kAllocTable,
        {static_cast<std::int64_t>(granted), owner, std::string("allocated"),
         static_cast<std::int64_t>(now), std::int64_t{0}});
    if (!ins.is_ok()) return ins.status();
    granted_row = ins.value();
    audit(txn, now, "acquire", granted, owner);
    return Status::ok();
  });
  if (!st.is_ok()) {
    // The commit may or may not have journaled before failing (injected
    // crash): rebuild from the recovered tables before trusting the
    // index again.
    index_stale_ = true;
    return Result<hsn::Vni>(st);
  }

  // Commit landed: apply the same changes to the index.
  for (const auto& [vni, row] : expired) {
    quarantined_.erase(vni);
    if (vni != granted) free_.insert(vni);
  }
  if (!expired.empty()) {
    expiry_.erase(expiry_.begin(),
                  expiry_.upper_bound(now - config_.quarantine));
  }
  free_.erase(granted);
  owners_.emplace(owner, AllocEntry{granted, granted_row});
  return granted;
}

Status VniRegistry::release(const std::string& owner, SimTime now) {
  std::lock_guard<std::mutex> lock(index_mutex_);
  if (index_stale_) {
    SHS_RETURN_IF_ERROR(rebuild_index_locked());
  }
  const auto owner_it = owners_.find(owner);
  if (owner_it == owners_.end()) {
    // Idempotent: releasing something already released/absent is OK —
    // /finalize may run repeatedly.
    return Status::ok();
  }
  const hsn::Vni vni = owner_it->second.vni;
  const db::RowId row_id = owner_it->second.row;

  const Status st = db_.with_transaction([&](db::Transaction& txn) -> Status {
    auto row = txn.get(kAllocTable, row_id);
    if (!row.is_ok()) return row.status();
    db::Row updated = row.value();
    updated[kColState] = std::string("quarantine");
    updated[kColReleased] = static_cast<std::int64_t>(now);
    SHS_RETURN_IF_ERROR(txn.update(kAllocTable, row_id, updated));
    // Any leftover user entries die with the allocation.
    auto users_rows = txn.scan(kUsersTable, [&](const db::Row& u) {
      return static_cast<hsn::Vni>(db::as_int(u[kUColVni])) == vni;
    });
    if (users_rows.is_ok()) {
      for (const auto& [uid, urow] : users_rows.value()) {
        SHS_RETURN_IF_ERROR(txn.erase(kUsersTable, uid));
      }
    }
    audit(txn, now, "release", vni, owner);
    return Status::ok();
  });
  if (!st.is_ok()) {
    index_stale_ = true;
    return st;
  }
  owners_.erase(owner_it);
  quarantined_.emplace(vni, QuarantineEntry{now, row_id});
  expiry_.emplace(now, vni);
  return Status::ok();
}

Result<hsn::Vni> VniRegistry::find_by_owner(const std::string& owner) const {
  auto rows = db_.snapshot(kAllocTable, [&](const db::Row& row) {
    return db::as_text(row[kColOwner]) == owner &&
           db::as_text(row[kColState]) == "allocated";
  });
  if (!rows.is_ok()) return Result<hsn::Vni>(rows.status());
  if (rows.value().empty()) {
    return Result<hsn::Vni>(not_found("no VNI for owner " + owner));
  }
  return static_cast<hsn::Vni>(db::as_int(rows.value().front().second[kColVni]));
}

Status VniRegistry::add_user(hsn::Vni vni, const std::string& user,
                             SimTime now) {
  return db_.with_transaction([&](db::Transaction& txn) -> Status {
    // The VNI must be a live allocation.
    auto alloc = txn.scan(kAllocTable, [&](const db::Row& row) {
      return static_cast<hsn::Vni>(db::as_int(row[kColVni])) == vni &&
             db::as_text(row[kColState]) == "allocated";
    });
    if (!alloc.is_ok()) return alloc.status();
    if (alloc.value().empty()) {
      return failed_precondition(strfmt("VNI %u is not allocated", vni));
    }
    auto existing = txn.scan(kUsersTable, [&](const db::Row& row) {
      return static_cast<hsn::Vni>(db::as_int(row[kUColVni])) == vni &&
             db::as_text(row[kUColUser]) == user;
    });
    if (!existing.is_ok()) return existing.status();
    if (!existing.value().empty()) return Status::ok();  // idempotent
    auto ins = txn.insert(kUsersTable,
                          {static_cast<std::int64_t>(vni), user});
    if (!ins.is_ok()) return ins.status();
    audit(txn, now, "add_user", vni, user);
    return Status::ok();
  });
}

Status VniRegistry::remove_user(hsn::Vni vni, const std::string& user,
                                SimTime now) {
  return db_.with_transaction([&](db::Transaction& txn) -> Status {
    auto existing = txn.scan(kUsersTable, [&](const db::Row& row) {
      return static_cast<hsn::Vni>(db::as_int(row[kUColVni])) == vni &&
             db::as_text(row[kUColUser]) == user;
    });
    if (!existing.is_ok()) return existing.status();
    for (const auto& [id, row] : existing.value()) {
      SHS_RETURN_IF_ERROR(txn.erase(kUsersTable, id));
    }
    if (!existing.value().empty()) {
      audit(txn, now, "remove_user", vni, user);
    }
    return Status::ok();
  });
}

std::vector<std::string> VniRegistry::users(hsn::Vni vni) const {
  std::vector<std::string> out;
  auto rows = db_.snapshot(kUsersTable, [&](const db::Row& row) {
    return static_cast<hsn::Vni>(db::as_int(row[kUColVni])) == vni;
  });
  if (rows.is_ok()) {
    for (const auto& [id, row] : rows.value()) {
      out.push_back(db::as_text(row[kUColUser]));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t VniRegistry::allocated_count() const {
  auto rows = db_.snapshot(kAllocTable, [](const db::Row& row) {
    return db::as_text(row[kColState]) == "allocated";
  });
  return rows.is_ok() ? rows.value().size() : 0;
}

std::size_t VniRegistry::quarantined_count(SimTime now) const {
  auto rows = db_.snapshot(kAllocTable, [&](const db::Row& row) {
    return db::as_text(row[kColState]) == "quarantine" &&
           now - db::as_int(row[kColReleased]) < config_.quarantine;
  });
  return rows.is_ok() ? rows.value().size() : 0;
}

std::vector<VniAuditRecord> VniRegistry::audit_log() const {
  std::vector<VniAuditRecord> out;
  auto rows = db_.snapshot(kAuditTable);
  if (rows.is_ok()) {
    for (const auto& [id, row] : rows.value()) {
      out.push_back(VniAuditRecord{
          db::as_int(row[0]), db::as_text(row[1]),
          static_cast<hsn::Vni>(db::as_int(row[2])), db::as_text(row[3])});
    }
  }
  return out;
}

}  // namespace shs::core
