#include "core/vni_registry.hpp"

#include <algorithm>
#include <set>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace shs::core {

namespace {
constexpr const char* kTag = "vni-db";
constexpr const char* kAllocTable = "vni_alloc";
constexpr const char* kUsersTable = "vni_users";
constexpr const char* kAuditTable = "audit_log";

// vni_alloc columns.
constexpr std::size_t kColVni = 0;
constexpr std::size_t kColOwner = 1;
constexpr std::size_t kColState = 2;      // "allocated" | "quarantine"
constexpr std::size_t kColAcquired = 3;
constexpr std::size_t kColReleased = 4;

// vni_users columns.
constexpr std::size_t kUColVni = 0;
constexpr std::size_t kUColUser = 1;
}  // namespace

VniRegistry::VniRegistry(db::Database& database, VniRegistryConfig config)
    : db_(database), config_(config) {
  (void)db_.create_table(
      {kAllocTable, {"vni", "owner", "state", "acquired_at", "released_at"}});
  (void)db_.create_table({kUsersTable, {"vni", "user"}});
  (void)db_.create_table({kAuditTable, {"ts", "op", "vni", "detail"}});
}

void VniRegistry::audit(db::Transaction& txn, SimTime now,
                        const std::string& op, hsn::Vni vni,
                        const std::string& detail) {
  (void)txn.insert(kAuditTable,
                   {static_cast<std::int64_t>(now), op,
                    static_cast<std::int64_t>(vni), detail});
}

Result<hsn::Vni> VniRegistry::acquire(const std::string& owner, SimTime now) {
  hsn::Vni granted = hsn::kInvalidVni;
  const Status st = db_.with_transaction([&](db::Transaction& txn) -> Status {
    auto rows = txn.scan(kAllocTable);
    if (!rows.is_ok()) return rows.status();

    std::set<hsn::Vni> in_use;
    for (const auto& [id, row] : rows.value()) {
      const auto vni = static_cast<hsn::Vni>(db::as_int(row[kColVni]));
      const std::string& state = db::as_text(row[kColState]);
      if (state == "allocated") {
        if (db::as_text(row[kColOwner]) == owner) {
          // Idempotent re-acquisition by the same owner (the /sync hook
          // may fire for both create and update events).
          granted = vni;
          return Status::ok();
        }
        in_use.insert(vni);
        continue;
      }
      // Quarantined: blocked until the window expires; expired rows are
      // garbage-collected here, inside the same transaction.
      const SimTime released = db::as_int(row[kColReleased]);
      if (now - released < config_.quarantine) {
        in_use.insert(vni);
      } else {
        SHS_RETURN_IF_ERROR(txn.erase(kAllocTable, id));
      }
    }

    for (hsn::Vni v = config_.vni_min; v <= config_.vni_max; ++v) {
      if (!in_use.contains(v)) {
        granted = v;
        break;
      }
    }
    if (granted == hsn::kInvalidVni) {
      return resource_exhausted("VNI pool exhausted");
    }
    auto ins = txn.insert(
        kAllocTable,
        {static_cast<std::int64_t>(granted), owner, std::string("allocated"),
         static_cast<std::int64_t>(now), std::int64_t{0}});
    if (!ins.is_ok()) return ins.status();
    audit(txn, now, "acquire", granted, owner);
    return Status::ok();
  });
  if (!st.is_ok()) return Result<hsn::Vni>(st);
  return granted;
}

Status VniRegistry::release(const std::string& owner, SimTime now) {
  return db_.with_transaction([&](db::Transaction& txn) -> Status {
    auto rows = txn.scan(kAllocTable, [&](const db::Row& row) {
      return db::as_text(row[kColOwner]) == owner &&
             db::as_text(row[kColState]) == "allocated";
    });
    if (!rows.is_ok()) return rows.status();
    if (rows.value().empty()) {
      // Idempotent: releasing something already released/absent is OK —
      // /finalize may run repeatedly.
      return Status::ok();
    }
    for (const auto& [id, row] : rows.value()) {
      db::Row updated = row;
      updated[kColState] = std::string("quarantine");
      updated[kColReleased] = static_cast<std::int64_t>(now);
      SHS_RETURN_IF_ERROR(txn.update(kAllocTable, id, updated));
      const auto vni = static_cast<hsn::Vni>(db::as_int(row[kColVni]));
      // Any leftover user entries die with the allocation.
      auto users_rows = txn.scan(kUsersTable, [&](const db::Row& u) {
        return static_cast<hsn::Vni>(db::as_int(u[kUColVni])) == vni;
      });
      if (users_rows.is_ok()) {
        for (const auto& [uid, urow] : users_rows.value()) {
          SHS_RETURN_IF_ERROR(txn.erase(kUsersTable, uid));
        }
      }
      audit(txn, now, "release", vni, owner);
    }
    return Status::ok();
  });
}

Result<hsn::Vni> VniRegistry::find_by_owner(const std::string& owner) const {
  auto rows = db_.snapshot(kAllocTable, [&](const db::Row& row) {
    return db::as_text(row[kColOwner]) == owner &&
           db::as_text(row[kColState]) == "allocated";
  });
  if (!rows.is_ok()) return Result<hsn::Vni>(rows.status());
  if (rows.value().empty()) {
    return Result<hsn::Vni>(not_found("no VNI for owner " + owner));
  }
  return static_cast<hsn::Vni>(db::as_int(rows.value().front().second[kColVni]));
}

Status VniRegistry::add_user(hsn::Vni vni, const std::string& user,
                             SimTime now) {
  return db_.with_transaction([&](db::Transaction& txn) -> Status {
    // The VNI must be a live allocation.
    auto alloc = txn.scan(kAllocTable, [&](const db::Row& row) {
      return static_cast<hsn::Vni>(db::as_int(row[kColVni])) == vni &&
             db::as_text(row[kColState]) == "allocated";
    });
    if (!alloc.is_ok()) return alloc.status();
    if (alloc.value().empty()) {
      return failed_precondition(strfmt("VNI %u is not allocated", vni));
    }
    auto existing = txn.scan(kUsersTable, [&](const db::Row& row) {
      return static_cast<hsn::Vni>(db::as_int(row[kUColVni])) == vni &&
             db::as_text(row[kUColUser]) == user;
    });
    if (!existing.is_ok()) return existing.status();
    if (!existing.value().empty()) return Status::ok();  // idempotent
    auto ins = txn.insert(kUsersTable,
                          {static_cast<std::int64_t>(vni), user});
    if (!ins.is_ok()) return ins.status();
    audit(txn, now, "add_user", vni, user);
    return Status::ok();
  });
}

Status VniRegistry::remove_user(hsn::Vni vni, const std::string& user,
                                SimTime now) {
  return db_.with_transaction([&](db::Transaction& txn) -> Status {
    auto existing = txn.scan(kUsersTable, [&](const db::Row& row) {
      return static_cast<hsn::Vni>(db::as_int(row[kUColVni])) == vni &&
             db::as_text(row[kUColUser]) == user;
    });
    if (!existing.is_ok()) return existing.status();
    for (const auto& [id, row] : existing.value()) {
      SHS_RETURN_IF_ERROR(txn.erase(kUsersTable, id));
    }
    if (!existing.value().empty()) {
      audit(txn, now, "remove_user", vni, user);
    }
    return Status::ok();
  });
}

std::vector<std::string> VniRegistry::users(hsn::Vni vni) const {
  std::vector<std::string> out;
  auto rows = db_.snapshot(kUsersTable, [&](const db::Row& row) {
    return static_cast<hsn::Vni>(db::as_int(row[kUColVni])) == vni;
  });
  if (rows.is_ok()) {
    for (const auto& [id, row] : rows.value()) {
      out.push_back(db::as_text(row[kUColUser]));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t VniRegistry::allocated_count() const {
  auto rows = db_.snapshot(kAllocTable, [](const db::Row& row) {
    return db::as_text(row[kColState]) == "allocated";
  });
  return rows.is_ok() ? rows.value().size() : 0;
}

std::size_t VniRegistry::quarantined_count(SimTime now) const {
  auto rows = db_.snapshot(kAllocTable, [&](const db::Row& row) {
    return db::as_text(row[kColState]) == "quarantine" &&
           now - db::as_int(row[kColReleased]) < config_.quarantine;
  });
  return rows.is_ok() ? rows.value().size() : 0;
}

std::vector<VniAuditRecord> VniRegistry::audit_log() const {
  std::vector<VniAuditRecord> out;
  auto rows = db_.snapshot(kAuditTable);
  if (rows.is_ok()) {
    for (const auto& [id, row] : rows.value()) {
      out.push_back(VniAuditRecord{
          db::as_int(row[0]), db::as_text(row[1]),
          static_cast<hsn::Vni>(db::as_int(row[2])), db::as_text(row[3])});
    }
  }
  return out;
}

}  // namespace shs::core
