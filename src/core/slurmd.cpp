#include "core/slurmd.hpp"

#include "util/log.hpp"
#include "util/strings.hpp"

namespace shs::core {

namespace {
constexpr const char* kTag = "slurmd";
}

Result<SlurmStep> SlurmDaemon::launch_step(
    std::uint32_t job_id, const std::vector<std::size_t>& node_indices,
    SlurmAuthScheme scheme, linuxsim::Uid uid,
    const std::vector<linuxsim::NetNsInode>& netns_per_node) {
  if (node_indices.empty()) {
    return Result<SlurmStep>(invalid_argument("a step needs nodes"));
  }
  if (scheme == SlurmAuthScheme::kNetnsMember &&
      netns_per_node.size() != node_indices.size()) {
    return Result<SlurmStep>(invalid_argument(
        "netns scheme needs one netns inode per node"));
  }
  for (const std::size_t n : node_indices) {
    if (n >= nodes_.size()) {
      return Result<SlurmStep>(invalid_argument(strfmt("no node %zu", n)));
    }
  }

  SlurmStep step;
  step.job_id = job_id;
  step.scheme = scheme;
  step.owner_key = strfmt("slurm/job-%u", job_id);
  auto vni = registry_.acquire(step.owner_key, loop_.now());
  if (!vni.is_ok()) return Result<SlurmStep>(vni.status());
  step.vni = vni.value();

  // Create the per-node services; roll everything back on any failure so
  // a partially-launched step never leaks services or the VNI.
  for (std::size_t i = 0; i < node_indices.size(); ++i) {
    const std::size_t n = node_indices[i];
    cxi::CxiServiceDesc desc;
    desc.name = strfmt("slurm-job-%u", job_id);
    desc.restricted_members = true;
    desc.restricted_vnis = true;
    desc.vnis = {step.vni};
    if (scheme == SlurmAuthScheme::kUidMember) {
      desc.members = {{cxi::MemberType::kUid, uid}};
    } else {
      desc.members = {{cxi::MemberType::kNetNs, netns_per_node[i]}};
    }
    auto svc = nodes_[n].driver->svc_alloc(nodes_[n].root_pid,
                                           std::move(desc));
    if (!svc.is_ok()) {
      SHS_WARN(kTag) << "step launch failed on node " << n << ": "
                     << svc.status();
      for (const auto& [node, svc_id] : step.services) {
        (void)nodes_[node].driver->svc_destroy_force(nodes_[node].root_pid,
                                                     svc_id);
      }
      (void)registry_.release(step.owner_key, loop_.now());
      return Result<SlurmStep>(svc.status());
    }
    step.services.emplace(n, svc.value());
  }
  ++active_steps_;
  SHS_DEBUG(kTag) << "job " << job_id << " launched on "
                  << node_indices.size() << " nodes, VNI " << step.vni;
  return step;
}

Status SlurmDaemon::complete_step(const SlurmStep& step) {
  for (const auto& [node, svc_id] : step.services) {
    const Status st = nodes_[node].driver->svc_destroy_force(
        nodes_[node].root_pid, svc_id);
    if (!st.is_ok() && st.code() != Code::kNotFound) return st;
  }
  SHS_RETURN_IF_ERROR(registry_.release(step.owner_key, loop_.now()));
  if (active_steps_ > 0) --active_steps_;
  return Status::ok();
}

}  // namespace shs::core
