// slurmd.hpp — Slurm-style per-job CXI service management (extension).
//
// Section II-C: "CXI service configuration ... is done either ahead of
// time during user onboarding or dynamically, for example, via a daemon
// running as root.  The latter approach is implemented, for instance, in
// Slurm via the daemon slurmd, which creates the required services during
// job creation."
//
// This module implements that classic HPC path so the repository covers
// both deployment models the paper contrasts:
//   * `SlurmDaemon` — a per-node root daemon that, at job-step launch,
//     creates a CXI service for the job's user (UID member — the classic,
//     single-tenant-safe scheme) or for the step's container netns (the
//     converged scheme), and tears it down at step completion;
//   * VNIs come from the same VniRegistry the Kubernetes path uses, so
//     the mutual-exclusivity requirement ("VNIs must be assigned mutually
//     exclusively to users") holds across both orchestrators — a
//     converged-deployment scenario the paper implies but does not
//     evaluate.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/vni_registry.hpp"
#include "cxi/driver.hpp"
#include "linuxsim/kernel.hpp"
#include "sim/event_loop.hpp"
#include "util/status.hpp"

namespace shs::core {

/// How the daemon authenticates the job's processes.
enum class SlurmAuthScheme : std::uint8_t {
  kUidMember = 0,    ///< classic: CXI service lists the user's UID
  kNetnsMember = 1,  ///< converged: service lists the step's netns inode
};

/// A launched job step: the granted VNI plus per-node CXI services.
struct SlurmStep {
  std::uint32_t job_id = 0;
  hsn::Vni vni = hsn::kInvalidVni;
  SlurmAuthScheme scheme = SlurmAuthScheme::kUidMember;
  /// node index -> service created on that node.
  std::map<std::size_t, cxi::SvcId> services;
  std::string owner_key;
};

/// One daemon instance manages a set of nodes (like slurmd instances
/// coordinated by slurmctld; we fold the controller role in).
class SlurmDaemon {
 public:
  struct NodeRef {
    linuxsim::Kernel* kernel = nullptr;
    cxi::CxiDriver* driver = nullptr;
    linuxsim::Pid root_pid = 1;
  };

  SlurmDaemon(VniRegistry& registry, sim::EventLoop& loop,
              std::vector<NodeRef> nodes)
      : registry_(registry), loop_(loop), nodes_(std::move(nodes)) {}

  /// Launches a job step on `node_indices`: acquires a VNI and creates
  /// one CXI service per node.
  ///   * kUidMember: admits processes with `uid` (host view);
  ///   * kNetnsMember: admits the namespaces in `netns_per_node`
  ///     (one inode per entry of `node_indices`).
  Result<SlurmStep> launch_step(std::uint32_t job_id,
                                const std::vector<std::size_t>& node_indices,
                                SlurmAuthScheme scheme, linuxsim::Uid uid,
                                const std::vector<linuxsim::NetNsInode>&
                                    netns_per_node = {});

  /// Completes the step: destroys its services and releases the VNI into
  /// quarantine.
  Status complete_step(const SlurmStep& step);

  [[nodiscard]] std::size_t active_steps() const noexcept {
    return active_steps_;
  }

 private:
  VniRegistry& registry_;
  sim::EventLoop& loop_;
  std::vector<NodeRef> nodes_;
  std::size_t active_steps_ = 0;
};

}  // namespace shs::core
