#include "core/drc.hpp"

#include "util/strings.hpp"

namespace shs::core {

Result<DrcCredential> DrcService::request(cxi::CxiDriver& driver,
                                          linuxsim::Kernel& kernel,
                                          linuxsim::Pid requester,
                                          linuxsim::Pid privileged,
                                          const std::string& owner_tag) {
  auto inode = kernel.proc_net_ns_inode(requester);
  if (!inode.is_ok()) return Result<DrcCredential>(inode.status());

  auto vni = registry_.acquire("drc/" + owner_tag, loop_.now());
  if (!vni.is_ok()) return Result<DrcCredential>(vni.status());

  cxi::CxiServiceDesc desc;
  desc.name = strfmt("drc-%s", owner_tag.c_str());
  desc.restricted_members = true;
  desc.restricted_vnis = true;
  desc.members = {{cxi::MemberType::kNetNs, inode.value()}};
  desc.vnis = {vni.value()};
  auto svc = driver.svc_alloc(privileged, std::move(desc));
  if (!svc.is_ok()) {
    // Roll the acquisition back so the VNI is not leaked.
    (void)registry_.release("drc/" + owner_tag, loop_.now());
    return Result<DrcCredential>(svc.status());
  }
  return DrcCredential{vni.value(), svc.value(), "drc/" + owner_tag,
                       inode.value()};
}

Status DrcService::release(cxi::CxiDriver& driver, linuxsim::Pid privileged,
                           const DrcCredential& cred) {
  const Status svc_st = driver.svc_destroy_force(privileged, cred.svc);
  if (!svc_st.is_ok() && svc_st.code() != Code::kNotFound) return svc_st;
  return registry_.release(cred.owner, loop_.now());
}

}  // namespace shs::core
