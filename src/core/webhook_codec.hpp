// webhook_codec.hpp — wire format for the Metacontroller <-> VNI Endpoint
// webhooks.
//
// In the real system the VNI Endpoint is an HTTP service: Metacontroller
// POSTs a JSON description of the observed object to /sync or /finalize
// and receives the desired child objects (or finalization status) as a
// JSON response (Section III-C2, "apply semantics").  To keep that
// serialization boundary honest — controllers must not share pointers
// with the endpoint — this codec round-trips the request/response types
// through a compact JSON subset (objects, arrays, strings, integers,
// booleans; no floats, no escapes beyond \" and \\, which is all the VNI
// schema needs).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "k8s/objects.hpp"
#include "util/status.hpp"

namespace shs::core::webhook {

// -- Minimal JSON value model ------------------------------------------------

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

/// A JSON value (subset: null / bool / int64 / string / array / object).
class Json {
 public:
  Json() : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}                  // NOLINT
  Json(std::int64_t i) : kind_(Kind::kInt), int_(i) {}            // NOLINT
  Json(std::uint64_t u)                                           // NOLINT
      : kind_(Kind::kInt), int_(static_cast<std::int64_t>(u)) {}
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}  // NOLINT
  Json(const char* s) : kind_(Kind::kString), str_(s) {}          // NOLINT
  Json(JsonArray a) : kind_(Kind::kArray), arr_(std::move(a)) {}  // NOLINT
  Json(JsonObject o) : kind_(Kind::kObject), obj_(std::move(o)) {}  // NOLINT

  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_int() const { return kind_ == Kind::kInt; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] std::int64_t as_int() const { return int_; }
  [[nodiscard]] const std::string& as_string() const { return str_; }
  [[nodiscard]] const JsonArray& as_array() const { return arr_; }
  [[nodiscard]] const JsonObject& as_object() const { return obj_; }

  /// Object member access; null Json if absent or not an object.
  [[nodiscard]] const Json* find(const std::string& key) const {
    if (kind_ != Kind::kObject) return nullptr;
    const auto it = obj_.find(key);
    return it == obj_.end() ? nullptr : &it->second;
  }

  /// Serializes to a compact JSON string.
  [[nodiscard]] std::string dump() const;

  /// Parses `text`; kInvalidArgument on malformed input.
  static Result<Json> parse(const std::string& text);

 private:
  enum class Kind : std::uint8_t {
    kNull, kBool, kInt, kString, kArray, kObject
  };
  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::string str_;
  JsonArray arr_;
  JsonObject obj_;
};

// -- Webhook payloads ---------------------------------------------------------

/// Serializes a Job into the /sync request body ("the controller calls
/// webhooks with information about an observed event").
Json encode_job(const k8s::Job& job);
Result<k8s::Job> decode_job(const Json& j);

Json encode_claim(const k8s::VniClaim& claim);
Result<k8s::VniClaim> decode_claim(const Json& j);

/// Serializes the desired children of a /sync response.
Json encode_children(const std::vector<k8s::VniObject>& children);
Result<std::vector<k8s::VniObject>> decode_children(const Json& j);

/// /finalize response: {"finalized": bool}.
Json encode_finalized(bool finalized);
Result<bool> decode_finalized(const Json& j);

}  // namespace shs::core::webhook
