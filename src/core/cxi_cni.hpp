// cxi_cni.hpp — the CXI CNI plugin (Section III-B).
//
// A *chained* CNI plugin that manages the lifetime of CXI services for
// containers:
//   * ADD — (1) extracts the container's network-namespace inode, (2)
//     fetches the VNI granted to the owning job from its VNI CRD instance
//     (created by the VNI controller), and (3) creates a CXI service with
//     a NETNS member for that inode and VNI.  Until the VNI CRD exists
//     the plugin reports kUnavailable — the container must not launch.
//   * DEL — destroys any CXI service associated with the container.
//   * Containers without the `vni` annotation are untouched ("does not
//     interfere with the container").
//   * Pods requesting a VNI must have terminationGracePeriodSeconds <= 30
//     so no straggler can outlive the VNI quarantine (Section III-C1);
//     the plugin rejects violations outright.
//
// The plugin runs with host-root privileges (as real CNI plugins do) —
// it holds the node's privileged pid for driver calls.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "cri/cni.hpp"
#include "cxi/driver.hpp"
#include "k8s/api_server.hpp"
#include "k8s/kubelet.hpp"
#include "k8s/params.hpp"
#include "util/rng.hpp"

namespace shs::core {

struct CxiCniCounters {
  std::uint64_t services_created = 0;
  std::uint64_t services_destroyed = 0;
  std::uint64_t noop_adds = 0;       ///< pods without the vni annotation
  std::uint64_t unavailable_adds = 0;///< VNI CRD not served yet
  std::uint64_t rejected_grace = 0;  ///< grace period > 30 s
};

class CxiCniPlugin final : public cri::CniPlugin {
 public:
  CxiCniPlugin(k8s::ApiServer& api, cxi::CxiDriver& driver,
               linuxsim::Pid privileged_pid, Rng rng)
      : api_(api), driver_(driver), root_(privileged_pid), rng_(rng) {}

  [[nodiscard]] std::string name() const override { return "cxi"; }

  Result<cri::CniAddResult> add(const cri::CniContext& ctx) override;
  Result<SimDuration> del(const cri::CniContext& ctx) override;

  [[nodiscard]] const CxiCniCounters& counters() const noexcept {
    return counters_;
  }
  /// The CXI service created for a container (kInvalidSvc if none).
  [[nodiscard]] cxi::SvcId service_for(const std::string& container_id) const;

 private:
  SimDuration jittered(SimDuration d) {
    return static_cast<SimDuration>(
        static_cast<double>(d) * rng_.jitter(api_.params().jitter_amplitude));
  }

  k8s::ApiServer& api_;
  cxi::CxiDriver& driver_;
  linuxsim::Pid root_;
  Rng rng_;
  CxiCniCounters counters_;
  std::map<std::string, cxi::SvcId> services_;  ///< container -> svc
};

}  // namespace shs::core
