#include "core/stack.hpp"

#include <algorithm>
#include <cstdint>

#include "core/webhook_codec.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace shs::core {

namespace {
constexpr const char* kTag = "stack";
}

SlingshotStack::SlingshotStack(StackConfig config)
    : config_(config), master_rng_(config.seed) {
  api_ = std::make_unique<k8s::ApiServer>(loop_, config_.k8s_params);
  fabric_ = hsn::Fabric::create(config_.nodes, config_.timing,
                                master_rng_.next(), config_.topology);
  if (config_.data_plane_threads > 0) {
    shard_engine_ = std::make_unique<hsn::ShardEngine>(
        *fabric_, config_.data_plane_threads);
  }
  db_ = std::make_unique<db::Database>();
  registry_ = std::make_unique<VniRegistry>(*db_, config_.vni);
  endpoint_ = std::make_unique<VniEndpoint>(*registry_, loop_);

  // Per-node stacks.
  std::vector<std::string> node_names;
  for (std::size_t i = 0; i < config_.nodes; ++i) {
    auto node = std::make_unique<Node>();
    node->name = strfmt("node-%zu", i);
    node->nic = static_cast<hsn::NicAddr>(i);
    node->kernel = std::make_unique<linuxsim::Kernel>();
    // Each node's driver programs VNI ACLs on its *own* edge switch.
    node->driver = std::make_unique<cxi::CxiDriver>(
        *node->kernel, fabric_->nic(node->nic),
        fabric_->switch_for(node->nic), config_.auth_mode);
    node->runtime = std::make_unique<cri::ContainerRuntime>(
        *node->kernel, node->name, api_->params(), master_rng_.fork());
    node->bridge_cni = std::make_shared<cri::BridgeCni>(
        *node->kernel, api_->params(), master_rng_.fork());
    node->runtime->add_cni_plugin(node->bridge_cni);
    if (config_.install_cxi_cni) {
      node->cxi_cni = std::make_shared<CxiCniPlugin>(
          *api_, *node->driver, node->root_pid, master_rng_.fork());
      node->runtime->add_cni_plugin(node->cxi_cni);
    }
    node->kubelet = std::make_unique<k8s::Kubelet>(
        *api_, node->name, *node->runtime, master_rng_.fork());
    node->kubelet->start();
    node_names.push_back(node->name);
    nodes_.push_back(std::move(node));
  }

  // Cluster-wide controllers.
  job_controller_ =
      std::make_unique<k8s::JobController>(*api_, master_rng_.fork());
  job_controller_->start();
  std::unordered_map<std::string, std::uint32_t> node_switch;
  for (const auto& node : nodes_) {
    node_switch[node->name] = fabric_->home_switch(node->nic);
  }
  scheduler_ = std::make_unique<k8s::Scheduler>(
      *api_, node_names, master_rng_.fork(), std::move(node_switch));
  // Bind telemetry: when a spread group must straddle switches, record
  // how congested the inter-switch links are at that moment.
  scheduler_->set_congestion_probe(
      [this] { return fabric_->max_uplink_lag(loop_.now()); });
  // Fabric health is a first-class scheduling input: the scheduler skips
  // nodes behind unhealthy switches and drains pods whose home switch
  // died.
  scheduler_->set_switch_health_probe([this](std::uint32_t s) {
    return fabric_->switch_health(s) == hsn::SwitchHealth::kHealthy;
  });
  scheduler_->start();

  // Data-plane failures repair through the event loop (detection +
  // reprogramming delay), not synchronously at injection time.
  fabric_->manager().set_auto_repair(false);
  // Control-plane crash safety: the fabric manager journals failure
  // events and publish intents alongside the VNI ground truth, so a
  // controller crash recovers from the same ACID store (its table is
  // private; the registry never scans it).
  fabric_->manager().attach_journal(*db_);
  if (config_.publish_stagger > 0) {
    fabric_->manager().set_publish_stagger(
        {true, config_.publish_stagger, config_.seed ^ 0x57a66e5ULL});
  }
  if (config_.fm_watchdog) start_fm_watchdog();

  if (config_.reliability.enabled) {
    fabric_->set_reliability(config_.reliability);
    // Retransmit timers live on the event loop's clock: each backoff
    // advances the loop, so a scheduled repair (schedule_reroute) can
    // fire mid-retry and the retransmit completes on the new tables.
    // The running() guard makes the hook a no-op if a send ever happens
    // inside a loop callback.
    fabric_->set_retry_hook([this](int /*attempt*/, SimDuration backoff) {
      if (!loop_.running()) loop_.run_for(backoff);
    });
  }

  // The real VNI Endpoint is an HTTP service; the hooks round-trip every
  // request and response through the JSON webhook codec so the
  // serialization boundary is honest (no shared pointers between the
  // controller and the endpoint).
  k8s::DecoratorController::Hooks hooks;
  hooks.sync_job =
      [this](const k8s::Job& j) -> Result<std::vector<k8s::VniObject>> {
    using R = Result<std::vector<k8s::VniObject>>;
    auto request = webhook::Json::parse(webhook::encode_job(j).dump());
    if (!request.is_ok()) return R(request.status());
    auto job = webhook::decode_job(request.value());
    if (!job.is_ok()) return R(job.status());
    auto children = endpoint_->sync_job(job.value());
    if (!children.is_ok()) return children;
    auto response = webhook::Json::parse(
        webhook::encode_children(children.value()).dump());
    if (!response.is_ok()) return R(response.status());
    return webhook::decode_children(response.value());
  };
  hooks.finalize_job = [this](const k8s::Job& j) -> Result<bool> {
    auto request = webhook::Json::parse(webhook::encode_job(j).dump());
    if (!request.is_ok()) return Result<bool>(request.status());
    auto job = webhook::decode_job(request.value());
    if (!job.is_ok()) return Result<bool>(job.status());
    auto fin = endpoint_->finalize_job(job.value());
    if (!fin.is_ok()) return fin;
    auto response = webhook::Json::parse(
        webhook::encode_finalized(fin.value()).dump());
    if (!response.is_ok()) return Result<bool>(response.status());
    return webhook::decode_finalized(response.value());
  };
  hooks.sync_claim = [this](const k8s::VniClaim& c)
      -> Result<std::vector<k8s::VniObject>> {
    using R = Result<std::vector<k8s::VniObject>>;
    auto request = webhook::Json::parse(webhook::encode_claim(c).dump());
    if (!request.is_ok()) return R(request.status());
    auto claim = webhook::decode_claim(request.value());
    if (!claim.is_ok()) return R(claim.status());
    auto children = endpoint_->sync_claim(claim.value());
    if (!children.is_ok()) return children;
    auto response = webhook::Json::parse(
        webhook::encode_children(children.value()).dump());
    if (!response.is_ok()) return R(response.status());
    return webhook::decode_children(response.value());
  };
  hooks.finalize_claim = [this](const k8s::VniClaim& c) -> Result<bool> {
    auto request = webhook::Json::parse(webhook::encode_claim(c).dump());
    if (!request.is_ok()) return Result<bool>(request.status());
    auto claim = webhook::decode_claim(request.value());
    if (!claim.is_ok()) return Result<bool>(claim.status());
    auto fin = endpoint_->finalize_claim(claim.value());
    if (!fin.is_ok()) return fin;
    auto response = webhook::Json::parse(
        webhook::encode_finalized(fin.value()).dump());
    if (!response.is_ok()) return Result<bool>(response.status());
    return webhook::decode_finalized(response.value());
  };
  vni_controller_ = std::make_unique<k8s::DecoratorController>(
      *api_, std::move(hooks), master_rng_.fork());
  vni_controller_->start();

  SHS_INFO(kTag) << "cluster up: " << config_.nodes << " nodes, auth mode "
                 << static_cast<int>(config_.auth_mode);
}

SlingshotStack::~SlingshotStack() {
  vni_controller_->stop();
  scheduler_->stop();
  job_controller_->stop();
  for (auto& node : nodes_) node->kubelet->stop();
}

Result<k8s::Uid> SlingshotStack::submit_job(const JobOptions& options) {
  if (options.name.empty()) {
    return Result<k8s::Uid>(invalid_argument("job needs a name"));
  }
  k8s::Job job;
  job.meta.name = options.name;
  job.meta.ns = options.ns;
  if (!options.vni_annotation.empty()) {
    job.meta.annotations[k8s::kVniAnnotation] = options.vni_annotation;
  }
  job.spec.completions = options.pods;
  job.spec.parallelism = options.pods;
  job.spec.ttl_after_finished_s = options.ttl_after_finished_s;
  job.spec.pod_template.image = options.image;
  job.spec.pod_template.run_duration = options.run_duration;
  job.spec.pod_template.termination_grace_s = options.grace_s;
  job.spec.pod_template.spread_key = options.spread_key;
  return api_->create_job(std::move(job));
}

Result<k8s::Uid> SlingshotStack::create_claim(const std::string& ns,
                                              const std::string& claim_name) {
  k8s::VniClaim claim;
  claim.meta.name = claim_name;
  claim.meta.ns = ns;
  claim.spec.claim_name = claim_name;
  return api_->create_vni_claim(std::move(claim));
}

Status SlingshotStack::delete_claim(k8s::Uid uid) {
  return api_->delete_vni_claim(uid);
}

Status SlingshotStack::delete_job(k8s::Uid uid) {
  return api_->delete_job(uid);
}

void SlingshotStack::schedule_reroute() {
  const SimTime injected = loop_.now();
  loop_.schedule_after(config_.fm_reroute_delay, [this, injected] {
    fabric_->manager().repair();
    schedule_publish_waves();
    last_reroute_latency_ = loop_.now() - injected;
    total_reroute_latency_ += last_reroute_latency_;
    ++reroute_events_;
    SHS_INFO(kTag) << "fabric re-route completed "
                   << to_micros(last_reroute_latency_)
                   << " us after injection";
  });
}

void SlingshotStack::schedule_publish_waves() {
  hsn::FabricManager& fm = fabric_->manager();
  if (!fm.publish_pending()) return;
  if (shard_engine_ != nullptr) {
    // The engine drains one wave per window barrier — its only
    // all-workers-quiescent points — which keeps mixed-epoch routing
    // bit-identical across thread counts.  Scheduling loop callbacks
    // too would race the barrier drain nondeterministically.
    return;
  }
  const std::uint64_t gen = fm.publish_generation();
  for (const SimDuration d : fm.pending_publish_delays()) {
    loop_.schedule_after(d, [this, d, gen] {
      fabric_->manager().apply_publishes_older_than(d, gen);
    });
  }
}

void SlingshotStack::start_fm_watchdog() {
  loop_.schedule_periodic(config_.fm_watchdog_interval, [this] {
    hsn::FabricManager& fm = fabric_->manager();
    if (!fm.crashed()) {
      if (fm_degraded_) {
        // Recovered out-of-band (a harness called restart() directly).
        fabric_->set_degraded(false);
        fm_degraded_ = false;
        fm_restart_backoff_ = 0;
      }
      return;
    }
    fm_downtime_vt_ += config_.fm_watchdog_interval;
    if (!fm_degraded_) {
      // First detection: degrade the data plane (stretched retry
      // budgets on replan-dependent drops) and give the controller one
      // backoff interval to come back before forcing a restart.
      fm_degraded_ = true;
      fabric_->set_degraded(true);
      fm_restart_backoff_ = 1;
      fm_next_restart_vt_ = loop_.now() + config_.fm_watchdog_interval;
      SHS_INFO(kTag) << "fabric manager DOWN: degraded mode engaged";
      return;
    }
    if (loop_.now() < fm_next_restart_vt_) return;
    const Status st = fm.restart();
    if (st.is_ok()) {
      fabric_->set_degraded(false);
      fm_degraded_ = false;
      fm_restart_backoff_ = 0;
      schedule_publish_waves();
      if (fm.repair_pending()) schedule_reroute();
      SHS_INFO(kTag) << "fabric manager restarted; degraded mode cleared";
    } else {
      fm_restart_backoff_ = std::min(fm_restart_backoff_ * 2, 8);
      fm_next_restart_vt_ =
          loop_.now() + fm_restart_backoff_ * config_.fm_watchdog_interval;
      SHS_WARN(kTag) << "fabric manager restart failed (" << st
                     << "); backing off";
    }
  });
}

Status SlingshotStack::fail_link(hsn::SwitchId a, hsn::SwitchId b) {
  const Status st = fabric_->fail_link(a, b);
  if (st.is_ok()) schedule_reroute();
  return st;
}

Status SlingshotStack::restore_link(hsn::SwitchId a, hsn::SwitchId b) {
  const Status st = fabric_->restore_link(a, b);
  if (st.is_ok()) schedule_reroute();
  return st;
}

Status SlingshotStack::fail_switch(hsn::SwitchId s) {
  const Status st = fabric_->fail_switch(s);
  if (st.is_ok()) schedule_reroute();
  return st;
}

Status SlingshotStack::restore_switch(hsn::SwitchId s) {
  const Status st = fabric_->restore_switch(s);
  if (st.is_ok()) schedule_reroute();
  return st;
}

bool SlingshotStack::run_until(const std::function<bool()>& pred,
                               SimDuration max_wait, SimDuration step) {
  const SimTime deadline = loop_.now() + max_wait;
  while (loop_.now() < deadline) {
    if (pred()) return true;
    loop_.run_for(step);
  }
  return pred();
}

bool SlingshotStack::wait_job_start(k8s::Uid job, SimDuration max_wait) {
  return run_until(
      [&] {
        auto j = api_->get_job(job);
        return j.is_ok() && j.value().status.start_vt > 0;
      },
      max_wait);
}

bool SlingshotStack::wait_job_complete(k8s::Uid job, SimDuration max_wait) {
  return run_until(
      [&] {
        auto j = api_->get_job(job);
        return j.is_ok() && j.value().status.complete;
      },
      max_wait);
}

bool SlingshotStack::wait_job_gone(k8s::Uid job, SimDuration max_wait) {
  return run_until(
      [&] { return !api_->get_job(job).is_ok(); }, max_wait);
}

std::vector<k8s::Pod> SlingshotStack::pods_of_job(k8s::Uid job) const {
  return api_->list_pods(
      [&](const k8s::Pod& p) { return p.meta.owner_uid == job; });
}

Result<SlingshotStack::PodHandle> SlingshotStack::exec_in_pod(
    k8s::Uid pod_uid) {
  auto pod = api_->get_pod(pod_uid);
  if (!pod.is_ok()) return Result<PodHandle>(pod.status());
  const std::string& node_name = pod.value().status.node;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i]->name == node_name) {
      auto pid = nodes_[i]->runtime->exec_in_pod(pod_uid);
      if (!pid.is_ok()) return Result<PodHandle>(pid.status());
      return PodHandle{pod_uid, i, pid.value()};
    }
  }
  return Result<PodHandle>(
      failed_precondition("pod is not bound to any node yet"));
}

Result<ofi::Domain> SlingshotStack::domain_for(const PodHandle& handle) {
  if (handle.node_index >= nodes_.size()) {
    return Result<ofi::Domain>(invalid_argument("bad node index"));
  }
  Node& n = *nodes_[handle.node_index];
  return ofi::Domain(*n.driver, fabric_->nic(n.nic), fabric_->timing(),
                     handle.pid);
}

}  // namespace shs::core
