#include "core/device_plugin.hpp"

#include "util/strings.hpp"

namespace shs::core {

Result<DeviceMount> CxiDevicePlugin::allocate(const k8s::Pod& pod) {
  if (mounts_.contains(pod.meta.uid)) {
    return mounts_.at(pod.meta.uid);  // idempotent re-allocation
  }
  if (allocated() >= shares_) {
    return Result<DeviceMount>(resource_exhausted(
        strfmt("node %s: all %d CXI device shares allocated", node_.c_str(),
               shares_)));
  }
  DeviceMount mount;
  mount.device_path = "/dev/cxi0";
  mount.library_path = "/usr/lib64/libcxi.so.1";
  mount.pod_uid = pod.meta.uid;
  mounts_.emplace(pod.meta.uid, mount);
  return mount;
}

Status CxiDevicePlugin::release(k8s::Uid pod_uid) {
  mounts_.erase(pod_uid);  // idempotent
  return Status::ok();
}

}  // namespace shs::core
