#include "core/cxi_cni.hpp"

#include "util/log.hpp"
#include "util/strings.hpp"

namespace shs::core {

namespace {
constexpr const char* kTag = "cxi-cni";
}

Result<cri::CniAddResult> CxiCniPlugin::add(const cri::CniContext& ctx) {
  using R = Result<cri::CniAddResult>;

  // Pods that do not request CXI communication are left alone.
  const auto ann = ctx.annotations.find(k8s::kVniAnnotation);
  if (ann == ctx.annotations.end() || ann->second.empty()) {
    ++counters_.noop_adds;
    return cri::CniAddResult{{}, hsn::kInvalidVni, jittered(kMillisecond / 2)};
  }

  // Grace-period contract (Section III-C1).
  if (ctx.termination_grace_s > k8s::kMaxVniGraceSeconds) {
    ++counters_.rejected_grace;
    return R(invalid_argument(
        strfmt("pod %s requests a VNI with terminationGracePeriodSeconds=%d "
               "> %d; the 30 s VNI quarantine would be unsound",
               ctx.pod_name.c_str(), ctx.termination_grace_s,
               k8s::kMaxVniGraceSeconds)));
  }

  // Idempotent retry: the service may already exist for this container.
  if (const auto it = services_.find(ctx.container_id);
      it != services_.end()) {
    auto svc = driver_.svc_get(it->second);
    if (svc.is_ok() && !svc.value().vnis.empty()) {
      return cri::CniAddResult{{}, svc.value().vnis.front(),
                               jittered(kMillisecond)};
    }
    services_.erase(it);
  }

  // Fetch the VNI from the job's VNI CRD instance (the plugin queries the
  // Kubernetes management plane, Section III-B).  Not there yet -> the
  // container must not launch; the kubelet retries.
  const k8s::Uid owner = ctx.owner_job_uid;
  const auto vni_objects = api_.list_vni_objects(
      [&](const k8s::VniObject& v) {
        return v.bound_uid == owner && !v.meta.deletion_requested;
      });
  if (vni_objects.empty()) {
    ++counters_.unavailable_adds;
    return R(unavailable(strfmt(
        "no VNI CRD instance served yet for job of pod %s (annotation '%s')",
        ctx.pod_name.c_str(), ann->second.c_str())));
  }
  const hsn::Vni vni = vni_objects.front().vni;

  // Create the CXI service: NETNS member for this container's namespace,
  // restricted to exactly the granted VNI.
  cxi::CxiServiceDesc desc;
  desc.name = strfmt("cni-%s", ctx.container_id.c_str());
  desc.restricted_members = true;
  desc.restricted_vnis = true;
  desc.members = {{cxi::MemberType::kNetNs, ctx.netns_inode}};
  desc.vnis = {vni};
  auto svc = driver_.svc_alloc(root_, std::move(desc));
  if (!svc.is_ok()) return R(svc.status());
  services_.emplace(ctx.container_id, svc.value());
  ++counters_.services_created;
  SHS_DEBUG(kTag) << "ADD " << ctx.pod_name << ": svc " << svc.value()
                  << " netns " << ctx.netns_inode << " VNI " << vni;

  cri::CniAddResult out;
  out.vni = vni;
  out.cost = jittered(api_.params().cxi_cni_add_cost);
  return out;
}

Result<SimDuration> CxiCniPlugin::del(const cri::CniContext& ctx) {
  const auto it = services_.find(ctx.container_id);
  if (it == services_.end()) {
    // Nothing to clean up (non-VNI pod, or DEL retried) — stay silent.
    return jittered(kMillisecond / 2);
  }
  // Force-destroy: the container is going away; any endpoints it still
  // holds die with the service.
  const Status st = driver_.svc_destroy_force(root_, it->second);
  if (!st.is_ok() && st.code() != Code::kNotFound) {
    SHS_WARN(kTag) << "DEL " << ctx.pod_name << ": " << st;
    return Result<SimDuration>(st);
  }
  services_.erase(it);
  ++counters_.services_destroyed;
  SHS_DEBUG(kTag) << "DEL " << ctx.pod_name << ": service destroyed";
  return jittered(api_.params().cxi_cni_del_cost);
}

cxi::SvcId CxiCniPlugin::service_for(const std::string& container_id) const {
  const auto it = services_.find(container_id);
  return it == services_.end() ? cxi::kInvalidSvc : it->second;
}

}  // namespace shs::core
