// vni_endpoint.hpp — the VNI Endpoint: webhook logic between the VNI
// Controller (Metacontroller) and the VNI Database (Section III-C2).
//
// Implements the paper's /sync and /finalize semantics:
//   * /sync for an owning resource (Per-Resource job with `vni: true`, or
//     a VniClaim) acquires a VNI and returns the VNI CRD child to apply;
//   * /sync for a claim-redeeming job (`vni: <claim-name>`) looks up the
//     claim's VNI, registers the job as a *user* of it, and returns a
//     "virtual" (non-owning) VNI CRD child — keeping the one-to-one
//     mapping between VNI CRD instances and jobs;
//   * /finalize releases the VNI (owning) or removes the user (virtual);
//     claim finalization only succeeds once every user is gone.
//
// All DB work happens in single transactions via VniRegistry.  /sync is
// idempotent (it may be called for both creation and update events).
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "core/vni_registry.hpp"
#include "k8s/objects.hpp"
#include "sim/event_loop.hpp"
#include "util/status.hpp"

namespace shs::core {

struct VniEndpointCounters {
  std::uint64_t sync_job = 0;
  std::uint64_t sync_claim = 0;
  std::uint64_t finalize_job = 0;
  std::uint64_t finalize_claim = 0;
  std::uint64_t acquisitions = 0;
  std::uint64_t releases = 0;
};

class VniEndpoint {
 public:
  VniEndpoint(VniRegistry& registry, sim::EventLoop& loop)
      : registry_(registry), loop_(loop) {}

  /// Availability injection: while false every request fails with
  /// kUnavailable — jobs annotated with `vni` must then fail to launch
  /// ("jobs annotated with that label will therefore only launch
  /// successfully if the VNI service is running").
  void set_available(bool up) noexcept { available_ = up; }
  [[nodiscard]] bool available() const noexcept { return available_; }

  /// /sync for a Job carrying the vni annotation.
  Result<std::vector<k8s::VniObject>> sync_job(const k8s::Job& job);
  /// /finalize for a Job.  True = cleanup complete.
  Result<bool> finalize_job(const k8s::Job& job);
  /// /sync for a VniClaim.
  Result<std::vector<k8s::VniObject>> sync_claim(const k8s::VniClaim& claim);
  /// /finalize for a VniClaim.  False while users remain (deletion
  /// stalls, per the paper).
  Result<bool> finalize_claim(const k8s::VniClaim& claim);

  [[nodiscard]] const VniEndpointCounters& counters() const noexcept {
    return counters_;
  }

  /// DB owner key for a job ("job/<ns>/<name>#<uid>").
  static std::string job_owner_key(const k8s::Job& job);
  /// DB owner key for a claim name within a namespace.
  static std::string claim_owner_key(const std::string& ns,
                                     const std::string& claim_name);

 private:
  VniRegistry& registry_;
  sim::EventLoop& loop_;
  bool available_ = true;
  VniEndpointCounters counters_;
};

}  // namespace shs::core
