// version.hpp — component versions of the (simulated) software stack.
//
// Reproduces Table I of the paper: the versions of every component in the
// evaluated deployment.  Components marked "(netns-patched)" correspond
// to the software the paper patched to support the Slingshot-K8s
// integration (libfabric in Table I, plus the CXI driver/library).
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace shs::core {

inline constexpr const char* kShsK8sVersion = "1.0.0";

/// Rows of Table I, in paper order, plus this library itself.
inline std::vector<std::pair<std::string, std::string>> stack_versions() {
  return {
      {"OpenSUSE (simulated host OS)", "15.5"},
      {"k3s (mini control plane)", "v1.29.5-sim"},
      {"libfabric (netns-patched)", "2.1.0-sim"},
      {"Open MPI (mini-MPI pt2pt)", "5.0.7-sim"},
      {"OSU Micro-Benchmarks", "7.3-sim"},
      {"CXI driver (netns member type)", "1.0.0-sim"},
      {"shsk8s (this reproduction)", kShsK8sVersion},
  };
}

}  // namespace shs::core
