// stack.hpp — SlingshotStack: the whole converged HPC-Cloud cluster in
// one object.
//
// Assembles every layer the paper's Figure 2 shows, per node: a Linux
// kernel model, a Cassini NIC on the shared Rosetta switch, the
// (netns-extended) CXI driver, a container runtime with the chained CNI
// plugins (bridge overlay -> CXI), and a kubelet — plus the cluster-wide
// pieces: API server, job controller, scheduler, Metacontroller-style VNI
// controller, VNI endpoint, and the VNI database.
//
// This is the public entry point examples and benches use:
//     core::SlingshotStack stack;
//     auto job = stack.submit_job({.name = "solver", .vni_annotation =
//                                  "true", .pods = 2});
//     stack.wait_job_start(job.value());
//     auto pod = stack.exec_in_pod(...);
//     auto dom = stack.domain_for(pod.value());
//     auto ep  = dom.open_endpoint(vni);   // netns-authenticated
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/cxi_cni.hpp"
#include "core/vni_endpoint.hpp"
#include "core/vni_registry.hpp"
#include "cri/bridge_cni.hpp"
#include "cri/runtime.hpp"
#include "cxi/driver.hpp"
#include "db/database.hpp"
#include "hsn/fabric.hpp"
#include "hsn/shard_engine.hpp"
#include "k8s/api_server.hpp"
#include "k8s/job_controller.hpp"
#include "k8s/kubelet.hpp"
#include "k8s/metacontroller.hpp"
#include "k8s/scheduler.hpp"
#include "ofi/domain.hpp"
#include "sim/event_loop.hpp"

namespace shs::core {

struct StackConfig {
  std::size_t nodes = 2;  ///< the paper's testbed: two OpenCUBE nodes
  cxi::AuthMode auth_mode = cxi::AuthMode::kNetnsExtended;
  k8s::K8sParams k8s_params{};
  hsn::TimingConfig timing{};
  /// Fabric wiring: the paper's single switch by default; fat-tree or
  /// dragonfly for 64-256 node scale-out scenarios.  `topology.routing`
  /// selects the fabric-wide routing policy (static minimal, Valiant, or
  /// adaptive UGAL — see hsn::RoutingPolicy).
  hsn::TopologyConfig topology{};
  VniRegistryConfig vni{};
  /// Fabric-manager reaction time to an injected data-plane failure or
  /// restore: detection (link-down sweep) + route recomputation + switch
  /// reprogramming, modeled as one virtual-time delay between injection
  /// and the repaired tables landing on every switch.  Packets routed in
  /// that window onto the dead element are dropped and counted.
  SimDuration fm_reroute_delay = from_millis(5);
  /// NIC-level reliable delivery (retransmit/backoff/dedup; see
  /// docs/reliability.md).  Off by default — the paper's fabric relies
  /// on link-level reliability, so benches measure the raw path.  When
  /// enabled, the stack installs a retry hook that advances the event
  /// loop through each backoff, so a scheduled fabric-manager repair
  /// (fm_reroute_delay) can land *during* an op's retry window and the
  /// op completes on the republished tables.  That hook drives the loop
  /// from the sender's thread: enable only for single-threaded drivers
  /// (examples, chaos harnesses) — not under multi-threaded MPI ranks.
  hsn::ReliabilityConfig reliability{};
  /// Worker threads for the sharded data plane (hsn::ShardEngine).  0
  /// keeps the legacy synchronous path (NICs walk packets to completion
  /// inline) and constructs no engine; >= 1 builds an engine over the
  /// fabric — 1 runs its windows inline (the reference schedule), N > 1
  /// drives the per-switch-group domains from a worker pool.  The
  /// engine covers the full verb set (sends, one-sided RMA writes and
  /// reads, their completion replies, and reliable retransmits of all
  /// of them); per-seed results are bit-identical across thread counts
  /// when `timing.jitter_amplitude` is 0; see docs/performance.md.
  int data_plane_threads = 0;
  /// Staggered plan publish (docs/fault_tolerance.md, "Control-plane
  /// fault tolerance"): maximum per-switch apply delay after a repair
  /// commits a new plan epoch.  0 (the default) keeps the legacy
  /// instantaneous everywhere-at-once publish.  With a ShardEngine the
  /// waves drain deterministically at window barriers; in synchronous
  /// mode they drain from the event loop.
  SimDuration publish_stagger = 0;
  /// Fabric-manager watchdog: polls FM health every
  /// `fm_watchdog_interval`; on a crash it flips every NIC into degraded
  /// mode (stretched retry budgets for replan-dependent drops), attempts
  /// restart with exponential backoff, and accumulates fm_downtime_vt().
  /// Off by default — only the chaos/recovery harnesses arm crashes.
  bool fm_watchdog = false;
  SimDuration fm_watchdog_interval = from_millis(2);
  std::uint64_t seed = 0x5005;
  /// Install the CXI CNI plugin into the chain.  Disabling it models a
  /// stock cluster (pods with vni annotations then fail to launch).
  bool install_cxi_cni = true;
};

/// Options for submitting a Job (Listing 1 / Listing 3 of the paper).
struct JobOptions {
  std::string name;
  std::string ns = "default";
  /// "" = no Slingshot; "true" = Per-Resource VNI; else a VniClaim name.
  std::string vni_annotation;
  int pods = 1;
  SimDuration run_duration = from_millis(50);
  int grace_s = 5;
  int ttl_after_finished_s = -1;  ///< 0 = delete right after completion
  std::string image = "alpine";
  std::string spread_key;  ///< topology-spread group (OSU pod placement)
};

class SlingshotStack {
 public:
  /// One node's full software stack.
  struct Node {
    std::string name;
    hsn::NicAddr nic = 0;
    std::unique_ptr<linuxsim::Kernel> kernel;
    std::unique_ptr<cxi::CxiDriver> driver;
    std::unique_ptr<cri::ContainerRuntime> runtime;
    std::unique_ptr<k8s::Kubelet> kubelet;
    std::shared_ptr<CxiCniPlugin> cxi_cni;      ///< null if not installed
    std::shared_ptr<cri::BridgeCni> bridge_cni;
    linuxsim::Pid root_pid = 1;  ///< host init: privileged plane identity
  };

  /// A process running inside a pod ("kubectl exec" result).
  struct PodHandle {
    k8s::Uid pod_uid = k8s::kNoUid;
    std::size_t node_index = 0;
    linuxsim::Pid pid = 0;
  };

  explicit SlingshotStack(StackConfig config = {});
  ~SlingshotStack();
  SlingshotStack(const SlingshotStack&) = delete;
  SlingshotStack& operator=(const SlingshotStack&) = delete;

  // -- Accessors.
  [[nodiscard]] sim::EventLoop& loop() noexcept { return loop_; }
  [[nodiscard]] k8s::ApiServer& api() noexcept { return *api_; }
  [[nodiscard]] hsn::Fabric& fabric() noexcept { return *fabric_; }
  /// The sharded data-plane engine, or nullptr when
  /// StackConfig::data_plane_threads is 0.  Driver-thread-only API; see
  /// hsn/shard_engine.hpp for the windowing/ownership contract.
  [[nodiscard]] hsn::ShardEngine* shard_engine() noexcept {
    return shard_engine_.get();
  }
  [[nodiscard]] Node& node(std::size_t i) { return *nodes_.at(i); }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] VniRegistry& registry() noexcept { return *registry_; }
  [[nodiscard]] const k8s::Scheduler& scheduler() const noexcept {
    return *scheduler_;
  }
  [[nodiscard]] VniEndpoint& vni_endpoint() noexcept { return *endpoint_; }
  [[nodiscard]] db::Database& database() noexcept { return *db_; }
  [[nodiscard]] const StackConfig& config() const noexcept { return config_; }

  // -- Workload submission.
  Result<k8s::Uid> submit_job(const JobOptions& options);
  Result<k8s::Uid> create_claim(const std::string& ns,
                                const std::string& claim_name);
  Status delete_claim(k8s::Uid uid);
  Status delete_job(k8s::Uid uid);

  // -- Driving virtual time.
  void run_for(SimDuration d) { loop_.run_for(d); }
  std::size_t run_until_idle() { return loop_.run_until_idle(); }
  /// Steps the loop until `pred()` or `max_wait` virtual time elapses.
  bool run_until(const std::function<bool()>& pred, SimDuration max_wait,
                 SimDuration step = from_millis(20));

  /// Waits for the job's first pod to reach Running ("actual job start").
  bool wait_job_start(k8s::Uid job, SimDuration max_wait = 120 * kSecond);
  bool wait_job_complete(k8s::Uid job, SimDuration max_wait = 120 * kSecond);
  /// Waits until the job object has been fully removed.
  bool wait_job_gone(k8s::Uid job, SimDuration max_wait = 120 * kSecond);

  [[nodiscard]] std::vector<k8s::Pod> pods_of_job(k8s::Uid job) const;

  // -- Data plane access for pod workloads.
  Result<PodHandle> exec_in_pod(k8s::Uid pod_uid);
  /// A libfabric-style domain bound to the handle's process — endpoint
  /// creation through it is netns-authenticated by the node's driver.
  Result<ofi::Domain> domain_for(const PodHandle& handle);

  // -- Failure injection: control plane.
  void set_vni_endpoint_available(bool up) {
    endpoint_->set_available(up);
  }

  // -- Failure injection: data plane (links and switches).
  //
  // Each call marks the fabric's data plane down/up immediately and
  // schedules the fabric manager's repair after `fm_reroute_delay` of
  // virtual time — the honest failure window during which packets
  // committed to the dead element are lost.  The scheduler sees switch
  // health through its probe and drains/avoids unhealthy switches.
  /// Simulated k8s control-plane process restarts: the controller drops
  /// its in-memory state (in-flight API writes die with it) and rebuilds
  /// level-triggered from the API server.
  void restart_scheduler() { scheduler_->restart_from_api(); }
  void restart_job_controller() { job_controller_->restart_from_api(); }

  Status fail_link(hsn::SwitchId a, hsn::SwitchId b);
  Status restore_link(hsn::SwitchId a, hsn::SwitchId b);
  Status fail_switch(hsn::SwitchId s);
  Status restore_switch(hsn::SwitchId s);

  // -- Re-route observability.
  /// Completed fabric-manager re-route events (repairs that landed).
  [[nodiscard]] std::size_t reroute_events() const noexcept {
    return reroute_events_;
  }
  /// Injection -> repaired-tables-published latency of the most recent
  /// re-route (0 until the first repair lands).
  [[nodiscard]] SimDuration last_reroute_latency() const noexcept {
    return last_reroute_latency_;
  }
  /// Sum over all re-route events (mean = total / events).
  [[nodiscard]] SimDuration total_reroute_latency() const noexcept {
    return total_reroute_latency_;
  }
  /// Version of the routing tables currently compiled and published to
  /// every switch: 0 for the pristine build, +1 per fabric-manager
  /// repair.  Pairs with reroute_events() to observe that an injected
  /// failure actually produced a republished (re-compiled) plan.
  [[nodiscard]] std::uint64_t published_plan_version() const {
    return fabric_->manager().plan_version();
  }
  /// Reliable-delivery accounting summed over every NIC (all zeros when
  /// `StackConfig::reliability` is off) — the stack-metrics view of
  /// retransmits, suppressed duplicates, exhausted budgets, and ops
  /// recovered across a replan.
  [[nodiscard]] hsn::ReliabilityCounters reliability_counters() const {
    return fabric_->reliability_totals();
  }
  /// Sharded data-plane executor counters (windows/flush, items/window,
  /// pool hit rate, barrier and wakeup amortization — the glossary
  /// lives in docs/performance.md).  All zeros when
  /// `StackConfig::data_plane_threads` is 0: the perf claims of the
  /// batched executor are observable through the stack, not asserted.
  [[nodiscard]] hsn::ShardEngineStats data_plane_stats() const {
    return shard_engine_ ? shard_engine_->stats() : hsn::ShardEngineStats{};
  }

  // -- Control-plane recovery observability (all zeros unless a crash
  //    was armed via fabric().manager().arm_crash and fm_watchdog is on).

  /// Virtual time the watchdog observed the fabric manager down
  /// (accumulated per watchdog tick while crashed).
  [[nodiscard]] SimDuration fm_downtime_vt() const noexcept {
    return fm_downtime_vt_;
  }
  /// Fabric-wide packets dropped because a switch's applied plan lagged
  /// the committed epoch (DropReason::kStaleEpoch) — the observable cost
  /// of staggered publishing, never silent loss.
  [[nodiscard]] std::uint64_t stale_epoch_drops() const {
    return fabric_->total_counters().dropped_stale_epoch;
  }
  /// Successful fabric-manager restart recoveries (journal replay +
  /// republish).
  [[nodiscard]] std::size_t recovered_publishes() const {
    return fabric_->manager().recovered_publishes();
  }

 private:
  /// Schedules the fabric manager's repair for a just-injected failure
  /// or restore and records the re-route latency metric when it lands.
  void schedule_reroute();
  /// Drains a staggered publish's apply waves from the event loop (the
  /// synchronous-mode path; under a ShardEngine the waves drain at
  /// window barriers instead).
  void schedule_publish_waves();
  /// Starts the periodic fabric-manager health watchdog (fm_watchdog).
  void start_fm_watchdog();

  StackConfig config_;
  sim::EventLoop loop_;
  Rng master_rng_;
  std::unique_ptr<k8s::ApiServer> api_;
  std::unique_ptr<hsn::Fabric> fabric_;
  /// Declared after fabric_ so it is destroyed first (its worker pool
  /// must quiesce while the fabric is still alive).
  std::unique_ptr<hsn::ShardEngine> shard_engine_;
  std::unique_ptr<db::Database> db_;
  std::unique_ptr<VniRegistry> registry_;
  std::unique_ptr<VniEndpoint> endpoint_;
  std::unique_ptr<k8s::JobController> job_controller_;
  std::unique_ptr<k8s::Scheduler> scheduler_;
  std::unique_ptr<k8s::DecoratorController> vni_controller_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::size_t reroute_events_ = 0;
  SimDuration last_reroute_latency_ = 0;
  SimDuration total_reroute_latency_ = 0;
  // -- Fabric-manager watchdog state (see start_fm_watchdog).
  bool fm_degraded_ = false;
  int fm_restart_backoff_ = 0;  ///< restart backoff, in watchdog ticks
  SimTime fm_next_restart_vt_ = 0;
  SimDuration fm_downtime_vt_ = 0;
};

}  // namespace shs::core
