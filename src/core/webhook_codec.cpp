#include "core/webhook_codec.hpp"

#include <cctype>

#include "util/strings.hpp"

namespace shs::core::webhook {

// ---------------------------------------------------------------------------
// Serialization

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

std::string Json::dump() const {
  std::string out;
  switch (kind_) {
    case Kind::kNull:
      out = "null";
      break;
    case Kind::kBool:
      out = bool_ ? "true" : "false";
      break;
    case Kind::kInt:
      out = std::to_string(int_);
      break;
    case Kind::kString:
      dump_string(str_, out);
      break;
    case Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i != 0) out += ',';
        out += arr_[i].dump();
      }
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : obj_) {
        if (!first) out += ',';
        first = false;
        dump_string(key, out);
        out += ':';
        out += value.dump();
      }
      out += '}';
      break;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Parsing (recursive descent)

namespace {

struct Parser {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() && std::isspace(
                                    static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }
  [[nodiscard]] bool eof() { return pos >= text.size(); }
  [[nodiscard]] char peek() { return text[pos]; }
  bool consume(char c) {
    skip_ws();
    if (eof() || text[pos] != c) return false;
    ++pos;
    return true;
  }

  Result<Json> value() {
    skip_ws();
    if (eof()) return Result<Json>(invalid_argument("unexpected end"));
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') return null_value();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return number();
    }
    return Result<Json>(invalid_argument(
        strfmt("unexpected character '%c' at %zu", c, pos)));
  }

  Result<Json> object() {
    if (!consume('{')) return Result<Json>(invalid_argument("expected {"));
    JsonObject obj;
    skip_ws();
    if (consume('}')) return Json(std::move(obj));
    while (true) {
      auto key = string_value();
      if (!key.is_ok()) return key;
      if (!consume(':')) return Result<Json>(invalid_argument("expected :"));
      auto val = value();
      if (!val.is_ok()) return val;
      obj.emplace(key.value().as_string(), std::move(val).value());
      if (consume(',')) continue;
      if (consume('}')) return Json(std::move(obj));
      return Result<Json>(invalid_argument("expected , or }"));
    }
  }

  Result<Json> array() {
    if (!consume('[')) return Result<Json>(invalid_argument("expected ["));
    JsonArray arr;
    skip_ws();
    if (consume(']')) return Json(std::move(arr));
    while (true) {
      auto val = value();
      if (!val.is_ok()) return val;
      arr.push_back(std::move(val).value());
      if (consume(',')) continue;
      if (consume(']')) return Json(std::move(arr));
      return Result<Json>(invalid_argument("expected , or ]"));
    }
  }

  Result<Json> string_value() {
    skip_ws();
    if (eof() || peek() != '"') {
      return Result<Json>(invalid_argument("expected string"));
    }
    ++pos;
    std::string out;
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return Json(std::move(out));
      if (c == '\\') {
        if (pos >= text.size()) break;
        out += text[pos++];
        continue;
      }
      out += c;
    }
    return Result<Json>(invalid_argument("unterminated string"));
  }

  Result<Json> boolean() {
    if (text.compare(pos, 4, "true") == 0) {
      pos += 4;
      return Json(true);
    }
    if (text.compare(pos, 5, "false") == 0) {
      pos += 5;
      return Json(false);
    }
    return Result<Json>(invalid_argument("bad literal"));
  }

  Result<Json> null_value() {
    if (text.compare(pos, 4, "null") == 0) {
      pos += 4;
      return Json();
    }
    return Result<Json>(invalid_argument("bad literal"));
  }

  Result<Json> number() {
    const std::size_t start = pos;
    if (peek() == '-') ++pos;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    if (pos == start || (pos == start + 1 && text[start] == '-')) {
      return Result<Json>(invalid_argument("bad number"));
    }
    return Json(static_cast<std::int64_t>(
        std::stoll(text.substr(start, pos - start))));
  }
};

}  // namespace

Result<Json> Json::parse(const std::string& text) {
  Parser p{text};
  auto v = p.value();
  if (!v.is_ok()) return v;
  p.skip_ws();
  if (!p.eof()) {
    return Result<Json>(invalid_argument("trailing characters"));
  }
  return v;
}

// ---------------------------------------------------------------------------
// Payload codecs

namespace {

Json encode_meta(const k8s::ObjectMeta& meta) {
  JsonObject annotations;
  for (const auto& [key, value] : meta.annotations) {
    annotations.emplace(key, Json(value));
  }
  return Json(JsonObject{
      {"name", Json(meta.name)},
      {"namespace", Json(meta.ns)},
      {"uid", Json(static_cast<std::int64_t>(meta.uid))},
      {"annotations", Json(std::move(annotations))},
      {"deletionRequested", Json(meta.deletion_requested)},
  });
}

Result<k8s::ObjectMeta> decode_meta(const Json& j) {
  k8s::ObjectMeta meta;
  const Json* name = j.find("name");
  const Json* ns = j.find("namespace");
  const Json* uid = j.find("uid");
  if (!name || !name->is_string() || !ns || !ns->is_string() || !uid ||
      !uid->is_int()) {
    return Result<k8s::ObjectMeta>(invalid_argument("bad metadata"));
  }
  meta.name = name->as_string();
  meta.ns = ns->as_string();
  meta.uid = static_cast<k8s::Uid>(uid->as_int());
  if (const Json* ann = j.find("annotations"); ann && ann->is_object()) {
    for (const auto& [key, value] : ann->as_object()) {
      if (value.is_string()) meta.annotations.emplace(key, value.as_string());
    }
  }
  if (const Json* del = j.find("deletionRequested");
      del && del->is_bool()) {
    meta.deletion_requested = del->as_bool();
  }
  return meta;
}

}  // namespace

Json encode_job(const k8s::Job& job) {
  return Json(JsonObject{
      {"apiVersion", Json("batch/v1")},
      {"kind", Json("Job")},
      {"metadata", encode_meta(job.meta)},
  });
}

Result<k8s::Job> decode_job(const Json& j) {
  const Json* kind = j.find("kind");
  if (!kind || !kind->is_string() || kind->as_string() != "Job") {
    return Result<k8s::Job>(invalid_argument("not a Job"));
  }
  const Json* meta = j.find("metadata");
  if (!meta) return Result<k8s::Job>(invalid_argument("missing metadata"));
  auto m = decode_meta(*meta);
  if (!m.is_ok()) return Result<k8s::Job>(m.status());
  k8s::Job job;
  job.meta = std::move(m).value();
  return job;
}

Json encode_claim(const k8s::VniClaim& claim) {
  return Json(JsonObject{
      {"apiVersion", Json("v1")},
      {"kind", Json("VniClaim")},
      {"metadata", encode_meta(claim.meta)},
      {"spec", Json(JsonObject{{"name", Json(claim.spec.claim_name)}})},
  });
}

Result<k8s::VniClaim> decode_claim(const Json& j) {
  const Json* kind = j.find("kind");
  if (!kind || !kind->is_string() || kind->as_string() != "VniClaim") {
    return Result<k8s::VniClaim>(invalid_argument("not a VniClaim"));
  }
  const Json* meta = j.find("metadata");
  if (!meta) {
    return Result<k8s::VniClaim>(invalid_argument("missing metadata"));
  }
  auto m = decode_meta(*meta);
  if (!m.is_ok()) return Result<k8s::VniClaim>(m.status());
  k8s::VniClaim claim;
  claim.meta = std::move(m).value();
  if (const Json* spec = j.find("spec")) {
    if (const Json* n = spec->find("name"); n && n->is_string()) {
      claim.spec.claim_name = n->as_string();
    }
  }
  return claim;
}

Json encode_children(const std::vector<k8s::VniObject>& children) {
  JsonArray arr;
  arr.reserve(children.size());
  for (const k8s::VniObject& child : children) {
    arr.push_back(Json(JsonObject{
        {"apiVersion", Json("v1")},
        {"kind", Json("Vni")},
        {"metadata", encode_meta(child.meta)},
        {"spec",
         Json(JsonObject{
             {"vni", Json(static_cast<std::int64_t>(child.vni))},
             {"boundKind", Json(child.bound_kind)},
             {"boundName", Json(child.bound_name)},
             {"boundUid", Json(static_cast<std::int64_t>(child.bound_uid))},
             {"virtual", Json(child.virtual_instance)},
             {"claimName", Json(child.claim_name)},
         })},
    }));
  }
  return Json(JsonObject{{"attachments", Json(std::move(arr))}});
}

Result<std::vector<k8s::VniObject>> decode_children(const Json& j) {
  using R = Result<std::vector<k8s::VniObject>>;
  const Json* attachments = j.find("attachments");
  if (!attachments || !attachments->is_array()) {
    return R(invalid_argument("missing attachments"));
  }
  std::vector<k8s::VniObject> out;
  for (const Json& item : attachments->as_array()) {
    const Json* meta = item.find("metadata");
    const Json* spec = item.find("spec");
    if (!meta || !spec) return R(invalid_argument("bad attachment"));
    auto m = decode_meta(*meta);
    if (!m.is_ok()) return R(m.status());
    k8s::VniObject v;
    v.meta = std::move(m).value();
    const Json* vni = spec->find("vni");
    if (!vni || !vni->is_int()) return R(invalid_argument("missing vni"));
    v.vni = static_cast<hsn::Vni>(vni->as_int());
    if (const Json* f = spec->find("boundKind"); f && f->is_string()) {
      v.bound_kind = f->as_string();
    }
    if (const Json* f = spec->find("boundName"); f && f->is_string()) {
      v.bound_name = f->as_string();
    }
    if (const Json* f = spec->find("boundUid"); f && f->is_int()) {
      v.bound_uid = static_cast<k8s::Uid>(f->as_int());
    }
    if (const Json* f = spec->find("virtual"); f && f->is_bool()) {
      v.virtual_instance = f->as_bool();
    }
    if (const Json* f = spec->find("claimName"); f && f->is_string()) {
      v.claim_name = f->as_string();
    }
    out.push_back(std::move(v));
  }
  return out;
}

Json encode_finalized(bool finalized) {
  return Json(JsonObject{{"finalized", Json(finalized)}});
}

Result<bool> decode_finalized(const Json& j) {
  const Json* f = j.find("finalized");
  if (!f || !f->is_bool()) {
    return Result<bool>(invalid_argument("missing finalized"));
  }
  return f->as_bool();
}

}  // namespace shs::core::webhook
