#include "k8s/kubelet.hpp"

#include <algorithm>

#include "k8s/scheduler.hpp"  // kKubeletFinalizer
#include "util/log.hpp"

namespace shs::k8s {

namespace {
constexpr const char* kTag = "kubelet";
}

Kubelet::Kubelet(ApiServer& api, std::string node, PodRuntime& runtime,
                 Rng rng)
    : api_(api), node_(std::move(node)), runtime_(runtime), rng_(rng) {}

Kubelet::~Kubelet() { stop(); }

void Kubelet::start() {
  if (task_ != sim::EventLoop::kInvalidTask) return;
  task_ = api_.loop().schedule_periodic(api_.params().kubelet_sync_period,
                                        [this] { sync(); });
}

void Kubelet::stop() {
  if (task_ != sim::EventLoop::kInvalidTask) {
    api_.loop().cancel(task_);
    task_ = sim::EventLoop::kInvalidTask;
  }
}

void Kubelet::sync() {
  // Copy-free scan: only uids are collected (the spike test watches 500
  // pods per node through this loop).
  api_.visit_pods([&](const Pod& p) {
    if (p.status.node != node_) return;
    const Uid uid = p.meta.uid;
    if (p.meta.deletion_requested) {
      if (!torn_down_.contains(uid) && !queued_or_active_.contains(uid)) {
        queued_or_active_.insert(uid);
        teardown_queue_.push_back(uid);
      }
      return;
    }
    if (p.status.phase == PodPhase::kScheduled &&
        !queued_or_active_.contains(uid)) {
      queued_or_active_.insert(uid);
      create_queue_.push_back(uid);
    }
  });
  pump();
}

void Kubelet::pump() {
  while (create_active_ < api_.params().kubelet_create_workers &&
         !create_queue_.empty()) {
    const Uid uid = create_queue_.front();
    create_queue_.pop_front();
    ++create_active_;
    run_create(uid);
  }
  while (teardown_active_ < api_.params().kubelet_teardown_workers &&
         !teardown_queue_.empty()) {
    const Uid uid = teardown_queue_.front();
    teardown_queue_.pop_front();
    ++teardown_active_;
    run_teardown(uid);
  }
}

void Kubelet::stage(SimDuration cost, std::function<void()> next) {
  api_.loop().schedule_after(jittered(cost), std::move(next));
}

void Kubelet::finish_create_op(Uid uid) {
  queued_or_active_.erase(uid);
  --create_active_;
  pump();
}

void Kubelet::finish_teardown_op(Uid uid) {
  queued_or_active_.erase(uid);
  --teardown_active_;
  pump();
}

void Kubelet::fail_pod(Pod pod, const std::string& why) {
  pod.status.phase = PodPhase::kFailed;
  pod.status.message = why;
  pod.status.finished_vt = api_.loop().now();
  (void)api_.update_pod(pod);
  SHS_WARN(kTag) << "pod " << pod.meta.name << " failed: " << why;
}

// -- Create pipeline -------------------------------------------------------

void Kubelet::run_create(Uid uid) {
  auto r = api_.get_pod(uid);
  // Node mismatch: the scheduler drained the pod off this node (dead
  // switch) between queueing and this worker picking it up — the new
  // home's kubelet owns it now.
  if (!r.is_ok() || r.value().meta.deletion_requested ||
      r.value().status.node != node_) {
    finish_create_op(uid);
    return;
  }
  Pod pod = r.value();
  pod.status.phase = PodPhase::kCreating;
  (void)api_.update_pod(pod);

  auto sandbox = runtime_.create_sandbox(pod);
  if (!sandbox.is_ok()) {
    fail_pod(pod, "sandbox: " + sandbox.status().to_string());
    finish_create_op(uid);
    return;
  }
  pod.status.netns_inode = sandbox.value().netns_inode;
  (void)api_.update_pod(pod);
  stage(sandbox.value().cost, [this, uid] { stage_attach(uid); });
}

void Kubelet::stage_attach(Uid uid) {
  auto r = api_.get_pod(uid);
  if (!r.is_ok() || r.value().meta.deletion_requested) {
    finish_create_op(uid);
    return;
  }
  Pod pod = r.value();
  auto cni = runtime_.attach_networks(pod);
  if (!cni.is_ok()) {
    if (cni.code() == Code::kUnavailable &&
        cni_attempts_[uid] < cni_attempts_limit_) {
      // The VNI CRD instance has not been served yet; the pod cannot
      // launch until it is (Section III-C1).  The slot stays held: CNI
      // runs inside the serialized sandbox-setup path.
      ++cni_attempts_[uid];
      stage(api_.params().kubelet_sync_period,
            [this, uid] { stage_attach(uid); });
      return;
    }
    fail_pod(pod, "CNI ADD: " + cni.status().to_string());
    finish_create_op(uid);
    return;
  }
  cni_attempts_.erase(uid);
  pod.status.vni = cni.value().vni;
  (void)api_.update_pod(pod);
  stage(cni.value().cost, [this, uid] { stage_image(uid); });
}

void Kubelet::stage_image(Uid uid) {
  auto r = api_.get_pod(uid);
  if (!r.is_ok() || r.value().meta.deletion_requested) {
    finish_create_op(uid);
    return;
  }
  auto pull = runtime_.pull_image(r.value());
  if (!pull.is_ok()) {
    fail_pod(r.value(), "image pull: " + pull.status().to_string());
    finish_create_op(uid);
    return;
  }
  stage(pull.value(), [this, uid] { stage_start(uid); });
}

void Kubelet::stage_start(Uid uid) {
  auto r = api_.get_pod(uid);
  if (!r.is_ok() || r.value().meta.deletion_requested) {
    finish_create_op(uid);
    return;
  }
  auto start = runtime_.start_container(r.value());
  if (!start.is_ok()) {
    fail_pod(r.value(), "start: " + start.status().to_string());
    finish_create_op(uid);
    return;
  }
  stage(start.value(), [this, uid] { mark_running(uid); });
}

void Kubelet::mark_running(Uid uid) {
  auto r = api_.get_pod(uid);
  if (!r.is_ok() || r.value().meta.deletion_requested) {
    finish_create_op(uid);
    return;
  }
  Pod pod = r.value();
  pod.status.phase = PodPhase::kRunning;
  pod.status.running_vt = api_.loop().now();
  (void)api_.update_pod(pod);
  SHS_TRACE(kTag) << "pod " << pod.meta.name << " running on " << node_;

  // The container's command finishes after run_duration; completion does
  // not hold a slot (the container runs on its own).
  const SimDuration run = pod.spec.run_duration;
  api_.loop().schedule_after(run, [this, uid] {
    auto rr = api_.get_pod(uid);
    if (!rr.is_ok() || rr.value().meta.deletion_requested) return;
    Pod done = rr.value();
    if (done.status.phase != PodPhase::kRunning) return;
    done.status.phase = PodPhase::kSucceeded;
    done.status.finished_vt = api_.loop().now();
    (void)api_.update_pod(done);
  });
  finish_create_op(uid);
}

// -- Teardown pipeline ------------------------------------------------------

void Kubelet::run_teardown(Uid uid) {
  auto r = api_.get_pod(uid);
  if (!r.is_ok()) {
    finish_teardown_op(uid);
    return;
  }
  Pod pod = r.value();
  // Grace enforcement: pods requesting a VNI are hard-capped at 30 s so a
  // straggler can never outlive the VNI quarantine window.
  int grace_s = pod.spec.termination_grace_s;
  if (pod.meta.has_annotation(kVniAnnotation)) {
    grace_s = std::min(grace_s, kMaxVniGraceSeconds);
  }
  auto stop = runtime_.stop_container(pod, from_seconds(grace_s));
  const SimDuration stop_cost =
      stop.is_ok() ? stop.value() : api_.params().container_stop_cost;

  stage(stop_cost, [this, uid] {
    auto r2 = api_.get_pod(uid);
    if (!r2.is_ok()) {
      finish_teardown_op(uid);
      return;
    }
    auto del = runtime_.detach_networks(r2.value());
    const SimDuration del_cost =
        del.is_ok() ? del.value() : api_.params().bridge_cni_del_cost;
    stage(del_cost, [this, uid] {
      auto r3 = api_.get_pod(uid);
      if (!r3.is_ok()) {
        finish_teardown_op(uid);
        return;
      }
      auto destroy = runtime_.destroy_sandbox(r3.value());
      const SimDuration destroy_cost =
          destroy.is_ok() ? destroy.value()
                          : api_.params().sandbox_teardown_cost;
      stage(destroy_cost, [this, uid] {
        torn_down_.insert(uid);
        cni_attempts_.erase(uid);
        (void)api_.remove_pod_finalizer(uid, kKubeletFinalizer);
        finish_teardown_op(uid);
      });
    });
  });
}

}  // namespace shs::k8s
