// params.hpp — calibration constants of the control-plane model.
//
// The paper's evaluation runs on k3s over two Ampere Altra nodes with a
// local Harbor registry.  We cannot measure that stack here, so every
// pipeline stage has an explicit virtual-time cost, chosen so that the
// *shapes* of Figs 9-12 reproduce: job admission lags submission once the
// ramp sustains 10 jobs/s, delays reach ~15 s (ramp) and ~60 s (spike),
// and the vni:true series sits a low-single-digit percent above vni:false
// (the paper reports 3.5 % ramp / 1.6 % spike median overhead).
//
// The dominant mechanism is intentional: pod create/teardown work is
// serialized through a small per-node slot pool (kubelet + containerd do
// limited concurrent sandbox work), so sustained submission above the
// drain rate builds a queue — exactly the backlog the paper attributes to
// "the Kubernetes stack" rather than to the Slingshot integration.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace shs::k8s {

struct K8sParams {
  // -- API server / watch plumbing.
  SimDuration watch_latency = from_millis(6);

  // -- Job controller.
  SimDuration job_reconcile_delay = from_millis(20);
  SimDuration pod_create_api_cost = from_millis(10);

  // -- Scheduler.
  SimDuration scheduler_period = from_millis(40);
  SimDuration bind_cost = from_millis(15);
  int binds_per_cycle = 20;

  // -- Kubelet / container runtime (per node).  Stage costs are
  //    *aggregates* of runtime + API + GC work observed on k3s-class
  //    control planes; creation workers bound admission throughput and
  //    teardown workers bound removal throughput.
  SimDuration kubelet_sync_period = from_millis(60);
  /// Concurrent pod creations per node (admission bottleneck, Fig 10).
  int kubelet_create_workers = 2;
  /// Concurrent pod teardowns per node (removal bottleneck, Figs 9/11).
  int kubelet_teardown_workers = 2;
  SimDuration sandbox_create_cost = from_millis(120);
  SimDuration image_pull_cost = from_millis(220);  ///< local Harbor registry
  SimDuration container_start_cost = from_millis(120);
  SimDuration container_stop_cost = from_millis(300);
  SimDuration sandbox_teardown_cost = from_millis(650);

  // -- CNI chain.
  SimDuration bridge_cni_add_cost = from_millis(45);
  SimDuration bridge_cni_del_cost = from_millis(80);
  /// The paper's CXI CNI plugin: annotation lookup + VNI fetch + CXI
  /// service creation.  Runs inside the serialized pod-setup path, which
  /// is where the few-percent admission overhead comes from.
  SimDuration cxi_cni_add_cost = from_millis(6);
  SimDuration cxi_cni_del_cost = from_millis(4);

  // -- VNI service.
  SimDuration webhook_cost = from_millis(15);  ///< Metacontroller -> endpoint
  SimDuration db_txn_cost = from_millis(2);

  /// Multiplicative jitter on every control-plane stage (run-to-run
  /// variance; the paper's percentile bands).
  double jitter_amplitude = 0.18;
  std::uint64_t seed = 0x6b3873ULL;  // "k8s"
};

}  // namespace shs::k8s
