// scheduler.hpp — binds pending pods to nodes.
//
// Implements the placement features the paper's evaluation needs:
// topology-spread constraints ("spread the two involved containers onto
// the two nodes", Section IV-A) plus fabric-topology awareness for
// multi-switch clusters.  Pods sharing a non-empty `spec.spread_key` are
// placed on distinct nodes where possible, and — when the cluster spans
// several switches — preferentially on nodes attached to a switch that
// already hosts members of the same group, so tightly coupled ranks stay
// one hop apart; everything else balances by bound-pod count.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "k8s/api_server.hpp"
#include "util/rng.hpp"

namespace shs::k8s {

inline constexpr const char* kKubeletFinalizer = "shs.io/kubelet";

class Scheduler {
 public:
  /// `node_switch` maps node name -> fabric switch id; empty means "no
  /// topology knowledge" (every node counts as the same switch).  Nodes
  /// missing from a non-empty map share an "unknown" pseudo-switch
  /// distinct from every real one.
  Scheduler(ApiServer& api, std::vector<std::string> nodes, Rng rng,
            std::unordered_map<std::string, std::uint32_t> node_switch = {});
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  void start();
  void stop();

  /// Simulates a scheduler process crash + restart: every in-memory bind
  /// decision is dropped and in-flight bind writes from the old
  /// incarnation never land.  The new incarnation reconciles purely from
  /// the API server — pods whose binds were lost are still Pending there
  /// and get re-placed on the next cycle.  Telemetry counters survive
  /// (they describe the run, not the process).
  void restart_from_api();

  [[nodiscard]] std::size_t binds_issued() const noexcept {
    return telemetry_.binds;
  }
  /// Binds whose spread group already had members on a different switch
  /// (telemetry for the scale-out bench).
  [[nodiscard]] std::size_t cross_switch_binds() const noexcept {
    return telemetry_.cross_switch_binds;
  }

  /// Snapshot of the fabric's cross-switch congestion, sampled whenever
  /// the scheduler is forced to split a spread group across switches
  /// (the placements whose traffic rides the contended uplinks).  The
  /// stack wires this to Fabric::max_uplink_lag.
  using CongestionProbe = std::function<SimDuration()>;
  void set_congestion_probe(CongestionProbe probe) {
    congestion_probe_ = std::move(probe);
  }

  /// Fabric-health input: returns true when the given switch is healthy.
  /// When set, the scheduler (a) never binds onto a node whose switch is
  /// unhealthy, and (b) drains pods already on such nodes — unstarted
  /// pods are unbound back to Pending, started ones are evicted (deleted;
  /// the job controller replaces them).  Unset = all switches healthy.
  using SwitchHealthProbe = std::function<bool(std::uint32_t)>;
  void set_switch_health_probe(SwitchHealthProbe probe) {
    switch_health_probe_ = std::move(probe);
  }

  /// Aggregated bind telemetry, congestion included.
  struct BindTelemetry {
    std::size_t binds = 0;
    std::size_t cross_switch_binds = 0;
    /// Cross-switch binds for which the congestion probe was sampled.
    std::uint64_t congestion_samples = 0;
    /// Worst / summed fabric uplink queue lag over those samples.
    SimDuration max_cross_switch_lag = 0;
    SimDuration total_cross_switch_lag = 0;
    /// Pods taken off nodes whose switch went unhealthy: unbound back to
    /// Pending (rebound) or deleted for replacement (evicted).
    std::size_t drained_rebound = 0;
    std::size_t drained_evicted = 0;

    [[nodiscard]] std::size_t drained_total() const noexcept {
      return drained_rebound + drained_evicted;
    }

    [[nodiscard]] double mean_cross_switch_lag_us() const noexcept {
      return congestion_samples == 0
                 ? 0.0
                 : to_micros(total_cross_switch_lag) /
                       static_cast<double>(congestion_samples);
    }
  };
  [[nodiscard]] BindTelemetry bind_telemetry() const noexcept {
    return telemetry_;
  }

 private:
  void cycle();
  [[nodiscard]] std::uint32_t switch_of(const std::string& node) const;
  /// True when `switch_id` may host new work (probe unset, pseudo-switch,
  /// or the probe reports healthy).
  [[nodiscard]] bool switch_usable(std::uint32_t switch_id) const;
  /// Takes the drained pods off their dead-switch nodes (see
  /// set_switch_health_probe).
  void drain(const std::vector<Uid>& uids);

  /// A bind decision whose deferred API write has not landed yet.  The
  /// node/group are remembered so later cycles see the decision in their
  /// load and same-switch accounting (the pod object still looks
  /// unbound until the write fires).
  struct InFlightBind {
    std::string node;
    std::string spread_key;
  };

  ApiServer& api_;
  std::vector<std::string> nodes_;
  Rng rng_;
  std::unordered_map<std::string, std::uint32_t> node_switch_;
  /// switch_of(nodes_[i]), precomputed in the constructor so the scoring
  /// loop never does a by-name map lookup.
  std::vector<std::uint32_t> node_switch_ids_;
  sim::EventLoop::TaskId task_ = sim::EventLoop::kInvalidTask;
  /// Bumped by restart_from_api(); deferred API writes scheduled by an
  /// older incarnation check it and bail (the crashed process's
  /// in-flight RPCs die with it).
  std::uint64_t incarnation_ = 0;
  std::unordered_map<Uid, InFlightBind> in_flight_;
  CongestionProbe congestion_probe_;
  SwitchHealthProbe switch_health_probe_;
  BindTelemetry telemetry_;
  std::size_t rr_ = 0;  ///< round-robin tiebreaker
};

}  // namespace shs::k8s
