// scheduler.hpp — binds pending pods to nodes.
//
// Implements the one placement feature the paper's evaluation needs:
// topology-spread constraints ("spread the two involved containers onto
// the two nodes", Section IV-A).  Pods sharing a non-empty
// `spec.spread_key` are placed on distinct nodes where possible;
// everything else balances by bound-pod count.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "k8s/api_server.hpp"
#include "util/rng.hpp"

namespace shs::k8s {

inline constexpr const char* kKubeletFinalizer = "shs.io/kubelet";

class Scheduler {
 public:
  Scheduler(ApiServer& api, std::vector<std::string> nodes, Rng rng);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  void start();
  void stop();

  [[nodiscard]] std::size_t binds_issued() const noexcept { return binds_; }

 private:
  void cycle();

  ApiServer& api_;
  std::vector<std::string> nodes_;
  Rng rng_;
  sim::EventLoop::TaskId task_ = sim::EventLoop::kInvalidTask;
  std::unordered_set<Uid> in_flight_;  ///< bind decisions not yet applied
  std::size_t binds_ = 0;
  std::size_t rr_ = 0;  ///< round-robin tiebreaker
};

}  // namespace shs::k8s
