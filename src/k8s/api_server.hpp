// api_server.hpp — the cluster's typed object store with watches and
// Kubernetes deletion semantics.
//
// Faithful pieces:
//   * every mutation bumps resourceVersion and fans out a watch event
//     (delivered asynchronously on the event loop after `watch_latency`);
//   * deletion is two-phase — `request_delete` sets the deletion
//     timestamp; the object only disappears when its finalizer list
//     drains (controllers own finalizers, exactly like kubelet and the
//     Metacontroller decorator in the real system);
//   * reads return snapshots (value semantics) — controllers never alias
//     live store memory.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "k8s/objects.hpp"
#include "k8s/params.hpp"
#include "sim/event_loop.hpp"
#include "util/status.hpp"

namespace shs::k8s {

/// Subscription handle returned by watch registration.
using SubId = std::uint64_t;

namespace detail {

/// One kind's storage: uid-indexed objects + subscribers.
template <typename T>
class Store {
 public:
  using Watcher = std::function<void(const WatchEvent<T>&)>;

  explicit Store(sim::EventLoop& loop, const K8sParams& params)
      : loop_(loop), params_(params) {}

  Result<Uid> create(T obj, Uid uid, SimTime now) {
    if (obj.meta.name.empty()) {
      return Result<Uid>(invalid_argument("metadata.name required"));
    }
    if (find_by_name(obj.meta.ns, obj.meta.name) != nullptr) {
      return Result<Uid>(already_exists(obj.meta.ns + "/" + obj.meta.name));
    }
    obj.meta.uid = uid;
    obj.meta.creation_vt = now;
    obj.meta.resource_version = ++rv_;
    auto [it, ok] = objects_.emplace(uid, std::move(obj));
    notify(WatchEventType::kAdded, it->second);
    return uid;
  }

  Result<T> get(Uid uid) const {
    const auto it = objects_.find(uid);
    if (it == objects_.end()) return Result<T>(not_found("no such object"));
    return it->second;
  }

  Result<T> get_by_name(const std::string& ns, const std::string& name) const {
    const T* obj = find_by_name(ns, name);
    if (obj == nullptr) return Result<T>(not_found(ns + "/" + name));
    return *obj;
  }

  /// Last-write-wins update keyed by uid.  Deleted objects reject writes.
  Status update(const T& obj) {
    const auto it = objects_.find(obj.meta.uid);
    if (it == objects_.end()) return not_found("no such object");
    const auto preserved_finalizers = it->second.meta.finalizers;
    const bool preserved_deletion = it->second.meta.deletion_requested;
    const SimTime preserved_deletion_vt = it->second.meta.deletion_vt;
    it->second = obj;
    // Deletion state and finalizers are owned by the server (clients use
    // the dedicated verbs below), so status updates cannot resurrect.
    it->second.meta.finalizers = preserved_finalizers;
    it->second.meta.deletion_requested = preserved_deletion;
    it->second.meta.deletion_vt = preserved_deletion_vt;
    it->second.meta.resource_version = ++rv_;
    notify(WatchEventType::kModified, it->second);
    return Status::ok();
  }

  Status add_finalizer(Uid uid, const std::string& f) {
    const auto it = objects_.find(uid);
    if (it == objects_.end()) return not_found("no such object");
    if (!it->second.meta.has_finalizer(f)) {
      it->second.meta.finalizers.push_back(f);
      it->second.meta.resource_version = ++rv_;
      notify(WatchEventType::kModified, it->second);
    }
    return Status::ok();
  }

  Status remove_finalizer(Uid uid, const std::string& f) {
    const auto it = objects_.find(uid);
    if (it == objects_.end()) return not_found("no such object");
    auto& fins = it->second.meta.finalizers;
    for (auto fit = fins.begin(); fit != fins.end(); ++fit) {
      if (*fit == f) {
        fins.erase(fit);
        it->second.meta.resource_version = ++rv_;
        maybe_reap(it->first);
        return Status::ok();
      }
    }
    return not_found("finalizer not present");
  }

  Status request_delete(Uid uid, SimTime now) {
    const auto it = objects_.find(uid);
    if (it == objects_.end()) return not_found("no such object");
    if (!it->second.meta.deletion_requested) {
      it->second.meta.deletion_requested = true;
      it->second.meta.deletion_vt = now;
      it->second.meta.resource_version = ++rv_;
      notify(WatchEventType::kModified, it->second);
    }
    maybe_reap(uid);
    return Status::ok();
  }

  std::vector<T> list(const std::function<bool(const T&)>& pred = nullptr)
      const {
    std::vector<T> out;
    for (const auto& [uid, obj] : objects_) {
      if (!pred || pred(obj)) out.push_back(obj);
    }
    return out;
  }

  /// Copy-free iteration for controller hot paths.  The callback must not
  /// mutate the store (single-threaded loop, so re-entrancy is the only
  /// hazard — visitors must not call create/update/delete).
  void visit(const std::function<void(const T&)>& fn) const {
    for (const auto& [uid, obj] : objects_) fn(obj);
  }

  [[nodiscard]] std::size_t size() const { return objects_.size(); }

  SubId subscribe(Watcher w, SubId id) {
    watchers_.emplace(id, std::move(w));
    return id;
  }
  void unsubscribe(SubId id) { watchers_.erase(id); }

 private:
  const T* find_by_name(const std::string& ns, const std::string& name) const {
    for (const auto& [uid, obj] : objects_) {
      if (obj.meta.ns == ns && obj.meta.name == name) return &obj;
    }
    return nullptr;
  }

  void maybe_reap(Uid uid) {
    const auto it = objects_.find(uid);
    if (it == objects_.end()) return;
    if (it->second.meta.deletion_requested &&
        it->second.meta.finalizers.empty()) {
      T snapshot = it->second;
      objects_.erase(it);
      notify(WatchEventType::kDeleted, snapshot);
    }
  }

  void notify(WatchEventType type, const T& obj) {
    for (const auto& [id, w] : watchers_) {
      // Copy the watcher and a snapshot; deliver after the watch latency,
      // matching the asynchrony of real watch streams.
      auto watcher = w;
      WatchEvent<T> ev{type, obj};
      loop_.schedule_after(params_.watch_latency,
                           [watcher, ev] { watcher(ev); });
    }
  }

  sim::EventLoop& loop_;
  const K8sParams& params_;
  std::map<Uid, T> objects_;  // ordered: deterministic list()
  std::map<SubId, Watcher> watchers_;
  std::uint64_t rv_ = 0;
};

}  // namespace detail

/// The API server.  Single-threaded: all access happens on the event-loop
/// thread (controllers are loop callbacks), matching the deterministic
/// control-plane design.
class ApiServer {
 public:
  explicit ApiServer(sim::EventLoop& loop, K8sParams params = {})
      : loop_(loop), params_(params), pods_(loop, params_),
        jobs_(loop, params_), vnis_(loop, params_), claims_(loop, params_) {}

  [[nodiscard]] sim::EventLoop& loop() noexcept { return loop_; }
  [[nodiscard]] const K8sParams& params() const noexcept { return params_; }

  // -- Pods.
  Result<Uid> create_pod(Pod pod) {
    return pods_.create(std::move(pod), next_uid_++, loop_.now());
  }
  Result<Pod> get_pod(Uid uid) const { return pods_.get(uid); }
  Result<Pod> get_pod_by_name(const std::string& ns,
                              const std::string& name) const {
    return pods_.get_by_name(ns, name);
  }
  Status update_pod(const Pod& pod) { return pods_.update(pod); }
  Status add_pod_finalizer(Uid uid, const std::string& f) {
    return pods_.add_finalizer(uid, f);
  }
  Status remove_pod_finalizer(Uid uid, const std::string& f) {
    return pods_.remove_finalizer(uid, f);
  }
  Status delete_pod(Uid uid) { return pods_.request_delete(uid, loop_.now()); }
  std::vector<Pod> list_pods(
      const std::function<bool(const Pod&)>& pred = nullptr) const {
    return pods_.list(pred);
  }
  void visit_pods(const std::function<void(const Pod&)>& fn) const {
    pods_.visit(fn);
  }
  SubId watch_pods(detail::Store<Pod>::Watcher w) {
    return pods_.subscribe(std::move(w), next_sub_++);
  }
  void unwatch_pods(SubId id) { pods_.unsubscribe(id); }

  // -- Jobs.
  Result<Uid> create_job(Job job) {
    return jobs_.create(std::move(job), next_uid_++, loop_.now());
  }
  Result<Job> get_job(Uid uid) const { return jobs_.get(uid); }
  Result<Job> get_job_by_name(const std::string& ns,
                              const std::string& name) const {
    return jobs_.get_by_name(ns, name);
  }
  Status update_job(const Job& job) { return jobs_.update(job); }
  Status add_job_finalizer(Uid uid, const std::string& f) {
    return jobs_.add_finalizer(uid, f);
  }
  Status remove_job_finalizer(Uid uid, const std::string& f) {
    return jobs_.remove_finalizer(uid, f);
  }
  Status delete_job(Uid uid) { return jobs_.request_delete(uid, loop_.now()); }
  std::vector<Job> list_jobs(
      const std::function<bool(const Job&)>& pred = nullptr) const {
    return jobs_.list(pred);
  }
  void visit_jobs(const std::function<void(const Job&)>& fn) const {
    jobs_.visit(fn);
  }
  SubId watch_jobs(detail::Store<Job>::Watcher w) {
    return jobs_.subscribe(std::move(w), next_sub_++);
  }
  void unwatch_jobs(SubId id) { jobs_.unsubscribe(id); }

  // -- Vni CRD instances.
  Result<Uid> create_vni_object(VniObject v) {
    return vnis_.create(std::move(v), next_uid_++, loop_.now());
  }
  Result<VniObject> get_vni_object(Uid uid) const { return vnis_.get(uid); }
  Status update_vni_object(const VniObject& v) { return vnis_.update(v); }
  Status delete_vni_object(Uid uid) {
    return vnis_.request_delete(uid, loop_.now());
  }
  Status add_vni_finalizer(Uid uid, const std::string& f) {
    return vnis_.add_finalizer(uid, f);
  }
  Status remove_vni_finalizer(Uid uid, const std::string& f) {
    return vnis_.remove_finalizer(uid, f);
  }
  std::vector<VniObject> list_vni_objects(
      const std::function<bool(const VniObject&)>& pred = nullptr) const {
    return vnis_.list(pred);
  }
  SubId watch_vni_objects(detail::Store<VniObject>::Watcher w) {
    return vnis_.subscribe(std::move(w), next_sub_++);
  }

  // -- VniClaim CRD instances.
  Result<Uid> create_vni_claim(VniClaim c) {
    return claims_.create(std::move(c), next_uid_++, loop_.now());
  }
  Result<VniClaim> get_vni_claim(Uid uid) const { return claims_.get(uid); }
  Result<VniClaim> get_vni_claim_by_name(const std::string& ns,
                                         const std::string& name) const {
    return claims_.get_by_name(ns, name);
  }
  Status update_vni_claim(const VniClaim& c) { return claims_.update(c); }
  Status delete_vni_claim(Uid uid) {
    return claims_.request_delete(uid, loop_.now());
  }
  Status add_claim_finalizer(Uid uid, const std::string& f) {
    return claims_.add_finalizer(uid, f);
  }
  Status remove_claim_finalizer(Uid uid, const std::string& f) {
    return claims_.remove_finalizer(uid, f);
  }
  std::vector<VniClaim> list_vni_claims(
      const std::function<bool(const VniClaim&)>& pred = nullptr) const {
    return claims_.list(pred);
  }
  void visit_vni_claims(const std::function<void(const VniClaim&)>& fn)
      const {
    claims_.visit(fn);
  }
  SubId watch_vni_claims(detail::Store<VniClaim>::Watcher w) {
    return claims_.subscribe(std::move(w), next_sub_++);
  }

 private:
  sim::EventLoop& loop_;
  K8sParams params_;
  Uid next_uid_ = 1;
  SubId next_sub_ = 1;
  detail::Store<Pod> pods_;
  detail::Store<Job> jobs_;
  detail::Store<VniObject> vnis_;
  detail::Store<VniClaim> claims_;
};

}  // namespace shs::k8s
