// metacontroller.hpp — a Metacontroller-style DecoratorController.
//
// The paper implements its VNI Controller as a Metacontroller Decorator
// Controller (Section III-C1): it watches already-created resources that
// match a pattern (Jobs carrying the `vni` annotation, plus VniClaim CRD
// instances), calls the VNI Endpoint's /sync and /finalize webhooks, and
// applies the returned child objects (VNI CRD instances) with "apply
// semantics".  This class is that backend; the webhook *logic* lives in
// core::VniEndpoint and is injected here as hooks.
#pragma once

#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "k8s/api_server.hpp"
#include "util/rng.hpp"

namespace shs::k8s {

inline constexpr const char* kMetaFinalizer = "shs.io/vni-controller";

class DecoratorController {
 public:
  struct Hooks {
    /// /sync for an annotated job: returns the desired child VNI CRD
    /// instances (normally exactly one).  Idempotent.
    std::function<Result<std::vector<VniObject>>(const Job&)> sync_job;
    /// /finalize for a deleted job: true when cleanup is complete.
    std::function<Result<bool>(const Job&)> finalize_job;
    /// /sync for a VniClaim.
    std::function<Result<std::vector<VniObject>>(const VniClaim&)> sync_claim;
    /// /finalize for a VniClaim: only true once all users are gone
    /// (Section III-C2: deletion stalls otherwise).
    std::function<Result<bool>(const VniClaim&)> finalize_claim;
  };

  DecoratorController(ApiServer& api, Hooks hooks, Rng rng);
  ~DecoratorController();
  DecoratorController(const DecoratorController&) = delete;
  DecoratorController& operator=(const DecoratorController&) = delete;

  void start();
  void stop();

  /// Webhook-call counters (exposed for the admission-overhead benches).
  [[nodiscard]] std::uint64_t sync_calls() const noexcept {
    return sync_calls_;
  }
  [[nodiscard]] std::uint64_t finalize_calls() const noexcept {
    return finalize_calls_;
  }

 private:
  void reconcile();
  void reconcile_job(Uid uid, bool deleting, bool has_finalizer);
  void reconcile_claim(Uid uid, bool deleting, bool has_finalizer);
  void apply_children(Uid parent_uid, const std::vector<VniObject>& desired);
  SimDuration jittered(SimDuration d) {
    return static_cast<SimDuration>(
        static_cast<double>(d) * rng_.jitter(api_.params().jitter_amplitude));
  }

  ApiServer& api_;
  Hooks hooks_;
  Rng rng_;
  sim::EventLoop::TaskId task_ = sim::EventLoop::kInvalidTask;
  std::unordered_set<Uid> sync_inflight_;
  std::unordered_set<Uid> synced_;
  std::unordered_set<Uid> finalize_inflight_;
  std::uint64_t sync_calls_ = 0;
  std::uint64_t finalize_calls_ = 0;
};

}  // namespace shs::k8s
