// pod_runtime.hpp — the kubelet's view of the container runtime (CRI).
//
// Each stage returns its modeled virtual-time cost; the kubelet schedules
// the next stage after that delay.  Implemented by cri::ContainerRuntime,
// which owns the node's namespaces and CNI plugin chain.
#pragma once

#include "k8s/objects.hpp"
#include "util/status.hpp"
#include "util/units.hpp"

namespace shs::k8s {

struct SandboxInfo {
  linuxsim::NetNsInode netns_inode = 0;
  SimDuration cost = 0;
};

struct CniAddInfo {
  hsn::Vni vni = hsn::kInvalidVni;  ///< granted VNI (kInvalidVni if none)
  SimDuration cost = 0;
};

/// CRI-ish runtime interface.  Implementations must be callable from the
/// event-loop thread and must not block.
class PodRuntime {
 public:
  virtual ~PodRuntime() = default;

  /// Creates the pod sandbox (network namespace, cgroup).
  virtual Result<SandboxInfo> create_sandbox(const Pod& pod) = 0;

  /// Runs the CNI plugin chain (ADD).  May return kUnavailable to signal
  /// "retry later" (e.g. the VNI CRD instance has not been created yet);
  /// the kubelet re-attempts after a backoff.
  virtual Result<CniAddInfo> attach_networks(const Pod& pod) = 0;

  /// Pulls the container image (local registry in the paper's setup).
  virtual Result<SimDuration> pull_image(const Pod& pod) = 0;

  /// Starts the container process.
  virtual Result<SimDuration> start_container(const Pod& pod) = 0;

  /// Stops the container (bounded by the grace period).
  virtual Result<SimDuration> stop_container(const Pod& pod,
                                             SimDuration grace) = 0;

  /// Runs the CNI plugin chain (DEL).
  virtual Result<SimDuration> detach_networks(const Pod& pod) = 0;

  /// Destroys the sandbox and its namespaces.
  virtual Result<SimDuration> destroy_sandbox(const Pod& pod) = 0;
};

}  // namespace shs::k8s
