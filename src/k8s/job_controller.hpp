// job_controller.hpp — creates pods for Jobs, tracks completion, cascades
// deletion, and implements ttlSecondsAfterFinished=0 ("Jobs are configured
// to be deleted immediately after completion", Section IV-B).
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "k8s/api_server.hpp"
#include "util/rng.hpp"

namespace shs::k8s {

inline constexpr const char* kJobFinalizer = "shs.io/job-controller";

class JobController {
 public:
  JobController(ApiServer& api, Rng rng);
  ~JobController();
  JobController(const JobController&) = delete;
  JobController& operator=(const JobController&) = delete;

  /// Starts the periodic reconcile loop.
  void start();
  void stop();

  /// Simulates a controller process crash + restart: wipes every
  /// in-memory table, drops in-flight pod creations / TTL deletions from
  /// the old incarnation, and rebuilds tracking state level-triggered
  /// from the API server.  The job finalizer is the durable marker that
  /// creation began; for incomplete tracked jobs every expected index is
  /// marked seen, so the first reconcile recreates any pod whose
  /// in-flight create died with the crash.  TTL deletions re-issue
  /// (at-least-once; deleting a gone job is a no-op).
  void restart_from_api();

  /// Number of jobs currently tracked as incomplete (diagnostics).
  [[nodiscard]] std::size_t inflight_jobs() const {
    return pods_created_.size();
  }

  /// Replacement pods created for vanished ones (scheduler evictions
  /// off dead switches — the fault-tolerance drain path).
  [[nodiscard]] std::size_t pods_replaced() const noexcept {
    return pods_replaced_;
  }

 private:
  void reconcile();
  void create_pods(const Job& job);
  /// (Re)creates the single pod with index `index` for `job` after the
  /// usual per-pod API cost.
  void create_pod_at(const Job& job, int index, int stagger);
  SimDuration jittered(SimDuration d) {
    return static_cast<SimDuration>(
        static_cast<double>(d) * rng_.jitter(api_.params().jitter_amplitude));
  }

  ApiServer& api_;
  Rng rng_;
  sim::EventLoop::TaskId task_ = sim::EventLoop::kInvalidTask;
  /// Bumped by restart_from_api(); callbacks scheduled by an older
  /// incarnation check it and bail.
  std::uint64_t incarnation_ = 0;
  /// Jobs whose pods have been created (or are being created).
  std::unordered_set<Uid> pods_created_;
  /// Jobs with a TTL deletion already issued.
  std::unordered_set<Uid> ttl_deleted_;
  /// Pod indices ever observed alive, per job.  Only an index that has
  /// *existed* and is now missing was deleted out from under us
  /// (eviction) — an index never seen is an initial staggered creation
  /// still landing, which must not be duplicated.
  std::unordered_map<Uid, std::unordered_set<int>> seen_indices_;
  /// (job, pod index) replacements whose staggered create has not been
  /// observed in the store yet — keeps a reconcile cycle that runs
  /// before the create lands from double-replacing the same index.
  std::set<std::pair<Uid, int>> replacements_in_flight_;
  std::size_t pods_replaced_ = 0;
};

}  // namespace shs::k8s
