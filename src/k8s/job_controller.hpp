// job_controller.hpp — creates pods for Jobs, tracks completion, cascades
// deletion, and implements ttlSecondsAfterFinished=0 ("Jobs are configured
// to be deleted immediately after completion", Section IV-B).
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "k8s/api_server.hpp"
#include "util/rng.hpp"

namespace shs::k8s {

inline constexpr const char* kJobFinalizer = "shs.io/job-controller";

class JobController {
 public:
  JobController(ApiServer& api, Rng rng);
  ~JobController();
  JobController(const JobController&) = delete;
  JobController& operator=(const JobController&) = delete;

  /// Starts the periodic reconcile loop.
  void start();
  void stop();

  /// Number of jobs currently tracked as incomplete (diagnostics).
  [[nodiscard]] std::size_t inflight_jobs() const {
    return pods_created_.size();
  }

 private:
  void reconcile();
  void create_pods(const Job& job);
  SimDuration jittered(SimDuration d) {
    return static_cast<SimDuration>(
        static_cast<double>(d) * rng_.jitter(api_.params().jitter_amplitude));
  }

  ApiServer& api_;
  Rng rng_;
  sim::EventLoop::TaskId task_ = sim::EventLoop::kInvalidTask;
  /// Jobs whose pods have been created (or are being created).
  std::unordered_set<Uid> pods_created_;
  /// Jobs with a TTL deletion already issued.
  std::unordered_set<Uid> ttl_deleted_;
};

}  // namespace shs::k8s
