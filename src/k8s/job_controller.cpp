#include "k8s/job_controller.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace shs::k8s {

namespace {
constexpr const char* kTag = "job-ctrl";

/// Per-job pod aggregate, built in one pass over all pods so a reconcile
/// costs O(pods + jobs), not O(pods * jobs) — the spike test (Fig 11)
/// runs 500 jobs at once.
struct PodRollup {
  int active = 0;
  int succeeded = 0;
  int failed = 0;
  SimTime first_running = 0;
  SimTime last_finish = 0;
  bool any_pod = false;
  std::vector<Uid> undeleted;  ///< pods without a deletion timestamp
  /// Names of every live pod object (deleting ones included, so a
  /// replacement is never created while its predecessor still exists).
  std::unordered_set<std::string> names;
};
}  // namespace

JobController::JobController(ApiServer& api, Rng rng)
    : api_(api), rng_(rng) {}

JobController::~JobController() { stop(); }

void JobController::start() {
  if (task_ != sim::EventLoop::kInvalidTask) return;
  task_ = api_.loop().schedule_periodic(api_.params().job_reconcile_delay,
                                        [this] { reconcile(); });
}

void JobController::stop() {
  if (task_ != sim::EventLoop::kInvalidTask) {
    api_.loop().cancel(task_);
    task_ = sim::EventLoop::kInvalidTask;
  }
}

void JobController::restart_from_api() {
  stop();
  ++incarnation_;
  pods_created_.clear();
  ttl_deleted_.clear();
  seen_indices_.clear();
  replacements_in_flight_.clear();
  // Rebuild level-triggered from the store.  The finalizer is written
  // synchronously before the first pod create is scheduled, so it is the
  // durable "creation began" marker; a job without it reconciles as new.
  api_.visit_jobs([&](const Job& job) {
    if (job.meta.deletion_requested) return;  // deleting path handles it
    if (!job.meta.has_finalizer(kJobFinalizer)) return;
    pods_created_.insert(job.meta.uid);
    if (job.status.complete) return;  // TTL delete re-issues idempotently
    // Mark every expected index seen: an index with a live pod is left
    // alone by reconcile's name check; one without (its create died with
    // the old incarnation, or it was evicted) gets recreated.
    const int expected =
        std::max(job.spec.completions, job.spec.parallelism);
    auto& seen = seen_indices_[job.meta.uid];
    for (int i = 0; i < expected; ++i) seen.insert(i);
  });
  start();
  SHS_INFO(kTag) << "job controller restarted; tracking "
                 << pods_created_.size() << " jobs rebuilt from API server";
}

void JobController::reconcile() {
  // Pass 1: aggregate pods by owning job.
  std::unordered_map<Uid, PodRollup> rollup;
  api_.visit_pods([&](const Pod& p) {
    if (p.meta.owner_uid == kNoUid) return;
    PodRollup& r = rollup[p.meta.owner_uid];
    r.any_pod = true;
    r.names.insert(p.meta.name);
    if (!p.meta.deletion_requested) r.undeleted.push_back(p.meta.uid);
    switch (p.status.phase) {
      case PodPhase::kRunning:
        ++r.active;
        break;
      case PodPhase::kSucceeded:
        ++r.succeeded;
        break;
      case PodPhase::kFailed:
        ++r.failed;
        break;
      default:
        ++r.active;  // pending/creating pods count as active work
        break;
    }
    if (p.status.running_vt > 0 &&
        (r.first_running == 0 || p.status.running_vt < r.first_running)) {
      r.first_running = p.status.running_vt;
    }
    if (p.status.finished_vt > r.last_finish) {
      r.last_finish = p.status.finished_vt;
    }
  });

  // Pass 2: collect actions (no store mutation while visiting).
  struct StatusUpdate {
    Uid uid;
    JobStatus status;
  };
  std::vector<StatusUpdate> updates;
  std::vector<Uid> to_create;
  std::vector<std::pair<Uid, int>> to_replace;  ///< (job, pod index)
  std::vector<Uid> to_ttl_delete;
  std::vector<Uid> deleting;

  api_.visit_jobs([&](const Job& job) {
    const Uid uid = job.meta.uid;
    if (job.meta.deletion_requested) {
      if (job.meta.has_finalizer(kJobFinalizer)) deleting.push_back(uid);
      return;
    }
    if (!pods_created_.contains(uid)) {
      to_create.push_back(uid);
      return;
    }
    const auto rit = rollup.find(uid);
    static const PodRollup kEmpty{};
    const PodRollup& r = rit == rollup.end() ? kEmpty : rit->second;

    JobStatus status = job.status;
    status.active = r.active;
    status.succeeded = r.succeeded;
    status.failed = r.failed;
    if (r.first_running > 0 && status.start_vt == 0) {
      status.start_vt = r.first_running;
    }
    if (!status.complete && status.succeeded >= job.spec.completions) {
      status.complete = true;
      status.completion_vt =
          r.last_finish > 0 ? r.last_finish : api_.loop().now();
      SHS_DEBUG(kTag) << "job " << job.meta.name << " complete at "
                      << to_seconds(status.completion_vt) << "s";
    }
    if (status.active != job.status.active ||
        status.succeeded != job.status.succeeded ||
        status.failed != job.status.failed ||
        status.complete != job.status.complete ||
        status.start_vt != job.status.start_vt) {
      updates.push_back({uid, status});
    }
    if (status.complete && job.spec.ttl_after_finished_s >= 0 &&
        !ttl_deleted_.contains(uid)) {
      to_ttl_delete.push_back(uid);
    }

    // Replace vanished pods.  A pod object can only disappear from an
    // incomplete job through an explicit deletion — the scheduler's
    // dead-switch eviction — so every index that has ever been seen
    // alive but is missing now gets a fresh pod (which then schedules
    // onto a healthy switch).
    const int expected = std::max(job.spec.completions,
                                  job.spec.parallelism);
    auto& seen = seen_indices_[uid];
    for (int i = 0; i < expected; ++i) {
      if (r.names.contains(strfmt("%s-%d", job.meta.name.c_str(), i))) {
        seen.insert(i);
        // The replacement (or original) exists; the index may be
        // replaced anew if it vanishes again later.
        replacements_in_flight_.erase({uid, i});
      } else if (!status.complete && seen.contains(i) &&
                 !replacements_in_flight_.contains({uid, i})) {
        to_replace.emplace_back(uid, i);
      }
    }
  });

  // Pass 3: apply.
  for (const auto& u : updates) {
    auto job = api_.get_job(u.uid);
    if (!job.is_ok()) continue;
    Job updated = job.value();
    updated.status = u.status;
    (void)api_.update_job(updated);
  }
  for (const Uid uid : to_create) {
    pods_created_.insert(uid);
    (void)api_.add_job_finalizer(uid, kJobFinalizer);
    const std::uint64_t gen = incarnation_;
    api_.loop().schedule_after(
        jittered(api_.params().job_reconcile_delay), [this, uid, gen] {
          if (gen != incarnation_) return;
          auto j = api_.get_job(uid);
          if (j.is_ok() && !j.value().meta.deletion_requested) {
            create_pods(j.value());
          }
        });
  }
  for (std::size_t i = 0; i < to_replace.size(); ++i) {
    auto job = api_.get_job(to_replace[i].first);
    if (!job.is_ok() || job.value().meta.deletion_requested) continue;
    ++pods_replaced_;
    replacements_in_flight_.insert(to_replace[i]);
    create_pod_at(job.value(), to_replace[i].second,
                  static_cast<int>(i) + 1);
    SHS_DEBUG(kTag) << "replacing evicted pod " << to_replace[i].second
                    << " of job " << job.value().meta.name;
  }
  for (const Uid uid : to_ttl_delete) {
    ttl_deleted_.insert(uid);
    auto job = api_.get_job(uid);
    if (!job.is_ok()) continue;
    const std::uint64_t gen = incarnation_;
    api_.loop().schedule_after(
        from_seconds(job.value().spec.ttl_after_finished_s),
        [this, uid, gen] {
          if (gen != incarnation_) return;
          (void)api_.delete_job(uid);
        });
  }
  for (const Uid uid : deleting) {
    const auto rit = rollup.find(uid);
    if (rit == rollup.end() || !rit->second.any_pod) {
      // No pods left: release the job.
      (void)api_.remove_job_finalizer(uid, kJobFinalizer);
      pods_created_.erase(uid);
      ttl_deleted_.erase(uid);
      seen_indices_.erase(uid);
      replacements_in_flight_.erase(
          replacements_in_flight_.lower_bound({uid, 0}),
          replacements_in_flight_.upper_bound(
              {uid, std::numeric_limits<int>::max()}));
      continue;
    }
    for (const Uid pod_uid : rit->second.undeleted) {
      (void)api_.delete_pod(pod_uid);
    }
  }
}

void JobController::create_pods(const Job& job) {
  const int n = std::max(job.spec.completions, job.spec.parallelism);
  for (int i = 0; i < n; ++i) {
    create_pod_at(job, i, i + 1);
  }
}

void JobController::create_pod_at(const Job& job, int index, int stagger) {
  Pod pod;
  pod.meta.name = strfmt("%s-%d", job.meta.name.c_str(), index);
  pod.meta.ns = job.meta.ns;
  pod.meta.owner_uid = job.meta.uid;
  pod.meta.annotations = job.meta.annotations;  // vni annotation flows down
  pod.spec = job.spec.pod_template;
  // Each pod-object creation costs one API round-trip; stagger them.
  const SimDuration delay =
      jittered(api_.params().pod_create_api_cost) * stagger;
  const Uid owner = job.meta.uid;
  const std::uint64_t gen = incarnation_;
  api_.loop().schedule_after(delay, [this, pod, owner, gen] {
    if (gen != incarnation_) return;  // issued by a crashed incarnation
    // The job may have been deleted while this creation was in flight.
    auto j = api_.get_job(owner);
    if (!j.is_ok() || j.value().meta.deletion_requested) return;
    auto r = api_.create_pod(pod);
    if (!r.is_ok()) {
      SHS_WARN(kTag) << "pod create failed: " << r.status();
    }
  });
}

}  // namespace shs::k8s
