// objects.hpp — the Kubernetes object model the reproduction needs.
//
// Typed objects instead of untyped JSON: Pods, Jobs, and the two CRDs the
// paper introduces (Vni, VniClaim).  Semantics preserved from Kubernetes:
//   * metadata with namespace, annotations, finalizers, ownerReferences;
//   * two-phase deletion (deletionTimestamp + finalizers);
//   * Jobs create Pods through a controller, never directly;
//   * CRD instances are plain objects the VNI controller manages.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hsn/types.hpp"
#include "linuxsim/kernel.hpp"
#include "util/units.hpp"

namespace shs::k8s {

using Uid = std::uint64_t;
constexpr Uid kNoUid = 0;

/// The annotation key the paper uses to request Slingshot connectivity:
/// `vni: "true"` (Per-Resource model) or `vni: "<claim-name>"` (Claims).
inline constexpr const char* kVniAnnotation = "vni";

/// Common object metadata.
struct ObjectMeta {
  std::string name;
  std::string ns = "default";  ///< Kubernetes namespace
  Uid uid = kNoUid;
  std::uint64_t resource_version = 0;
  std::map<std::string, std::string> annotations;
  std::map<std::string, std::string> labels;
  std::vector<std::string> finalizers;
  Uid owner_uid = kNoUid;  ///< single ownerReference is enough here
  SimTime creation_vt = 0;
  bool deletion_requested = false;  ///< deletionTimestamp set
  SimTime deletion_vt = 0;

  [[nodiscard]] bool has_annotation(const std::string& key) const {
    return annotations.contains(key);
  }
  [[nodiscard]] std::string annotation(const std::string& key) const {
    const auto it = annotations.find(key);
    return it == annotations.end() ? std::string{} : it->second;
  }
  [[nodiscard]] bool has_finalizer(const std::string& f) const {
    for (const auto& x : finalizers) {
      if (x == f) return true;
    }
    return false;
  }
};

// ---------------------------------------------------------------------------
// Pod

enum class PodPhase : std::uint8_t {
  kPending = 0,   ///< accepted, not yet bound to a node
  kScheduled,     ///< bound; kubelet has not started it yet
  kCreating,      ///< sandbox / CNI / image pull in flight
  kRunning,
  kSucceeded,
  kFailed,
};

constexpr const char* pod_phase_name(PodPhase p) noexcept {
  switch (p) {
    case PodPhase::kPending: return "Pending";
    case PodPhase::kScheduled: return "Scheduled";
    case PodPhase::kCreating: return "Creating";
    case PodPhase::kRunning: return "Running";
    case PodPhase::kSucceeded: return "Succeeded";
    case PodPhase::kFailed: return "Failed";
  }
  return "Unknown";
}

struct PodSpec {
  std::string image = "alpine";
  /// Virtual runtime of the container's command ("echo" ≈ instant; the
  /// pod lifecycle overhead dominates, as in the paper's admission test).
  SimDuration run_duration = from_millis(50);
  /// terminationGracePeriodSeconds.  The CXI CNI plugin rejects pods
  /// requesting a VNI with grace > 30 s (Section III-C1).
  int termination_grace_s = 30;
  /// Topology-spread: pods sharing a non-empty key are spread across
  /// distinct nodes (how the paper places the two OSU ranks).
  std::string spread_key;
};

struct PodStatus {
  PodPhase phase = PodPhase::kPending;
  std::string node;  ///< bound node name, empty until scheduled
  linuxsim::NetNsInode netns_inode = 0;
  hsn::Vni vni = hsn::kInvalidVni;  ///< granted by the CXI CNI plugin
  std::string message;
  SimTime scheduled_vt = 0;
  SimTime running_vt = 0;
  SimTime finished_vt = 0;
};

struct Pod {
  ObjectMeta meta;
  PodSpec spec;
  PodStatus status;
};

// ---------------------------------------------------------------------------
// Job

struct JobSpec {
  int completions = 1;
  int parallelism = 1;
  PodSpec pod_template;
  /// ttlSecondsAfterFinished.  0 = delete immediately on completion (the
  /// admission benches use this, per Section IV-B).
  int ttl_after_finished_s = -1;  ///< -1 = never auto-delete
};

struct JobStatus {
  int active = 0;
  int succeeded = 0;
  int failed = 0;
  bool complete = false;
  SimTime start_vt = 0;       ///< first pod Running — "actual job start"
  SimTime completion_vt = 0;
};

struct Job {
  ObjectMeta meta;
  JobSpec spec;
  JobStatus status;
};

// ---------------------------------------------------------------------------
// CRDs: Vni and VniClaim (Section III-C)

/// One VNI CRD instance represents one allocated Virtual Network, or — in
/// the Claims model — a "virtual" (non-owning) instance binding a job to a
/// claim's VNI.
struct VniObject {
  ObjectMeta meta;
  hsn::Vni vni = hsn::kInvalidVni;
  /// Kind/name of the resource this instance decorates (Job or VniClaim).
  std::string bound_kind;
  std::string bound_name;
  Uid bound_uid = kNoUid;
  /// True for non-owning instances handed to claim-redeeming jobs; their
  /// deletion removes the job as a user of the claim's VNI instead of
  /// releasing the VNI itself.
  bool virtual_instance = false;
  std::string claim_name;  ///< set when redeemed through a claim
};

struct VniClaimSpec {
  /// The user-chosen claim name jobs reference via `vni: <name>`.
  std::string claim_name;
};

struct VniClaimStatus {
  hsn::Vni vni = hsn::kInvalidVni;  ///< acquired VNI, once bound
  int active_users = 0;             ///< jobs currently redeeming the claim
};

struct VniClaim {
  ObjectMeta meta;
  VniClaimSpec spec;
  VniClaimStatus status;
};

// ---------------------------------------------------------------------------
// Watch events

enum class WatchEventType : std::uint8_t { kAdded, kModified, kDeleted };

template <typename T>
struct WatchEvent {
  WatchEventType type = WatchEventType::kAdded;
  T object;  ///< snapshot at event time
};

}  // namespace shs::k8s
