// kubelet.hpp — per-node agent driving pod lifecycles through the CRI.
//
// The admission behaviour of Figs 9-12 comes from here: pod create and
// teardown operations serialize through a small slot pool per node
// (`kubelet_max_parallel_ops`), each stage paying its modeled cost.  When
// submission outpaces the drain rate, the queue — and with it the paper's
// "job admission delay" — grows.
//
// Grace-period enforcement also lives here: a deleted pod gets at most
// min(spec.termination_grace_s, 30) seconds before the container is
// stopped, the bound the CXI CNI plugin relies on for the 30 s VNI
// quarantine (Section III-C1).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "k8s/api_server.hpp"
#include "k8s/pod_runtime.hpp"
#include "util/rng.hpp"

namespace shs::k8s {

/// Hard ceiling on termination grace for VNI-annotated pods (seconds).
inline constexpr int kMaxVniGraceSeconds = 30;

class Kubelet {
 public:
  Kubelet(ApiServer& api, std::string node, PodRuntime& runtime, Rng rng);
  ~Kubelet();
  Kubelet(const Kubelet&) = delete;
  Kubelet& operator=(const Kubelet&) = delete;

  void start();
  void stop();

  [[nodiscard]] const std::string& node() const noexcept { return node_; }
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return create_queue_.size() + teardown_queue_.size();
  }

 private:
  void sync();
  void pump();
  // Create pipeline, one method per stage; the slot stays held throughout.
  void run_create(Uid uid);
  void stage_attach(Uid uid);
  void stage_image(Uid uid);
  void stage_start(Uid uid);
  void mark_running(Uid uid);
  void run_teardown(Uid uid);
  /// Stage helper: schedules `next` after `cost` (jittered), keeping the
  /// slot held.
  void stage(SimDuration cost, std::function<void()> next);
  void finish_create_op(Uid uid);
  void finish_teardown_op(Uid uid);
  void fail_pod(Pod pod, const std::string& why);
  SimDuration jittered(SimDuration d) {
    return static_cast<SimDuration>(
        static_cast<double>(d) * rng_.jitter(api_.params().jitter_amplitude));
  }

  ApiServer& api_;
  std::string node_;
  PodRuntime& runtime_;
  Rng rng_;
  sim::EventLoop::TaskId task_ = sim::EventLoop::kInvalidTask;

  /// Separate FIFO pools, as the real kubelet runs pod creation and pod
  /// killing on distinct worker sets.  Creation workers bound admission
  /// throughput (the admission-delay curve of Fig 10); teardown workers
  /// bound removal throughput (the running-job accumulation of Figs 9
  /// and 11).
  std::deque<Uid> create_queue_;
  std::deque<Uid> teardown_queue_;
  std::unordered_set<Uid> queued_or_active_;  ///< dedup guard
  std::unordered_set<Uid> torn_down_;         ///< teardown completed
  int create_active_ = 0;
  int teardown_active_ = 0;
  int cni_attempts_limit_ = 100;  ///< retries while waiting for the VNI CRD
  std::unordered_map<Uid, int> cni_attempts_;
};

}  // namespace shs::k8s
