#include "k8s/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "util/log.hpp"

namespace shs::k8s {

namespace {
constexpr const char* kTag = "scheduler";

// Score weights: a spread-group collision on a node dominates everything;
// leaving the group's switch costs less than a node collision but more
// than any realistic load imbalance.
constexpr int kNodeCollisionWeight = 1'000'000;
constexpr int kCrossSwitchWeight = 10'000;

// Pseudo-switch for nodes absent from the node->switch map.  Distinct
// from every real switch id so a partially-populated map cannot alias
// unmapped nodes with the real switch 0 (they only alias each other).
constexpr std::uint32_t kUnknownSwitch = 0xffffffffu;
}  // namespace

Scheduler::Scheduler(ApiServer& api, std::vector<std::string> nodes, Rng rng,
                     std::unordered_map<std::string, std::uint32_t>
                         node_switch)
    : api_(api), nodes_(std::move(nodes)), rng_(rng),
      node_switch_(std::move(node_switch)) {
  node_switch_ids_.reserve(nodes_.size());
  for (const std::string& n : nodes_) {
    node_switch_ids_.push_back(switch_of(n));
  }
}

Scheduler::~Scheduler() { stop(); }

void Scheduler::start() {
  if (task_ != sim::EventLoop::kInvalidTask) return;
  task_ = api_.loop().schedule_periodic(api_.params().scheduler_period,
                                        [this] { cycle(); });
}

void Scheduler::stop() {
  if (task_ != sim::EventLoop::kInvalidTask) {
    api_.loop().cancel(task_);
    task_ = sim::EventLoop::kInvalidTask;
  }
}

void Scheduler::restart_from_api() {
  stop();
  ++incarnation_;
  in_flight_.clear();
  rr_ = 0;
  start();
  SHS_INFO(kTag) << "scheduler restarted; rebuilding from API server";
}

std::uint32_t Scheduler::switch_of(const std::string& node) const {
  const auto it = node_switch_.find(node);
  return it == node_switch_.end() ? kUnknownSwitch : it->second;
}

bool Scheduler::switch_usable(std::uint32_t switch_id) const {
  // The unknown pseudo-switch has no fabric health to consult.
  return !switch_health_probe_ || switch_id == kUnknownSwitch ||
         switch_health_probe_(switch_id);
}

void Scheduler::drain(const std::vector<Uid>& uids) {
  for (const Uid uid : uids) {
    auto r = api_.get_pod(uid);
    if (!r.is_ok() || r.value().meta.deletion_requested) continue;
    Pod pod = r.value();
    // Re-check the phase at apply time: the kubelet may have started
    // creating the pod since the scan classified it.
    if (pod.status.phase == PodPhase::kScheduled) {
      // Not started yet: unbind back to Pending so the next cycle can
      // place it on a healthy switch (the kubelet's create pipeline
      // bails on node mismatch).
      pod.status.node.clear();
      pod.status.phase = PodPhase::kPending;
      pod.status.scheduled_vt = 0;
      (void)api_.update_pod(pod);
      ++telemetry_.drained_rebound;
      SHS_DEBUG(kTag) << "drained pod " << pod.meta.name
                      << " off its dead switch (rebind)";
    } else if (pod.status.phase == PodPhase::kCreating ||
               pod.status.phase == PodPhase::kRunning) {
      // Started: evict.  The kubelet tears it down through the normal
      // two-phase deletion; the job controller replaces the vanished pod
      // and the replacement schedules onto a healthy switch.
      (void)api_.delete_pod(uid);
      ++telemetry_.drained_evicted;
      SHS_DEBUG(kTag) << "evicted pod " << pod.meta.name
                      << " from its dead switch";
    }
  }
}

void Scheduler::cycle() {
  if (nodes_.empty()) return;

  // One pass over pods: collect pending work and per-node load counts
  // (bound pods per node, plus per-(spread_key, node) membership and
  // the set of switches each spread group already occupies).
  struct PendingPod {
    Uid uid = kNoUid;
    std::string spread_key;
  };
  std::vector<PendingPod> pending;
  std::vector<Uid> to_drain;
  std::unordered_map<std::string, int> bound;
  std::unordered_map<std::string, int> spread;  // key: spread_key + '\1' + node
  std::unordered_map<std::string, std::unordered_set<std::uint32_t>>
      group_switches;
  api_.visit_pods([&](const Pod& p) {
    if (p.status.node.empty()) {
      if (p.status.phase == PodPhase::kPending &&
          !p.meta.deletion_requested && !in_flight_.contains(p.meta.uid)) {
        pending.push_back({p.meta.uid, p.spec.spread_key});
      }
      return;
    }
    // A bound pod whose home switch died must be drained: its NIC lost
    // fabric connectivity, so keeping it placed there serves nobody.
    if (!p.meta.deletion_requested &&
        (p.status.phase == PodPhase::kScheduled ||
         p.status.phase == PodPhase::kCreating ||
         p.status.phase == PodPhase::kRunning) &&
        !switch_usable(switch_of(p.status.node))) {
      to_drain.push_back(p.meta.uid);
      return;  // do not count it toward load/spread on the dead node
    }
    ++bound[p.status.node];
    if (!p.spec.spread_key.empty()) {
      ++spread[p.spec.spread_key + '\1' + p.status.node];
      group_switches[p.spec.spread_key].insert(switch_of(p.status.node));
    }
  });
  // Decisions from earlier cycles whose deferred bind write has not
  // landed yet still look unbound above — fold them in, or a spread
  // group bound across several cycles would splinter across switches.
  for (const auto& [uid, decided] : in_flight_) {
    ++bound[decided.node];
    if (!decided.spread_key.empty()) {
      ++spread[decided.spread_key + '\1' + decided.node];
      group_switches[decided.spread_key].insert(switch_of(decided.node));
    }
  }

  const int quota = api_.params().binds_per_cycle;
  int issued = 0;
  for (const PendingPod& p : pending) {
    if (issued >= quota) break;
    // Switches the pod's spread group already occupies: a bind leaves
    // this set when it is non-null and lacks the candidate's switch.
    // Looked up once per pod (the set only mutates after the node loop),
    // and used for both the scoring penalty and the telemetry so the two
    // can never drift apart.
    const std::unordered_set<std::uint32_t>* group_set = nullptr;
    if (!p.spread_key.empty()) {
      const auto it = group_switches.find(p.spread_key);
      if (it != group_switches.end()) group_set = &it->second;
    }
    // Topology spread dominates; staying on the group's switch comes
    // next; total load breaks ties; round-robin breaks remaining ties.
    const std::string* best = nullptr;
    std::uint32_t best_switch = 0;
    bool best_crosses = false;
    int best_score = std::numeric_limits<int>::max();
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const std::size_t idx = (rr_ + i) % nodes_.size();
      if (!switch_usable(node_switch_ids_[idx])) {
        continue;  // never place new work behind an unhealthy switch
      }
      const std::string& n = nodes_[idx];
      int score = bound[n];
      bool crosses = false;
      if (!p.spread_key.empty()) {
        score += spread[p.spread_key + '\1' + n] * kNodeCollisionWeight;
        crosses = group_set && !group_set->contains(node_switch_ids_[idx]);
        if (crosses) score += kCrossSwitchWeight;
      }
      if (score < best_score) {
        best_score = score;
        best = &n;
        best_switch = node_switch_ids_[idx];
        best_crosses = crosses;
      }
    }
    rr_ = (rr_ + 1) % nodes_.size();
    if (best == nullptr) continue;
    const std::string node = *best;
    // Account this decision so later binds in the same cycle spread too.
    ++bound[node];
    if (!p.spread_key.empty()) {
      if (best_crosses) {
        ++telemetry_.cross_switch_binds;
        // A group split across switches puts traffic on the uplinks:
        // sample how congested they are right now, so operators can
        // correlate placement decisions with fabric pressure.
        if (congestion_probe_) {
          const SimDuration lag = congestion_probe_();
          ++telemetry_.congestion_samples;
          telemetry_.total_cross_switch_lag += lag;
          telemetry_.max_cross_switch_lag =
              std::max(telemetry_.max_cross_switch_lag, lag);
        }
      }
      ++spread[p.spread_key + '\1' + node];
      group_switches[p.spread_key].insert(best_switch);
    }

    in_flight_.emplace(p.uid, InFlightBind{node, p.spread_key});
    ++issued;
    ++telemetry_.binds;
    const Uid uid = p.uid;
    // Binding costs one scheduling pass + API write; binds within one
    // cycle serialize through the scheduler's single queue.
    const SimDuration cost = static_cast<SimDuration>(
        static_cast<double>(api_.params().bind_cost) * issued *
        rng_.jitter(api_.params().jitter_amplitude));
    const std::uint64_t gen = incarnation_;
    api_.loop().schedule_after(cost, [this, uid, node, gen] {
      if (gen != incarnation_) return;  // issued by a crashed incarnation
      in_flight_.erase(uid);
      auto r = api_.get_pod(uid);
      if (!r.is_ok() || r.value().meta.deletion_requested) return;
      Pod pod = r.value();
      pod.status.node = node;
      pod.status.phase = PodPhase::kScheduled;
      pod.status.scheduled_vt = api_.loop().now();
      (void)api_.update_pod(pod);
      // The kubelet finalizer guarantees teardown runs before the object
      // disappears.
      (void)api_.add_pod_finalizer(uid, kKubeletFinalizer);
      SHS_TRACE(kTag) << "bound pod " << pod.meta.name << " -> " << node;
    });
  }

  drain(to_drain);
}

}  // namespace shs::k8s
