#include "k8s/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "util/log.hpp"

namespace shs::k8s {

namespace {
constexpr const char* kTag = "scheduler";
}

Scheduler::Scheduler(ApiServer& api, std::vector<std::string> nodes, Rng rng)
    : api_(api), nodes_(std::move(nodes)), rng_(rng) {}

Scheduler::~Scheduler() { stop(); }

void Scheduler::start() {
  if (task_ != sim::EventLoop::kInvalidTask) return;
  task_ = api_.loop().schedule_periodic(api_.params().scheduler_period,
                                        [this] { cycle(); });
}

void Scheduler::stop() {
  if (task_ != sim::EventLoop::kInvalidTask) {
    api_.loop().cancel(task_);
    task_ = sim::EventLoop::kInvalidTask;
  }
}

void Scheduler::cycle() {
  if (nodes_.empty()) return;

  // One pass over pods: collect pending work and per-node load counts
  // (bound pods per node, plus per (spread_key, node) counts).
  struct PendingPod {
    Uid uid = kNoUid;
    std::string spread_key;
  };
  std::vector<PendingPod> pending;
  std::unordered_map<std::string, int> bound;
  std::unordered_map<std::string, int> spread;  // key: spread_key + '\1' + node
  api_.visit_pods([&](const Pod& p) {
    if (p.status.node.empty()) {
      if (p.status.phase == PodPhase::kPending &&
          !p.meta.deletion_requested && !in_flight_.contains(p.meta.uid)) {
        pending.push_back({p.meta.uid, p.spec.spread_key});
      }
      return;
    }
    ++bound[p.status.node];
    if (!p.spec.spread_key.empty()) {
      ++spread[p.spec.spread_key + '\1' + p.status.node];
    }
  });

  const int quota = api_.params().binds_per_cycle;
  int issued = 0;
  for (const PendingPod& p : pending) {
    if (issued >= quota) break;
    // Topology spread dominates; total load breaks ties; round-robin
    // breaks remaining ties.
    const std::string* best = nullptr;
    int best_score = std::numeric_limits<int>::max();
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const std::string& n = nodes_[(rr_ + i) % nodes_.size()];
      int score = bound[n];
      if (!p.spread_key.empty()) {
        score += spread[p.spread_key + '\1' + n] * 1'000'000;
      }
      if (score < best_score) {
        best_score = score;
        best = &n;
      }
    }
    rr_ = (rr_ + 1) % nodes_.size();
    if (best == nullptr) continue;
    const std::string node = *best;
    // Account this decision so later binds in the same cycle spread too.
    ++bound[node];
    if (!p.spread_key.empty()) ++spread[p.spread_key + '\1' + node];

    in_flight_.insert(p.uid);
    ++issued;
    ++binds_;
    const Uid uid = p.uid;
    // Binding costs one scheduling pass + API write; binds within one
    // cycle serialize through the scheduler's single queue.
    const SimDuration cost = static_cast<SimDuration>(
        static_cast<double>(api_.params().bind_cost) * issued *
        rng_.jitter(api_.params().jitter_amplitude));
    api_.loop().schedule_after(cost, [this, uid, node] {
      in_flight_.erase(uid);
      auto r = api_.get_pod(uid);
      if (!r.is_ok() || r.value().meta.deletion_requested) return;
      Pod pod = r.value();
      pod.status.node = node;
      pod.status.phase = PodPhase::kScheduled;
      pod.status.scheduled_vt = api_.loop().now();
      (void)api_.update_pod(pod);
      // The kubelet finalizer guarantees teardown runs before the object
      // disappears.
      (void)api_.add_pod_finalizer(uid, kKubeletFinalizer);
      SHS_TRACE(kTag) << "bound pod " << pod.meta.name << " -> " << node;
    });
  }
}

}  // namespace shs::k8s
