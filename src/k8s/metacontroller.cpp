#include "k8s/metacontroller.hpp"

#include "util/log.hpp"

namespace shs::k8s {

namespace {
constexpr const char* kTag = "metactrl";
}

DecoratorController::DecoratorController(ApiServer& api, Hooks hooks, Rng rng)
    : api_(api), hooks_(std::move(hooks)), rng_(rng) {}

DecoratorController::~DecoratorController() { stop(); }

void DecoratorController::start() {
  if (task_ != sim::EventLoop::kInvalidTask) return;
  task_ = api_.loop().schedule_periodic(api_.params().job_reconcile_delay,
                                        [this] { reconcile(); });
}

void DecoratorController::stop() {
  if (task_ != sim::EventLoop::kInvalidTask) {
    api_.loop().cancel(task_);
    task_ = sim::EventLoop::kInvalidTask;
  }
}

void DecoratorController::reconcile() {
  // Light one-pass scans; full objects are only fetched inside the
  // scheduled webhook callbacks (O(jobs) per pass, small constant).
  struct Flags {
    Uid uid;
    bool deleting;
    bool has_finalizer;
  };
  std::vector<Flags> jobs;
  api_.visit_jobs([&](const Job& j) {
    if (!j.meta.has_annotation(kVniAnnotation)) return;
    jobs.push_back({j.meta.uid, j.meta.deletion_requested,
                    j.meta.has_finalizer(kMetaFinalizer)});
  });
  for (const Flags& f : jobs) reconcile_job(f.uid, f.deleting,
                                            f.has_finalizer);

  std::vector<Flags> claims;
  api_.visit_vni_claims([&](const VniClaim& c) {
    claims.push_back({c.meta.uid, c.meta.deletion_requested,
                      c.meta.has_finalizer(kMetaFinalizer)});
  });
  for (const Flags& f : claims) reconcile_claim(f.uid, f.deleting,
                                                f.has_finalizer);
}

void DecoratorController::apply_children(
    Uid parent_uid, const std::vector<VniObject>& desired) {
  // Apply semantics: create children that do not exist yet (matched by
  // name); existing ones are left untouched (our children are immutable).
  const auto existing = api_.list_vni_objects([&](const VniObject& v) {
    return v.bound_uid == parent_uid;
  });
  for (const VniObject& want : desired) {
    bool found = false;
    for (const VniObject& have : existing) {
      if (have.meta.name == want.meta.name) {
        found = true;
        break;
      }
    }
    if (!found) {
      auto r = api_.create_vni_object(want);
      if (!r.is_ok() && r.code() != Code::kAlreadyExists) {
        SHS_WARN(kTag) << "child create failed: " << r.status();
      }
    }
  }
}

void DecoratorController::reconcile_job(Uid uid, bool deleting,
                                        bool has_finalizer) {
  if (deleting) {
    if (!has_finalizer || finalize_inflight_.contains(uid)) {
      return;
    }
    finalize_inflight_.insert(uid);
    ++finalize_calls_;
    api_.loop().schedule_after(jittered(api_.params().webhook_cost),
                               [this, uid] {
      finalize_inflight_.erase(uid);
      auto j = api_.get_job(uid);
      if (!j.is_ok()) return;
      auto fin = hooks_.finalize_job ? hooks_.finalize_job(j.value())
                                     : Result<bool>(true);
      if (!fin.is_ok() || !fin.value()) return;  // retried next pass
      // Cleanup complete: remove child VNI CRD instances, release the
      // decorator finalizer so the job can disappear.
      for (const VniObject& child : api_.list_vni_objects(
               [&](const VniObject& v) { return v.bound_uid == uid; })) {
        (void)api_.delete_vni_object(child.meta.uid);
      }
      (void)api_.remove_job_finalizer(uid, kMetaFinalizer);
      synced_.erase(uid);
    });
    return;
  }

  // Live object: decorate.
  if (!has_finalizer) {
    (void)api_.add_job_finalizer(uid, kMetaFinalizer);
  }
  if (synced_.contains(uid) || sync_inflight_.contains(uid)) return;
  sync_inflight_.insert(uid);
  ++sync_calls_;
  api_.loop().schedule_after(jittered(api_.params().webhook_cost),
                             [this, uid] {
    sync_inflight_.erase(uid);
    auto j = api_.get_job(uid);
    if (!j.is_ok() || j.value().meta.deletion_requested) return;
    auto children = hooks_.sync_job
                        ? hooks_.sync_job(j.value())
                        : Result<std::vector<VniObject>>(
                              std::vector<VniObject>{});
    if (!children.is_ok()) {
      // e.g. the referenced VniClaim does not exist: the job's pods will
      // keep failing CNI ADD and the job fails to launch (Section III-C1).
      SHS_DEBUG(kTag) << "sync_job " << j.value().meta.name << ": "
                      << children.status();
      return;  // retried on the next reconcile pass
    }
    apply_children(uid, children.value());
    synced_.insert(uid);
  });
}

void DecoratorController::reconcile_claim(Uid uid, bool deleting,
                                          bool has_finalizer) {
  if (deleting) {
    if (!has_finalizer || finalize_inflight_.contains(uid)) {
      return;
    }
    finalize_inflight_.insert(uid);
    ++finalize_calls_;
    api_.loop().schedule_after(jittered(api_.params().webhook_cost),
                               [this, uid] {
      finalize_inflight_.erase(uid);
      auto c = api_.get_vni_claim(uid);
      if (!c.is_ok()) return;
      auto fin = hooks_.finalize_claim ? hooks_.finalize_claim(c.value())
                                       : Result<bool>(true);
      if (!fin.is_ok() || !fin.value()) return;  // users remain: stall
      for (const VniObject& child : api_.list_vni_objects(
               [&](const VniObject& v) { return v.bound_uid == uid; })) {
        (void)api_.delete_vni_object(child.meta.uid);
      }
      (void)api_.remove_claim_finalizer(uid, kMetaFinalizer);
      synced_.erase(uid);
    });
    return;
  }

  if (!has_finalizer) {
    (void)api_.add_claim_finalizer(uid, kMetaFinalizer);
  }
  if (synced_.contains(uid) || sync_inflight_.contains(uid)) return;
  sync_inflight_.insert(uid);
  ++sync_calls_;
  api_.loop().schedule_after(jittered(api_.params().webhook_cost),
                             [this, uid] {
    sync_inflight_.erase(uid);
    auto c = api_.get_vni_claim(uid);
    if (!c.is_ok() || c.value().meta.deletion_requested) return;
    auto children = hooks_.sync_claim
                        ? hooks_.sync_claim(c.value())
                        : Result<std::vector<VniObject>>(
                              std::vector<VniObject>{});
    if (!children.is_ok()) {
      SHS_DEBUG(kTag) << "sync_claim " << c.value().meta.name << ": "
                      << children.status();
      return;
    }
    apply_children(uid, children.value());
    synced_.insert(uid);
  });
}

}  // namespace shs::k8s
