// domain.hpp — libfabric-style domain: the per-process access point to
// one NIC.
//
// The paper's libfabric patch threads the new authentication through the
// provider: a domain is opened *by a process*, and endpoint creation
// authenticates that process (UID/GID/netns, depending on driver mode)
// against the node's CXI services.  Here the process binding is explicit:
// `Domain` carries the pid and hands it to libcxi on every allocation.
#pragma once

#include <memory>
#include <optional>

#include "cxi/driver.hpp"
#include "cxi/libcxi.hpp"
#include "ofi/endpoint.hpp"

namespace shs::ofi {

/// Access point to the node's CXI provider for one process.
class Domain {
 public:
  Domain(cxi::CxiDriver& driver, hsn::CassiniNic& nic,
         std::shared_ptr<hsn::TimingModel> timing, linuxsim::Pid pid)
      : driver_(&driver), nic_(&nic), timing_(std::move(timing)), pid_(pid) {}

  [[nodiscard]] linuxsim::Pid pid() const noexcept { return pid_; }
  [[nodiscard]] hsn::CassiniNic& nic() noexcept { return *nic_; }

  /// Opens an RDM endpoint on `vni`.  This is the authenticated step: the
  /// CXI driver checks the calling process against its services before
  /// any hardware resources are handed out.
  Result<std::unique_ptr<Endpoint>> open_endpoint(
      hsn::Vni vni, hsn::TrafficClass tc = hsn::TrafficClass::kBestEffort,
      std::optional<cxi::SvcId> svc = std::nullopt) {
    cxi::LibCxi lib(*driver_, pid_);
    auto hw = lib.alloc_endpoint(vni, tc, svc);
    if (!hw.is_ok()) {
      return Result<std::unique_ptr<Endpoint>>(hw.status());
    }
    return std::make_unique<Endpoint>(lib, *nic_, hw.value(), timing_);
  }

 private:
  cxi::CxiDriver* driver_;
  hsn::CassiniNic* nic_;
  std::shared_ptr<hsn::TimingModel> timing_;
  linuxsim::Pid pid_;
};

}  // namespace shs::ofi
