// endpoint.hpp — libfabric-style endpoint over a CXI hardware endpoint.
//
// Provides tagged two-sided messaging with posted-receive matching and an
// unexpected-message queue (the semantics MPI needs), plus one-sided RMA,
// plus a software completion queue.  Blocking `*_sync` convenience calls
// wrap the post/progress/poll cycle for application code.
//
// Authentication already happened: constructing an Endpoint requires a
// CxiEndpoint, which only the CXI driver hands out after the member check.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "cxi/libcxi.hpp"
#include "hsn/cassini_nic.hpp"
#include "ofi/types.hpp"
#include "util/status.hpp"

namespace shs::ofi {

/// Result of a completed receive.
struct RecvResult {
  std::uint64_t size = 0;
  std::uint64_t tag = 0;
  FiAddr src{};
  SimTime vt = 0;
};

/// A connected-less (RDM-style) endpoint.  Thread-compatible: one owner
/// thread per endpoint, which is how the mini-MPI ranks use it.
class Endpoint {
 public:
  /// Takes ownership of `hw` (freed through `lib` on destruction).
  Endpoint(cxi::LibCxi lib, hsn::CassiniNic& nic, cxi::CxiEndpoint hw,
           std::shared_ptr<hsn::TimingModel> timing);
  ~Endpoint();
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  /// This endpoint's fabric address, to hand to peers out-of-band.
  [[nodiscard]] FiAddr addr() const noexcept {
    return FiAddr{hw_.nic, hw_.ep};
  }
  [[nodiscard]] hsn::Vni vni() const noexcept { return hw_.vni; }
  [[nodiscard]] hsn::TrafficClass traffic_class() const noexcept {
    return hw_.tc;
  }

  // -- Tagged two-sided messaging.

  /// Sends `size` bytes to `dst` under `tag`.  `payload` may be empty for
  /// size-only (timing) transfers.  Local completion: the returned time is
  /// the caller's clock after the NIC accepted the message.  If `context`
  /// is nonzero a kSend completion is also queued on the CQ.
  Result<SimTime> tsend(FiAddr dst, std::uint64_t tag,
                        std::span<const std::byte> payload,
                        std::uint64_t size, SimTime vt,
                        std::uint64_t context = 0);

  /// Posts a receive buffer for `tag` (or kTagAny).  Completion arrives on
  /// the CQ with `context`.
  void post_trecv(std::uint64_t tag, std::span<std::byte> buffer,
                  std::uint64_t context);

  /// Blocking tagged receive: matches the unexpected queue first, then
  /// waits on the NIC RX queue.  Returns the receive metadata.
  Result<RecvResult> trecv_sync(std::uint64_t tag,
                                std::span<std::byte> buffer,
                                int real_timeout_ms = 10'000);

  // -- Progress and completions.

  /// Drains arrived packets, matching posted receives (non-blocking).
  /// Returns the number of packets processed.
  std::size_t progress();

  /// Non-blocking CQ read.
  std::optional<Completion> cq_read();

  /// Blocking CQ read: progresses until a completion or timeout.
  Result<Completion> cq_sread(int real_timeout_ms = 10'000);

  // -- One-sided RMA.

  /// Registers `region` for remote access; returns the rkey to share.
  Result<hsn::RKey> mr_reg(std::span<std::byte> region);
  Status mr_close(hsn::RKey key);

  /// Posts a one-sided write and returns its op id immediately; the
  /// completion arrives later on the CQ as a Completion{kRmaWrite,
  /// op_id, vt} once the target's ACK lands (kError with a terminal
  /// status on denial or delivery failure).  An error return means the
  /// NIC rejected the post itself.
  Result<std::uint64_t> post_rma_write(hsn::NicAddr dst, hsn::RKey rkey,
                                       std::uint64_t offset,
                                       std::span<const std::byte> payload,
                                       std::uint64_t size, SimTime vt);

  /// Posts a one-sided read; the data lands in `out` (which must stay
  /// valid until the completion) when the response arrives, and the CQ
  /// raises Completion{kRmaRead, op_id, vt}.
  Result<std::uint64_t> post_rma_read(hsn::NicAddr dst, hsn::RKey rkey,
                                      std::uint64_t offset,
                                      std::uint64_t size,
                                      std::span<std::byte> out, SimTime vt);

  /// Blocking RDMA write: returns the caller's clock at remote-ACK time.
  /// Thin shim over post_rma_write + CQ wait.
  Result<SimTime> rma_write_sync(hsn::NicAddr dst, hsn::RKey rkey,
                                 std::uint64_t offset,
                                 std::span<const std::byte> payload,
                                 std::uint64_t size, SimTime vt,
                                 int real_timeout_ms = 10'000);

  /// Blocking RDMA read: fills `out` (resized to `size`) and returns the
  /// caller's clock at data-arrival time.  Thin shim over post_rma_read
  /// + CQ wait.
  Result<SimTime> rma_read_sync(hsn::NicAddr dst, hsn::RKey rkey,
                                std::uint64_t offset, std::uint64_t size,
                                std::vector<std::byte>& out, SimTime vt,
                                int real_timeout_ms = 10'000);

  /// Number of messages sitting in the unexpected queue (diagnostics).
  [[nodiscard]] std::size_t unexpected_depth() const noexcept {
    return unexpected_.size();
  }

  /// Reliable-delivery accounting of the underlying NIC (all zeros when
  /// reliability is off).  With reliability on, a tsend/rma_* whose
  /// retry budget is exhausted surfaces as Code::kUnavailable (from the
  /// post) or a kError completion — never a hang; these counters are
  /// the observability side of that contract.
  [[nodiscard]] hsn::ReliabilityCounters nic_reliability() const {
    return nic_.reliability_counters();
  }
  /// Underlying NIC drop/queue accounting (rx_overflow backpressure etc).
  [[nodiscard]] hsn::NicCounters nic_counters() const {
    return nic_.counters();
  }

 private:
  struct PostedRecv {
    std::uint64_t tag = 0;
    std::span<std::byte> buffer;
    std::uint64_t context = 0;
  };

  /// Matches `p` against posted receives; true if consumed.
  bool match_posted(hsn::Packet& p);
  void deliver(const PostedRecv& r, hsn::Packet& p);
  /// Translates a NIC event into a CQ entry (read payloads land in the
  /// span registered at post time).
  void cq_push_from(hsn::Event&& e);
  /// Sync-shim tail: progresses the event queue until the completion for
  /// `op` arrives, then returns its vt (or its terminal error).
  Result<SimTime> await_rma(std::uint64_t op, int real_timeout_ms);
  static bool tag_matches(std::uint64_t posted, std::uint64_t got) noexcept {
    return posted == kTagAny || posted == got;
  }

  cxi::LibCxi lib_;
  hsn::CassiniNic& nic_;
  cxi::CxiEndpoint hw_;
  std::shared_ptr<hsn::TimingModel> timing_;
  std::uint64_t next_op_ = 1;

  std::deque<PostedRecv> posted_;
  std::deque<hsn::Packet> unexpected_;
  std::deque<Completion> cq_;
  /// Outstanding read destinations, keyed by op id.
  std::unordered_map<std::uint64_t, std::span<std::byte>> pending_reads_;
};

}  // namespace shs::ofi
