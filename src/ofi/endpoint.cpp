#include "ofi/endpoint.hpp"

#include <algorithm>
#include <cstring>

#include "util/log.hpp"

namespace shs::ofi {

namespace {
constexpr const char* kTag = "ofi-ep";
constexpr std::size_t kMaxUnexpected = 1 << 15;
}  // namespace

Endpoint::Endpoint(cxi::LibCxi lib, hsn::CassiniNic& nic, cxi::CxiEndpoint hw,
                   std::shared_ptr<hsn::TimingModel> timing)
    : lib_(lib), nic_(nic), hw_(hw), timing_(std::move(timing)) {}

Endpoint::~Endpoint() {
  const Status st = lib_.free_endpoint(hw_);
  if (!st.is_ok() && st.code() != Code::kNotFound) {
    SHS_WARN(kTag) << "endpoint teardown: " << st;
  }
}

Result<SimTime> Endpoint::tsend(FiAddr dst, std::uint64_t tag,
                                std::span<const std::byte> payload,
                                std::uint64_t size, SimTime vt,
                                std::uint64_t context) {
  auto accepted = nic_.post_send(hw_.ep, dst.nic, dst.ep, tag, size, payload,
                                 vt, /*op_id=*/0);
  if (!accepted.is_ok()) return accepted;
  if (context != 0) {
    cq_.push_back(Completion{Completion::Kind::kSend, context, tag, size, dst,
                             accepted.value()});
  }
  return accepted;
}

void Endpoint::post_trecv(std::uint64_t tag, std::span<std::byte> buffer,
                          std::uint64_t context) {
  posted_.push_back(PostedRecv{tag, buffer, context});
}

void Endpoint::deliver(const PostedRecv& r, hsn::Packet& p) {
  if (!p.payload.empty() && !r.buffer.empty()) {
    std::memcpy(r.buffer.data(), p.payload.data(),
                std::min<std::size_t>(r.buffer.size(), p.payload.size()));
  }
  cq_.push_back(Completion{Completion::Kind::kRecv, r.context, p.tag,
                           p.size_bytes, FiAddr{p.src, p.src_ep},
                           p.arrival_vt + timing_->rx_overhead()});
}

bool Endpoint::match_posted(hsn::Packet& p) {
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (tag_matches(it->tag, p.tag)) {
      deliver(*it, p);
      posted_.erase(it);
      return true;
    }
  }
  return false;
}

void Endpoint::cq_push_from(hsn::Event&& e) {
  Completion c;
  c.op_id = e.op_id;
  c.size = e.size;
  c.vt = e.vt;
  switch (e.type) {
    case hsn::Event::Type::kSendComplete:
      c.kind = Completion::Kind::kSend;
      break;
    case hsn::Event::Type::kRdmaWriteComplete:
      c.kind = Completion::Kind::kRmaWrite;
      break;
    case hsn::Event::Type::kRdmaReadComplete: {
      c.kind = Completion::Kind::kRmaRead;
      const auto it = pending_reads_.find(e.op_id);
      if (it != pending_reads_.end()) {
        if (!e.data.empty() && !it->second.empty()) {
          std::memcpy(it->second.data(), e.data.data(),
                      std::min<std::size_t>(it->second.size(), e.data.size()));
        }
        pending_reads_.erase(it);
      }
      break;
    }
    case hsn::Event::Type::kError:
      c.kind = Completion::Kind::kError;
      c.status = std::move(e.status);
      pending_reads_.erase(e.op_id);  // the data will never arrive
      break;
  }
  cq_.push_back(std::move(c));
}

std::size_t Endpoint::progress() {
  std::size_t processed = 0;
  while (true) {
    auto pkt = nic_.poll_rx(hw_.ep);
    if (!pkt.is_ok()) break;
    hsn::Packet p = std::move(pkt).value();
    if (!match_posted(p)) {
      if (unexpected_.size() >= kMaxUnexpected) unexpected_.pop_front();
      unexpected_.push_back(std::move(p));
    }
    ++processed;
  }
  // Drain the NIC event queue too: RMA completions (ACKs, read data,
  // NACKs) surface as CQ entries the same way receives do.
  while (true) {
    auto ev = nic_.poll_event(hw_.ep);
    if (!ev.is_ok()) break;
    cq_push_from(std::move(ev).value());
    ++processed;
  }
  return processed;
}

std::optional<Completion> Endpoint::cq_read() {
  progress();
  if (cq_.empty()) return std::nullopt;
  Completion c = cq_.front();
  cq_.pop_front();
  return c;
}

Result<Completion> Endpoint::cq_sread(int real_timeout_ms) {
  // Fast path.
  if (auto c = cq_read()) return *c;
  // Block on the NIC RX queue until something arrives or the deadline
  // passes.  Completions produced by pure sends are already in cq_.
  const int slice_ms = 50;
  int waited = 0;
  while (waited <= real_timeout_ms) {
    auto pkt = nic_.wait_rx(hw_.ep, std::min(slice_ms, real_timeout_ms));
    if (pkt.is_ok()) {
      hsn::Packet p = std::move(pkt).value();
      if (!match_posted(p)) {
        if (unexpected_.size() >= kMaxUnexpected) unexpected_.pop_front();
        unexpected_.push_back(std::move(p));
      }
      if (auto c = cq_read()) return *c;
      continue;  // unexpected message; keep waiting
    }
    if (pkt.code() != Code::kTimeout) return Result<Completion>(pkt.status());
    waited += slice_ms;
    if (auto c = cq_read()) return *c;
  }
  return Result<Completion>(timeout_error("cq_sread deadline exceeded"));
}

Result<RecvResult> Endpoint::trecv_sync(std::uint64_t tag,
                                        std::span<std::byte> buffer,
                                        int real_timeout_ms) {
  // 1. Unexpected queue first (messages that raced ahead of the post).
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (tag_matches(tag, it->tag)) {
      hsn::Packet p = std::move(*it);
      unexpected_.erase(it);
      if (!p.payload.empty() && !buffer.empty()) {
        std::memcpy(buffer.data(), p.payload.data(),
                    std::min<std::size_t>(buffer.size(), p.payload.size()));
      }
      return RecvResult{p.size_bytes, p.tag, FiAddr{p.src, p.src_ep},
                        p.arrival_vt + timing_->rx_overhead()};
    }
  }
  // 2. Block on arrivals.
  const int slice_ms = 50;
  int waited = 0;
  while (waited <= real_timeout_ms) {
    auto pkt = nic_.wait_rx(hw_.ep, std::min(slice_ms, real_timeout_ms));
    if (!pkt.is_ok()) {
      if (pkt.code() == Code::kTimeout) {
        waited += slice_ms;
        continue;
      }
      return Result<RecvResult>(pkt.status());
    }
    hsn::Packet p = std::move(pkt).value();
    if (tag_matches(tag, p.tag)) {
      if (!p.payload.empty() && !buffer.empty()) {
        std::memcpy(buffer.data(), p.payload.data(),
                    std::min<std::size_t>(buffer.size(), p.payload.size()));
      }
      return RecvResult{p.size_bytes, p.tag, FiAddr{p.src, p.src_ep},
                        p.arrival_vt + timing_->rx_overhead()};
    }
    if (unexpected_.size() >= kMaxUnexpected) unexpected_.pop_front();
    unexpected_.push_back(std::move(p));
  }
  return Result<RecvResult>(timeout_error("trecv_sync deadline exceeded"));
}

Result<hsn::RKey> Endpoint::mr_reg(std::span<std::byte> region) {
  return nic_.register_mr(hw_.ep, region);
}

Status Endpoint::mr_close(hsn::RKey key) { return nic_.deregister_mr(key); }

Result<std::uint64_t> Endpoint::post_rma_write(
    hsn::NicAddr dst, hsn::RKey rkey, std::uint64_t offset,
    std::span<const std::byte> payload, std::uint64_t size, SimTime vt) {
  const std::uint64_t op = next_op_++;
  auto accepted =
      nic_.rdma_write(hw_.ep, dst, rkey, offset, size, payload, vt, op);
  if (!accepted.is_ok()) return Result<std::uint64_t>(accepted.status());
  return op;
}

Result<std::uint64_t> Endpoint::post_rma_read(hsn::NicAddr dst,
                                              hsn::RKey rkey,
                                              std::uint64_t offset,
                                              std::uint64_t size,
                                              std::span<std::byte> out,
                                              SimTime vt) {
  const std::uint64_t op = next_op_++;
  auto accepted = nic_.rdma_read(hw_.ep, dst, rkey, offset, size, vt, op);
  if (!accepted.is_ok()) return Result<std::uint64_t>(accepted.status());
  pending_reads_.emplace(op, out);
  return op;
}

Result<SimTime> Endpoint::await_rma(std::uint64_t op, int real_timeout_ms) {
  const int slice_ms = 50;
  int waited = 0;
  for (;;) {
    // The completion may already sit in the CQ (or in the NIC's event
    // queue — drained by progress() inside cq_read's caller path).
    for (auto it = cq_.begin(); it != cq_.end(); ++it) {
      if (it->op_id != op) continue;
      const Completion c = *it;
      cq_.erase(it);
      if (c.kind == Completion::Kind::kError) {
        return Result<SimTime>(c.status);
      }
      return c.vt;
    }
    if (waited > real_timeout_ms) break;
    auto ev = nic_.wait_event(hw_.ep, std::min(slice_ms, real_timeout_ms));
    if (!ev.is_ok()) {
      if (ev.code() != Code::kTimeout) return Result<SimTime>(ev.status());
      waited += slice_ms;
      continue;
    }
    // Events for other ops become ordinary CQ entries; ours is found by
    // the scan above next iteration.
    cq_push_from(std::move(ev).value());
  }
  return Result<SimTime>(timeout_error(
      "await_rma: no completion (is the target MR registered on this "
      "VNI?)"));
}

Result<SimTime> Endpoint::rma_write_sync(hsn::NicAddr dst, hsn::RKey rkey,
                                         std::uint64_t offset,
                                         std::span<const std::byte> payload,
                                         std::uint64_t size, SimTime vt,
                                         int real_timeout_ms) {
  auto op = post_rma_write(dst, rkey, offset, payload, size, vt);
  if (!op.is_ok()) return Result<SimTime>(op.status());
  return await_rma(op.value(), real_timeout_ms);
}

Result<SimTime> Endpoint::rma_read_sync(hsn::NicAddr dst, hsn::RKey rkey,
                                        std::uint64_t offset,
                                        std::uint64_t size,
                                        std::vector<std::byte>& out,
                                        SimTime vt, int real_timeout_ms) {
  out.resize(size);
  auto op = post_rma_read(dst, rkey, offset, size, out, vt);
  if (!op.is_ok()) return Result<SimTime>(op.status());
  return await_rma(op.value(), real_timeout_ms);
}

}  // namespace shs::ofi
