#include "ofi/endpoint.hpp"

#include <algorithm>
#include <cstring>

#include "util/log.hpp"

namespace shs::ofi {

namespace {
constexpr const char* kTag = "ofi-ep";
constexpr std::size_t kMaxUnexpected = 1 << 15;
}  // namespace

Endpoint::Endpoint(cxi::LibCxi lib, hsn::CassiniNic& nic, cxi::CxiEndpoint hw,
                   std::shared_ptr<hsn::TimingModel> timing)
    : lib_(lib), nic_(nic), hw_(hw), timing_(std::move(timing)) {}

Endpoint::~Endpoint() {
  const Status st = lib_.free_endpoint(hw_);
  if (!st.is_ok() && st.code() != Code::kNotFound) {
    SHS_WARN(kTag) << "endpoint teardown: " << st;
  }
}

Result<SimTime> Endpoint::tsend(FiAddr dst, std::uint64_t tag,
                                std::span<const std::byte> payload,
                                std::uint64_t size, SimTime vt,
                                std::uint64_t context) {
  auto accepted = nic_.post_send(hw_.ep, dst.nic, dst.ep, tag, size, payload,
                                 vt, /*op_id=*/0);
  if (!accepted.is_ok()) return accepted;
  if (context != 0) {
    cq_.push_back(Completion{Completion::Kind::kSend, context, tag, size, dst,
                             accepted.value()});
  }
  return accepted;
}

void Endpoint::post_trecv(std::uint64_t tag, std::span<std::byte> buffer,
                          std::uint64_t context) {
  posted_.push_back(PostedRecv{tag, buffer, context});
}

void Endpoint::deliver(const PostedRecv& r, hsn::Packet& p) {
  if (!p.payload.empty() && !r.buffer.empty()) {
    std::memcpy(r.buffer.data(), p.payload.data(),
                std::min<std::size_t>(r.buffer.size(), p.payload.size()));
  }
  cq_.push_back(Completion{Completion::Kind::kRecv, r.context, p.tag,
                           p.size_bytes, FiAddr{p.src, p.src_ep},
                           p.arrival_vt + timing_->rx_overhead()});
}

bool Endpoint::match_posted(hsn::Packet& p) {
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (tag_matches(it->tag, p.tag)) {
      deliver(*it, p);
      posted_.erase(it);
      return true;
    }
  }
  return false;
}

std::size_t Endpoint::progress() {
  std::size_t processed = 0;
  while (true) {
    auto pkt = nic_.poll_rx(hw_.ep);
    if (!pkt.is_ok()) break;
    hsn::Packet p = std::move(pkt).value();
    if (!match_posted(p)) {
      if (unexpected_.size() >= kMaxUnexpected) unexpected_.pop_front();
      unexpected_.push_back(std::move(p));
    }
    ++processed;
  }
  return processed;
}

std::optional<Completion> Endpoint::cq_read() {
  progress();
  if (cq_.empty()) return std::nullopt;
  Completion c = cq_.front();
  cq_.pop_front();
  return c;
}

Result<Completion> Endpoint::cq_sread(int real_timeout_ms) {
  // Fast path.
  if (auto c = cq_read()) return *c;
  // Block on the NIC RX queue until something arrives or the deadline
  // passes.  Completions produced by pure sends are already in cq_.
  const int slice_ms = 50;
  int waited = 0;
  while (waited <= real_timeout_ms) {
    auto pkt = nic_.wait_rx(hw_.ep, std::min(slice_ms, real_timeout_ms));
    if (pkt.is_ok()) {
      hsn::Packet p = std::move(pkt).value();
      if (!match_posted(p)) {
        if (unexpected_.size() >= kMaxUnexpected) unexpected_.pop_front();
        unexpected_.push_back(std::move(p));
      }
      if (auto c = cq_read()) return *c;
      continue;  // unexpected message; keep waiting
    }
    if (pkt.code() != Code::kTimeout) return Result<Completion>(pkt.status());
    waited += slice_ms;
    if (auto c = cq_read()) return *c;
  }
  return Result<Completion>(timeout_error("cq_sread deadline exceeded"));
}

Result<RecvResult> Endpoint::trecv_sync(std::uint64_t tag,
                                        std::span<std::byte> buffer,
                                        int real_timeout_ms) {
  // 1. Unexpected queue first (messages that raced ahead of the post).
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (tag_matches(tag, it->tag)) {
      hsn::Packet p = std::move(*it);
      unexpected_.erase(it);
      if (!p.payload.empty() && !buffer.empty()) {
        std::memcpy(buffer.data(), p.payload.data(),
                    std::min<std::size_t>(buffer.size(), p.payload.size()));
      }
      return RecvResult{p.size_bytes, p.tag, FiAddr{p.src, p.src_ep},
                        p.arrival_vt + timing_->rx_overhead()};
    }
  }
  // 2. Block on arrivals.
  const int slice_ms = 50;
  int waited = 0;
  while (waited <= real_timeout_ms) {
    auto pkt = nic_.wait_rx(hw_.ep, std::min(slice_ms, real_timeout_ms));
    if (!pkt.is_ok()) {
      if (pkt.code() == Code::kTimeout) {
        waited += slice_ms;
        continue;
      }
      return Result<RecvResult>(pkt.status());
    }
    hsn::Packet p = std::move(pkt).value();
    if (tag_matches(tag, p.tag)) {
      if (!p.payload.empty() && !buffer.empty()) {
        std::memcpy(buffer.data(), p.payload.data(),
                    std::min<std::size_t>(buffer.size(), p.payload.size()));
      }
      return RecvResult{p.size_bytes, p.tag, FiAddr{p.src, p.src_ep},
                        p.arrival_vt + timing_->rx_overhead()};
    }
    if (unexpected_.size() >= kMaxUnexpected) unexpected_.pop_front();
    unexpected_.push_back(std::move(p));
  }
  return Result<RecvResult>(timeout_error("trecv_sync deadline exceeded"));
}

Result<hsn::RKey> Endpoint::mr_reg(std::span<std::byte> region) {
  return nic_.register_mr(hw_.ep, region);
}

Status Endpoint::mr_close(hsn::RKey key) { return nic_.deregister_mr(key); }

Result<SimTime> Endpoint::rma_write_sync(hsn::NicAddr dst, hsn::RKey rkey,
                                         std::uint64_t offset,
                                         std::span<const std::byte> payload,
                                         std::uint64_t size, SimTime vt,
                                         int real_timeout_ms) {
  const std::uint64_t op = next_op_++;
  auto accepted =
      nic_.rdma_write(hw_.ep, dst, rkey, offset, size, payload, vt, op);
  if (!accepted.is_ok()) return accepted;
  // Wait for the ACK-completion event.
  const int slice_ms = 50;
  int waited = 0;
  while (waited <= real_timeout_ms) {
    auto ev = nic_.wait_event(hw_.ep, std::min(slice_ms, real_timeout_ms));
    if (!ev.is_ok()) {
      if (ev.code() == Code::kTimeout) {
        waited += slice_ms;
        continue;
      }
      return Result<SimTime>(ev.status());
    }
    const hsn::Event& e = ev.value();
    if (e.op_id != op) continue;  // stale event from another op
    if (e.type == hsn::Event::Type::kError) {
      return Result<SimTime>(e.status);
    }
    return std::max(e.vt, accepted.value());
  }
  return Result<SimTime>(timeout_error(
      "rma_write_sync: no ACK (is the target MR registered on this VNI?)"));
}

Result<SimTime> Endpoint::rma_read_sync(hsn::NicAddr dst, hsn::RKey rkey,
                                        std::uint64_t offset,
                                        std::uint64_t size,
                                        std::vector<std::byte>& out,
                                        SimTime vt, int real_timeout_ms) {
  const std::uint64_t op = next_op_++;
  auto accepted = nic_.rdma_read(hw_.ep, dst, rkey, offset, size, vt, op);
  if (!accepted.is_ok()) return accepted;
  const int slice_ms = 50;
  int waited = 0;
  while (waited <= real_timeout_ms) {
    auto ev = nic_.wait_event(hw_.ep, std::min(slice_ms, real_timeout_ms));
    if (!ev.is_ok()) {
      if (ev.code() == Code::kTimeout) {
        waited += slice_ms;
        continue;
      }
      return Result<SimTime>(ev.status());
    }
    hsn::Event e = std::move(ev).value();
    if (e.op_id != op) continue;
    if (e.type == hsn::Event::Type::kError) {
      return Result<SimTime>(e.status);
    }
    out = std::move(e.data);
    return std::max(e.vt, accepted.value());
  }
  return Result<SimTime>(timeout_error(
      "rma_read_sync: no response (is the target MR registered?)"));
}

}  // namespace shs::ofi
