// types.hpp — libfabric-flavoured vocabulary for the simulated provider.
//
// The real stack uses libfabric's CXI provider; the paper patches it so
// the netns-authenticated CXI services work end-to-end.  This layer keeps
// libfabric's object shapes (domain / endpoint / completion queue /
// tagged messaging / RMA) in a simplified, strongly-typed form.
#pragma once

#include <cstdint>

#include "hsn/types.hpp"
#include "util/status.hpp"
#include "util/units.hpp"

namespace shs::ofi {

/// Fabric address of a peer endpoint (fi_addr_t analogue).
struct FiAddr {
  hsn::NicAddr nic = hsn::kInvalidNic;
  hsn::EndpointId ep = 0;

  friend bool operator==(const FiAddr&, const FiAddr&) = default;
};

/// Wildcard tag for receives (FI_TAG wildcard analogue).
constexpr std::uint64_t kTagAny = ~0ULL;

/// One completion-queue entry.  RMA posts complete as
/// `{op_id, status, vt}` records: `op_id` is the id the post returned,
/// `status` is OK for kRmaWrite/kRmaRead and the permanent/terminal
/// error for kError (denied MR, retry budget exhausted, no route).
struct Completion {
  enum class Kind : std::uint8_t { kSend, kRecv, kRmaWrite, kRmaRead, kError };
  Kind kind = Kind::kError;
  std::uint64_t context = 0;  ///< caller-supplied correlation value
  std::uint64_t tag = 0;
  std::uint64_t size = 0;
  FiAddr peer{};
  SimTime vt = 0;  ///< virtual completion time (drives the OSU clocks)
  std::uint64_t op_id = 0;  ///< RMA correlation id (0 = not an RMA op)
  Status status;            ///< non-OK only for kError
};

}  // namespace shs::ofi
