#include "linuxsim/kernel.hpp"

#include <algorithm>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace shs::linuxsim {

namespace {
constexpr const char* kTag = "linuxsim";
/// Real kernels place the init netns inode near this value; we start our
/// counter there so logs look familiar.
constexpr NetNsInode kInitNetNsInode = 4026531840ULL;
}  // namespace

// ---------------------------------------------------------------------------
// UserNamespace

std::optional<Uid> UserNamespace::to_host_uid(Uid inside) const noexcept {
  for (const auto& e : uid_map_) {
    if (inside >= e.inside_start && inside < e.inside_start + e.length) {
      return e.outside_start + (inside - e.inside_start);
    }
  }
  return std::nullopt;
}

std::optional<Gid> UserNamespace::to_host_gid(Gid inside) const noexcept {
  for (const auto& e : gid_map_) {
    if (inside >= e.inside_start && inside < e.inside_start + e.length) {
      return e.outside_start + (inside - e.inside_start);
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// NetNamespace

Status NetNamespace::attach_device(const std::string& dev) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::find(devices_.begin(), devices_.end(), dev) != devices_.end()) {
    return already_exists(strfmt("device %s already in netns %s", dev.c_str(),
                                 name_.c_str()));
  }
  devices_.push_back(dev);
  return Status::ok();
}

Status NetNamespace::detach_device(const std::string& dev) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = std::find(devices_.begin(), devices_.end(), dev);
  if (it == devices_.end()) {
    return not_found(strfmt("device %s not in netns %s", dev.c_str(),
                            name_.c_str()));
  }
  devices_.erase(it);
  return Status::ok();
}

std::vector<std::string> NetNamespace::devices() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return devices_;
}

bool NetNamespace::has_device(const std::string& dev) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::find(devices_.begin(), devices_.end(), dev) != devices_.end();
}

// ---------------------------------------------------------------------------
// Process

Uid Process::host_uid() const noexcept {
  if (!user_ns_) return creds_.uid;
  return user_ns_->to_host_uid(creds_.uid).value_or(kOverflowUid);
}

Gid Process::host_gid() const noexcept {
  if (!user_ns_) return creds_.gid;
  return user_ns_->to_host_gid(creds_.gid).value_or(kOverflowGid);
}

// ---------------------------------------------------------------------------
// Kernel

Kernel::Kernel() : next_netns_inode_(kInitNetNsInode) {
  host_net_ns_ =
      std::make_shared<NetNamespace>(next_netns_inode_++, "host");
  net_namespaces_.emplace(host_net_ns_->inode(), host_net_ns_);
  // PID 1: host init, root, host namespaces.
  auto init = std::make_shared<Process>(Pid{1}, Credentials{}, nullptr,
                                        host_net_ns_);
  processes_.emplace(init->pid(), std::move(init));
}

std::shared_ptr<NetNamespace> Kernel::create_net_namespace(std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto ns =
      std::make_shared<NetNamespace>(next_netns_inode_++, std::move(name));
  net_namespaces_.emplace(ns->inode(), ns);
  SHS_DEBUG(kTag) << "created netns " << ns->name() << " inode "
                  << ns->inode();
  return ns;
}

std::shared_ptr<UserNamespace> Kernel::create_user_namespace(
    std::vector<IdMapEntry> uid_map, std::vector<IdMapEntry> gid_map) {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::make_shared<UserNamespace>(next_user_ns_id_++,
                                         std::move(uid_map),
                                         std::move(gid_map));
}

std::shared_ptr<Process> Kernel::spawn(const SpawnOptions& opts) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto net_ns = opts.net_ns ? opts.net_ns : host_net_ns_;
  auto proc = std::make_shared<Process>(next_pid_++, opts.creds, opts.user_ns,
                                        std::move(net_ns));
  processes_.emplace(proc->pid(), proc);
  SHS_DEBUG(kTag) << "spawned pid " << proc->pid() << " uid "
                  << proc->creds().uid << " netns "
                  << proc->net_ns()->inode();
  return proc;
}

Status Kernel::kill(Pid pid) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = processes_.find(pid);
  if (it == processes_.end()) {
    return not_found(strfmt("no such pid %u", pid));
  }
  it->second->alive_ = false;
  processes_.erase(it);
  return Status::ok();
}

Status Kernel::setuid(Pid pid, Uid uid) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = processes_.find(pid);
  if (it == processes_.end()) return not_found(strfmt("no such pid %u", pid));
  Process& p = *it->second;
  if (p.user_ns_) {
    // Inside a user namespace: any mapped UID may be assumed when the
    // caller is namespace-root (we model container entry as ns-root, which
    // is how rootless/user-namespaced containers behave).
    if (!p.user_ns_->uid_mapped(uid)) {
      return permission_denied(
          strfmt("uid %u not mapped in user namespace", uid));
    }
    p.creds_.uid = uid;
    return Status::ok();
  }
  // Host namespace: classic Unix — only root may switch UID freely.
  if (p.creds_.uid != kRootUid) {
    return permission_denied("setuid requires root outside user namespaces");
  }
  p.creds_.uid = uid;
  return Status::ok();
}

Status Kernel::setgid(Pid pid, Gid gid) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = processes_.find(pid);
  if (it == processes_.end()) return not_found(strfmt("no such pid %u", pid));
  Process& p = *it->second;
  if (p.user_ns_) {
    if (!p.user_ns_->gid_mapped(gid)) {
      return permission_denied(
          strfmt("gid %u not mapped in user namespace", gid));
    }
    p.creds_.gid = gid;
    return Status::ok();
  }
  if (p.creds_.uid != kRootUid) {
    return permission_denied("setgid requires root outside user namespaces");
  }
  p.creds_.gid = gid;
  return Status::ok();
}

Result<NetNsInode> Kernel::proc_net_ns_inode(Pid pid) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = processes_.find(pid);
  if (it == processes_.end()) {
    return Result<NetNsInode>(not_found(strfmt("no such pid %u", pid)));
  }
  return it->second->net_ns()->inode();
}

Result<Credentials> Kernel::proc_host_creds(Pid pid) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = processes_.find(pid);
  if (it == processes_.end()) {
    return Result<Credentials>(not_found(strfmt("no such pid %u", pid)));
  }
  return Credentials{it->second->host_uid(), it->second->host_gid()};
}

std::shared_ptr<Process> Kernel::find(Pid pid) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : it->second;
}

std::size_t Kernel::process_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return processes_.size();
}

std::size_t Kernel::net_ns_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t alive = 0;
  for (const auto& [inode, weak] : net_namespaces_) {
    if (!weak.expired()) ++alive;
  }
  return alive;
}

}  // namespace shs::linuxsim
