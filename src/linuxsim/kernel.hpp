// kernel.hpp — simulated Linux kernel facilities the Slingshot stack
// authenticates against.
//
// The paper's core observation (Section III) is that UID/GID-based CXI
// service membership breaks under containers for two reasons:
//   1. user namespaces let a container process *choose* its in-namespace
//      UID/GID (root inside maps to an unprivileged host UID), and
//   2. Kubernetes runs all containers as one host user anyway.
// The fix authenticates by *network namespace inode*, which the kernel —
// not the process — assigns, and which processes cannot change.
//
// This module reproduces exactly the semantics needed to demonstrate both
// the vulnerability and the fix: processes with credentials, user
// namespaces with UID/GID maps (setuid succeeds inside the mapped range),
// network namespaces with unique procfs inodes, and a procfs view that the
// simulated CXI driver uses to read `/proc/<pid>/ns/net`.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.hpp"

namespace shs::linuxsim {

using Pid = std::uint32_t;
using Uid = std::uint32_t;
using Gid = std::uint32_t;
/// procfs inode of a network namespace (`/proc/<pid>/ns/net`).
using NetNsInode = std::uint64_t;

constexpr Uid kRootUid = 0;
constexpr Gid kRootGid = 0;

/// One contiguous ID mapping line, as in /proc/<pid>/uid_map:
/// IDs [inside_start, inside_start+length) map to
/// [outside_start, outside_start+length).
struct IdMapEntry {
  std::uint32_t inside_start = 0;
  std::uint32_t outside_start = 0;
  std::uint32_t length = 0;
};

/// A user namespace: isolates UID/GID views.  A process inside may call
/// setuid() to any ID that its namespace maps — the privilege-containment
/// property real user namespaces provide, and the exact property that
/// makes UID-based RDMA authentication spoofable from inside a container.
class UserNamespace {
 public:
  UserNamespace(std::uint64_t id, std::vector<IdMapEntry> uid_map,
                std::vector<IdMapEntry> gid_map)
      : id_(id), uid_map_(std::move(uid_map)), gid_map_(std::move(gid_map)) {}

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

  /// Maps an in-namespace UID to the host UID; nullopt if unmapped.
  [[nodiscard]] std::optional<Uid> to_host_uid(Uid inside) const noexcept;
  [[nodiscard]] std::optional<Gid> to_host_gid(Gid inside) const noexcept;

  /// True if `inside` is covered by the uid map (setuid allowed).
  [[nodiscard]] bool uid_mapped(Uid inside) const noexcept {
    return to_host_uid(inside).has_value();
  }
  [[nodiscard]] bool gid_mapped(Gid inside) const noexcept {
    return to_host_gid(inside).has_value();
  }

 private:
  std::uint64_t id_;
  std::vector<IdMapEntry> uid_map_;
  std::vector<IdMapEntry> gid_map_;
};

/// A network namespace.  The kernel assigns the procfs inode at creation;
/// userspace can read it but never change it.  Network devices attach to
/// exactly one namespace (Section II-D of the paper).
class NetNamespace {
 public:
  NetNamespace(NetNsInode inode, std::string name)
      : inode_(inode), name_(std::move(name)) {}

  [[nodiscard]] NetNsInode inode() const noexcept { return inode_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Attaches a (virtual) network device; fails if already attached here.
  Status attach_device(const std::string& dev);
  /// Detaches a device; fails if not present.
  Status detach_device(const std::string& dev);
  [[nodiscard]] std::vector<std::string> devices() const;
  [[nodiscard]] bool has_device(const std::string& dev) const;

 private:
  NetNsInode inode_;
  std::string name_;
  mutable std::mutex mutex_;
  std::vector<std::string> devices_;
};

/// Credentials of a process as the *host* kernel sees them, plus the
/// in-namespace view when a user namespace is involved.
struct Credentials {
  Uid uid = kRootUid;   ///< effective UID in the process's user namespace
  Gid gid = kRootGid;   ///< effective GID in the process's user namespace
};

/// A simulated process.  Thread-compatible: the owning Kernel serializes
/// mutations.
class Process {
 public:
  Process(Pid pid, Credentials creds,
          std::shared_ptr<UserNamespace> user_ns,
          std::shared_ptr<NetNamespace> net_ns)
      : pid_(pid), creds_(creds), user_ns_(std::move(user_ns)),
        net_ns_(std::move(net_ns)) {}

  [[nodiscard]] Pid pid() const noexcept { return pid_; }
  [[nodiscard]] Credentials creds() const noexcept { return creds_; }
  [[nodiscard]] const std::shared_ptr<UserNamespace>& user_ns() const noexcept {
    return user_ns_;
  }
  [[nodiscard]] const std::shared_ptr<NetNamespace>& net_ns() const noexcept {
    return net_ns_;
  }

  /// Host-view UID: identity if no user namespace, else mapped.  Unmapped
  /// IDs surface as the kernel's overflow UID (65534, "nobody").
  [[nodiscard]] Uid host_uid() const noexcept;
  [[nodiscard]] Gid host_gid() const noexcept;

 private:
  friend class Kernel;
  Pid pid_;
  Credentials creds_;
  std::shared_ptr<UserNamespace> user_ns_;
  std::shared_ptr<NetNamespace> net_ns_;
  bool alive_ = true;
};

/// Options for Kernel::spawn().
struct SpawnOptions {
  Credentials creds{};  ///< in-namespace credentials of the new process
  std::shared_ptr<UserNamespace> user_ns;  ///< null = host user namespace
  std::shared_ptr<NetNamespace> net_ns;    ///< null = host net namespace
};

/// The kernel: process table plus namespace registries.  Thread-safe.
class Kernel {
 public:
  Kernel();

  /// The initial network namespace (inode matches the region real kernels
  /// use for the init netns, purely cosmetic).
  [[nodiscard]] std::shared_ptr<NetNamespace> host_net_ns() const {
    return host_net_ns_;
  }

  /// Creates a named network namespace with a fresh unique inode.
  std::shared_ptr<NetNamespace> create_net_namespace(std::string name);

  /// Creates a user namespace with the given maps.
  std::shared_ptr<UserNamespace> create_user_namespace(
      std::vector<IdMapEntry> uid_map, std::vector<IdMapEntry> gid_map);

  /// Spawns a process.  Null namespaces default to the host namespaces.
  std::shared_ptr<Process> spawn(const SpawnOptions& opts);

  /// Terminates a process (removes it from the table).
  Status kill(Pid pid);

  /// setuid(2) semantics: without a user namespace only root may change
  /// UID; within a user namespace any *mapped* UID may be assumed.  This
  /// is the primitive the UID-spoof attack uses.
  Status setuid(Pid pid, Uid uid);
  Status setgid(Pid pid, Gid gid);

  /// procfs: reads `/proc/<pid>/ns/net` — the netns inode for `pid`.
  /// This is what the extended CXI driver authenticates against.
  Result<NetNsInode> proc_net_ns_inode(Pid pid) const;

  /// procfs: host-view credentials of `pid` (as `/proc/<pid>/status`).
  Result<Credentials> proc_host_creds(Pid pid) const;

  [[nodiscard]] std::shared_ptr<Process> find(Pid pid) const;
  [[nodiscard]] std::size_t process_count() const;
  [[nodiscard]] std::size_t net_ns_count() const;

 private:
  mutable std::mutex mutex_;
  Pid next_pid_ = 2;  // PID 1 is the host "init" created by the ctor
  std::uint64_t next_user_ns_id_ = 1;
  NetNsInode next_netns_inode_;
  std::shared_ptr<NetNamespace> host_net_ns_;
  std::unordered_map<Pid, std::shared_ptr<Process>> processes_;
  std::unordered_map<NetNsInode, std::weak_ptr<NetNamespace>> net_namespaces_;
};

/// Kernel overflow UID ("nobody"), surfaced for unmapped IDs.
constexpr Uid kOverflowUid = 65534;
constexpr Gid kOverflowGid = 65534;

}  // namespace shs::linuxsim
