// stats.hpp — sample statistics used by the benchmark harness.
//
// The paper reports means, 10 %/90 % percentile bands (Figs 5–11) and
// boxplots (Fig 12).  `SampleSet` accumulates raw samples and computes all
// of those; `OnlineStats` is a Welford accumulator for cheap mean/stddev.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace shs {

/// Streaming mean/variance (Welford) — O(1) memory.
class OnlineStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Five-number summary + whiskers as matplotlib draws them (Fig 12).
struct BoxplotStats {
  double min = 0.0;          ///< smallest sample
  double q1 = 0.0;           ///< 25th percentile
  double median = 0.0;       ///< 50th percentile
  double q3 = 0.0;           ///< 75th percentile
  double max = 0.0;          ///< largest sample
  double whisker_lo = 0.0;   ///< lowest sample >= q1 - 1.5*IQR
  double whisker_hi = 0.0;   ///< highest sample <= q3 + 1.5*IQR
  std::size_t n_outliers = 0;
};

/// Owning container of raw samples with percentile queries.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  void reserve(std::size_t n) { samples_.reserve(n); }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return samples_;
  }

  [[nodiscard]] double mean() const;
  /// Linear-interpolated percentile, `p` in [0, 100].  Empty set -> 0.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] BoxplotStats boxplot() const;

  /// Merges another sample set into this one.
  void merge(const SampleSet& other);

 private:
  std::vector<double> samples_;
};

/// Formats a boxplot as a single human-readable line (used by fig12).
std::string to_string(const BoxplotStats& b);

}  // namespace shs
