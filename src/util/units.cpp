#include "util/units.hpp"

#include <cstdio>

namespace shs {

std::string format_size(std::uint64_t bytes) {
  char buf[32];
  if (bytes >= 1024ULL * 1024ULL && bytes % (1024ULL * 1024ULL) == 0) {
    std::snprintf(buf, sizeof(buf), "%llu MB",
                  static_cast<unsigned long long>(bytes / (1024ULL * 1024ULL)));
  } else if (bytes >= 1024ULL && bytes % 1024ULL == 0) {
    std::snprintf(buf, sizeof(buf), "%llu kB",
                  static_cast<unsigned long long>(bytes / 1024ULL));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string format_mmss(SimTime t) {
  const auto total_s = static_cast<std::int64_t>(to_seconds(t));
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%02lld:%02lld",
                static_cast<long long>(total_s / 60),
                static_cast<long long>(total_s % 60));
  return buf;
}

}  // namespace shs
