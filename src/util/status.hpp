// status.hpp — error handling primitives used across the shsk8s stack.
//
// The stack spans simulated kernel code (CXI driver), userspace libraries
// (libcxi / ofi), and control-plane services (VNI endpoint).  All of them
// report failures through `Status` / `Result<T>` instead of exceptions so
// that driver-style code paths stay allocation-light and the error contract
// is visible in every signature (C++ Core Guidelines E.2/E.28: error codes
// at boundaries where exceptions are not an option).
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace shs {

/// Canonical error codes, loosely mirroring errno values the real CXI
/// driver and Kubernetes API server would return.
enum class Code : std::uint8_t {
  kOk = 0,
  kInvalidArgument,   ///< EINVAL — malformed request.
  kNotFound,          ///< ENOENT — object does not exist.
  kAlreadyExists,     ///< EEXIST — uniqueness violated.
  kPermissionDenied,  ///< EPERM — authentication/authorization failure.
  kResourceExhausted, ///< ENOSPC — quota or pool exhausted.
  kFailedPrecondition,///< EBUSY — object not in a state to accept the op.
  kUnavailable,       ///< service not reachable (VNI endpoint down, ...).
  kTimeout,           ///< deadline exceeded.
  kInternal,          ///< invariant violation; a bug if ever observed.
  kAborted,           ///< transaction conflict, retryable.
};

/// Human-readable name of a `Code` (stable, used in logs and tests).
std::string_view code_name(Code c) noexcept;

/// A cheap value-type status: a code plus an optional diagnostic message.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() noexcept : code_(Code::kOk) {}
  /// Constructs a status with `code` and a diagnostic `message`.
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() noexcept { return Status(); }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == Code::kOk; }
  [[nodiscard]] Code code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "OK" or "<CODE>: <message>" — for logs and gtest failure output.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  Code code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.to_string();
}

// Factory helpers so call sites read like grep-able intent.
Status invalid_argument(std::string msg);
Status not_found(std::string msg);
Status already_exists(std::string msg);
Status permission_denied(std::string msg);
Status resource_exhausted(std::string msg);
Status failed_precondition(std::string msg);
Status unavailable(std::string msg);
Status timeout_error(std::string msg);
Status internal_error(std::string msg);
Status aborted(std::string msg);

/// Result<T> — either a value or a non-OK Status.  Move-friendly; `value()`
/// on an error aborts (the caller must check, as driver code would check
/// errno).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Status status) : v_(std::move(status)) {}   // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool is_ok() const noexcept {
    return std::holds_alternative<T>(v_);
  }
  [[nodiscard]] Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(v_);
  }
  [[nodiscard]] Code code() const noexcept {
    return is_ok() ? Code::kOk : std::get<Status>(v_).code();
  }

  [[nodiscard]] const T& value() const& {
    check_ok();
    return std::get<T>(v_);
  }
  [[nodiscard]] T& value() & {
    check_ok();
    return std::get<T>(v_);
  }
  [[nodiscard]] T&& value() && {
    check_ok();
    return std::get<T>(std::move(v_));
  }
  [[nodiscard]] T value_or(T fallback) const {
    return is_ok() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  void check_ok() const {
    if (!is_ok()) {
      // Deliberate hard stop: accessing the value of a failed Result is a
      // programming error, equivalent to dereferencing a failed syscall.
      std::abort();
    }
  }
  std::variant<T, Status> v_;
};

/// RETURN_IF_ERROR-style helper for functions returning Status.
#define SHS_RETURN_IF_ERROR(expr)                       \
  do {                                                  \
    ::shs::Status shs_status_ = (expr);                 \
    if (!shs_status_.is_ok()) return shs_status_;       \
  } while (0)

}  // namespace shs
