#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace shs {

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double SampleSet::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double SampleSet::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

BoxplotStats SampleSet::boxplot() const {
  BoxplotStats b;
  if (samples_.empty()) return b;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  b.min = sorted.front();
  b.max = sorted.back();
  b.q1 = percentile(25.0);
  b.median = percentile(50.0);
  b.q3 = percentile(75.0);
  const double iqr = b.q3 - b.q1;
  const double lo_fence = b.q1 - 1.5 * iqr;
  const double hi_fence = b.q3 + 1.5 * iqr;
  b.whisker_lo = b.max;
  b.whisker_hi = b.min;
  for (double x : sorted) {
    if (x >= lo_fence) {
      b.whisker_lo = x;
      break;
    }
  }
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
    if (*it <= hi_fence) {
      b.whisker_hi = *it;
      break;
    }
  }
  for (double x : sorted) {
    if (x < lo_fence || x > hi_fence) ++b.n_outliers;
  }
  return b;
}

void SampleSet::merge(const SampleSet& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
}

std::string to_string(const BoxplotStats& b) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f "
                "whiskers=[%.3f, %.3f] outliers=%zu",
                b.min, b.q1, b.median, b.q3, b.max, b.whisker_lo,
                b.whisker_hi, b.n_outliers);
  return buf;
}

}  // namespace shs
