#include "util/strings.hpp"

#include <cstdarg>
#include <cstdio>

namespace shs {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view s) noexcept {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace shs
