// strings.hpp — small string utilities (annotation parsing, CSV output).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace shs {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view s) noexcept;

/// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix) noexcept;

/// printf-style formatting into a std::string.
std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace shs
