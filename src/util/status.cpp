#include "util/status.hpp"

namespace shs {

std::string_view code_name(Code c) noexcept {
  switch (c) {
    case Code::kOk: return "OK";
    case Code::kInvalidArgument: return "INVALID_ARGUMENT";
    case Code::kNotFound: return "NOT_FOUND";
    case Code::kAlreadyExists: return "ALREADY_EXISTS";
    case Code::kPermissionDenied: return "PERMISSION_DENIED";
    case Code::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case Code::kFailedPrecondition: return "FAILED_PRECONDITION";
    case Code::kUnavailable: return "UNAVAILABLE";
    case Code::kTimeout: return "TIMEOUT";
    case Code::kInternal: return "INTERNAL";
    case Code::kAborted: return "ABORTED";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out(code_name(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status invalid_argument(std::string msg) {
  return {Code::kInvalidArgument, std::move(msg)};
}
Status not_found(std::string msg) { return {Code::kNotFound, std::move(msg)}; }
Status already_exists(std::string msg) {
  return {Code::kAlreadyExists, std::move(msg)};
}
Status permission_denied(std::string msg) {
  return {Code::kPermissionDenied, std::move(msg)};
}
Status resource_exhausted(std::string msg) {
  return {Code::kResourceExhausted, std::move(msg)};
}
Status failed_precondition(std::string msg) {
  return {Code::kFailedPrecondition, std::move(msg)};
}
Status unavailable(std::string msg) {
  return {Code::kUnavailable, std::move(msg)};
}
Status timeout_error(std::string msg) {
  return {Code::kTimeout, std::move(msg)};
}
Status internal_error(std::string msg) {
  return {Code::kInternal, std::move(msg)};
}
Status aborted(std::string msg) { return {Code::kAborted, std::move(msg)}; }

}  // namespace shs
