// rng.hpp — deterministic pseudo-random number generation.
//
// Every stochastic element of the simulation (wire-time jitter, control
// plane latency variation, run-to-run noise in the OSU benches) draws from
// a seeded xoshiro256** stream so that tests and figures are reproducible
// bit-for-bit across runs while still exhibiting realistic variance.
#pragma once

#include <cstdint>
#include <limits>

namespace shs {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
/// Small, fast, and statistically strong enough for simulation jitter.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept { reseed(seed); }

  /// Re-initializes state from `seed` via SplitMix64 (recommended seeding).
  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t x = seed;
    for (auto& word : s_) {
      // SplitMix64 step.
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t uniform_u64(std::uint64_t n) noexcept {
    // Power-of-two bounds (common: dragonfly group fan-outs, ring sizes)
    // take a mask instead of the 64-bit divide; the result is exactly
    // next() % n either way, so seeded streams are unaffected.
    const std::uint64_t x = next();
    return (n & (n - 1)) == 0 ? x & (n - 1) : x % n;
  }

  /// Normal variate via Box–Muller (no cached second value; simple and
  /// deterministic given the stream position).
  double normal(double mean, double stddev) noexcept;

  /// Multiplicative jitter factor in [1-amplitude, 1+amplitude].
  double jitter(double amplitude) noexcept {
    return 1.0 + uniform(-amplitude, amplitude);
  }

  /// Derives an independent child stream (for per-component RNGs).
  Rng fork() noexcept { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) noexcept {
    return (v << k) | (v >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

inline double Rng::normal(double mean, double stddev) noexcept {
  // Box–Muller; guard u1 away from 0 to keep log() finite.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  // std::sqrt/std::log/std::cos are constexpr-unfriendly; keep it simple.
  const double r = __builtin_sqrt(-2.0 * __builtin_log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  return mean + stddev * r * __builtin_cos(theta);
}

}  // namespace shs
