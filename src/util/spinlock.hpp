// spinlock.hpp — a tiny test-and-test-and-set spinlock for critical
// sections that are a few dozen nanoseconds long and never block.
//
// The data-plane hot path (switch admission, NIC injection scheduling,
// timing jitter draws) holds its locks for branch-and-array work only —
// no allocation, no I/O, no nested blocking.  For such sections an
// uncontended std::mutex spends more time in lock/unlock bookkeeping
// than the section itself; this lock is a single relaxed load plus one
// acquire exchange on the fast path.  Do NOT use it around anything
// that can block (condition variables, queue waits) — those keep
// std::mutex.
#pragma once

#include <atomic>
#include <thread>

namespace shs {

class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() noexcept {
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      // Test-and-test-and-set: spin on a plain load so waiting cores
      // hammer their cache line, not the interconnect.  After a bounded
      // burst, yield — on an oversubscribed machine the holder may be
      // preempted, and burning the rest of our quantum would only delay
      // its release (pathological on single-core CI runners).
      //
      // The burst budget resets for every contended wait: a thread that
      // loses the race repeatedly still gets its pause burst each time
      // instead of degenerating permanently to yield() after the first
      // 64 pauses of the call.
      int spins = 0;
      while (locked_.load(std::memory_order_relaxed)) {
        if (++spins < 64) {
#if defined(__x86_64__) || defined(__i386__)
          __builtin_ia32_pause();
#endif
        } else {
          std::this_thread::yield();
        }
      }
    }
  }

  bool try_lock() noexcept {
    return !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

}  // namespace shs
