// units.hpp — strong typedefs for time and data-rate quantities.
//
// Virtual time is a 64-bit nanosecond count (`SimTime` / `SimDuration`).
// Keeping it integral makes event ordering total and reproducible; doubles
// would accumulate platform-dependent rounding in long control-plane runs.
#pragma once

#include <cstdint>
#include <string>

namespace shs {

/// Nanoseconds since simulation start.
using SimTime = std::int64_t;
/// Nanosecond span.
using SimDuration = std::int64_t;

constexpr SimDuration kNanosecond = 1;
constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
constexpr SimDuration kSecond = 1000 * kMillisecond;

constexpr double to_seconds(SimDuration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}
constexpr double to_millis(SimDuration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}
constexpr double to_micros(SimDuration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}
constexpr SimDuration from_seconds(double s) noexcept {
  return static_cast<SimDuration>(s * static_cast<double>(kSecond));
}
constexpr SimDuration from_micros(double us) noexcept {
  return static_cast<SimDuration>(us * static_cast<double>(kMicrosecond));
}
constexpr SimDuration from_millis(double ms) noexcept {
  return static_cast<SimDuration>(ms * static_cast<double>(kMillisecond));
}

/// Link or NIC data rate.  Stored in bits per second; Slingshot Cassini
/// ports are 200 Gbps (25 GB/s) per the paper.
class DataRate {
 public:
  constexpr DataRate() = default;
  static constexpr DataRate bits_per_second(std::uint64_t bps) noexcept {
    return DataRate(bps);
  }
  static constexpr DataRate gbps(double g) noexcept {
    return DataRate(static_cast<std::uint64_t>(g * 1e9));
  }
  [[nodiscard]] constexpr std::uint64_t bps() const noexcept { return bps_; }
  [[nodiscard]] constexpr double bytes_per_second() const noexcept {
    return static_cast<double>(bps_) / 8.0;
  }
  /// Serialization (wire) time for `bytes` at this rate.
  [[nodiscard]] constexpr SimDuration transfer_time(
      std::uint64_t bytes) const noexcept {
    if (bps_ == 0) return 0;
    const double seconds =
        static_cast<double>(bytes) * 8.0 / static_cast<double>(bps_);
    return static_cast<SimDuration>(seconds * static_cast<double>(kSecond));
  }

 private:
  constexpr explicit DataRate(std::uint64_t bps) noexcept : bps_(bps) {}
  std::uint64_t bps_ = 0;
};

/// Formats a byte count the way OSU prints message sizes: "1 B" ... "1 MB".
std::string format_size(std::uint64_t bytes);

/// Formats virtual time as "MM:SS" (x-axis of Figs 9 and 11).
std::string format_mmss(SimTime t);

}  // namespace shs
