// log.hpp — minimal thread-safe leveled logger.
//
// Components tag their messages ("cxi-drv", "vni-endpoint", "kubelet/0") so
// integration-test failures read like a cluster journal.  Logging defaults
// to WARN so unit tests and benches stay quiet; examples raise it to INFO.
#pragma once

#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace shs {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global logger configuration and sink.  All methods are thread-safe.
class Log {
 public:
  /// Sets the global threshold; messages below it are dropped.
  static void set_level(LogLevel level) noexcept;
  static LogLevel level() noexcept;

  /// Emits one line: "<level> [<tag>] <message>".
  static void write(LogLevel level, std::string_view tag,
                    std::string_view message);

  /// True if a message at `level` would currently be emitted.
  static bool enabled(LogLevel level) noexcept;
};

namespace detail {
/// Builds the message lazily: the stream only materializes when enabled.
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view tag) : level_(level), tag_(tag) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (Log::enabled(level_)) Log::write(level_, tag_, stream_.str());
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (Log::enabled(level_)) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string tag_;
  std::ostringstream stream_;
};
}  // namespace detail

#define SHS_LOG(level, tag) ::shs::detail::LogLine(level, tag)
#define SHS_TRACE(tag) SHS_LOG(::shs::LogLevel::kTrace, tag)
#define SHS_DEBUG(tag) SHS_LOG(::shs::LogLevel::kDebug, tag)
#define SHS_INFO(tag) SHS_LOG(::shs::LogLevel::kInfo, tag)
#define SHS_WARN(tag) SHS_LOG(::shs::LogLevel::kWarn, tag)
#define SHS_ERROR(tag) SHS_LOG(::shs::LogLevel::kError, tag)

}  // namespace shs
