#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace shs {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_sink_mutex;

constexpr std::string_view level_name(LogLevel l) noexcept {
  switch (l) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

}  // namespace

void Log::set_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Log::level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool Log::enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >=
         g_level.load(std::memory_order_relaxed);
}

void Log::write(LogLevel level, std::string_view tag,
                std::string_view message) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "%.*s [%.*s] %.*s\n",
               static_cast<int>(level_name(level).size()),
               level_name(level).data(), static_cast<int>(tag.size()),
               tag.data(), static_cast<int>(message.size()), message.data());
}

}  // namespace shs
