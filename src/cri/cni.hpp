// cni.hpp — Container Network Interface plugin model (Section II-D).
//
// CNI plugins are invoked by the container runtime with elevated
// permissions while a container is being created (ADD) or torn down
// (DEL).  Chained plugins see the result of the previous plugin and may
// extend it — the paper's CXI plugin is chained after a classic overlay
// plugin (Flannel/Cilium in production; `BridgeCni` here).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "k8s/objects.hpp"
#include "linuxsim/kernel.hpp"
#include "util/status.hpp"
#include "util/units.hpp"

namespace shs::cri {

/// Everything a plugin learns about the container under construction.
/// Mirrors the CNI spec's runtime config + the Kubernetes pod coordinates
/// the CXI plugin needs to query the management plane.
struct CniContext {
  std::string container_id;
  std::string pod_name;
  std::string pod_ns;
  k8s::Uid pod_uid = k8s::kNoUid;
  k8s::Uid owner_job_uid = k8s::kNoUid;
  std::map<std::string, std::string> annotations;
  linuxsim::NetNsInode netns_inode = 0;
  std::shared_ptr<linuxsim::NetNamespace> netns;
  int termination_grace_s = 30;
  /// Result of previously-run plugins in the chain (interface names).
  std::vector<std::string> prev_interfaces;
};

/// Outcome of a plugin's ADD.
struct CniAddResult {
  std::vector<std::string> interfaces;  ///< interfaces this plugin added
  hsn::Vni vni = hsn::kInvalidVni;      ///< VNI granted (CXI plugin only)
  SimDuration cost = 0;                 ///< modeled plugin execution time
};

/// One plugin in the chain.
class CniPlugin {
 public:
  virtual ~CniPlugin() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// ADD: attach networking.  kUnavailable means "retry later" (the pod
  /// must not launch yet).  Must be idempotent: the runtime re-runs the
  /// whole chain on retry.
  virtual Result<CniAddResult> add(const CniContext& ctx) = 0;
  /// DEL: release networking.  Must be idempotent and safe to call even
  /// if ADD never succeeded (per the CNI spec).
  virtual Result<SimDuration> del(const CniContext& ctx) = 0;
};

}  // namespace shs::cri
