// runtime.hpp — per-node container runtime (containerd stand-in).
//
// Owns the node's sandboxes: each pod gets a fresh network namespace and a
// user namespace (container root maps to an unprivileged host UID — the
// precondition of the paper's UID-spoof concern), a pause process, and a
// container process.  Runs the CNI plugin chain on ADD/DEL.  Implements
// k8s::PodRuntime so the kubelet can drive it stage by stage.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cri/cni.hpp"
#include "k8s/params.hpp"
#include "k8s/pod_runtime.hpp"
#include "linuxsim/kernel.hpp"
#include "util/rng.hpp"

namespace shs::cri {

/// Image registry model: the paper pulls `alpine` from a local Harbor
/// registry to keep pull time out of the measurement; unknown images pay
/// a (much) larger remote-pull cost.
struct RegistryModel {
  SimDuration local_pull_cost;
  SimDuration remote_pull_cost;
  std::vector<std::string> local_images{"alpine", "osu-bench", "pause"};

  [[nodiscard]] bool is_local(const std::string& image) const {
    for (const auto& i : local_images) {
      if (i == image) return true;
    }
    return false;
  }
};

/// State of one pod sandbox on this node.
struct Sandbox {
  std::shared_ptr<linuxsim::NetNamespace> netns;
  std::shared_ptr<linuxsim::UserNamespace> userns;
  linuxsim::Pid pause_pid = 0;
  linuxsim::Pid container_pid = 0;
  bool networks_attached = false;
  hsn::Vni vni = hsn::kInvalidVni;
};

class ContainerRuntime final : public k8s::PodRuntime {
 public:
  ContainerRuntime(linuxsim::Kernel& kernel, std::string node,
                   const k8s::K8sParams& params, Rng rng);

  /// Appends a plugin to the CNI chain (invocation order = append order).
  void add_cni_plugin(std::shared_ptr<CniPlugin> plugin);

  // -- k8s::PodRuntime.
  Result<k8s::SandboxInfo> create_sandbox(const k8s::Pod& pod) override;
  Result<k8s::CniAddInfo> attach_networks(const k8s::Pod& pod) override;
  Result<SimDuration> pull_image(const k8s::Pod& pod) override;
  Result<SimDuration> start_container(const k8s::Pod& pod) override;
  Result<SimDuration> stop_container(const k8s::Pod& pod,
                                     SimDuration grace) override;
  Result<SimDuration> detach_networks(const k8s::Pod& pod) override;
  Result<SimDuration> destroy_sandbox(const k8s::Pod& pod) override;

  // -- Introspection for tests / examples.

  /// The sandbox of pod `uid`, or nullptr.
  [[nodiscard]] const Sandbox* sandbox(k8s::Uid uid) const;
  /// Spawns an extra process inside the pod's namespaces ("kubectl exec")
  /// and returns its pid.  Processes run as the container-root UID inside
  /// the pod's user namespace.
  Result<linuxsim::Pid> exec_in_pod(k8s::Uid uid);
  [[nodiscard]] linuxsim::Kernel& kernel() noexcept { return kernel_; }
  [[nodiscard]] std::size_t sandbox_count() const { return sandboxes_.size(); }

  RegistryModel& registry() noexcept { return registry_; }

 private:
  CniContext make_context(const k8s::Pod& pod, const Sandbox& sb) const;
  SimDuration jittered(SimDuration d) {
    return static_cast<SimDuration>(static_cast<double>(d) *
                                    rng_.jitter(params_.jitter_amplitude));
  }

  linuxsim::Kernel& kernel_;
  std::string node_;
  const k8s::K8sParams& params_;
  Rng rng_;
  RegistryModel registry_;
  std::vector<std::shared_ptr<CniPlugin>> chain_;
  std::map<k8s::Uid, Sandbox> sandboxes_;
  /// Host UID base for user-namespace mappings (one range per sandbox).
  linuxsim::Uid next_host_uid_base_ = 100'000;
};

}  // namespace shs::cri
