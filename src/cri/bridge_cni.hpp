// bridge_cni.hpp — the baseline overlay plugin (Flannel/Cilium stand-in).
//
// Creates a veth pair: one end in the container netns, the other on the
// node bridge in the host netns.  Exists so the CXI plugin genuinely runs
// *chained* after another plugin, and to model classic-overlay costs.
#pragma once

#include <cstdint>

#include "cri/cni.hpp"
#include "k8s/params.hpp"
#include "util/rng.hpp"

namespace shs::cri {

class BridgeCni final : public CniPlugin {
 public:
  BridgeCni(linuxsim::Kernel& kernel, const k8s::K8sParams& params, Rng rng)
      : kernel_(kernel), params_(params), rng_(rng) {}

  [[nodiscard]] std::string name() const override { return "bridge"; }

  Result<CniAddResult> add(const CniContext& ctx) override;
  Result<SimDuration> del(const CniContext& ctx) override;

  [[nodiscard]] std::uint64_t veths_created() const noexcept {
    return veths_created_;
  }

 private:
  linuxsim::Kernel& kernel_;
  const k8s::K8sParams& params_;
  Rng rng_;
  std::uint64_t veths_created_ = 0;
};

}  // namespace shs::cri
