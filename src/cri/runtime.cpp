#include "cri/runtime.hpp"

#include <algorithm>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace shs::cri {

namespace {
constexpr const char* kTag = "cri";
}

ContainerRuntime::ContainerRuntime(linuxsim::Kernel& kernel, std::string node,
                                   const k8s::K8sParams& params, Rng rng)
    : kernel_(kernel), node_(std::move(node)), params_(params), rng_(rng) {
  registry_.local_pull_cost = params_.image_pull_cost;
  registry_.remote_pull_cost = params_.image_pull_cost * 25;
}

void ContainerRuntime::add_cni_plugin(std::shared_ptr<CniPlugin> plugin) {
  chain_.push_back(std::move(plugin));
}

CniContext ContainerRuntime::make_context(const k8s::Pod& pod,
                                          const Sandbox& sb) const {
  CniContext ctx;
  ctx.container_id = strfmt("%s-%llu", pod.meta.name.c_str(),
                            static_cast<unsigned long long>(pod.meta.uid));
  ctx.pod_name = pod.meta.name;
  ctx.pod_ns = pod.meta.ns;
  ctx.pod_uid = pod.meta.uid;
  ctx.owner_job_uid = pod.meta.owner_uid;
  ctx.annotations = pod.meta.annotations;
  ctx.netns = sb.netns;
  ctx.netns_inode = sb.netns ? sb.netns->inode() : 0;
  ctx.termination_grace_s = pod.spec.termination_grace_s;
  return ctx;
}

Result<k8s::SandboxInfo> ContainerRuntime::create_sandbox(
    const k8s::Pod& pod) {
  if (sandboxes_.contains(pod.meta.uid)) {
    // Idempotent: the kubelet may retry after a mid-pipeline failure.
    const Sandbox& sb = sandboxes_[pod.meta.uid];
    return k8s::SandboxInfo{sb.netns->inode(), jittered(kMillisecond)};
  }
  Sandbox sb;
  sb.netns = kernel_.create_net_namespace(
      strfmt("pod-%s", pod.meta.name.c_str()));
  // Container user namespace: root (0) inside maps to an unprivileged
  // host range.  This is what makes in-container setuid() harmless to the
  // host yet fatal for UID-based CXI authentication (Section III).
  const linuxsim::Uid base = next_host_uid_base_;
  next_host_uid_base_ += 65'536;
  sb.userns = kernel_.create_user_namespace(
      {{0, base, 65'536}}, {{0, base, 65'536}});
  sb.pause_pid =
      kernel_.spawn({linuxsim::Credentials{0, 0}, sb.userns, sb.netns})->pid();
  sandboxes_.emplace(pod.meta.uid, sb);
  SHS_DEBUG(kTag) << node_ << ": sandbox for " << pod.meta.name << " netns "
                  << sb.netns->inode();
  return k8s::SandboxInfo{sb.netns->inode(),
                          jittered(params_.sandbox_create_cost)};
}

Result<k8s::CniAddInfo> ContainerRuntime::attach_networks(
    const k8s::Pod& pod) {
  const auto it = sandboxes_.find(pod.meta.uid);
  if (it == sandboxes_.end()) {
    return Result<k8s::CniAddInfo>(
        failed_precondition("attach_networks before create_sandbox"));
  }
  Sandbox& sb = it->second;
  CniContext ctx = make_context(pod, sb);
  k8s::CniAddInfo info;
  for (const auto& plugin : chain_) {
    auto r = plugin->add(ctx);
    if (!r.is_ok()) {
      // kUnavailable propagates: the kubelet retries the whole chain,
      // which is why every plugin's ADD must be idempotent.
      return Result<k8s::CniAddInfo>(r.status());
    }
    for (const auto& iface : r.value().interfaces) {
      ctx.prev_interfaces.push_back(iface);
    }
    if (r.value().vni != hsn::kInvalidVni) info.vni = r.value().vni;
    info.cost += r.value().cost;
  }
  sb.networks_attached = true;
  sb.vni = info.vni;
  return info;
}

Result<SimDuration> ContainerRuntime::pull_image(const k8s::Pod& pod) {
  const SimDuration base = registry_.is_local(pod.spec.image)
                               ? registry_.local_pull_cost
                               : registry_.remote_pull_cost;
  return jittered(base);
}

Result<SimDuration> ContainerRuntime::start_container(const k8s::Pod& pod) {
  const auto it = sandboxes_.find(pod.meta.uid);
  if (it == sandboxes_.end()) {
    return Result<SimDuration>(
        failed_precondition("start_container before create_sandbox"));
  }
  Sandbox& sb = it->second;
  if (sb.container_pid == 0) {
    sb.container_pid =
        kernel_.spawn({linuxsim::Credentials{0, 0}, sb.userns, sb.netns})
            ->pid();
  }
  return jittered(params_.container_start_cost);
}

Result<SimDuration> ContainerRuntime::stop_container(const k8s::Pod& pod,
                                                     SimDuration grace) {
  const auto it = sandboxes_.find(pod.meta.uid);
  if (it == sandboxes_.end()) return jittered(kMillisecond);
  Sandbox& sb = it->second;
  if (sb.container_pid != 0) {
    (void)kernel_.kill(sb.container_pid);
    sb.container_pid = 0;
  }
  // An exited container stops instantly; a live one pays the stop cost,
  // never more than the grace period.
  const SimDuration cost =
      std::min<SimDuration>(jittered(params_.container_stop_cost), grace);
  return cost;
}

Result<SimDuration> ContainerRuntime::detach_networks(const k8s::Pod& pod) {
  const auto it = sandboxes_.find(pod.meta.uid);
  if (it == sandboxes_.end()) return jittered(kMillisecond);
  Sandbox& sb = it->second;
  CniContext ctx = make_context(pod, sb);
  SimDuration total = 0;
  // DEL runs in reverse chain order, per the CNI spec.
  for (auto pit = chain_.rbegin(); pit != chain_.rend(); ++pit) {
    auto r = (*pit)->del(ctx);
    if (r.is_ok()) total += r.value();
  }
  sb.networks_attached = false;
  return total;
}

Result<SimDuration> ContainerRuntime::destroy_sandbox(const k8s::Pod& pod) {
  const auto it = sandboxes_.find(pod.meta.uid);
  if (it == sandboxes_.end()) return jittered(kMillisecond);
  Sandbox& sb = it->second;
  if (sb.container_pid != 0) (void)kernel_.kill(sb.container_pid);
  if (sb.pause_pid != 0) (void)kernel_.kill(sb.pause_pid);
  sandboxes_.erase(it);
  return jittered(params_.sandbox_teardown_cost);
}

const Sandbox* ContainerRuntime::sandbox(k8s::Uid uid) const {
  const auto it = sandboxes_.find(uid);
  return it == sandboxes_.end() ? nullptr : &it->second;
}

Result<linuxsim::Pid> ContainerRuntime::exec_in_pod(k8s::Uid uid) {
  const auto it = sandboxes_.find(uid);
  if (it == sandboxes_.end()) {
    return Result<linuxsim::Pid>(not_found("no sandbox for pod"));
  }
  return kernel_
      .spawn({linuxsim::Credentials{0, 0}, it->second.userns,
              it->second.netns})
      ->pid();
}

}  // namespace shs::cri
