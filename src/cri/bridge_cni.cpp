#include "cri/bridge_cni.hpp"

#include "util/strings.hpp"

namespace shs::cri {

Result<CniAddResult> BridgeCni::add(const CniContext& ctx) {
  if (!ctx.netns) {
    return Result<CniAddResult>(
        invalid_argument("bridge CNI: no container netns"));
  }
  const std::string veth_in = "eth0";
  // Host-side name derives from the FULL container id: truncation would
  // collide across pods with common name prefixes.
  const std::string veth_out = strfmt("veth-%s", ctx.container_id.c_str());
  // Idempotency: a retry of the chain must not fail on the existing pair.
  if (!ctx.netns->has_device(veth_in)) {
    if (Status st = ctx.netns->attach_device(veth_in); !st.is_ok()) {
      return Result<CniAddResult>(std::move(st));
    }
    if (Status st = kernel_.host_net_ns()->attach_device(veth_out);
        !st.is_ok()) {
      return Result<CniAddResult>(std::move(st));
    }
    ++veths_created_;
  }
  CniAddResult out;
  out.interfaces = {veth_in, veth_out};
  out.cost = static_cast<SimDuration>(
      static_cast<double>(params_.bridge_cni_add_cost) *
      rng_.jitter(params_.jitter_amplitude));
  return out;
}

Result<SimDuration> BridgeCni::del(const CniContext& ctx) {
  const std::string veth_out = strfmt("veth-%s", ctx.container_id.c_str());
  // Best-effort, idempotent: interfaces may already be gone.
  if (ctx.netns) (void)ctx.netns->detach_device("eth0");
  (void)kernel_.host_net_ns()->detach_device(veth_out);
  return static_cast<SimDuration>(
      static_cast<double>(params_.bridge_cni_del_cost) *
      rng_.jitter(params_.jitter_amplitude));
}

}  // namespace shs::cri
