#include "hsn/fabric.hpp"

namespace shs::hsn {

std::unique_ptr<Fabric> Fabric::create(std::size_t nodes, TimingConfig config,
                                       std::uint64_t seed) {
  auto fabric = std::unique_ptr<Fabric>(new Fabric());
  fabric->timing_ = std::make_shared<TimingModel>(config, seed);
  fabric->switch_ = std::make_shared<RosettaSwitch>(fabric->timing_);
  fabric->nics_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    fabric->nics_.push_back(std::make_unique<CassiniNic>(
        static_cast<NicAddr>(i), fabric->switch_, fabric->timing_));
  }
  return fabric;
}

}  // namespace shs::hsn
