#include "hsn/fabric.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/log.hpp"

namespace shs::hsn {

namespace {
constexpr const char* kTag = "fabric";
}  // namespace

std::unique_ptr<Fabric> Fabric::create(std::size_t nodes, TimingConfig config,
                                       std::uint64_t seed,
                                       TopologyConfig topology) {
  auto fabric = std::unique_ptr<Fabric>(new Fabric());
  fabric->topology_ = topology;
  fabric->timing_ = std::make_shared<TimingModel>(config, seed);

  auto plan = std::make_shared<TopologyPlan>(
      TopologyPlan::build(topology, nodes, seed));
  fabric->nic_home_ = std::make_shared<const std::vector<SwitchId>>(
      std::move(plan->nic_home));
  plan->nic_home.clear();  // switches read the shared nic_home_ instead

  fabric->switches_.reserve(plan->switch_count);
  for (std::size_t i = 0; i < plan->switch_count; ++i) {
    fabric->switches_.push_back(std::make_shared<RosettaSwitch>(
        fabric->timing_, static_cast<SwitchId>(i), seed));
  }
  for (const TopologyPlan::PlannedLink& link : plan->links) {
    const Status st = fabric->switches_.at(link.from)->add_uplink(
        *fabric->switches_.at(link.to), link.rate, link.latency);
    if (!st.is_ok()) {
      // A rejected link means the TopologyPlan violated its own
      // invariants (duplicate or self link).  Failing here is a
      // construction-time bug report; proceeding would degrade into
      // silent kNoRoute drops mid-simulation.
      SHS_ERROR(kTag) << "uplink " << link.from << " -> " << link.to
                      << " failed: " << st;
      std::abort();
    }
  }
  const std::size_t switch_count = plan->switch_count;
  // The fabric manager takes over the plan: it publishes version 0 to
  // every switch now and republishes repaired versions after failures.
  fabric->manager_ = std::make_unique<FabricManager>(
      fabric->switches_, fabric->nic_home_, std::move(*plan));

  // NICs attach last, each to its edge switch, so forwarding state is
  // complete before the first packet can possibly route.  The NIC sends
  // through Fabric::inject and receives through its deliver() hook —
  // the Fabric owns both sides of the wiring.
  fabric->nics_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    const auto addr = static_cast<NicAddr>(i);
    fabric->nics_.push_back(
        std::make_unique<CassiniNic>(addr, *fabric, fabric->timing_));
    const Status st = fabric->switches_.at((*fabric->nic_home_)[i])
                          ->connect(addr, *fabric->nics_.back());
    if (!st.is_ok()) {
      SHS_ERROR(kTag) << "NIC " << addr << " failed to connect: " << st;
      std::abort();
    }
  }
  SHS_DEBUG(kTag) << topology_kind_name(topology.kind) << " fabric: "
                  << nodes << " nodes across " << switch_count
                  << " switches, " << routing_policy_name(topology.routing)
                  << " routing";
  return fabric;
}

Status Fabric::set_link_fault_profile(SwitchId a, SwitchId b,
                                      const FaultProfile& p) {
  if (a >= switches_.size() || b >= switches_.size()) {
    return not_found("no such switch");
  }
  const Status ab = switches_[a]->set_uplink_fault_profile(b, p);
  if (!ab.is_ok()) return ab;
  return switches_[b]->set_uplink_fault_profile(a, p);
}

Status Fabric::add_link_flap(SwitchId a, SwitchId b, SimTime down_from,
                             SimTime down_until) {
  if (a >= switches_.size() || b >= switches_.size()) {
    return not_found("no such switch");
  }
  const Status ab = switches_[a]->add_uplink_flap(b, down_from, down_until);
  if (!ab.is_ok()) return ab;
  return switches_[b]->add_uplink_flap(a, down_from, down_until);
}

ReliabilityCounters Fabric::reliability_totals() const {
  ReliabilityCounters totals;
  for (const auto& nic : nics_) {
    const ReliabilityCounters c = nic->reliability_counters();
    totals.retransmits += c.retransmits;
    totals.duplicates += c.duplicates;
    totals.budget_exhausted += c.budget_exhausted;
    totals.recovered += c.recovered;
    totals.recovered_after_replan += c.recovered_after_replan;
  }
  return totals;
}

std::uint64_t Fabric::total_rx_overflow() const {
  std::uint64_t total = 0;
  for (const auto& nic : nics_) total += nic->counters().rx_overflow;
  return total;
}

SwitchCounters Fabric::total_counters() const {
  SwitchCounters totals;
  for (const auto& sw : switches_) totals += sw->counters();
  return totals;
}

SwitchCounters Fabric::total_counters_for_vni(Vni vni) const {
  SwitchCounters totals;
  for (const auto& sw : switches_) {
    totals += sw->counters_for_vni(vni);
  }
  return totals;
}

std::uint64_t Fabric::cross_switch_bytes() const {
  return total_counters().bytes_forwarded;
}

SimDuration Fabric::max_uplink_lag(SimTime at) const {
  SimDuration worst = 0;
  for (const auto& sw : switches_) {
    worst = std::max(worst, sw->max_uplink_lag(at));
  }
  return worst;
}

SimDuration Fabric::peak_uplink_lag() const {
  SimDuration worst = 0;
  for (const auto& sw : switches_) {
    worst = std::max(worst, sw->peak_uplink_lag());
  }
  return worst;
}

}  // namespace shs::hsn
