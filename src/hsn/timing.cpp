#include "hsn/timing.hpp"

namespace shs::hsn {

SimDuration TimingModel::serialize_time(std::uint64_t bytes) const noexcept {
  return serialize_time(bytes, config_.link_rate);
}

SimDuration TimingModel::serialize_time(std::uint64_t bytes,
                                        DataRate rate) const noexcept {
  // Each frame adds a small header on the wire; model it as 32 bytes.
  constexpr std::uint64_t kFrameHeader = 32;
  const std::uint64_t frames =
      bytes == 0 ? 1 : (bytes + config_.frame_bytes - 1) / config_.frame_bytes;
  const std::uint64_t wire_bytes = bytes + frames * kFrameHeader;
  return rate.transfer_time(wire_bytes);
}

SimDuration TimingModel::hop_latency(TrafficClass tc) {
  return jittered(config_.hop_latency + tc_penalty(tc));
}

SimDuration TimingModel::tx_overhead() {
  return jittered(config_.tx_overhead);
}

SimDuration TimingModel::rx_overhead() {
  return jittered(config_.rx_overhead);
}

SimDuration TimingModel::jittered(SimDuration d) {
  std::lock_guard<std::mutex> lock(mutex_);
  const double factor = run_bias_ * rng_.jitter(config_.jitter_amplitude);
  return static_cast<SimDuration>(static_cast<double>(d) * factor);
}

}  // namespace shs::hsn
