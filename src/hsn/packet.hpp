// packet.hpp — the unit of transfer on the simulated fabric.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hsn/types.hpp"
#include "util/units.hpp"

namespace shs::hsn {

/// A fabric packet.  `size_bytes` is authoritative for timing; `payload`
/// optionally carries real data (correctness tests copy data, the OSU
/// throughput benches send size-only packets to avoid gigabytes of memcpy
/// that would not change the modeled timing).
struct Packet {
  NicAddr src = kInvalidNic;
  NicAddr dst = kInvalidNic;
  EndpointId src_ep = 0;
  EndpointId dst_ep = 0;
  Vni vni = kInvalidVni;
  TrafficClass tc = TrafficClass::kBestEffort;
  PacketOp op = PacketOp::kSend;
  std::uint64_t size_bytes = 0;

  /// Two-sided matching tag (used by the ofi/mpi layers).
  std::uint64_t tag = 0;
  /// Sequence number assigned by the sending endpoint.
  std::uint64_t seq = 0;
  /// Initiator-side operation id, echoed by ACK/response packets so the
  /// initiating NIC can complete the matching operation.
  std::uint64_t op_id = 0;

  /// One-sided ops: target memory-region key and offset.
  RKey rkey = 0;
  std::uint64_t mr_offset = 0;

  /// Virtual timestamps: when the sender injected the packet and when the
  /// fabric delivered it (computed by the switch's timing model).
  SimTime inject_vt = 0;
  SimTime arrival_vt = 0;

  std::vector<std::byte> payload;
};

/// Per-VNI / per-port drop and delivery accounting, exposed by the switch.
struct SwitchCounters {
  std::uint64_t delivered = 0;
  std::uint64_t dropped_src_unauthorized = 0;
  std::uint64_t dropped_dst_unauthorized = 0;
  std::uint64_t dropped_unknown_dst = 0;
  std::uint64_t bytes_delivered = 0;

  [[nodiscard]] std::uint64_t dropped_total() const noexcept {
    return dropped_src_unauthorized + dropped_dst_unauthorized +
           dropped_unknown_dst;
  }
};

}  // namespace shs::hsn
