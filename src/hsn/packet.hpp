// packet.hpp — the unit of transfer on the simulated fabric.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hsn/types.hpp"
#include "util/units.hpp"

namespace shs::hsn {

/// A fabric packet.  `size_bytes` is authoritative for timing; `payload`
/// optionally carries real data (correctness tests copy data, the OSU
/// throughput benches send size-only packets to avoid gigabytes of memcpy
/// that would not change the modeled timing).
struct Packet {
  NicAddr src = kInvalidNic;
  NicAddr dst = kInvalidNic;
  EndpointId src_ep = 0;
  EndpointId dst_ep = 0;
  Vni vni = kInvalidVni;
  TrafficClass tc = TrafficClass::kBestEffort;
  PacketOp op = PacketOp::kSend;
  std::uint64_t size_bytes = 0;

  /// Two-sided matching tag (used by the ofi/mpi layers).
  std::uint64_t tag = 0;
  /// Sequence number assigned by the sending endpoint.
  std::uint64_t seq = 0;
  /// Initiator-side operation id, echoed by ACK/response packets so the
  /// initiating NIC can complete the matching operation.
  std::uint64_t op_id = 0;

  /// One-sided ops: target memory-region key and offset.
  RKey rkey = 0;
  std::uint64_t mr_offset = 0;

  /// Virtual timestamps: when the sender injected the packet and when the
  /// fabric delivered it (computed by the switch's timing model).  On a
  /// multi-switch fabric `inject_vt` advances at every inter-switch hop
  /// (it is the ingress time at the current switch).
  SimTime inject_vt = 0;
  SimTime arrival_vt = 0;

  /// Inter-switch hops taken so far (0 = delivered by the ingress switch).
  std::uint8_t hops = 0;

  /// Valiant/UGAL detour marker: intermediate switch this packet must
  /// traverse before heading to its destination (kInvalidSwitch = route
  /// minimally).  Set by the source edge switch's routing decision and
  /// cleared when the packet reaches the intermediate.
  SwitchId via_switch = kInvalidSwitch;

  /// Set by the sending NIC's reliability layer: retransmitted copies
  /// keep the original `seq`, and the receiving NIC suppresses
  /// duplicates of (src, seq) pairs it has already accepted.  The fault
  /// model also keys its ACK-loss draw off this bit (losing the
  /// link-level ACK of an unreliable packet is indistinguishable from
  /// losing the packet).
  bool reliable = false;

  /// Serialization-time cache: wire time is a pure function of
  /// (size_bytes, link rate), and every link a packet crosses usually
  /// runs at the same rate — so switches compute it once per path and
  /// carry it here (0 = not yet computed).  Purely an optimization
  /// artifact: never serialized, never observable.
  std::uint64_t ser_cache_bps = 0;
  SimDuration ser_cache = 0;

  std::vector<std::byte> payload;
};

/// Per-VNI / per-port drop and delivery accounting, exposed by the switch.
struct SwitchCounters {
  std::uint64_t delivered = 0;
  std::uint64_t dropped_src_unauthorized = 0;
  std::uint64_t dropped_dst_unauthorized = 0;
  std::uint64_t dropped_unknown_dst = 0;
  std::uint64_t dropped_no_route = 0;  ///< no uplink / TTL exhausted
  /// Packets lost to a dead link or failed switch: in flight when the
  /// failure hit, or routed in the window before the fabric manager
  /// republished repaired tables.
  std::uint64_t dropped_link_down = 0;
  /// Fault-model losses (see docs/reliability.md): probabilistic drop on
  /// a lossy link, and CRC-detected corruption discarded at the next
  /// hop.  Both zero unless a FaultProfile has been armed.
  std::uint64_t dropped_loss = 0;
  std::uint64_t dropped_corrupt = 0;
  /// Packets that could only make progress under a plan epoch the fabric
  /// manager has committed but this switch has not applied yet (the
  /// staggered-publish window): the drop site saw no route / a dead next
  /// hop while its CompiledPlan version lagged the committed epoch.
  /// Counted, never silent — retransmits carry the op across the epoch.
  std::uint64_t dropped_stale_epoch = 0;
  /// Reliable packets that WERE delivered but whose link-level ACK was
  /// lost on the way back: the receiver has the data, the sender sees a
  /// failure and retransmits (the duplicate is suppressed NIC-side).
  /// Not a drop — excluded from dropped_total().
  std::uint64_t ack_lost = 0;
  std::uint64_t bytes_delivered = 0;
  /// Transit traffic handed to an inter-switch uplink by this switch.
  std::uint64_t forwarded = 0;
  std::uint64_t bytes_forwarded = 0;
  /// Packets this switch (as source edge) sent on a non-minimal Valiant
  /// detour — adaptive-routing telemetry (0 under kMinimal; under kUgal
  /// it counts only packets whose estimated minimal delay lost).
  std::uint64_t routed_nonminimal = 0;

  [[nodiscard]] std::uint64_t dropped_total() const noexcept {
    return dropped_src_unauthorized + dropped_dst_unauthorized +
           dropped_unknown_dst + dropped_no_route + dropped_link_down +
           dropped_loss + dropped_corrupt + dropped_stale_epoch;
  }

  SwitchCounters& operator+=(const SwitchCounters& c) noexcept {
    delivered += c.delivered;
    dropped_src_unauthorized += c.dropped_src_unauthorized;
    dropped_dst_unauthorized += c.dropped_dst_unauthorized;
    dropped_unknown_dst += c.dropped_unknown_dst;
    dropped_no_route += c.dropped_no_route;
    dropped_link_down += c.dropped_link_down;
    dropped_loss += c.dropped_loss;
    dropped_corrupt += c.dropped_corrupt;
    dropped_stale_epoch += c.dropped_stale_epoch;
    ack_lost += c.ack_lost;
    bytes_delivered += c.bytes_delivered;
    forwarded += c.forwarded;
    bytes_forwarded += c.bytes_forwarded;
    routed_nonminimal += c.routed_nonminimal;
    return *this;
  }
};

/// Per-uplink transit accounting (directed link).
struct LinkCounters {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  /// Worst queue lag observed at forward time: how far the link's
  /// bandwidth horizon was ahead of the packet's arrival (the congestion
  /// signal adaptive routing steers by).
  SimDuration peak_queue_lag = 0;
};

}  // namespace shs::hsn
