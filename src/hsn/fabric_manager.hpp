// fabric_manager.hpp — the Slingshot fabric manager's fault-handling
// plane.
//
// Real Slingshot fabrics lose links and switches routinely; the fabric
// manager (a host-side service on real systems) observes those failures,
// recomputes routes around the dead elements, and reprograms every
// switch — without touching the VNI enforcement state, so tenant
// isolation holds across the failure and the detours it causes.
//
// This class implements exactly that control loop over the simulated
// fabric:
//   * fail_link / fail_switch mark the data plane down *immediately*
//     (packets committed to a dead element drop, counted as
//     dropped_link_down — the in-flight loss window real fabrics see);
//   * repair() derives a new TopologyPlan version from the pristine
//     build via TopologyPlan::replan (BFS over surviving links, seeded
//     next-hop re-derivation) and pushes it to every switch;
//   * with auto-repair on (the default, for direct Fabric users) every
//     injection/restore repairs synchronously; the SlingshotStack turns
//     it off and schedules repair() after a configurable detection +
//     reprogramming delay, which opens an honest loss window and yields
//     the stack's re-route latency metric.
//
// Control-plane robustness (docs/fault_tolerance.md, "Control-plane
// fault tolerance"):
//   * Staggered publish: set_publish_stagger switches publishing from the
//     atomic everywhere-at-once swap to per-switch apply waves with a
//     seeded per-switch delay.  The fabric manager first *commits* the
//     new epoch (a shared atomic every switch reads), then applies the
//     compiled plan switch by switch — drivers drain the waves either at
//     ShardEngine barriers (apply_next_publish_wave) or from the event
//     loop (apply_publishes_older_than).  While a switch's applied plan
//     lags the committed epoch, its epoch-curable drops are counted as
//     DropReason::kStaleEpoch.
//   * Crash/restart: attach_journal records every failure event and
//     publish intent in a db::Database redo journal; arm_crash injects a
//     controller kill at a chosen crash-point; restart() replays the
//     journal, sweeps the data-plane hardware state for unjournaled
//     events, completes any half-published plan, and converges to a
//     state byte-identical to an uncrashed run.
//   * While crashed, the manager stops journaling and republishing but
//     the data plane keeps routing on each switch's last-applied plan;
//     physical failure injections still program the switches (dead
//     silicon does not wait for software).
//
// VNI enforcement is deliberately out of scope: ACLs live on the edge
// switches and are untouched by republishing, so a detoured packet is
// still checked at both edges.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <variant>
#include <vector>

#include "hsn/rosetta_switch.hpp"
#include "hsn/topology.hpp"
#include "hsn/types.hpp"
#include "util/status.hpp"

namespace shs::db {
class Database;
}

namespace shs::hsn {

/// Staggered-publish configuration.  Disabled (the default) keeps the
/// legacy instantaneous swap bit-identical.  When enabled, each publish
/// assigns every switch a deterministic apply delay in
/// [0, max_delay] drawn from (seed, plan version, switch id).
struct PublishStagger {
  bool enabled = false;
  SimDuration max_delay = 0;
  std::uint64_t seed = 0x57a6;
};

/// Control-plane crash injection: where in the repair/publish sequence
/// the next repair "loses power".  One-shot: the armed point fires once
/// and the manager enters the crashed state until restart().
struct ControlPlaneFaultProfile {
  enum class CrashPoint : std::uint8_t {
    kNone = 0,
    /// Before the publish intent reaches the journal: the failure events
    /// are journaled but the replan is not — restart leaves the repair
    /// pending and a subsequent repair() converges.
    kBeforeJournal,
    /// Intent journaled, nothing recomputed or programmed yet.
    kAfterJournal,
    /// Plan recomputed in memory, no switch reprogrammed.
    kBeforePublish,
    /// Mid-publish: `publish_after_switches` switches carry the new plan,
    /// the rest still route the old one (instant mode); in stagger mode
    /// the waves are staged but never drained.  Restart replays the
    /// half-published plan onto every switch.
    kMidPublish,
    /// Everything published; the crash hits after completion.
    kAfterPublish,
  };
  CrashPoint point = CrashPoint::kNone;
  /// kMidPublish, instant mode: switches that receive the new plan
  /// before the crash.
  std::size_t publish_after_switches = 0;
};

class FabricManager {
 public:
  /// `base_plan` must be the pristine version-0 plan the switches were
  /// wired from (its `links` list is the ground-truth cabling).  The
  /// constructor publishes it to every switch.
  FabricManager(std::vector<std::shared_ptr<RosettaSwitch>> switches,
                std::shared_ptr<const std::vector<SwitchId>> nic_home,
                TopologyPlan base_plan);
  FabricManager(const FabricManager&) = delete;
  FabricManager& operator=(const FabricManager&) = delete;

  // -- Failure injection / recovery.  Links are physical: failing (a, b)
  //    kills both directions.  Each call marks the data plane first and
  //    then repairs (synchronously iff auto-repair is on).

  Status fail_link(SwitchId a, SwitchId b);
  Status restore_link(SwitchId a, SwitchId b);
  Status fail_switch(SwitchId s);
  Status restore_switch(SwitchId s);

  /// Synchronous repair on every fail_*/restore_* when on (default).
  /// The SlingshotStack turns this off and drives repair() from the
  /// event loop to model detection + reprogramming time.
  void set_auto_repair(bool on);

  /// Recomputes routes around the current failure set and pushes the
  /// repaired tables to all switches.  Returns the published version.
  std::uint64_t repair();

  /// repair() only when an unrepaired failure/restore is outstanding;
  /// otherwise a no-op returning the current version.  What NIC
  /// retransmit hooks call between attempts: an idempotent nudge that
  /// never bumps the plan version of a healthy fabric.
  std::uint64_t repair_if_pending();

  // -- Staggered publish (see PublishStagger).

  void set_publish_stagger(const PublishStagger& s);
  /// True while staged per-switch applies are outstanding.  Lock-free —
  /// this is the one-relaxed-load idle check on the ShardEngine barrier
  /// path.
  [[nodiscard]] bool publish_pending() const noexcept {
    return publish_pending_.load(std::memory_order_relaxed);
  }
  /// Applies the earliest-delay wave of staged publishes (all switches
  /// sharing the minimum outstanding delay).  Called with the data plane
  /// quiescent (ShardEngine barriers) so the wave boundary is
  /// deterministic and thread-count invariant.
  void apply_next_publish_wave();
  /// Applies every staged publish with delay <= `d`, provided `gen`
  /// still names the staging generation (stale event-loop callbacks from
  /// a superseded publish are ignored).
  void apply_publishes_older_than(SimDuration d, std::uint64_t gen);
  /// Drains every staged publish immediately.
  void apply_all_publishes();
  [[nodiscard]] std::size_t pending_publish_count() const;
  /// Distinct outstanding apply delays, ascending — what the stack
  /// schedules event-loop callbacks for.
  [[nodiscard]] std::vector<SimDuration> pending_publish_delays() const;
  /// Bumped every time a publish (re)stages waves; restart() bumps it
  /// too so scheduled callbacks from before the crash are ignored.
  [[nodiscard]] std::uint64_t publish_generation() const;
  /// The plan epoch the manager has committed (switch applies may lag).
  [[nodiscard]] std::uint64_t committed_epoch() const noexcept;

  // -- Crash/restart (see ControlPlaneFaultProfile).

  /// Records every failure event and publish intent in `db` (table
  /// "fm_journal", created if absent).  The database must outlive the
  /// manager.  Journal writes tolerate database faults (logged, never
  /// fatal to the control loop).
  void attach_journal(db::Database& db);
  /// Arms a one-shot crash at the given point of the next repair.
  void arm_crash(const ControlPlaneFaultProfile& profile);
  [[nodiscard]] bool crashed() const;
  /// Recovers a crashed manager: recovers the journal database if it
  /// crashed too, replays the journal to the last published plan
  /// (recomputed deterministically, so byte-identical to the uncrashed
  /// publish), sweeps switch hardware state for failures injected while
  /// down (re-journaling the delta), completes any half-published plan
  /// with an instant publish to every switch, and leaves repair_pending
  /// set iff failures accumulated past the last publish.  Fails on a
  /// manager that has not crashed.
  Status restart();
  /// Successful restart() recoveries so far.
  [[nodiscard]] std::size_t recovered_publishes() const;

  // -- Observation.
  [[nodiscard]] SwitchHealth switch_health(SwitchId s) const;
  [[nodiscard]] bool link_up(SwitchId a, SwitchId b) const;
  /// The currently published plan (never null).
  [[nodiscard]] std::shared_ptr<const TopologyPlan> plan() const;
  /// The pristine version-0 plan — the fabric's ground-truth cabling,
  /// immutable for the manager's lifetime (no lock needed).  Failure
  /// state never edits it; repairs re-derive from it.  The sharded
  /// data-plane engine reads link latencies from here so its lookahead
  /// windows survive replans unchanged.
  [[nodiscard]] std::shared_ptr<const TopologyPlan> base_plan()
      const noexcept {
    return base_;
  }
  /// The flat-table compilation of the published plan — what switches
  /// route by (never null; same version as plan()).
  [[nodiscard]] std::shared_ptr<const CompiledPlan> compiled_plan() const;
  [[nodiscard]] std::uint64_t plan_version() const;
  /// Repairs published so far (0 on a healthy-from-birth fabric).
  [[nodiscard]] std::size_t replans() const;
  /// True when a failure/restore has not been repaired yet (the loss
  /// window is open).
  [[nodiscard]] bool repair_pending() const;
  [[nodiscard]] std::size_t failed_link_count() const;
  [[nodiscard]] std::size_t failed_switch_count() const;

 private:
  struct PendingApply {
    SimDuration delay = 0;
    SwitchId sw = 0;
  };

  /// Applies the effective up/down state of both directions of the
  /// physical link (a, b) to the owning switches.  Caller holds mutex_.
  void sync_link_state_locked(SwitchId a, SwitchId b);
  std::uint64_t repair_locked();
  /// Compiles `current_` into flat tables, commits the epoch, and either
  /// swaps the snapshot into every switch (instant mode) or stages
  /// per-switch apply waves (stagger mode).  Reuses the retired compiled
  /// buffers from two publishes ago when no switch references them
  /// anymore.  Honors an armed kMidPublish crash.  Caller holds mutex_.
  void publish_locked();
  /// Instant-mode publish of `current_` to every switch, no crash
  /// points, clearing any staged waves — the restart recovery path.
  /// Caller holds mutex_.
  void publish_all_now_locked();
  /// Installs the live compiled snapshot on switch `sw`.  Caller holds
  /// mutex_.
  void apply_to_switch_locked(SwitchId sw);
  /// Stages one PendingApply per switch with its seeded delay, sorted by
  /// (delay, switch id).  Caller holds mutex_.
  void stage_publish_locked();
  /// One-shot transition into the crashed state.  Caller holds mutex_.
  void enter_crash_locked();
  /// Appends `rows` to the journal in one transaction; no-op without an
  /// attached (healthy) journal database.  Caller holds mutex_.
  void journal_rows_locked(const std::vector<std::vector<
                               std::variant<std::monostate, std::int64_t,
                                            std::string>>>& rows);
  [[nodiscard]] bool has_link_locked(SwitchId from, SwitchId to) const;

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<RosettaSwitch>> switches_;
  std::shared_ptr<const std::vector<SwitchId>> nic_home_;
  /// Pristine wiring, version 0 — also the initially published plan.
  const std::shared_ptr<const TopologyPlan> base_;
  /// Directed link keys of base_.links — O(1) existence checks.
  std::unordered_set<std::uint64_t> link_keys_;
  /// Physical neighbors per switch (each cable listed once per end),
  /// ascending — one sync per cable on switch fail/restore.
  std::vector<std::vector<SwitchId>> adjacent_;
  std::shared_ptr<const TopologyPlan> current_;
  /// Compiled snapshot currently installed on every switch, and the
  /// previous one — once all switches have swapped, `retired_` is the
  /// only owner left and its buffers are recycled at the next publish
  /// (steady-state republishing allocates nothing new).
  std::shared_ptr<CompiledPlan> live_compiled_;
  std::shared_ptr<CompiledPlan> retired_compiled_;
  /// BFS/adjacency workspace reused across replans.
  PlanScratch replan_scratch_;
  FailureSet failures_;
  bool auto_repair_ = true;
  bool repair_pending_ = false;
  std::uint64_t version_ = 0;
  std::size_t replans_ = 0;

  // -- Staggered publish.
  PublishStagger stagger_;
  /// The committed plan epoch, shared with every switch (see
  /// RosettaSwitch::set_committed_epoch_source).
  std::shared_ptr<std::atomic<std::uint64_t>> committed_epoch_cell_;
  std::atomic<bool> publish_pending_{false};
  /// Staged per-switch applies, ascending (delay, switch id).
  std::vector<PendingApply> pending_applies_;
  std::uint64_t publish_seq_ = 0;

  // -- Crash/restart.
  db::Database* journal_db_ = nullptr;
  ControlPlaneFaultProfile crash_profile_;
  bool crashed_ = false;
  std::size_t recovered_publishes_ = 0;
};

}  // namespace shs::hsn
