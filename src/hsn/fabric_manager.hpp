// fabric_manager.hpp — the Slingshot fabric manager's fault-handling
// plane.
//
// Real Slingshot fabrics lose links and switches routinely; the fabric
// manager (a host-side service on real systems) observes those failures,
// recomputes routes around the dead elements, and reprograms every
// switch — without touching the VNI enforcement state, so tenant
// isolation holds across the failure and the detours it causes.
//
// This class implements exactly that control loop over the simulated
// fabric:
//   * fail_link / fail_switch mark the data plane down *immediately*
//     (packets committed to a dead element drop, counted as
//     dropped_link_down — the in-flight loss window real fabrics see);
//   * repair() derives a new TopologyPlan version from the pristine
//     build via TopologyPlan::replan (BFS over surviving links, seeded
//     next-hop re-derivation) and pushes it to every switch;
//   * with auto-repair on (the default, for direct Fabric users) every
//     injection/restore repairs synchronously; the SlingshotStack turns
//     it off and schedules repair() after a configurable detection +
//     reprogramming delay, which opens an honest loss window and yields
//     the stack's re-route latency metric.
//
// VNI enforcement is deliberately out of scope: ACLs live on the edge
// switches and are untouched by republishing, so a detoured packet is
// still checked at both edges.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "hsn/rosetta_switch.hpp"
#include "hsn/topology.hpp"
#include "hsn/types.hpp"
#include "util/status.hpp"

namespace shs::hsn {

class FabricManager {
 public:
  /// `base_plan` must be the pristine version-0 plan the switches were
  /// wired from (its `links` list is the ground-truth cabling).  The
  /// constructor publishes it to every switch.
  FabricManager(std::vector<std::shared_ptr<RosettaSwitch>> switches,
                std::shared_ptr<const std::vector<SwitchId>> nic_home,
                TopologyPlan base_plan);
  FabricManager(const FabricManager&) = delete;
  FabricManager& operator=(const FabricManager&) = delete;

  // -- Failure injection / recovery.  Links are physical: failing (a, b)
  //    kills both directions.  Each call marks the data plane first and
  //    then repairs (synchronously iff auto-repair is on).

  Status fail_link(SwitchId a, SwitchId b);
  Status restore_link(SwitchId a, SwitchId b);
  Status fail_switch(SwitchId s);
  Status restore_switch(SwitchId s);

  /// Synchronous repair on every fail_*/restore_* when on (default).
  /// The SlingshotStack turns this off and drives repair() from the
  /// event loop to model detection + reprogramming time.
  void set_auto_repair(bool on);

  /// Recomputes routes around the current failure set and pushes the
  /// repaired tables to all switches.  Returns the published version.
  std::uint64_t repair();

  /// repair() only when an unrepaired failure/restore is outstanding;
  /// otherwise a no-op returning the current version.  What NIC
  /// retransmit hooks call between attempts: an idempotent nudge that
  /// never bumps the plan version of a healthy fabric.
  std::uint64_t repair_if_pending();

  // -- Observation.
  [[nodiscard]] SwitchHealth switch_health(SwitchId s) const;
  [[nodiscard]] bool link_up(SwitchId a, SwitchId b) const;
  /// The currently published plan (never null).
  [[nodiscard]] std::shared_ptr<const TopologyPlan> plan() const;
  /// The pristine version-0 plan — the fabric's ground-truth cabling,
  /// immutable for the manager's lifetime (no lock needed).  Failure
  /// state never edits it; repairs re-derive from it.  The sharded
  /// data-plane engine reads link latencies from here so its lookahead
  /// windows survive replans unchanged.
  [[nodiscard]] std::shared_ptr<const TopologyPlan> base_plan()
      const noexcept {
    return base_;
  }
  /// The flat-table compilation of the published plan — what switches
  /// route by (never null; same version as plan()).
  [[nodiscard]] std::shared_ptr<const CompiledPlan> compiled_plan() const;
  [[nodiscard]] std::uint64_t plan_version() const;
  /// Repairs published so far (0 on a healthy-from-birth fabric).
  [[nodiscard]] std::size_t replans() const;
  /// True when a failure/restore has not been repaired yet (the loss
  /// window is open).
  [[nodiscard]] bool repair_pending() const;
  [[nodiscard]] std::size_t failed_link_count() const;
  [[nodiscard]] std::size_t failed_switch_count() const;

 private:
  /// Applies the effective up/down state of both directions of the
  /// physical link (a, b) to the owning switches.  Caller holds mutex_.
  void sync_link_state_locked(SwitchId a, SwitchId b);
  std::uint64_t repair_locked();
  /// Compiles `current_` into flat tables and swaps the snapshot into
  /// every switch.  Reuses the retired compiled buffers from two
  /// publishes ago when no switch references them anymore.  Caller
  /// holds mutex_.
  void publish_locked();
  [[nodiscard]] bool has_link_locked(SwitchId from, SwitchId to) const;

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<RosettaSwitch>> switches_;
  std::shared_ptr<const std::vector<SwitchId>> nic_home_;
  /// Pristine wiring, version 0 — also the initially published plan.
  const std::shared_ptr<const TopologyPlan> base_;
  /// Directed link keys of base_.links — O(1) existence checks.
  std::unordered_set<std::uint64_t> link_keys_;
  /// Physical neighbors per switch (each cable listed once per end),
  /// ascending — one sync per cable on switch fail/restore.
  std::vector<std::vector<SwitchId>> adjacent_;
  std::shared_ptr<const TopologyPlan> current_;
  /// Compiled snapshot currently installed on every switch, and the
  /// previous one — once all switches have swapped, `retired_` is the
  /// only owner left and its buffers are recycled at the next publish
  /// (steady-state republishing allocates nothing new).
  std::shared_ptr<CompiledPlan> live_compiled_;
  std::shared_ptr<CompiledPlan> retired_compiled_;
  /// BFS/adjacency workspace reused across replans.
  PlanScratch replan_scratch_;
  FailureSet failures_;
  bool auto_repair_ = true;
  bool repair_pending_ = false;
  std::uint64_t version_ = 0;
  std::size_t replans_ = 0;
};

}  // namespace shs::hsn
