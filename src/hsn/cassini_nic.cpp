#include "hsn/cassini_nic.hpp"

#include <algorithm>

#include "hsn/fabric.hpp"
#include <chrono>
#include <cstring>
#include <optional>
#include <utility>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace shs::hsn {

namespace {
constexpr const char* kTag = "cassini";

Status drop_status(DropReason r) {
  switch (r) {
    case DropReason::kSrcNotAuthorized:
      return permission_denied("switch: source port not authorized for VNI");
    case DropReason::kDstNotAuthorized:
      return permission_denied(
          "switch: destination port not authorized for VNI");
    case DropReason::kUnknownDestination:
      return not_found("switch: no NIC at destination address");
    case DropReason::kNoRoute:
      return unavailable("switch: no route to destination switch");
    case DropReason::kLinkDown:
      return unavailable("switch: dead link or failed switch on the path");
    case DropReason::kLossInjected:
      return unavailable("fabric: packet lost on a lossy link");
    case DropReason::kCorrupt:
      return unavailable("fabric: packet corrupted in transit");
    case DropReason::kAckLost:
      return unavailable("fabric: delivery unacknowledged (ACK lost)");
    case DropReason::kRxOverflow:
      return resource_exhausted("nic: receiver RX ring overflow");
    case DropReason::kStaleEpoch:
      return unavailable("switch: routing plan lags the committed epoch");
    case DropReason::kNone:
      break;
  }
  return internal_error("unexpected drop reason");
}
}  // namespace

CassiniNic::CassiniNic(NicAddr addr, InjectFn inject,
                       std::shared_ptr<TimingModel> timing, NicLimits limits)
    : addr_(addr), inject_(std::move(inject)), timing_(std::move(timing)),
      limits_(limits) {
  ep_spines_.push_back(std::make_unique<EpSpine>(4));
  ep_spine_.store(ep_spines_.back().get(), std::memory_order_release);
  if (!inject_) {
    SHS_ERROR(kTag) << "NIC " << addr_ << " built without injection path";
  }
}

CassiniNic::CassiniNic(NicAddr addr, Fabric& fabric,
                       std::shared_ptr<TimingModel> timing, NicLimits limits)
    : addr_(addr), fabric_(&fabric), timing_(std::move(timing)),
      limits_(limits) {
  ep_spines_.push_back(std::make_unique<EpSpine>(4));
  ep_spine_.store(ep_spines_.back().get(), std::memory_order_release);
}

RouteResult CassiniNic::inject(Packet&& p) {
  if (fabric_ != nullptr) return fabric_->inject(std::move(p));
  return inject_(std::move(p));
}

CassiniNic::~CassiniNic() {
  // Wake any blocked waiters before tearing down.  The Fabric owns the
  // switch-side port wiring; nothing to detach here.
  for (const auto& ep : ep_owned_) {
    {
      std::lock_guard<SpinLock> ep_lock(ep->qlock);
      ep->closed = true;
    }
    std::lock_guard<std::mutex> wl(ep->wmutex);
    ep->cv.notify_all();
  }
}

std::atomic<CassiniNic::Endpoint*>& CassiniNic::ep_slot_locked(
    EndpointId id) {
  const std::size_t chunk = id / kEpChunkSize;
  EpSpine* spine = ep_spine_.load(std::memory_order_relaxed);
  if (chunk >= spine->chunks.size()) {
    // Grow the spine by generations; the old one stays alive (and
    // valid) for any reader that loaded it a moment ago.
    const std::size_t grown = std::max(chunk + 1, spine->chunks.size() * 2);
    auto next = std::make_unique<EpSpine>(grown);
    for (std::size_t i = 0; i < spine->chunks.size(); ++i) {
      next->chunks[i].store(spine->chunks[i].load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    }
    ep_spines_.push_back(std::move(next));
    spine = ep_spines_.back().get();
    ep_spine_.store(spine, std::memory_order_release);
  }
  if (spine->chunks[chunk].load(std::memory_order_relaxed) == nullptr) {
    ep_chunks_.push_back(std::make_unique<EpChunk>());
    spine->chunks[chunk].store(ep_chunks_.back().get(),
                               std::memory_order_release);
  }
  return spine->chunks[chunk].load(std::memory_order_relaxed)
      ->slots[id % kEpChunkSize];
}

Result<EndpointId> CassiniNic::alloc_endpoint(Vni vni, TrafficClass tc) {
  if (vni == kInvalidVni) {
    return Result<EndpointId>(invalid_argument("VNI 0 is reserved"));
  }
  std::lock_guard<SpinLock> lock(mutex_);
  if (endpoint_count_ >= limits_.max_endpoints) {
    return Result<EndpointId>(
        resource_exhausted(strfmt("NIC %u endpoint limit (%u) reached", addr_,
                                  limits_.max_endpoints)));
  }
  const EndpointId id = next_ep_++;
  auto ep = std::make_shared<Endpoint>();
  ep->vni = vni;
  ep->tc = tc;
  // Publish: the release store makes the fully-built Endpoint visible to
  // the lock-free readers.
  std::atomic<Endpoint*>& slot = ep_slot_locked(id);
  ep_owned_.push_back(ep);
  slot.store(ep.get(), std::memory_order_release);
  ++endpoint_count_;
  SHS_DEBUG(kTag) << "NIC " << addr_ << " allocated EP " << id << " on VNI "
                  << vni;
  return id;
}

Status CassiniNic::free_endpoint(EndpointId id) {
  Endpoint* ep = nullptr;
  {
    // mr_mutex_ is the OUTER lock (the documented order): the spinlock
    // section inside stays nanoseconds-long and never blocks, and
    // holding mr_mutex_ across slot-null + MR sweep serializes this
    // whole teardown against register_mr's lookup + insert.
    std::lock_guard<std::mutex> mr_lock(mr_mutex_);
    {
      std::lock_guard<SpinLock> lock(mutex_);
      ep = find_ep(id);
      if (ep == nullptr) {
        return not_found(strfmt("NIC %u: no endpoint %u", addr_, id));
      }
      // Ids are never reused; the slot stays empty.  The object itself
      // stays parked in ep_owned_ so a racing reader is never left with
      // a dangling pointer.
      ep_slot_locked(id).store(nullptr, std::memory_order_release);
      --endpoint_count_;
    }
    // Registered MRs die with the endpoint, as the driver would enforce.
    for (auto mr_it = mrs_.begin(); mr_it != mrs_.end();) {
      if (mr_it->second.ep == id) {
        mr_it = mrs_.erase(mr_it);
      } else {
        ++mr_it;
      }
    }
  }
  {
    std::lock_guard<SpinLock> ep_lock(ep->qlock);
    ep->closed = true;
  }
  std::lock_guard<std::mutex> wl(ep->wmutex);
  ep->cv.notify_all();
  return Status::ok();
}

std::size_t CassiniNic::endpoint_count() const {
  std::lock_guard<SpinLock> lock(mutex_);
  return endpoint_count_;
}

Vni CassiniNic::endpoint_vni(EndpointId id) const {
  const auto ep = find_ep(id);
  return ep ? ep->vni : kInvalidVni;
}

CassiniNic::Endpoint* CassiniNic::find_ep(EndpointId id) const {
  // Lock-free read: three dependent acquire loads (spine -> chunk ->
  // slot) — the steady-state fast path for every send and receive, with
  // no lock and no refcount traffic.
  const EpSpine* spine = ep_spine_.load(std::memory_order_acquire);
  const std::size_t chunk = id / kEpChunkSize;
  if (chunk >= spine->chunks.size()) return nullptr;
  const EpChunk* c = spine->chunks[chunk].load(std::memory_order_acquire);
  if (c == nullptr) return nullptr;
  return c->slots[id % kEpChunkSize].load(std::memory_order_acquire);
}

Result<RKey> CassiniNic::register_mr(EndpointId ep_id,
                                     std::span<std::byte> region) {
  // mr_mutex_ serializes the lookup + insert against free_endpoint's
  // slot-null + MR sweep (which also runs under mr_mutex_), so no MR
  // can be registered against an endpoint being freed and then outlive
  // the per-endpoint sweep.  No spinlock is held across this blocking
  // section.
  std::lock_guard<std::mutex> mr_lock(mr_mutex_);
  const Endpoint* ep = find_ep(ep_id);
  if (ep == nullptr) {
    return Result<RKey>(not_found(strfmt("NIC %u: no endpoint %u", addr_,
                                         ep_id)));
  }
  if (mrs_.size() >= limits_.max_memory_regions) {
    return Result<RKey>(resource_exhausted(
        strfmt("NIC %u MR limit (%u) reached", addr_,
               limits_.max_memory_regions)));
  }
  const RKey key = next_rkey_++;
  mrs_.emplace(key, MemRegion{ep_id, ep->vni, region});
  return key;
}

Status CassiniNic::deregister_mr(RKey key) {
  std::lock_guard<std::mutex> lock(mr_mutex_);
  if (mrs_.erase(key) == 0) {
    return not_found(strfmt("NIC %u: no MR with rkey %llu", addr_,
                            static_cast<unsigned long long>(key)));
  }
  return Status::ok();
}

std::size_t CassiniNic::mr_count() const {
  std::lock_guard<std::mutex> lock(mr_mutex_);
  return mrs_.size();
}

void CassiniNic::push_event(Endpoint& ep, Event e, std::size_t cap) {
  bool notify;
  {
    std::lock_guard<SpinLock> lock(ep.qlock);
    if (ep.events.size() >= cap) ep.events.pop_front();  // oldest-first drop
    ep.events.push_back(std::move(e));
    notify = ep.waiters > 0;
  }
  if (notify) {
    // Taking wmutex orders the notify after the waiter's cv.wait entry.
    std::lock_guard<std::mutex> wl(ep.wmutex);
    ep.cv.notify_all();
  }
}

SimTime CassiniNic::schedule_tx_locked(SimTime accepted_vt, TrafficClass tc,
                                       SimDuration ser_time) {
  const int prio = static_cast<int>(tc);  // 0 = highest priority
  SimTime start = accepted_vt;
  for (int c = 0; c <= prio; ++c) {
    start = std::max(start, tx_free_vt_[c]);
  }
  for (int c = prio + 1; c < kNumTrafficClasses; ++c) {
    if (tx_free_vt_[c] > start) {
      // One lower-priority frame may be in flight (non-preemptible).
      start += timing_->serialize_time(timing_->config().frame_bytes);
      break;
    }
  }
  tx_free_vt_[prio] = start + ser_time;
  return tx_free_vt_[prio];
}

void CassiniNic::count_tx_drop(const RouteResult& rr, EndpointId src_ep,
                               std::uint64_t op_id, SimTime error_vt) {
  counters_.tx_dropped.fetch_add(1, std::memory_order_relaxed);
  if (const auto ep = find_ep(src_ep)) {
    Event e;
    e.type = Event::Type::kError;
    e.status = drop_status_for(rr.reason);
    e.op_id = op_id;
    e.vt = error_vt;
    push_event(*ep, std::move(e), limits_.max_rx_queue_packets);
  }
}

bool CassiniNic::transient_reason(DropReason r) noexcept {
  switch (r) {
    case DropReason::kNoRoute:       // replan may restore a path
    case DropReason::kLinkDown:      // dead/flapped element, repair pending
    case DropReason::kLossInjected:
    case DropReason::kCorrupt:
    case DropReason::kAckLost:
    case DropReason::kStaleEpoch:    // a lagging switch will apply the plan
      return true;
    default:
      return false;
  }
}

Status CassiniNic::drop_status_for(DropReason r) const {
  if (rel_.enabled && transient_reason(r)) {
    return unavailable(strfmt(
        "reliable delivery failed after %d attempts (last: %s)",
        rel_.max_retries + 1, drop_reason_name(r)));
  }
  return drop_status(r);
}

int CassiniNic::retry_budget(DropReason r) const noexcept {
  const int base = std::max(rel_.max_retries, 0);
  if (!degraded_.load(std::memory_order_relaxed)) return base;
  switch (r) {
    case DropReason::kLinkDown:
    case DropReason::kNoRoute:
    case DropReason::kStaleEpoch: {
      // Only the replan-dependent reasons stretch: a lossy link or CRC
      // failure retries the same whether or not the controller is up.
      const double f = rel_.degraded_retry_factor;
      return f > 1.0 ? static_cast<int>(static_cast<double>(base) * f)
                     : base;
    }
    default:
      return base;
  }
}

std::uint64_t CassiniNic::plan_version_now() const {
  return fabric_ != nullptr ? fabric_->manager().plan_version() : 0;
}

void CassiniNic::set_reliability(const ReliabilityConfig& cfg) {
  std::lock_guard<SpinLock> lock(mutex_);
  rel_ = cfg;
  rel_rng_.reseed(cfg.seed ^ (0x9e3779b97f4a7c15ULL * (addr_ + 1)));
}

ReliabilityCounters CassiniNic::reliability_counters() const {
  ReliabilityCounters out;
  out.retransmits =
      counters_.rel_retransmits.load(std::memory_order_relaxed);
  out.duplicates =
      counters_.rel_duplicates.load(std::memory_order_relaxed);
  out.budget_exhausted =
      counters_.rel_budget_exhausted.load(std::memory_order_relaxed);
  out.recovered = counters_.rel_recovered.load(std::memory_order_relaxed);
  out.recovered_after_replan =
      counters_.rel_recovered_after_replan.load(std::memory_order_relaxed);
  return out;
}

RouteResult CassiniNic::inject_reliable(Packet& proto, SimTime& vt_io) {
  proto.reliable = true;
  RouteResult rr;
  std::uint64_t plan_v0 = 0;
  bool have_v0 = false;
  for (int attempt = 0;; ++attempt) {
    {
      // Each attempt sends a copy; `proto` stays intact as the
      // retransmit master.  The copy is fields-only for the size-only
      // packets the benches send; payload-carrying packets pay one
      // buffer copy per attempt (reliability is off on the PR 5 hot
      // path, so this costs nothing when disabled).
      Packet copy = proto;
      rr = inject(std::move(copy));
    }
    if (rr.delivered) {
      if (attempt > 0) {
        counters_.rel_recovered.fetch_add(1, std::memory_order_relaxed);
        if (have_v0 && plan_version_now() != plan_v0) {
          counters_.rel_recovered_after_replan.fetch_add(
              1, std::memory_order_relaxed);
        }
      }
      return rr;
    }
    if (!transient_reason(rr.reason) || attempt >= retry_budget(rr.reason)) {
      if (transient_reason(rr.reason)) {
        counters_.rel_budget_exhausted.fetch_add(1,
                                                 std::memory_order_relaxed);
      }
      return rr;
    }
    if (!have_v0) {
      // Captured lazily at the first failure so the (overwhelmingly
      // common) first-attempt success never touches the manager's lock.
      plan_v0 = plan_version_now();
      have_v0 = true;
    }
    // Exponential backoff with seeded jitter, capped at rto_max.
    SimDuration rto = rel_.rto_base;
    for (int i = 0; i < attempt && rto < rel_.rto_max; ++i) {
      rto = static_cast<SimDuration>(static_cast<double>(rto) *
                                     rel_.backoff_factor);
    }
    rto = std::min(rto, rel_.rto_max);
    double jitter = 1.0;
    if (rel_.jitter > 0.0) {
      std::lock_guard<SpinLock> lock(mutex_);
      jitter = rel_rng_.jitter(rel_.jitter);
    }
    const auto backoff =
        static_cast<SimDuration>(static_cast<double>(rto) * jitter);
    counters_.rel_retransmits.fetch_add(1, std::memory_order_relaxed);
    if (retry_hook_) retry_hook_(attempt + 1, backoff);
    vt_io += backoff;
    {
      // The retransmitted copy re-queues on the TX link at the
      // backed-off time — and, crucially, re-enters the fabric through
      // Fabric::inject, which always routes by the manager's currently
      // published tables: a retransmit straddling a replan picks up the
      // new CompiledPlan automatically.
      std::lock_guard<SpinLock> lock(mutex_);
      proto.inject_vt = schedule_tx_locked(vt_io, proto.tc, proto.ser_cache);
      ++tx_packets_;
    }
  }
}

bool CassiniNic::accept_reliable(const Packet& p) {
  // NIC-global sequence numbers make (src, seq) unique per sender; 44
  // bits of seq + 20 bits of src (kMaxPortAddr) pack into one key.
  const std::uint64_t key = (static_cast<std::uint64_t>(p.src) << 44) |
                            (p.seq & ((1ULL << 44) - 1));
  std::lock_guard<SpinLock> lock(dedup_lock_);
  if (!rel_seen_.insert(key).second) {
    counters_.rel_duplicates.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  rel_seen_fifo_.push_back(key);
  const std::size_t window = rel_.dedup_window > 0 ? rel_.dedup_window : 1;
  if (rel_seen_fifo_.size() > window) {
    rel_seen_.erase(rel_seen_fifo_.front());
    rel_seen_fifo_.pop_front();
  }
  return true;
}

Result<SimTime> CassiniNic::prepare_tx_into(Packet& p, EndpointId ep_id,
                                            const TxParams& tx,
                                            SimTime local_vt) {
  // The validate/build/schedule prefix every TX verb shares: same field
  // setup, same accepted_vt, same locked seq + TX-horizon charge — so an
  // engine-driven op is bit-identical in virtual time to a legacy one,
  // and the two paths cannot drift.
  const auto ep = find_ep(ep_id);
  if (!ep) {
    return Result<SimTime>(
        not_found(strfmt("NIC %u: no endpoint %u", addr_, ep_id)));
  }
  // `p` may be a recycled pool slot; every field must match a freshly
  // built packet bit-for-bit (hops, via_switch, arrival_vt included).
  p = Packet{};
  p.src = addr_;
  p.dst = tx.dst;
  p.src_ep = ep_id;
  p.dst_ep = tx.dst_ep;
  p.vni = ep->vni;
  p.tc = ep->tc;
  p.op = tx.op;
  p.size_bytes = tx.size_bytes;
  p.tag = tx.tag;
  p.rkey = tx.rkey;
  p.mr_offset = tx.mr_offset;
  p.op_id = tx.op_id;
  // Pre-set from the config: inject_reliable would set it anyway, and
  // the engine path needs it before the packet leaves the NIC.
  p.reliable = rel_.enabled;
  if (!tx.payload.empty()) {
    p.payload.assign(tx.payload.begin(), tx.payload.end());
  }
  const SimTime accepted_vt = local_vt + timing_->tx_overhead();
  p.ser_cache = timing_->serialize_time(tx.size_bytes);
  p.ser_cache_bps = timing_->config().link_rate.bps();
  {
    std::lock_guard<SpinLock> lock(mutex_);
    p.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    p.inject_vt = schedule_tx_locked(accepted_vt, ep->tc, p.ser_cache);
    ++tx_packets_;
  }
  return Result<SimTime>(accepted_vt);
}

Result<CassiniNic::PreparedSend> CassiniNic::prepare_tx(EndpointId ep_id,
                                                        const TxParams& tx,
                                                        SimTime local_vt) {
  PreparedSend out;
  auto accepted = prepare_tx_into(out.packet, ep_id, tx, local_vt);
  if (!accepted.is_ok()) return Result<PreparedSend>(accepted.status());
  out.accepted_vt = accepted.value();
  return Result<PreparedSend>(std::move(out));
}

Result<CassiniNic::PreparedSend> CassiniNic::prepare_send(
    EndpointId ep_id, NicAddr dst, EndpointId dst_ep, std::uint64_t tag,
    std::uint64_t size_bytes, SimTime local_vt) {
  TxParams tx;
  tx.op = PacketOp::kSend;
  tx.dst = dst;
  tx.dst_ep = dst_ep;
  tx.tag = tag;
  tx.size_bytes = size_bytes;
  return prepare_tx(ep_id, tx, local_vt);
}

Result<SimTime> CassiniNic::prepare_send_into(Packet& out, EndpointId ep_id,
                                              NicAddr dst, EndpointId dst_ep,
                                              std::uint64_t tag,
                                              std::uint64_t size_bytes,
                                              SimTime local_vt) {
  TxParams tx;
  tx.op = PacketOp::kSend;
  tx.dst = dst;
  tx.dst_ep = dst_ep;
  tx.tag = tag;
  tx.size_bytes = size_bytes;
  return prepare_tx_into(out, ep_id, tx, local_vt);
}

Result<CassiniNic::PreparedSend> CassiniNic::prepare_rma_write(
    EndpointId ep_id, NicAddr dst, RKey rkey, std::uint64_t offset,
    std::uint64_t size_bytes, std::span<const std::byte> payload,
    SimTime local_vt, std::uint64_t op_id) {
  TxParams tx;
  tx.op = PacketOp::kRdmaWrite;
  tx.dst = dst;
  tx.size_bytes = size_bytes;
  tx.rkey = rkey;
  tx.mr_offset = offset;
  tx.op_id = op_id;
  tx.payload = payload;
  return prepare_tx(ep_id, tx, local_vt);
}

Result<CassiniNic::PreparedSend> CassiniNic::prepare_rma_read(
    EndpointId ep_id, NicAddr dst, RKey rkey, std::uint64_t offset,
    std::uint64_t size_bytes, SimTime local_vt, std::uint64_t op_id) {
  TxParams tx;
  tx.op = PacketOp::kRdmaRead;
  tx.dst = dst;
  tx.size_bytes = 64;  // the request is small; data rides the response
  tx.tag = size_bytes;  // requested length travels in the tag field
  tx.rkey = rkey;
  tx.mr_offset = offset;
  tx.op_id = op_id;
  return prepare_tx(ep_id, tx, local_vt);
}

SimDuration CassiniNic::schedule_retransmit(Packet& proto, int attempt,
                                            SimTime& vt_io) {
  // Mirrors one backoff iteration of inject_reliable: retry #1 waits
  // rto_base, each later retry doubles (factor) up to rto_max, jittered
  // by the same seeded per-NIC stream.
  SimDuration rto = rel_.rto_base;
  for (int i = 1; i < attempt && rto < rel_.rto_max; ++i) {
    rto = static_cast<SimDuration>(static_cast<double>(rto) *
                                   rel_.backoff_factor);
  }
  rto = std::min(rto, rel_.rto_max);
  double jitter = 1.0;
  if (rel_.jitter > 0.0) {
    std::lock_guard<SpinLock> lock(mutex_);
    jitter = rel_rng_.jitter(rel_.jitter);
  }
  const auto backoff =
      static_cast<SimDuration>(static_cast<double>(rto) * jitter);
  counters_.rel_retransmits.fetch_add(1, std::memory_order_relaxed);
  vt_io += backoff;
  {
    std::lock_guard<SpinLock> lock(mutex_);
    proto.inject_vt = schedule_tx_locked(vt_io, proto.tc, proto.ser_cache);
    ++tx_packets_;
  }
  return backoff;
}

void CassiniNic::note_tx_drop(DropReason r, EndpointId src_ep,
                              std::uint64_t op_id, SimTime error_vt,
                              bool budget_exhausted) {
  if (budget_exhausted) {
    counters_.rel_budget_exhausted.fetch_add(1, std::memory_order_relaxed);
  }
  RouteResult rr;
  rr.reason = r;
  count_tx_drop(rr, src_ep, op_id, error_vt);
}

void CassiniNic::note_recovered(bool after_replan) {
  counters_.rel_recovered.fetch_add(1, std::memory_order_relaxed);
  if (after_replan) {
    counters_.rel_recovered_after_replan.fetch_add(
        1, std::memory_order_relaxed);
  }
}

Result<SimTime> CassiniNic::post_send(EndpointId ep_id, NicAddr dst,
                                      EndpointId dst_ep, std::uint64_t tag,
                                      std::uint64_t size_bytes,
                                      std::span<const std::byte> payload,
                                      SimTime local_vt, std::uint64_t op_id) {
  TxParams tx;
  tx.op = PacketOp::kSend;
  tx.dst = dst;
  tx.dst_ep = dst_ep;
  tx.tag = tag;
  tx.size_bytes = size_bytes;
  tx.op_id = op_id;
  tx.payload = payload;
  auto prepared = prepare_tx(ep_id, tx, local_vt);
  if (!prepared.is_ok()) return Result<SimTime>(prepared.status());
  PreparedSend ps = std::move(prepared).value();

  // Send-buffer hold time: with reliability on, retries push the local
  // completion out by their backoff (the buffer stays pinned until the
  // final attempt left the NIC).
  SimTime done_vt = ps.accepted_vt;
  const RouteResult rr = rel_.enabled
                             ? inject_reliable(ps.packet, done_vt)
                             : inject(std::move(ps.packet));
  if (!rr.delivered) {
    count_tx_drop(rr, ep_id, op_id, done_vt);
    return Result<SimTime>(drop_status_for(rr.reason));
  }
  if (op_id != 0) {
    // Selective completion, like FI_SELECTIVE_COMPLETION: only requested
    // sends generate an event (the OSU window loop posts quietly).
    if (const auto ep = find_ep(ep_id)) {
      Event e;
      e.type = Event::Type::kSendComplete;
      e.op_id = op_id;
      e.size = size_bytes;
      e.vt = done_vt;
      push_event(*ep, std::move(e), limits_.max_rx_queue_packets);
    }
  }
  return done_vt;
}

Result<SimTime> CassiniNic::rdma_write(EndpointId ep_id, NicAddr dst,
                                       RKey rkey, std::uint64_t offset,
                                       std::uint64_t size_bytes,
                                       std::span<const std::byte> payload,
                                       SimTime local_vt,
                                       std::uint64_t op_id) {
  auto prepared = prepare_rma_write(ep_id, dst, rkey, offset, size_bytes,
                                    payload, local_vt, op_id);
  if (!prepared.is_ok()) return Result<SimTime>(prepared.status());
  PreparedSend ps = std::move(prepared).value();
  SimTime done_vt = ps.accepted_vt;
  const RouteResult rr = rel_.enabled
                             ? inject_reliable(ps.packet, done_vt)
                             : inject(std::move(ps.packet));
  if (!rr.delivered) {
    count_tx_drop(rr, ep_id, op_id, done_vt);
    return Result<SimTime>(drop_status_for(rr.reason));
  }
  return done_vt;
}

Result<SimTime> CassiniNic::rdma_read(EndpointId ep_id, NicAddr dst,
                                      RKey rkey, std::uint64_t offset,
                                      std::uint64_t size_bytes,
                                      SimTime local_vt, std::uint64_t op_id) {
  auto prepared = prepare_rma_read(ep_id, dst, rkey, offset, size_bytes,
                                   local_vt, op_id);
  if (!prepared.is_ok()) return Result<SimTime>(prepared.status());
  PreparedSend ps = std::move(prepared).value();
  SimTime done_vt = ps.accepted_vt;
  const RouteResult rr = rel_.enabled
                             ? inject_reliable(ps.packet, done_vt)
                             : inject(std::move(ps.packet));
  if (!rr.delivered) {
    count_tx_drop(rr, ep_id, op_id, done_vt);
    return Result<SimTime>(drop_status_for(rr.reason));
  }
  return done_vt;
}

void CassiniNic::deliver(Packet&& p) {
  std::optional<Packet> reply = deliver_impl(std::move(p));
  if (reply) {
    if (rel_.enabled) {
      // Completion traffic (RMA ACKs / read responses / NACKs) rides the
      // same retransmit protocol: losing the ACK of a delivered write
      // must not strand the initiator's completion.
      SimTime vt = reply->inject_vt;
      (void)inject_reliable(*reply, vt);
    } else {
      (void)inject(std::move(*reply));
    }
  }
}

std::optional<Packet> CassiniNic::deliver_from_engine(Packet&& p) {
  return deliver_impl(std::move(p));
}

std::optional<Packet> CassiniNic::deliver_impl(Packet&& p) {
  // Duplicate suppression for reliable traffic: a retransmit whose
  // earlier copy was delivered-but-unacknowledged must have no second
  // effect — not an RX push, not an MR write, not a completion event.
  // One check covers every PacketOp.
  if (p.reliable && !accept_reliable(p)) {
    return std::nullopt;
  }
  std::optional<Packet> reply;
  switch (p.op) {
    // Two-sided and completion traffic resolves its endpoint through the
    // lock-free snapshot and only takes the *endpoint's* lock — the
    // steady-state receive path never touches the NIC-wide mutex.
    case PacketOp::kSend: {
      const auto ep = find_ep(p.dst_ep);
      if (ep == nullptr) {
        counters_.rx_unknown_ep.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
      }
      if (ep->vni != p.vni) {
        counters_.rx_vni_mismatch.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
      }
      bool notify = false;
      bool overflow = false;
      {
        std::lock_guard<SpinLock> ep_lock(ep->qlock);
        if (ep->rx.size() >= limits_.max_rx_queue_packets) {
          // Tail-drop the arriving packet, counted (kRxOverflow):
          // backpressure must be observable, and data the receiver
          // already holds must never be silently destroyed to admit
          // more.
          overflow = true;
        } else {
          ep->rx.push_back(std::move(p));
          ++ep->rx_accepted;
          notify = ep->waiters > 0;
        }
      }
      if (overflow) {
        counters_.rx_overflow.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
      }
      if (notify) {
        std::lock_guard<std::mutex> wl(ep->wmutex);
        ep->cv.notify_all();
      }
      return std::nullopt;
    }

    case PacketOp::kAck: {
      const auto ep = find_ep(p.dst_ep);
      if (ep == nullptr) {
        counters_.rx_unknown_ep.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
      }
      counters_.rx_packets.fetch_add(1, std::memory_order_relaxed);
      Event e;
      e.type = Event::Type::kRdmaWriteComplete;
      e.op_id = p.op_id;
      e.size = p.tag;  // echoed write size
      e.vt = p.arrival_vt + timing_->rx_overhead();
      push_event(*ep, std::move(e), limits_.max_rx_queue_packets);
      return std::nullopt;
    }

    case PacketOp::kRdmaReadResp: {
      const auto ep = find_ep(p.dst_ep);
      if (ep == nullptr) {
        counters_.rx_unknown_ep.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
      }
      counters_.rx_packets.fetch_add(1, std::memory_order_relaxed);
      Event e;
      e.type = Event::Type::kRdmaReadComplete;
      e.op_id = p.op_id;
      e.size = p.size_bytes;
      e.vt = p.arrival_vt + timing_->rx_overhead();
      e.data = std::move(p.payload);
      push_event(*ep, std::move(e), limits_.max_rx_queue_packets);
      return std::nullopt;
    }

    // Initiator side of a denied one-sided op: the target's NACK
    // completes the op with a *permanent* status — never retried, never
    // silent (the fail-fast contract of rma_denied).
    case PacketOp::kRmaNack: {
      const auto ep = find_ep(p.dst_ep);
      if (ep == nullptr) {
        counters_.rx_unknown_ep.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
      }
      counters_.rx_packets.fetch_add(1, std::memory_order_relaxed);
      Event e;
      e.type = Event::Type::kError;
      switch (static_cast<RmaNackReason>(p.tag)) {
        case RmaNackReason::kNoSuchMr:
          e.status = not_found("rma target: no MR registered for rkey");
          break;
        case RmaNackReason::kVniMismatch:
          e.status = permission_denied(
              "rma target: MR registered on a different VNI");
          break;
        case RmaNackReason::kOutOfBounds:
          e.status = invalid_argument(
              "rma target: offset + length exceeds the MR");
          break;
        default:
          e.status = internal_error("rma target: malformed NACK");
          break;
      }
      e.op_id = p.op_id;
      e.vt = p.arrival_vt + timing_->rx_overhead();
      push_event(*ep, std::move(e), limits_.max_rx_queue_packets);
      return std::nullopt;
    }

    // One-sided targets touch the MR table, so they take the MR mutex —
    // a blocking lock, because the payload copy under it is as large as
    // the transfer — and release it before re-entering the fabric.
    case PacketOp::kRdmaWrite: {
      std::unique_lock<std::mutex> lock(mr_mutex_);
      const auto mr_it = mrs_.find(p.rkey);
      if (mr_it == mrs_.end() || mr_it->second.vni != p.vni ||
          p.mr_offset + p.size_bytes > mr_it->second.region.size()) {
        counters_.rma_denied.fetch_add(1, std::memory_order_relaxed);
        const RmaNackReason why =
            mr_it == mrs_.end()          ? RmaNackReason::kNoSuchMr
            : mr_it->second.vni != p.vni ? RmaNackReason::kVniMismatch
                                         : RmaNackReason::kOutOfBounds;
        lock.unlock();
        reply = make_rma_nack(p, why);
        break;
      }
      if (!p.payload.empty()) {
        std::memcpy(mr_it->second.region.data() + p.mr_offset,
                    p.payload.data(),
                    std::min<std::size_t>(p.payload.size(), p.size_bytes));
      }
      counters_.rx_packets.fetch_add(1, std::memory_order_relaxed);
      // ACK back to the initiator (size 0, echoes write size in tag).
      Packet ack;
      ack.src = addr_;
      ack.dst = p.src;
      ack.dst_ep = p.src_ep;
      ack.vni = p.vni;
      ack.tc = p.tc;
      ack.op = PacketOp::kAck;
      ack.size_bytes = 0;
      ack.tag = p.size_bytes;
      ack.op_id = p.op_id;
      ack.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
      ack.inject_vt = p.arrival_vt + timing_->rx_overhead();
      reply = std::move(ack);
      break;
    }

    case PacketOp::kRdmaRead: {
      std::unique_lock<std::mutex> lock(mr_mutex_);
      const std::uint64_t want = p.tag;
      const auto mr_it = mrs_.find(p.rkey);
      if (mr_it == mrs_.end() || mr_it->second.vni != p.vni ||
          p.mr_offset + want > mr_it->second.region.size()) {
        counters_.rma_denied.fetch_add(1, std::memory_order_relaxed);
        const RmaNackReason why =
            mr_it == mrs_.end()          ? RmaNackReason::kNoSuchMr
            : mr_it->second.vni != p.vni ? RmaNackReason::kVniMismatch
                                         : RmaNackReason::kOutOfBounds;
        lock.unlock();
        reply = make_rma_nack(p, why);
        break;
      }
      counters_.rx_packets.fetch_add(1, std::memory_order_relaxed);
      Packet resp;
      resp.src = addr_;
      resp.dst = p.src;
      resp.dst_ep = p.src_ep;
      resp.vni = p.vni;
      resp.tc = p.tc;
      resp.op = PacketOp::kRdmaReadResp;
      resp.size_bytes = want;
      resp.op_id = p.op_id;
      resp.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
      resp.payload.assign(
          mr_it->second.region.begin() +
              static_cast<std::ptrdiff_t>(p.mr_offset),
          mr_it->second.region.begin() +
              static_cast<std::ptrdiff_t>(p.mr_offset + want));
      resp.inject_vt = p.arrival_vt + timing_->rx_overhead();
      reply = std::move(resp);
      break;
    }
  }
  // Completion traffic (RMA ACKs / read responses / NACKs) rides the same
  // retransmit protocol as data when reliability is on: losing the ACK of
  // a delivered write must not strand the initiator's completion.  The
  // caller — deliver() on the legacy path, the ShardEngine on the sharded
  // path — owns injecting the reply back into the fabric.
  if (reply) reply->reliable = rel_.enabled;
  return reply;
}

Packet CassiniNic::make_rma_nack(const Packet& req, RmaNackReason why) {
  Packet nack;
  nack.src = addr_;
  nack.dst = req.src;
  nack.dst_ep = req.src_ep;
  nack.vni = req.vni;
  nack.tc = req.tc;
  nack.op = PacketOp::kRmaNack;
  nack.size_bytes = 0;
  nack.tag = static_cast<std::uint64_t>(why);
  nack.op_id = req.op_id;
  nack.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  nack.inject_vt = req.arrival_vt + timing_->rx_overhead();
  return nack;
}

Result<Packet> CassiniNic::wait_rx(EndpointId ep_id, int real_timeout_ms) {
  const auto ep = find_ep(ep_id);
  if (!ep) {
    return Result<Packet>(not_found(strfmt("NIC %u: no endpoint %u", addr_,
                                           ep_id)));
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(real_timeout_ms);
  std::unique_lock<std::mutex> wl(ep->wmutex);
  for (;;) {
    {
      // Check and (if empty) register as a waiter in ONE qlock section:
      // a push serialized after this either sees data consumed or sees
      // waiters > 0 and will notify under wmutex, which we still hold.
      std::lock_guard<SpinLock> qlock(ep->qlock);
      if (!ep->rx.empty()) return ep->rx.pop_front();
      if (ep->closed) {
        return Result<Packet>(failed_precondition("endpoint closed"));
      }
      ++ep->waiters;
    }
    const auto status = ep->cv.wait_until(wl, deadline);
    std::lock_guard<SpinLock> qlock(ep->qlock);
    --ep->waiters;
    if (status == std::cv_status::timeout) {
      // Match the classic predicate-wait: data that landed exactly at
      // the deadline still wins over the timeout.
      if (!ep->rx.empty()) return ep->rx.pop_front();
      if (ep->closed) {
        return Result<Packet>(failed_precondition("endpoint closed"));
      }
      return Result<Packet>(timeout_error("wait_rx timed out"));
    }
  }
}

Result<Packet> CassiniNic::poll_rx(EndpointId ep_id) {
  const auto ep = find_ep(ep_id);
  if (!ep) {
    return Result<Packet>(not_found(strfmt("NIC %u: no endpoint %u", addr_,
                                           ep_id)));
  }
  std::lock_guard<SpinLock> lock(ep->qlock);
  if (ep->rx.empty()) return Result<Packet>(unavailable("rx queue empty"));
  return ep->rx.pop_front();
}

std::size_t CassiniNic::drain_rx(EndpointId ep_id) {
  const auto ep = find_ep(ep_id);
  if (!ep) return 0;
  std::lock_guard<SpinLock> lock(ep->qlock);
  return ep->rx.clear();
}

Result<Event> CassiniNic::wait_event(EndpointId ep_id, int real_timeout_ms) {
  const auto ep = find_ep(ep_id);
  if (!ep) {
    return Result<Event>(not_found(strfmt("NIC %u: no endpoint %u", addr_,
                                          ep_id)));
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(real_timeout_ms);
  std::unique_lock<std::mutex> wl(ep->wmutex);
  for (;;) {
    {
      std::lock_guard<SpinLock> qlock(ep->qlock);
      if (!ep->events.empty()) {
        Event e = std::move(ep->events.front());
        ep->events.pop_front();
        return e;
      }
      if (ep->closed) {
        return Result<Event>(failed_precondition("endpoint closed"));
      }
      ++ep->waiters;
    }
    const auto status = ep->cv.wait_until(wl, deadline);
    std::lock_guard<SpinLock> qlock(ep->qlock);
    --ep->waiters;
    if (status == std::cv_status::timeout) {
      if (!ep->events.empty()) {
        Event e = std::move(ep->events.front());
        ep->events.pop_front();
        return e;
      }
      if (ep->closed) {
        return Result<Event>(failed_precondition("endpoint closed"));
      }
      return Result<Event>(timeout_error("wait_event timed out"));
    }
  }
}

Result<Event> CassiniNic::poll_event(EndpointId ep_id) {
  const auto ep = find_ep(ep_id);
  if (!ep) {
    return Result<Event>(not_found(strfmt("NIC %u: no endpoint %u", addr_,
                                          ep_id)));
  }
  std::lock_guard<SpinLock> lock(ep->qlock);
  if (ep->events.empty()) return Result<Event>(unavailable("no events"));
  Event e = std::move(ep->events.front());
  ep->events.pop_front();
  return e;
}

NicCounters CassiniNic::counters() const {
  NicCounters out;
  out.rx_packets = counters_.rx_packets.load(std::memory_order_relaxed);
  out.tx_dropped = counters_.tx_dropped.load(std::memory_order_relaxed);
  out.rx_unknown_ep =
      counters_.rx_unknown_ep.load(std::memory_order_relaxed);
  out.rx_vni_mismatch =
      counters_.rx_vni_mismatch.load(std::memory_order_relaxed);
  out.rma_denied = counters_.rma_denied.load(std::memory_order_relaxed);
  out.rx_overflow = counters_.rx_overflow.load(std::memory_order_relaxed);
  {
    std::lock_guard<SpinLock> lock(mutex_);
    out.tx_packets = tx_packets_;
  }
  // Sum per-endpoint receive counts without holding the NIC spinlock
  // across the scan: fetch one endpoint per short lock section (the
  // parked list is append-only, so the index walk is stable and only
  // the vector itself needs the lock).
  for (std::size_t i = 0;; ++i) {
    std::shared_ptr<Endpoint> ep;
    {
      std::lock_guard<SpinLock> lock(mutex_);
      if (i >= ep_owned_.size()) break;
      ep = ep_owned_[i];
    }
    std::lock_guard<SpinLock> ql(ep->qlock);
    out.rx_packets += ep->rx_accepted;
  }
  return out;
}

}  // namespace shs::hsn
