#include "hsn/cassini_nic.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <optional>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace shs::hsn {

namespace {
constexpr const char* kTag = "cassini";

Status drop_status(DropReason r) {
  switch (r) {
    case DropReason::kSrcNotAuthorized:
      return permission_denied("switch: source port not authorized for VNI");
    case DropReason::kDstNotAuthorized:
      return permission_denied(
          "switch: destination port not authorized for VNI");
    case DropReason::kUnknownDestination:
      return not_found("switch: no NIC at destination address");
    case DropReason::kNoRoute:
      return unavailable("switch: no route to destination switch");
    case DropReason::kLinkDown:
      return unavailable("switch: dead link or failed switch on the path");
    case DropReason::kNone:
      break;
  }
  return internal_error("unexpected drop reason");
}
}  // namespace

CassiniNic::CassiniNic(NicAddr addr,
                       std::shared_ptr<RosettaSwitch> fabric_switch,
                       std::shared_ptr<TimingModel> timing, NicLimits limits)
    : addr_(addr), switch_(std::move(fabric_switch)), timing_(std::move(timing)),
      limits_(limits) {
  const Status st =
      switch_->connect(addr_, [this](Packet&& p) { on_packet(std::move(p)); });
  if (!st.is_ok()) {
    SHS_ERROR(kTag) << "NIC " << addr_ << " failed to connect: " << st;
  }
}

CassiniNic::~CassiniNic() {
  // Wake any blocked waiters before tearing down.
  std::unordered_map<EndpointId, std::shared_ptr<Endpoint>> eps;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    eps = endpoints_;
  }
  for (auto& [id, ep] : eps) {
    std::lock_guard<std::mutex> ep_lock(ep->mutex);
    ep->closed = true;
    ep->cv.notify_all();
  }
  (void)switch_->disconnect(addr_);
}

Result<EndpointId> CassiniNic::alloc_endpoint(Vni vni, TrafficClass tc) {
  if (vni == kInvalidVni) {
    return Result<EndpointId>(invalid_argument("VNI 0 is reserved"));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (endpoints_.size() >= limits_.max_endpoints) {
    return Result<EndpointId>(
        resource_exhausted(strfmt("NIC %u endpoint limit (%u) reached", addr_,
                                  limits_.max_endpoints)));
  }
  const EndpointId id = next_ep_++;
  auto ep = std::make_shared<Endpoint>();
  ep->vni = vni;
  ep->tc = tc;
  endpoints_.emplace(id, std::move(ep));
  SHS_DEBUG(kTag) << "NIC " << addr_ << " allocated EP " << id << " on VNI "
                  << vni;
  return id;
}

Status CassiniNic::free_endpoint(EndpointId id) {
  std::shared_ptr<Endpoint> ep;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = endpoints_.find(id);
    if (it == endpoints_.end()) {
      return not_found(strfmt("NIC %u: no endpoint %u", addr_, id));
    }
    ep = it->second;
    endpoints_.erase(it);
    // Registered MRs die with the endpoint, as the driver would enforce.
    for (auto mr_it = mrs_.begin(); mr_it != mrs_.end();) {
      if (mr_it->second.ep == id) {
        mr_it = mrs_.erase(mr_it);
      } else {
        ++mr_it;
      }
    }
  }
  std::lock_guard<std::mutex> ep_lock(ep->mutex);
  ep->closed = true;
  ep->cv.notify_all();
  return Status::ok();
}

std::size_t CassiniNic::endpoint_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return endpoints_.size();
}

Vni CassiniNic::endpoint_vni(EndpointId id) const {
  const auto ep = find_ep(id);
  return ep ? ep->vni : kInvalidVni;
}

std::shared_ptr<CassiniNic::Endpoint> CassiniNic::find_ep(
    EndpointId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = endpoints_.find(id);
  return it == endpoints_.end() ? nullptr : it->second;
}

Result<RKey> CassiniNic::register_mr(EndpointId ep_id,
                                     std::span<std::byte> region) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = endpoints_.find(ep_id);
  if (it == endpoints_.end()) {
    return Result<RKey>(not_found(strfmt("NIC %u: no endpoint %u", addr_,
                                         ep_id)));
  }
  if (mrs_.size() >= limits_.max_memory_regions) {
    return Result<RKey>(resource_exhausted(
        strfmt("NIC %u MR limit (%u) reached", addr_,
               limits_.max_memory_regions)));
  }
  const RKey key = next_rkey_++;
  mrs_.emplace(key, MemRegion{ep_id, it->second->vni, region});
  return key;
}

Status CassiniNic::deregister_mr(RKey key) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (mrs_.erase(key) == 0) {
    return not_found(strfmt("NIC %u: no MR with rkey %llu", addr_,
                            static_cast<unsigned long long>(key)));
  }
  return Status::ok();
}

std::size_t CassiniNic::mr_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return mrs_.size();
}

void CassiniNic::push_event(Endpoint& ep, Event e, std::size_t cap) {
  std::lock_guard<std::mutex> lock(ep.mutex);
  if (ep.events.size() >= cap) ep.events.pop_front();  // oldest-first drop
  ep.events.push_back(std::move(e));
  ep.cv.notify_all();
}

SimTime CassiniNic::schedule_tx_locked(SimTime accepted_vt, TrafficClass tc,
                                       std::uint64_t size_bytes) {
  const int prio = static_cast<int>(tc);  // 0 = highest priority
  SimTime start = accepted_vt;
  for (int c = 0; c <= prio; ++c) {
    start = std::max(start, tx_free_vt_[c]);
  }
  for (int c = prio + 1; c < kNumTrafficClasses; ++c) {
    if (tx_free_vt_[c] > start) {
      // One lower-priority frame may be in flight (non-preemptible).
      start += timing_->serialize_time(timing_->config().frame_bytes);
      break;
    }
  }
  tx_free_vt_[prio] = start + timing_->serialize_time(size_bytes);
  return tx_free_vt_[prio];
}

void CassiniNic::count_tx_drop(const RouteResult& rr, EndpointId src_ep,
                               std::uint64_t op_id, SimTime error_vt) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.tx_dropped;
  }
  if (const auto ep = find_ep(src_ep)) {
    Event e;
    e.type = Event::Type::kError;
    e.status = drop_status(rr.reason);
    e.op_id = op_id;
    e.vt = error_vt;
    push_event(*ep, std::move(e), limits_.max_rx_queue_packets);
  }
}

Result<SimTime> CassiniNic::post_send(EndpointId ep_id, NicAddr dst,
                                      EndpointId dst_ep, std::uint64_t tag,
                                      std::uint64_t size_bytes,
                                      std::span<const std::byte> payload,
                                      SimTime local_vt, std::uint64_t op_id) {
  const auto ep = find_ep(ep_id);
  if (!ep) {
    return Result<SimTime>(not_found(strfmt("NIC %u: no endpoint %u", addr_,
                                            ep_id)));
  }
  Packet p;
  p.src = addr_;
  p.dst = dst;
  p.src_ep = ep_id;
  p.dst_ep = dst_ep;
  p.vni = ep->vni;
  p.tc = ep->tc;
  p.op = PacketOp::kSend;
  p.size_bytes = size_bytes;
  p.tag = tag;
  p.op_id = op_id;
  if (!payload.empty()) {
    p.payload.assign(payload.begin(), payload.end());
  }

  // Virtual-time bookkeeping: the caller pays the per-post overhead; the
  // packet leaves the NIC once the egress link has drained earlier posts.
  const SimTime accepted_vt = local_vt + timing_->tx_overhead();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    p.seq = next_seq_++;
    p.inject_vt = schedule_tx_locked(accepted_vt, ep->tc, size_bytes);
    ++counters_.tx_packets;
  }

  const RouteResult rr = switch_->route(std::move(p));
  if (!rr.delivered) {
    count_tx_drop(rr, ep_id, op_id, accepted_vt);
    return Result<SimTime>(drop_status(rr.reason));
  }
  if (op_id != 0) {
    // Selective completion, like FI_SELECTIVE_COMPLETION: only requested
    // sends generate an event (the OSU window loop posts quietly).
    Event e;
    e.type = Event::Type::kSendComplete;
    e.op_id = op_id;
    e.size = size_bytes;
    e.vt = accepted_vt;
    push_event(*ep, std::move(e), limits_.max_rx_queue_packets);
  }
  return accepted_vt;
}

Result<SimTime> CassiniNic::rdma_write(EndpointId ep_id, NicAddr dst,
                                       RKey rkey, std::uint64_t offset,
                                       std::uint64_t size_bytes,
                                       std::span<const std::byte> payload,
                                       SimTime local_vt,
                                       std::uint64_t op_id) {
  const auto ep = find_ep(ep_id);
  if (!ep) {
    return Result<SimTime>(not_found(strfmt("NIC %u: no endpoint %u", addr_,
                                            ep_id)));
  }
  Packet p;
  p.src = addr_;
  p.dst = dst;
  p.src_ep = ep_id;
  p.vni = ep->vni;
  p.tc = ep->tc;
  p.op = PacketOp::kRdmaWrite;
  p.size_bytes = size_bytes;
  p.rkey = rkey;
  p.mr_offset = offset;
  p.op_id = op_id;
  if (!payload.empty()) p.payload.assign(payload.begin(), payload.end());

  const SimTime accepted_vt = local_vt + timing_->tx_overhead();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    p.seq = next_seq_++;
    p.inject_vt = schedule_tx_locked(accepted_vt, ep->tc, size_bytes);
    ++counters_.tx_packets;
  }
  const RouteResult rr = switch_->route(std::move(p));
  if (!rr.delivered) {
    count_tx_drop(rr, ep_id, op_id, accepted_vt);
    return Result<SimTime>(drop_status(rr.reason));
  }
  return accepted_vt;
}

Result<SimTime> CassiniNic::rdma_read(EndpointId ep_id, NicAddr dst,
                                      RKey rkey, std::uint64_t offset,
                                      std::uint64_t size_bytes,
                                      SimTime local_vt, std::uint64_t op_id) {
  const auto ep = find_ep(ep_id);
  if (!ep) {
    return Result<SimTime>(not_found(strfmt("NIC %u: no endpoint %u", addr_,
                                            ep_id)));
  }
  Packet p;
  p.src = addr_;
  p.dst = dst;
  p.src_ep = ep_id;
  p.vni = ep->vni;
  p.tc = ep->tc;
  p.op = PacketOp::kRdmaRead;
  p.size_bytes = 64;  // the read *request* is small; data rides the response
  p.rkey = rkey;
  p.mr_offset = offset;
  p.op_id = op_id;
  // Requested length travels in the tag field of the request.
  p.tag = size_bytes;

  const SimTime accepted_vt = local_vt + timing_->tx_overhead();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    p.seq = next_seq_++;
    p.inject_vt = schedule_tx_locked(accepted_vt, ep->tc, p.size_bytes);
    ++counters_.tx_packets;
  }
  const RouteResult rr = switch_->route(std::move(p));
  if (!rr.delivered) {
    count_tx_drop(rr, ep_id, op_id, accepted_vt);
    return Result<SimTime>(drop_status(rr.reason));
  }
  return accepted_vt;
}

void CassiniNic::on_packet(Packet&& p) {
  std::optional<Packet> reply;
  {
    // Dispatch under the NIC lock; queue pushes take the endpoint lock.
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = endpoints_.find(p.dst_ep);
    std::shared_ptr<Endpoint> ep;

    switch (p.op) {
      case PacketOp::kSend: {
        if (it == endpoints_.end()) {
          ++counters_.rx_unknown_ep;
          return;
        }
        ep = it->second;
        if (ep->vni != p.vni) {
          ++counters_.rx_vni_mismatch;
          return;
        }
        ++counters_.rx_packets;
        lock.unlock();
        std::lock_guard<std::mutex> ep_lock(ep->mutex);
        if (ep->rx.size() >= limits_.max_rx_queue_packets) {
          ep->rx.pop_front();
        }
        ep->rx.push_back(std::move(p));
        ep->cv.notify_all();
        return;
      }

      case PacketOp::kAck: {
        if (it == endpoints_.end()) {
          ++counters_.rx_unknown_ep;
          return;
        }
        ep = it->second;
        ++counters_.rx_packets;
        lock.unlock();
        Event e;
        e.type = Event::Type::kRdmaWriteComplete;
        e.op_id = p.op_id;
        e.size = p.tag;  // echoed write size
        e.vt = p.arrival_vt + timing_->rx_overhead();
        push_event(*ep, std::move(e), limits_.max_rx_queue_packets);
        return;
      }

      case PacketOp::kRdmaReadResp: {
        if (it == endpoints_.end()) {
          ++counters_.rx_unknown_ep;
          return;
        }
        ep = it->second;
        ++counters_.rx_packets;
        lock.unlock();
        Event e;
        e.type = Event::Type::kRdmaReadComplete;
        e.op_id = p.op_id;
        e.size = p.size_bytes;
        e.vt = p.arrival_vt + timing_->rx_overhead();
        e.data = std::move(p.payload);
        push_event(*ep, std::move(e), limits_.max_rx_queue_packets);
        return;
      }

      case PacketOp::kRdmaWrite: {
        const auto mr_it = mrs_.find(p.rkey);
        if (mr_it == mrs_.end() || mr_it->second.vni != p.vni ||
            p.mr_offset + p.size_bytes > mr_it->second.region.size()) {
          ++counters_.rma_denied;
          return;  // silently dropped, as hardware would NACK eventually
        }
        if (!p.payload.empty()) {
          std::memcpy(mr_it->second.region.data() + p.mr_offset,
                      p.payload.data(),
                      std::min<std::size_t>(p.payload.size(), p.size_bytes));
        }
        ++counters_.rx_packets;
        // ACK back to the initiator (size 0, echoes write size in tag).
        Packet ack;
        ack.src = addr_;
        ack.dst = p.src;
        ack.dst_ep = p.src_ep;
        ack.vni = p.vni;
        ack.tc = p.tc;
        ack.op = PacketOp::kAck;
        ack.size_bytes = 0;
        ack.tag = p.size_bytes;
        ack.op_id = p.op_id;
        ack.seq = next_seq_++;
        ack.inject_vt = p.arrival_vt + timing_->rx_overhead();
        reply = std::move(ack);
        break;
      }

      case PacketOp::kRdmaRead: {
        const std::uint64_t want = p.tag;
        const auto mr_it = mrs_.find(p.rkey);
        if (mr_it == mrs_.end() || mr_it->second.vni != p.vni ||
            p.mr_offset + want > mr_it->second.region.size()) {
          ++counters_.rma_denied;
          return;
        }
        ++counters_.rx_packets;
        Packet resp;
        resp.src = addr_;
        resp.dst = p.src;
        resp.dst_ep = p.src_ep;
        resp.vni = p.vni;
        resp.tc = p.tc;
        resp.op = PacketOp::kRdmaReadResp;
        resp.size_bytes = want;
        resp.op_id = p.op_id;
        resp.seq = next_seq_++;
        resp.payload.assign(
            mr_it->second.region.begin() +
                static_cast<std::ptrdiff_t>(p.mr_offset),
            mr_it->second.region.begin() +
                static_cast<std::ptrdiff_t>(p.mr_offset + want));
        resp.inject_vt = p.arrival_vt + timing_->rx_overhead();
        reply = std::move(resp);
        break;
      }
    }
  }
  if (reply) {
    (void)switch_->route(std::move(*reply));
  }
}

Result<Packet> CassiniNic::wait_rx(EndpointId ep_id, int real_timeout_ms) {
  const auto ep = find_ep(ep_id);
  if (!ep) {
    return Result<Packet>(not_found(strfmt("NIC %u: no endpoint %u", addr_,
                                           ep_id)));
  }
  std::unique_lock<std::mutex> lock(ep->mutex);
  const bool ready = ep->cv.wait_for(
      lock, std::chrono::milliseconds(real_timeout_ms),
      [&] { return !ep->rx.empty() || ep->closed; });
  if (!ready) return Result<Packet>(timeout_error("wait_rx timed out"));
  if (ep->rx.empty()) {
    return Result<Packet>(failed_precondition("endpoint closed"));
  }
  Packet p = std::move(ep->rx.front());
  ep->rx.pop_front();
  return p;
}

Result<Packet> CassiniNic::poll_rx(EndpointId ep_id) {
  const auto ep = find_ep(ep_id);
  if (!ep) {
    return Result<Packet>(not_found(strfmt("NIC %u: no endpoint %u", addr_,
                                           ep_id)));
  }
  std::lock_guard<std::mutex> lock(ep->mutex);
  if (ep->rx.empty()) return Result<Packet>(unavailable("rx queue empty"));
  Packet p = std::move(ep->rx.front());
  ep->rx.pop_front();
  return p;
}

Result<Event> CassiniNic::wait_event(EndpointId ep_id, int real_timeout_ms) {
  const auto ep = find_ep(ep_id);
  if (!ep) {
    return Result<Event>(not_found(strfmt("NIC %u: no endpoint %u", addr_,
                                          ep_id)));
  }
  std::unique_lock<std::mutex> lock(ep->mutex);
  const bool ready = ep->cv.wait_for(
      lock, std::chrono::milliseconds(real_timeout_ms),
      [&] { return !ep->events.empty() || ep->closed; });
  if (!ready) return Result<Event>(timeout_error("wait_event timed out"));
  if (ep->events.empty()) {
    return Result<Event>(failed_precondition("endpoint closed"));
  }
  Event e = std::move(ep->events.front());
  ep->events.pop_front();
  return e;
}

Result<Event> CassiniNic::poll_event(EndpointId ep_id) {
  const auto ep = find_ep(ep_id);
  if (!ep) {
    return Result<Event>(not_found(strfmt("NIC %u: no endpoint %u", addr_,
                                          ep_id)));
  }
  std::lock_guard<std::mutex> lock(ep->mutex);
  if (ep->events.empty()) return Result<Event>(unavailable("no events"));
  Event e = std::move(ep->events.front());
  ep->events.pop_front();
  return e;
}

NicCounters CassiniNic::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

}  // namespace shs::hsn
