// fabric.hpp — topology builder: N nodes, one Cassini NIC each, wired
// into one of the supported switch topologies (the paper's testbed is two
// OpenCUBE nodes on a single Rosetta switch; fat-tree and dragonfly plans
// scale the same stack to rack-and-beyond clusters).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "hsn/cassini_nic.hpp"
#include "hsn/fabric_manager.hpp"
#include "hsn/rosetta_switch.hpp"
#include "hsn/timing.hpp"
#include "hsn/topology.hpp"

namespace shs::hsn {

/// Owns the switches, inter-switch links, timing model, and per-node NICs.
class Fabric {
 public:
  /// Builds a fabric of `nodes` NICs (addresses 0..nodes-1) wired per
  /// `topology` (default: the paper's single switch).
  static std::unique_ptr<Fabric> create(std::size_t nodes,
                                        TimingConfig config = {},
                                        std::uint64_t seed = 0x51e6,
                                        TopologyConfig topology = {});

  /// Switch 0 — *the* switch on a single-switch fabric.  Legacy accessor
  /// for paper-testbed (2 nodes, 1 switch) call sites only: on a
  /// multi-switch fabric "switch 0" is merely the first edge switch and
  /// is the wrong ACL target for any NIC homed elsewhere — use
  /// switch_for(addr) / switch_at(i) there.
  [[nodiscard]] RosettaSwitch& fabric_switch() noexcept {
    return *switches_.front();
  }
  [[nodiscard]] const RosettaSwitch& fabric_switch() const noexcept {
    return *switches_.front();
  }
  /// Legacy single-switch companion of fabric_switch(); same caveat.
  [[nodiscard]] std::shared_ptr<RosettaSwitch> switch_ptr() const noexcept {
    return switches_.front();
  }
  [[nodiscard]] std::shared_ptr<TimingModel> timing() const noexcept {
    return timing_;
  }

  // -- Topology introspection.
  [[nodiscard]] const TopologyConfig& topology() const noexcept {
    return topology_;
  }
  [[nodiscard]] RoutingPolicy routing_policy() const noexcept {
    return topology_.routing;
  }
  /// The currently *published* plan (next hops, candidates, hop
  /// distances) shared with every switch — the fabric manager's latest
  /// version, not necessarily the pristine build.  Its nic_home vector
  /// is cleared — use home_switch.  Returned shared so the snapshot
  /// outlives a concurrent republish.
  [[nodiscard]] std::shared_ptr<const TopologyPlan> plan() const {
    return manager_->plan();
  }
  [[nodiscard]] std::size_t switch_count() const noexcept {
    return switches_.size();
  }
  [[nodiscard]] RosettaSwitch& switch_at(std::size_t i) {
    return *switches_.at(i);
  }
  /// Edge switch hosting NIC `addr` (kInvalidSwitch if out of range).
  [[nodiscard]] SwitchId home_switch(NicAddr addr) const noexcept {
    return addr < nic_home_->size() ? (*nic_home_)[addr] : kInvalidSwitch;
  }
  /// Shared pointer to the edge switch of NIC `addr` — what a node's CXI
  /// driver must program VNI ACLs against.
  [[nodiscard]] std::shared_ptr<RosettaSwitch> switch_for(
      NicAddr addr) const {
    const SwitchId home = home_switch(addr);
    return home == kInvalidSwitch ? nullptr : switches_.at(home);
  }

  /// The single data-plane entry point: routes `p` at its source NIC's
  /// edge switch, per the fabric manager's currently published tables.
  /// NICs inject through this (instead of holding a switch pointer they
  /// would have to re-validate after a topology republish).  Inline: it
  /// runs once per packet.
  RouteResult inject(Packet&& p) {
    const SwitchId home = home_switch(p.src);
    if (home == kInvalidSwitch) {
      RouteResult result;
      result.reason = DropReason::kNoRoute;
      return result;
    }
    return switches_[home]->route(std::move(p));
  }

  // -- Fault tolerance: failure injection, observation, re-routing.
  //    All forwarded to the FabricManager; see fabric_manager.hpp for
  //    the repair contract (data plane marked down immediately, tables
  //    republished synchronously unless auto-repair is off).

  [[nodiscard]] FabricManager& manager() noexcept { return *manager_; }
  [[nodiscard]] const FabricManager& manager() const noexcept {
    return *manager_;
  }
  Status fail_link(SwitchId a, SwitchId b) {
    return manager_->fail_link(a, b);
  }
  Status restore_link(SwitchId a, SwitchId b) {
    return manager_->restore_link(a, b);
  }
  Status fail_switch(SwitchId s) { return manager_->fail_switch(s); }
  Status restore_switch(SwitchId s) { return manager_->restore_switch(s); }
  [[nodiscard]] SwitchHealth switch_health(SwitchId s) const {
    return manager_->switch_health(s);
  }
  [[nodiscard]] bool link_up(SwitchId a, SwitchId b) const {
    return manager_->link_up(a, b);
  }

  // -- Lossy/transient fault plane (see docs/reliability.md).  Composes
  //    with fail_link/fail_switch: those mark elements down through the
  //    manager (triggering replans); these inject probabilistic loss and
  //    timed flaps the manager never sees.  Flag-gated on every switch —
  //    zero cost until armed.

  /// Installs `p` on every switch: all inter-switch uplinks plus every
  /// edge (switch->NIC) link.
  void set_fault_profile(const FaultProfile& p) {
    for (auto& sw : switches_) sw->set_fault_profile(p);
  }
  /// Installs `p` on both directions of the physical link (a, b).
  Status set_link_fault_profile(SwitchId a, SwitchId b,
                                const FaultProfile& p);
  /// Flaps both directions of (a, b) for [down_from, down_until) of
  /// packet virtual time — transient, invisible to the fabric manager.
  Status add_link_flap(SwitchId a, SwitchId b, SimTime down_from,
                       SimTime down_until);
  /// Removes every installed profile and flap window fabric-wide.
  void clear_fault_profiles() {
    for (auto& sw : switches_) sw->clear_faults();
  }

  // -- Reliable delivery (NIC retransmit protocol; docs/reliability.md).

  /// Installs `cfg` on every NIC.  Call before traffic starts.
  void set_reliability(const ReliabilityConfig& cfg) {
    for (auto& nic : nics_) nic->set_reliability(cfg);
  }
  /// Installs `hook` on every NIC (single-threaded harnesses only; see
  /// CassiniNic::set_retry_hook).
  void set_retry_hook(const CassiniNic::RetryHook& hook) {
    for (auto& nic : nics_) nic->set_retry_hook(hook);
  }
  /// Flips every NIC's degraded-mode flag (control plane down —
  /// replan-dependent retries stretch their budget; see
  /// ReliabilityConfig::degraded_retry_factor).
  void set_degraded(bool on) noexcept {
    for (auto& nic : nics_) nic->set_degraded(on);
  }
  /// Reliability accounting summed across every NIC.
  [[nodiscard]] ReliabilityCounters reliability_totals() const;
  /// Total NIC-side RX-ring overflow drops (DropReason::kRxOverflow).
  [[nodiscard]] std::uint64_t total_rx_overflow() const;
  /// The fabric manager's currently published table version.
  [[nodiscard]] std::uint64_t plan_version() const {
    return manager_->plan_version();
  }

  /// Toggles VNI enforcement on every switch.  The VNI checks are edge
  /// properties (source edge checks the sender, destination edge the
  /// receiver), so a consistent fabric-wide state must reach all
  /// switches — toggling just one leaves cross-switch traffic checked
  /// at the other edge.
  void set_enforcement(bool on) noexcept {
    for (auto& sw : switches_) sw->set_enforcement(on);
  }

  // -- Fabric-wide accounting (sums across all switches).
  [[nodiscard]] SwitchCounters total_counters() const;
  [[nodiscard]] SwitchCounters total_counters_for_vni(Vni vni) const;
  /// Bytes that crossed inter-switch links (0 on a single switch).
  [[nodiscard]] std::uint64_t cross_switch_bytes() const;

  // -- Congestion telemetry (see RosettaSwitch::uplink_queue_lag).
  /// Worst current queue lag across every inter-switch uplink at virtual
  /// time `at` — the fabric-wide congestion snapshot the scheduler's bind
  /// telemetry samples.
  [[nodiscard]] SimDuration max_uplink_lag(SimTime at) const;
  /// Worst queue lag any uplink ever saw at forward time (high-water
  /// mark over the fabric's lifetime).
  [[nodiscard]] SimDuration peak_uplink_lag() const;

  /// NIC at fabric address `addr` (must be < node_count()).
  [[nodiscard]] CassiniNic& nic(NicAddr addr) { return *nics_.at(addr); }
  [[nodiscard]] const CassiniNic& nic(NicAddr addr) const {
    return *nics_.at(addr);
  }

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nics_.size();
  }

 private:
  Fabric() = default;
  TopologyConfig topology_;
  std::shared_ptr<TimingModel> timing_;
  std::shared_ptr<const std::vector<SwitchId>> nic_home_;
  std::vector<std::shared_ptr<RosettaSwitch>> switches_;
  std::unique_ptr<FabricManager> manager_;
  std::vector<std::unique_ptr<CassiniNic>> nics_;
};

}  // namespace shs::hsn
