// fabric.hpp — topology builder: N nodes, one Cassini NIC each, one
// Rosetta switch (the paper's testbed is two OpenCUBE nodes on one switch).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "hsn/cassini_nic.hpp"
#include "hsn/rosetta_switch.hpp"
#include "hsn/timing.hpp"

namespace shs::hsn {

/// Owns the switch, timing model, and per-node NICs.
class Fabric {
 public:
  /// Builds a fabric of `nodes` NICs (addresses 0..nodes-1).
  static std::unique_ptr<Fabric> create(std::size_t nodes,
                                        TimingConfig config = {},
                                        std::uint64_t seed = 0x51e6);

  [[nodiscard]] RosettaSwitch& fabric_switch() noexcept { return *switch_; }
  [[nodiscard]] const RosettaSwitch& fabric_switch() const noexcept {
    return *switch_;
  }
  [[nodiscard]] std::shared_ptr<RosettaSwitch> switch_ptr() const noexcept {
    return switch_;
  }
  [[nodiscard]] std::shared_ptr<TimingModel> timing() const noexcept {
    return timing_;
  }

  /// NIC at fabric address `addr` (must be < node_count()).
  [[nodiscard]] CassiniNic& nic(NicAddr addr) { return *nics_.at(addr); }
  [[nodiscard]] const CassiniNic& nic(NicAddr addr) const {
    return *nics_.at(addr);
  }

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nics_.size();
  }

 private:
  Fabric() = default;
  std::shared_ptr<TimingModel> timing_;
  std::shared_ptr<RosettaSwitch> switch_;
  std::vector<std::unique_ptr<CassiniNic>> nics_;
};

}  // namespace shs::hsn
