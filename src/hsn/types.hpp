// types.hpp — common Slingshot fabric vocabulary.
#pragma once

#include <cstdint>
#include <string_view>

namespace shs::hsn {

/// Fabric address of a NIC (Slingshot: node address assigned by the
/// fabric manager).  One NIC per node in our topologies.
using NicAddr = std::uint32_t;
constexpr NicAddr kInvalidNic = 0xffffffffu;

/// Identifier of one Rosetta switch within a multi-switch fabric (edge
/// switches first, then spines / padding switches, as laid out by the
/// TopologyPlan).
using SwitchId = std::uint32_t;
constexpr SwitchId kInvalidSwitch = 0xffffffffu;

/// Operational state of one directed inter-switch link.  The fabric
/// manager marks links down when it observes a failure (LLR retries
/// exhausted on real Slingshot); packets hitting a down link are dropped
/// and counted until the re-routed tables land.
enum class LinkState : std::uint8_t {
  kUp = 0,
  kDown,
};

/// Health of one Rosetta switch.  A failed switch drops everything —
/// local deliveries and transit alike — as a powered-off ASIC would.
enum class SwitchHealth : std::uint8_t {
  kHealthy = 0,
  kFailed,
};

constexpr std::string_view switch_health_name(SwitchHealth h) noexcept {
  switch (h) {
    case SwitchHealth::kHealthy: return "healthy";
    case SwitchHealth::kFailed: return "failed";
  }
  return "UNKNOWN";
}

/// Virtual Network ID — an unsigned integer naming a layer-2 isolation
/// domain (Section II-C).  The Rosetta switch only routes a packet if both
/// the sender and receiver port are authorized for the packet's VNI.
using Vni = std::uint32_t;
constexpr Vni kInvalidVni = 0;

/// Endpoint index local to a NIC.
using EndpointId = std::uint32_t;

/// Remote-access key for a registered memory region.
using RKey = std::uint64_t;

/// Slingshot traffic classes (Section I use-case 1: e.g. a latency-critical
/// solver co-scheduled with bulk checkpointing traffic).
enum class TrafficClass : std::uint8_t {
  kDedicatedAccess = 0,  ///< highest priority, lowest queueing delay
  kLowLatency = 1,
  kBulkData = 2,
  kBestEffort = 3,
};
constexpr int kNumTrafficClasses = 4;

constexpr std::string_view traffic_class_name(TrafficClass tc) noexcept {
  switch (tc) {
    case TrafficClass::kDedicatedAccess: return "DEDICATED_ACCESS";
    case TrafficClass::kLowLatency: return "LOW_LATENCY";
    case TrafficClass::kBulkData: return "BULK_DATA";
    case TrafficClass::kBestEffort: return "BEST_EFFORT";
  }
  return "UNKNOWN";
}

/// Fabric-level operation carried by a packet.
enum class PacketOp : std::uint8_t {
  kSend = 0,       ///< two-sided message (matched at the receiver)
  kRdmaWrite,      ///< one-sided write into a registered remote MR
  kRdmaRead,       ///< one-sided read request
  kRdmaReadResp,   ///< data response to a read request
  kAck,            ///< delivery acknowledgement (completes sender ops)
  /// Target-side rejection of a one-sided op (missing MR, VNI mismatch,
  /// out-of-bounds).  Carries the RmaNackReason code in `tag`; completes
  /// the initiator's op with a permanent, fail-fast error — a denied RMA
  /// is never silent and never retried.
  kRmaNack,
};

}  // namespace shs::hsn
