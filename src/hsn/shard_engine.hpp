// shard_engine.hpp — conservative parallel data plane: the fabric's
// switches are partitioned into sequential *domains* (dragonfly groups;
// one switch per domain elsewhere), each domain is driven by exactly one
// worker thread at a time, and domains advance together through
// conservative virtual-time windows [T, T + L) whose width L (the
// *lookahead*) is derived from the minimum latency of any cross-domain
// link.  Inside a window a domain processes its pending packet hops in
// (virtual time, sequence) order; hops that cross a domain boundary are
// buffered in per-destination outboxes and merged at the window barrier
// in a fixed order (destination domain id, then source domain id, then
// FIFO).  Because every cross-domain hop arrives at least one lookahead
// in the future, no domain can receive work dated inside the window it
// is executing — so the schedule, and therefore every per-seed golden
// digest, is bit-identical whether the windows run on 1 thread or N.
//
// Thread-safety contract (see docs/performance.md, "Threading model"):
//   - All public methods are driver-thread-only.  The engine owns the
//     worker pool internally; callers never see worker threads.
//   - Between flush() calls (and inside a barrier observer) the workers
//     are quiescent and every fabric/NIC counter read is coherent.
//   - Control-plane mutations (fail_link, repair, set_fault_profile,
//     VNI churn, ...) are only legal between flushes.
//   - Determinism across thread counts additionally requires
//     TimingConfig::jitter_amplitude == 0 (jitter draws come from one
//     shared RNG whose draw order is schedule-dependent otherwise).
//
// The engine drives two-sided sends (post_send).  One-sided RMA stays on
// the legacy synchronous path: its target-side reply injection re-enters
// the fabric from the delivery callback, which would escape the
// domain-ownership discipline.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "hsn/packet.hpp"
#include "hsn/rosetta_switch.hpp"
#include "hsn/types.hpp"
#include "util/status.hpp"
#include "util/units.hpp"

namespace shs::hsn {

class Fabric;

class ShardEngine {
 public:
  /// Builds the domain partition and lookahead from `fabric`'s topology
  /// and spawns `threads` workers (<= 1 runs windows inline on the
  /// driver thread — the reference schedule).  The fabric must outlive
  /// the engine; topology wiring must be complete.
  ShardEngine(Fabric& fabric, int threads);
  ~ShardEngine();
  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  /// Stages a two-sided send exactly as CassiniNic::post_send would
  /// accept it (same TX scheduling, same sequence numbers), to be walked
  /// through the fabric by the next flush().  Size-only; completion
  /// events are not raised (op_id 0 semantics), but terminal failures
  /// still push kError events at flush time.  With reliability enabled
  /// on the source NIC the op gets the full retransmit protocol, driven
  /// at window barriers.
  Status post_send(NicAddr src, EndpointId ep, NicAddr dst,
                   EndpointId dst_ep, std::uint64_t tag,
                   std::uint64_t size_bytes, SimTime local_vt);

  /// Runs conservative windows until every staged packet (including
  /// retransmits it spawns) has delivered or terminally dropped.
  void flush();

  [[nodiscard]] std::size_t domain_count() const noexcept {
    return domains_.size();
  }
  [[nodiscard]] int threads() const noexcept { return threads_; }
  [[nodiscard]] SimDuration lookahead() const noexcept { return lookahead_; }
  /// Windows executed across all flushes (one barrier each).
  [[nodiscard]] std::uint64_t windows_run() const noexcept {
    return windows_run_;
  }
  /// Fabric-injection attempts staged so far: posts plus retransmits.
  /// Every attempt terminates in exactly one switch-counter bucket
  /// (delivered — including ACK-lost deliveries — or one drop reason),
  /// so at any barrier:
  ///   attempts_injected() == delivered + dropped_total() + in_flight().
  [[nodiscard]] std::uint64_t attempts_injected() const noexcept {
    return attempts_injected_;
  }
  /// Attempts currently staged in domain heaps or outboxes (0 after
  /// flush() returns).  Driver-thread-only, like everything else.
  [[nodiscard]] std::uint64_t in_flight() const;

  /// Installs `fn` to run on the driver thread at every window barrier,
  /// after outbox/notice merging, while all workers are quiescent —
  /// the hook counter-invariant tests use to observe mid-flush state
  /// coherently.  Pass nullptr to remove.
  void set_barrier_observer(std::function<void()> fn) {
    barrier_observer_ = std::move(fn);
  }

 private:
  /// One staged hop of one packet attempt: `p` parked at switch `at`,
  /// ordered by (p.inject_vt, seq).
  struct Item {
    Packet p;
    SwitchId at = kInvalidSwitch;
    std::uint64_t seq = 0;  ///< globally unique, thread-count-invariant
    std::int32_t ttl = 0;
    bool check_src = false;
    std::uint32_t attempt = 0;  ///< 0 = first try, n = nth retransmit
  };
  /// Max-heap comparator giving the (vt, seq)-minimum at front().
  struct ItemAfter {
    bool operator()(const Item& a, const Item& b) const noexcept {
      if (a.p.inject_vt != b.p.inject_vt) {
        return a.p.inject_vt > b.p.inject_vt;
      }
      return a.seq > b.seq;
    }
  };
  /// Outcome of a terminal step, reported to the op's home domain and
  /// processed on the driver thread at the barrier.
  struct Notice {
    enum class Kind : std::uint8_t { kDelivered, kRetry, kDrop };
    Kind kind = Kind::kDrop;
    NicAddr src = kInvalidNic;
    EndpointId src_ep = 0;
    std::uint64_t nic_seq = 0;  ///< NIC-assigned Packet::seq (op key)
    DropReason reason = DropReason::kNone;
    SimTime vt = 0;
    std::uint32_t attempt = 0;
    bool budget_exhausted = false;
  };
  /// Retransmit state for one reliable op, owned by its home domain's
  /// map but only ever touched by the driver thread.
  struct OpState {
    Packet master;
    SimTime vt_io = 0;  ///< accepted_vt plus charged backoffs
    std::uint64_t plan_v0 = 0;
    bool have_v0 = false;
    std::uint32_t attempt = 0;
  };
  struct Domain {
    std::uint32_t id = 0;
    std::vector<Item> heap;  ///< binary heap via std::push/pop_heap
    /// Cross-domain hops produced this window, per destination domain.
    std::vector<std::vector<Item>> outbox;
    /// Terminal outcomes this window, per home (= source) domain.
    std::vector<std::vector<Notice>> notices;
    std::uint64_t next_seq = 0;
    /// Reliable ops homed here, keyed (src NIC << 44 | packet seq).
    std::unordered_map<std::uint64_t, OpState> ops;
  };

  static std::uint64_t op_key(NicAddr src, std::uint64_t nic_seq) noexcept {
    return (static_cast<std::uint64_t>(src) << 44) |
           (nic_seq & ((1ULL << 44) - 1));
  }
  std::uint64_t take_seq(Domain& d) noexcept {
    return d.next_seq++ * domains_.size() + d.id;
  }

  void stage_attempt(Domain& home, Packet&& p, std::uint32_t attempt);
  /// Pops and steps every item dated before `window_end` (worker or
  /// inline driver; must be the domain's only toucher).
  void run_domain_window(Domain& d, SimTime window_end);
  void step_item(Domain& d, Item&& it);
  /// Merges outboxes and processes notices in deterministic order.
  void barrier_merge();
  void process_notice(const Notice& n);
  /// Launches one window [*, window_end) across all domains on the
  /// worker pool (or inline when threads_ <= 1).
  void run_window(SimTime window_end);
  void worker_main();
  /// Earliest staged virtual time across all domains, or
  /// `kNoPendingWork` when every heap is empty.
  [[nodiscard]] SimTime earliest_pending() const;

  static constexpr SimTime kNoPendingWork =
      std::numeric_limits<SimTime>::max();

  Fabric& fabric_;
  int threads_ = 1;
  SimDuration lookahead_ = 0;
  std::vector<std::uint32_t> domain_of_switch_;
  std::vector<std::uint32_t> home_domain_of_nic_;
  std::vector<RosettaSwitch*> switch_ptr_;
  std::vector<Domain> domains_;
  std::uint64_t attempts_injected_ = 0;
  std::uint64_t windows_run_ = 0;
  std::function<void()> barrier_observer_;

  // -- Worker pool.  Epoch-driven: the driver publishes window_end_ and
  //    bumps epoch_ under pool_mu_; workers claim domains via the
  //    next_domain_ ticket and report completion under the same mutex.
  //    The mutex hand-offs give every domain mutation a happens-before
  //    edge to the driver's barrier work (and to the next window's
  //    workers), so the engine is race-free by construction.
  std::vector<std::thread> workers_;
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;   // workers: new epoch / shutdown
  std::condition_variable done_cv_;   // driver: all workers done
  std::uint64_t epoch_ = 0;
  std::size_t done_count_ = 0;
  SimTime window_end_ = 0;
  bool shutdown_ = false;
  std::atomic<std::size_t> next_domain_{0};
};

}  // namespace shs::hsn
