// shard_engine.hpp — conservative parallel data plane: the fabric's
// switches are partitioned into sequential *domains* (dragonfly groups;
// one switch per domain elsewhere), each domain is driven by exactly one
// worker thread at a time, and domains advance together through
// conservative virtual-time windows.  Each domain j gets its own window
// edge E_j = min over source domains i of (earliest_i + edge(i, j)),
// where edge(i, j) is the cheapest single cross-domain hop from i to j
// (link latency plus the hop floor) taken from the pristine base plan —
// the per-domain-pair lookahead matrix.  Within one window only
// single-hop cross-domain transfers can occur (a forwarded packet parks
// in the outbox until the barrier), so direct edges are the exact bound;
// domains with no in-edge from any pending domain run unbounded.
// Inside a window a domain processes its pending packet hops in
// (virtual time, sequence) order; hops that cross a domain boundary are
// buffered in per-destination outboxes and merged at the window barrier
// in a fixed order (destination domain id, then source domain id, then
// FIFO).  Because every cross-domain hop arrives at or beyond the
// receiving domain's window edge, no domain can receive work dated
// inside the window it is executing — so the schedule, and therefore
// every per-seed golden digest, is bit-identical whether the windows
// run on 1 thread or N.
//
// Executor layout (the overhead-gap rework; see docs/performance.md,
// "Threading model"):
//   - Packet storage is *pooled*: every staged attempt lives in a
//     per-domain slot pool (`Domain::pool` + free list) and never moves
//     while it hops inside its domain.  Only the 24-byte (vt, seq,
//     slot) refs move through the ordering structures.
//   - Windows execute off a *batched run queue*: newly staged refs
//     collect in `fresh`, are sorted once per batch and merged into the
//     ascending `sorted` array, and a window drains the prefix dated
//     before the window edge by bumping a cursor — no per-item
//     push_heap/pop_heap.  Items spawned mid-window (intra-domain
//     forwards, target-side replies) that still land inside the window
//     go through a small ref min-heap (`spawn`) that is empty again by
//     the window's end.
//   - Outbox and notice staging is epoch-cleared (capacity retained
//     mid-flush, nothing shrinks while traffic is in flight) and
//     trimmed back to the flush's high-water mark after the flush
//     drains, so a chaos burst does not pin O(burst) memory forever.
//   - Window boundaries are deliberately *not* adaptive-extended:
//     under reliable traffic the barrier bucketing of retransmit
//     charges and error events is part of the deterministic schedule
//     (per-NIC RNG draws happen in barrier order), so moving an edge
//     would change per-seed digests.  What is adaptive is the barrier
//     *cost*: a window that staged no cross-domain traffic and no
//     notices skips the merge entirely, and with no observer installed
//     the worker pool chains consecutive windows itself — the last
//     worker to finish a window runs the barrier and relaunches the
//     next one without a driver wake-up (spin-then-park keeps the
//     workers hot between windows).
//
// Thread-safety contract (see docs/performance.md, "Threading model"):
//   - All public methods are driver-thread-only.  The engine owns the
//     worker pool internally; callers never see worker threads.
//   - Between flush() calls (and inside a barrier observer) the workers
//     are quiescent and every fabric/NIC counter read is coherent.
//   - Control-plane mutations (fail_link, repair, set_fault_profile,
//     VNI churn, ...) are only legal between flushes.
//   - Determinism across thread counts additionally requires
//     TimingConfig::jitter_amplitude == 0 (jitter draws come from one
//     shared RNG whose draw order is schedule-dependent otherwise).
//
// The engine drives the full verb set: two-sided sends (post_send) and
// one-sided RMA (post_rma_write / post_rma_read).  A delivery's
// target-side reply (RMA ACK, read response, NACK) is returned by
// CassiniNic::deliver_from_engine instead of re-entering Fabric::inject
// from the callback, and is staged in the *target's* domain — so
// completion traffic, and its reliable-delivery retransmits, ride the
// same deterministic (domain, vt, seq) merge order as everything else.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "hsn/packet.hpp"
#include "hsn/rosetta_switch.hpp"
#include "hsn/types.hpp"
#include "util/status.hpp"
#include "util/units.hpp"

namespace shs::hsn {

class Fabric;

/// Engine-level perf-counter block (see docs/performance.md for the
/// glossary).  Snapshot via ShardEngine::stats(); all counters are
/// cumulative over the engine's lifetime and coherent whenever the
/// driver can legally read them (between flushes / at barriers).
struct ShardEngineStats {
  std::uint64_t flushes = 0;        ///< flush() calls that ran >= 1 window
  std::uint64_t windows = 0;        ///< conservative windows executed
  std::uint64_t items_stepped = 0;  ///< one-hop step() calls executed
  std::uint64_t intra_forwards = 0; ///< forwards staying in-domain (no move)
  std::uint64_t cross_forwards = 0; ///< forwards parked in an outbox
  std::uint64_t spawn_heap_ops = 0; ///< push+pop on the mid-window ref heap
  std::uint64_t batch_sorts = 0;    ///< fresh-ref batches sorted+merged
  std::uint64_t batch_sorted_refs = 0;  ///< refs across those batches
  std::uint64_t notices = 0;        ///< terminal outcomes staged
  std::uint64_t pool_hits = 0;      ///< slot allocs served by the free list
  std::uint64_t pool_misses = 0;    ///< slot allocs that grew the pool
  std::uint64_t silent_barriers = 0;  ///< barriers with nothing to merge
  std::uint64_t chained_windows = 0;  ///< windows relaunched worker-side
  std::uint64_t worker_wakeups = 0;   ///< cv wake-ups of parked workers
  std::uint64_t staging_trims = 0;    ///< post-flush high-water-mark trims

  [[nodiscard]] double windows_per_flush() const noexcept {
    return flushes ? static_cast<double>(windows) / static_cast<double>(flushes)
                   : 0.0;
  }
  [[nodiscard]] double items_per_window() const noexcept {
    return windows
               ? static_cast<double>(items_stepped) / static_cast<double>(windows)
               : 0.0;
  }
  [[nodiscard]] double pool_hit_rate() const noexcept {
    const double total = static_cast<double>(pool_hits + pool_misses);
    return total > 0 ? static_cast<double>(pool_hits) / total : 0.0;
  }
};

class ShardEngine {
 public:
  /// Builds the domain partition and lookahead from `fabric`'s topology
  /// and spawns `threads` workers (<= 1 runs windows inline on the
  /// driver thread — the reference schedule).  The fabric must outlive
  /// the engine; topology wiring must be complete.
  ShardEngine(Fabric& fabric, int threads);
  ~ShardEngine();
  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  /// Stages a two-sided send exactly as CassiniNic::post_send would
  /// accept it (same TX scheduling, same sequence numbers), to be walked
  /// through the fabric by the next flush().  Size-only; completion
  /// events are not raised (op_id 0 semantics), but terminal failures
  /// still push kError events at flush time.  With reliability enabled
  /// on the source NIC the op gets the full retransmit protocol, driven
  /// at window barriers.
  Status post_send(NicAddr src, EndpointId ep, NicAddr dst,
                   EndpointId dst_ep, std::uint64_t tag,
                   std::uint64_t size_bytes, SimTime local_vt);

  /// Stages a one-sided write exactly as CassiniNic::rdma_write would
  /// accept it.  `op_id` tags the initiator's completion (the target's
  /// ACK — or fail-fast NACK — raises the endpoint event at flush time);
  /// op_id 0 means the caller does not want per-op events matched.
  Status post_rma_write(NicAddr src, EndpointId ep, NicAddr dst, RKey rkey,
                        std::uint64_t offset, std::uint64_t size_bytes,
                        std::span<const std::byte> payload, SimTime local_vt,
                        std::uint64_t op_id = 0);

  /// Stages a one-sided read request; the target's data response (or
  /// NACK) raises the initiator's endpoint event at flush time.
  Status post_rma_read(NicAddr src, EndpointId ep, NicAddr dst, RKey rkey,
                       std::uint64_t offset, std::uint64_t size_bytes,
                       SimTime local_vt, std::uint64_t op_id = 0);

  /// Runs conservative windows until every staged packet (including
  /// retransmits and target-side replies it spawns) has delivered or
  /// terminally dropped.
  void flush();

  [[nodiscard]] std::size_t domain_count() const noexcept {
    return domains_.size();
  }
  [[nodiscard]] int threads() const noexcept { return threads_; }
  /// Smallest entry of the per-pair lookahead matrix — the conservative
  /// global window floor (0 when there is a single domain, i.e. windows
  /// are unbounded).  Individual domain windows are at least this wide.
  [[nodiscard]] SimDuration lookahead() const noexcept { return lookahead_; }
  /// Windows executed across all flushes (one barrier each).
  [[nodiscard]] std::uint64_t windows_run() const noexcept {
    return windows_run_;
  }
  /// Fabric-injection attempts staged so far: posts plus retransmits.
  /// Every attempt terminates in exactly one switch-counter bucket
  /// (delivered — including ACK-lost deliveries — or one drop reason),
  /// so at any barrier:
  ///   attempts_injected() == delivered + dropped_total() + in_flight().
  [[nodiscard]] std::uint64_t attempts_injected() const noexcept {
    std::uint64_t total = 0;
    for (const auto& d : domains_) total += d.attempts;
    return total;
  }
  /// Attempts currently staged in domain run queues or outboxes (0
  /// after flush() returns).  Driver-thread-only, like everything else.
  [[nodiscard]] std::uint64_t in_flight() const;

  /// Cumulative executor counters (windows, items, pool hit rate,
  /// wakeups, ...) — the observability block the stack metrics surface.
  [[nodiscard]] ShardEngineStats stats() const;
  /// Host bytes currently reserved by the per-domain staging structures
  /// (slot pools, run-queue refs, outboxes, notice buffers).  Post-flush
  /// trimming bounds this near the flush's high-water mark — the memory
  /// observable the compaction tests pin.
  [[nodiscard]] std::size_t staging_bytes_reserved() const;

  /// Installs `fn` to run at every window barrier, after outbox/notice
  /// merging, while all workers are quiescent — the hook
  /// counter-invariant tests use to observe mid-flush state coherently.
  /// With an observer installed every barrier runs on the driver thread
  /// (worker-side window chaining is disabled).  Pass nullptr to
  /// remove.
  void set_barrier_observer(std::function<void()> fn) {
    barrier_observer_ = std::move(fn);
  }

 private:
  /// One staged attempt: packet `p` parked at switch `at`.  Lives in a
  /// per-domain slot pool; the ordering structures hold Refs, so the
  /// ~170-byte Item never moves for intra-domain hops.
  struct Item {
    // Scalars first: together with the packet's leading header fields
    // they fit the first cache line, so a step's capture block touches
    // one line before the switch walks the rest of the packet.
    SwitchId at = kInvalidSwitch;
    std::int32_t ttl = 0;
    std::uint64_t seq = 0;  ///< globally unique, thread-count-invariant
    std::uint32_t attempt = 0;  ///< 0 = first try, n = nth retransmit
    bool check_src = false;
    Packet p;
  };
  /// Ordering handle for one pooled item: (vt, seq) is the total order,
  /// `slot` resolves the payload.  24 bytes — this is what sorts, sits
  /// in run queues, and transits the spawn heap, instead of Items.
  ///
  /// `slot` packs the owning domain (high kSlotDomainBits) with the
  /// pool index, so a ref can outlive a hand-off to another domain's
  /// run queue without its Item moving: in single-threaded inline mode
  /// a cross-domain forward re-queues the 24-byte ref and the ~170-byte
  /// Item stays put in its source pool until the attempt terminates.
  /// (Pooled mode never queues foreign-owned refs — workers would race
  /// on the source pool — so there the packed domain always matches the
  /// executing domain.)
  struct Ref {
    SimTime vt = 0;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
    /// (vt, seq) fused into one 128-bit key so the run-queue sort and
    /// the three-way merge compare with a single wide comparison
    /// instead of a data-dependent two-field branch.  Virtual time is
    /// non-negative for the life of an engine, so the int64 -> uint64
    /// cast is order-preserving.
    unsigned __int128 key() const noexcept {
      return (static_cast<unsigned __int128>(static_cast<std::uint64_t>(vt))
              << 64) |
             seq;
    }
  };
  static constexpr std::uint32_t kSlotDomainShift = 20;
  static constexpr std::uint32_t kSlotIndexMask =
      (1u << kSlotDomainShift) - 1;
  /// Ascending (vt, seq) — the engine's canonical processing order.
  struct RefBefore {
    bool operator()(const Ref& a, const Ref& b) const noexcept {
      return a.key() < b.key();
    }
  };
  /// Max-heap comparator giving the (vt, seq)-minimum at front() for
  /// the small mid-window spawn heap.
  struct RefAfter {
    bool operator()(const Ref& a, const Ref& b) const noexcept {
      return a.key() > b.key();
    }
  };
  /// Outcome of a terminal step, reported to the op's home domain and
  /// processed single-threaded at the barrier.
  struct Notice {
    enum class Kind : std::uint8_t { kDelivered, kRetry, kDrop };
    Kind kind = Kind::kDrop;
    NicAddr src = kInvalidNic;
    EndpointId src_ep = 0;
    std::uint64_t nic_seq = 0;  ///< NIC-assigned Packet::seq (op key)
    std::uint64_t op_id = 0;    ///< caller's completion tag (0 = none)
    DropReason reason = DropReason::kNone;
    SimTime vt = 0;
    std::uint32_t attempt = 0;
    bool budget_exhausted = false;
  };
  /// Retransmit state for one reliable op, owned by its home domain's
  /// map but only ever touched at barriers (single-threaded).
  struct OpState {
    Packet master;
    SimTime vt_io = 0;  ///< accepted_vt plus charged backoffs
    std::uint64_t plan_v0 = 0;
    bool have_v0 = false;
    std::uint32_t attempt = 0;
  };
  /// Per-domain executor counters, written only by the domain's owning
  /// thread (worker mid-window, driver at barriers) and summed by
  /// stats() while everything is quiescent.
  struct DomainStats {
    std::uint64_t items_stepped = 0;
    std::uint64_t intra_forwards = 0;
    std::uint64_t cross_forwards = 0;
    std::uint64_t spawn_heap_ops = 0;
    std::uint64_t batch_sorts = 0;
    std::uint64_t batch_sorted_refs = 0;
    std::uint64_t notices = 0;
    std::uint64_t pool_hits = 0;
    std::uint64_t pool_misses = 0;
  };
  struct Domain {
    std::uint32_t id = 0;

    // -- Pooled item storage.  `pool` only grows mid-flush; freed slots
    //    recycle through `free_slots` so steady-state staging allocates
    //    nothing.  Trimmed back to the flush high-water mark between
    //    flushes (never mid-flight).
    std::vector<Item> pool;
    std::vector<std::uint32_t> free_slots;

    // -- Batched run queue: two sorted runs consumed by a two-cursor
    //    merge (plus the spawn heap — three-way at the step loop).
    //    `sorted[cursor..]` is the large stable backlog and is never
    //    recopied; `incoming[in_cursor..]` is the small churn run fed
    //    by each window's arrivals.  Newly staged refs collect unsorted
    //    in `fresh` (min tracked in fresh_min) and are sorted + folded
    //    into `incoming` in one batch when the domain next runs; when
    //    the backlog drains, the incoming run is promoted wholesale
    //    (vector swap, no copy) into its place.  `spawn` is the small
    //    mid-window run for items spawned inside the current window,
    //    kept ascending by sorted insertion and consumed at
    //    `sp_cursor` — spawn keys only grow as the window advances, so
    //    insertion is almost always a plain append and never lands
    //    below the cursor.  `scratch` is the reused merge buffer.
    std::vector<Ref> sorted;
    std::size_t cursor = 0;
    std::vector<Ref> incoming;
    std::size_t in_cursor = 0;
    std::vector<Ref> fresh;
    SimTime fresh_min = 0;  ///< kNoPendingWork when fresh is empty
    std::vector<Ref> spawn;
    std::size_t sp_cursor = 0;
    std::vector<Ref> scratch;

    /// Cross-domain hops produced this window, per destination domain.
    std::vector<std::vector<Item>> outbox;
    /// Terminal outcomes this window, per home (= source) domain.
    std::vector<std::vector<Notice>> notices;
    /// Set by the owning thread when this window parked anything in an
    /// outbox or staged a notice — lets the barrier skip the merge
    /// scan entirely for silent windows.
    bool staged_cross = false;

    std::uint64_t next_seq = 0;
    /// Reliable ops homed here, keyed (src NIC << 44 | packet seq).
    /// Touched by the owning worker mid-window (target-side reply
    /// registration) and at barriers — never both at once.
    std::unordered_map<std::uint64_t, OpState> ops;
    /// Fabric-injection attempts staged into this domain so far.
    /// Per-domain (not one engine-wide counter) because workers stage
    /// target-side replies mid-window; summed by the driver.
    std::uint64_t attempts = 0;
    /// Min (vt) over everything pending in this domain (kNoPendingWork
    /// when idle), valid at every barrier — maintained at staging and
    /// refreshed from the run-queue head at window end, so barrier
    /// scans are O(domains) instead of O(backlog).
    SimTime earliest = 0;
    /// This window's edge for the domain, computed from the
    /// pair-lookahead matrix before the window starts.
    SimTime window_end = 0;

    // -- Flush-local high-water marks, for the post-flush trim.
    std::size_t live_hwm = 0;    ///< max live pool slots this flush
    std::size_t ref_hwm = 0;     ///< max run-queue length this flush
    std::size_t outbox_hwm = 0;  ///< max single-outbox depth this flush
    std::size_t notice_hwm = 0;  ///< max single-notice-queue depth

    DomainStats stats;
  };

  static std::uint64_t op_key(NicAddr src, std::uint64_t nic_seq) noexcept {
    return (static_cast<std::uint64_t>(src) << 44) |
           (nic_seq & ((1ULL << 44) - 1));
  }
  std::uint64_t take_seq(Domain& d) noexcept {
    return d.next_seq++ * domains_.size() + d.id;
  }

  /// Grabs a pool slot (free list first) and returns it packed with the
  /// owning domain id.  The resolved Item reference is only stable
  /// until the next alloc_slot on the same domain.
  std::uint32_t alloc_slot(Domain& d) {
    std::uint32_t idx;
    if (!d.free_slots.empty()) {
      idx = d.free_slots.back();
      d.free_slots.pop_back();
      ++d.stats.pool_hits;
    } else {
      idx = static_cast<std::uint32_t>(d.pool.size());
      d.pool.emplace_back();
      ++d.stats.pool_misses;
    }
    const std::size_t live = d.pool.size() - d.free_slots.size();
    if (live > d.live_hwm) d.live_hwm = live;
    return (d.id << kSlotDomainShift) | idx;
  }
  Item& slot_item(std::uint32_t slot) {
    return domains_[slot >> kSlotDomainShift].pool[slot & kSlotIndexMask];
  }
  void free_slot(std::uint32_t slot) {
    domains_[slot >> kSlotDomainShift].free_slots.push_back(slot &
                                                            kSlotIndexMask);
  }
  /// Appends a staged ref to `fresh` (driver-side staging and
  /// beyond-window spawns), maintaining the pending-min caches.
  void push_fresh(Domain& d, const Ref& r) {
    d.fresh.push_back(r);
    if (r.vt < d.fresh_min) d.fresh_min = r.vt;
    if (r.vt < d.earliest) d.earliest = r.vt;
  }
  /// Sorted insertion into the mid-window spawn run.  Spawns are dated
  /// strictly after their spawner and items are consumed in ascending
  /// key order, so the new ref lands at or after `sp_cursor` — and in
  /// the common case (keys arriving near-ascending) at the very end.
  void push_spawn(Domain& d, const Ref& r) {
    ++d.stats.spawn_heap_ops;
    if (d.spawn.empty() || !RefBefore{}(r, d.spawn.back())) {
      d.spawn.push_back(r);
      return;
    }
    const auto pos = std::upper_bound(
        d.spawn.begin() + static_cast<std::ptrdiff_t>(d.sp_cursor),
        d.spawn.end(), r, RefBefore{});
    d.spawn.insert(pos, r);
  }

  void stage_attempt(Domain& home, Packet&& p, std::uint32_t attempt);
  /// Appends a terminal-outcome notice to the producing domain's
  /// per-home-domain queue (processed at the barrier) and marks the
  /// window non-silent.
  void stage_notice(Domain& d, const Notice& n);
  /// Shared post_* tail: registers reliable-op state in the source
  /// NIC's home domain and stages the first attempt.
  void stage_post(NicAddr src, Packet&& pkt, SimTime accepted_vt);
  /// Stages a target-side reply (RMA ACK / read response / NACK) in the
  /// target's own domain `d` — called by the owning worker mid-window,
  /// which is safe because the worker is the domain's only toucher and
  /// the reply's source NIC is homed exactly here.  Replies dated
  /// inside the running window enter the spawn heap.
  void stage_reply(Domain& d, Packet&& reply, SimTime window_end);
  /// Sorts the fresh batch and merges it into `sorted` (one batch per
  /// window at most; consumed prefix dropped in the same pass).
  void integrate_fresh(Domain& d);
  /// Drains every item dated before `d.window_end` in (vt, seq) order
  /// (worker or inline driver; must be the domain's only toucher).
  /// Refreshes `d.earliest` on exit.
  void run_domain_window(Domain& d);
  void step_item(Domain& d, const Ref& ref, SimTime window_end);
  /// Merges outboxes and processes notices in deterministic order.
  /// Returns false when the window was silent (nothing merged).
  bool barrier_merge();
  void process_notice(const Notice& n);
  /// One fused O(domains) scan: refreshes the earliest-pending view and
  /// computes every domain's `window_end` from the pair-lookahead
  /// matrix.  Returns false when no domain has pending work (flush
  /// done).  Rows of idle domains are skipped, so the pair part is
  /// O(pending-domains x domains).
  bool compute_window_ends();
  /// Runs one window across all domains inline (threads_ <= 1).
  void run_window_inline();
  /// Full worker-pool flush loop: launches windows, runs barriers, and
  /// (without an observer) lets the pool chain windows itself.
  void run_windows_pooled();
  /// Post-flush high-water-mark trim of the staging structures; a
  /// burst's memory is released once a later, smaller flush proves it
  /// dead (never mid-flush).
  void trim_staging();
  void worker_main();

  // -- Worker pool signalling (see the protocol comment in the .cpp).
  void bump_go_and_wake();
  void signal_driver(std::atomic<bool>& flag);
  void driver_wait(std::atomic<bool>& flag);
  /// Spin-then-park until `go_` moves past `seen`; returns false on
  /// shutdown.
  bool wait_for_go(std::uint64_t& seen);
  /// Barrier + relaunch executed by the last worker of a window when
  /// chaining is enabled.
  void worker_barrier_and_relaunch();

  static constexpr SimTime kNoPendingWork =
      std::numeric_limits<SimTime>::max();
  /// "No direct cross-domain link" sentinel in the pair matrix: the
  /// pair imposes no window constraint (within one window only
  /// single-hop cross-domain transfers occur, so only direct edges can
  /// carry work between domains).
  static constexpr SimDuration kInfEdge =
      std::numeric_limits<SimDuration>::max();
  /// Spin budget before a worker (or the waiting driver) parks on the
  /// condvar; windows are microseconds apart, so staying hot across a
  /// handful of them is the common case.  Past kSpinBeforeYield the
  /// spin yields each probe so oversubscribed hosts stay livable.
  static constexpr int kSpinBudget = 4096;
  static constexpr int kSpinBeforeYield = 128;
  /// Containers whose capacity exceeds 4x the flush high-water mark
  /// (and this floor) are trimmed after the flush drains.
  static constexpr std::size_t kTrimFloor = 64;

  Fabric& fabric_;
  int threads_ = 1;
  SimDuration lookahead_ = 0;
  std::vector<std::uint32_t> domain_of_switch_;
  std::vector<std::uint32_t> home_domain_of_nic_;
  std::vector<RosettaSwitch*> switch_ptr_;
  std::vector<Domain> domains_;
  /// Per-domain-pair lookahead, row-major [from * nd + to]: the cheapest
  /// single cross-domain hop (link latency + hop floor, clamped >= 1),
  /// or kInfEdge when no base-plan link connects the pair directly.
  std::vector<SimDuration> pair_edge_;
  std::uint64_t windows_run_ = 0;
  std::function<void()> barrier_observer_;

  // -- Driver-written global counters (domain-local ones live in
  //    DomainStats and are summed by stats()).
  std::uint64_t flushes_ = 0;
  std::uint64_t silent_barriers_ = 0;
  std::uint64_t chained_windows_ = 0;
  std::uint64_t worker_wakeups_ = 0;
  std::uint64_t staging_trims_ = 0;

  // -- Worker pool.  Window-generation driven: `go_` names the window
  //    generation workers should execute; each worker claims domains
  //    off the `next_domain_` ticket and bumps `arrived_` when the
  //    claims run dry.  The last arriver either runs the barrier itself
  //    and bumps `go_` again (chaining, no observer) or signals the
  //    driver.  Both sides spin kSpinBudget before parking on the
  //    condvar; the park/wake race is closed Dekker-style with seq_cst
  //    flags (`parked_workers_`, `driver_parked_`) rechecked under
  //    `pool_mu_`.  The acq_rel arrival counter orders every domain
  //    mutation before the barrier work, and the release bump of `go_`
  //    orders the barrier before the next window's claims.
  /// Inline (no-worker) mode only: cross-domain hops move straight into
  /// the destination's fresh batch instead of an outbox — the driver
  /// owns every domain, and run-queue order depends only on the
  /// already-assigned (vt, seq) keys, so the shortcut is digest-free.
  bool direct_cross_ = false;

  std::vector<std::thread> workers_;
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;    // workers: new window / shutdown
  std::condition_variable driver_cv_;  // driver: window or flush done
  std::atomic<std::uint64_t> go_{0};
  std::atomic<std::size_t> next_domain_{0};
  std::atomic<std::size_t> arrived_{0};
  std::atomic<bool> window_done_{false};  // per-window handoff (observer mode)
  std::atomic<bool> flush_done_{false};   // chained-flush handoff
  std::atomic<int> parked_workers_{0};
  std::atomic<bool> driver_parked_{false};
  bool chain_barriers_ = false;  ///< set per flush; workers read it quiescent
  std::atomic<bool> shutdown_{false};
  /// Reused scratch for compute_window_ends (coordinator-only).
  std::vector<std::uint32_t> pending_;
};

}  // namespace shs::hsn
