// shard_engine.hpp — conservative parallel data plane: the fabric's
// switches are partitioned into sequential *domains* (dragonfly groups;
// one switch per domain elsewhere), each domain is driven by exactly one
// worker thread at a time, and domains advance together through
// conservative virtual-time windows.  Each domain j gets its own window
// edge E_j = min over source domains i of (earliest_i + edge(i, j)),
// where edge(i, j) is the cheapest single cross-domain hop from i to j
// (link latency plus the hop floor) taken from the pristine base plan —
// the per-domain-pair lookahead matrix.  Within one window only
// single-hop cross-domain transfers can occur (a forwarded packet parks
// in the outbox until the barrier), so direct edges are the exact bound;
// domains with no in-edge from any pending domain run unbounded.
// Inside a window a domain processes its pending packet hops in
// (virtual time, sequence) order; hops that cross a domain boundary are
// buffered in per-destination outboxes and merged at the window barrier
// in a fixed order (destination domain id, then source domain id, then
// FIFO).  Because every cross-domain hop arrives at or beyond the
// receiving domain's window edge, no domain can receive work dated
// inside the window it is executing — so the schedule, and therefore
// every per-seed golden digest, is bit-identical whether the windows
// run on 1 thread or N.
//
// Thread-safety contract (see docs/performance.md, "Threading model"):
//   - All public methods are driver-thread-only.  The engine owns the
//     worker pool internally; callers never see worker threads.
//   - Between flush() calls (and inside a barrier observer) the workers
//     are quiescent and every fabric/NIC counter read is coherent.
//   - Control-plane mutations (fail_link, repair, set_fault_profile,
//     VNI churn, ...) are only legal between flushes.
//   - Determinism across thread counts additionally requires
//     TimingConfig::jitter_amplitude == 0 (jitter draws come from one
//     shared RNG whose draw order is schedule-dependent otherwise).
//
// The engine drives the full verb set: two-sided sends (post_send) and
// one-sided RMA (post_rma_write / post_rma_read).  A delivery's
// target-side reply (RMA ACK, read response, NACK) is returned by
// CassiniNic::deliver_from_engine instead of re-entering Fabric::inject
// from the callback, and is staged in the *target's* domain — so
// completion traffic, and its reliable-delivery retransmits, ride the
// same deterministic (domain, vt, seq) merge order as everything else.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "hsn/packet.hpp"
#include "hsn/rosetta_switch.hpp"
#include "hsn/types.hpp"
#include "util/status.hpp"
#include "util/units.hpp"

namespace shs::hsn {

class Fabric;

class ShardEngine {
 public:
  /// Builds the domain partition and lookahead from `fabric`'s topology
  /// and spawns `threads` workers (<= 1 runs windows inline on the
  /// driver thread — the reference schedule).  The fabric must outlive
  /// the engine; topology wiring must be complete.
  ShardEngine(Fabric& fabric, int threads);
  ~ShardEngine();
  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  /// Stages a two-sided send exactly as CassiniNic::post_send would
  /// accept it (same TX scheduling, same sequence numbers), to be walked
  /// through the fabric by the next flush().  Size-only; completion
  /// events are not raised (op_id 0 semantics), but terminal failures
  /// still push kError events at flush time.  With reliability enabled
  /// on the source NIC the op gets the full retransmit protocol, driven
  /// at window barriers.
  Status post_send(NicAddr src, EndpointId ep, NicAddr dst,
                   EndpointId dst_ep, std::uint64_t tag,
                   std::uint64_t size_bytes, SimTime local_vt);

  /// Stages a one-sided write exactly as CassiniNic::rdma_write would
  /// accept it.  `op_id` tags the initiator's completion (the target's
  /// ACK — or fail-fast NACK — raises the endpoint event at flush time);
  /// op_id 0 means the caller does not want per-op events matched.
  Status post_rma_write(NicAddr src, EndpointId ep, NicAddr dst, RKey rkey,
                        std::uint64_t offset, std::uint64_t size_bytes,
                        std::span<const std::byte> payload, SimTime local_vt,
                        std::uint64_t op_id = 0);

  /// Stages a one-sided read request; the target's data response (or
  /// NACK) raises the initiator's endpoint event at flush time.
  Status post_rma_read(NicAddr src, EndpointId ep, NicAddr dst, RKey rkey,
                       std::uint64_t offset, std::uint64_t size_bytes,
                       SimTime local_vt, std::uint64_t op_id = 0);

  /// Runs conservative windows until every staged packet (including
  /// retransmits and target-side replies it spawns) has delivered or
  /// terminally dropped.
  void flush();

  [[nodiscard]] std::size_t domain_count() const noexcept {
    return domains_.size();
  }
  [[nodiscard]] int threads() const noexcept { return threads_; }
  /// Smallest entry of the per-pair lookahead matrix — the conservative
  /// global window floor (0 when there is a single domain, i.e. windows
  /// are unbounded).  Individual domain windows are at least this wide.
  [[nodiscard]] SimDuration lookahead() const noexcept { return lookahead_; }
  /// Windows executed across all flushes (one barrier each).
  [[nodiscard]] std::uint64_t windows_run() const noexcept {
    return windows_run_;
  }
  /// Fabric-injection attempts staged so far: posts plus retransmits.
  /// Every attempt terminates in exactly one switch-counter bucket
  /// (delivered — including ACK-lost deliveries — or one drop reason),
  /// so at any barrier:
  ///   attempts_injected() == delivered + dropped_total() + in_flight().
  [[nodiscard]] std::uint64_t attempts_injected() const noexcept {
    std::uint64_t total = 0;
    for (const auto& d : domains_) total += d.attempts;
    return total;
  }
  /// Attempts currently staged in domain heaps or outboxes (0 after
  /// flush() returns).  Driver-thread-only, like everything else.
  [[nodiscard]] std::uint64_t in_flight() const;

  /// Installs `fn` to run on the driver thread at every window barrier,
  /// after outbox/notice merging, while all workers are quiescent —
  /// the hook counter-invariant tests use to observe mid-flush state
  /// coherently.  Pass nullptr to remove.
  void set_barrier_observer(std::function<void()> fn) {
    barrier_observer_ = std::move(fn);
  }

 private:
  /// One staged hop of one packet attempt: `p` parked at switch `at`,
  /// ordered by (p.inject_vt, seq).
  struct Item {
    Packet p;
    SwitchId at = kInvalidSwitch;
    std::uint64_t seq = 0;  ///< globally unique, thread-count-invariant
    std::int32_t ttl = 0;
    bool check_src = false;
    std::uint32_t attempt = 0;  ///< 0 = first try, n = nth retransmit
  };
  /// Max-heap comparator giving the (vt, seq)-minimum at front().
  struct ItemAfter {
    bool operator()(const Item& a, const Item& b) const noexcept {
      if (a.p.inject_vt != b.p.inject_vt) {
        return a.p.inject_vt > b.p.inject_vt;
      }
      return a.seq > b.seq;
    }
  };
  /// Outcome of a terminal step, reported to the op's home domain and
  /// processed on the driver thread at the barrier.
  struct Notice {
    enum class Kind : std::uint8_t { kDelivered, kRetry, kDrop };
    Kind kind = Kind::kDrop;
    NicAddr src = kInvalidNic;
    EndpointId src_ep = 0;
    std::uint64_t nic_seq = 0;  ///< NIC-assigned Packet::seq (op key)
    std::uint64_t op_id = 0;    ///< caller's completion tag (0 = none)
    DropReason reason = DropReason::kNone;
    SimTime vt = 0;
    std::uint32_t attempt = 0;
    bool budget_exhausted = false;
  };
  /// Retransmit state for one reliable op, owned by its home domain's
  /// map but only ever touched by the driver thread.
  struct OpState {
    Packet master;
    SimTime vt_io = 0;  ///< accepted_vt plus charged backoffs
    std::uint64_t plan_v0 = 0;
    bool have_v0 = false;
    std::uint32_t attempt = 0;
  };
  struct Domain {
    std::uint32_t id = 0;
    std::vector<Item> heap;  ///< binary heap via std::push/pop_heap
    /// Cross-domain hops produced this window, per destination domain.
    std::vector<std::vector<Item>> outbox;
    /// Terminal outcomes this window, per home (= source) domain.
    std::vector<std::vector<Notice>> notices;
    std::uint64_t next_seq = 0;
    /// Reliable ops homed here, keyed (src NIC << 44 | packet seq).
    /// Touched by the owning worker mid-window (target-side reply
    /// registration) and by the driver at barriers — never both at once.
    std::unordered_map<std::uint64_t, OpState> ops;
    /// Fabric-injection attempts staged into this domain so far.
    /// Per-domain (not one engine-wide counter) because workers stage
    /// target-side replies mid-window; summed by the driver.
    std::uint64_t attempts = 0;
    /// Cache of heap.front().p.inject_vt (kNoPendingWork when empty),
    /// valid at every driver observation point — maintained at staging,
    /// outbox merge, and end-of-window so barrier scans are O(domains)
    /// instead of O(heap).
    SimTime earliest = kNoPendingWork;
    /// This window's edge for the domain, computed by the driver from
    /// the pair-lookahead matrix before the window starts.
    SimTime window_end = 0;
  };

  static std::uint64_t op_key(NicAddr src, std::uint64_t nic_seq) noexcept {
    return (static_cast<std::uint64_t>(src) << 44) |
           (nic_seq & ((1ULL << 44) - 1));
  }
  std::uint64_t take_seq(Domain& d) noexcept {
    return d.next_seq++ * domains_.size() + d.id;
  }

  void stage_attempt(Domain& home, Packet&& p, std::uint32_t attempt);
  /// Shared post_* tail: registers reliable-op state in the source
  /// NIC's home domain and stages the first attempt.
  void stage_post(NicAddr src, Packet&& pkt, SimTime accepted_vt);
  /// Stages a target-side reply (RMA ACK / read response / NACK) in the
  /// target's own domain `d` — called by the owning worker mid-window,
  /// which is safe because the worker is the domain's only toucher and
  /// the reply's source NIC is homed exactly here.
  void stage_reply(Domain& d, Packet&& reply);
  /// Pops and steps every item dated before `d.window_end` (worker or
  /// inline driver; must be the domain's only toucher).  Refreshes
  /// `d.earliest` on exit.
  void run_domain_window(Domain& d);
  void step_item(Domain& d, Item&& it);
  /// Merges outboxes and processes notices in deterministic order.
  void barrier_merge();
  void process_notice(const Notice& n);
  /// Driver-side, pre-window: sets every domain's `window_end` from the
  /// pair-lookahead matrix and the earliest-pending caches.
  void compute_window_ends();
  /// Launches one window across all domains on the worker pool (or
  /// inline when threads_ <= 1); each domain honours its own
  /// `window_end`.
  void run_window();
  void worker_main();
  /// Earliest staged virtual time across all domains (via the
  /// per-domain caches), or `kNoPendingWork` when every heap is empty.
  [[nodiscard]] SimTime earliest_pending() const;

  static constexpr SimTime kNoPendingWork =
      std::numeric_limits<SimTime>::max();
  /// "No direct cross-domain link" sentinel in the pair matrix: the
  /// pair imposes no window constraint (within one window only
  /// single-hop cross-domain transfers occur, so only direct edges can
  /// carry work between domains).
  static constexpr SimDuration kInfEdge =
      std::numeric_limits<SimDuration>::max();

  Fabric& fabric_;
  int threads_ = 1;
  SimDuration lookahead_ = 0;
  std::vector<std::uint32_t> domain_of_switch_;
  std::vector<std::uint32_t> home_domain_of_nic_;
  std::vector<RosettaSwitch*> switch_ptr_;
  std::vector<Domain> domains_;
  /// Per-domain-pair lookahead, row-major [from * nd + to]: the cheapest
  /// single cross-domain hop (link latency + hop floor, clamped >= 1),
  /// or kInfEdge when no base-plan link connects the pair directly.
  std::vector<SimDuration> pair_edge_;
  std::uint64_t windows_run_ = 0;
  std::function<void()> barrier_observer_;

  // -- Worker pool.  Epoch-driven: the driver publishes window_end_ and
  //    bumps epoch_ under pool_mu_; workers claim domains via the
  //    next_domain_ ticket and report completion under the same mutex.
  //    The mutex hand-offs give every domain mutation a happens-before
  //    edge to the driver's barrier work (and to the next window's
  //    workers), so the engine is race-free by construction.
  std::vector<std::thread> workers_;
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;   // workers: new epoch / shutdown
  std::condition_variable done_cv_;   // driver: all workers done
  std::uint64_t epoch_ = 0;
  std::size_t done_count_ = 0;
  bool shutdown_ = false;
  std::atomic<std::size_t> next_domain_{0};
};

}  // namespace shs::hsn
