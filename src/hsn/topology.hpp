// topology.hpp — fabric topology planning.
//
// The paper's testbed is two nodes on one Rosetta switch; production
// Slingshot fabrics wire many switches into fat-tree or dragonfly
// topologies.  A TopologyPlan turns a TopologyConfig + node count into
// the concrete switch graph the Fabric instantiates:
//   * which edge switch each NIC attaches to,
//   * the directed inter-switch links (each with its own rate/latency,
//     so per-link virtual-time accounting stays honest under contention),
//   * a per-switch next-hop table realizing minimal routing (fat-tree:
//     deterministic spine selection; dragonfly: dimension-order
//     local -> global -> local),
//   * the routing metadata adaptive policies need at packet time: the
//     full *set* of minimal next hops per destination (fat-tree spine
//     candidates), minimal hop distances between switches (UGAL's delay
//     estimate), and the dragonfly group map (Valiant intermediate
//     selection).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "hsn/types.hpp"
#include "util/units.hpp"

namespace shs::hsn {

enum class TopologyKind : std::uint8_t {
  kSingleSwitch = 0,  ///< the paper's testbed: every NIC on one switch
  kFatTree,           ///< 2-level: leaf switches under a spine layer
  kDragonfly,         ///< groups of switches, all-to-all global links
};

constexpr std::string_view topology_kind_name(TopologyKind k) noexcept {
  switch (k) {
    case TopologyKind::kSingleSwitch: return "single-switch";
    case TopologyKind::kFatTree: return "fat-tree";
    case TopologyKind::kDragonfly: return "dragonfly";
  }
  return "UNKNOWN";
}

/// How switches pick among routes (Slingshot's Rosetta supports adaptive
/// non-minimal routing; the policy is fabric-wide here, as the fabric
/// manager would program it).
enum class RoutingPolicy : std::uint8_t {
  /// Static minimal routes only — the PR 2 behaviour: fat-tree spine
  /// chosen by a seeded hash of the (src leaf, dst leaf) pair, dragonfly
  /// dimension-order local -> global -> local.
  kMinimal = 0,
  /// Valiant load balancing: every cross-switch packet detours through a
  /// random intermediate (fat-tree: uniform random spine; dragonfly:
  /// random switch in a third group), trading path length for guaranteed
  /// load spreading under adversarial patterns.
  kValiant,
  /// Universal Globally-Adaptive Load-balanced routing: per packet,
  /// compare the estimated delay of the minimal route against one
  /// sampled Valiant route (queue lag + hops x per-hop cost) and take
  /// the cheaper.  On fat-trees this degenerates to congestion-aware
  /// spine selection among the minimal candidates.
  kUgal,
};
constexpr int kNumRoutingPolicies = 3;

constexpr std::string_view routing_policy_name(RoutingPolicy p) noexcept {
  switch (p) {
    case RoutingPolicy::kMinimal: return "minimal";
    case RoutingPolicy::kValiant: return "valiant";
    case RoutingPolicy::kUgal: return "ugal";
  }
  return "UNKNOWN";
}

struct TopologyConfig {
  TopologyKind kind = TopologyKind::kSingleSwitch;
  /// Route selection policy (fabric-wide, applied at the source edge).
  RoutingPolicy routing = RoutingPolicy::kMinimal;
  /// NICs per edge (leaf / group-local) switch.  Ignored by single-switch.
  std::size_t nodes_per_switch = 16;
  /// Fat-tree: spine switches above the leaf layer.
  std::size_t spines = 2;
  /// Dragonfly: switches per group (`a` in the canonical parametrization).
  std::size_t switches_per_group = 4;
  /// Inter-switch (leaf-spine / group-local) link characteristics.
  DataRate link_rate = DataRate::gbps(200.0);
  SimDuration link_latency = from_micros(0.30);
  /// Dragonfly global (optical, inter-group) links are longer.
  SimDuration global_link_latency = from_micros(1.20);
};

/// The set of dead fabric elements the fabric manager is currently
/// routing around.  Links are directed (one key per direction — a
/// physical link failure kills both); a dead switch implicitly kills
/// every link touching it.
struct FailureSet {
  std::unordered_set<std::uint64_t> links;  ///< directed link_key entries
  std::unordered_set<SwitchId> switches;

  static constexpr std::uint64_t link_key(SwitchId from,
                                          SwitchId to) noexcept {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }
  [[nodiscard]] bool switch_dead(SwitchId s) const {
    return switches.contains(s);
  }
  [[nodiscard]] bool link_dead(SwitchId from, SwitchId to) const {
    return links.contains(link_key(from, to)) || switches.contains(from) ||
           switches.contains(to);
  }
  [[nodiscard]] bool empty() const noexcept {
    return links.empty() && switches.empty();
  }
};

/// Forwarding state compiled into flat, index-addressed tables — what
/// switches actually consult per packet.  NIC addresses, switch ids, and
/// routing targets are dense integers, so the per-packet critical
/// section can be branch-and-array-only: no hashing, no allocation.
///
/// Layout: all pairwise tables are row-major `n x n` vectors indexed by
/// `s * n + d`; candidate sets use a CSR layout (`cand_begin[cell] ..
/// cand_begin[cell + 1]` indexes into `cand`), preserving the ascending
/// switch-id order adaptive tie-breaking relies on.  A CompiledPlan is
/// an immutable snapshot: the fabric manager compiles one per published
/// TopologyPlan version and swaps it atomically into every switch.
struct CompiledPlan {
  std::size_t n = 0;  ///< switch count (row stride)
  RoutingPolicy routing = RoutingPolicy::kMinimal;
  std::uint64_t version = 0;
  /// Static minimal next hop per (switch, target); kInvalidSwitch when
  /// unreachable.
  std::vector<SwitchId> next_hop;
  /// BFS hop distances; TopologyPlan::kUnreachableHops when unreachable.
  std::vector<std::int32_t> min_hops;
  /// CSR offsets (n*n + 1 entries) and data of the minimal-candidate
  /// neighbor sets, ascending per cell.
  std::vector<std::uint32_t> cand_begin;
  std::vector<SwitchId> cand;
  /// Dragonfly group per switch; empty for other topologies.
  std::vector<SwitchId> group_of;
  /// Dragonfly constants precomputed at compile time (0 when not a
  /// dragonfly): group count and switches per group — the per-packet
  /// Valiant draw must not re-derive them with a division.
  SwitchId df_groups = 0;
  SwitchId df_per_group = 0;

  [[nodiscard]] SwitchId next(SwitchId s, SwitchId d) const noexcept {
    return next_hop[static_cast<std::size_t>(s) * n + d];
  }
  [[nodiscard]] int hops_between(SwitchId s, SwitchId d) const noexcept {
    if (s == d) return 0;
    return min_hops[static_cast<std::size_t>(s) * n + d];
  }
  [[nodiscard]] std::span<const SwitchId> candidates(
      SwitchId s, SwitchId d) const noexcept {
    const std::size_t cell = static_cast<std::size_t>(s) * n + d;
    return {cand.data() + cand_begin[cell],
            cand.data() + cand_begin[cell + 1]};
  }
};

/// Reusable workspace for BFS re-planning and plan compilation.  The
/// fabric manager keeps one across republishes so repeated failures do
/// not re-allocate the per-switch adjacency/distance scratch each time.
struct PlanScratch {
  std::vector<std::vector<SwitchId>> out;  ///< adjacency, reused rows
  std::vector<int> dist;
  std::deque<SwitchId> queue;
};

/// The instantiated wiring for one fabric.  `build` is total: degenerate
/// configurations are clamped (zero counts become one) rather than
/// rejected, so Fabric::create never fails on topology grounds.
///
/// Plans are *versioned and republishable*: version 0 is the pristine
/// build; the fabric manager derives repaired successors via `replan`
/// and pushes them to every switch, so the routing state a switch holds
/// is always one immutable snapshot (swapped atomically, never edited
/// in place).
struct TopologyPlan {
  struct PlannedLink {
    SwitchId from = 0;
    SwitchId to = 0;
    DataRate rate;
    SimDuration latency = 0;
  };

  TopologyKind kind = TopologyKind::kSingleSwitch;
  std::size_t switch_count = 1;
  /// NicAddr -> edge switch hosting that NIC (index == address).
  std::vector<SwitchId> nic_home;
  /// Directed inter-switch links.
  std::vector<PlannedLink> links;
  /// next_hop[s][home] = neighbor switch on the minimal route from switch
  /// `s` toward the edge switch `home`.  Absent key means unreachable.
  std::vector<std::unordered_map<SwitchId, SwitchId>> next_hop;
  /// candidates[s][d] = every neighbor of `s` that starts a minimal route
  /// toward switch `d`, in ascending switch-id order (the deterministic
  /// tie-break adaptive policies rely on).  Keyed by *all* switch pairs,
  /// not just edge destinations, so Valiant detours can target any
  /// intermediate switch.
  std::vector<std::unordered_map<SwitchId, std::vector<SwitchId>>> candidates;
  /// min_hops[s][d] = inter-switch links on a minimal route s -> d
  /// (BFS over `links`; absent key means unreachable).  UGAL multiplies
  /// this by a per-hop cost to estimate path delay.
  std::vector<std::unordered_map<SwitchId, int>> min_hops;
  /// Dragonfly: group index per switch.  Empty for other topologies.
  std::vector<SwitchId> group_of;
  /// Routing policy copied from the config (what switches consult).
  RoutingPolicy routing = RoutingPolicy::kMinimal;
  /// Monotonic plan generation: 0 for the initial build, +1 per
  /// fabric-manager republish.
  std::uint64_t version = 0;
  /// The fabric seed the plan was built with.  Re-plans re-derive their
  /// static next hops from it, so recovery routing is deterministic per
  /// seed (and reshuffles with it), exactly like the initial build.
  std::uint64_t seed = 0;

  /// Minimal hop distance s -> d, or a large sentinel when unreachable.
  [[nodiscard]] int hops_between(SwitchId s, SwitchId d) const {
    if (s == d) return 0;
    if (s >= min_hops.size()) return kUnreachableHops;
    const auto it = min_hops[s].find(d);
    return it == min_hops[s].end() ? kUnreachableHops : it->second;
  }
  static constexpr int kUnreachableHops = 1 << 20;

  static TopologyPlan build(const TopologyConfig& config, std::size_t nodes,
                            std::uint64_t seed);

  /// Derives a repaired plan that routes around `failures`: the BFS
  /// metadata (min_hops, candidates) is recomputed over the surviving
  /// links only, and the static next-hop tables are re-derived from the
  /// surviving minimal candidates by a seeded per-(src, dst) hash — the
  /// same determinism contract as the initial fat-tree spine selection.
  /// Dead switches route nothing and are routed to by nobody.  Must be
  /// called on the pristine (version 0) plan, whose `links` describe the
  /// full wiring.  A non-null `scratch` is reused for the BFS workspace
  /// (the fabric manager passes one across republishes).
  [[nodiscard]] TopologyPlan replan(const FailureSet& failures,
                                    std::uint64_t new_version,
                                    PlanScratch* scratch = nullptr) const;

  /// Flattens the map-based tables into `out` (see CompiledPlan),
  /// reusing its buffers.  Deterministic: the flat layout depends only
  /// on table *contents*, never on unordered_map iteration order.
  void compile_into(CompiledPlan& out) const;
  [[nodiscard]] CompiledPlan compile() const {
    CompiledPlan out;
    compile_into(out);
    return out;
  }
};

}  // namespace shs::hsn
