// topology.hpp — fabric topology planning.
//
// The paper's testbed is two nodes on one Rosetta switch; production
// Slingshot fabrics wire many switches into fat-tree or dragonfly
// topologies.  A TopologyPlan turns a TopologyConfig + node count into
// the concrete switch graph the Fabric instantiates:
//   * which edge switch each NIC attaches to,
//   * the directed inter-switch links (each with its own rate/latency,
//     so per-link virtual-time accounting stays honest under contention),
//   * a per-switch next-hop table realizing minimal routing (fat-tree:
//     deterministic spine selection; dragonfly: dimension-order
//     local -> global -> local).
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "hsn/types.hpp"
#include "util/units.hpp"

namespace shs::hsn {

enum class TopologyKind : std::uint8_t {
  kSingleSwitch = 0,  ///< the paper's testbed: every NIC on one switch
  kFatTree,           ///< 2-level: leaf switches under a spine layer
  kDragonfly,         ///< groups of switches, all-to-all global links
};

constexpr std::string_view topology_kind_name(TopologyKind k) noexcept {
  switch (k) {
    case TopologyKind::kSingleSwitch: return "single-switch";
    case TopologyKind::kFatTree: return "fat-tree";
    case TopologyKind::kDragonfly: return "dragonfly";
  }
  return "UNKNOWN";
}

struct TopologyConfig {
  TopologyKind kind = TopologyKind::kSingleSwitch;
  /// NICs per edge (leaf / group-local) switch.  Ignored by single-switch.
  std::size_t nodes_per_switch = 16;
  /// Fat-tree: spine switches above the leaf layer.
  std::size_t spines = 2;
  /// Dragonfly: switches per group (`a` in the canonical parametrization).
  std::size_t switches_per_group = 4;
  /// Inter-switch (leaf-spine / group-local) link characteristics.
  DataRate link_rate = DataRate::gbps(200.0);
  SimDuration link_latency = from_micros(0.30);
  /// Dragonfly global (optical, inter-group) links are longer.
  SimDuration global_link_latency = from_micros(1.20);
};

/// The instantiated wiring for one fabric.  `build` is total: degenerate
/// configurations are clamped (zero counts become one) rather than
/// rejected, so Fabric::create never fails on topology grounds.
struct TopologyPlan {
  struct PlannedLink {
    SwitchId from = 0;
    SwitchId to = 0;
    DataRate rate;
    SimDuration latency = 0;
  };

  TopologyKind kind = TopologyKind::kSingleSwitch;
  std::size_t switch_count = 1;
  /// NicAddr -> edge switch hosting that NIC (index == address).
  std::vector<SwitchId> nic_home;
  /// Directed inter-switch links.
  std::vector<PlannedLink> links;
  /// next_hop[s][home] = neighbor switch on the minimal route from switch
  /// `s` toward the edge switch `home`.  Absent key means unreachable.
  std::vector<std::unordered_map<SwitchId, SwitchId>> next_hop;

  static TopologyPlan build(const TopologyConfig& config, std::size_t nodes,
                            std::uint64_t seed);
};

}  // namespace shs::hsn
