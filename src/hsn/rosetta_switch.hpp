// rosetta_switch.hpp — model of the Slingshot Rosetta switch.
//
// The property the paper relies on (Section II-C): "The Rosetta switch can
// be configured to strictly enforce VNIs and only route packets within a
// VNI if both the sender and receiver NIC have been granted access to that
// VNI."  This class implements exactly that check, plus cut-through
// timing with egress-port contention and per-traffic-class queueing
// penalties, and per-VNI delivery/drop accounting used by the isolation
// tests.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "hsn/packet.hpp"
#include "hsn/timing.hpp"
#include "hsn/types.hpp"
#include "util/status.hpp"

namespace shs::hsn {

/// Why the switch refused to route a packet.
enum class DropReason : std::uint8_t {
  kNone = 0,
  kSrcNotAuthorized,   ///< sender port lacks VNI access
  kDstNotAuthorized,   ///< receiver port lacks VNI access
  kUnknownDestination, ///< no NIC connected at the destination address
};

struct RouteResult {
  bool delivered = false;
  DropReason reason = DropReason::kNone;
  SimTime arrival_vt = 0;  ///< valid when delivered
};

/// The switch.  Thread-safe: NIC threads route concurrently.
class RosettaSwitch {
 public:
  /// Callback a NIC registers to accept delivered packets.
  using DeliveryFn = std::function<void(Packet&&)>;

  explicit RosettaSwitch(std::shared_ptr<TimingModel> timing);

  /// Connects a NIC at fabric address `addr`.  Fails if taken.
  Status connect(NicAddr addr, DeliveryFn deliver);
  Status disconnect(NicAddr addr);

  /// Fabric-manager plane: grants/revokes VNI access on a port.  In the
  /// real system the fabric manager programs this; in ours the CXI driver
  /// does, when CXI services are created/destroyed.
  Status authorize_vni(NicAddr port, Vni vni);
  Status revoke_vni(NicAddr port, Vni vni);
  [[nodiscard]] bool vni_authorized(NicAddr port, Vni vni) const;

  /// Strict VNI enforcement is on by default (the converged-deployment
  /// configuration).  Disabling reproduces a flat, unisolated fabric.
  void set_enforcement(bool on) noexcept;
  [[nodiscard]] bool enforcement() const noexcept;

  /// Routes `p` from its src port.  Computes `arrival_vt` from the timing
  /// model (hop latency + egress contention + TC penalty) and invokes the
  /// destination NIC's delivery callback, or drops.
  RouteResult route(Packet&& p);

  [[nodiscard]] SwitchCounters counters() const;
  [[nodiscard]] SwitchCounters counters_for_vni(Vni vni) const;
  [[nodiscard]] std::size_t connected_ports() const;

 private:
  struct Port {
    DeliveryFn deliver;
    std::unordered_set<Vni> vnis;
    /// Per-traffic-class egress horizon.  Priority scheduling: a packet
    /// of class k waits for all queued traffic of class <= k (higher or
    /// equal priority) plus at most one in-flight frame of lower-priority
    /// traffic (preemption is frame-granular, as on Rosetta).
    SimTime egress_free_vt[kNumTrafficClasses] = {0, 0, 0, 0};
  };

  std::shared_ptr<TimingModel> timing_;
  mutable std::mutex mutex_;
  bool enforce_ = true;
  std::unordered_map<NicAddr, Port> ports_;
  SwitchCounters totals_;
  std::unordered_map<Vni, SwitchCounters> per_vni_;
};

}  // namespace shs::hsn
