// rosetta_switch.hpp — model of the Slingshot Rosetta switch.
//
// The property the paper relies on (Section II-C): "The Rosetta switch can
// be configured to strictly enforce VNIs and only route packets within a
// VNI if both the sender and receiver NIC have been granted access to that
// VNI."  This class implements exactly that check, plus cut-through
// timing with egress-port contention and per-traffic-class queueing
// penalties, and per-VNI delivery/drop accounting used by the isolation
// tests.
//
// Multi-switch fabrics: switches are wired together with directed uplinks
// (each carrying its own per-link, per-traffic-class virtual-time
// bandwidth horizon) and routing tables compiled by the fabric manager
// from the TopologyPlan.  A packet enters at its source NIC's edge
// switch, which performs the *source* VNI check and the per-packet
// routing decision (see RoutingPolicy); transit switches forward
// hop-by-hop along minimal routes toward the packet's current target
// (its Valiant intermediate, then its destination); the destination's
// edge switch performs the *destination* VNI check and final egress-port
// scheduling.  VNI enforcement thus stays an edge property, as on real
// Slingshot, while inter-switch contention is modeled per link.
//
// Hot-path contract (see docs/performance.md): the per-packet critical
// section under mutex_ is branch-and-array-only — no hashing, no
// allocation, no logging.  Ports and uplinks live in dense vectors
// indexed by NicAddr / peer SwitchId; routing state is an immutable
// CompiledPlan of flat tables; per-VNI counters are pre-resolved slabs
// (per-port cached pointers for the edge checks, a sorted slab index
// for transit), created only on the cold authorize/first-drop paths.
//
// Congestion telemetry: each uplink's per-class bandwidth horizon doubles
// as its congestion signal — `queue lag` is how far the horizon is ahead
// of a packet's arrival time, i.e. how long a newly arriving packet of
// that class would wait before its first bit goes on the wire.  Adaptive
// policies steer by this lag; uplink_queue_lag()/max_uplink_lag() expose
// it to the fabric manager and scheduler telemetry.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "hsn/packet.hpp"
#include "hsn/timing.hpp"
#include "hsn/topology.hpp"
#include "hsn/types.hpp"
#include "util/rng.hpp"
#include "util/spinlock.hpp"
#include "util/status.hpp"

namespace shs::hsn {

class CassiniNic;

/// Why the switch refused to route a packet.
enum class DropReason : std::uint8_t {
  kNone = 0,
  kSrcNotAuthorized,   ///< sender port lacks VNI access
  kDstNotAuthorized,   ///< receiver port lacks VNI access
  kUnknownDestination, ///< no NIC connected at the destination address
  kNoRoute,            ///< no uplink toward the destination / TTL exceeded
  kLinkDown,           ///< dead link or failed switch on the path
  kLossInjected,       ///< fault model: probabilistic loss on a lossy link
  kCorrupt,            ///< fault model: CRC failure discarded at next hop
  kAckLost,            ///< delivered, but the link-level ACK was lost
  kRxOverflow,         ///< NIC RX ring full (reported by CassiniNic)
  /// Epoch fencing (staggered publish): the packet could only progress
  /// under a plan epoch the fabric manager has committed but this switch
  /// has not applied yet — counted instead of kNoRoute/kLinkDown so the
  /// publish lag is observable and never silent loss.
  kStaleEpoch,
};

/// Stable human-readable name for a drop reason (diagnostics, examples).
[[nodiscard]] const char* drop_reason_name(DropReason r) noexcept;

/// Per-link transient-fault injection (see docs/reliability.md).  All
/// rates are independent per-packet probabilities in [0, 1], drawn from
/// the switch's dedicated fault RNG so enabling faults never perturbs
/// the routing or timing streams.  Zero-initialized = no faults.
struct FaultProfile {
  double drop_rate = 0.0;      ///< packet vanishes on the link
  double corrupt_rate = 0.0;   ///< CRC-detected corruption; discarded
  /// Delivered, but the link-level ACK back to the sender is lost.
  /// Applied only to `Packet::reliable` traffic (the only traffic that
  /// can observe the difference) at final delivery — this is what
  /// produces genuine duplicates for the NIC's suppression window.
  double ack_loss_rate = 0.0;

  [[nodiscard]] bool any() const noexcept {
    return drop_rate > 0.0 || corrupt_rate > 0.0 || ack_loss_rate > 0.0;
  }
};

struct RouteResult {
  bool delivered = false;
  DropReason reason = DropReason::kNone;
  SimTime arrival_vt = 0;  ///< valid when delivered
};

/// Upper bound on NIC addresses a switch will materialize a port slot
/// for.  The port table is dense (indexed by NicAddr), so an absurd
/// address from a hand-wired rig must be rejected instead of allocating
/// gigabytes: real Slingshot fabrics top out well below a million
/// endpoints per switch.
constexpr NicAddr kMaxPortAddr = 1u << 20;

/// Hop budget for one packet.  The longest supported route is a Valiant
/// detour on a dragonfly: up to 3 inter-switch hops to the intermediate
/// plus up to 3 more to the destination = 6; the slack guards against
/// forwarding-table bugs turning into infinite recursion.
constexpr int kMaxFabricHops = 8;

/// One switch.  Thread-safe: NIC threads route concurrently.
class RosettaSwitch {
 public:
  /// Callback a NIC registers to accept delivered packets.
  using DeliveryFn = std::function<void(Packet&&)>;

  /// `seed` feeds the switch-local RNG behind Valiant intermediate
  /// selection (per-packet draws are otherwise deterministic).
  explicit RosettaSwitch(std::shared_ptr<TimingModel> timing,
                         SwitchId id = 0, std::uint64_t seed = 0);

  [[nodiscard]] SwitchId id() const noexcept { return id_; }

  /// Connects a NIC at fabric address `addr`.  Fails if taken.
  Status connect(NicAddr addr, DeliveryFn deliver);
  /// Fast-path variant: the Fabric connects its own CassiniNic objects
  /// directly, so delivery is one virtual-free member call instead of a
  /// std::function dispatch.  The NIC must outlive the switch wiring
  /// (the Fabric owns both and destroys NICs first, after traffic
  /// stops).
  Status connect(NicAddr addr, CassiniNic& nic);
  Status disconnect(NicAddr addr);

  // -- Topology wiring (done by the Fabric before any NIC attaches; not
  //    safe against concurrent routing).

  /// Adds a directed uplink to `peer` with its own rate/latency and
  /// per-traffic-class bandwidth horizon.  Fails if a link to that peer
  /// already exists.  The reference is non-owning: the Fabric owns every
  /// switch and keeps peers alive for the fabric's lifetime (owning
  /// pointers here would form A<->B cycles and leak the whole topology).
  Status add_uplink(RosettaSwitch& peer, DataRate rate,
                    SimDuration latency);
  /// Installs the NIC-home map and the compiled routing tables this
  /// switch routes by: its static next-hop row, the minimal-candidate
  /// sets and hop distances adaptive policies consult, and the routing
  /// policy itself.  Both shared and immutable; the fabric manager swaps
  /// in a freshly compiled snapshot on every republish.
  void set_forwarding(std::shared_ptr<const std::vector<SwitchId>> nic_home,
                      std::shared_ptr<const CompiledPlan> plan);

  /// Fabric-manager plane: grants/revokes VNI access on a port.  In the
  /// real system the fabric manager programs this; in ours the CXI driver
  /// does, when CXI services are created/destroyed.
  Status authorize_vni(NicAddr port, Vni vni);
  Status revoke_vni(NicAddr port, Vni vni);
  [[nodiscard]] bool vni_authorized(NicAddr port, Vni vni) const;

  /// Strict VNI enforcement is on by default (the converged-deployment
  /// configuration).  Disabling reproduces a flat, unisolated fabric.
  void set_enforcement(bool on) noexcept;
  [[nodiscard]] bool enforcement() const noexcept;

  // -- Health plane (programmed by the FabricManager).

  /// Marks the whole switch failed/healthy.  A failed switch drops every
  /// packet presented to it (local injection, transit, and delivery),
  /// counted as dropped_link_down.
  void set_health(SwitchHealth health) noexcept;
  [[nodiscard]] SwitchHealth health() const noexcept;

  /// Marks the directed uplink toward `peer` up/down.  Down uplinks are
  /// excluded from every adaptive candidate set; a packet whose static
  /// next hop is down (the window before the fabric manager republishes
  /// repaired tables, or a packet mid-detour) is dropped and counted.
  Status set_uplink_state(SwitchId peer, LinkState state);
  [[nodiscard]] LinkState uplink_state(SwitchId peer) const;

  /// Installs the fabric manager's committed-epoch cell (the plan version
  /// the FM has decided on, which per-switch staggered publishes lag
  /// behind).  When set, routing drops that can only be cured by a
  /// not-yet-applied plan (no route / dead static next hop while
  /// plan_->version < committed epoch) are reclassified as kStaleEpoch.
  /// Null (the default) keeps the legacy classification bit-identical.
  void set_committed_epoch_source(
      std::shared_ptr<const std::atomic<std::uint64_t>> src);
  /// Plan version this switch currently routes by (its applied epoch);
  /// 0 until set_forwarding installs a compiled plan.
  [[nodiscard]] std::uint64_t applied_epoch() const;

  // -- Lossy/transient fault model (composes with the health plane; see
  //    docs/reliability.md).  One `faults_armed_` flag gates every fault
  //    check on the admission path, so the model is a single predicted
  //    branch when disabled — off the PR 5 hot-path budget.

  /// Installs `p` as this switch's edge profile (applied at final
  /// delivery to a local NIC) AND on every existing uplink.
  void set_fault_profile(const FaultProfile& p);
  /// Installs `p` on the directed uplink toward `peer` only.
  Status set_uplink_fault_profile(SwitchId peer, const FaultProfile& p);
  /// Schedules a transient flap of the uplink toward `peer`: packets
  /// whose egress falls in [down_from, down_until) see the link down
  /// (counted as dropped_link_down) without any health-plane event —
  /// the fabric manager never learns of it, so no replan is triggered.
  Status add_uplink_flap(SwitchId peer, SimTime down_from,
                         SimTime down_until);
  /// Removes every fault profile and flap window; disarms the flag.
  void clear_faults();
  [[nodiscard]] bool faults_armed() const;

  /// Routes `p` from its src port (which must be local to this switch).
  /// Computes `arrival_vt` from the timing model (per-hop latency,
  /// per-link serialization, egress contention, TC penalty) and invokes
  /// the destination NIC's delivery callback — possibly after forwarding
  /// through peer switches — or drops.
  RouteResult route(Packet&& p);

  /// One admission step of the hop-by-hop walk, exposed for external
  /// drivers (the sharded data-plane engine) that interleave hops from
  /// many packets in virtual-time order instead of walking each packet
  /// to completion.  Takes this switch's mutex once.  Outcomes:
  ///  - delivered locally (or consumed with reason == kAckLost): the
  ///    packet has been moved into the NIC/callback, `*next` is null;
  ///  - dropped: `*next` is null, `result.reason` set, `p` untouched
  ///    beyond the admission mutations;
  ///  - forward: `*next` is the peer switch for the following step and
  ///    `p.inject_vt` has been advanced to its arrival there.  The
  ///    caller passes check_src = false and ttl - 1 on that next step.
  /// route() is exactly this in a loop; semantics are identical.
  RouteResult step(Packet& p, bool check_src, int ttl, RosettaSwitch** next);

  /// Variant for drivers that own delivery ordering (the ShardEngine):
  /// identical admission semantics, but when the packet would land on a
  /// NIC attached via the direct-fabric path, the packet is NOT handed
  /// to the NIC — `*deliver_to` is set and `p` left intact so the caller
  /// can invoke `CassiniNic::deliver_from_engine` itself and route any
  /// target-side reply through its own deterministic merge machinery.
  /// Callback-attached ports (no CassiniNic to return) still deliver
  /// inline.  `*deliver_to` is also set on kAckLost consumption: the
  /// packet DID reach the NIC (the effect must be applied; only the
  /// fabric-level ACK was lost on the return path).
  RouteResult step(Packet& p, bool check_src, int ttl, RosettaSwitch** next,
                   CassiniNic** deliver_to);

  [[nodiscard]] SwitchCounters counters() const;
  [[nodiscard]] SwitchCounters counters_for_vni(Vni vni) const;
  [[nodiscard]] std::size_t connected_ports() const;
  [[nodiscard]] std::size_t uplink_count() const;
  /// Transit accounting for the uplink toward `peer` (zeroes if absent).
  [[nodiscard]] LinkCounters uplink_counters(SwitchId peer) const;

  // -- Congestion telemetry.

  /// Queue lag a class-`tc` packet arriving at virtual time `at` would
  /// see on the uplink toward `peer`: how long until the link's horizon
  /// (for its own and higher-priority classes) frees up.  0 when idle or
  /// no such uplink.
  [[nodiscard]] SimDuration uplink_queue_lag(SwitchId peer, SimTime at,
                                             TrafficClass tc) const;
  /// Worst queue lag across all of this switch's uplinks at `at`, over
  /// every traffic class (a fabric-manager-style congestion snapshot).
  [[nodiscard]] SimDuration max_uplink_lag(SimTime at) const;
  /// Lifetime high-water mark of forward-time queue lag over this
  /// switch's uplinks (max of LinkCounters::peak_queue_lag).
  [[nodiscard]] SimDuration peak_uplink_lag() const;

 private:
  struct Port {
    /// Direct-delivery fast path (Fabric-owned NICs); preferred when set.
    CassiniNic* nic = nullptr;
    /// Generic delivery callback (tests, custom rigs).  Shared so it can
    /// be invoked outside mutex_ with one refcount bump instead of a
    /// std::function copy per packet.  A connected port has exactly one
    /// of `nic` / `deliver` set.
    std::shared_ptr<const DeliveryFn> deliver;
    /// Authorized VNIs with their pre-resolved counter slabs, ascending
    /// by VNI.  Ports hold a handful of VNIs, so the edge check is a
    /// short linear scan — no hashing, and the delivered/dropped
    /// counters come for free from the cached pointer.
    std::vector<std::pair<Vni, SwitchCounters*>> vnis;
    /// Per-traffic-class egress horizon.  Priority scheduling: a packet
    /// of class k waits for all queued traffic of class <= k (higher or
    /// equal priority) plus at most one in-flight frame of lower-priority
    /// traffic (preemption is frame-granular, as on Rosetta).
    SimTime egress_free_vt[kNumTrafficClasses] = {0, 0, 0, 0};

    [[nodiscard]] bool connected() const noexcept {
      return nic != nullptr || deliver != nullptr;
    }
    /// Counter slab for `vni` if this port is authorized, else nullptr.
    [[nodiscard]] SwitchCounters* slab_for(Vni vni) const noexcept {
      for (const auto& [v, slab] : vnis) {
        if (v == vni) return slab;
        if (v > vni) break;  // ascending
      }
      return nullptr;
    }
  };
  /// A directed inter-switch link with its own virtual-time bandwidth
  /// accounting (same priority model as NIC-facing egress ports).
  /// `peer` is non-owning; see add_uplink.  An empty slot in the dense
  /// uplink table has peer == nullptr.
  struct Uplink {
    RosettaSwitch* peer = nullptr;
    DataRate rate;
    SimDuration latency = 0;
    LinkState state = LinkState::kUp;
    SimTime egress_free_vt[kNumTrafficClasses] = {0, 0, 0, 0};
    LinkCounters counters;
    /// Fault model: per-link loss/corruption rates and timed down
    /// windows.  Only consulted when faults_armed_ is set.
    FaultProfile faults;
    std::vector<std::pair<SimTime, SimTime>> flaps;
  };
  /// What one locked admission step decided: deliver locally (non-null
  /// `deliver`), forward to `next`, or drop (`result.reason` set).  The
  /// delivery/forward happens outside the lock.
  struct AdmitStep {
    RouteResult result;
    CassiniNic* nic = nullptr;  ///< direct local delivery
    std::shared_ptr<const DeliveryFn> deliver;  ///< callback delivery
    RosettaSwitch* next = nullptr;
  };

  /// Ingress processing shared by route() (check_src = true) and
  /// hop-by-hop forwarding from a peer switch (check_src = false).
  /// Takes the switch mutex once; mutates `p` in place (the caller moves
  /// the packet onward per the returned step).
  AdmitStep admit_step(Packet& p, bool check_src, int ttl);

  /// Port slot for `addr`, or nullptr when empty.  Caller holds mutex_.
  [[nodiscard]] Port* port_at(NicAddr addr) noexcept {
    return addr < ports_.size() && ports_[addr].connected() ? &ports_[addr]
                                                            : nullptr;
  }
  [[nodiscard]] const Port* port_at(NicAddr addr) const noexcept {
    return addr < ports_.size() && ports_[addr].connected() ? &ports_[addr]
                                                            : nullptr;
  }
  /// Uplink slot toward `peer` (regardless of link state), or nullptr.
  /// Caller holds mutex_.
  [[nodiscard]] Uplink* uplink_at(SwitchId peer) noexcept {
    return peer < uplinks_.size() && uplinks_[peer].peer != nullptr
               ? &uplinks_[peer]
               : nullptr;
  }
  [[nodiscard]] const Uplink* uplink_at(SwitchId peer) const noexcept {
    return peer < uplinks_.size() && uplinks_[peer].peer != nullptr
               ? &uplinks_[peer]
               : nullptr;
  }
  /// The live uplink toward `peer`, or nullptr when absent or down —
  /// the single definition of "usable link" every routing policy
  /// consults.  Caller holds mutex_.
  [[nodiscard]] Uplink* live_uplink_locked(SwitchId peer) noexcept {
    Uplink* up = uplink_at(peer);
    return up != nullptr && up->state == LinkState::kUp ? up : nullptr;
  }

  /// Counter slab for `vni`: binary search over the sorted slab index;
  /// inserts a zeroed slab on first sight (cold — authorize time or a
  /// drop/transit of a never-seen VNI).  Caller holds mutex_.
  SwitchCounters& slab_for_locked(Vni vni);

  /// Per-packet routing decision at the source edge switch.  Returns the
  /// chosen neighbor (kInvalidSwitch if none) and may set p.via_switch
  /// when a Valiant detour wins.  Caller holds mutex_.
  SwitchId choose_route_locked(Packet& p, SwitchId home,
                               SwitchCounters& vni_counters);
  /// Static minimal next hop toward switch `target` (kInvalidSwitch if
  /// the table has no entry).  Caller holds mutex_.
  [[nodiscard]] SwitchId static_next_locked(SwitchId target) const noexcept {
    return plan_ != nullptr && id_ < plan_->n && target < plan_->n
               ? plan_->next(id_, target)
               : kInvalidSwitch;
  }
  /// Least-lag minimal candidate toward `target`; falls back to the
  /// static next hop when the plan has no candidate list.  Caller holds
  /// mutex_.
  SwitchId least_lag_candidate_locked(const Packet& p, SwitchId target,
                                      SimDuration* lag_out);
  /// Random Valiant intermediate for a packet headed to edge switch
  /// `home`: a switch in a third dragonfly group, or kInvalidSwitch when
  /// no eligible group exists (same-group traffic, < 3 groups, or a
  /// non-dragonfly topology).  Consumes route_rng_; caller holds mutex_.
  SwitchId pick_intermediate_locked(SwitchId home);
  /// Queue lag of `up` for priority `prio` at time `at` (see
  /// uplink_queue_lag).
  [[nodiscard]] static SimDuration lag_of(
      const Uplink& up, SimTime at, int prio) noexcept;
  /// UGAL delay estimate: first-hop queue lag plus `hops` x (per-hop
  /// fall-through latency + this packet's serialization on the first
  /// link).  Caller holds mutex_.
  [[nodiscard]] SimDuration estimate_delay_locked(
      const Packet& p, SimDuration first_hop_lag, int hops,
      DataRate rate) const;

  /// Recomputes faults_armed_ from the installed profiles and flap
  /// windows.  Caller holds mutex_.
  void rearm_faults_locked() noexcept;
  /// True when a flap window of `up` covers egress time `at`.
  [[nodiscard]] static bool flapped_down(const Uplink& up,
                                         SimTime at) noexcept {
    for (const auto& [from, until] : up.flaps) {
      if (at >= from && at < until) return true;
    }
    return false;
  }

  /// Priority-scheduled egress: earliest start for a packet of `prio`
  /// given the per-class horizons, charging frame-granular preemption of
  /// lower-priority in-flight traffic.  `ser_time` is the packet's
  /// pre-computed serialization on this link — callers need the same
  /// value for the departure time, so it is computed once per hop.
  /// Caller holds mutex_.
  SimTime schedule_egress_locked(SimTime at_egress, int prio,
                                 SimTime (&free_vt)[kNumTrafficClasses],
                                 SimDuration ser_time, DataRate rate);

  const SwitchId id_;
  std::shared_ptr<TimingModel> timing_;
  mutable SpinLock mutex_;  ///< guards ~100 ns admission steps; never blocks
  bool enforce_ = true;
  SwitchHealth health_ = SwitchHealth::kHealthy;
  /// Dense port table indexed by NicAddr (empty slots between the
  /// addresses homed here; a switch hosts a contiguous handful, so the
  /// table stays small).
  std::vector<Port> ports_;
  std::size_t connected_ports_ = 0;
  /// Dense uplink table indexed by peer SwitchId.
  std::vector<Uplink> uplinks_;
  std::size_t uplink_count_ = 0;
  std::shared_ptr<const std::vector<SwitchId>> nic_home_;
  /// Compiled routing tables (static next hops, minimal candidates, hop
  /// distances, policy).  Null until set_forwarding — local-only switch.
  std::shared_ptr<const CompiledPlan> plan_;
  /// Fabric manager's committed plan epoch (see
  /// set_committed_epoch_source).  Null on legacy rigs — stale-epoch
  /// reclassification is then disabled entirely.  Guarded by mutex_
  /// (the pointed-to atomic is written by the FM thread).
  std::shared_ptr<const std::atomic<std::uint64_t>> committed_epoch_;
  /// Valiant intermediate selection stream (seeded; guarded by mutex_).
  Rng route_rng_;
  /// Fault-model draw stream, separate from route_rng_ so arming faults
  /// never shifts the routing decisions of surviving packets (the
  /// determinism tests pin goldens on the fault-free stream).  Guarded
  /// by mutex_.
  Rng fault_rng_;
  /// Single gate for every fault check on the admission path: set iff
  /// any profile or flap window is installed.  Guarded by mutex_.
  bool faults_armed_ = false;
  /// Edge profile: applied at final delivery to a locally homed NIC
  /// (the switch->NIC link).  Guarded by mutex_.
  FaultProfile edge_faults_;
  SwitchCounters totals_;
  /// Per-VNI counter slabs: stable addresses (deque) + a sorted index
  /// for O(log n) cold lookups.  Edge checks use the per-port cached
  /// pointers; transit hops hit the one-entry cache (a switch forwards
  /// long runs of same-VNI traffic).
  std::deque<SwitchCounters> slab_store_;
  std::vector<std::pair<Vni, SwitchCounters*>> slab_index_;
  Vni last_slab_vni_ = kInvalidVni;
  SwitchCounters* last_slab_ = nullptr;
};

}  // namespace shs::hsn
