// rosetta_switch.hpp — model of the Slingshot Rosetta switch.
//
// The property the paper relies on (Section II-C): "The Rosetta switch can
// be configured to strictly enforce VNIs and only route packets within a
// VNI if both the sender and receiver NIC have been granted access to that
// VNI."  This class implements exactly that check, plus cut-through
// timing with egress-port contention and per-traffic-class queueing
// penalties, and per-VNI delivery/drop accounting used by the isolation
// tests.
//
// Multi-switch fabrics: switches are wired together with directed uplinks
// (each carrying its own per-link, per-traffic-class virtual-time
// bandwidth horizon) and a next-hop table produced by the TopologyPlan.
// A packet enters at its source NIC's edge switch, which performs the
// *source* VNI check; transit switches forward hop-by-hop along the
// minimal route; the destination's edge switch performs the *destination*
// VNI check and final egress-port scheduling.  VNI enforcement thus stays
// an edge property, as on real Slingshot, while inter-switch contention
// is modeled per link.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "hsn/packet.hpp"
#include "hsn/timing.hpp"
#include "hsn/types.hpp"
#include "util/status.hpp"

namespace shs::hsn {

/// Why the switch refused to route a packet.
enum class DropReason : std::uint8_t {
  kNone = 0,
  kSrcNotAuthorized,   ///< sender port lacks VNI access
  kDstNotAuthorized,   ///< receiver port lacks VNI access
  kUnknownDestination, ///< no NIC connected at the destination address
  kNoRoute,            ///< no uplink toward the destination / TTL exceeded
};

struct RouteResult {
  bool delivered = false;
  DropReason reason = DropReason::kNone;
  SimTime arrival_vt = 0;  ///< valid when delivered
};

/// Hop budget for one packet (any minimal route in the supported
/// topologies traverses at most 4 switches — dragonfly: source edge,
/// local gateway, remote-group gateway, destination edge — i.e. 3
/// inter-switch hops; the slack guards against forwarding-table bugs
/// turning into infinite recursion).
constexpr int kMaxFabricHops = 8;

/// One switch.  Thread-safe: NIC threads route concurrently.
class RosettaSwitch {
 public:
  /// Callback a NIC registers to accept delivered packets.
  using DeliveryFn = std::function<void(Packet&&)>;

  explicit RosettaSwitch(std::shared_ptr<TimingModel> timing,
                         SwitchId id = 0);

  [[nodiscard]] SwitchId id() const noexcept { return id_; }

  /// Connects a NIC at fabric address `addr`.  Fails if taken.
  Status connect(NicAddr addr, DeliveryFn deliver);
  Status disconnect(NicAddr addr);

  // -- Topology wiring (done by the Fabric before any NIC attaches; not
  //    safe against concurrent routing).

  /// Adds a directed uplink to `peer` with its own rate/latency and
  /// per-traffic-class bandwidth horizon.  Fails if a link to that peer
  /// already exists.  The reference is non-owning: the Fabric owns every
  /// switch and keeps peers alive for the fabric's lifetime (owning
  /// pointers here would form A<->B cycles and leak the whole topology).
  Status add_uplink(RosettaSwitch& peer, DataRate rate,
                    SimDuration latency);
  /// Installs the NIC-home map (shared, immutable) and this switch's
  /// next-hop table: destination edge switch -> neighbor switch id.
  void set_forwarding(std::shared_ptr<const std::vector<SwitchId>> nic_home,
                      std::unordered_map<SwitchId, SwitchId> next_hop);

  /// Fabric-manager plane: grants/revokes VNI access on a port.  In the
  /// real system the fabric manager programs this; in ours the CXI driver
  /// does, when CXI services are created/destroyed.
  Status authorize_vni(NicAddr port, Vni vni);
  Status revoke_vni(NicAddr port, Vni vni);
  [[nodiscard]] bool vni_authorized(NicAddr port, Vni vni) const;

  /// Strict VNI enforcement is on by default (the converged-deployment
  /// configuration).  Disabling reproduces a flat, unisolated fabric.
  void set_enforcement(bool on) noexcept;
  [[nodiscard]] bool enforcement() const noexcept;

  /// Routes `p` from its src port (which must be local to this switch).
  /// Computes `arrival_vt` from the timing model (per-hop latency,
  /// per-link serialization, egress contention, TC penalty) and invokes
  /// the destination NIC's delivery callback — possibly after forwarding
  /// through peer switches — or drops.
  RouteResult route(Packet&& p);

  [[nodiscard]] SwitchCounters counters() const;
  [[nodiscard]] SwitchCounters counters_for_vni(Vni vni) const;
  [[nodiscard]] std::size_t connected_ports() const;
  [[nodiscard]] std::size_t uplink_count() const;
  /// Transit accounting for the uplink toward `peer` (zeroes if absent).
  [[nodiscard]] LinkCounters uplink_counters(SwitchId peer) const;

 private:
  struct Port {
    DeliveryFn deliver;
    std::unordered_set<Vni> vnis;
    /// Per-traffic-class egress horizon.  Priority scheduling: a packet
    /// of class k waits for all queued traffic of class <= k (higher or
    /// equal priority) plus at most one in-flight frame of lower-priority
    /// traffic (preemption is frame-granular, as on Rosetta).
    SimTime egress_free_vt[kNumTrafficClasses] = {0, 0, 0, 0};
  };
  /// A directed inter-switch link with its own virtual-time bandwidth
  /// accounting (same priority model as NIC-facing egress ports).
  /// `peer` is non-owning; see add_uplink.
  struct Uplink {
    RosettaSwitch* peer = nullptr;
    DataRate rate;
    SimDuration latency = 0;
    SimTime egress_free_vt[kNumTrafficClasses] = {0, 0, 0, 0};
    LinkCounters counters;
  };

  /// Ingress processing shared by route() (check_src = true) and
  /// hop-by-hop forwarding from a peer switch (check_src = false).
  RouteResult admit(Packet&& p, bool check_src, int ttl);

  /// Priority-scheduled egress: earliest start for a packet of `prio`
  /// given the per-class horizons, charging frame-granular preemption of
  /// lower-priority in-flight traffic.  Caller holds mutex_.
  SimTime schedule_egress_locked(SimTime at_egress, int prio,
                                 SimTime (&free_vt)[kNumTrafficClasses],
                                 std::uint64_t size_bytes, DataRate rate);

  const SwitchId id_;
  std::shared_ptr<TimingModel> timing_;
  mutable std::mutex mutex_;
  bool enforce_ = true;
  std::unordered_map<NicAddr, Port> ports_;
  std::unordered_map<SwitchId, Uplink> uplinks_;
  std::shared_ptr<const std::vector<SwitchId>> nic_home_;
  std::unordered_map<SwitchId, SwitchId> next_hop_;
  SwitchCounters totals_;
  std::unordered_map<Vni, SwitchCounters> per_vni_;
};

}  // namespace shs::hsn
