// cassini_nic.hpp — model of the Slingshot Cassini (CXI) NIC.
//
// The real Cassini exposes RDMA through a character device: applications
// allocate endpoints (command + event queues), register memory regions,
// and then communicate with no kernel involvement (Section II-A/II-B).
// This model keeps those semantics:
//   * endpoints are NIC-level objects bound to exactly one VNI and one
//     traffic class at allocation time (the security-relevant binding —
//     authorization happens in the CXI driver *before* this call);
//   * two-sided sends land in the target endpoint's RX queue;
//   * one-sided RDMA read/write touch registered memory regions only,
//     validated against the packet's VNI, with completions raised at the
//     initiator via a real ACK/response packet routed back through the
//     switch (so isolation applies to both directions);
//   * every operation advances *virtual* time via the shared TimingModel
//     (callers carry their own virtual clock; see src/mpi).
//
// Thread-safety: all public methods may be called from any thread; RX and
// event queues use mutex+condvar so application threads block naturally.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>

#include "hsn/packet.hpp"
#include "hsn/rosetta_switch.hpp"
#include "hsn/timing.hpp"
#include "util/status.hpp"

namespace shs::hsn {

/// Completion event, as Cassini would write into an event queue.
struct Event {
  enum class Type : std::uint8_t {
    kSendComplete,
    kRdmaWriteComplete,
    kRdmaReadComplete,
    kError,
  };
  Type type = Type::kError;
  Status status;               ///< non-OK for kError
  std::uint64_t op_id = 0;     ///< initiator-side correlation id
  std::uint64_t size = 0;
  SimTime vt = 0;              ///< virtual completion time
  std::vector<std::byte> data; ///< RDMA-read response payload
};

/// NIC hardware resource limits (per NIC).
struct NicLimits {
  std::uint32_t max_endpoints = 2048;
  std::uint32_t max_memory_regions = 8192;
  std::size_t max_rx_queue_packets = 1 << 16;
};

struct NicCounters {
  std::uint64_t tx_packets = 0;
  std::uint64_t rx_packets = 0;
  std::uint64_t tx_dropped = 0;       ///< refused by the switch
  std::uint64_t rx_unknown_ep = 0;    ///< arrived for a freed endpoint
  std::uint64_t rx_vni_mismatch = 0;  ///< NIC-side VNI double-check failed
  std::uint64_t rma_denied = 0;       ///< RMA to missing/foreign-VNI MR
};

/// The NIC.  One per node; constructor connects it to the switch.
class CassiniNic {
 public:
  CassiniNic(NicAddr addr, std::shared_ptr<RosettaSwitch> fabric_switch,
             std::shared_ptr<TimingModel> timing, NicLimits limits = {});
  ~CassiniNic();
  CassiniNic(const CassiniNic&) = delete;
  CassiniNic& operator=(const CassiniNic&) = delete;

  [[nodiscard]] NicAddr addr() const noexcept { return addr_; }
  [[nodiscard]] const NicLimits& limits() const noexcept { return limits_; }

  // -- Endpoint lifecycle (invoked by the CXI driver after authentication).

  /// Allocates a hardware endpoint bound to `vni`/`tc`.
  Result<EndpointId> alloc_endpoint(Vni vni, TrafficClass tc);
  Status free_endpoint(EndpointId ep);
  [[nodiscard]] std::size_t endpoint_count() const;
  /// VNI an endpoint is bound to (kInvalidVni if unknown).
  [[nodiscard]] Vni endpoint_vni(EndpointId ep) const;

  // -- Memory registration (one-sided targets).

  /// Registers `region` for remote access via the returned RKey.  The
  /// region inherits the endpoint's VNI; remote ops on other VNIs are
  /// refused by the NIC even if the switch somehow routed them.
  Result<RKey> register_mr(EndpointId ep, std::span<std::byte> region);
  Status deregister_mr(RKey key);
  [[nodiscard]] std::size_t mr_count() const;

  // -- Data path.  `local_vt` is the caller's virtual clock; the returned
  //    SimTime is the clock after the NIC accepted the operation.

  /// Two-sided send.  If `payload` is non-empty its bytes travel with the
  /// packet; otherwise the packet is size-only (`size_bytes` governs
  /// timing either way).  Completion is *local* (eager): the returned
  /// time is when the send buffer is reusable.  Switch-level drops raise
  /// a kError event on the sender's event queue.
  Result<SimTime> post_send(EndpointId ep, NicAddr dst, EndpointId dst_ep,
                            std::uint64_t tag, std::uint64_t size_bytes,
                            std::span<const std::byte> payload,
                            SimTime local_vt, std::uint64_t op_id = 0);

  /// One-sided RDMA write into the remote MR `rkey` at `offset`.
  /// Completion (kRdmaWriteComplete) arrives on this endpoint's event
  /// queue once the target NIC's ACK returns.
  Result<SimTime> rdma_write(EndpointId ep, NicAddr dst, RKey rkey,
                             std::uint64_t offset, std::uint64_t size_bytes,
                             std::span<const std::byte> payload,
                             SimTime local_vt, std::uint64_t op_id);

  /// One-sided RDMA read of `size_bytes` from remote MR `rkey`+`offset`.
  /// Completion (kRdmaReadComplete, with data) arrives on the event queue.
  Result<SimTime> rdma_read(EndpointId ep, NicAddr dst, RKey rkey,
                            std::uint64_t offset, std::uint64_t size_bytes,
                            SimTime local_vt, std::uint64_t op_id);

  // -- Queues.

  /// Blocking dequeue of the next two-sided packet for `ep`.  Returns
  /// kTimeout after `real_timeout_ms` wall milliseconds (0 = poll once).
  Result<Packet> wait_rx(EndpointId ep, int real_timeout_ms = 10'000);
  /// Non-blocking variant.
  Result<Packet> poll_rx(EndpointId ep);

  /// Blocking dequeue from the endpoint's event queue.
  Result<Event> wait_event(EndpointId ep, int real_timeout_ms = 10'000);
  Result<Event> poll_event(EndpointId ep);

  [[nodiscard]] NicCounters counters() const;

 private:
  /// A hardware endpoint.  Owns its queues behind its own mutex so a
  /// blocked receiver never stalls the NIC-wide maps (and per-rank
  /// application threads do not contend with each other).
  struct Endpoint {
    Vni vni = kInvalidVni;
    TrafficClass tc = TrafficClass::kBestEffort;
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Packet> rx;
    std::deque<Event> events;
    bool closed = false;
  };
  struct MemRegion {
    EndpointId ep = 0;
    Vni vni = kInvalidVni;
    std::span<std::byte> region;
  };

  /// Switch delivery callback — dispatches by PacketOp.  Never holds an
  /// endpoint lock while re-entering the switch (loopback RMA replies).
  void on_packet(Packet&& p);

  [[nodiscard]] std::shared_ptr<Endpoint> find_ep(EndpointId ep) const;
  static void push_event(Endpoint& ep, Event e, std::size_t cap);
  void count_tx_drop(const RouteResult& rr, EndpointId src_ep,
                     std::uint64_t op_id, SimTime error_vt);
  /// Injection scheduling: computes when a packet of `tc` leaves the NIC
  /// given `accepted_vt`, honouring per-class priority (same model as the
  /// switch egress).  Caller holds mutex_.
  SimTime schedule_tx_locked(SimTime accepted_vt, TrafficClass tc,
                             std::uint64_t size_bytes);

  const NicAddr addr_;
  std::shared_ptr<RosettaSwitch> switch_;
  std::shared_ptr<TimingModel> timing_;
  const NicLimits limits_;

  mutable std::mutex mutex_;  ///< guards maps, counters, id generators
  EndpointId next_ep_ = 1;
  RKey next_rkey_ = 1;
  std::uint64_t next_seq_ = 1;
  /// Sender-side link serialization horizon, per traffic class
  /// (priority-scheduled, frame-granular preemption).
  SimTime tx_free_vt_[kNumTrafficClasses] = {0, 0, 0, 0};
  std::unordered_map<EndpointId, std::shared_ptr<Endpoint>> endpoints_;
  std::unordered_map<RKey, MemRegion> mrs_;
  NicCounters counters_;
};

}  // namespace shs::hsn
