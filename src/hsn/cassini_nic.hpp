// cassini_nic.hpp — model of the Slingshot Cassini (CXI) NIC.
//
// The real Cassini exposes RDMA through a character device: applications
// allocate endpoints (command + event queues), register memory regions,
// and then communicate with no kernel involvement (Section II-A/II-B).
// This model keeps those semantics:
//   * endpoints are NIC-level objects bound to exactly one VNI and one
//     traffic class at allocation time (the security-relevant binding —
//     authorization happens in the CXI driver *before* this call);
//   * two-sided sends land in the target endpoint's RX queue;
//   * one-sided RDMA read/write touch registered memory regions only,
//     validated against the packet's VNI, with completions raised at the
//     initiator via a real ACK/response packet routed back through the
//     switch (so isolation applies to both directions);
//   * every operation advances *virtual* time via the shared TimingModel
//     (callers carry their own virtual clock; see src/mpi).
//
// Fabric attachment: the NIC does not hold a switch pointer.  It emits
// packets through an injection callback (Fabric::inject routes at the
// packet's home edge switch, always against the fabric manager's
// current tables) and receives deliveries via deliver(), which the
// Fabric wires as the edge switch's delivery callback.  This keeps the
// NIC valid across topology republishes with nothing to re-validate.
//
// Thread-safety: all public methods may be called from any thread; RX and
// event queues use mutex+condvar so application threads block naturally.
// The endpoint directory is read lock-free (three dependent atomic loads
// through an append-only chunked index), so the steady-state send and
// receive paths never touch the NIC-wide lock for endpoint resolution.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <functional>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "hsn/packet.hpp"
#include "hsn/rosetta_switch.hpp"
#include "hsn/timing.hpp"
#include "util/spinlock.hpp"
#include "util/status.hpp"

namespace shs::hsn {

class Fabric;

/// Completion event, as Cassini would write into an event queue.
struct Event {
  enum class Type : std::uint8_t {
    kSendComplete,
    kRdmaWriteComplete,
    kRdmaReadComplete,
    kError,
  };
  Type type = Type::kError;
  Status status;               ///< non-OK for kError
  std::uint64_t op_id = 0;     ///< initiator-side correlation id
  std::uint64_t size = 0;
  SimTime vt = 0;              ///< virtual completion time
  std::vector<std::byte> data; ///< RDMA-read response payload
};

/// Why a target NIC refused a one-sided op (carried back to the
/// initiator in a kRmaNack packet's `tag`).  All three are *permanent*
/// failures: retransmitting the same request can never succeed, so the
/// initiator completes the op immediately with a non-retryable status.
enum class RmaNackReason : std::uint8_t {
  kNoSuchMr = 1,     ///< rkey does not name a registered region
  kVniMismatch = 2,  ///< MR is registered on a different VNI
  kOutOfBounds = 3,  ///< offset + length exceeds the region
};

/// NIC hardware resource limits (per NIC).
struct NicLimits {
  std::uint32_t max_endpoints = 2048;
  std::uint32_t max_memory_regions = 8192;
  std::size_t max_rx_queue_packets = 1 << 16;
};

struct NicCounters {
  std::uint64_t tx_packets = 0;
  std::uint64_t rx_packets = 0;
  std::uint64_t tx_dropped = 0;       ///< refused by the switch
  std::uint64_t rx_unknown_ep = 0;    ///< arrived for a freed endpoint
  std::uint64_t rx_vni_mismatch = 0;  ///< NIC-side VNI double-check failed
  std::uint64_t rma_denied = 0;       ///< RMA to missing/foreign-VNI MR
  /// Two-sided packets tail-dropped because the destination endpoint's
  /// RX ring was at max_rx_queue_packets (DropReason::kRxOverflow) —
  /// a counted, observable drop instead of the silent loss it was.
  std::uint64_t rx_overflow = 0;
};

/// NIC-level reliable-delivery protocol knobs (see docs/reliability.md).
/// Disabled by default: the zero-cost path is one predicted branch per
/// post.  Configure before traffic starts; not safe to flip mid-flight.
struct ReliabilityConfig {
  bool enabled = false;
  /// Retransmits after the initial attempt; an op that still fails
  /// degrades into a Status-reported kError completion (never a hang).
  int max_retries = 8;
  /// First retransmit timeout; grows by `backoff_factor` per attempt,
  /// capped at `rto_max`, each draw jittered by ±`jitter` (seeded, so
  /// per-seed schedules are bit-identical).
  SimDuration rto_base = from_micros(10);
  double backoff_factor = 2.0;
  SimDuration rto_max = from_millis(2);
  double jitter = 0.1;
  std::uint64_t seed = 0x5eed;
  /// Receiver-side duplicate-suppression window: most recent (src, seq)
  /// pairs remembered per NIC.
  std::size_t dedup_window = 1 << 14;
  /// Degraded mode (control plane down, see docs/fault_tolerance.md):
  /// multiplier on max_retries for drops only a republish can cure
  /// (kLinkDown / kNoRoute / kStaleEpoch) — instead of failing fast on a
  /// replan that cannot arrive, the op stretches its budget and rides
  /// out the outage.  <= 1 disables the stretch.
  double degraded_retry_factor = 2.0;
};

/// Reliable-delivery accounting, per NIC (Fabric::reliability_totals()
/// sums these fabric-wide; the stack surfaces them in its metrics).
struct ReliabilityCounters {
  std::uint64_t retransmits = 0;        ///< retry attempts injected
  std::uint64_t duplicates = 0;         ///< suppressed at the receiver
  std::uint64_t budget_exhausted = 0;   ///< ops failed after max_retries
  std::uint64_t recovered = 0;          ///< ops that needed >= 1 retry
  /// Recovered ops whose successful attempt routed on a newer
  /// CompiledPlan than their first try — packets lost in the
  /// failure->replan window and carried across it by retransmission.
  std::uint64_t recovered_after_replan = 0;
};

/// The NIC.  One per node; the Fabric constructs it with an injection
/// callback and connects deliver() to the node's edge switch.
class CassiniNic {
 public:
  /// Hands a packet to the fabric's data plane (Fabric::inject — or, in
  /// single-switch unit tests, RosettaSwitch::route directly).
  using InjectFn = std::function<RouteResult(Packet&&)>;

  CassiniNic(NicAddr addr, InjectFn inject,
             std::shared_ptr<TimingModel> timing, NicLimits limits = {});
  /// Fabric-owned NICs inject through the Fabric directly (no
  /// std::function dispatch on the per-packet path).  The Fabric
  /// outlives its NICs by construction.
  CassiniNic(NicAddr addr, Fabric& fabric,
             std::shared_ptr<TimingModel> timing, NicLimits limits = {});
  ~CassiniNic();
  CassiniNic(const CassiniNic&) = delete;
  CassiniNic& operator=(const CassiniNic&) = delete;

  [[nodiscard]] NicAddr addr() const noexcept { return addr_; }
  [[nodiscard]] const NicLimits& limits() const noexcept { return limits_; }

  /// Fabric-side entry point: the edge switch's delivery callback.
  /// Dispatches by PacketOp; never holds an endpoint lock while
  /// re-entering the fabric (loopback RMA replies).  One-sided targets
  /// that owe the initiator a reply (ACK / read response / NACK) inject
  /// it back into the fabric synchronously from here.
  void deliver(Packet&& p);

  /// Engine-side delivery: identical to deliver() except that a reply
  /// the target owes is *returned* (TX-scheduled onto this NIC's seq
  /// stream but not injected) instead of re-entering the fabric from the
  /// delivery callback.  The sharded engine stages it as a fresh attempt
  /// in the target's own domain, so reply traffic obeys the same
  /// (domain, vt, seq) merge order as everything else.  The returned
  /// packet's `reliable` flag is pre-set from this NIC's
  /// ReliabilityConfig; nullopt when the packet needed no reply.
  std::optional<Packet> deliver_from_engine(Packet&& p);

  // -- Endpoint lifecycle (invoked by the CXI driver after authentication).

  /// Allocates a hardware endpoint bound to `vni`/`tc`.
  Result<EndpointId> alloc_endpoint(Vni vni, TrafficClass tc);
  Status free_endpoint(EndpointId ep);
  [[nodiscard]] std::size_t endpoint_count() const;
  /// VNI an endpoint is bound to (kInvalidVni if unknown).
  [[nodiscard]] Vni endpoint_vni(EndpointId ep) const;

  // -- Memory registration (one-sided targets).

  /// Registers `region` for remote access via the returned RKey.  The
  /// region inherits the endpoint's VNI; remote ops on other VNIs are
  /// refused by the NIC even if the switch somehow routed them.
  Result<RKey> register_mr(EndpointId ep, std::span<std::byte> region);
  Status deregister_mr(RKey key);
  [[nodiscard]] std::size_t mr_count() const;

  // -- Data path.  `local_vt` is the caller's virtual clock; the returned
  //    SimTime is the clock after the NIC accepted the operation.

  /// Two-sided send.  If `payload` is non-empty its bytes travel with the
  /// packet; otherwise the packet is size-only (`size_bytes` governs
  /// timing either way).  Completion is *local* (eager): the returned
  /// time is when the send buffer is reusable.  Switch-level drops raise
  /// a kError event on the sender's event queue.
  Result<SimTime> post_send(EndpointId ep, NicAddr dst, EndpointId dst_ep,
                            std::uint64_t tag, std::uint64_t size_bytes,
                            std::span<const std::byte> payload,
                            SimTime local_vt, std::uint64_t op_id = 0);

  /// One-sided RDMA write into the remote MR `rkey` at `offset`.
  /// Completion (kRdmaWriteComplete) arrives on this endpoint's event
  /// queue once the target NIC's ACK returns.
  Result<SimTime> rdma_write(EndpointId ep, NicAddr dst, RKey rkey,
                             std::uint64_t offset, std::uint64_t size_bytes,
                             std::span<const std::byte> payload,
                             SimTime local_vt, std::uint64_t op_id);

  /// One-sided RDMA read of `size_bytes` from remote MR `rkey`+`offset`.
  /// Completion (kRdmaReadComplete, with data) arrives on the event queue.
  Result<SimTime> rdma_read(EndpointId ep, NicAddr dst, RKey rkey,
                            std::uint64_t offset, std::uint64_t size_bytes,
                            SimTime local_vt, std::uint64_t op_id);

  // -- Queues.

  /// Blocking dequeue of the next two-sided packet for `ep`.  Returns
  /// kTimeout after `real_timeout_ms` wall milliseconds (0 = poll once).
  Result<Packet> wait_rx(EndpointId ep, int real_timeout_ms = 10'000);
  /// Non-blocking variant.
  Result<Packet> poll_rx(EndpointId ep);
  /// Bulk-discards every packet queued on `ep` (a completion-queue
  /// drain: one lock, no per-packet move).  Returns the discard count —
  /// what rate benchmarks use to keep queues bounded without paying a
  /// poll round trip per packet.
  std::size_t drain_rx(EndpointId ep);

  /// Blocking dequeue from the endpoint's event queue.
  Result<Event> wait_event(EndpointId ep, int real_timeout_ms = 10'000);
  Result<Event> poll_event(EndpointId ep);

  [[nodiscard]] NicCounters counters() const;

  // -- Reliable delivery (see docs/reliability.md).

  /// Installs the retransmit protocol on this NIC's send paths.  Must be
  /// called before traffic; reads of the config on the data path are
  /// unsynchronized by design.
  void set_reliability(const ReliabilityConfig& cfg);
  [[nodiscard]] const ReliabilityConfig& reliability() const noexcept {
    return rel_;
  }
  /// Invoked between a failed attempt and its retransmit (outside every
  /// lock) with the 1-based attempt number and the backoff about to be
  /// charged.  Harnesses use it to advance control-plane virtual time /
  /// trigger fabric-manager repair during the retry window.  Only safe
  /// when sends are single-threaded (the chaos/bench drivers); do not
  /// install one under multi-threaded MPI ranks.
  using RetryHook = std::function<void(int attempt, SimDuration backoff)>;
  void set_retry_hook(RetryHook hook) { retry_hook_ = std::move(hook); }
  [[nodiscard]] ReliabilityCounters reliability_counters() const;

  /// Degraded mode: flipped by the stack's fabric-manager watchdog while
  /// the control plane is down/restarting.  Replan-dependent failures
  /// then retry against the stretched budget (degraded_retry_factor)
  /// instead of failing fast waiting for a republish that cannot come.
  void set_degraded(bool on) noexcept {
    degraded_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool degraded() const noexcept {
    return degraded_.load(std::memory_order_relaxed);
  }
  /// Retry budget for an op whose last attempt failed with `r`:
  /// max_retries, stretched by degraded_retry_factor while degraded for
  /// the replan-dependent reasons.  Consulted by inject_reliable and the
  /// ShardEngine's retry staging.
  [[nodiscard]] int retry_budget(DropReason r) const noexcept;

  // -- Sharded data-plane engine hooks (see hsn/shard_engine.hpp).  The
  //    engine splits post_send into prepare (build + TX scheduling,
  //    here) and walk (hop-by-hop across domains, engine-side), then
  //    reports each op's outcome back on the engine's driver thread at
  //    a window barrier via the note_* calls below.  All four are
  //    driver-thread-only by contract.

  /// A packet built and TX-scheduled but not yet handed to the fabric.
  struct PreparedSend {
    Packet packet;
    /// local_vt + tx overhead — the base the retransmit backoff grows
    /// from (post_send's `done_vt`).
    SimTime accepted_vt = 0;
  };
  /// Engine-side prefix of post_send(): validates the endpoint, builds
  /// the kSend packet (size-only, no payload), assigns its NIC-global
  /// sequence number and charges the TX link horizon.  Does not inject,
  /// retry, or raise completion events; packet.reliable is pre-set from
  /// this NIC's ReliabilityConfig.
  Result<PreparedSend> prepare_send(EndpointId ep, NicAddr dst,
                                    EndpointId dst_ep, std::uint64_t tag,
                                    std::uint64_t size_bytes,
                                    SimTime local_vt);
  /// Zero-copy variant of prepare_send for the engine's pooled staging:
  /// builds the packet directly into caller-owned storage `out`
  /// (typically a slot of a ShardEngine item pool) and returns the
  /// accepted_vt, skipping the PreparedSend move chain on the
  /// highest-rate verb.  `out` is only written on success.
  Result<SimTime> prepare_send_into(Packet& out, EndpointId ep, NicAddr dst,
                                    EndpointId dst_ep, std::uint64_t tag,
                                    std::uint64_t size_bytes,
                                    SimTime local_vt);
  /// Engine-side prefix of rdma_write(): same packet rdma_write would
  /// inject (payload copied when non-empty), same accepted_vt, seq and
  /// TX charge.  The completion (kRdmaWriteComplete via the target's
  /// ACK, or kError via a NACK/drop) is raised with `op_id` when the
  /// reply lands.
  Result<PreparedSend> prepare_rma_write(EndpointId ep, NicAddr dst,
                                         RKey rkey, std::uint64_t offset,
                                         std::uint64_t size_bytes,
                                         std::span<const std::byte> payload,
                                         SimTime local_vt,
                                         std::uint64_t op_id);
  /// Engine-side prefix of rdma_read(): the small read *request* packet
  /// (wanted length rides in `tag`, as on the synchronous path).
  Result<PreparedSend> prepare_rma_read(EndpointId ep, NicAddr dst,
                                        RKey rkey, std::uint64_t offset,
                                        std::uint64_t size_bytes,
                                        SimTime local_vt,
                                        std::uint64_t op_id);
  /// Charges one retransmit of master packet `proto` for 1-based retry
  /// number `attempt`: recomputes the capped exponential backoff, draws
  /// the seeded jitter, advances `vt_io` (the op's send-buffer hold
  /// time) by the backoff, re-schedules the TX horizon (updating
  /// proto.inject_vt) and counts the retransmit.  Returns the backoff.
  SimDuration schedule_retransmit(Packet& proto, int attempt,
                                  SimTime& vt_io);
  /// Terminal-failure accounting for an engine-driven send: TX-drop
  /// counter plus a kError event on the source endpoint's queue;
  /// `budget_exhausted` additionally counts a reliable op that ran out
  /// of retries.
  void note_tx_drop(DropReason r, EndpointId src_ep, std::uint64_t op_id,
                    SimTime error_vt, bool budget_exhausted);
  /// Recovery accounting for an engine-driven reliable op that needed
  /// >= 1 retransmit before delivering.
  void note_recovered(bool after_replan);
  /// True when `r` is worth retrying under the reliable protocol (the
  /// engine's retry/fail-fast decision, same predicate post_send uses).
  [[nodiscard]] static bool is_transient(DropReason r) noexcept {
    return transient_reason(r);
  }

 private:
  /// FIFO of received packets: a power-of-two ring over one contiguous
  /// buffer.  A deque allocates and frees block nodes as the queue
  /// breathes with every burst/drain cycle; the ring touches the
  /// allocator only when the high-water mark grows.
  class PacketRing {
   public:
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    void push_back(Packet&& p) {
      if (size_ == buf_.size()) grow();
      buf_[(head_ + size_) & (buf_.size() - 1)] = std::move(p);
      ++size_;
    }
    Packet pop_front() {
      Packet p = std::move(buf_[head_]);
      head_ = (head_ + 1) & (buf_.size() - 1);
      --size_;
      return p;
    }
    /// Discards everything queued (releases payload buffers in place —
    /// no per-packet moves), returning how many packets were dropped.
    std::size_t clear() noexcept {
      const std::size_t n = size_;
      for (std::size_t i = 0; i < n; ++i) {
        // Move-assign an empty vector: actually frees the heap buffer
        // (vector::clear() would only reset the size and pin capacity).
        buf_[(head_ + i) & (buf_.size() - 1)].payload =
            std::vector<std::byte>();
      }
      head_ = 0;
      size_ = 0;
      return n;
    }

   private:
    void grow() {
      const std::size_t n = buf_.empty() ? 16 : buf_.size() * 2;
      std::vector<Packet> next(n);
      for (std::size_t i = 0; i < size_; ++i) {
        next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
      }
      buf_ = std::move(next);
      head_ = 0;
    }
    std::vector<Packet> buf_;  ///< power-of-two capacity
    std::size_t head_ = 0;
    std::size_t size_ = 0;
  };

  /// A hardware endpoint.  Owns its queues behind its own mutex so a
  /// blocked receiver never stalls the NIC-wide maps (and per-rank
  /// application threads do not contend with each other).
  struct Endpoint {
    Vni vni = kInvalidVni;
    TrafficClass tc = TrafficClass::kBestEffort;
    /// Two-lock queue discipline.  `qlock` (a spinlock) guards the
    /// queues, `waiters`, and `closed` — every push/poll/drain is a few
    /// dozen nanoseconds, so the steady-state data path never touches a
    /// pthread mutex.  `wmutex` + `cv` exist only for *blocking*
    /// receivers: a waiter holds wmutex, then atomically
    /// checks-the-queue-and-registers under qlock before waiting, and a
    /// pusher that observes `waiters > 0` (after its push, under qlock)
    /// acquires wmutex before notifying — so the notify can never slip
    /// into the gap between a waiter's check and its wait.  Lock order
    /// is always qlock-inside-wmutex; pushers never hold qlock while
    /// taking wmutex.
    SpinLock qlock;
    std::mutex wmutex;
    std::condition_variable cv;
    PacketRing rx;
    std::deque<Event> events;
    /// Two-sided packets accepted into rx (plain: incremented under
    /// qlock, which the push holds anyway — no extra atomic RMW on the
    /// per-packet path).  counters() sums these across endpoints.
    std::uint64_t rx_accepted = 0;
    int waiters = 0;  ///< blocked wait_rx/wait_event calls (under qlock)
    bool closed = false;
  };
  struct MemRegion {
    EndpointId ep = 0;
    Vni vni = kInvalidVni;
    std::span<std::byte> region;
  };
  // Lock-free endpoint directory.  EndpointIds are dense and never
  // reused; slots live in fixed-size chunks reached through a spine of
  // chunk pointers.  Storage is append-only: chunks and spines are never
  // freed before the NIC itself, and every Endpoint ever allocated is
  // parked in ep_owned_ until destruction (a freed endpoint's slot is
  // nulled; the object stays valid for any reader that raced the free —
  // the same "packet in flight while endpoint closes" window the real
  // hardware has).  Readers therefore need no lock and no refcount
  // traffic: three dependent acquire loads resolve an id to a raw
  // Endpoint*.  Writers (alloc/free, cold) serialize on mutex_.
  //
  // Deliberate trade: parked endpoints make NIC memory grow with the
  // number of endpoints ever allocated (a few hundred bytes plus any
  // retained queue capacity each) rather than the number live.  A NIC
  // churns at job granularity — thousands over a long soak, not
  // millions — so this buys lock-free reads for kilobytes.  Revisit
  // with epoch-based reclamation if endpoint churn ever scales with
  // packet counts.
  static constexpr std::size_t kEpChunkSize = 128;
  struct EpChunk {
    std::array<std::atomic<Endpoint*>, kEpChunkSize> slots{};
  };
  struct EpSpine {
    explicit EpSpine(std::size_t n) : chunks(n) {}
    std::vector<std::atomic<EpChunk*>> chunks;
  };

  /// Everything that varies between the TX verbs; prepare_tx supplies
  /// the invariant parts (src addressing, VNI/TC binding, reliability
  /// flag, serialization cache, seq and TX-horizon charge).
  struct TxParams {
    PacketOp op = PacketOp::kSend;
    NicAddr dst = kInvalidNic;
    EndpointId dst_ep = 0;
    std::uint64_t tag = 0;
    std::uint64_t size_bytes = 0;
    RKey rkey = 0;
    std::uint64_t mr_offset = 0;
    std::uint64_t op_id = 0;
    std::span<const std::byte> payload;
  };
  /// The one validate/build/schedule prefix every TX verb shares —
  /// post_send, rdma_write, rdma_read, and the engine's prepare_*
  /// hooks all delegate here, so the legacy and engine paths cannot
  /// drift: endpoint validation, packet field setup, accepted_vt,
  /// serialization cache, and the locked seq + TX-horizon charge.
  Result<PreparedSend> prepare_tx(EndpointId ep, const TxParams& tx,
                                  SimTime local_vt);
  /// Core of prepare_tx, writing into caller-owned packet storage and
  /// returning accepted_vt — the allocation-free form the engine's
  /// pooled staging calls; prepare_tx wraps it for the by-value users.
  Result<SimTime> prepare_tx_into(Packet& out, EndpointId ep,
                                  const TxParams& tx, SimTime local_vt);

  [[nodiscard]] Endpoint* find_ep(EndpointId ep) const;
  /// Ensures a slot for `id` exists and returns it.  Caller holds mutex_.
  std::atomic<Endpoint*>& ep_slot_locked(EndpointId id);
  static void push_event(Endpoint& ep, Event e, std::size_t cap);
  void count_tx_drop(const RouteResult& rr, EndpointId src_ep,
                     std::uint64_t op_id, SimTime error_vt);
  /// Shared body of deliver()/deliver_from_engine(): consumes the
  /// packet, applies its effect, and returns the reply the target owes
  /// (TX-sequenced, `reliable` pre-set, not injected) — the two public
  /// entry points differ only in who routes that reply.
  std::optional<Packet> deliver_impl(Packet&& p);
  /// Builds the fail-fast NACK a target owes the initiator of a denied
  /// one-sided op (reason code in `tag`, op_id echoed).
  Packet make_rma_nack(const Packet& req, RmaNackReason why);
  /// Injection scheduling: computes when a packet of `tc` leaves the NIC
  /// given `accepted_vt`, honouring per-class priority (same model as the
  /// switch egress).  `ser_time` is the packet's serialization on the
  /// edge link, computed once by the caller (and cached on the packet
  /// so same-rate fabric hops skip recomputing it).  Caller holds
  /// mutex_.
  SimTime schedule_tx_locked(SimTime accepted_vt, TrafficClass tc,
                             SimDuration ser_time);

  /// Routes `p` into the fabric: direct Fabric call when fabric_ is
  /// set, the generic callback otherwise.
  RouteResult inject(Packet&& p);

  /// Reliable injection: attempts `proto` (kept intact as the
  /// retransmit master copy) up to 1 + max_retries times, charging
  /// exponential seeded-jitter backoff to `vt_io` (the caller's
  /// accepted-time, which the retries push forward) and rescheduling
  /// each copy on the TX link.  Returns the final RouteResult;
  /// non-transient reasons (authorization, unknown destination) fail
  /// fast without consuming budget.
  RouteResult inject_reliable(Packet& proto, SimTime& vt_io);
  /// Reasons a retransmit can cure (loss, flaps, dead links awaiting
  /// replan) vs. permanent rejections.
  [[nodiscard]] static bool transient_reason(DropReason r) noexcept;
  /// The fabric manager's published table version (0 without a Fabric).
  [[nodiscard]] std::uint64_t plan_version_now() const;
  /// Status for a failed op: annotates transient reasons with the
  /// exhausted retry budget when reliability is on.
  [[nodiscard]] Status drop_status_for(DropReason r) const;
  /// Receiver-side duplicate suppression for reliable packets: records
  /// (src, seq); false when already seen (the duplicate is counted and
  /// must be discarded with no effect).
  bool accept_reliable(const Packet& p);

  const NicAddr addr_;
  Fabric* const fabric_ = nullptr;  ///< direct injection fast path
  const InjectFn inject_;           ///< generic fallback (unit-test rigs)
  std::shared_ptr<TimingModel> timing_;
  const NicLimits limits_;

  mutable SpinLock mutex_;  ///< guards endpoint dir writes, tx horizons
  /// Memory-region table lock.  A real (blocking) mutex, separate from
  /// the spinlock above: RMA targets hold it across payload-sized
  /// copies, which would break the spinlock's nanoseconds-only
  /// contract.  Lock order where both are needed: mr_mutex_ (outer) ->
  /// mutex_ (inner) — a spinlock holder never blocks.
  mutable std::mutex mr_mutex_;
  EndpointId next_ep_ = 1;
  std::uint64_t tx_packets_ = 0;  ///< plain: incremented under mutex_
  RKey next_rkey_ = 1;
  /// Atomic so RMA reply packets (sequenced under mr_mutex_) never need
  /// the spinlock — taking it there would invert the lock order.
  std::atomic<std::uint64_t> next_seq_{1};
  std::size_t endpoint_count_ = 0;
  /// Sender-side link serialization horizon, per traffic class
  /// (priority-scheduled, frame-granular preemption).
  SimTime tx_free_vt_[kNumTrafficClasses] = {0, 0, 0, 0};
  std::atomic<EpSpine*> ep_spine_;
  std::vector<std::unique_ptr<EpSpine>> ep_spines_;  ///< all generations
  std::vector<std::unique_ptr<EpChunk>> ep_chunks_;  ///< stable chunk storage
  std::vector<std::shared_ptr<Endpoint>> ep_owned_;  ///< alive until ~CassiniNic
  std::unordered_map<RKey, MemRegion> mrs_;
  /// Relaxed atomics for the paths that hold no lock; the two
  /// per-packet counters (tx under mutex_, two-sided rx under the
  /// endpoint qlock) are plain integers under locks the path already
  /// holds.
  struct {
    std::atomic<std::uint64_t> rx_packets{0};  ///< ACK/RMA receptions
    std::atomic<std::uint64_t> tx_dropped{0};
    std::atomic<std::uint64_t> rx_unknown_ep{0};
    std::atomic<std::uint64_t> rx_vni_mismatch{0};
    std::atomic<std::uint64_t> rma_denied{0};
    std::atomic<std::uint64_t> rx_overflow{0};
    std::atomic<std::uint64_t> rel_retransmits{0};
    std::atomic<std::uint64_t> rel_duplicates{0};
    std::atomic<std::uint64_t> rel_budget_exhausted{0};
    std::atomic<std::uint64_t> rel_recovered{0};
    std::atomic<std::uint64_t> rel_recovered_after_replan{0};
  } counters_;

  // -- Reliable-delivery state.
  ReliabilityConfig rel_;
  RetryHook retry_hook_;
  /// Degraded-mode flag (see set_degraded); relaxed atomic so the
  /// watchdog can flip it without taking the NIC's data-path lock.
  std::atomic<bool> degraded_{false};
  /// Backoff-jitter stream (guarded by mutex_; reseeded per NIC so
  /// retry schedules decorrelate across senders but stay per-seed
  /// deterministic).
  Rng rel_rng_{0x5eed};
  /// Duplicate-suppression window: seen (src, seq) keys + FIFO eviction
  /// order.  Own lock — the receive path must not contend with senders
  /// on mutex_, and entries are only touched for reliable packets.
  mutable SpinLock dedup_lock_;
  std::unordered_set<std::uint64_t> rel_seen_;
  std::deque<std::uint64_t> rel_seen_fifo_;
};

}  // namespace shs::hsn
