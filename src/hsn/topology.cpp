#include "hsn/topology.hpp"

#include <algorithm>
#include <deque>

#include "util/rng.hpp"

namespace shs::hsn {

namespace {

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

/// Derives the adaptive-routing metadata from the wired link list: BFS
/// hop distances between all switch pairs and, from those, the set of
/// minimal next hops per (switch, destination).  Topology-agnostic, so
/// every builder (and any future topology) gets correct candidate sets
/// for free.  A non-null `failures` filter excludes dead links and
/// switches from the graph — the fabric-manager re-plan path, which
/// also passes a `scratch` so repeated republishes reuse the adjacency
/// and distance workspace instead of re-allocating it.
void finalize_routing_metadata(TopologyPlan& plan,
                               const FailureSet* failures = nullptr,
                               PlanScratch* scratch = nullptr) {
  const std::size_t n = plan.switch_count;
  PlanScratch local;
  PlanScratch& ws = scratch != nullptr ? *scratch : local;
  ws.out.resize(n);
  for (auto& neighbors : ws.out) neighbors.clear();
  for (const TopologyPlan::PlannedLink& link : plan.links) {
    if (failures != nullptr && failures->link_dead(link.from, link.to)) {
      continue;
    }
    ws.out[link.from].push_back(link.to);
  }
  for (auto& neighbors : ws.out) {
    std::sort(neighbors.begin(), neighbors.end());
  }

  plan.min_hops.assign(n, {});
  ws.dist.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    plan.min_hops[s].reserve(n > 0 ? n - 1 : 0);
    std::fill(ws.dist.begin(), ws.dist.end(), -1);
    ws.dist[s] = 0;
    ws.queue.clear();
    ws.queue.push_back(static_cast<SwitchId>(s));
    while (!ws.queue.empty()) {
      const SwitchId u = ws.queue.front();
      ws.queue.pop_front();
      for (const SwitchId v : ws.out[u]) {
        if (ws.dist[v] >= 0) continue;
        ws.dist[v] = ws.dist[u] + 1;
        ws.queue.push_back(v);
      }
    }
    for (std::size_t d = 0; d < n; ++d) {
      if (d != s && ws.dist[d] > 0) {
        plan.min_hops[s][static_cast<SwitchId>(d)] = ws.dist[d];
      }
    }
  }

  // neighbor v of s starts a minimal route toward d iff
  // dist(v, d) == dist(s, d) - 1.  Neighbors are visited in ascending id
  // order, so candidate lists are deterministically ordered.
  plan.candidates.assign(n, {});
  for (std::size_t s = 0; s < n; ++s) {
    plan.candidates[s].reserve(plan.min_hops[s].size());
    for (const auto& [d, hops] : plan.min_hops[s]) {
      auto& list = plan.candidates[s][d];
      for (const SwitchId v : ws.out[s]) {
        if (v == d && hops == 1) {
          list.push_back(v);
        } else if (v != d) {
          const auto vd = plan.min_hops[v].find(d);
          if (vd != plan.min_hops[v].end() && vd->second == hops - 1) {
            list.push_back(v);
          }
        }
      }
    }
  }
}

TopologyPlan build_single(std::size_t nodes) {
  TopologyPlan plan;
  plan.kind = TopologyKind::kSingleSwitch;
  plan.switch_count = 1;
  plan.nic_home.assign(nodes, 0);
  plan.next_hop.resize(1);
  return plan;
}

TopologyPlan build_fat_tree(const TopologyConfig& config, std::size_t nodes,
                            std::uint64_t seed) {
  const std::size_t npsw = std::max<std::size_t>(1, config.nodes_per_switch);
  const std::size_t leaves = std::max<std::size_t>(1, ceil_div(nodes, npsw));
  TopologyPlan plan;
  plan.kind = TopologyKind::kFatTree;
  plan.nic_home.resize(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    plan.nic_home[i] = static_cast<SwitchId>(i / npsw);
  }
  if (leaves == 1) {
    // Degenerates to a single switch; no spine layer needed.
    plan.switch_count = 1;
    plan.next_hop.resize(1);
    return plan;
  }
  const std::size_t spines = std::max<std::size_t>(1, config.spines);
  plan.switch_count = leaves + spines;
  plan.next_hop.resize(plan.switch_count);

  for (std::size_t l = 0; l < leaves; ++l) {
    for (std::size_t s = 0; s < spines; ++s) {
      const auto leaf = static_cast<SwitchId>(l);
      const auto spine = static_cast<SwitchId>(leaves + s);
      plan.links.push_back({leaf, spine, config.link_rate,
                            config.link_latency});
      plan.links.push_back({spine, leaf, config.link_rate,
                            config.link_latency});
    }
  }

  // Minimal routing: leaf -> spine -> leaf.  The spine for a (src, dst)
  // leaf pair is a deterministic hash of the pair and the fabric seed,
  // so one fabric always picks the same path (reproducible runs) while
  // different seeds genuinely reshuffle which pairs collide on a spine
  // (an additive salt would only relabel spines, leaving the contention
  // structure seed-independent).
  for (std::size_t l = 0; l < leaves; ++l) {
    for (std::size_t d = 0; d < leaves; ++d) {
      if (l == d) continue;
      const std::uint64_t pair_key =
          seed ^ (static_cast<std::uint64_t>(l) << 32 |
                  static_cast<std::uint64_t>(d));
      const std::size_t spine =
          leaves + static_cast<std::size_t>(Rng(pair_key).next() % spines);
      plan.next_hop[l][static_cast<SwitchId>(d)] =
          static_cast<SwitchId>(spine);
    }
  }
  // Every spine knows the down-route to every leaf — adaptive policies
  // may send traffic through spines the static hash never picks.
  for (std::size_t s = 0; s < spines; ++s) {
    for (std::size_t d = 0; d < leaves; ++d) {
      plan.next_hop[leaves + s][static_cast<SwitchId>(d)] =
          static_cast<SwitchId>(d);
    }
  }
  return plan;
}

TopologyPlan build_dragonfly(const TopologyConfig& config,
                             std::size_t nodes) {
  const std::size_t npsw = std::max<std::size_t>(1, config.nodes_per_switch);
  const std::size_t a = std::max<std::size_t>(1, config.switches_per_group);
  const std::size_t edge = std::max<std::size_t>(1, ceil_div(nodes, npsw));
  const std::size_t groups = ceil_div(edge, a);
  TopologyPlan plan;
  plan.kind = TopologyKind::kDragonfly;
  // Round up to whole groups so every gateway index exists (trailing
  // switches simply host no NICs).
  plan.switch_count = groups * a;
  plan.group_of.resize(plan.switch_count);
  for (std::size_t s = 0; s < plan.switch_count; ++s) {
    plan.group_of[s] = static_cast<SwitchId>(s / a);
  }
  plan.nic_home.resize(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    plan.nic_home[i] = static_cast<SwitchId>(i / npsw);
  }
  plan.next_hop.resize(plan.switch_count);

  // Group-local links: all-to-all within each group.
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t i = 0; i < a; ++i) {
      for (std::size_t j = 0; j < a; ++j) {
        if (i == j) continue;
        plan.links.push_back({static_cast<SwitchId>(g * a + i),
                              static_cast<SwitchId>(g * a + j),
                              config.link_rate, config.link_latency});
      }
    }
  }
  // Global links: for each ordered group pair (g, h) the gateway switch
  // in g is `h % a`, so global ports spread evenly across the group.
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t h = 0; h < groups; ++h) {
      if (g == h) continue;
      plan.links.push_back({static_cast<SwitchId>(g * a + h % a),
                            static_cast<SwitchId>(h * a + g % a),
                            config.link_rate, config.global_link_latency});
    }
  }

  // Dimension-order minimal routing: local hop to the gateway, global hop
  // to the destination group, local hop to the destination switch.
  for (std::size_t s = 0; s < plan.switch_count; ++s) {
    const std::size_t gs = s / a;
    for (std::size_t d = 0; d < plan.switch_count; ++d) {
      if (s == d) continue;
      const std::size_t gd = d / a;
      SwitchId next;
      if (gs == gd) {
        next = static_cast<SwitchId>(d);  // same group: direct local link
      } else {
        const std::size_t gateway = gs * a + gd % a;
        next = s == gateway
                   ? static_cast<SwitchId>(gd * a + gs % a)  // global hop
                   : static_cast<SwitchId>(gateway);         // toward gateway
      }
      plan.next_hop[s][static_cast<SwitchId>(d)] = next;
    }
  }
  return plan;
}

}  // namespace

TopologyPlan TopologyPlan::build(const TopologyConfig& config,
                                 std::size_t nodes, std::uint64_t seed) {
  TopologyPlan plan = [&] {
    switch (config.kind) {
      case TopologyKind::kFatTree:
        return build_fat_tree(config, nodes, seed);
      case TopologyKind::kDragonfly:
        return build_dragonfly(config, nodes);
      case TopologyKind::kSingleSwitch:
        break;
    }
    return build_single(nodes);
  }();
  plan.routing = config.routing;
  plan.seed = seed;
  finalize_routing_metadata(plan);
  return plan;
}

TopologyPlan TopologyPlan::replan(const FailureSet& failures,
                                  std::uint64_t new_version,
                                  PlanScratch* scratch) const {
  TopologyPlan plan = *this;
  plan.version = new_version;
  if (failures.empty()) {
    // Full restore: republish the pristine wiring verbatim (including the
    // topology-specific static tables the initial build computed), so a
    // fail/restore cycle returns the fabric to byte-identical routing.
    return plan;
  }
  finalize_routing_metadata(plan, &failures, scratch);

  // Static next hops over the survivors: for each reachable (s, d) pair,
  // a seeded hash of the pair picks among the minimal candidates.  Like
  // the fat-tree spine hash, different seeds genuinely reshuffle which
  // pairs share a detour link while one seed always re-plans the same
  // way.
  plan.next_hop.assign(plan.switch_count, {});
  for (std::size_t s = 0; s < plan.switch_count; ++s) {
    if (failures.switch_dead(static_cast<SwitchId>(s))) continue;
    plan.next_hop[s].reserve(plan.candidates[s].size());
    for (const auto& [d, cands] : plan.candidates[s]) {
      if (cands.empty()) continue;
      const std::uint64_t pair_key =
          seed ^ FailureSet::link_key(static_cast<SwitchId>(s), d);
      plan.next_hop[s][d] =
          cands[Rng(pair_key).next() % cands.size()];
    }
  }
  return plan;
}

void TopologyPlan::compile_into(CompiledPlan& out) const {
  const std::size_t n = switch_count;
  out.n = n;
  out.routing = routing;
  out.version = version;
  out.group_of.assign(group_of.begin(), group_of.end());
  out.df_groups =
      group_of.empty() ? 0 : static_cast<SwitchId>(group_of.back() + 1);
  out.df_per_group =
      out.df_groups == 0
          ? 0
          : static_cast<SwitchId>(group_of.size() / out.df_groups);

  out.next_hop.assign(n * n, kInvalidSwitch);
  for (std::size_t s = 0; s < next_hop.size() && s < n; ++s) {
    for (const auto& [d, nh] : next_hop[s]) {
      out.next_hop[s * n + d] = nh;
    }
  }

  out.min_hops.assign(n * n, kUnreachableHops);
  for (std::size_t s = 0; s < min_hops.size() && s < n; ++s) {
    for (const auto& [d, hops] : min_hops[s]) {
      out.min_hops[s * n + d] = hops;
    }
  }

  // CSR candidates: per-cell sizes, exclusive prefix sum, then a fill
  // pass in (s, d) order — flat output independent of map iteration
  // order, list contents already ascending from the BFS derivation.
  out.cand_begin.assign(n * n + 1, 0);
  std::size_t total = 0;
  for (std::size_t s = 0; s < candidates.size() && s < n; ++s) {
    for (const auto& [d, list] : candidates[s]) {
      out.cand_begin[s * n + d + 1] =
          static_cast<std::uint32_t>(list.size());
      total += list.size();
    }
  }
  for (std::size_t cell = 1; cell <= n * n; ++cell) {
    out.cand_begin[cell] += out.cand_begin[cell - 1];
  }
  out.cand.resize(total);
  for (std::size_t s = 0; s < candidates.size() && s < n; ++s) {
    for (const auto& [d, list] : candidates[s]) {
      std::copy(list.begin(), list.end(),
                out.cand.begin() + out.cand_begin[s * n + d]);
    }
  }
}

}  // namespace shs::hsn
