// timing.hpp — analytic wire-time model for the simulated Slingshot fabric.
//
// The paper's testbed is real hardware (Cassini NICs at 200 Gbps behind a
// Rosetta switch); we replace it with a calibrated latency/bandwidth model
// so the OSU figure *shapes* reproduce: small messages are dominated by
// per-message software+NIC overhead, large messages saturate the 200 Gbps
// line rate, and every sample carries seeded multiplicative jitter that
// produces the run-to-run percentile bands of Figs 5-8.
#pragma once

#include <cstdint>
#include <mutex>

#include "hsn/types.hpp"
#include "util/rng.hpp"
#include "util/spinlock.hpp"
#include "util/units.hpp"

namespace shs::hsn {

/// Calibration constants.  Defaults approximate published Slingshot-10/11
/// microbenchmark behaviour (~2 us small-message latency, 200 Gbps).
struct TimingConfig {
  DataRate link_rate = DataRate::gbps(200.0);
  /// Sender-side per-packet processing (libfabric + NIC doorbell + DMA
  /// fetch).  Dominates small-message bandwidth.
  SimDuration tx_overhead = from_micros(0.28);
  /// Receiver-side per-packet processing (event generation + CQ write).
  SimDuration rx_overhead = from_micros(0.25);
  /// Switch traversal + wire propagation (one hop).
  SimDuration hop_latency = from_micros(0.85);
  /// Extra queueing penalty per traffic-class priority step below
  /// DEDICATED_ACCESS, applied when the egress port is busy.
  SimDuration tc_queue_step = from_micros(0.05);
  /// Multiplicative jitter amplitude on every timing sample.  The paper
  /// measured ~+/-1 % run-to-run variation on the host baseline.
  double jitter_amplitude = 0.008;
  /// Per-run systematic drift: one factor drawn at model construction and
  /// applied to every duration.  Models the run-level variation (thermal,
  /// clocking, placement) that gives Figs 6/8 their percentile bands —
  /// per-sample jitter alone would average out over 10^4 iterations.
  double run_bias_amplitude = 0.004;
  /// Maximum payload of one fabric frame; larger transfers are segmented
  /// for timing purposes (Slingshot MTU-like granularity).
  std::uint64_t frame_bytes = 4096;
};

/// Thread-safe jittered timing model shared by NICs and the switch.
class TimingModel {
 public:
  explicit TimingModel(TimingConfig config, std::uint64_t seed = 0x5155ULL)
      : config_(config), rng_(seed) {
    run_bias_ = 1.0 + rng_.uniform(-config_.run_bias_amplitude,
                                   config_.run_bias_amplitude);
  }

  [[nodiscard]] const TimingConfig& config() const noexcept { return config_; }

  // All of the per-packet entry points below are defined inline: the
  // data plane calls them five to nine times per packet, so a call must
  // cost arithmetic, not a cross-TU function-call round trip.

  /// Serialization time of `bytes` on the link (segmented per frame).
  [[nodiscard]] SimDuration serialize_time(
      std::uint64_t bytes) const noexcept {
    return serialize_time(bytes, config_.link_rate);
  }

  /// Same framing model at an explicit rate (inter-switch links may run
  /// at a different rate than the NIC edge links).
  [[nodiscard]] SimDuration serialize_time(std::uint64_t bytes,
                                           DataRate rate) const noexcept {
    // Each frame adds a small header on the wire; model it as 32 bytes.
    // Sub-frame packets (the per-packet hot case) skip the 64-bit
    // integer division entirely — the quotient is exactly 1 there.
    constexpr std::uint64_t kFrameHeader = 32;
    const std::uint64_t frames =
        bytes <= config_.frame_bytes
            ? 1
            : (bytes + config_.frame_bytes - 1) / config_.frame_bytes;
    const std::uint64_t wire_bytes = bytes + frames * kFrameHeader;
    return rate.transfer_time(wire_bytes);
  }

  /// One-hop latency for `tc`, with jitter.
  SimDuration hop_latency(TrafficClass tc) {
    return jittered(config_.hop_latency + tc_penalty(tc));
  }

  /// Sender-side overhead, with jitter.
  SimDuration tx_overhead() { return jittered(config_.tx_overhead); }

  /// Receiver-side overhead, with jitter.
  SimDuration rx_overhead() { return jittered(config_.rx_overhead); }

  /// Queueing penalty for a lower-priority class on a contended port.
  [[nodiscard]] SimDuration tc_penalty(TrafficClass tc) const noexcept {
    return static_cast<SimDuration>(static_cast<int>(tc)) *
           config_.tc_queue_step;
  }

  /// Applies seeded multiplicative jitter to `d`.
  SimDuration jittered(SimDuration d) {
    if (config_.jitter_amplitude == 0.0) {
      // Deterministic configurations (determinism tests, packet-rate
      // benches) skip the lock and the RNG draw entirely.  The jitter
      // factor would be exactly 1.0, and the timing stream is private
      // to this class, so the skipped draw is unobservable.
      return run_bias_ == 1.0
                 ? d
                 : static_cast<SimDuration>(static_cast<double>(d) *
                                            run_bias_);
    }
    std::lock_guard<SpinLock> lock(mutex_);
    const double factor = run_bias_ * rng_.jitter(config_.jitter_amplitude);
    return static_cast<SimDuration>(static_cast<double>(d) * factor);
  }

 private:
  TimingConfig config_;
  SpinLock mutex_;  ///< jitter draws are ~ns-long; see spinlock.hpp
  Rng rng_;
  double run_bias_ = 1.0;
};

}  // namespace shs::hsn
