// timing.hpp — analytic wire-time model for the simulated Slingshot fabric.
//
// The paper's testbed is real hardware (Cassini NICs at 200 Gbps behind a
// Rosetta switch); we replace it with a calibrated latency/bandwidth model
// so the OSU figure *shapes* reproduce: small messages are dominated by
// per-message software+NIC overhead, large messages saturate the 200 Gbps
// line rate, and every sample carries seeded multiplicative jitter that
// produces the run-to-run percentile bands of Figs 5-8.
#pragma once

#include <cstdint>
#include <mutex>

#include "hsn/types.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace shs::hsn {

/// Calibration constants.  Defaults approximate published Slingshot-10/11
/// microbenchmark behaviour (~2 us small-message latency, 200 Gbps).
struct TimingConfig {
  DataRate link_rate = DataRate::gbps(200.0);
  /// Sender-side per-packet processing (libfabric + NIC doorbell + DMA
  /// fetch).  Dominates small-message bandwidth.
  SimDuration tx_overhead = from_micros(0.28);
  /// Receiver-side per-packet processing (event generation + CQ write).
  SimDuration rx_overhead = from_micros(0.25);
  /// Switch traversal + wire propagation (one hop).
  SimDuration hop_latency = from_micros(0.85);
  /// Extra queueing penalty per traffic-class priority step below
  /// DEDICATED_ACCESS, applied when the egress port is busy.
  SimDuration tc_queue_step = from_micros(0.05);
  /// Multiplicative jitter amplitude on every timing sample.  The paper
  /// measured ~+/-1 % run-to-run variation on the host baseline.
  double jitter_amplitude = 0.008;
  /// Per-run systematic drift: one factor drawn at model construction and
  /// applied to every duration.  Models the run-level variation (thermal,
  /// clocking, placement) that gives Figs 6/8 their percentile bands —
  /// per-sample jitter alone would average out over 10^4 iterations.
  double run_bias_amplitude = 0.004;
  /// Maximum payload of one fabric frame; larger transfers are segmented
  /// for timing purposes (Slingshot MTU-like granularity).
  std::uint64_t frame_bytes = 4096;
};

/// Thread-safe jittered timing model shared by NICs and the switch.
class TimingModel {
 public:
  explicit TimingModel(TimingConfig config, std::uint64_t seed = 0x5155ULL)
      : config_(config), rng_(seed) {
    run_bias_ = 1.0 + rng_.uniform(-config_.run_bias_amplitude,
                                   config_.run_bias_amplitude);
  }

  [[nodiscard]] const TimingConfig& config() const noexcept { return config_; }

  /// Serialization time of `bytes` on the link (segmented per frame).
  [[nodiscard]] SimDuration serialize_time(std::uint64_t bytes) const noexcept;

  /// Same framing model at an explicit rate (inter-switch links may run
  /// at a different rate than the NIC edge links).
  [[nodiscard]] SimDuration serialize_time(std::uint64_t bytes,
                                           DataRate rate) const noexcept;

  /// One-hop latency for `tc`, with jitter.
  SimDuration hop_latency(TrafficClass tc);

  /// Sender-side overhead, with jitter.
  SimDuration tx_overhead();

  /// Receiver-side overhead, with jitter.
  SimDuration rx_overhead();

  /// Queueing penalty for a lower-priority class on a contended port.
  [[nodiscard]] SimDuration tc_penalty(TrafficClass tc) const noexcept {
    return static_cast<SimDuration>(static_cast<int>(tc)) *
           config_.tc_queue_step;
  }

  /// Applies seeded multiplicative jitter to `d`.
  SimDuration jittered(SimDuration d);

 private:
  TimingConfig config_;
  std::mutex mutex_;
  Rng rng_;
  double run_bias_ = 1.0;
};

}  // namespace shs::hsn
