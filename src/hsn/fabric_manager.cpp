#include "hsn/fabric_manager.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "db/database.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace shs::hsn {

namespace {
constexpr const char* kTag = "fabric-mgr";
constexpr const char* kJournalTable = "fm_journal";

using CrashPoint = ControlPlaneFaultProfile::CrashPoint;

/// Deterministic per-switch stagger delay in [0, max_delay]: a splitmix
/// finalizer over (seed, plan version, switch id), so the wave shape is
/// a pure function of the publish and reproducible across runs and
/// thread counts.
std::uint64_t stagger_hash(std::uint64_t seed, std::uint64_t version,
                           SwitchId sw) noexcept {
  std::uint64_t x = seed ^ (0x9e3779b97f4a7c15ULL * (version + 1)) ^
                    (0xda3e39cb94b95bdbULL * (sw + 1));
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

db::Row journal_row(const char* op, std::int64_t a, std::int64_t b,
                    std::int64_t version) {
  return db::Row{std::string(op), a, b, version};
}
}  // namespace

FabricManager::FabricManager(
    std::vector<std::shared_ptr<RosettaSwitch>> switches,
    std::shared_ptr<const std::vector<SwitchId>> nic_home,
    TopologyPlan base_plan)
    : switches_(std::move(switches)), nic_home_(std::move(nic_home)),
      base_(std::make_shared<const TopologyPlan>(std::move(base_plan))),
      current_(base_),
      committed_epoch_cell_(
          std::make_shared<std::atomic<std::uint64_t>>(0)) {
  std::vector<std::set<SwitchId>> neighbors(switches_.size());
  for (const TopologyPlan::PlannedLink& link : base_->links) {
    link_keys_.insert(FailureSet::link_key(link.from, link.to));
    neighbors[link.from].insert(link.to);
    neighbors[link.to].insert(link.from);
  }
  adjacent_.reserve(switches_.size());
  for (const auto& set : neighbors) {
    adjacent_.emplace_back(set.begin(), set.end());
  }
  // Single-threaded construction; the lock is not yet needed.
  for (const auto& sw : switches_) {
    sw->set_committed_epoch_source(committed_epoch_cell_);
  }
  publish_locked();
}

void FabricManager::apply_to_switch_locked(SwitchId sw) {
  switches_[sw]->set_forwarding(
      nic_home_, std::shared_ptr<const CompiledPlan>(live_compiled_));
}

void FabricManager::stage_publish_locked() {
  pending_applies_.clear();
  pending_applies_.reserve(switches_.size());
  for (const auto& sw : switches_) {
    const std::uint64_t max = static_cast<std::uint64_t>(
        stagger_.max_delay > 0 ? stagger_.max_delay : 0);
    const SimDuration delay =
        max == 0 ? 0
                 : static_cast<SimDuration>(stagger_hash(
                       stagger_.seed, version_, sw->id()) %
                                            (max + 1));
    pending_applies_.push_back({delay, sw->id()});
  }
  std::sort(pending_applies_.begin(), pending_applies_.end(),
            [](const PendingApply& a, const PendingApply& b) {
              return a.delay != b.delay ? a.delay < b.delay : a.sw < b.sw;
            });
  ++publish_seq_;
  publish_pending_.store(true, std::memory_order_relaxed);
}

void FabricManager::publish_locked() {
  std::shared_ptr<CompiledPlan> target;
  if (retired_compiled_ != nullptr && retired_compiled_.use_count() == 1) {
    // Every switch swapped off this snapshot at the previous publish —
    // recycle its table buffers instead of allocating fresh ones.
    target = std::move(retired_compiled_);
  } else {
    target = std::make_shared<CompiledPlan>();
  }
  current_->compile_into(*target);
  retired_compiled_ = std::move(live_compiled_);
  live_compiled_ = std::move(target);
  // Commit the epoch before any switch applies it: from this instant a
  // lagging switch can tell that its plan is stale (epoch fencing).
  committed_epoch_cell_->store(live_compiled_->version,
                               std::memory_order_relaxed);
  if (stagger_.enabled) {
    stage_publish_locked();
    if (crash_profile_.point == CrashPoint::kMidPublish) {
      // Waves staged, none drained: the restart completes the publish.
      enter_crash_locked();
    }
    return;
  }
  std::size_t applied = 0;
  for (const auto& sw : switches_) {
    if (crash_profile_.point == CrashPoint::kMidPublish &&
        applied == crash_profile_.publish_after_switches) {
      enter_crash_locked();
      return;
    }
    apply_to_switch_locked(sw->id());
    ++applied;
  }
}

void FabricManager::publish_all_now_locked() {
  std::shared_ptr<CompiledPlan> target;
  if (retired_compiled_ != nullptr && retired_compiled_.use_count() == 1) {
    target = std::move(retired_compiled_);
  } else {
    target = std::make_shared<CompiledPlan>();
  }
  current_->compile_into(*target);
  retired_compiled_ = std::move(live_compiled_);
  live_compiled_ = std::move(target);
  committed_epoch_cell_->store(live_compiled_->version,
                               std::memory_order_relaxed);
  pending_applies_.clear();
  publish_pending_.store(false, std::memory_order_relaxed);
  for (const auto& sw : switches_) {
    apply_to_switch_locked(sw->id());
  }
}

void FabricManager::enter_crash_locked() {
  crashed_ = true;
  crash_profile_ = ControlPlaneFaultProfile{};
  SHS_INFO(kTag) << "control plane CRASHED (injected)";
}

void FabricManager::journal_rows_locked(
    const std::vector<db::Row>& rows) {
  if (journal_db_ == nullptr || journal_db_->crashed() || rows.empty()) {
    return;
  }
  const Status s = journal_db_->with_transaction([&](db::Transaction& tx) {
    for (const db::Row& row : rows) {
      const auto id = tx.insert(kJournalTable, row);
      if (!id.is_ok()) return id.status();
    }
    return Status::ok();
  });
  if (!s.is_ok()) {
    // A journaling fault must never take the control loop down with it;
    // recovery fidelity degrades to the hardware sweep.
    SHS_WARN(kTag) << "journal write failed: " << s.message();
  }
}

bool FabricManager::has_link_locked(SwitchId from, SwitchId to) const {
  return link_keys_.contains(FailureSet::link_key(from, to));
}

void FabricManager::sync_link_state_locked(SwitchId a, SwitchId b) {
  if (has_link_locked(a, b)) {
    (void)switches_[a]->set_uplink_state(
        b, failures_.link_dead(a, b) ? LinkState::kDown : LinkState::kUp);
  }
  if (has_link_locked(b, a)) {
    (void)switches_[b]->set_uplink_state(
        a, failures_.link_dead(b, a) ? LinkState::kDown : LinkState::kUp);
  }
}

Status FabricManager::fail_link(SwitchId a, SwitchId b) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (a >= switches_.size() || b >= switches_.size()) {
    return invalid_argument(strfmt("no such switch pair (%u, %u)", a, b));
  }
  const bool ab = has_link_locked(a, b);
  const bool ba = has_link_locked(b, a);
  if (!ab && !ba) {
    return not_found(strfmt("no link between switches %u and %u", a, b));
  }
  std::vector<db::Row> journal;
  bool newly_failed = false;
  if (ab && failures_.links.insert(FailureSet::link_key(a, b)).second) {
    newly_failed = true;
    journal.push_back(journal_row("link_down", a, b, 0));
  }
  if (ba && failures_.links.insert(FailureSet::link_key(b, a)).second) {
    newly_failed = true;
    journal.push_back(journal_row("link_down", b, a, 0));
  }
  if (!newly_failed) {
    // Re-failing a dead link must not republish (or double-count a
    // re-route event) — same contract as fail_switch.
    return already_exists(strfmt("link (%u, %u) is already failed", a, b));
  }
  sync_link_state_locked(a, b);
  repair_pending_ = true;
  SHS_INFO(kTag) << "link (" << a << ", " << b << ") FAILED";
  if (!crashed_) {
    // A crashed manager cannot observe the failure, let alone journal or
    // repair it — the restart hardware sweep picks it up.
    journal_rows_locked(journal);
    if (auto_repair_) repair_locked();
  }
  return Status::ok();
}

Status FabricManager::restore_link(SwitchId a, SwitchId b) {
  std::unique_lock<std::mutex> lock(mutex_);
  std::vector<db::Row> journal;
  bool erased = false;
  if (failures_.links.erase(FailureSet::link_key(a, b)) > 0) {
    erased = true;
    journal.push_back(journal_row("link_up", a, b, 0));
  }
  if (failures_.links.erase(FailureSet::link_key(b, a)) > 0) {
    erased = true;
    journal.push_back(journal_row("link_up", b, a, 0));
  }
  if (!erased) {
    return not_found(strfmt("link (%u, %u) is not failed", a, b));
  }
  sync_link_state_locked(a, b);
  repair_pending_ = true;
  SHS_INFO(kTag) << "link (" << a << ", " << b << ") restored";
  if (!crashed_) {
    journal_rows_locked(journal);
    if (auto_repair_) repair_locked();
  }
  return Status::ok();
}

Status FabricManager::fail_switch(SwitchId s) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (s >= switches_.size()) {
    return invalid_argument(strfmt("no such switch %u", s));
  }
  if (!failures_.switches.insert(s).second) {
    return already_exists(strfmt("switch %u is already failed", s));
  }
  switches_[s]->set_health(SwitchHealth::kFailed);
  // Both directions of every cable touching the dead switch go dark.
  for (const SwitchId peer : adjacent_[s]) {
    sync_link_state_locked(s, peer);
  }
  repair_pending_ = true;
  SHS_INFO(kTag) << "switch " << s << " FAILED";
  if (!crashed_) {
    journal_rows_locked({journal_row("switch_down", s, -1, 0)});
    if (auto_repair_) repair_locked();
  }
  return Status::ok();
}

Status FabricManager::restore_switch(SwitchId s) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (failures_.switches.erase(s) == 0) {
    return not_found(strfmt("switch %u is not failed", s));
  }
  switches_[s]->set_health(SwitchHealth::kHealthy);
  // Links touching s come back unless independently failed (or the far
  // end is itself dead) — sync_link_state_locked re-derives both ends.
  for (const SwitchId peer : adjacent_[s]) {
    sync_link_state_locked(s, peer);
  }
  repair_pending_ = true;
  SHS_INFO(kTag) << "switch " << s << " restored";
  if (!crashed_) {
    journal_rows_locked({journal_row("switch_up", s, -1, 0)});
    if (auto_repair_) repair_locked();
  }
  return Status::ok();
}

void FabricManager::set_auto_repair(bool on) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto_repair_ = on;
  if (on && repair_pending_) repair_locked();
}

std::uint64_t FabricManager::repair() {
  std::unique_lock<std::mutex> lock(mutex_);
  return repair_locked();
}

std::uint64_t FabricManager::repair_if_pending() {
  std::unique_lock<std::mutex> lock(mutex_);
  return repair_pending_ ? repair_locked() : version_;
}

std::uint64_t FabricManager::repair_locked() {
  if (crashed_) return version_;
  const std::uint64_t next_version = version_ + 1;
  if (crash_profile_.point == CrashPoint::kBeforeJournal) {
    enter_crash_locked();
    return version_;
  }
  journal_rows_locked({journal_row(
      "publish", 0, 0, static_cast<std::int64_t>(next_version))});
  if (crash_profile_.point == CrashPoint::kAfterJournal) {
    enter_crash_locked();
    return version_;
  }
  version_ = next_version;
  current_ = std::make_shared<const TopologyPlan>(
      base_->replan(failures_, version_, &replan_scratch_));
  if (crash_profile_.point == CrashPoint::kBeforePublish) {
    enter_crash_locked();
    return version_;
  }
  publish_locked();
  if (crashed_) return version_;  // kMidPublish fired inside
  ++replans_;
  repair_pending_ = false;
  SHS_INFO(kTag) << "published plan v" << version_ << " around "
                 << failures_.links.size() << " dead links, "
                 << failures_.switches.size() << " dead switches";
  if (crash_profile_.point == CrashPoint::kAfterPublish) {
    enter_crash_locked();
  }
  return version_;
}

void FabricManager::set_publish_stagger(const PublishStagger& s) {
  std::unique_lock<std::mutex> lock(mutex_);
  stagger_ = s;
}

void FabricManager::apply_next_publish_wave() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (crashed_ || pending_applies_.empty()) return;
  const SimDuration wave = pending_applies_.front().delay;
  std::size_t i = 0;
  while (i < pending_applies_.size() && pending_applies_[i].delay == wave) {
    apply_to_switch_locked(pending_applies_[i].sw);
    ++i;
  }
  pending_applies_.erase(pending_applies_.begin(),
                         pending_applies_.begin() + static_cast<long>(i));
  if (pending_applies_.empty()) {
    publish_pending_.store(false, std::memory_order_relaxed);
  }
}

void FabricManager::apply_publishes_older_than(SimDuration d,
                                               std::uint64_t gen) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (crashed_ || gen != publish_seq_) return;
  std::size_t i = 0;
  while (i < pending_applies_.size() && pending_applies_[i].delay <= d) {
    apply_to_switch_locked(pending_applies_[i].sw);
    ++i;
  }
  pending_applies_.erase(pending_applies_.begin(),
                         pending_applies_.begin() + static_cast<long>(i));
  if (pending_applies_.empty()) {
    publish_pending_.store(false, std::memory_order_relaxed);
  }
}

void FabricManager::apply_all_publishes() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (crashed_) return;
  for (const PendingApply& entry : pending_applies_) {
    apply_to_switch_locked(entry.sw);
  }
  pending_applies_.clear();
  publish_pending_.store(false, std::memory_order_relaxed);
}

std::size_t FabricManager::pending_publish_count() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return pending_applies_.size();
}

std::vector<SimDuration> FabricManager::pending_publish_delays() const {
  std::unique_lock<std::mutex> lock(mutex_);
  std::vector<SimDuration> delays;
  for (const PendingApply& entry : pending_applies_) {
    if (delays.empty() || delays.back() != entry.delay) {
      delays.push_back(entry.delay);  // pending_applies_ is sorted
    }
  }
  return delays;
}

std::uint64_t FabricManager::publish_generation() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return publish_seq_;
}

std::uint64_t FabricManager::committed_epoch() const noexcept {
  return committed_epoch_cell_->load(std::memory_order_relaxed);
}

void FabricManager::attach_journal(db::Database& db) {
  std::unique_lock<std::mutex> lock(mutex_);
  journal_db_ = &db;
  if (!db.has_table(kJournalTable)) {
    (void)db.create_table({kJournalTable, {"op", "a", "b", "version"}});
  }
}

void FabricManager::arm_crash(const ControlPlaneFaultProfile& profile) {
  std::unique_lock<std::mutex> lock(mutex_);
  crash_profile_ = profile;
}

bool FabricManager::crashed() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return crashed_;
}

Status FabricManager::restart() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!crashed_) {
    return failed_precondition("fabric manager has not crashed");
  }
  // 1. The journal store may have gone down with us.
  if (journal_db_ != nullptr && journal_db_->crashed()) {
    const Status s = journal_db_->recover();
    if (!s.is_ok()) return s;
  }
  // 2. Replay the journal: reconstruct the failure timeline and the
  //    failure set as of the last publish intent.  Replans are
  //    deterministic (seeded BFS from the pristine plan), so recomputing
  //    the last published plan reproduces it byte for byte.
  FailureSet replayed;
  FailureSet published_failures;
  std::uint64_t last_version = 0;
  std::size_t publish_count = 0;
  const bool had_journal =
      journal_db_ != nullptr && journal_db_->has_table(kJournalTable);
  if (had_journal) {
    const auto rows = journal_db_->snapshot(kJournalTable);
    if (!rows.is_ok()) return rows.status();
    for (const auto& [id, row] : rows.value()) {
      const std::string& op = db::as_text(row[0]);
      if (op == "link_down") {
        replayed.links.insert(FailureSet::link_key(
            static_cast<SwitchId>(db::as_int(row[1])),
            static_cast<SwitchId>(db::as_int(row[2]))));
      } else if (op == "link_up") {
        replayed.links.erase(FailureSet::link_key(
            static_cast<SwitchId>(db::as_int(row[1])),
            static_cast<SwitchId>(db::as_int(row[2]))));
      } else if (op == "switch_down") {
        replayed.switches.insert(
            static_cast<SwitchId>(db::as_int(row[1])));
      } else if (op == "switch_up") {
        replayed.switches.erase(static_cast<SwitchId>(db::as_int(row[1])));
      } else if (op == "publish") {
        published_failures = replayed;
        last_version = static_cast<std::uint64_t>(db::as_int(row[3]));
        ++publish_count;
      }
    }
  } else {
    // No journal: the best available record of the published state is
    // the in-memory one (the process did not actually lose it — the
    // crash models the controller, not the host).
    published_failures = failures_;
    last_version = version_;
    publish_count = replans_;
  }
  failures_ = had_journal ? replayed : published_failures;
  // 3. Hardware sweep: the switches are the ground truth for anything
  //    that happened while the controller was down (or was lost to a
  //    journaling fault).  A link that is down without a journaled
  //    failure was failed while we were dead; a journaled failure whose
  //    link is up was restored.  One blind spot, by construction: a link
  //    independently failed while an endpoint switch was also failed is
  //    indistinguishable from the switch failure alone (link_dead covers
  //    both) — the journal, when attached, disambiguates it.
  std::vector<db::Row> sweep_delta;
  for (const auto& sw : switches_) {
    const SwitchId s = sw->id();
    const bool dead = sw->health() == SwitchHealth::kFailed;
    if (dead && failures_.switches.insert(s).second) {
      sweep_delta.push_back(journal_row("switch_down", s, -1, 0));
    } else if (!dead && failures_.switches.erase(s) > 0) {
      sweep_delta.push_back(journal_row("switch_up", s, -1, 0));
    }
  }
  for (const std::uint64_t key : link_keys_) {
    const SwitchId from = static_cast<SwitchId>(key >> 32);
    const SwitchId to = static_cast<SwitchId>(key & 0xffffffffu);
    const bool down = switches_[from]->uplink_state(to) == LinkState::kDown;
    if (down && !failures_.link_dead(from, to)) {
      failures_.links.insert(key);
      sweep_delta.push_back(journal_row("link_down", from, to, 0));
    } else if (!down && failures_.links.erase(key) > 0) {
      sweep_delta.push_back(journal_row("link_up", from, to, 0));
    }
  }
  // 4. Re-derive the published plan and complete any half-published
  //    swap: every switch converges on the last *committed* epoch.
  version_ = last_version;
  replans_ = publish_count;
  current_ = last_version == 0
                 ? base_
                 : std::make_shared<const TopologyPlan>(base_->replan(
                       published_failures, last_version, &replan_scratch_));
  crashed_ = false;
  crash_profile_ = ControlPlaneFaultProfile{};
  ++publish_seq_;  // scheduled waves from before the crash are stale
  publish_all_now_locked();
  // 5. Journal the swept delta so a *second* crash/restart still
  //    recovers the full failure set from the journal alone.
  journal_rows_locked(sweep_delta);
  // With a journal, "is a repair outstanding" is derivable (events past
  // the last publish intent); without one, trust the pre-crash flag too.
  repair_pending_ = (!had_journal && repair_pending_) ||
                    failures_.links != published_failures.links ||
                    failures_.switches != published_failures.switches;
  ++recovered_publishes_;
  SHS_INFO(kTag) << "control plane restarted: plan v" << version_
                 << " republished, " << failures_.links.size()
                 << " dead links, " << failures_.switches.size()
                 << " dead switches, repair "
                 << (repair_pending_ ? "pending" : "not pending");
  return Status::ok();
}

std::size_t FabricManager::recovered_publishes() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return recovered_publishes_;
}

SwitchHealth FabricManager::switch_health(SwitchId s) const {
  std::unique_lock<std::mutex> lock(mutex_);
  return failures_.switches.contains(s) ? SwitchHealth::kFailed
                                        : SwitchHealth::kHealthy;
}

bool FabricManager::link_up(SwitchId a, SwitchId b) const {
  std::unique_lock<std::mutex> lock(mutex_);
  // A cable that was never wired is not "up" — keep the observation API
  // consistent with fail_link, which rejects such pairs.
  if (!has_link_locked(a, b) && !has_link_locked(b, a)) return false;
  return !failures_.link_dead(a, b) && !failures_.link_dead(b, a);
}

std::shared_ptr<const TopologyPlan> FabricManager::plan() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return current_;
}

std::shared_ptr<const CompiledPlan> FabricManager::compiled_plan() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return live_compiled_;
}

std::uint64_t FabricManager::plan_version() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return version_;
}

std::size_t FabricManager::replans() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return replans_;
}

bool FabricManager::repair_pending() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return repair_pending_;
}

std::size_t FabricManager::failed_link_count() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return failures_.links.size();
}

std::size_t FabricManager::failed_switch_count() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return failures_.switches.size();
}

}  // namespace shs::hsn
