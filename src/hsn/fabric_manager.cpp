#include "hsn/fabric_manager.hpp"

#include <set>
#include <utility>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace shs::hsn {

namespace {
constexpr const char* kTag = "fabric-mgr";
}  // namespace

FabricManager::FabricManager(
    std::vector<std::shared_ptr<RosettaSwitch>> switches,
    std::shared_ptr<const std::vector<SwitchId>> nic_home,
    TopologyPlan base_plan)
    : switches_(std::move(switches)), nic_home_(std::move(nic_home)),
      base_(std::make_shared<const TopologyPlan>(std::move(base_plan))),
      current_(base_) {
  std::vector<std::set<SwitchId>> neighbors(switches_.size());
  for (const TopologyPlan::PlannedLink& link : base_->links) {
    link_keys_.insert(FailureSet::link_key(link.from, link.to));
    neighbors[link.from].insert(link.to);
    neighbors[link.to].insert(link.from);
  }
  adjacent_.reserve(switches_.size());
  for (const auto& set : neighbors) {
    adjacent_.emplace_back(set.begin(), set.end());
  }
  publish_locked();  // single-threaded construction; lock not yet needed
}

void FabricManager::publish_locked() {
  std::shared_ptr<CompiledPlan> target;
  if (retired_compiled_ != nullptr && retired_compiled_.use_count() == 1) {
    // Every switch swapped off this snapshot at the previous publish —
    // recycle its table buffers instead of allocating fresh ones.
    target = std::move(retired_compiled_);
  } else {
    target = std::make_shared<CompiledPlan>();
  }
  current_->compile_into(*target);
  for (const auto& sw : switches_) {
    sw->set_forwarding(nic_home_,
                       std::shared_ptr<const CompiledPlan>(target));
  }
  retired_compiled_ = std::move(live_compiled_);
  live_compiled_ = std::move(target);
}

bool FabricManager::has_link_locked(SwitchId from, SwitchId to) const {
  return link_keys_.contains(FailureSet::link_key(from, to));
}

void FabricManager::sync_link_state_locked(SwitchId a, SwitchId b) {
  if (has_link_locked(a, b)) {
    (void)switches_[a]->set_uplink_state(
        b, failures_.link_dead(a, b) ? LinkState::kDown : LinkState::kUp);
  }
  if (has_link_locked(b, a)) {
    (void)switches_[b]->set_uplink_state(
        a, failures_.link_dead(b, a) ? LinkState::kDown : LinkState::kUp);
  }
}

Status FabricManager::fail_link(SwitchId a, SwitchId b) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (a >= switches_.size() || b >= switches_.size()) {
    return invalid_argument(strfmt("no such switch pair (%u, %u)", a, b));
  }
  const bool ab = has_link_locked(a, b);
  const bool ba = has_link_locked(b, a);
  if (!ab && !ba) {
    return not_found(strfmt("no link between switches %u and %u", a, b));
  }
  bool newly_failed = false;
  if (ab) {
    newly_failed |= failures_.links.insert(FailureSet::link_key(a, b))
                        .second;
  }
  if (ba) {
    newly_failed |= failures_.links.insert(FailureSet::link_key(b, a))
                        .second;
  }
  if (!newly_failed) {
    // Re-failing a dead link must not republish (or double-count a
    // re-route event) — same contract as fail_switch.
    return already_exists(strfmt("link (%u, %u) is already failed", a, b));
  }
  sync_link_state_locked(a, b);
  repair_pending_ = true;
  SHS_INFO(kTag) << "link (" << a << ", " << b << ") FAILED";
  if (auto_repair_) repair_locked();
  return Status::ok();
}

Status FabricManager::restore_link(SwitchId a, SwitchId b) {
  std::unique_lock<std::mutex> lock(mutex_);
  const bool erased =
      failures_.links.erase(FailureSet::link_key(a, b)) +
          failures_.links.erase(FailureSet::link_key(b, a)) >
      0;
  if (!erased) {
    return not_found(strfmt("link (%u, %u) is not failed", a, b));
  }
  sync_link_state_locked(a, b);
  repair_pending_ = true;
  SHS_INFO(kTag) << "link (" << a << ", " << b << ") restored";
  if (auto_repair_) repair_locked();
  return Status::ok();
}

Status FabricManager::fail_switch(SwitchId s) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (s >= switches_.size()) {
    return invalid_argument(strfmt("no such switch %u", s));
  }
  if (!failures_.switches.insert(s).second) {
    return already_exists(strfmt("switch %u is already failed", s));
  }
  switches_[s]->set_health(SwitchHealth::kFailed);
  // Both directions of every cable touching the dead switch go dark.
  for (const SwitchId peer : adjacent_[s]) {
    sync_link_state_locked(s, peer);
  }
  repair_pending_ = true;
  SHS_INFO(kTag) << "switch " << s << " FAILED";
  if (auto_repair_) repair_locked();
  return Status::ok();
}

Status FabricManager::restore_switch(SwitchId s) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (failures_.switches.erase(s) == 0) {
    return not_found(strfmt("switch %u is not failed", s));
  }
  switches_[s]->set_health(SwitchHealth::kHealthy);
  // Links touching s come back unless independently failed (or the far
  // end is itself dead) — sync_link_state_locked re-derives both ends.
  for (const SwitchId peer : adjacent_[s]) {
    sync_link_state_locked(s, peer);
  }
  repair_pending_ = true;
  SHS_INFO(kTag) << "switch " << s << " restored";
  if (auto_repair_) repair_locked();
  return Status::ok();
}

void FabricManager::set_auto_repair(bool on) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto_repair_ = on;
  if (on && repair_pending_) repair_locked();
}

std::uint64_t FabricManager::repair() {
  std::unique_lock<std::mutex> lock(mutex_);
  return repair_locked();
}

std::uint64_t FabricManager::repair_if_pending() {
  std::unique_lock<std::mutex> lock(mutex_);
  return repair_pending_ ? repair_locked() : version_;
}

std::uint64_t FabricManager::repair_locked() {
  current_ = std::make_shared<const TopologyPlan>(
      base_->replan(failures_, ++version_, &replan_scratch_));
  publish_locked();
  ++replans_;
  repair_pending_ = false;
  SHS_INFO(kTag) << "published plan v" << version_ << " around "
                 << failures_.links.size() << " dead links, "
                 << failures_.switches.size() << " dead switches";
  return version_;
}

SwitchHealth FabricManager::switch_health(SwitchId s) const {
  std::unique_lock<std::mutex> lock(mutex_);
  return failures_.switches.contains(s) ? SwitchHealth::kFailed
                                        : SwitchHealth::kHealthy;
}

bool FabricManager::link_up(SwitchId a, SwitchId b) const {
  std::unique_lock<std::mutex> lock(mutex_);
  // A cable that was never wired is not "up" — keep the observation API
  // consistent with fail_link, which rejects such pairs.
  if (!has_link_locked(a, b) && !has_link_locked(b, a)) return false;
  return !failures_.link_dead(a, b) && !failures_.link_dead(b, a);
}

std::shared_ptr<const TopologyPlan> FabricManager::plan() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return current_;
}

std::shared_ptr<const CompiledPlan> FabricManager::compiled_plan() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return live_compiled_;
}

std::uint64_t FabricManager::plan_version() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return version_;
}

std::size_t FabricManager::replans() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return replans_;
}

bool FabricManager::repair_pending() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return repair_pending_;
}

std::size_t FabricManager::failed_link_count() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return failures_.links.size();
}

std::size_t FabricManager::failed_switch_count() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return failures_.switches.size();
}

}  // namespace shs::hsn
