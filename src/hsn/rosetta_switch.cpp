#include "hsn/rosetta_switch.hpp"

#include <algorithm>

#include "hsn/cassini_nic.hpp"

#include "util/log.hpp"
#include "util/strings.hpp"

namespace shs::hsn {

namespace {
constexpr const char* kTag = "rosetta";
}

const char* drop_reason_name(DropReason r) noexcept {
  switch (r) {
    case DropReason::kNone: return "none";
    case DropReason::kSrcNotAuthorized: return "src_unauthorized";
    case DropReason::kDstNotAuthorized: return "dst_unauthorized";
    case DropReason::kUnknownDestination: return "unknown_dst";
    case DropReason::kNoRoute: return "no_route";
    case DropReason::kLinkDown: return "link_down";
    case DropReason::kLossInjected: return "loss_injected";
    case DropReason::kCorrupt: return "corrupt";
    case DropReason::kAckLost: return "ack_lost";
    case DropReason::kRxOverflow: return "rx_overflow";
    case DropReason::kStaleEpoch: return "stale_epoch";
  }
  return "unknown";
}

RosettaSwitch::RosettaSwitch(std::shared_ptr<TimingModel> timing, SwitchId id,
                             std::uint64_t seed)
    : id_(id), timing_(std::move(timing)),
      route_rng_(seed ^ (0x9e3779b97f4a7c15ULL * (id + 1))),
      fault_rng_(seed ^ (0xda3e39cb94b95bdbULL * (id + 1))) {}

Status RosettaSwitch::connect(NicAddr addr, DeliveryFn deliver) {
  if (!deliver) {
    // admit_step discriminates local delivery from transit forwarding by
    // the presence of the stored callback, so an empty one must never
    // reach the port table.
    return invalid_argument("delivery callback must be non-empty");
  }
  if (addr >= kMaxPortAddr) {
    return invalid_argument(strfmt("NIC address %u exceeds the port-table "
                                   "bound", addr));
  }
  {
    std::lock_guard<SpinLock> lock(mutex_);
    if (addr >= ports_.size()) {
      ports_.resize(addr + 1);
    }
    if (ports_[addr].connected()) {
      return already_exists(strfmt("port %u already connected", addr));
    }
    ports_[addr].deliver =
        std::make_shared<const DeliveryFn>(std::move(deliver));
    ++connected_ports_;
  }
  SHS_DEBUG(kTag) << "NIC connected at switch " << id_ << " port " << addr;
  return Status::ok();
}

Status RosettaSwitch::connect(NicAddr addr, CassiniNic& nic) {
  if (addr >= kMaxPortAddr) {
    return invalid_argument(strfmt("NIC address %u exceeds the port-table "
                                   "bound", addr));
  }
  {
    std::lock_guard<SpinLock> lock(mutex_);
    if (addr >= ports_.size()) {
      ports_.resize(addr + 1);
    }
    if (ports_[addr].connected()) {
      return already_exists(strfmt("port %u already connected", addr));
    }
    ports_[addr].nic = &nic;
    ++connected_ports_;
  }
  SHS_DEBUG(kTag) << "NIC connected at switch " << id_ << " port " << addr;
  return Status::ok();
}

Status RosettaSwitch::disconnect(NicAddr addr) {
  std::lock_guard<SpinLock> lock(mutex_);
  Port* port = port_at(addr);
  if (port == nullptr) {
    return not_found(strfmt("port %u not connected", addr));
  }
  *port = Port{};  // reconnects start with fresh VNIs and egress horizons
  --connected_ports_;
  return Status::ok();
}

Status RosettaSwitch::add_uplink(RosettaSwitch& peer, DataRate rate,
                                 SimDuration latency) {
  if (&peer == this) {
    return invalid_argument("uplink needs a distinct peer switch");
  }
  std::lock_guard<SpinLock> lock(mutex_);
  const SwitchId peer_id = peer.id();
  if (peer_id >= uplinks_.size()) {
    uplinks_.resize(peer_id + 1);
  }
  if (uplinks_[peer_id].peer != nullptr) {
    return already_exists(strfmt("uplink to switch %u already exists",
                                 peer_id));
  }
  Uplink& up = uplinks_[peer_id];
  up.peer = &peer;
  up.rate = rate;
  up.latency = latency;
  ++uplink_count_;
  return Status::ok();
}

void RosettaSwitch::set_forwarding(
    std::shared_ptr<const std::vector<SwitchId>> nic_home,
    std::shared_ptr<const CompiledPlan> plan) {
  std::lock_guard<SpinLock> lock(mutex_);
  nic_home_ = std::move(nic_home);
  plan_ = std::move(plan);
}

SwitchCounters& RosettaSwitch::slab_for_locked(Vni vni) {
  if (vni == last_slab_vni_ && last_slab_ != nullptr) {
    return *last_slab_;
  }
  const auto it = std::lower_bound(
      slab_index_.begin(), slab_index_.end(), vni,
      [](const auto& entry, Vni v) { return entry.first < v; });
  SwitchCounters* slab;
  if (it != slab_index_.end() && it->first == vni) {
    slab = it->second;
  } else {
    slab = &slab_store_.emplace_back();
    slab_index_.insert(it, {vni, slab});
  }
  last_slab_vni_ = vni;
  last_slab_ = slab;
  return *slab;
}

Status RosettaSwitch::authorize_vni(NicAddr port, Vni vni) {
  if (vni == kInvalidVni) return invalid_argument("VNI 0 is reserved");
  {
    std::lock_guard<SpinLock> lock(mutex_);
    Port* p = port_at(port);
    if (p == nullptr) {
      return not_found(strfmt("port %u not connected", port));
    }
    // The slab is resolved *here*, at authorization time, so the
    // per-packet edge check finds the counter pointer alongside the VNI
    // it scans for anyway.
    const auto it = std::lower_bound(
        p->vnis.begin(), p->vnis.end(), vni,
        [](const auto& entry, Vni v) { return entry.first < v; });
    if (it == p->vnis.end() || it->first != vni) {
      p->vnis.insert(it, {vni, &slab_for_locked(vni)});
    }
  }
  SHS_DEBUG(kTag) << "port " << port << " authorized for VNI " << vni;
  return Status::ok();
}

Status RosettaSwitch::revoke_vni(NicAddr port, Vni vni) {
  std::lock_guard<SpinLock> lock(mutex_);
  Port* p = port_at(port);
  if (p == nullptr) {
    return not_found(strfmt("port %u not connected", port));
  }
  const auto it = std::lower_bound(
      p->vnis.begin(), p->vnis.end(), vni,
      [](const auto& entry, Vni v) { return entry.first < v; });
  if (it == p->vnis.end() || it->first != vni) {
    return not_found(strfmt("port %u not authorized for VNI %u", port, vni));
  }
  p->vnis.erase(it);
  return Status::ok();
}

bool RosettaSwitch::vni_authorized(NicAddr port, Vni vni) const {
  std::lock_guard<SpinLock> lock(mutex_);
  const Port* p = port_at(port);
  return p != nullptr && p->slab_for(vni) != nullptr;
}

void RosettaSwitch::set_enforcement(bool on) noexcept {
  std::lock_guard<SpinLock> lock(mutex_);
  enforce_ = on;
}

bool RosettaSwitch::enforcement() const noexcept {
  std::lock_guard<SpinLock> lock(mutex_);
  return enforce_;
}

void RosettaSwitch::set_health(SwitchHealth health) noexcept {
  std::lock_guard<SpinLock> lock(mutex_);
  health_ = health;
}

SwitchHealth RosettaSwitch::health() const noexcept {
  std::lock_guard<SpinLock> lock(mutex_);
  return health_;
}

Status RosettaSwitch::set_uplink_state(SwitchId peer, LinkState state) {
  std::lock_guard<SpinLock> lock(mutex_);
  Uplink* up = uplink_at(peer);
  if (up == nullptr) {
    return not_found(strfmt("no uplink toward switch %u", peer));
  }
  up->state = state;
  return Status::ok();
}

LinkState RosettaSwitch::uplink_state(SwitchId peer) const {
  std::lock_guard<SpinLock> lock(mutex_);
  const Uplink* up = uplink_at(peer);
  return up == nullptr ? LinkState::kDown : up->state;
}

void RosettaSwitch::set_committed_epoch_source(
    std::shared_ptr<const std::atomic<std::uint64_t>> src) {
  std::lock_guard<SpinLock> lock(mutex_);
  committed_epoch_ = std::move(src);
}

std::uint64_t RosettaSwitch::applied_epoch() const {
  std::lock_guard<SpinLock> lock(mutex_);
  return plan_ != nullptr ? plan_->version : 0;
}

void RosettaSwitch::rearm_faults_locked() noexcept {
  bool armed = edge_faults_.any();
  for (const Uplink& up : uplinks_) {
    if (up.peer == nullptr) continue;
    if (up.faults.any() || !up.flaps.empty()) {
      armed = true;
      break;
    }
  }
  faults_armed_ = armed;
}

void RosettaSwitch::set_fault_profile(const FaultProfile& p) {
  std::lock_guard<SpinLock> lock(mutex_);
  edge_faults_ = p;
  for (Uplink& up : uplinks_) {
    if (up.peer != nullptr) up.faults = p;
  }
  rearm_faults_locked();
}

Status RosettaSwitch::set_uplink_fault_profile(SwitchId peer,
                                               const FaultProfile& p) {
  std::lock_guard<SpinLock> lock(mutex_);
  Uplink* up = uplink_at(peer);
  if (up == nullptr) {
    return not_found(strfmt("no uplink toward switch %u", peer));
  }
  up->faults = p;
  rearm_faults_locked();
  return Status::ok();
}

Status RosettaSwitch::add_uplink_flap(SwitchId peer, SimTime down_from,
                                      SimTime down_until) {
  if (down_until <= down_from) {
    return invalid_argument("flap window must have positive duration");
  }
  std::lock_guard<SpinLock> lock(mutex_);
  Uplink* up = uplink_at(peer);
  if (up == nullptr) {
    return not_found(strfmt("no uplink toward switch %u", peer));
  }
  up->flaps.emplace_back(down_from, down_until);
  faults_armed_ = true;
  return Status::ok();
}

void RosettaSwitch::clear_faults() {
  std::lock_guard<SpinLock> lock(mutex_);
  edge_faults_ = FaultProfile{};
  for (Uplink& up : uplinks_) {
    up.faults = FaultProfile{};
    up.flaps.clear();
  }
  faults_armed_ = false;
}

bool RosettaSwitch::faults_armed() const {
  std::lock_guard<SpinLock> lock(mutex_);
  return faults_armed_;
}

SimTime RosettaSwitch::schedule_egress_locked(
    SimTime at_egress, int prio, SimTime (&free_vt)[kNumTrafficClasses],
    SimDuration ser_time, DataRate rate) {
  SimTime start = at_egress;
  for (int c = 0; c <= prio; ++c) {
    start = std::max(start, free_vt[c]);
  }
  bool lower_priority_in_flight = false;
  for (int c = prio + 1; c < kNumTrafficClasses; ++c) {
    if (free_vt[c] > start) {
      lower_priority_in_flight = true;
    }
  }
  if (lower_priority_in_flight) {
    start += timing_->serialize_time(timing_->config().frame_bytes, rate);
  }
  free_vt[prio] = start + ser_time;
  return start;
}

SimDuration RosettaSwitch::lag_of(const Uplink& up, SimTime at,
                                  int prio) noexcept {
  SimTime busy = 0;
  for (int c = 0; c <= prio; ++c) {
    busy = std::max(busy, up.egress_free_vt[c]);
  }
  return busy > at ? busy - at : 0;
}

SwitchId RosettaSwitch::least_lag_candidate_locked(const Packet& p,
                                                   SwitchId target,
                                                   SimDuration* lag_out) {
  if (lag_out != nullptr) *lag_out = 0;
  if (plan_ == nullptr || id_ >= plan_->n || target >= plan_->n) {
    return static_next_locked(target);
  }
  const auto cands = plan_->candidates(id_, target);
  if (cands.empty()) {
    return static_next_locked(target);
  }
  const int prio = static_cast<int>(p.tc);
  SwitchId best = kInvalidSwitch;
  SimDuration best_lag = 0;
  for (const SwitchId cand : cands) {
    const Uplink* up = live_uplink_locked(cand);
    if (up == nullptr) {
      continue;  // dead uplinks never enter the adaptive candidate set
    }
    const SimDuration lag = lag_of(*up, p.inject_vt, prio);
    // Candidates arrive in ascending switch-id order; strict < keeps the
    // first (lowest-id) of equally idle links — the deterministic
    // tie-break.
    if (best == kInvalidSwitch || lag < best_lag) {
      best = cand;
      best_lag = lag;
    }
  }
  if (lag_out != nullptr) *lag_out = best_lag;
  return best == kInvalidSwitch ? static_next_locked(target) : best;
}

SwitchId RosettaSwitch::pick_intermediate_locked(SwitchId home) {
  if (plan_ == nullptr || plan_->group_of.empty() ||
      id_ >= plan_->group_of.size() || home >= plan_->group_of.size()) {
    return kInvalidSwitch;
  }
  const SwitchId g_src = plan_->group_of[id_];
  const SwitchId g_dst = plan_->group_of[home];
  if (g_src == g_dst) return kInvalidSwitch;  // local traffic: no detour
  const SwitchId groups = plan_->df_groups;
  if (groups < 3) return kInvalidSwitch;
  const SwitchId per_group = plan_->df_per_group;
  // Uniform over the groups that are neither the source's nor the
  // destination's, then uniform over that group's switches.
  auto g = static_cast<SwitchId>(route_rng_.uniform_u64(groups - 2));
  const SwitchId lo = std::min(g_src, g_dst);
  const SwitchId hi = std::max(g_src, g_dst);
  if (g >= lo) ++g;
  if (g >= hi) ++g;
  return static_cast<SwitchId>(
      g * per_group + route_rng_.uniform_u64(per_group));
}

SimDuration RosettaSwitch::estimate_delay_locked(const Packet& p,
                                                 SimDuration first_hop_lag,
                                                 int hops,
                                                 DataRate rate) const {
  // Queue lag on the first link, plus each hop's fall-through latency and
  // this packet's serialization.  Uses the *configured* hop latency (no
  // jitter draw: the estimate must not perturb the timing RNG stream).
  const SimDuration per_hop =
      timing_->config().hop_latency + timing_->serialize_time(p.size_bytes,
                                                              rate);
  return first_hop_lag + static_cast<SimDuration>(hops) * per_hop;
}

SwitchId RosettaSwitch::choose_route_locked(Packet& p, SwitchId home,
                                            SwitchCounters& vni_counters) {
  const RoutingPolicy policy = plan_ != nullptr ? plan_->routing
                                                : RoutingPolicy::kMinimal;
  switch (policy) {
    case RoutingPolicy::kMinimal:
      return static_next_locked(home);

    case RoutingPolicy::kValiant: {
      // Dragonfly: random intermediate in a third group.  The detour is
      // recorded on the packet; transit switches route minimally toward
      // it, then minimally home.  An intermediate the repaired plan can
      // no longer reach (or whose first hop is a dead link) is skipped —
      // the packet falls back to the minimal path instead of dropping.
      const SwitchId via = pick_intermediate_locked(home);
      if (via != kInvalidSwitch) {
        const SwitchId via_next = static_next_locked(via);
        if (via_next != kInvalidSwitch &&
            live_uplink_locked(via_next) != nullptr) {
          p.via_switch = via;
          ++totals_.routed_nonminimal;
          ++vni_counters.routed_nonminimal;
          return via_next;
        }
      }
      // Fat-tree (or no eligible third group / unreachable intermediate):
      // uniform random among the live minimal candidates — random spine
      // selection that excludes dead uplinks.  Counting pass, no
      // allocation: this runs per packet on the healthy hot path.
      if (plan_ != nullptr && id_ < plan_->n && home < plan_->n) {
        const auto cands = plan_->candidates(id_, home);
        if (!cands.empty()) {
          std::size_t alive = 0;
          for (const SwitchId cand : cands) {
            if (live_uplink_locked(cand) != nullptr) ++alive;
          }
          if (alive > 0) {
            auto pick = route_rng_.uniform_u64(alive);
            for (const SwitchId cand : cands) {
              if (live_uplink_locked(cand) == nullptr) continue;
              if (pick-- == 0) return cand;
            }
          }
        }
      }
      return static_next_locked(home);
    }

    case RoutingPolicy::kUgal: {
      // Minimal estimate: the least-congested minimal candidate.
      SimDuration min_lag = 0;
      const SwitchId min_next =
          least_lag_candidate_locked(p, home, &min_lag);
      const SwitchId via = pick_intermediate_locked(home);
      if (via == kInvalidSwitch) {
        // Fat-tree / same group: congestion-aware spine selection is the
        // whole decision.
        return min_next;
      }
      const SwitchId via_next = static_next_locked(via);
      const Uplink* via_up = via_next == kInvalidSwitch
                                 ? nullptr
                                 : live_uplink_locked(via_next);
      if (via_up == nullptr) {
        return min_next;
      }
      const Uplink* min_up = live_uplink_locked(min_next);
      if (min_up == nullptr) {
        // Every minimal candidate is dead (least_lag fell back to a dead
        // static hop): a live detour beats a guaranteed drop, whatever
        // the delay estimates say.
        p.via_switch = via;
        ++totals_.routed_nonminimal;
        ++vni_counters.routed_nonminimal;
        return via_next;
      }
      const int prio = static_cast<int>(p.tc);
      const SimDuration est_min = estimate_delay_locked(
          p, min_lag, plan_->hops_between(id_, home), min_up->rate);
      const SimDuration est_val = estimate_delay_locked(
          p, lag_of(*via_up, p.inject_vt, prio),
          plan_->hops_between(id_, via) + plan_->hops_between(via, home),
          via_up->rate);
      // Strict <: ties go minimal, so an idle fabric never detours.
      if (est_val < est_min) {
        p.via_switch = via;
        ++totals_.routed_nonminimal;
        ++vni_counters.routed_nonminimal;
        return via_next;
      }
      return min_next;
    }
  }
  return static_next_locked(home);
}

RouteResult RosettaSwitch::step(Packet& p, bool check_src, int ttl,
                                RosettaSwitch** next) {
  CassiniNic* deliver_to = nullptr;
  const RouteResult result = step(p, check_src, ttl, next, &deliver_to);
  if (deliver_to != nullptr) deliver_to->deliver(std::move(p));
  return result;
}

RouteResult RosettaSwitch::step(Packet& p, bool check_src, int ttl,
                                RosettaSwitch** next,
                                CassiniNic** deliver_to) {
  *next = nullptr;
  *deliver_to = nullptr;
  AdmitStep step = admit_step(p, check_src, ttl);
  if (step.nic != nullptr) {
    // Deferred delivery: the caller applies the packet's effect on the
    // NIC (and owns the target-side reply).  Set on kAckLost too — the
    // packet reached the NIC; only the fabric ACK was lost.
    *deliver_to = step.nic;
    return step.result;
  }
  if (step.deliver != nullptr) {
    (*step.deliver)(std::move(p));
    return step.result;
  }
  *next = step.next;  // nullptr => dropped (reason recorded)
  return step.result;
}

RouteResult RosettaSwitch::route(Packet&& p) {
  // Iterative hop-by-hop walk: each switch takes its own mutex for one
  // admission step, and the packet object travels the whole path by
  // reference — moved exactly once, into the delivery callback.
  RosettaSwitch* sw = this;
  bool check_src = true;
  int ttl = kMaxFabricHops;
  for (;;) {
    RosettaSwitch* next = nullptr;
    const RouteResult result = sw->step(p, check_src, ttl, &next);
    if (next == nullptr) return result;  // delivered or dropped
    sw = next;
    check_src = false;
    --ttl;
  }
}

RosettaSwitch::AdmitStep RosettaSwitch::admit_step(Packet& p, bool check_src,
                                                   int ttl) {
  // Hot-path contract: everything under this lock is branch-and-array
  // work — port/uplink slots are vector indexes, routing tables are the
  // compiled flat plan, and VNI counters are pre-resolved slabs.  The
  // only hash/allocation left is slab_for_locked on the *first* packet
  // of a never-before-seen VNI (drop accounting), and there is no
  // logging or stream construction anywhere in the section.
  AdmitStep step;
  std::lock_guard<SpinLock> lock(mutex_);

  // A failed switch is dead silicon: everything presented to it — a
  // local injection, a transit packet that was in flight when the
  // switch died, or a final delivery — is lost.
  if (health_ == SwitchHealth::kFailed) {
    ++totals_.dropped_link_down;
    ++slab_for_locked(p.vni).dropped_link_down;
    step.result.reason = DropReason::kLinkDown;
    return step;
  }

  // Resolve the destination first (unknown-destination outranks the
  // authorization drops, as in the single-switch model).  Locality
  // comes from the dense nic_home map, not the port table: transit
  // switches then never touch their sparse per-address port vector —
  // only the home switch (and the out-of-plan fallback for hand-wired
  // test ports) consults it.
  const SwitchId home = nic_home_ != nullptr && p.dst < nic_home_->size()
                            ? (*nic_home_)[p.dst]
                            : kInvalidSwitch;
  Port* dst_port = nullptr;
  if (home == id_ || home == kInvalidSwitch) {
    dst_port = port_at(p.dst);
    if (dst_port == nullptr) {
      // Either an address outside the fabric plan or a NIC that should
      // be here but is not connected.
      ++totals_.dropped_unknown_dst;
      ++slab_for_locked(p.vni).dropped_unknown_dst;
      step.result.reason = DropReason::kUnknownDestination;
      return step;
    }
  }
  const bool local = dst_port != nullptr;

  // The packet's VNI counter slab.  The edge checks resolve it from the
  // port's cached pointers; paths that skip both checks (transit,
  // enforcement off) fall back to the sorted slab index.
  SwitchCounters* vni_counters = nullptr;
  if (check_src && enforce_) {
    const Port* src_port = port_at(p.src);
    vni_counters = src_port != nullptr ? src_port->slab_for(p.vni) : nullptr;
    if (vni_counters == nullptr) {
      ++totals_.dropped_src_unauthorized;
      ++slab_for_locked(p.vni).dropped_src_unauthorized;
      step.result.reason = DropReason::kSrcNotAuthorized;
      return step;
    }
  }

  Uplink* up = nullptr;
  if (!local) {
    if (vni_counters == nullptr) vni_counters = &slab_for_locked(p.vni);
    // The packet's current target: its Valiant intermediate while the
    // detour is pending, its destination's edge switch afterwards.
    SwitchId target = home;
    if (p.via_switch != kInvalidSwitch) {
      if (p.via_switch == id_) {
        p.via_switch = kInvalidSwitch;  // detour complete; head home
      } else {
        target = p.via_switch;
      }
    }
    // The policy decision happens once, at the source edge (after the
    // VNI check, so dropped packets never consume the routing RNG);
    // transit switches follow static minimal routes toward the target.
    const SwitchId nh = check_src
                            ? choose_route_locked(p, home, *vni_counters)
                            : static_next_locked(target);
    Uplink* next_up = nh == kInvalidSwitch ? nullptr : uplink_at(nh);
    // Epoch fencing: while this switch's applied plan lags the fabric
    // manager's committed epoch (the staggered-publish window), a drop
    // that a newer plan could cure — no route, or a dead static next hop
    // — is the publish lag showing, not a routing fault.  Reclassified
    // as kStaleEpoch so it is observable and the NIC's reliability layer
    // can stretch its retry budget across the window.  Transient flaps
    // and failed switches below are NOT epoch-curable and keep their
    // legacy classification.
    const bool stale_epoch =
        committed_epoch_ != nullptr && plan_ != nullptr &&
        plan_->version < committed_epoch_->load(std::memory_order_relaxed);
    if (ttl <= 0 || next_up == nullptr) {
      if (stale_epoch) {
        ++totals_.dropped_stale_epoch;
        ++vni_counters->dropped_stale_epoch;
        step.result.reason = DropReason::kStaleEpoch;
        return step;
      }
      ++totals_.dropped_no_route;
      ++vni_counters->dropped_no_route;
      step.result.reason = DropReason::kNoRoute;
      return step;
    }
    if (next_up->state == LinkState::kDown) {
      // The route exists but its link is dead: either the packet was
      // already committed to this hop when the failure hit, or the
      // fabric manager has not republished repaired tables yet.
      if (stale_epoch) {
        ++totals_.dropped_stale_epoch;
        ++vni_counters->dropped_stale_epoch;
        step.result.reason = DropReason::kStaleEpoch;
        return step;
      }
      ++totals_.dropped_link_down;
      ++vni_counters->dropped_link_down;
      step.result.reason = DropReason::kLinkDown;
      return step;
    }
    if (faults_armed_) {
      // Transient fault model — one predicted branch on the fault-free
      // configuration, draws only from the dedicated fault stream.  A
      // flapped link is indistinguishable from a dead one at the data
      // plane (but invisible to the fabric manager: no replan).
      if (!next_up->flaps.empty() && flapped_down(*next_up, p.inject_vt)) {
        ++totals_.dropped_link_down;
        ++vni_counters->dropped_link_down;
        step.result.reason = DropReason::kLinkDown;
        return step;
      }
      if (next_up->faults.drop_rate > 0.0 &&
          fault_rng_.uniform() < next_up->faults.drop_rate) {
        ++totals_.dropped_loss;
        ++vni_counters->dropped_loss;
        step.result.reason = DropReason::kLossInjected;
        return step;
      }
      if (next_up->faults.corrupt_rate > 0.0 &&
          fault_rng_.uniform() < next_up->faults.corrupt_rate) {
        ++totals_.dropped_corrupt;
        ++vni_counters->dropped_corrupt;
        step.result.reason = DropReason::kCorrupt;
        return step;
      }
    }
    up = next_up;
  }

  const int prio = static_cast<int>(p.tc);  // 0 = highest priority
  if (local) {
    SwitchCounters* dst_slab = enforce_ ? dst_port->slab_for(p.vni) : nullptr;
    if (enforce_ && dst_slab == nullptr) {
      ++totals_.dropped_dst_unauthorized;
      ++slab_for_locked(p.vni).dropped_dst_unauthorized;
      step.result.reason = DropReason::kDstNotAuthorized;
      return step;
    }
    if (dst_slab == nullptr) dst_slab = &slab_for_locked(p.vni);

    if (faults_armed_ && edge_faults_.any()) {
      // Edge-link faults, after the authorization checks (a lossy cable
      // must never mask an isolation violation).
      if (edge_faults_.drop_rate > 0.0 &&
          fault_rng_.uniform() < edge_faults_.drop_rate) {
        ++totals_.dropped_loss;
        ++dst_slab->dropped_loss;
        step.result.reason = DropReason::kLossInjected;
        return step;
      }
      if (edge_faults_.corrupt_rate > 0.0 &&
          fault_rng_.uniform() < edge_faults_.corrupt_rate) {
        ++totals_.dropped_corrupt;
        ++dst_slab->dropped_corrupt;
        step.result.reason = DropReason::kCorrupt;
        return step;
      }
    }

    // Cut-through timing with per-class priority scheduling: the packet
    // reaches the egress port after one hop latency; it then waits for
    // all queued traffic of its own or higher priority, plus at most one
    // in-flight *frame* of lower-priority traffic (frame-granular
    // preemption).  A single same-class flow already paced by its sender
    // sees no extra delay; incast congestion queues; bulk traffic cannot
    // stall low-latency traffic by more than one frame.
    const SimTime at_egress = p.inject_vt + timing_->hop_latency(p.tc);
    const DataRate edge_rate = timing_->config().link_rate;
    if (p.ser_cache_bps != edge_rate.bps()) {
      p.ser_cache = timing_->serialize_time(p.size_bytes, edge_rate);
      p.ser_cache_bps = edge_rate.bps();
    }
    p.arrival_vt = schedule_egress_locked(
        at_egress, prio, dst_port->egress_free_vt, p.ser_cache, edge_rate);

    ++totals_.delivered;
    totals_.bytes_delivered += p.size_bytes;
    ++dst_slab->delivered;
    dst_slab->bytes_delivered += p.size_bytes;

    step.result.delivered = true;
    step.result.arrival_vt = p.arrival_vt;
    // Delivery happens outside the lock: direct NIC call when the
    // Fabric wired the port, refcounted callback otherwise.
    step.nic = dst_port->nic;
    if (step.nic == nullptr) step.deliver = dst_port->deliver;

    if (faults_armed_ && p.reliable && edge_faults_.ack_loss_rate > 0.0 &&
        fault_rng_.uniform() < edge_faults_.ack_loss_rate) {
      // Lost link-level ACK: the packet IS delivered (the counters and
      // timing above stand), but the sender is told it was not — it
      // will retransmit, and the receiving NIC suppresses the
      // duplicate.  This is the path that exercises exactly-once
      // semantics end to end.
      ++totals_.ack_lost;
      ++dst_slab->ack_lost;
      step.result.delivered = false;
      step.result.reason = DropReason::kAckLost;
    }
  } else {
    // Transit: traverse this switch, then serialize onto the uplink
    // (per-link, per-class horizon), then fly the link's latency.
    Uplink& link = *up;
    const SimTime at_egress = p.inject_vt + timing_->hop_latency(p.tc);
    link.counters.peak_queue_lag =
        std::max(link.counters.peak_queue_lag,
                 lag_of(link, at_egress, prio));
    if (p.ser_cache_bps != link.rate.bps()) {
      p.ser_cache = timing_->serialize_time(p.size_bytes, link.rate);
      p.ser_cache_bps = link.rate.bps();
    }
    const SimDuration ser = p.ser_cache;
    const SimTime start = schedule_egress_locked(
        at_egress, prio, link.egress_free_vt, ser, link.rate);
    p.inject_vt = start + ser + link.latency;
    ++p.hops;
    ++link.counters.packets;
    link.counters.bytes += p.size_bytes;
    ++totals_.forwarded;
    totals_.bytes_forwarded += p.size_bytes;
    ++vni_counters->forwarded;
    vni_counters->bytes_forwarded += p.size_bytes;
    step.next = link.peer;  // forwarded outside the lock
  }
  return step;
}

SwitchCounters RosettaSwitch::counters() const {
  std::lock_guard<SpinLock> lock(mutex_);
  return totals_;
}

SwitchCounters RosettaSwitch::counters_for_vni(Vni vni) const {
  std::lock_guard<SpinLock> lock(mutex_);
  const auto it = std::lower_bound(
      slab_index_.begin(), slab_index_.end(), vni,
      [](const auto& entry, Vni v) { return entry.first < v; });
  return it != slab_index_.end() && it->first == vni ? *it->second
                                                     : SwitchCounters{};
}

std::size_t RosettaSwitch::connected_ports() const {
  std::lock_guard<SpinLock> lock(mutex_);
  return connected_ports_;
}

std::size_t RosettaSwitch::uplink_count() const {
  std::lock_guard<SpinLock> lock(mutex_);
  return uplink_count_;
}

LinkCounters RosettaSwitch::uplink_counters(SwitchId peer) const {
  std::lock_guard<SpinLock> lock(mutex_);
  const Uplink* up = uplink_at(peer);
  return up == nullptr ? LinkCounters{} : up->counters;
}

SimDuration RosettaSwitch::uplink_queue_lag(SwitchId peer, SimTime at,
                                            TrafficClass tc) const {
  std::lock_guard<SpinLock> lock(mutex_);
  const Uplink* up = uplink_at(peer);
  return up == nullptr ? 0 : lag_of(*up, at, static_cast<int>(tc));
}

SimDuration RosettaSwitch::max_uplink_lag(SimTime at) const {
  std::lock_guard<SpinLock> lock(mutex_);
  SimDuration worst = 0;
  for (const Uplink& up : uplinks_) {
    if (up.peer == nullptr) continue;
    worst = std::max(worst, lag_of(up, at, kNumTrafficClasses - 1));
  }
  return worst;
}

SimDuration RosettaSwitch::peak_uplink_lag() const {
  std::lock_guard<SpinLock> lock(mutex_);
  SimDuration worst = 0;
  for (const Uplink& up : uplinks_) {
    if (up.peer == nullptr) continue;
    worst = std::max(worst, up.counters.peak_queue_lag);
  }
  return worst;
}

}  // namespace shs::hsn
