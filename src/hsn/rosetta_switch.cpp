#include "hsn/rosetta_switch.hpp"

#include <algorithm>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace shs::hsn {

namespace {
constexpr const char* kTag = "rosetta";
}

RosettaSwitch::RosettaSwitch(std::shared_ptr<TimingModel> timing, SwitchId id,
                             std::uint64_t seed)
    : id_(id), timing_(std::move(timing)),
      route_rng_(seed ^ (0x9e3779b97f4a7c15ULL * (id + 1))) {}

Status RosettaSwitch::connect(NicAddr addr, DeliveryFn deliver) {
  if (!deliver) {
    // admit() discriminates local delivery from transit forwarding by
    // the truthiness of the copied-out callback, so an empty one must
    // never reach the port table.
    return invalid_argument("delivery callback must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (ports_.contains(addr)) {
    return already_exists(strfmt("port %u already connected", addr));
  }
  ports_.emplace(addr, Port{std::move(deliver), {}, 0});
  SHS_DEBUG(kTag) << "NIC connected at switch " << id_ << " port " << addr;
  return Status::ok();
}

Status RosettaSwitch::disconnect(NicAddr addr) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ports_.erase(addr) == 0) {
    return not_found(strfmt("port %u not connected", addr));
  }
  return Status::ok();
}

Status RosettaSwitch::add_uplink(RosettaSwitch& peer, DataRate rate,
                                 SimDuration latency) {
  if (&peer == this) {
    return invalid_argument("uplink needs a distinct peer switch");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const SwitchId peer_id = peer.id();
  if (uplinks_.contains(peer_id)) {
    return already_exists(strfmt("uplink to switch %u already exists",
                                 peer_id));
  }
  Uplink up;
  up.peer = &peer;
  up.rate = rate;
  up.latency = latency;
  uplinks_.emplace(peer_id, std::move(up));
  return Status::ok();
}

void RosettaSwitch::set_forwarding(
    std::shared_ptr<const std::vector<SwitchId>> nic_home,
    std::shared_ptr<const TopologyPlan> plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  nic_home_ = std::move(nic_home);
  plan_ = std::move(plan);
}

Status RosettaSwitch::authorize_vni(NicAddr port, Vni vni) {
  if (vni == kInvalidVni) return invalid_argument("VNI 0 is reserved");
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = ports_.find(port);
  if (it == ports_.end()) {
    return not_found(strfmt("port %u not connected", port));
  }
  it->second.vnis.insert(vni);
  SHS_DEBUG(kTag) << "port " << port << " authorized for VNI " << vni;
  return Status::ok();
}

Status RosettaSwitch::revoke_vni(NicAddr port, Vni vni) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = ports_.find(port);
  if (it == ports_.end()) {
    return not_found(strfmt("port %u not connected", port));
  }
  if (it->second.vnis.erase(vni) == 0) {
    return not_found(strfmt("port %u not authorized for VNI %u", port, vni));
  }
  return Status::ok();
}

bool RosettaSwitch::vni_authorized(NicAddr port, Vni vni) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = ports_.find(port);
  return it != ports_.end() && it->second.vnis.contains(vni);
}

void RosettaSwitch::set_enforcement(bool on) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  enforce_ = on;
}

bool RosettaSwitch::enforcement() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return enforce_;
}

void RosettaSwitch::set_health(SwitchHealth health) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  health_ = health;
}

SwitchHealth RosettaSwitch::health() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return health_;
}

Status RosettaSwitch::set_uplink_state(SwitchId peer, LinkState state) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = uplinks_.find(peer);
  if (it == uplinks_.end()) {
    return not_found(strfmt("no uplink toward switch %u", peer));
  }
  it->second.state = state;
  return Status::ok();
}

LinkState RosettaSwitch::uplink_state(SwitchId peer) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = uplinks_.find(peer);
  return it == uplinks_.end() ? LinkState::kDown : it->second.state;
}

SimTime RosettaSwitch::schedule_egress_locked(
    SimTime at_egress, int prio, SimTime (&free_vt)[kNumTrafficClasses],
    std::uint64_t size_bytes, DataRate rate) {
  SimTime start = at_egress;
  for (int c = 0; c <= prio; ++c) {
    start = std::max(start, free_vt[c]);
  }
  bool lower_priority_in_flight = false;
  for (int c = prio + 1; c < kNumTrafficClasses; ++c) {
    if (free_vt[c] > start) {
      lower_priority_in_flight = true;
    }
  }
  if (lower_priority_in_flight) {
    start += timing_->serialize_time(timing_->config().frame_bytes, rate);
  }
  free_vt[prio] = start + timing_->serialize_time(size_bytes, rate);
  return start;
}

SimDuration RosettaSwitch::lag_of(const Uplink& up, SimTime at,
                                  int prio) noexcept {
  SimTime busy = 0;
  for (int c = 0; c <= prio; ++c) {
    busy = std::max(busy, up.egress_free_vt[c]);
  }
  return busy > at ? busy - at : 0;
}

RosettaSwitch::Uplink* RosettaSwitch::live_uplink_locked(SwitchId peer) {
  const auto it = uplinks_.find(peer);
  return it == uplinks_.end() || it->second.state == LinkState::kDown
             ? nullptr
             : &it->second;
}

SwitchId RosettaSwitch::static_next_locked(SwitchId target) const {
  if (!plan_ || id_ >= plan_->next_hop.size()) return kInvalidSwitch;
  const auto& table = plan_->next_hop[id_];
  const auto it = table.find(target);
  return it == table.end() ? kInvalidSwitch : it->second;
}

SwitchId RosettaSwitch::least_lag_candidate_locked(const Packet& p,
                                                   SwitchId target,
                                                   SimDuration* lag_out) {
  if (lag_out != nullptr) *lag_out = 0;
  if (!plan_ || id_ >= plan_->candidates.size()) {
    return static_next_locked(target);
  }
  const auto& table = plan_->candidates[id_];
  const auto it = table.find(target);
  if (it == table.end() || it->second.empty()) {
    return static_next_locked(target);
  }
  const int prio = static_cast<int>(p.tc);
  SwitchId best = kInvalidSwitch;
  SimDuration best_lag = 0;
  for (const SwitchId cand : it->second) {
    const Uplink* up = live_uplink_locked(cand);
    if (up == nullptr) {
      continue;  // dead uplinks never enter the adaptive candidate set
    }
    const SimDuration lag = lag_of(*up, p.inject_vt, prio);
    // Candidates arrive in ascending switch-id order; strict < keeps the
    // first (lowest-id) of equally idle links — the deterministic
    // tie-break.
    if (best == kInvalidSwitch || lag < best_lag) {
      best = cand;
      best_lag = lag;
    }
  }
  if (lag_out != nullptr) *lag_out = best_lag;
  return best == kInvalidSwitch ? static_next_locked(target) : best;
}

SwitchId RosettaSwitch::pick_intermediate_locked(SwitchId home) {
  if (!plan_ || plan_->group_of.empty() || id_ >= plan_->group_of.size() ||
      home >= plan_->group_of.size()) {
    return kInvalidSwitch;
  }
  const SwitchId g_src = plan_->group_of[id_];
  const SwitchId g_dst = plan_->group_of[home];
  if (g_src == g_dst) return kInvalidSwitch;  // local traffic: no detour
  const auto groups = static_cast<SwitchId>(plan_->group_of.back() + 1);
  if (groups < 3) return kInvalidSwitch;
  const auto per_group =
      static_cast<SwitchId>(plan_->group_of.size() / groups);
  // Uniform over the groups that are neither the source's nor the
  // destination's, then uniform over that group's switches.
  auto g = static_cast<SwitchId>(route_rng_.uniform_u64(groups - 2));
  const SwitchId lo = std::min(g_src, g_dst);
  const SwitchId hi = std::max(g_src, g_dst);
  if (g >= lo) ++g;
  if (g >= hi) ++g;
  return static_cast<SwitchId>(
      g * per_group + route_rng_.uniform_u64(per_group));
}

SimDuration RosettaSwitch::estimate_delay_locked(const Packet& p,
                                                 SimDuration first_hop_lag,
                                                 int hops,
                                                 DataRate rate) const {
  // Queue lag on the first link, plus each hop's fall-through latency and
  // this packet's serialization.  Uses the *configured* hop latency (no
  // jitter draw: the estimate must not perturb the timing RNG stream).
  const SimDuration per_hop =
      timing_->config().hop_latency + timing_->serialize_time(p.size_bytes,
                                                              rate);
  return first_hop_lag + static_cast<SimDuration>(hops) * per_hop;
}

SwitchId RosettaSwitch::choose_route_locked(Packet& p, SwitchId home) {
  const RoutingPolicy policy = plan_ ? plan_->routing
                                     : RoutingPolicy::kMinimal;
  switch (policy) {
    case RoutingPolicy::kMinimal:
      return static_next_locked(home);

    case RoutingPolicy::kValiant: {
      // Dragonfly: random intermediate in a third group.  The detour is
      // recorded on the packet; transit switches route minimally toward
      // it, then minimally home.  An intermediate the repaired plan can
      // no longer reach (or whose first hop is a dead link) is skipped —
      // the packet falls back to the minimal path instead of dropping.
      const SwitchId via = pick_intermediate_locked(home);
      if (via != kInvalidSwitch) {
        const SwitchId via_next = static_next_locked(via);
        if (via_next != kInvalidSwitch &&
            live_uplink_locked(via_next) != nullptr) {
          p.via_switch = via;
          ++totals_.routed_nonminimal;
          ++per_vni_[p.vni].routed_nonminimal;
          return via_next;
        }
      }
      // Fat-tree (or no eligible third group / unreachable intermediate):
      // uniform random among the live minimal candidates — random spine
      // selection that excludes dead uplinks.  Counting pass, no
      // allocation: this runs per packet on the healthy hot path.
      if (plan_ && id_ < plan_->candidates.size()) {
        const auto it = plan_->candidates[id_].find(home);
        if (it != plan_->candidates[id_].end() && !it->second.empty()) {
          std::size_t alive = 0;
          for (const SwitchId cand : it->second) {
            if (live_uplink_locked(cand) != nullptr) ++alive;
          }
          if (alive > 0) {
            auto pick = route_rng_.uniform_u64(alive);
            for (const SwitchId cand : it->second) {
              if (live_uplink_locked(cand) == nullptr) continue;
              if (pick-- == 0) return cand;
            }
          }
        }
      }
      return static_next_locked(home);
    }

    case RoutingPolicy::kUgal: {
      // Minimal estimate: the least-congested minimal candidate.
      SimDuration min_lag = 0;
      const SwitchId min_next =
          least_lag_candidate_locked(p, home, &min_lag);
      const SwitchId via = pick_intermediate_locked(home);
      if (via == kInvalidSwitch) {
        // Fat-tree / same group: congestion-aware spine selection is the
        // whole decision.
        return min_next;
      }
      const SwitchId via_next = static_next_locked(via);
      const Uplink* via_up = via_next == kInvalidSwitch
                                 ? nullptr
                                 : live_uplink_locked(via_next);
      if (via_up == nullptr) {
        return min_next;
      }
      const Uplink* min_up = live_uplink_locked(min_next);
      if (min_up == nullptr) {
        // Every minimal candidate is dead (least_lag fell back to a dead
        // static hop): a live detour beats a guaranteed drop, whatever
        // the delay estimates say.
        p.via_switch = via;
        ++totals_.routed_nonminimal;
        ++per_vni_[p.vni].routed_nonminimal;
        return via_next;
      }
      const int prio = static_cast<int>(p.tc);
      const SimDuration est_min = estimate_delay_locked(
          p, min_lag, plan_->hops_between(id_, home), min_up->rate);
      const SimDuration est_val = estimate_delay_locked(
          p, lag_of(*via_up, p.inject_vt, prio),
          plan_->hops_between(id_, via) + plan_->hops_between(via, home),
          via_up->rate);
      // Strict <: ties go minimal, so an idle fabric never detours.
      if (est_val < est_min) {
        p.via_switch = via;
        ++totals_.routed_nonminimal;
        ++per_vni_[p.vni].routed_nonminimal;
        return via_next;
      }
      return min_next;
    }
  }
  return static_next_locked(home);
}

RouteResult RosettaSwitch::route(Packet&& p) {
  return admit(std::move(p), /*check_src=*/true, kMaxFabricHops);
}

RouteResult RosettaSwitch::admit(Packet&& p, bool check_src, int ttl) {
  DeliveryFn deliver;
  RosettaSwitch* next = nullptr;
  RouteResult result;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& vni_counters = per_vni_[p.vni];

    // A failed switch is dead silicon: everything presented to it — a
    // local injection, a transit packet that was in flight when the
    // switch died, or a final delivery — is lost.
    if (health_ == SwitchHealth::kFailed) {
      ++totals_.dropped_link_down;
      ++vni_counters.dropped_link_down;
      result.reason = DropReason::kLinkDown;
      SHS_DEBUG(kTag) << "drop: switch " << id_ << " is failed";
      return result;
    }

    // Resolve the destination first (unknown-destination outranks the
    // authorization drops, as in the single-switch model).
    const auto dst_it = ports_.find(p.dst);
    const bool local = dst_it != ports_.end();
    SwitchId home = kInvalidSwitch;
    if (!local) {
      home = nic_home_ && p.dst < nic_home_->size() ? (*nic_home_)[p.dst]
                                                    : kInvalidSwitch;
      if (home == kInvalidSwitch || home == id_) {
        // Either an address outside the fabric plan or a NIC that should
        // be here but is not connected.
        ++totals_.dropped_unknown_dst;
        ++vni_counters.dropped_unknown_dst;
        result.reason = DropReason::kUnknownDestination;
        return result;
      }
    }

    if (check_src && enforce_) {
      const auto src_it = ports_.find(p.src);
      if (src_it == ports_.end() || !src_it->second.vnis.contains(p.vni)) {
        ++totals_.dropped_src_unauthorized;
        ++vni_counters.dropped_src_unauthorized;
        result.reason = DropReason::kSrcNotAuthorized;
        SHS_DEBUG(kTag) << "drop: src port " << p.src
                        << " unauthorized for VNI " << p.vni;
        return result;
      }
    }

    Uplink* up = nullptr;
    if (!local) {
      // The packet's current target: its Valiant intermediate while the
      // detour is pending, its destination's edge switch afterwards.
      SwitchId target = home;
      if (p.via_switch != kInvalidSwitch) {
        if (p.via_switch == id_) {
          p.via_switch = kInvalidSwitch;  // detour complete; head home
        } else {
          target = p.via_switch;
        }
      }
      // The policy decision happens once, at the source edge (after the
      // VNI check, so dropped packets never consume the routing RNG);
      // transit switches follow static minimal routes toward the target.
      const SwitchId nh = check_src ? choose_route_locked(p, home)
                                    : static_next_locked(target);
      const auto up_it =
          nh == kInvalidSwitch ? uplinks_.end() : uplinks_.find(nh);
      if (ttl <= 0 || up_it == uplinks_.end()) {
        ++totals_.dropped_no_route;
        ++vni_counters.dropped_no_route;
        result.reason = DropReason::kNoRoute;
        SHS_DEBUG(kTag) << "switch " << id_ << " has no route toward NIC "
                        << p.dst << " (ttl " << ttl << ")";
        return result;
      }
      if (up_it->second.state == LinkState::kDown) {
        // The route exists but its link is dead: either the packet was
        // already committed to this hop when the failure hit, or the
        // fabric manager has not republished repaired tables yet.
        ++totals_.dropped_link_down;
        ++vni_counters.dropped_link_down;
        result.reason = DropReason::kLinkDown;
        SHS_DEBUG(kTag) << "drop: switch " << id_ << " uplink toward "
                        << up_it->first << " is down";
        return result;
      }
      up = &up_it->second;
    }

    const int prio = static_cast<int>(p.tc);  // 0 = highest priority
    if (local) {
      if (enforce_ && !dst_it->second.vnis.contains(p.vni)) {
        ++totals_.dropped_dst_unauthorized;
        ++vni_counters.dropped_dst_unauthorized;
        result.reason = DropReason::kDstNotAuthorized;
        SHS_DEBUG(kTag) << "drop: dst port " << p.dst
                        << " unauthorized for VNI " << p.vni;
        return result;
      }

      // Cut-through timing with per-class priority scheduling: the packet
      // reaches the egress port after one hop latency; it then waits for
      // all queued traffic of its own or higher priority, plus at most one
      // in-flight *frame* of lower-priority traffic (frame-granular
      // preemption).  A single same-class flow already paced by its sender
      // sees no extra delay; incast congestion queues; bulk traffic cannot
      // stall low-latency traffic by more than one frame.
      Port& dst_port = dst_it->second;
      const SimTime at_egress = p.inject_vt + timing_->hop_latency(p.tc);
      p.arrival_vt =
          schedule_egress_locked(at_egress, prio, dst_port.egress_free_vt,
                                 p.size_bytes, timing_->config().link_rate);

      ++totals_.delivered;
      totals_.bytes_delivered += p.size_bytes;
      ++vni_counters.delivered;
      vni_counters.bytes_delivered += p.size_bytes;

      result.delivered = true;
      result.arrival_vt = p.arrival_vt;
      deliver = dst_port.deliver;  // copy out; invoke outside the lock
    } else {
      // Transit: traverse this switch, then serialize onto the uplink
      // (per-link, per-class horizon), then fly the link's latency.
      Uplink& link = *up;
      const SimTime at_egress = p.inject_vt + timing_->hop_latency(p.tc);
      link.counters.peak_queue_lag =
          std::max(link.counters.peak_queue_lag,
                   lag_of(link, at_egress, prio));
      const SimTime start = schedule_egress_locked(
          at_egress, prio, link.egress_free_vt, p.size_bytes, link.rate);
      p.inject_vt =
          start + timing_->serialize_time(p.size_bytes, link.rate) +
          link.latency;
      ++p.hops;
      ++link.counters.packets;
      link.counters.bytes += p.size_bytes;
      ++totals_.forwarded;
      totals_.bytes_forwarded += p.size_bytes;
      ++vni_counters.forwarded;
      vni_counters.bytes_forwarded += p.size_bytes;
      next = link.peer;  // forward outside the lock
    }
  }
  if (deliver) {
    deliver(std::move(p));
    return result;
  }
  return next->admit(std::move(p), /*check_src=*/false, ttl - 1);
}

SwitchCounters RosettaSwitch::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return totals_;
}

SwitchCounters RosettaSwitch::counters_for_vni(Vni vni) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = per_vni_.find(vni);
  return it == per_vni_.end() ? SwitchCounters{} : it->second;
}

std::size_t RosettaSwitch::connected_ports() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ports_.size();
}

std::size_t RosettaSwitch::uplink_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return uplinks_.size();
}

LinkCounters RosettaSwitch::uplink_counters(SwitchId peer) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = uplinks_.find(peer);
  return it == uplinks_.end() ? LinkCounters{} : it->second.counters;
}

SimDuration RosettaSwitch::uplink_queue_lag(SwitchId peer, SimTime at,
                                            TrafficClass tc) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = uplinks_.find(peer);
  return it == uplinks_.end()
             ? 0
             : lag_of(it->second, at, static_cast<int>(tc));
}

SimDuration RosettaSwitch::max_uplink_lag(SimTime at) const {
  std::lock_guard<std::mutex> lock(mutex_);
  SimDuration worst = 0;
  for (const auto& entry : uplinks_) {
    worst = std::max(worst, lag_of(entry.second, at, kNumTrafficClasses - 1));
  }
  return worst;
}

SimDuration RosettaSwitch::peak_uplink_lag() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SimDuration worst = 0;
  for (const auto& entry : uplinks_) {
    worst = std::max(worst, entry.second.counters.peak_queue_lag);
  }
  return worst;
}

}  // namespace shs::hsn
