#include "hsn/rosetta_switch.hpp"

#include <algorithm>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace shs::hsn {

namespace {
constexpr const char* kTag = "rosetta";
}

RosettaSwitch::RosettaSwitch(std::shared_ptr<TimingModel> timing, SwitchId id)
    : id_(id), timing_(std::move(timing)) {}

Status RosettaSwitch::connect(NicAddr addr, DeliveryFn deliver) {
  if (!deliver) {
    // admit() discriminates local delivery from transit forwarding by
    // the truthiness of the copied-out callback, so an empty one must
    // never reach the port table.
    return invalid_argument("delivery callback must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (ports_.contains(addr)) {
    return already_exists(strfmt("port %u already connected", addr));
  }
  ports_.emplace(addr, Port{std::move(deliver), {}, 0});
  SHS_DEBUG(kTag) << "NIC connected at switch " << id_ << " port " << addr;
  return Status::ok();
}

Status RosettaSwitch::disconnect(NicAddr addr) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ports_.erase(addr) == 0) {
    return not_found(strfmt("port %u not connected", addr));
  }
  return Status::ok();
}

Status RosettaSwitch::add_uplink(RosettaSwitch& peer, DataRate rate,
                                 SimDuration latency) {
  if (&peer == this) {
    return invalid_argument("uplink needs a distinct peer switch");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const SwitchId peer_id = peer.id();
  if (uplinks_.contains(peer_id)) {
    return already_exists(strfmt("uplink to switch %u already exists",
                                 peer_id));
  }
  Uplink up;
  up.peer = &peer;
  up.rate = rate;
  up.latency = latency;
  uplinks_.emplace(peer_id, std::move(up));
  return Status::ok();
}

void RosettaSwitch::set_forwarding(
    std::shared_ptr<const std::vector<SwitchId>> nic_home,
    std::unordered_map<SwitchId, SwitchId> next_hop) {
  std::lock_guard<std::mutex> lock(mutex_);
  nic_home_ = std::move(nic_home);
  next_hop_ = std::move(next_hop);
}

Status RosettaSwitch::authorize_vni(NicAddr port, Vni vni) {
  if (vni == kInvalidVni) return invalid_argument("VNI 0 is reserved");
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = ports_.find(port);
  if (it == ports_.end()) {
    return not_found(strfmt("port %u not connected", port));
  }
  it->second.vnis.insert(vni);
  SHS_DEBUG(kTag) << "port " << port << " authorized for VNI " << vni;
  return Status::ok();
}

Status RosettaSwitch::revoke_vni(NicAddr port, Vni vni) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = ports_.find(port);
  if (it == ports_.end()) {
    return not_found(strfmt("port %u not connected", port));
  }
  if (it->second.vnis.erase(vni) == 0) {
    return not_found(strfmt("port %u not authorized for VNI %u", port, vni));
  }
  return Status::ok();
}

bool RosettaSwitch::vni_authorized(NicAddr port, Vni vni) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = ports_.find(port);
  return it != ports_.end() && it->second.vnis.contains(vni);
}

void RosettaSwitch::set_enforcement(bool on) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  enforce_ = on;
}

bool RosettaSwitch::enforcement() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return enforce_;
}

SimTime RosettaSwitch::schedule_egress_locked(
    SimTime at_egress, int prio, SimTime (&free_vt)[kNumTrafficClasses],
    std::uint64_t size_bytes, DataRate rate) {
  SimTime start = at_egress;
  for (int c = 0; c <= prio; ++c) {
    start = std::max(start, free_vt[c]);
  }
  bool lower_priority_in_flight = false;
  for (int c = prio + 1; c < kNumTrafficClasses; ++c) {
    if (free_vt[c] > start) {
      lower_priority_in_flight = true;
    }
  }
  if (lower_priority_in_flight) {
    start += timing_->serialize_time(timing_->config().frame_bytes, rate);
  }
  free_vt[prio] = start + timing_->serialize_time(size_bytes, rate);
  return start;
}

RouteResult RosettaSwitch::route(Packet&& p) {
  return admit(std::move(p), /*check_src=*/true, kMaxFabricHops);
}

RouteResult RosettaSwitch::admit(Packet&& p, bool check_src, int ttl) {
  DeliveryFn deliver;
  RosettaSwitch* next = nullptr;
  RouteResult result;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& vni_counters = per_vni_[p.vni];

    // Resolve the destination first (unknown-destination outranks the
    // authorization drops, as in the single-switch model).
    const auto dst_it = ports_.find(p.dst);
    const bool local = dst_it != ports_.end();
    Uplink* up = nullptr;
    if (!local) {
      const SwitchId home =
          nic_home_ && p.dst < nic_home_->size() ? (*nic_home_)[p.dst]
                                                 : kInvalidSwitch;
      if (home == kInvalidSwitch || home == id_) {
        // Either an address outside the fabric plan or a NIC that should
        // be here but is not connected.
        ++totals_.dropped_unknown_dst;
        ++vni_counters.dropped_unknown_dst;
        result.reason = DropReason::kUnknownDestination;
        return result;
      }
      const auto nh_it = next_hop_.find(home);
      const auto up_it = nh_it == next_hop_.end()
                             ? uplinks_.end()
                             : uplinks_.find(nh_it->second);
      if (ttl <= 0 || up_it == uplinks_.end()) {
        ++totals_.dropped_no_route;
        ++vni_counters.dropped_no_route;
        result.reason = DropReason::kNoRoute;
        SHS_DEBUG(kTag) << "switch " << id_ << " has no route toward NIC "
                        << p.dst << " (ttl " << ttl << ")";
        return result;
      }
      up = &up_it->second;
    }

    if (check_src && enforce_) {
      const auto src_it = ports_.find(p.src);
      if (src_it == ports_.end() || !src_it->second.vnis.contains(p.vni)) {
        ++totals_.dropped_src_unauthorized;
        ++vni_counters.dropped_src_unauthorized;
        result.reason = DropReason::kSrcNotAuthorized;
        SHS_DEBUG(kTag) << "drop: src port " << p.src
                        << " unauthorized for VNI " << p.vni;
        return result;
      }
    }

    const int prio = static_cast<int>(p.tc);  // 0 = highest priority
    if (local) {
      if (enforce_ && !dst_it->second.vnis.contains(p.vni)) {
        ++totals_.dropped_dst_unauthorized;
        ++vni_counters.dropped_dst_unauthorized;
        result.reason = DropReason::kDstNotAuthorized;
        SHS_DEBUG(kTag) << "drop: dst port " << p.dst
                        << " unauthorized for VNI " << p.vni;
        return result;
      }

      // Cut-through timing with per-class priority scheduling: the packet
      // reaches the egress port after one hop latency; it then waits for
      // all queued traffic of its own or higher priority, plus at most one
      // in-flight *frame* of lower-priority traffic (frame-granular
      // preemption).  A single same-class flow already paced by its sender
      // sees no extra delay; incast congestion queues; bulk traffic cannot
      // stall low-latency traffic by more than one frame.
      Port& dst_port = dst_it->second;
      const SimTime at_egress = p.inject_vt + timing_->hop_latency(p.tc);
      p.arrival_vt =
          schedule_egress_locked(at_egress, prio, dst_port.egress_free_vt,
                                 p.size_bytes, timing_->config().link_rate);

      ++totals_.delivered;
      totals_.bytes_delivered += p.size_bytes;
      ++vni_counters.delivered;
      vni_counters.bytes_delivered += p.size_bytes;

      result.delivered = true;
      result.arrival_vt = p.arrival_vt;
      deliver = dst_port.deliver;  // copy out; invoke outside the lock
    } else {
      // Transit: traverse this switch, then serialize onto the uplink
      // (per-link, per-class horizon), then fly the link's latency.
      Uplink& link = *up;
      const SimTime at_egress = p.inject_vt + timing_->hop_latency(p.tc);
      const SimTime start = schedule_egress_locked(
          at_egress, prio, link.egress_free_vt, p.size_bytes, link.rate);
      p.inject_vt =
          start + timing_->serialize_time(p.size_bytes, link.rate) +
          link.latency;
      ++p.hops;
      ++link.counters.packets;
      link.counters.bytes += p.size_bytes;
      ++totals_.forwarded;
      totals_.bytes_forwarded += p.size_bytes;
      ++vni_counters.forwarded;
      vni_counters.bytes_forwarded += p.size_bytes;
      next = link.peer;  // forward outside the lock
    }
  }
  if (deliver) {
    deliver(std::move(p));
    return result;
  }
  return next->admit(std::move(p), /*check_src=*/false, ttl - 1);
}

SwitchCounters RosettaSwitch::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return totals_;
}

SwitchCounters RosettaSwitch::counters_for_vni(Vni vni) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = per_vni_.find(vni);
  return it == per_vni_.end() ? SwitchCounters{} : it->second;
}

std::size_t RosettaSwitch::connected_ports() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ports_.size();
}

std::size_t RosettaSwitch::uplink_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return uplinks_.size();
}

LinkCounters RosettaSwitch::uplink_counters(SwitchId peer) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = uplinks_.find(peer);
  return it == uplinks_.end() ? LinkCounters{} : it->second.counters;
}

}  // namespace shs::hsn
