#include "hsn/rosetta_switch.hpp"

#include <algorithm>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace shs::hsn {

namespace {
constexpr const char* kTag = "rosetta";
}

RosettaSwitch::RosettaSwitch(std::shared_ptr<TimingModel> timing)
    : timing_(std::move(timing)) {}

Status RosettaSwitch::connect(NicAddr addr, DeliveryFn deliver) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ports_.contains(addr)) {
    return already_exists(strfmt("port %u already connected", addr));
  }
  ports_.emplace(addr, Port{std::move(deliver), {}, 0});
  SHS_DEBUG(kTag) << "NIC connected at port " << addr;
  return Status::ok();
}

Status RosettaSwitch::disconnect(NicAddr addr) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ports_.erase(addr) == 0) {
    return not_found(strfmt("port %u not connected", addr));
  }
  return Status::ok();
}

Status RosettaSwitch::authorize_vni(NicAddr port, Vni vni) {
  if (vni == kInvalidVni) return invalid_argument("VNI 0 is reserved");
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = ports_.find(port);
  if (it == ports_.end()) {
    return not_found(strfmt("port %u not connected", port));
  }
  it->second.vnis.insert(vni);
  SHS_DEBUG(kTag) << "port " << port << " authorized for VNI " << vni;
  return Status::ok();
}

Status RosettaSwitch::revoke_vni(NicAddr port, Vni vni) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = ports_.find(port);
  if (it == ports_.end()) {
    return not_found(strfmt("port %u not connected", port));
  }
  if (it->second.vnis.erase(vni) == 0) {
    return not_found(strfmt("port %u not authorized for VNI %u", port, vni));
  }
  return Status::ok();
}

bool RosettaSwitch::vni_authorized(NicAddr port, Vni vni) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = ports_.find(port);
  return it != ports_.end() && it->second.vnis.contains(vni);
}

void RosettaSwitch::set_enforcement(bool on) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  enforce_ = on;
}

bool RosettaSwitch::enforcement() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return enforce_;
}

RouteResult RosettaSwitch::route(Packet&& p) {
  DeliveryFn deliver;
  RouteResult result;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& vni_counters = per_vni_[p.vni];

    const auto src_it = ports_.find(p.src);
    const auto dst_it = ports_.find(p.dst);
    if (dst_it == ports_.end()) {
      ++totals_.dropped_unknown_dst;
      ++vni_counters.dropped_unknown_dst;
      result.reason = DropReason::kUnknownDestination;
      return result;
    }
    if (enforce_) {
      if (src_it == ports_.end() || !src_it->second.vnis.contains(p.vni)) {
        ++totals_.dropped_src_unauthorized;
        ++vni_counters.dropped_src_unauthorized;
        result.reason = DropReason::kSrcNotAuthorized;
        SHS_DEBUG(kTag) << "drop: src port " << p.src
                        << " unauthorized for VNI " << p.vni;
        return result;
      }
      if (!dst_it->second.vnis.contains(p.vni)) {
        ++totals_.dropped_dst_unauthorized;
        ++vni_counters.dropped_dst_unauthorized;
        result.reason = DropReason::kDstNotAuthorized;
        SHS_DEBUG(kTag) << "drop: dst port " << p.dst
                        << " unauthorized for VNI " << p.vni;
        return result;
      }
    }

    // Cut-through timing with per-class priority scheduling: the packet
    // reaches the egress port after one hop latency; it then waits for
    // all queued traffic of its own or higher priority, plus at most one
    // in-flight *frame* of lower-priority traffic (frame-granular
    // preemption).  A single same-class flow already paced by its sender
    // sees no extra delay; incast congestion queues; bulk traffic cannot
    // stall low-latency traffic by more than one frame.
    Port& dst_port = dst_it->second;
    const SimTime at_egress = p.inject_vt + timing_->hop_latency(p.tc);
    const int prio = static_cast<int>(p.tc);  // 0 = highest priority
    SimTime start = at_egress;
    for (int c = 0; c <= prio; ++c) {
      start = std::max(start, dst_port.egress_free_vt[c]);
    }
    bool lower_priority_in_flight = false;
    for (int c = prio + 1; c < kNumTrafficClasses; ++c) {
      if (dst_port.egress_free_vt[c] > start) {
        lower_priority_in_flight = true;
      }
    }
    if (lower_priority_in_flight) {
      start += timing_->serialize_time(timing_->config().frame_bytes);
    }
    dst_port.egress_free_vt[prio] =
        start + timing_->serialize_time(p.size_bytes);
    p.arrival_vt = start;

    ++totals_.delivered;
    totals_.bytes_delivered += p.size_bytes;
    ++vni_counters.delivered;
    vni_counters.bytes_delivered += p.size_bytes;

    result.delivered = true;
    result.arrival_vt = p.arrival_vt;
    deliver = dst_port.deliver;  // copy out; invoke outside the lock
  }
  deliver(std::move(p));
  return result;
}

SwitchCounters RosettaSwitch::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return totals_;
}

SwitchCounters RosettaSwitch::counters_for_vni(Vni vni) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = per_vni_.find(vni);
  return it == per_vni_.end() ? SwitchCounters{} : it->second;
}

std::size_t RosettaSwitch::connected_ports() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ports_.size();
}

}  // namespace shs::hsn
