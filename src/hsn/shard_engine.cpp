#include "hsn/shard_engine.hpp"

#include <algorithm>
#include <utility>

#include "hsn/fabric.hpp"

namespace shs::hsn {

ShardEngine::ShardEngine(Fabric& fabric, int threads)
    : fabric_(fabric), threads_(std::max(threads, 1)) {
  // -- Domain partition: a pure function of the topology, never of the
  //    thread count.  Dragonfly groups map onto domains (intra-group
  //    links are the short ones; the long global links become the
  //    cross-domain hand-offs that fund the lookahead).  Every other
  //    topology gets one domain per switch.
  const std::size_t n = fabric.switch_count();
  const TopologyConfig& topo = fabric.topology();
  domain_of_switch_.resize(n, 0);
  std::size_t nd = 0;
  if (topo.kind == TopologyKind::kDragonfly && topo.switches_per_group > 0) {
    for (std::size_t s = 0; s < n; ++s) {
      domain_of_switch_[s] =
          static_cast<std::uint32_t>(s / topo.switches_per_group);
      nd = std::max(nd, static_cast<std::size_t>(domain_of_switch_[s]) + 1);
    }
  } else {
    for (std::size_t s = 0; s < n; ++s) {
      domain_of_switch_[s] = static_cast<std::uint32_t>(s);
    }
    nd = n;
  }
  nd = std::max<std::size_t>(nd, 1);
  domains_.resize(nd);
  for (std::size_t i = 0; i < nd; ++i) {
    domains_[i].id = static_cast<std::uint32_t>(i);
    domains_[i].outbox.resize(nd);
    domains_[i].notices.resize(nd);
  }
  switch_ptr_.resize(n, nullptr);
  for (std::size_t s = 0; s < n; ++s) switch_ptr_[s] = &fabric.switch_at(s);
  home_domain_of_nic_.resize(fabric.node_count(), 0);
  for (std::size_t a = 0; a < fabric.node_count(); ++a) {
    const SwitchId home = fabric.home_switch(static_cast<NicAddr>(a));
    home_domain_of_nic_[a] =
        home == kInvalidSwitch ? 0 : domain_of_switch_[home];
  }

  // -- Lookahead.  Every cross-domain hand-off advances the packet's
  //    virtual time by at least one switch traversal plus the link's
  //    flight latency (admit_step: inject_vt' = egress_start + ser +
  //    link.latency, egress_start >= inject_vt + hop_latency(tc)).  The
  //    hop floor discounts the worst possible downward jitter/run-bias
  //    so the bound stays conservative even on jittered configs (which
  //    are not digest-stable across thread counts, but must still never
  //    violate window causality).  Derived from the manager's pristine
  //    base plan: link *latencies* never change across replans, so the
  //    window width survives failures and repairs unchanged.
  const TimingConfig& tcfg = fabric.timing()->config();
  const double floor_factor =
      std::max(0.0, 1.0 - tcfg.jitter_amplitude) *
      std::max(0.0, 1.0 - tcfg.run_bias_amplitude);
  const auto hop_floor = static_cast<SimDuration>(
      static_cast<double>(tcfg.hop_latency) * floor_factor);
  // Per-pair matrix: the cheapest direct hop between each ordered domain
  // pair.  Registered symmetrically — the physical cables are
  // bidirectional, and an asymmetric plan listing must never let a
  // reverse-direction hand-off slip under a window edge.
  pair_edge_.assign(nd * nd, kInfEdge);
  if (const auto base = fabric.manager().base_plan()) {
    for (const auto& link : base->links) {
      if (link.from >= n || link.to >= n) continue;
      const std::uint32_t di = domain_of_switch_[link.from];
      const std::uint32_t dj = domain_of_switch_[link.to];
      if (di == dj) continue;
      const auto edge = std::max<SimDuration>(link.latency + hop_floor, 1);
      auto& fwd = pair_edge_[di * nd + dj];
      auto& rev = pair_edge_[dj * nd + di];
      fwd = std::min(fwd, edge);
      rev = std::min(rev, edge);
    }
  }
  SimDuration min_edge = kInfEdge;
  for (const auto e : pair_edge_) min_edge = std::min(min_edge, e);
  // One domain (or fully disconnected domains): windows are unbounded
  // and the engine degenerates to a sequential per-domain drain.
  lookahead_ = (nd <= 1 || min_edge == kInfEdge) ? 0 : min_edge;

  // -- Worker pool.  More workers than domains would only idle; one
  //    domain (or threads <= 1) runs inline on the driver, which is the
  //    schedule every parallel run must reproduce bit-for-bit.
  if (threads_ > 1 && nd > 1) {
    const int w = std::min(threads_, static_cast<int>(nd));
    workers_.reserve(static_cast<std::size_t>(w));
    for (int i = 0; i < w; ++i) {
      workers_.emplace_back([this] { worker_main(); });
    }
  }
}

ShardEngine::~ShardEngine() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    shutdown_ = true;
  }
  pool_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ShardEngine::stage_attempt(Domain& home, Packet&& p,
                                std::uint32_t attempt) {
  Item it;
  it.at = fabric_.home_switch(p.src);
  it.p = std::move(p);
  it.ttl = kMaxFabricHops;
  it.check_src = true;
  it.attempt = attempt;
  it.seq = take_seq(home);
  ++home.attempts;
  home.earliest = std::min(home.earliest, it.p.inject_vt);
  home.heap.push_back(std::move(it));
  std::push_heap(home.heap.begin(), home.heap.end(), ItemAfter{});
}

void ShardEngine::stage_post(NicAddr src, Packet&& pkt, SimTime accepted_vt) {
  Domain& home = domains_[home_domain_of_nic_[src]];
  if (pkt.reliable) {
    OpState op;
    op.master = pkt;  // retransmit master; attempts send copies
    op.vt_io = accepted_vt;
    home.ops.emplace(op_key(src, pkt.seq), std::move(op));
  }
  stage_attempt(home, std::move(pkt), 0);
}

Status ShardEngine::post_send(NicAddr src, EndpointId ep, NicAddr dst,
                              EndpointId dst_ep, std::uint64_t tag,
                              std::uint64_t size_bytes, SimTime local_vt) {
  auto prepared = fabric_.nic(src).prepare_send(ep, dst, dst_ep, tag,
                                                size_bytes, local_vt);
  if (!prepared.is_ok()) return prepared.status();
  CassiniNic::PreparedSend ps = std::move(prepared).value();
  stage_post(src, std::move(ps.packet), ps.accepted_vt);
  return Status::ok();
}

Status ShardEngine::post_rma_write(NicAddr src, EndpointId ep, NicAddr dst,
                                   RKey rkey, std::uint64_t offset,
                                   std::uint64_t size_bytes,
                                   std::span<const std::byte> payload,
                                   SimTime local_vt, std::uint64_t op_id) {
  auto prepared = fabric_.nic(src).prepare_rma_write(
      ep, dst, rkey, offset, size_bytes, payload, local_vt, op_id);
  if (!prepared.is_ok()) return prepared.status();
  CassiniNic::PreparedSend ps = std::move(prepared).value();
  stage_post(src, std::move(ps.packet), ps.accepted_vt);
  return Status::ok();
}

Status ShardEngine::post_rma_read(NicAddr src, EndpointId ep, NicAddr dst,
                                  RKey rkey, std::uint64_t offset,
                                  std::uint64_t size_bytes, SimTime local_vt,
                                  std::uint64_t op_id) {
  auto prepared = fabric_.nic(src).prepare_rma_read(
      ep, dst, rkey, offset, size_bytes, local_vt, op_id);
  if (!prepared.is_ok()) return prepared.status();
  CassiniNic::PreparedSend ps = std::move(prepared).value();
  stage_post(src, std::move(ps.packet), ps.accepted_vt);
  return Status::ok();
}

SimTime ShardEngine::earliest_pending() const {
  SimTime t = kNoPendingWork;
  for (const auto& d : domains_) t = std::min(t, d.earliest);
  return t;
}

std::uint64_t ShardEngine::in_flight() const {
  std::uint64_t count = 0;
  for (const auto& d : domains_) {
    count += d.heap.size();
    for (const auto& box : d.outbox) count += box.size();
  }
  return count;
}

void ShardEngine::flush() {
  for (;;) {
    if (earliest_pending() == kNoPendingWork) return;
    compute_window_ends();
    run_window();
    ++windows_run_;
    barrier_merge();
    if (barrier_observer_) barrier_observer_();
  }
}

void ShardEngine::compute_window_ends() {
  // Per-domain window edges from the pair matrix: domain j may not
  // process items at or beyond the earliest virtual time any *other*
  // domain could hand it this window — earliest_i + edge(i, j).  Pairs
  // without a direct link, and domains with empty heaps, impose no
  // bound; a domain nobody can reach runs unbounded.  The domain
  // holding the globally earliest item always gets an edge strictly
  // beyond it (every edge is >= 1), so each window makes progress.
  const std::size_t nd = domains_.size();
  for (Domain& to : domains_) {
    SimTime end = kNoPendingWork;
    for (std::size_t from = 0; from < nd; ++from) {
      if (from == to.id) continue;
      const SimTime e = domains_[from].earliest;
      if (e == kNoPendingWork) continue;
      const SimDuration edge = pair_edge_[from * nd + to.id];
      if (edge == kInfEdge) continue;
      if (e >= kNoPendingWork - edge) continue;  // would overflow: no bound
      end = std::min<SimTime>(end, e + edge);
    }
    to.window_end = end;
  }
}

void ShardEngine::run_window() {
  if (workers_.empty()) {
    for (auto& d : domains_) run_domain_window(d);
    return;
  }
  std::unique_lock<std::mutex> lk(pool_mu_);
  next_domain_.store(0, std::memory_order_relaxed);
  done_count_ = 0;
  ++epoch_;
  pool_cv_.notify_all();
  done_cv_.wait(lk, [&] { return done_count_ == workers_.size(); });
}

void ShardEngine::worker_main() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(pool_mu_);
      pool_cv_.wait(lk,
                    [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
    }
    // Dynamic domain claiming: which worker runs which domain is
    // load-balancing only — a domain's schedule depends solely on its
    // heap contents and its precomputed window edge, so the claim order
    // cannot affect results.
    for (;;) {
      const std::size_t d =
          next_domain_.fetch_add(1, std::memory_order_relaxed);
      if (d >= domains_.size()) break;
      run_domain_window(domains_[d]);
    }
    {
      std::lock_guard<std::mutex> lk(pool_mu_);
      if (++done_count_ == workers_.size()) done_cv_.notify_one();
    }
  }
}

void ShardEngine::run_domain_window(Domain& d) {
  // Strict (vt, seq) order within the domain; items this window spawns
  // (intra-domain forwards, target-side replies) join the heap and are
  // processed in turn if they still land before the window edge.
  const SimTime window_end = d.window_end;
  while (!d.heap.empty() && d.heap.front().p.inject_vt < window_end) {
    std::pop_heap(d.heap.begin(), d.heap.end(), ItemAfter{});
    Item it = std::move(d.heap.back());
    d.heap.pop_back();
    step_item(d, std::move(it));
  }
  d.earliest = d.heap.empty() ? kNoPendingWork : d.heap.front().p.inject_vt;
}

void ShardEngine::step_item(Domain& d, Item&& it) {
  // The step may consume the packet (delivery and ACK-lost delivery
  // both move it into the NIC), so everything a notice needs is
  // captured first.
  const NicAddr src = it.p.src;
  const EndpointId src_ep = it.p.src_ep;
  const std::uint64_t nic_seq = it.p.seq;
  const std::uint64_t op_id = it.p.op_id;
  const bool reliable = it.p.reliable;
  const SimTime vt_before = it.p.inject_vt;

  RosettaSwitch* next = nullptr;
  CassiniNic* deliver_to = nullptr;
  const RouteResult rr = switch_ptr_[it.at]->step(it.p, it.check_src, it.ttl,
                                                  &next, &deliver_to);

  if (next != nullptr) {
    // Forwarded; admit_step advanced p.inject_vt to the arrival at the
    // peer.  Cross-domain hops park in the outbox until the barrier —
    // by the pair-lookahead bound they are dated at or beyond the
    // destination's window edge, so it cannot need them this window.
    it.check_src = false;
    --it.ttl;
    it.at = next->id();
    const std::uint32_t target = domain_of_switch_[it.at];
    if (target == d.id) {
      d.heap.push_back(std::move(it));
      std::push_heap(d.heap.begin(), d.heap.end(), ItemAfter{});
    } else {
      d.outbox[target].push_back(std::move(it));
    }
    return;
  }

  if (deliver_to != nullptr) {
    // Landed on a NIC in this domain (set on ACK-lost consumption too:
    // the packet reached the NIC, only the fabric ACK was lost — its
    // effect must apply exactly as on the synchronous path).  Any
    // target-side reply is staged here, in the target's own domain,
    // instead of re-entering Fabric::inject from the delivery callback.
    auto reply = deliver_to->deliver_from_engine(std::move(it.p));
    if (reply) stage_reply(d, std::move(*reply));
  }

  if (rr.delivered) {
    if (reliable) {
      // Success notice so the driver can retire the op state (and count
      // a recovery when earlier attempts failed).
      Notice n;
      n.kind = Notice::Kind::kDelivered;
      n.src = src;
      n.src_ep = src_ep;
      n.nic_seq = nic_seq;
      n.vt = rr.arrival_vt;
      n.attempt = it.attempt;
      d.notices[home_domain_of_nic_[src]].push_back(n);
    }
    return;
  }

  // Failed attempt: dropped, or consumed with its ACK lost.  The
  // retry/fail-fast decision uses the same predicate the synchronous
  // path does; the actual retransmit is charged on the driver thread at
  // the barrier (deterministic per-NIC RNG draw order).
  Notice n;
  n.src = src;
  n.src_ep = src_ep;
  n.nic_seq = nic_seq;
  n.op_id = op_id;
  n.reason = rr.reason;
  n.vt = vt_before;
  n.attempt = it.attempt;
  if (reliable && CassiniNic::is_transient(rr.reason)) {
    const auto budget = static_cast<std::uint32_t>(
        std::max(fabric_.nic(src).reliability().max_retries, 0));
    if (it.attempt < budget) {
      n.kind = Notice::Kind::kRetry;
    } else {
      n.kind = Notice::Kind::kDrop;
      n.budget_exhausted = true;
    }
  } else {
    n.kind = Notice::Kind::kDrop;
  }
  d.notices[home_domain_of_nic_[src]].push_back(n);
}

void ShardEngine::stage_reply(Domain& d, Packet&& reply) {
  // The reply's source NIC is the target we just delivered to, which is
  // attached to a switch of this domain — so `d` IS the reply's home
  // domain and the worker is its only toucher mid-window.  The reply's
  // inject_vt (arrival + rx overhead) is strictly beyond every item
  // this domain has popped, so heap order is preserved; other domains'
  // window edges already account for it because it is dated at or
  // beyond this domain's own earliest.
  if (reply.reliable) {
    // Completion traffic gets the full retransmit protocol, same as the
    // synchronous path's inject_reliable on the reply.
    OpState op;
    op.master = reply;
    op.vt_io = reply.inject_vt;
    d.ops.emplace(op_key(reply.src, reply.seq), std::move(op));
  }
  stage_attempt(d, std::move(reply), 0);
}

void ShardEngine::barrier_merge() {
  // Deterministic merge: destination domain id, then source domain id,
  // then FIFO within each outbox.  (Heap pop order depends only on the
  // unique (vt, seq) keys, so the insertion order here is immaterial to
  // results — the fixed order keeps retransmit RNG draws, error-event
  // pushes, and op retirement identical across thread counts.)
  const std::size_t nd = domains_.size();
  for (std::size_t dst = 0; dst < nd; ++dst) {
    Domain& to = domains_[dst];
    for (std::size_t from = 0; from < nd; ++from) {
      auto& box = domains_[from].outbox[dst];
      for (Item& it : box) {
        to.earliest = std::min(to.earliest, it.p.inject_vt);
        to.heap.push_back(std::move(it));
        std::push_heap(to.heap.begin(), to.heap.end(), ItemAfter{});
      }
      box.clear();
    }
  }
  for (std::size_t dst = 0; dst < nd; ++dst) {
    for (std::size_t from = 0; from < nd; ++from) {
      auto& pending = domains_[from].notices[dst];
      for (const Notice& n : pending) process_notice(n);
      pending.clear();
    }
  }
}

void ShardEngine::process_notice(const Notice& n) {
  CassiniNic& nic = fabric_.nic(n.src);
  Domain& home = domains_[home_domain_of_nic_[n.src]];
  const std::uint64_t key = op_key(n.src, n.nic_seq);
  switch (n.kind) {
    case Notice::Kind::kDelivered: {
      const auto it = home.ops.find(key);
      if (it == home.ops.end()) break;
      if (n.attempt > 0) {
        const bool after_replan =
            it->second.have_v0 &&
            fabric_.plan_version() != it->second.plan_v0;
        nic.note_recovered(after_replan);
      }
      home.ops.erase(it);
      break;
    }
    case Notice::Kind::kRetry: {
      const auto it = home.ops.find(key);
      if (it == home.ops.end()) break;
      OpState& op = it->second;
      if (!op.have_v0) {
        // Captured at the first failure, as on the synchronous path:
        // recovery on a newer plan version counts as carried-across-
        // replan.
        op.plan_v0 = fabric_.plan_version();
        op.have_v0 = true;
      }
      ++op.attempt;
      (void)nic.schedule_retransmit(op.master,
                                    static_cast<int>(op.attempt), op.vt_io);
      Packet copy = op.master;
      stage_attempt(home, std::move(copy), op.attempt);
      break;
    }
    case Notice::Kind::kDrop: {
      SimTime error_vt = n.vt;
      const auto it = home.ops.find(key);
      if (it != home.ops.end()) {
        error_vt = it->second.vt_io;  // post_send's done_vt semantics
        home.ops.erase(it);
      }
      nic.note_tx_drop(n.reason, n.src_ep, n.op_id, error_vt,
                       n.budget_exhausted);
      break;
    }
  }
}

}  // namespace shs::hsn
