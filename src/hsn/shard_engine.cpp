#include "hsn/shard_engine.hpp"

#include <algorithm>
#include <cstdlib>
#include <iterator>
#include <utility>

#include "hsn/fabric.hpp"

namespace shs::hsn {

ShardEngine::ShardEngine(Fabric& fabric, int threads)
    : fabric_(fabric), threads_(std::max(threads, 1)) {
  // -- Domain partition: a pure function of the topology, never of the
  //    thread count.  Dragonfly groups map onto domains (intra-group
  //    links are the short ones; the long global links become the
  //    cross-domain hand-offs that fund the lookahead).  Every other
  //    topology gets one domain per switch.
  const std::size_t n = fabric.switch_count();
  const TopologyConfig& topo = fabric.topology();
  domain_of_switch_.resize(n, 0);
  std::size_t nd = 0;
  if (topo.kind == TopologyKind::kDragonfly && topo.switches_per_group > 0) {
    for (std::size_t s = 0; s < n; ++s) {
      domain_of_switch_[s] =
          static_cast<std::uint32_t>(s / topo.switches_per_group);
      nd = std::max(nd, static_cast<std::size_t>(domain_of_switch_[s]) + 1);
    }
  } else {
    for (std::size_t s = 0; s < n; ++s) {
      domain_of_switch_[s] = static_cast<std::uint32_t>(s);
    }
    nd = n;
  }
  nd = std::max<std::size_t>(nd, 1);
  // Slot packing reserves the top (32 - kSlotDomainShift) bits for the
  // owning domain; a topology dense enough to overflow that would need
  // a wider encoding, not a silent wrap.
  if (nd > (std::size_t{1} << (32 - kSlotDomainShift))) {
    std::abort();
  }
  domains_.resize(nd);
  for (std::size_t i = 0; i < nd; ++i) {
    domains_[i].id = static_cast<std::uint32_t>(i);
    domains_[i].outbox.resize(nd);
    domains_[i].notices.resize(nd);
    domains_[i].fresh_min = kNoPendingWork;
    domains_[i].earliest = kNoPendingWork;
  }
  pending_.reserve(nd);
  switch_ptr_.resize(n, nullptr);
  for (std::size_t s = 0; s < n; ++s) switch_ptr_[s] = &fabric.switch_at(s);
  home_domain_of_nic_.resize(fabric.node_count(), 0);
  for (std::size_t a = 0; a < fabric.node_count(); ++a) {
    const SwitchId home = fabric.home_switch(static_cast<NicAddr>(a));
    home_domain_of_nic_[a] =
        home == kInvalidSwitch ? 0 : domain_of_switch_[home];
  }

  // -- Lookahead.  Every cross-domain hand-off advances the packet's
  //    virtual time by at least one switch traversal plus the link's
  //    flight latency (admit_step: inject_vt' = egress_start + ser +
  //    link.latency, egress_start >= inject_vt + hop_latency(tc)).  The
  //    hop floor discounts the worst possible downward jitter/run-bias
  //    so the bound stays conservative even on jittered configs (which
  //    are not digest-stable across thread counts, but must still never
  //    violate window causality).  Derived from the manager's pristine
  //    base plan: link *latencies* never change across replans, so the
  //    window width survives failures and repairs unchanged.
  const TimingConfig& tcfg = fabric.timing()->config();
  const double floor_factor =
      std::max(0.0, 1.0 - tcfg.jitter_amplitude) *
      std::max(0.0, 1.0 - tcfg.run_bias_amplitude);
  const auto hop_floor = static_cast<SimDuration>(
      static_cast<double>(tcfg.hop_latency) * floor_factor);
  // Per-pair matrix: the cheapest direct hop between each ordered domain
  // pair.  Registered symmetrically — the physical cables are
  // bidirectional, and an asymmetric plan listing must never let a
  // reverse-direction hand-off slip under a window edge.
  pair_edge_.assign(nd * nd, kInfEdge);
  if (const auto base = fabric.manager().base_plan()) {
    for (const auto& link : base->links) {
      if (link.from >= n || link.to >= n) continue;
      const std::uint32_t di = domain_of_switch_[link.from];
      const std::uint32_t dj = domain_of_switch_[link.to];
      if (di == dj) continue;
      const auto edge = std::max<SimDuration>(link.latency + hop_floor, 1);
      auto& fwd = pair_edge_[di * nd + dj];
      auto& rev = pair_edge_[dj * nd + di];
      fwd = std::min(fwd, edge);
      rev = std::min(rev, edge);
    }
  }
  SimDuration min_edge = kInfEdge;
  for (const auto e : pair_edge_) min_edge = std::min(min_edge, e);
  // One domain (or fully disconnected domains): windows are unbounded
  // and the engine degenerates to a sequential per-domain drain.
  lookahead_ = (nd <= 1 || min_edge == kInfEdge) ? 0 : min_edge;

  // -- Worker pool.  More workers than domains would only idle; one
  //    domain (or threads <= 1) runs inline on the driver, which is the
  //    schedule every parallel run must reproduce bit-for-bit.
  if (threads_ > 1 && nd > 1) {
    const int w = std::min(threads_, static_cast<int>(nd));
    workers_.reserve(static_cast<std::size_t>(w));
    for (int i = 0; i < w; ++i) {
      workers_.emplace_back([this] { worker_main(); });
    }
  }
  // Inline mode owns every domain from the driver thread, so cross
  // hand-offs can skip the outbox (see step_item).
  direct_cross_ = workers_.empty();
}

ShardEngine::~ShardEngine() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    shutdown_.store(true, std::memory_order_seq_cst);
  }
  go_.fetch_add(1, std::memory_order_seq_cst);
  pool_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ShardEngine::stage_attempt(Domain& home, Packet&& p,
                                std::uint32_t attempt) {
  const std::uint32_t slot = alloc_slot(home);
  Item& it = slot_item(slot);
  it.at = fabric_.home_switch(p.src);
  it.p = std::move(p);
  it.ttl = kMaxFabricHops;
  it.check_src = true;
  it.attempt = attempt;
  it.seq = take_seq(home);
  ++home.attempts;
  push_fresh(home, Ref{it.p.inject_vt, it.seq, slot});
}

void ShardEngine::stage_post(NicAddr src, Packet&& pkt, SimTime accepted_vt) {
  Domain& home = domains_[home_domain_of_nic_[src]];
  if (pkt.reliable) {
    OpState op;
    op.master = pkt;  // retransmit master; attempts send copies
    op.vt_io = accepted_vt;
    home.ops.emplace(op_key(src, pkt.seq), std::move(op));
  }
  stage_attempt(home, std::move(pkt), 0);
}

Status ShardEngine::post_send(NicAddr src, EndpointId ep, NicAddr dst,
                              EndpointId dst_ep, std::uint64_t tag,
                              std::uint64_t size_bytes, SimTime local_vt) {
  // The highest-rate verb builds straight into its pool slot
  // (prepare_send_into): no PreparedSend, no Packet move chain.
  Domain& home = domains_[home_domain_of_nic_[src]];
  const std::uint32_t slot = alloc_slot(home);
  Item& it = slot_item(slot);
  auto accepted = fabric_.nic(src).prepare_send_into(
      it.p, ep, dst, dst_ep, tag, size_bytes, local_vt);
  if (!accepted.is_ok()) {
    free_slot(slot);
    return accepted.status();
  }
  if (it.p.reliable) {
    OpState op;
    op.master = it.p;  // retransmit master; attempts send copies
    op.vt_io = accepted.value();
    home.ops.emplace(op_key(src, it.p.seq), std::move(op));
  }
  it.at = fabric_.home_switch(src);
  it.ttl = kMaxFabricHops;
  it.check_src = true;
  it.attempt = 0;
  it.seq = take_seq(home);
  ++home.attempts;
  push_fresh(home, Ref{it.p.inject_vt, it.seq, slot});
  return Status::ok();
}

Status ShardEngine::post_rma_write(NicAddr src, EndpointId ep, NicAddr dst,
                                   RKey rkey, std::uint64_t offset,
                                   std::uint64_t size_bytes,
                                   std::span<const std::byte> payload,
                                   SimTime local_vt, std::uint64_t op_id) {
  auto prepared = fabric_.nic(src).prepare_rma_write(
      ep, dst, rkey, offset, size_bytes, payload, local_vt, op_id);
  if (!prepared.is_ok()) return prepared.status();
  CassiniNic::PreparedSend ps = std::move(prepared).value();
  stage_post(src, std::move(ps.packet), ps.accepted_vt);
  return Status::ok();
}

Status ShardEngine::post_rma_read(NicAddr src, EndpointId ep, NicAddr dst,
                                  RKey rkey, std::uint64_t offset,
                                  std::uint64_t size_bytes, SimTime local_vt,
                                  std::uint64_t op_id) {
  auto prepared = fabric_.nic(src).prepare_rma_read(
      ep, dst, rkey, offset, size_bytes, local_vt, op_id);
  if (!prepared.is_ok()) return prepared.status();
  CassiniNic::PreparedSend ps = std::move(prepared).value();
  stage_post(src, std::move(ps.packet), ps.accepted_vt);
  return Status::ok();
}

std::uint64_t ShardEngine::in_flight() const {
  // Every live pool slot has exactly one ref in its run queue
  // (sorted[cursor..] / incoming[in_cursor..] / fresh / spawn); outbox
  // items left their source pool when they were parked.
  std::uint64_t count = 0;
  for (const auto& d : domains_) {
    count += d.pool.size() - d.free_slots.size();
    for (const auto& box : d.outbox) count += box.size();
  }
  return count;
}

ShardEngineStats ShardEngine::stats() const {
  ShardEngineStats s;
  s.flushes = flushes_;
  s.windows = windows_run_;
  s.silent_barriers = silent_barriers_;
  s.chained_windows = chained_windows_;
  s.worker_wakeups = worker_wakeups_;
  s.staging_trims = staging_trims_;
  for (const auto& d : domains_) {
    s.items_stepped += d.stats.items_stepped;
    s.intra_forwards += d.stats.intra_forwards;
    s.cross_forwards += d.stats.cross_forwards;
    s.spawn_heap_ops += d.stats.spawn_heap_ops;
    s.batch_sorts += d.stats.batch_sorts;
    s.batch_sorted_refs += d.stats.batch_sorted_refs;
    s.notices += d.stats.notices;
    s.pool_hits += d.stats.pool_hits;
    s.pool_misses += d.stats.pool_misses;
  }
  return s;
}

std::size_t ShardEngine::staging_bytes_reserved() const {
  std::size_t bytes = 0;
  for (const auto& d : domains_) {
    bytes += d.pool.capacity() * sizeof(Item);
    for (const auto& it : d.pool) bytes += it.p.payload.capacity();
    bytes += d.free_slots.capacity() * sizeof(std::uint32_t);
    bytes += (d.sorted.capacity() + d.incoming.capacity() +
              d.fresh.capacity() + d.spawn.capacity() +
              d.scratch.capacity()) *
             sizeof(Ref);
    for (const auto& box : d.outbox) {
      bytes += box.capacity() * sizeof(Item);
      for (const auto& it : box) bytes += it.p.payload.capacity();
    }
    for (const auto& nq : d.notices) bytes += nq.capacity() * sizeof(Notice);
  }
  return bytes;
}

void ShardEngine::flush() {
  if (!compute_window_ends()) return;
  if (workers_.empty()) {
    do {
      run_window_inline();
      ++windows_run_;
      if (!barrier_merge()) ++silent_barriers_;
      if (barrier_observer_) barrier_observer_();
    } while (compute_window_ends());
  } else {
    run_windows_pooled();
  }
  ++flushes_;
  trim_staging();
}

bool ShardEngine::compute_window_ends() {
  // One fused scan over the per-domain earliest-pending caches
  // (maintained at staging time and refreshed at window ends, so this
  // never walks a backlog): collect the pending domains, then derive
  // each domain's window edge from the pair matrix.  Domain j may not
  // process items at or beyond the earliest virtual time any *other*
  // domain could hand it this window — earliest_i + edge(i, j).  Pairs
  // without a direct link, and idle domains (skipped rows), impose no
  // bound; a domain nobody can reach runs unbounded.  The domain
  // holding the globally earliest item always gets an edge strictly
  // beyond it (every edge is >= 1), so each window makes progress.
  const std::size_t nd = domains_.size();
  pending_.clear();
  for (const Domain& d : domains_) {
    if (d.earliest != kNoPendingWork) pending_.push_back(d.id);
  }
  if (pending_.empty()) return false;
  for (Domain& to : domains_) {
    SimTime end = kNoPendingWork;
    for (const std::uint32_t from : pending_) {
      if (from == to.id) continue;
      const SimTime e = domains_[from].earliest;
      const SimDuration edge = pair_edge_[from * nd + to.id];
      if (edge == kInfEdge) continue;
      if (e >= kNoPendingWork - edge) continue;  // would overflow: no bound
      end = std::min<SimTime>(end, e + edge);
    }
    to.window_end = end;
  }
  return true;
}

void ShardEngine::run_window_inline() {
  for (auto& d : domains_) run_domain_window(d);
}

void ShardEngine::integrate_fresh(Domain& d) {
  // Keep the big backlog (`sorted`) untouched: fresh refs fold into the
  // small `incoming` run only, and full runs promote by vector swap.
  // Without the second run, every window with arrivals would recopy the
  // entire backlog — the dominant cost at fig16 batch depths.
  if (d.cursor >= d.sorted.size() && d.cursor > 0) {
    d.sorted.clear();
    d.cursor = 0;
  }
  if (d.in_cursor >= d.incoming.size() && d.in_cursor > 0) {
    d.incoming.clear();
    d.in_cursor = 0;
  }
  if (d.fresh.empty()) return;
  // Driver-staged batches arrive almost (often exactly) sorted: posts
  // walk the NICs in address order with near-uniform clocks, so keys
  // ascend with push order.  Detect the sorted prefix first — a fully
  // sorted batch (the common flush-boundary shape, and the largest
  // batches the engine ever sorts) skips the sort outright, and a long
  // prefix reduces it to sorting the short jumbled suffix plus one
  // linear merge through `scratch`.  Any path yields the same unique-
  // key ascending order, so the processing schedule is unaffected.
  const auto first_unsorted =
      std::is_sorted_until(d.fresh.begin(), d.fresh.end(), RefBefore{});
  if (first_unsorted != d.fresh.end()) {
    if (first_unsorted - d.fresh.begin() < 16) {
      std::sort(d.fresh.begin(), d.fresh.end(), RefBefore{});
    } else {
      std::sort(first_unsorted, d.fresh.end(), RefBefore{});
      d.scratch.resize(d.fresh.size());
      std::merge(d.fresh.begin(), first_unsorted, first_unsorted,
                 d.fresh.end(), d.scratch.begin(), RefBefore{});
      d.fresh.swap(d.scratch);
    }
  }
  ++d.stats.batch_sorts;
  d.stats.batch_sorted_refs += d.fresh.size();
  if (d.incoming.empty()) {
    // Churn run consumed: the sorted batch IS the new run (buffer swap,
    // no copy — the vectors ping-pong between roles at their HWMs).
    d.incoming.swap(d.fresh);
    d.in_cursor = 0;
  } else if (d.sorted.empty()) {
    // Backlog drained: promote the unconsumed churn run wholesale and
    // start a new one from the batch.  Neither vector's refs move.
    d.sorted.swap(d.incoming);
    d.cursor = d.in_cursor;
    d.incoming.swap(d.fresh);
    d.in_cursor = 0;
  } else {
    // Merge the batch into the churn run in place, from the back: only
    // the tail at or beyond the batch's first key moves, so the
    // (typically much larger) earlier-dated remainder stays put and the
    // consumed prefix keeps its cursor.  A batch dated entirely beyond
    // the tail degenerates to a bulk append.
    const std::size_t old_size = d.incoming.size();
    d.incoming.resize(old_size + d.fresh.size());
    auto dst = d.incoming.end();
    auto i = d.incoming.begin() + static_cast<std::ptrdiff_t>(old_size);
    const auto ib =
        d.incoming.begin() + static_cast<std::ptrdiff_t>(d.in_cursor);
    auto j = d.fresh.end();
    const auto jb = d.fresh.begin();
    while (j != jb) {
      if (i != ib && RefBefore{}(*(j - 1), *(i - 1))) {
        *--dst = *--i;
      } else {
        *--dst = *--j;
      }
    }
    // Everything below `i` is already in position (dst caught up to i).
  }
  d.fresh.clear();
  d.fresh_min = kNoPendingWork;
  const std::size_t queued =
      (d.sorted.size() - d.cursor) + (d.incoming.size() - d.in_cursor);
  if (queued > d.ref_hwm) d.ref_hwm = queued;
}

void ShardEngine::run_domain_window(Domain& d) {
  // Strict (vt, seq) order within the domain, merged from three
  // sources: the two sorted runs of the batched run queue (backlog +
  // churn, each a cursor walk) and the small spawn heap (items this
  // window spawns that still land before the edge).  Spawned items are
  // always dated strictly after their spawner, so the merge reproduces
  // the single-heap processing order exactly.
  const SimTime window_end = d.window_end;
  integrate_fresh(d);
  const std::vector<Ref>& q = d.sorted;
  const std::vector<Ref>& in = d.incoming;
  const auto end_key =
      static_cast<unsigned __int128>(static_cast<std::uint64_t>(window_end))
      << 64;
  for (;;) {
    // Next ref from the three sorted runs: all ascend in (vt, seq), so
    // the smallest head is the global run-queue minimum.  The spawn
    // run (`d.spawn` can grow inside step_item) is checked first —
    // everything in it is dated inside the window by construction.
    const bool have_q = d.cursor < q.size();
    const bool have_i = d.in_cursor < in.size();
    const bool q_first =
        have_q && (!have_i || RefBefore{}(q[d.cursor], in[d.in_cursor]));
    const Ref* head = q_first ? &q[d.cursor]
                              : (have_i ? &in[d.in_cursor] : nullptr);
    const bool runnable = head != nullptr && head->key() < end_key;
    if (d.sp_cursor < d.spawn.size() &&
        (!runnable || RefBefore{}(d.spawn[d.sp_cursor], *head))) {
      const Ref r = d.spawn[d.sp_cursor++];
      step_item(d, r, window_end);
      continue;
    }
    if (!runnable) break;
    // The winning run holds the minimum: every one of its refs keyed
    // below BOTH the other run's head and the window edge executes
    // next, in order, with no further merge decisions.  Gallop + a
    // bounded binary search find that span end in O(log span), then a
    // tight pass steps it — mid-window spawns are the only thing that
    // can preempt the span, checked with one compare per item (one
    // branch while the spawn run is empty, the common case).
    const std::vector<Ref>& run = q_first ? q : in;
    std::size_t& cur = q_first ? d.cursor : d.in_cursor;
    const Ref* other = q_first ? (have_i ? &in[d.in_cursor] : nullptr)
                               : (have_q ? &q[d.cursor] : nullptr);
    const auto bound =
        other != nullptr ? std::min(end_key, other->key()) : end_key;
    const std::size_t hi = run.size();
    std::size_t lo = cur;  // run[cur] is known to be below the bound
    std::size_t g = 1;
    while (lo + g < hi && run[lo + g].key() < bound) {
      lo += g;
      g <<= 1;
    }
    std::size_t a = lo + 1;
    std::size_t b = std::min(hi, lo + g);
    while (a < b) {
      const std::size_t m = (a + b) / 2;
      if (run[m].key() < bound) {
        a = m + 1;
      } else {
        b = m;
      }
    }
    const std::size_t span_end = a;
    while (cur != span_end) {
      const Ref r = run[cur];
      if (d.sp_cursor < d.spawn.size() &&
          RefBefore{}(d.spawn[d.sp_cursor], r)) {
        break;  // a spawn preempts: the outer merge consumes it
      }
      ++cur;
      if (cur < hi) {
        const char* next =
            reinterpret_cast<const char*>(&slot_item(run[cur].slot));
        __builtin_prefetch(next);
        __builtin_prefetch(next + 64);
      }
      step_item(d, r, window_end);
    }
  }
  // The spawn run drains fully (everything in it is dated inside the
  // window), so the pending minimum is a run head or a fresh ref.
  d.spawn.clear();
  d.sp_cursor = 0;
  SimTime head_vt = kNoPendingWork;
  if (d.cursor < q.size()) head_vt = q[d.cursor].vt;
  if (d.in_cursor < in.size()) {
    head_vt = std::min(head_vt, in[d.in_cursor].vt);
  }
  d.earliest = std::min(head_vt, d.fresh_min);
}

void ShardEngine::step_item(Domain& d, const Ref& ref, SimTime window_end) {
  // `ref.slot` resolves the owning domain's pool — in inline mode a
  // cross-forwarded item keeps its original slot, so the owner can be a
  // domain other than the executing `d`.
  Item& it = slot_item(ref.slot);
  ++d.stats.items_stepped;

  RosettaSwitch* next = nullptr;
  CassiniNic* deliver_to = nullptr;
  const RouteResult rr = switch_ptr_[it.at]->step(it.p, it.check_src, it.ttl,
                                                  &next, &deliver_to);

  if (next != nullptr) {
    // Forwarded; admit_step advanced p.inject_vt to the arrival at the
    // peer.  An intra-domain hop stays in its pool slot — only the
    // 24-byte ref re-enters the order (spawn heap inside the window,
    // fresh batch beyond it).  Cross-domain hops park in the outbox
    // until the barrier — by the pair-lookahead bound they are dated at
    // or beyond the destination's window edge, so it cannot need them
    // this window.
    it.check_src = false;
    --it.ttl;
    it.at = next->id();
    const std::uint32_t target = domain_of_switch_[it.at];
    if (target == d.id) {
      ++d.stats.intra_forwards;
      const Ref nr{it.p.inject_vt, ref.seq, ref.slot};
      if (nr.vt < window_end) {
        push_spawn(d, nr);
      } else {
        push_fresh(d, nr);
      }
    } else {
      ++d.stats.cross_forwards;
      if (direct_cross_) {
        // Single-threaded inline mode: re-queue the 24-byte ref on the
        // destination's fresh batch and leave the Item in its owning
        // pool (the slot encoding keeps resolving it).  Run-queue order
        // depends only on the already-assigned (vt, seq) key and the
        // lookahead bound dates the item at or beyond the destination's
        // window edge, so skipping the outbox round-trip (two Item
        // moves, a slot recycle, and the barrier box scan) cannot
        // change processing order.
        push_fresh(domains_[target], Ref{it.p.inject_vt, ref.seq, ref.slot});
      } else {
        d.staged_cross = true;
        auto& box = d.outbox[target];
        box.push_back(std::move(it));
        if (box.size() > d.outbox_hwm) d.outbox_hwm = box.size();
        free_slot(ref.slot);
      }
    }
    return;
  }

  // Terminal outcome (delivered, dropped, or consumed-with-ACK-lost):
  // capture the header fields a notice needs before the packet moves
  // into the NIC.  Forwards — two-thirds of all steps — never get
  // here, so hoisting these above the switch step would charge every
  // forward six loads it does not use.  `ref.vt` is the pre-step
  // inject_vt by construction (refs are keyed on it at staging).
  const NicAddr src = it.p.src;
  const EndpointId src_ep = it.p.src_ep;
  const std::uint64_t nic_seq = it.p.seq;
  const std::uint64_t op_id = it.p.op_id;
  const bool reliable = it.p.reliable;
  const SimTime vt_before = ref.vt;
  const std::uint32_t attempt = it.attempt;

  if (deliver_to != nullptr) {
    // Landed on a NIC in this domain (set on ACK-lost consumption too:
    // the packet reached the NIC, only the fabric ACK was lost — its
    // effect must apply exactly as on the synchronous path).  Any
    // target-side reply is staged here, in the target's own domain,
    // instead of re-entering Fabric::inject from the delivery callback.
    auto reply = deliver_to->deliver_from_engine(std::move(it.p));
    free_slot(ref.slot);
    if (reply) stage_reply(d, std::move(*reply), window_end);
  } else {
    free_slot(ref.slot);
  }

  if (rr.delivered) {
    if (reliable) {
      // Success notice so the driver can retire the op state (and count
      // a recovery when earlier attempts failed).
      Notice n;
      n.kind = Notice::Kind::kDelivered;
      n.src = src;
      n.src_ep = src_ep;
      n.nic_seq = nic_seq;
      n.vt = rr.arrival_vt;
      n.attempt = attempt;
      stage_notice(d, n);
    }
    return;
  }

  // Failed attempt: dropped, or consumed with its ACK lost.  The
  // retry/fail-fast decision uses the same predicate the synchronous
  // path does; the actual retransmit is charged single-threaded at the
  // barrier (deterministic per-NIC RNG draw order).
  Notice n;
  n.src = src;
  n.src_ep = src_ep;
  n.nic_seq = nic_seq;
  n.op_id = op_id;
  n.reason = rr.reason;
  n.vt = vt_before;
  n.attempt = attempt;
  if (reliable && CassiniNic::is_transient(rr.reason)) {
    const auto budget = static_cast<std::uint32_t>(
        fabric_.nic(src).retry_budget(rr.reason));
    if (attempt < budget) {
      n.kind = Notice::Kind::kRetry;
    } else {
      n.kind = Notice::Kind::kDrop;
      n.budget_exhausted = true;
    }
  } else {
    n.kind = Notice::Kind::kDrop;
  }
  stage_notice(d, n);
}

void ShardEngine::stage_notice(Domain& d, const Notice& n) {
  auto& nq = d.notices[home_domain_of_nic_[n.src]];
  nq.push_back(n);
  if (nq.size() > d.notice_hwm) d.notice_hwm = nq.size();
  ++d.stats.notices;
  d.staged_cross = true;
}

void ShardEngine::stage_reply(Domain& d, Packet&& reply, SimTime window_end) {
  // The reply's source NIC is the target we just delivered to, which is
  // attached to a switch of this domain — so `d` IS the reply's home
  // domain and the worker is its only toucher mid-window.  The reply's
  // inject_vt (arrival + rx overhead) is strictly beyond every item
  // this domain has stepped, so processing order is preserved; other
  // domains' window edges already account for it because it is dated at
  // or beyond this domain's own earliest.
  if (reply.reliable) {
    // Completion traffic gets the full retransmit protocol, same as the
    // synchronous path's inject_reliable on the reply.
    OpState op;
    op.master = reply;
    op.vt_io = reply.inject_vt;
    d.ops.emplace(op_key(reply.src, reply.seq), std::move(op));
  }
  const std::uint32_t slot = alloc_slot(d);
  Item& it = slot_item(slot);
  it.at = fabric_.home_switch(reply.src);
  it.p = std::move(reply);
  it.ttl = kMaxFabricHops;
  it.check_src = true;
  it.attempt = 0;
  it.seq = take_seq(d);
  ++d.attempts;
  const Ref r{it.p.inject_vt, it.seq, slot};
  if (r.vt < window_end) {
    push_spawn(d, r);
  } else {
    push_fresh(d, r);
  }
}

bool ShardEngine::barrier_merge() {
  // Staggered plan publish drains here: barriers are the engine's only
  // all-workers-quiescent points, and their sequence is thread-count
  // invariant — so applying one per-switch publish wave per barrier
  // keeps mixed-epoch routing bit-identical at 1 and N threads.  One
  // relaxed load when no publish is staged (the common case).
  {
    FabricManager& fm = fabric_.manager();
    if (fm.publish_pending()) fm.apply_next_publish_wave();
  }
  // Deterministic merge: destination domain id, then source domain id,
  // then FIFO within each outbox.  (Run-queue order depends only on the
  // unique (vt, seq) keys, so the insertion order here is immaterial to
  // results — the fixed order keeps retransmit RNG draws, error-event
  // pushes, and op retirement identical across thread counts.)  A
  // silent window — no outbox traffic, no notices anywhere — skips the
  // O(domains^2) merge scan entirely; the per-window `staged_cross`
  // flags make that an O(domains) check.
  const std::size_t nd = domains_.size();
  bool any = false;
  for (auto& d : domains_) {
    any |= d.staged_cross;
    d.staged_cross = false;
  }
  if (!any) return false;
  for (std::size_t dst = 0; dst < nd; ++dst) {
    Domain& to = domains_[dst];
    for (std::size_t from = 0; from < nd; ++from) {
      auto& box = domains_[from].outbox[dst];
      for (Item& moved : box) {
        const std::uint32_t slot = alloc_slot(to);
        Item& it = slot_item(slot);
        it = std::move(moved);
        push_fresh(to, Ref{it.p.inject_vt, it.seq, slot});
      }
      box.clear();  // capacity retained mid-flush (epoch-cleared)
    }
  }
  for (std::size_t dst = 0; dst < nd; ++dst) {
    for (std::size_t from = 0; from < nd; ++from) {
      auto& pending = domains_[from].notices[dst];
      for (const Notice& n : pending) process_notice(n);
      pending.clear();
    }
  }
  return true;
}

void ShardEngine::process_notice(const Notice& n) {
  CassiniNic& nic = fabric_.nic(n.src);
  Domain& home = domains_[home_domain_of_nic_[n.src]];
  const std::uint64_t key = op_key(n.src, n.nic_seq);
  switch (n.kind) {
    case Notice::Kind::kDelivered: {
      const auto it = home.ops.find(key);
      if (it == home.ops.end()) break;
      if (n.attempt > 0) {
        const bool after_replan =
            it->second.have_v0 &&
            fabric_.plan_version() != it->second.plan_v0;
        nic.note_recovered(after_replan);
      }
      home.ops.erase(it);
      break;
    }
    case Notice::Kind::kRetry: {
      const auto it = home.ops.find(key);
      if (it == home.ops.end()) break;
      OpState& op = it->second;
      if (!op.have_v0) {
        // Captured at the first failure, as on the synchronous path:
        // recovery on a newer plan version counts as carried-across-
        // replan.
        op.plan_v0 = fabric_.plan_version();
        op.have_v0 = true;
      }
      ++op.attempt;
      (void)nic.schedule_retransmit(op.master,
                                    static_cast<int>(op.attempt), op.vt_io);
      Packet copy = op.master;
      stage_attempt(home, std::move(copy), op.attempt);
      break;
    }
    case Notice::Kind::kDrop: {
      SimTime error_vt = n.vt;
      const auto it = home.ops.find(key);
      if (it != home.ops.end()) {
        error_vt = it->second.vt_io;  // post_send's done_vt semantics
        home.ops.erase(it);
      }
      nic.note_tx_drop(n.reason, n.src_ep, n.op_id, error_vt,
                       n.budget_exhausted);
      break;
    }
  }
}

void ShardEngine::trim_staging() {
  // Post-flush high-water-mark trim (the staging mirror of the
  // EventLoop queue compaction): capacity a chaos burst grew is
  // released once a later, smaller flush proves it dead — never
  // mid-flush, so nothing shrinks while traffic is in flight.  Each
  // container keeps 2x its flush HWM as growth headroom and is trimmed
  // only when it holds more than double that (> 4x the HWM), so
  // steady-state flushes never churn allocations.
  for (auto& d : domains_) {
    const std::size_t pool_keep =
        2 * std::max<std::size_t>(d.live_hwm, kTrimFloor);
    if (d.pool.size() > 2 * pool_keep &&
        d.free_slots.size() == d.pool.size()) {
      d.pool.resize(pool_keep);
      d.pool.shrink_to_fit();
      // Slot indices above the cut are gone; rebuild the free list
      // (descending, so low slots recycle first — deterministic either
      // way, slots never order anything).
      d.free_slots.clear();
      d.free_slots.shrink_to_fit();
      d.free_slots.reserve(d.pool.size());
      for (std::size_t s = d.pool.size(); s-- > 0;) {
        d.free_slots.push_back(static_cast<std::uint32_t>(s));
      }
      ++staging_trims_;
    }
    const std::size_t ref_keep =
        2 * std::max<std::size_t>(d.ref_hwm, kTrimFloor);
    const auto trim_refs = [&](std::vector<Ref>& v) {
      if (v.capacity() > 2 * ref_keep) {
        v.clear();
        v.shrink_to_fit();
        ++staging_trims_;
      }
    };
    // Post-flush both runs are fully consumed (cursors at end);
    // dropping the dead prefixes here — not just on trim — keeps the
    // next flush's integrate from resurrecting consumed refs.
    d.sorted.clear();
    d.cursor = 0;
    d.incoming.clear();
    d.in_cursor = 0;
    trim_refs(d.sorted);
    trim_refs(d.incoming);
    trim_refs(d.fresh);
    trim_refs(d.spawn);
    trim_refs(d.scratch);
    const std::size_t box_keep =
        2 * std::max<std::size_t>(d.outbox_hwm, kTrimFloor);
    for (auto& box : d.outbox) {
      if (box.capacity() > 2 * box_keep) {
        box.shrink_to_fit();  // post-flush: always empty
        ++staging_trims_;
      }
    }
    const std::size_t nq_keep =
        2 * std::max<std::size_t>(d.notice_hwm, kTrimFloor);
    for (auto& nq : d.notices) {
      if (nq.capacity() > 2 * nq_keep) {
        nq.shrink_to_fit();
        ++staging_trims_;
      }
    }
    d.live_hwm = 0;
    d.ref_hwm = 0;
    d.outbox_hwm = 0;
    d.notice_hwm = 0;
  }
}

// ---------------------------------------------------------------------------
// Worker pool.
//
// Window-generation protocol: `go_` names the window generation workers
// should execute.  The coordinator (driver, or — when chaining — the
// last worker to finish the previous window) resets the domain ticket
// and arrival counter, then bumps `go_`; workers claim domains off the
// ticket and bump `arrived_` when the claims run dry.  The acq_rel
// arrival chain orders every domain mutation before the barrier work,
// and the bump of `go_` orders the barrier before the next window's
// claims — so exactly one thread is ever "the coordinator", and its
// plain-field writes (windows_run_, flush bookkeeping) are race-free by
// handoff.
//
// Both sides spin briefly before parking: windows are microseconds
// apart, so staying hot across a handful of them is the common case and
// saves two condvar round-trips per window.  The park/wake race is
// closed Dekker-style: the sleeper publishes its parked flag (seq_cst,
// under the mutex) before re-checking the condition; the waker updates
// the condition (seq_cst) before reading the flag.  Either the waker
// sees the flag and notifies under the mutex, or the sleeper's re-check
// sees the condition — never neither.

void ShardEngine::bump_go_and_wake() {
  go_.fetch_add(1, std::memory_order_seq_cst);
  if (parked_workers_.load(std::memory_order_seq_cst) > 0) {
    {
      std::lock_guard<std::mutex> lk(pool_mu_);
    }
    pool_cv_.notify_all();
    ++worker_wakeups_;
  }
}

void ShardEngine::signal_driver(std::atomic<bool>& flag) {
  flag.store(true, std::memory_order_seq_cst);
  if (driver_parked_.load(std::memory_order_seq_cst)) {
    {
      std::lock_guard<std::mutex> lk(pool_mu_);
    }
    driver_cv_.notify_one();
  }
}

void ShardEngine::driver_wait(std::atomic<bool>& flag) {
  for (int i = 0; i < kSpinBudget; ++i) {
    if (flag.load(std::memory_order_acquire)) return;
    if (i >= kSpinBeforeYield) std::this_thread::yield();
  }
  std::unique_lock<std::mutex> lk(pool_mu_);
  driver_parked_.store(true, std::memory_order_seq_cst);
  driver_cv_.wait(lk, [&] { return flag.load(std::memory_order_seq_cst); });
  driver_parked_.store(false, std::memory_order_relaxed);
}

bool ShardEngine::wait_for_go(std::uint64_t& seen) {
  for (int i = 0; i < kSpinBudget; ++i) {
    const std::uint64_t g = go_.load(std::memory_order_acquire);
    if (g != seen) {
      seen = g;
      return !shutdown_.load(std::memory_order_acquire);
    }
    if (i >= kSpinBeforeYield) std::this_thread::yield();
  }
  std::unique_lock<std::mutex> lk(pool_mu_);
  parked_workers_.fetch_add(1, std::memory_order_seq_cst);
  pool_cv_.wait(lk, [&] {
    return go_.load(std::memory_order_seq_cst) != seen ||
           shutdown_.load(std::memory_order_seq_cst);
  });
  parked_workers_.fetch_sub(1, std::memory_order_relaxed);
  seen = go_.load(std::memory_order_seq_cst);
  return !shutdown_.load(std::memory_order_seq_cst);
}

void ShardEngine::run_windows_pooled() {
  chain_barriers_ = barrier_observer_ == nullptr;
  if (chain_barriers_) {
    // Single handoff per flush: launch the first window, then the pool
    // chains window -> barrier -> window internally (the last worker of
    // each window runs the merge and relaunches) until the flush
    // drains.
    flush_done_.store(false, std::memory_order_relaxed);
    arrived_.store(0, std::memory_order_relaxed);
    next_domain_.store(0, std::memory_order_relaxed);
    bump_go_and_wake();
    driver_wait(flush_done_);
    return;
  }
  // Observer mode: every barrier must run on the driver thread with the
  // observer in the loop, so each window is one round trip.
  for (;;) {
    window_done_.store(false, std::memory_order_relaxed);
    arrived_.store(0, std::memory_order_relaxed);
    next_domain_.store(0, std::memory_order_relaxed);
    bump_go_and_wake();
    driver_wait(window_done_);
    ++windows_run_;
    if (!barrier_merge()) ++silent_barriers_;
    barrier_observer_();
    if (!compute_window_ends()) break;
  }
}

void ShardEngine::worker_barrier_and_relaunch() {
  ++windows_run_;
  if (!barrier_merge()) ++silent_barriers_;
  if (compute_window_ends()) {
    ++chained_windows_;
    arrived_.store(0, std::memory_order_relaxed);
    next_domain_.store(0, std::memory_order_relaxed);
    bump_go_and_wake();  // peers resume; this worker re-enters via wait_for_go
    return;
  }
  signal_driver(flush_done_);
}

void ShardEngine::worker_main() {
  // Generation 0 is "before any window" — NOT the current go_ value: a
  // worker that starts after the first flush's bump must still see that
  // bump, or its window never completes (arrived_ counts all workers).
  std::uint64_t seen = 0;
  for (;;) {
    if (!wait_for_go(seen)) return;
    // Dynamic domain claiming: which worker runs which domain is
    // load-balancing only — a domain's schedule depends solely on its
    // run-queue contents and its precomputed window edge, so the claim
    // order cannot affect results.
    for (;;) {
      const std::size_t idx =
          next_domain_.fetch_add(1, std::memory_order_relaxed);
      if (idx >= domains_.size()) break;
      run_domain_window(domains_[idx]);
    }
    const std::size_t n = arrived_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (n == workers_.size()) {
      if (chain_barriers_) {
        worker_barrier_and_relaunch();
      } else {
        signal_driver(window_done_);
      }
    }
  }
}

}  // namespace shs::hsn
