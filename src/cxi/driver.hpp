// driver.hpp — the (simulated) CXI kernel driver, per node.
//
// This is where the paper's contribution (A) lives.  The driver owns the
// node's CXI service table and authenticates every RDMA-endpoint
// allocation.  Three authentication modes are implemented so the paper's
// security argument is directly testable:
//
//  * kLegacyInNamespace — the stock driver behaviour the paper criticizes:
//    credentials are read as the calling process presents them *inside its
//    user namespace*.  A container started with a user-namespace root
//    mapping can setuid() to any mapped ID and impersonate other members.
//  * kHostUidGid — the "driver modified to respect user namespaces"
//    variant the paper mentions: host-view credentials.  Spoof-proof, but
//    useless under Kubernetes because all pods run as the same host user.
//  * kNetnsExtended — the paper's fix: authenticate by the network
//    namespace inode read from procfs, which userspace cannot change.
//
// The driver also plays the fabric-manager role for its port: creating a
// service that lists VNI v authorizes this NIC's switch port for v
// (refcounted across services); destroying the last such service revokes
// it.  That is how per-job CXI services translate into switch-enforced
// isolation domains.
#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "cxi/service.hpp"
#include "hsn/cassini_nic.hpp"
#include "hsn/rosetta_switch.hpp"
#include "linuxsim/kernel.hpp"
#include "util/status.hpp"

namespace shs::cxi {

/// Authentication mode of the driver (see file comment).
enum class AuthMode : std::uint8_t {
  kLegacyInNamespace = 0,
  kHostUidGid = 1,
  kNetnsExtended = 2,
};

struct DriverCounters {
  std::uint64_t ep_allocs_granted = 0;
  std::uint64_t ep_allocs_denied = 0;
  std::uint64_t svc_created = 0;
  std::uint64_t svc_destroyed = 0;
};

/// One driver instance per node/NIC.  Thread-safe.
class CxiDriver {
 public:
  /// Binds the driver to its node's kernel and NIC.  A default,
  /// unrestricted service exposing `kDefaultVni` is created, mirroring
  /// single-tenant HPC deployments (and the paper's vni:false baseline).
  CxiDriver(linuxsim::Kernel& kernel, hsn::CassiniNic& nic,
            std::shared_ptr<hsn::RosettaSwitch> fabric_switch,
            AuthMode mode = AuthMode::kNetnsExtended);

  [[nodiscard]] AuthMode mode() const noexcept { return mode_; }
  void set_mode(AuthMode mode) noexcept;

  // -- Privileged plane.  `caller` must be host root outside any user
  //    namespace (the CNI plugin and slurmd-style daemons qualify).

  /// Allocates a service.  `desc.id` is assigned by the driver.
  Result<SvcId> svc_alloc(linuxsim::Pid caller, CxiServiceDesc desc);
  /// Destroys a service and releases its VNI authorizations.  Fails with
  /// kFailedPrecondition while endpoints allocated through it are live.
  Status svc_destroy(linuxsim::Pid caller, SvcId id);
  /// Destroys a service, force-freeing any endpoints allocated through it
  /// (used by CNI DEL when tearing down a still-running container).
  Status svc_destroy_force(linuxsim::Pid caller, SvcId id);
  Result<CxiServiceDesc> svc_get(SvcId id) const;
  [[nodiscard]] std::vector<CxiServiceDesc> svc_list() const;
  Status svc_set_enabled(linuxsim::Pid caller, SvcId id, bool enabled);

  // -- User plane.

  /// Authenticates `caller` against service `svc` and, on success,
  /// allocates a NIC endpoint bound to `vni`/`tc`.  This is the security
  /// boundary of the whole stack (Section III-A).
  Result<CxiEndpoint> ep_alloc(linuxsim::Pid caller, SvcId svc, hsn::Vni vni,
                               hsn::TrafficClass tc);
  Status ep_free(linuxsim::Pid caller, const CxiEndpoint& ep);

  /// Convenience: searches all services for one that authorizes `caller`
  /// for `vni` (what libcxi does when no explicit service is named).
  Result<CxiEndpoint> ep_alloc_any_svc(linuxsim::Pid caller, hsn::Vni vni,
                                       hsn::TrafficClass tc);

  [[nodiscard]] DriverCounters counters() const;
  [[nodiscard]] std::size_t live_endpoints(SvcId id) const;

 private:
  struct SvcState {
    CxiServiceDesc desc;
    std::uint32_t live_endpoints = 0;
  };

  Status check_privileged(linuxsim::Pid caller) const;
  /// The auth decision: does `caller` match a member of `svc` under the
  /// current mode, and is `vni` in the service's allow-list?
  Status authenticate(linuxsim::Pid caller, const SvcState& svc,
                      hsn::Vni vni, hsn::TrafficClass tc) const;
  void authorize_vni_locked(hsn::Vni vni);
  void release_vni_locked(hsn::Vni vni);
  Status destroy_locked(SvcId id, bool force);

  linuxsim::Kernel& kernel_;
  hsn::CassiniNic& nic_;
  std::shared_ptr<hsn::RosettaSwitch> switch_;
  AuthMode mode_;

  mutable std::mutex mutex_;
  SvcId next_svc_ = kDefaultSvcId;
  std::unordered_map<SvcId, SvcState> services_;
  /// (vni -> number of services referencing it) for switch-port ACLs.
  std::unordered_map<hsn::Vni, std::uint32_t> vni_refs_;
  /// ep -> owning service, for ep_free bookkeeping.
  std::unordered_map<hsn::EndpointId, SvcId> ep_owner_;
  DriverCounters counters_;
};

}  // namespace shs::cxi
