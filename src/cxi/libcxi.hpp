// libcxi.hpp — userspace CXI library (simulated `libcxi`).
//
// Applications never talk to the driver directly; they open the CXI
// character device and go through libcxi, which the paper patches to carry
// the netns member type.  A `LibCxi` instance is bound to one process (the
// way an open device fd is) so every call authenticates as that process.
#pragma once

#include <optional>

#include "cxi/driver.hpp"
#include "cxi/service.hpp"
#include "linuxsim/kernel.hpp"

namespace shs::cxi {

/// Per-process handle to the node's CXI device.
class LibCxi {
 public:
  /// Opens the device for `pid` (must be a live process on the node's
  /// kernel).  Mirrors `cxil_open_device`.
  LibCxi(CxiDriver& driver, linuxsim::Pid pid) noexcept
      : driver_(&driver), pid_(pid) {}

  [[nodiscard]] linuxsim::Pid pid() const noexcept { return pid_; }

  // -- Service management (privileged; mirrors cxil_alloc_svc etc.).

  Result<SvcId> alloc_svc(CxiServiceDesc desc) {
    return driver_->svc_alloc(pid_, std::move(desc));
  }
  Status destroy_svc(SvcId id) { return driver_->svc_destroy(pid_, id); }
  Status destroy_svc_force(SvcId id) {
    return driver_->svc_destroy_force(pid_, id);
  }
  Result<CxiServiceDesc> get_svc(SvcId id) const {
    return driver_->svc_get(id);
  }
  [[nodiscard]] std::vector<CxiServiceDesc> list_svcs() const {
    return driver_->svc_list();
  }

  // -- Endpoint allocation (the authenticated operation).

  /// Allocates an RDMA endpoint on `vni`.  If `svc` is given the request
  /// authenticates against that service; otherwise libcxi scans all
  /// services for one that admits the caller (Section II-C: "checks
  /// whether any CXI service exists that (1) lists the requesting user as
  /// an authorized member, and (2) is authorized to use the requested
  /// VNIs").
  Result<CxiEndpoint> alloc_endpoint(
      hsn::Vni vni,
      hsn::TrafficClass tc = hsn::TrafficClass::kBestEffort,
      std::optional<SvcId> svc = std::nullopt) {
    if (svc.has_value()) return driver_->ep_alloc(pid_, *svc, vni, tc);
    return driver_->ep_alloc_any_svc(pid_, vni, tc);
  }

  Status free_endpoint(const CxiEndpoint& ep) {
    return driver_->ep_free(pid_, ep);
  }

 private:
  CxiDriver* driver_;
  linuxsim::Pid pid_;
};

}  // namespace shs::cxi
