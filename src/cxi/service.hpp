// service.hpp — CXI service descriptors (Section II-C / III-A).
//
// A CXI service (SVC) is the driver-side object that grants members access
// to a set of VNIs and bounds their NIC resource usage.  The stock driver
// knows UID and GID members; the paper adds the NETNS member type, keyed
// by the network-namespace inode of the calling process — an identifier
// the kernel assigns and userspace cannot forge.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hsn/types.hpp"

namespace shs::cxi {

using SvcId = std::uint32_t;
constexpr SvcId kInvalidSvc = 0;
/// The always-present default service (unrestricted; used by legacy
/// single-tenant deployments and by the paper's vni:false baseline runs).
constexpr SvcId kDefaultSvcId = 1;
/// The VNI the default service exposes ("globally accessible VNI").
constexpr hsn::Vni kDefaultVni = 1;

/// Service member types.  kNetNs is the paper's extension.
enum class MemberType : std::uint8_t {
  kUid = 0,
  kGid = 1,
  kNetNs = 2,  ///< authenticate by network-namespace inode
};

struct SvcMember {
  MemberType type = MemberType::kUid;
  /// UID, GID, or netns inode depending on `type`.
  std::uint64_t id = 0;

  friend bool operator==(const SvcMember&, const SvcMember&) = default;
};

/// Per-service NIC resource bounds ("limit the use of communication
/// resources, such as transmission or event queues").
struct SvcResourceLimits {
  std::uint32_t max_endpoints = 16;
  std::uint32_t max_tx_queues = 64;
  std::uint32_t max_event_queues = 64;
  std::uint32_t max_memory_regions = 256;
};

/// Full descriptor of one CXI service.
struct CxiServiceDesc {
  SvcId id = kInvalidSvc;       ///< assigned by the driver at alloc
  std::string name;             ///< diagnostic label (e.g. the pod name)
  bool enabled = true;
  /// When false, *any* caller matches (the default service).  When true,
  /// the caller must match one of `members`.
  bool restricted_members = true;
  /// When false, any VNI may be requested through this service.
  bool restricted_vnis = true;
  std::vector<SvcMember> members;
  std::vector<hsn::Vni> vnis;
  std::vector<hsn::TrafficClass> traffic_classes{
      hsn::TrafficClass::kDedicatedAccess, hsn::TrafficClass::kLowLatency,
      hsn::TrafficClass::kBulkData, hsn::TrafficClass::kBestEffort};
  SvcResourceLimits limits;
};

/// Handle returned by endpoint allocation through the driver.
struct CxiEndpoint {
  hsn::EndpointId ep = 0;
  hsn::NicAddr nic = hsn::kInvalidNic;
  hsn::Vni vni = hsn::kInvalidVni;
  hsn::TrafficClass tc = hsn::TrafficClass::kBestEffort;
  SvcId svc = kInvalidSvc;
};

}  // namespace shs::cxi
