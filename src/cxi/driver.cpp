#include "cxi/driver.hpp"

#include <algorithm>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace shs::cxi {

namespace {
constexpr const char* kTag = "cxi-drv";
}

CxiDriver::CxiDriver(linuxsim::Kernel& kernel, hsn::CassiniNic& nic,
                     std::shared_ptr<hsn::RosettaSwitch> fabric_switch,
                     AuthMode mode)
    : kernel_(kernel), nic_(nic), switch_(std::move(fabric_switch)),
      mode_(mode) {
  // The default service: unrestricted members, default VNI.  Mirrors how
  // single-tenant HPC systems ship, and serves the vni:false baseline.
  CxiServiceDesc def;
  def.name = "default";
  def.restricted_members = false;
  def.restricted_vnis = true;
  def.vnis = {kDefaultVni};
  def.limits.max_endpoints = 4096;

  std::lock_guard<std::mutex> lock(mutex_);
  def.id = next_svc_++;
  authorize_vni_locked(kDefaultVni);
  services_.emplace(def.id, SvcState{std::move(def), 0});
  ++counters_.svc_created;
}

void CxiDriver::set_mode(AuthMode mode) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  mode_ = mode;
}

Status CxiDriver::check_privileged(linuxsim::Pid caller) const {
  const auto proc = kernel_.find(caller);
  if (!proc) return not_found(strfmt("no such pid %u", caller));
  // Privileged plane requires host root *outside* user namespaces — a
  // container's in-namespace root must not manage services.
  if (proc->user_ns() != nullptr || proc->creds().uid != linuxsim::kRootUid) {
    return permission_denied("CXI service management requires host root");
  }
  return Status::ok();
}

Result<SvcId> CxiDriver::svc_alloc(linuxsim::Pid caller, CxiServiceDesc desc) {
  if (Status st = check_privileged(caller); !st.is_ok()) {
    return Result<SvcId>(std::move(st));
  }
  if (desc.restricted_vnis && desc.vnis.empty()) {
    return Result<SvcId>(
        invalid_argument("restricted-VNI service must list at least one VNI"));
  }
  if (desc.restricted_members && desc.members.empty()) {
    return Result<SvcId>(invalid_argument(
        "restricted-member service must list at least one member"));
  }
  for (const hsn::Vni vni : desc.vnis) {
    if (vni == hsn::kInvalidVni) {
      return Result<SvcId>(invalid_argument("VNI 0 is reserved"));
    }
  }

  std::lock_guard<std::mutex> lock(mutex_);
  desc.id = next_svc_++;
  for (const hsn::Vni vni : desc.vnis) authorize_vni_locked(vni);
  const SvcId id = desc.id;
  SHS_DEBUG(kTag) << "svc_alloc id=" << id << " name=" << desc.name
                  << " members=" << desc.members.size()
                  << " vnis=" << desc.vnis.size();
  services_.emplace(id, SvcState{std::move(desc), 0});
  ++counters_.svc_created;
  return id;
}

Status CxiDriver::svc_destroy(linuxsim::Pid caller, SvcId id) {
  SHS_RETURN_IF_ERROR(check_privileged(caller));
  std::lock_guard<std::mutex> lock(mutex_);
  return destroy_locked(id, /*force=*/false);
}

Status CxiDriver::svc_destroy_force(linuxsim::Pid caller, SvcId id) {
  SHS_RETURN_IF_ERROR(check_privileged(caller));
  std::lock_guard<std::mutex> lock(mutex_);
  return destroy_locked(id, /*force=*/true);
}

Status CxiDriver::destroy_locked(SvcId id, bool force) {
  if (id == kDefaultSvcId) {
    return failed_precondition("the default service cannot be destroyed");
  }
  const auto it = services_.find(id);
  if (it == services_.end()) {
    return not_found(strfmt("no such service %u", id));
  }
  if (it->second.live_endpoints > 0 && !force) {
    return failed_precondition(
        strfmt("service %u still has %u live endpoints", id,
               it->second.live_endpoints));
  }
  if (force) {
    // Reap endpoints allocated through this service (CNI DEL path when a
    // container is torn down with endpoints still open).
    for (auto ep_it = ep_owner_.begin(); ep_it != ep_owner_.end();) {
      if (ep_it->second == id) {
        (void)nic_.free_endpoint(ep_it->first);
        ep_it = ep_owner_.erase(ep_it);
      } else {
        ++ep_it;
      }
    }
  }
  for (const hsn::Vni vni : it->second.desc.vnis) release_vni_locked(vni);
  services_.erase(it);
  ++counters_.svc_destroyed;
  SHS_DEBUG(kTag) << "svc_destroy id=" << id << (force ? " (forced)" : "");
  return Status::ok();
}

Result<CxiServiceDesc> CxiDriver::svc_get(SvcId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = services_.find(id);
  if (it == services_.end()) {
    return Result<CxiServiceDesc>(not_found(strfmt("no such service %u", id)));
  }
  return it->second.desc;
}

std::vector<CxiServiceDesc> CxiDriver::svc_list() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CxiServiceDesc> out;
  out.reserve(services_.size());
  for (const auto& [id, state] : services_) out.push_back(state.desc);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.id < b.id; });
  return out;
}

Status CxiDriver::svc_set_enabled(linuxsim::Pid caller, SvcId id,
                                  bool enabled) {
  SHS_RETURN_IF_ERROR(check_privileged(caller));
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = services_.find(id);
  if (it == services_.end()) {
    return not_found(strfmt("no such service %u", id));
  }
  it->second.desc.enabled = enabled;
  return Status::ok();
}

Status CxiDriver::authenticate(linuxsim::Pid caller, const SvcState& svc,
                               hsn::Vni vni, hsn::TrafficClass tc) const {
  const CxiServiceDesc& desc = svc.desc;
  if (!desc.enabled) {
    return permission_denied(strfmt("service %u is disabled", desc.id));
  }
  if (desc.restricted_vnis &&
      std::find(desc.vnis.begin(), desc.vnis.end(), vni) == desc.vnis.end()) {
    return permission_denied(
        strfmt("service %u does not authorize VNI %u", desc.id, vni));
  }
  if (std::find(desc.traffic_classes.begin(), desc.traffic_classes.end(),
                tc) == desc.traffic_classes.end()) {
    return permission_denied(
        strfmt("service %u does not authorize traffic class %d", desc.id,
               static_cast<int>(tc)));
  }
  if (!desc.restricted_members) return Status::ok();

  const auto proc = kernel_.find(caller);
  if (!proc) return not_found(strfmt("no such pid %u", caller));

  for (const SvcMember& m : desc.members) {
    switch (m.type) {
      case MemberType::kUid: {
        // The mode decides *which* UID the driver believes — this is the
        // vulnerability the paper describes (Section III, reason two).
        const linuxsim::Uid uid = (mode_ == AuthMode::kLegacyInNamespace)
                                      ? proc->creds().uid
                                      : proc->host_uid();
        if (static_cast<std::uint64_t>(uid) == m.id) return Status::ok();
        break;
      }
      case MemberType::kGid: {
        const linuxsim::Gid gid = (mode_ == AuthMode::kLegacyInNamespace)
                                      ? proc->creds().gid
                                      : proc->host_gid();
        if (static_cast<std::uint64_t>(gid) == m.id) return Status::ok();
        break;
      }
      case MemberType::kNetNs: {
        // Only the extended driver understands NETNS members.  The inode
        // is read from procfs — kernel ground truth, not caller input.
        if (mode_ != AuthMode::kNetnsExtended) break;
        const auto inode = kernel_.proc_net_ns_inode(caller);
        if (inode.is_ok() && inode.value() == m.id) return Status::ok();
        break;
      }
    }
  }
  return permission_denied(
      strfmt("pid %u matches no member of service %u", caller, desc.id));
}

Result<CxiEndpoint> CxiDriver::ep_alloc(linuxsim::Pid caller, SvcId svc_id,
                                        hsn::Vni vni, hsn::TrafficClass tc) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = services_.find(svc_id);
  if (it == services_.end()) {
    ++counters_.ep_allocs_denied;
    return Result<CxiEndpoint>(not_found(strfmt("no such service %u",
                                                svc_id)));
  }
  if (Status st = authenticate(caller, it->second, vni, tc); !st.is_ok()) {
    ++counters_.ep_allocs_denied;
    SHS_DEBUG(kTag) << "ep_alloc denied pid=" << caller << " svc=" << svc_id
                    << " vni=" << vni << ": " << st;
    return Result<CxiEndpoint>(std::move(st));
  }
  if (it->second.live_endpoints >= it->second.desc.limits.max_endpoints) {
    ++counters_.ep_allocs_denied;
    return Result<CxiEndpoint>(resource_exhausted(
        strfmt("service %u endpoint limit (%u) reached", svc_id,
               it->second.desc.limits.max_endpoints)));
  }
  auto ep = nic_.alloc_endpoint(vni, tc);
  if (!ep.is_ok()) {
    ++counters_.ep_allocs_denied;
    return Result<CxiEndpoint>(ep.status());
  }
  ++it->second.live_endpoints;
  ep_owner_.emplace(ep.value(), svc_id);
  ++counters_.ep_allocs_granted;
  return CxiEndpoint{ep.value(), nic_.addr(), vni, tc, svc_id};
}

Result<CxiEndpoint> CxiDriver::ep_alloc_any_svc(linuxsim::Pid caller,
                                                hsn::Vni vni,
                                                hsn::TrafficClass tc) {
  // libcxi behaviour: scan services and use the first that authorizes the
  // caller for this VNI.  Collect ids under the lock, then try each
  // through the public path (which re-locks) to keep the logic in one
  // place.
  std::vector<SvcId> ids;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ids.reserve(services_.size());
    for (const auto& [id, state] : services_) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
  }
  Status last = permission_denied("no service authorizes this VNI");
  for (const SvcId id : ids) {
    auto r = ep_alloc(caller, id, vni, tc);
    if (r.is_ok()) return r;
    if (r.code() != Code::kPermissionDenied &&
        r.code() != Code::kNotFound) {
      return r;  // e.g. resource exhaustion: surface immediately
    }
    last = r.status();
  }
  return Result<CxiEndpoint>(std::move(last));
}

Status CxiDriver::ep_free(linuxsim::Pid caller, const CxiEndpoint& ep) {
  (void)caller;  // freeing your own EP handle needs no re-authentication
  std::lock_guard<std::mutex> lock(mutex_);
  const auto owner_it = ep_owner_.find(ep.ep);
  if (owner_it == ep_owner_.end()) {
    return not_found(strfmt("endpoint %u not tracked", ep.ep));
  }
  const auto svc_it = services_.find(owner_it->second);
  if (svc_it != services_.end() && svc_it->second.live_endpoints > 0) {
    --svc_it->second.live_endpoints;
  }
  ep_owner_.erase(owner_it);
  return nic_.free_endpoint(ep.ep);
}

void CxiDriver::authorize_vni_locked(hsn::Vni vni) {
  if (++vni_refs_[vni] == 1) {
    (void)switch_->authorize_vni(nic_.addr(), vni);
  }
}

void CxiDriver::release_vni_locked(hsn::Vni vni) {
  const auto it = vni_refs_.find(vni);
  if (it == vni_refs_.end()) return;
  if (--it->second == 0) {
    vni_refs_.erase(it);
    (void)switch_->revoke_vni(nic_.addr(), vni);
  }
}

DriverCounters CxiDriver::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

std::size_t CxiDriver::live_endpoints(SvcId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = services_.find(id);
  return it == services_.end() ? 0 : it->second.live_endpoints;
}

}  // namespace shs::cxi
