#!/usr/bin/env python3
"""Gate the sharded engine's single-thread overhead from BENCH_fig16.json.

Reads the fig16 artifact and computes

    ratio = packets_per_sec(ugal_t1) / packets_per_sec(ugal)

i.e. the batched window executor at one inline thread against the legacy
synchronous walk of the *same* 256-node dragonfly/UGAL scenario.  Fails
(exit 1) if the ratio falls below --min-ratio, so a regression in the
run-queue/pool/barrier machinery cannot land silently.

Threshold rationale: the design target is 0.50 (engine overhead <= 2x the
synchronous series — see docs/performance.md, "Reading the fig16 threads
series"); quiet-machine runs land at 0.42-0.47.  The default gate is 0.40
because shared CI runners show +/-15-30 % run-to-run noise and the two
series are measured in separate timing regions of one process, so their
errors don't cancel.  The gate still has teeth: the pre-batching executor
measured ~0.21.  Tighten with --min-ratio 0.45 on dedicated hardware.

Usage:
    tools/check_fig16_ratio.py BENCH_fig16.json [--min-ratio 0.40]
"""

import argparse
import json
import sys


def pick_rate(records, series):
    rows = [r for r in records
            if r.get("series") == series and not r.get("skipped")]
    if not rows:
        return None
    return max(float(r["packets_per_sec"]) for r in rows)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifact", help="path to BENCH_fig16.json")
    parser.add_argument("--min-ratio", type=float, default=0.40,
                        help="fail if ugal_t1/ugal falls below this "
                             "(default 0.40; design target 0.50)")
    args = parser.parse_args()

    with open(args.artifact, encoding="utf-8") as f:
        records = json.load(f)

    sync = pick_rate(records, "ugal")
    t1 = pick_rate(records, "ugal_t1")
    if sync is None or t1 is None:
        print(f"check_fig16_ratio: missing series in {args.artifact} "
              f"(ugal={sync}, ugal_t1={t1})", file=sys.stderr)
        return 1

    ratio = t1 / sync
    verdict = "OK" if ratio >= args.min_ratio else "FAIL"
    print(f"check_fig16_ratio: ugal_t1={t1:,.0f} pps, ugal={sync:,.0f} pps, "
          f"ratio={ratio:.3f} (min {args.min_ratio:.2f}, "
          f"design target 0.50) -> {verdict}")
    if ratio < args.min_ratio:
        print("check_fig16_ratio: sharded t1 fell below the overhead gate; "
              "see docs/performance.md 'The batched window executor' for "
              "the cost model this guards.", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
