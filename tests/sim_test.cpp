// sim_test.cpp — discrete-event loop semantics.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_loop.hpp"

namespace shs::sim {
namespace {

TEST(EventLoop, StartsAtZeroAndIdle) {
  EventLoop loop;
  EXPECT_EQ(loop.now(), 0);
  EXPECT_TRUE(loop.idle());
  EXPECT_EQ(loop.run_until_idle(), 0u);
}

TEST(EventLoop, ExecutesInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(30, [&] { order.push_back(3); });
  loop.schedule_at(10, [&] { order.push_back(1); });
  loop.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(loop.run_until_idle(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoop, EqualTimestampsRunFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  loop.run_until_idle();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventLoop, ScheduleAfterUsesCurrentTime) {
  EventLoop loop;
  SimTime seen = -1;
  loop.schedule_at(100, [&] {
    loop.schedule_after(50, [&] { seen = loop.now(); });
  });
  loop.run_until_idle();
  EXPECT_EQ(seen, 150);
}

TEST(EventLoop, PastTimestampsClampToNow) {
  EventLoop loop;
  loop.schedule_at(100, [] {});
  loop.run_until_idle();
  SimTime seen = -1;
  loop.schedule_at(10, [&] { seen = loop.now(); });  // in the "past"
  loop.run_until_idle();
  EXPECT_EQ(seen, 100);
}

TEST(EventLoop, RunUntilStopsAtBoundaryAndAdvancesClock) {
  EventLoop loop;
  int ran = 0;
  loop.schedule_at(10, [&] { ++ran; });
  loop.schedule_at(20, [&] { ++ran; });
  loop.schedule_at(30, [&] { ++ran; });
  EXPECT_EQ(loop.run_until(20), 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(loop.now(), 20);
  EXPECT_EQ(loop.run_until(25), 0u);
  EXPECT_EQ(loop.now(), 25);
  loop.run_until_idle();
  EXPECT_EQ(ran, 3);
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  const auto id = loop.schedule_at(10, [&] { ran = true; });
  EXPECT_TRUE(loop.cancel(id));
  EXPECT_FALSE(loop.cancel(id));  // second cancel is a no-op
  loop.run_until_idle();
  EXPECT_FALSE(ran);
}

TEST(EventLoop, PeriodicFiresRepeatedly) {
  EventLoop loop;
  int count = 0;
  const auto id = loop.schedule_periodic(10, [&] { ++count; });
  loop.run_until(55);
  EXPECT_EQ(count, 5);  // at t=10,20,30,40,50
  EXPECT_TRUE(loop.cancel(id));
  loop.run_until(200);
  EXPECT_EQ(count, 5);
}

TEST(EventLoop, PeriodicCanCancelItself) {
  EventLoop loop;
  int count = 0;
  EventLoop::TaskId id = EventLoop::kInvalidTask;
  id = loop.schedule_periodic(10, [&] {
    if (++count == 3) loop.cancel(id);
  });
  loop.run_until(1000);
  EXPECT_EQ(count, 3);
}

TEST(EventLoop, NestedSchedulingWithinCallback) {
  EventLoop loop;
  std::vector<SimTime> times;
  loop.schedule_at(10, [&] {
    times.push_back(loop.now());
    loop.schedule_after(5, [&] { times.push_back(loop.now()); });
  });
  loop.run_until_idle();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(EventLoop, StopInterruptsRun) {
  EventLoop loop;
  int ran = 0;
  loop.schedule_at(10, [&] {
    ++ran;
    loop.stop();
  });
  loop.schedule_at(20, [&] { ++ran; });
  loop.run_until_idle();
  EXPECT_EQ(ran, 1);
  loop.run_until_idle();
  EXPECT_EQ(ran, 2);
}

TEST(EventLoop, StopMidWindowDoesNotAdvancePastPendingEvents) {
  // Regression: run_until() used to clamp now_ to the window end even
  // when stop() aborted the window, so an event still queued inside the
  // window would later fire with now() already past its timestamp.
  EventLoop loop;
  std::vector<SimTime> fired;
  loop.schedule_at(10, [&] {
    fired.push_back(loop.now());
    loop.stop();
  });
  loop.schedule_at(20, [&] { fired.push_back(loop.now()); });
  EXPECT_EQ(loop.run_until(100), 1u);
  // The aborted window leaves the clock at the last dispatched event;
  // the t=20 event is still pending and still in the future.
  EXPECT_EQ(loop.now(), 10);
  EXPECT_EQ(loop.pending(), 1u);
  EXPECT_EQ(loop.run_until(100), 1u);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  // A clean drain does advance to the window end.
  EXPECT_EQ(loop.now(), 100);
}

TEST(EventLoop, PendingCountsLiveTasks) {
  EventLoop loop;
  const auto a = loop.schedule_at(10, [] {});
  loop.schedule_at(20, [] {});
  EXPECT_EQ(loop.pending(), 2u);
  loop.cancel(a);
  EXPECT_EQ(loop.pending(), 1u);
  loop.run_until_idle();
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(EventLoop, MaxEventsBound) {
  EventLoop loop;
  int ran = 0;
  for (int i = 0; i < 10; ++i) loop.schedule_at(i, [&] { ++ran; });
  EXPECT_EQ(loop.run_until_idle(4), 4u);
  EXPECT_EQ(ran, 4);
}

TEST(EventLoop, ScheduleCancelChurnStaysBounded) {
  // A workload that schedules and immediately cancels (retry loops,
  // churn tests) must not grow the queue: lazy cancellation is
  // compacted, so queue_depth() tracks pending(), not the total number
  // of cancels ever issued.
  EventLoop loop;
  const auto keeper = loop.schedule_at(1'000'000, [] {});
  for (int i = 0; i < 100'000; ++i) {
    const auto id = loop.schedule_at(500'000 + i, [] {});
    EXPECT_TRUE(loop.cancel(id));
  }
  EXPECT_EQ(loop.pending(), 1u);
  EXPECT_LE(loop.queue_depth(), 512u);  // 2x the initial reserve

  // Interleaved survivors: cancel every other task, depth stays O(live).
  std::vector<EventLoop::TaskId> live;
  for (int i = 0; i < 50'000; ++i) {
    const auto id = loop.schedule_at(600'000 + i, [] {});
    if (i % 2 == 0) {
      EXPECT_TRUE(loop.cancel(id));
    } else {
      live.push_back(id);
    }
  }
  EXPECT_EQ(loop.pending(), 1u + live.size());
  EXPECT_LE(loop.queue_depth(), 2 * (1u + live.size()) + 512u);

  // The survivors (and the keeper) still execute exactly once.
  loop.run_until_idle();
  EXPECT_EQ(loop.pending(), 0u);
  EXPECT_EQ(loop.queue_depth(), 0u);
  EXPECT_FALSE(loop.cancel(keeper));  // already executed
}

}  // namespace
}  // namespace shs::sim
