// slurmd_test.cpp — the Slurm-style dynamic CXI service path (Section
// II-C's "daemon running as root" alternative) and its coexistence with
// the Kubernetes path on one VNI registry.
#include <gtest/gtest.h>

#include "core/slurmd.hpp"
#include "core/stack.hpp"

namespace shs::core {
namespace {

struct SlurmFixture : ::testing::Test {
  SlurmFixture() {
    std::vector<SlurmDaemon::NodeRef> refs;
    for (std::size_t i = 0; i < stack.node_count(); ++i) {
      refs.push_back({stack.node(i).kernel.get(),
                      stack.node(i).driver.get(),
                      stack.node(i).root_pid});
    }
    slurmd = std::make_unique<SlurmDaemon>(stack.registry(), stack.loop(),
                                           std::move(refs));
  }

  SlingshotStack stack;
  std::unique_ptr<SlurmDaemon> slurmd;
};

TEST_F(SlurmFixture, UidStepGrantsVniToUser) {
  auto step = slurmd->launch_step(101, {0, 1},
                                  SlurmAuthScheme::kUidMember,
                                  /*uid=*/1000);
  ASSERT_TRUE(step.is_ok());
  EXPECT_EQ(step.value().services.size(), 2u);
  EXPECT_EQ(slurmd->active_steps(), 1u);

  // The user's process can allocate on the step VNI on both nodes.
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}}) {
    auto& node = stack.node(n);
    auto proc = node.kernel->spawn(
        {.creds = linuxsim::Credentials{1000, 1000}});
    auto ep = node.driver->ep_alloc_any_svc(
        proc->pid(), step.value().vni, hsn::TrafficClass::kBestEffort);
    EXPECT_TRUE(ep.is_ok()) << "node " << n;
  }
  // A different user cannot.
  auto other = stack.node(0).kernel->spawn(
      {.creds = linuxsim::Credentials{2000, 2000}});
  EXPECT_EQ(stack.node(0)
                .driver
                ->ep_alloc_any_svc(other->pid(), step.value().vni,
                                   hsn::TrafficClass::kBestEffort)
                .code(),
            Code::kPermissionDenied);
}

TEST_F(SlurmFixture, NetnsStepForContainerizedSteps) {
  auto ns0 = stack.node(0).kernel->create_net_namespace("step-ns0");
  auto ns1 = stack.node(1).kernel->create_net_namespace("step-ns1");
  auto step = slurmd->launch_step(102, {0, 1},
                                  SlurmAuthScheme::kNetnsMember, 0,
                                  {ns0->inode(), ns1->inode()});
  ASSERT_TRUE(step.is_ok());
  auto inside = stack.node(0).kernel->spawn({.creds = {}, .net_ns = ns0});
  EXPECT_TRUE(stack.node(0)
                  .driver
                  ->ep_alloc_any_svc(inside->pid(), step.value().vni,
                                     hsn::TrafficClass::kBestEffort)
                  .is_ok());
  auto outside = stack.node(0).kernel->spawn({});
  EXPECT_EQ(stack.node(0)
                .driver
                ->ep_alloc_any_svc(outside->pid(), step.value().vni,
                                   hsn::TrafficClass::kBestEffort)
                .code(),
            Code::kPermissionDenied);
}

TEST_F(SlurmFixture, CompleteStepReleasesEverything) {
  auto step = slurmd->launch_step(103, {0},
                                  SlurmAuthScheme::kUidMember, 1000);
  ASSERT_TRUE(step.is_ok());
  const auto vni = step.value().vni;
  EXPECT_EQ(stack.registry().allocated_count(), 1u);
  ASSERT_TRUE(slurmd->complete_step(step.value()).is_ok());
  EXPECT_EQ(slurmd->active_steps(), 0u);
  EXPECT_EQ(stack.registry().allocated_count(), 0u);
  EXPECT_EQ(stack.registry().quarantined_count(stack.loop().now()), 1u);
  EXPECT_FALSE(stack.fabric().switch_for(0)->vni_authorized(0, vni));
}

TEST_F(SlurmFixture, ValidationErrors) {
  EXPECT_EQ(slurmd->launch_step(1, {}, SlurmAuthScheme::kUidMember, 1)
                .code(),
            Code::kInvalidArgument);
  EXPECT_EQ(slurmd->launch_step(1, {99}, SlurmAuthScheme::kUidMember, 1)
                .code(),
            Code::kInvalidArgument);
  EXPECT_EQ(slurmd
                ->launch_step(1, {0, 1}, SlurmAuthScheme::kNetnsMember, 0,
                              {123})  // one inode for two nodes
                .code(),
            Code::kInvalidArgument);
}

TEST_F(SlurmFixture, SlurmAndKubernetesShareTheVniPool) {
  // The mutual-exclusivity requirement holds across orchestrators: a
  // Slurm step and a Kubernetes job can never hold the same VNI.
  auto step = slurmd->launch_step(104, {0},
                                  SlurmAuthScheme::kUidMember, 1000);
  ASSERT_TRUE(step.is_ok());

  auto job = stack.submit_job({.name = "k8s-neighbour",
                               .vni_annotation = "true",
                               .pods = 1,
                               .run_duration = 30 * kSecond});
  ASSERT_TRUE(stack.wait_job_start(job.value()));
  hsn::Vni job_vni = hsn::kInvalidVni;
  for (const auto& pod : stack.pods_of_job(job.value())) {
    if (pod.status.vni != hsn::kInvalidVni) job_vni = pod.status.vni;
  }
  ASSERT_NE(job_vni, hsn::kInvalidVni);
  EXPECT_NE(job_vni, step.value().vni);
  EXPECT_EQ(stack.registry().allocated_count(), 2u);
}

TEST_F(SlurmFixture, FailedLaunchRollsBack) {
  // Exhaust the pool so acquire fails; nothing must leak.
  db::Database tiny_db;
  VniRegistry tiny(tiny_db, {.vni_min = 10, .vni_max = 10,
                             .quarantine = kSecond});
  std::vector<SlurmDaemon::NodeRef> refs{{stack.node(0).kernel.get(),
                                          stack.node(0).driver.get(),
                                          stack.node(0).root_pid}};
  SlurmDaemon d(tiny, stack.loop(), std::move(refs));
  auto first = d.launch_step(1, {0}, SlurmAuthScheme::kUidMember, 1);
  ASSERT_TRUE(first.is_ok());
  auto second = d.launch_step(2, {0}, SlurmAuthScheme::kUidMember, 1);
  EXPECT_EQ(second.code(), Code::kResourceExhausted);
  EXPECT_EQ(d.active_steps(), 1u);
}

}  // namespace
}  // namespace shs::core
