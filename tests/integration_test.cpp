// integration_test.cpp — end-to-end scenarios through the whole stack:
// Kubernetes job with vni annotation -> VNI controller -> CXI CNI plugin
// -> netns-member CXI service -> authenticated RDMA endpoints -> switch-
// enforced isolation.  Plus the failure modes the paper calls out.
#include <gtest/gtest.h>

#include "core/drc.hpp"
#include "core/stack.hpp"
#include "osu/osu.hpp"

namespace shs::core {
namespace {

using k8s::PodPhase;

struct StackFixture : ::testing::Test {
  StackFixture() : stack(StackConfig{}) {}

  /// Submits a job and waits until it is running; returns its uid.
  k8s::Uid running_job(const JobOptions& options) {
    auto job = stack.submit_job(options);
    EXPECT_TRUE(job.is_ok());
    EXPECT_TRUE(stack.wait_job_start(job.value())) << options.name;
    return job.value();
  }

  /// First running pod of a job.
  k8s::Pod running_pod(k8s::Uid job) {
    for (const auto& pod : stack.pods_of_job(job)) {
      if (pod.status.phase == PodPhase::kRunning) return pod;
    }
    ADD_FAILURE() << "no running pod";
    return {};
  }

  SlingshotStack stack;
};

TEST_F(StackFixture, VniTrueJobGetsIsolatedVni) {
  const auto job = running_job({.name = "solver",
                                .vni_annotation = "true",
                                .pods = 2,
                                .run_duration = 20 * kSecond,
                                .spread_key = "solver"});
  const auto pods = stack.pods_of_job(job);
  ASSERT_EQ(pods.size(), 2u);
  const hsn::Vni vni = pods[0].status.vni;
  EXPECT_GE(vni, stack.config().vni.vni_min);
  EXPECT_EQ(pods[0].status.vni, pods[1].status.vni)
      << "both pods of one job share the job's VNI";
  EXPECT_NE(pods[0].status.node, pods[1].status.node);
  // The VNI CRD instance exists and is owned by the job.
  const auto vni_objects = stack.api().list_vni_objects();
  ASSERT_EQ(vni_objects.size(), 1u);
  EXPECT_EQ(vni_objects[0].vni, vni);
  EXPECT_EQ(vni_objects[0].bound_uid, job);
  EXPECT_FALSE(vni_objects[0].virtual_instance);
}

TEST_F(StackFixture, PodProcessAllocatesEndpointOnItsVni) {
  const auto job = running_job({.name = "rdma-app",
                                .vni_annotation = "true",
                                .pods = 1,
                                .run_duration = 20 * kSecond});
  const auto pod = running_pod(job);
  auto handle = stack.exec_in_pod(pod.meta.uid);
  ASSERT_TRUE(handle.is_ok());
  auto dom = stack.domain_for(handle.value());
  ASSERT_TRUE(dom.is_ok());
  auto ep = dom.value().open_endpoint(pod.status.vni);
  ASSERT_TRUE(ep.is_ok()) << "netns member must admit the pod process";
  EXPECT_EQ(ep.value()->vni(), pod.status.vni);
}

TEST_F(StackFixture, OtherJobsVniIsDenied) {
  const auto job_a = running_job({.name = "tenant-a",
                                  .vni_annotation = "true",
                                  .pods = 1,
                                  .run_duration = 30 * kSecond});
  const auto job_b = running_job({.name = "tenant-b",
                                  .vni_annotation = "true",
                                  .pods = 1,
                                  .run_duration = 30 * kSecond});
  const auto pod_a = running_pod(job_a);
  const auto pod_b = running_pod(job_b);
  ASSERT_NE(pod_a.status.vni, pod_b.status.vni);

  auto handle_a = stack.exec_in_pod(pod_a.meta.uid);
  auto dom_a = stack.domain_for(handle_a.value());
  // Tenant A cannot allocate an endpoint on tenant B's VNI: no CXI
  // service on A's node admits A's netns for that VNI.
  EXPECT_EQ(dom_a.value().open_endpoint(pod_b.status.vni).code(),
            Code::kPermissionDenied);
}

TEST_F(StackFixture, CrossVniTrafficNeverDelivers) {
  // Two single-pod jobs, one per node (spread via distinct keys is not
  // needed: scheduler balances), each with its own VNI.
  const auto job_a = running_job({.name = "iso-a",
                                  .vni_annotation = "true",
                                  .pods = 1,
                                  .run_duration = 30 * kSecond});
  const auto job_b = running_job({.name = "iso-b",
                                  .vni_annotation = "true",
                                  .pods = 1,
                                  .run_duration = 30 * kSecond});
  const auto pod_a = running_pod(job_a);
  const auto pod_b = running_pod(job_b);

  auto ha = stack.exec_in_pod(pod_a.meta.uid).value();
  auto hb = stack.exec_in_pod(pod_b.meta.uid).value();
  auto dom_a = stack.domain_for(ha).value();
  auto dom_b = stack.domain_for(hb).value();
  auto ep_a = dom_a.open_endpoint(pod_a.status.vni).value();
  auto ep_b = dom_b.open_endpoint(pod_b.status.vni).value();

  // A sends to B's endpoint address on A's own VNI.
  const auto st = ep_a->tsend(ep_b->addr(), 1, {}, 64, 0);
  if (pod_a.status.node == pod_b.status.node) {
    // Same node: the switch port holds both VNIs, so the packet routes,
    // but the NIC rejects the VNI mismatch at B's endpoint.
    EXPECT_TRUE(st.is_ok());
    EXPECT_GT(stack.fabric().nic(stack.node(ha.node_index).nic)
                  .counters().rx_vni_mismatch,
              0u);
  } else {
    // Distinct nodes: B's port is not authorized for A's VNI — the
    // Rosetta switch drops the packet outright.
    EXPECT_EQ(st.code(), Code::kPermissionDenied);
  }
  // Either way: nothing arrives.
  EXPECT_EQ(ep_b->trecv_sync(1, {}, 100).code(), Code::kTimeout);
}

TEST_F(StackFixture, SameJobPodsCommunicateViaOsu) {
  const auto job = running_job({.name = "osu-pair",
                                .vni_annotation = "true",
                                .pods = 2,
                                .run_duration = 60 * kSecond,
                                .spread_key = "osu"});
  const auto pods = stack.pods_of_job(job);
  auto h0 = stack.exec_in_pod(pods[0].meta.uid).value();
  auto h1 = stack.exec_in_pod(pods[1].meta.uid).value();
  auto dom0 = stack.domain_for(h0).value();
  auto dom1 = stack.domain_for(h1).value();
  auto ep0 = dom0.open_endpoint(pods[0].status.vni).value();
  auto ep1 = dom1.open_endpoint(pods[1].status.vni).value();
  auto comm = mpi::Communicator::create({ep0.get(), ep1.get()});

  osu::LatencyOptions opts;
  opts.iterations = 100;
  auto lat = osu::run_osu_latency(*comm, 8, opts);
  ASSERT_TRUE(lat.is_ok());
  EXPECT_GT(lat.value(), 1.0);
  EXPECT_LT(lat.value(), 4.0);
}

TEST_F(StackFixture, UidSpoofAttackBlockedEndToEnd) {
  // The paper's motivating attack, at full-stack level: a process in pod
  // B setuid()s inside its user namespace and tries to use pod A's VNI.
  const auto job_a = running_job({.name = "victim",
                                  .vni_annotation = "true",
                                  .pods = 1,
                                  .run_duration = 30 * kSecond});
  const auto job_b = running_job({.name = "attacker",
                                  .vni_annotation = "true",
                                  .pods = 1,
                                  .run_duration = 30 * kSecond});
  const auto victim = running_pod(job_a);
  const auto attacker_pod = running_pod(job_b);

  auto hb = stack.exec_in_pod(attacker_pod.meta.uid).value();
  auto& node = stack.node(hb.node_index);
  // The attacker may assume any mapped UID inside its user namespace...
  ASSERT_TRUE(node.kernel->setuid(hb.pid, 0).is_ok());
  // ...but endpoint allocation authenticates by netns inode, which the
  // attacker cannot change: the victim's VNI stays out of reach.
  auto dom = stack.domain_for(hb).value();
  EXPECT_EQ(dom.open_endpoint(victim.status.vni).code(),
            Code::kPermissionDenied);
}

TEST_F(StackFixture, JobDeletionReleasesVniIntoQuarantine) {
  const auto job = running_job({.name = "short",
                                .vni_annotation = "true",
                                .pods = 1,
                                .run_duration = 30 * kSecond});
  const auto vni = running_pod(job).status.vni;
  EXPECT_EQ(stack.registry().allocated_count(), 1u);
  ASSERT_TRUE(stack.delete_job(job).is_ok());
  ASSERT_TRUE(stack.wait_job_gone(job));
  EXPECT_EQ(stack.registry().allocated_count(), 0u);
  EXPECT_EQ(stack.registry().quarantined_count(stack.loop().now()), 1u);
  // CXI services for the pod are destroyed (CNI DEL ran everywhere).
  for (std::size_t i = 0; i < stack.node_count(); ++i) {
    for (const auto& svc : stack.node(i).driver->svc_list()) {
      EXPECT_TRUE(svc.vnis.empty() || svc.vnis.front() != vni)
          << "no service must still reference the released VNI";
    }
  }
  // A fresh job gets a DIFFERENT VNI while the old one is quarantined.
  const auto job2 = running_job({.name = "next",
                                 .vni_annotation = "true",
                                 .pods = 1,
                                 .run_duration = 30 * kSecond});
  EXPECT_NE(running_pod(job2).status.vni, vni);
}

TEST_F(StackFixture, VniClaimSharedAcrossJobs) {
  auto claim = stack.create_claim("default", "team-claim");
  ASSERT_TRUE(claim.is_ok());
  const auto job1 = running_job({.name = "producer",
                                 .vni_annotation = "team-claim",
                                 .pods = 1,
                                 .run_duration = 60 * kSecond});
  const auto job2 = running_job({.name = "consumer",
                                 .vni_annotation = "team-claim",
                                 .pods = 1,
                                 .run_duration = 60 * kSecond});
  const auto pod1 = running_pod(job1);
  const auto pod2 = running_pod(job2);
  ASSERT_EQ(pod1.status.vni, pod2.status.vni)
      << "jobs redeeming one claim share its VNI";

  // And they can actually communicate.
  auto h1 = stack.exec_in_pod(pod1.meta.uid).value();
  auto h2 = stack.exec_in_pod(pod2.meta.uid).value();
  auto ep1 = stack.domain_for(h1).value().open_endpoint(pod1.status.vni)
                 .value();
  auto ep2 = stack.domain_for(h2).value().open_endpoint(pod2.status.vni)
                 .value();
  ASSERT_TRUE(ep1->tsend(ep2->addr(), 9, {}, 32, 0).is_ok());
  EXPECT_TRUE(ep2->trecv_sync(9, {}, 1000).is_ok());
}

TEST_F(StackFixture, ClaimDeletionStallsUntilJobsGone) {
  auto claim = stack.create_claim("default", "sticky");
  ASSERT_TRUE(claim.is_ok());
  const auto job = running_job({.name = "user-job",
                                .vni_annotation = "sticky",
                                .pods = 1,
                                .run_duration = 30 * kSecond});
  ASSERT_TRUE(stack.delete_claim(claim.value()).is_ok());
  // The claim must survive while the job uses it.
  stack.run_for(2 * kSecond);
  EXPECT_TRUE(stack.api().get_vni_claim(claim.value()).is_ok())
      << "claim deletion must stall while a job redeems it";
  // Delete the job; the claim may then finalize.
  ASSERT_TRUE(stack.delete_job(job).is_ok());
  ASSERT_TRUE(stack.wait_job_gone(job));
  ASSERT_TRUE(stack.run_until(
      [&] { return !stack.api().get_vni_claim(claim.value()).is_ok(); },
      30 * kSecond));
}

TEST_F(StackFixture, RedeemingMissingClaimFailsToLaunch) {
  auto job = stack.submit_job({.name = "orphan",
                               .vni_annotation = "no-such-claim",
                               .pods = 1});
  ASSERT_TRUE(job.is_ok());
  // The job must not start: sync keeps failing, the CNI never gets a VNI
  // CRD, and pods never launch.
  EXPECT_FALSE(stack.wait_job_start(job.value(), 20 * kSecond));
  const auto pods = stack.pods_of_job(job.value());
  for (const auto& pod : pods) {
    EXPECT_NE(pod.status.phase, PodPhase::kRunning);
  }
}

TEST_F(StackFixture, VniEndpointDownBlocksAnnotatedJobsOnly) {
  stack.set_vni_endpoint_available(false);
  auto vni_job = stack.submit_job({.name = "needs-vni",
                                   .vni_annotation = "true",
                                   .pods = 1});
  auto plain_job = stack.submit_job({.name = "plain", .pods = 1,
                                     .run_duration = from_millis(50)});
  ASSERT_TRUE(vni_job.is_ok());
  ASSERT_TRUE(plain_job.is_ok());
  // The plain job completes; the annotated one cannot start.
  EXPECT_TRUE(stack.wait_job_complete(plain_job.value(), 60 * kSecond));
  EXPECT_FALSE(stack.wait_job_start(vni_job.value(), 5 * kSecond));
  // Service restored -> the queued job launches.
  stack.set_vni_endpoint_available(true);
  EXPECT_TRUE(stack.wait_job_start(vni_job.value(), 60 * kSecond));
}

TEST_F(StackFixture, PodsWithoutAnnotationUntouched) {
  const auto job = running_job({.name = "untouched",
                                .pods = 1,
                                .run_duration = 10 * kSecond});
  const auto pod = running_pod(job);
  EXPECT_EQ(pod.status.vni, hsn::kInvalidVni);
  for (std::size_t i = 0; i < stack.node_count(); ++i) {
    EXPECT_EQ(stack.node(i).cxi_cni->counters().services_created, 0u);
  }
  EXPECT_EQ(stack.registry().allocated_count(), 0u);
}

TEST_F(StackFixture, GraceOver30sRejectedForVniPods) {
  auto job = stack.submit_job({.name = "greedy-grace",
                               .vni_annotation = "true",
                               .pods = 1,
                               .grace_s = 120});
  ASSERT_TRUE(job.is_ok());
  // The CXI CNI plugin rejects the pod outright.
  ASSERT_TRUE(stack.run_until(
      [&] {
        const auto pods = stack.pods_of_job(job.value());
        return !pods.empty() &&
               pods.front().status.phase == PodPhase::kFailed;
      },
      60 * kSecond));
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < stack.node_count(); ++i) {
    rejected += stack.node(i).cxi_cni->counters().rejected_grace;
  }
  EXPECT_GE(rejected, 1u);
}

TEST_F(StackFixture, DrcRuntimeCredential) {
  // The DRC alternative path: a host workflow (no Kubernetes) requests an
  // isolated VNI at runtime.
  DrcService drc(stack.registry(), stack.loop());
  auto& node = stack.node(0);
  auto netns = node.kernel->create_net_namespace("drc-app");
  auto proc = node.kernel->spawn({.creds = {}, .net_ns = netns});
  auto cred = drc.request(*node.driver, *node.kernel, proc->pid(),
                          node.root_pid, "analytics");
  ASSERT_TRUE(cred.is_ok());
  EXPECT_GE(cred.value().vni, stack.config().vni.vni_min);

  ofi::Domain dom(*node.driver, stack.fabric().nic(0),
                  stack.fabric().timing(), proc->pid());
  EXPECT_TRUE(dom.open_endpoint(cred.value().vni).is_ok());
  ASSERT_TRUE(drc.release(*node.driver, node.root_pid, cred.value()).is_ok());
  EXPECT_EQ(dom.open_endpoint(cred.value().vni).code(),
            Code::kPermissionDenied);
}

TEST_F(StackFixture, LegacyModeClusterIsSpoofable) {
  // Ablation: the same cluster with the stock (legacy) driver on every
  // node.  The UID spoof now succeeds — the paper's justification for
  // the netns extension, reproduced end-to-end.
  StackConfig cfg;
  cfg.auth_mode = cxi::AuthMode::kLegacyInNamespace;
  SlingshotStack legacy(cfg);
  auto job = legacy.submit_job({.name = "victim",
                                .vni_annotation = "true",
                                .pods = 1,
                                .run_duration = 30 * kSecond});
  ASSERT_TRUE(job.is_ok());
  ASSERT_TRUE(legacy.wait_job_start(job.value()));
  k8s::Pod victim;
  for (const auto& pod : legacy.pods_of_job(job.value())) {
    if (pod.status.phase == PodPhase::kRunning) victim = pod;
  }

  // NOTE: with netns-member services the legacy driver simply cannot
  // authenticate anybody (netns members are ignored) — pods would fail.
  // A realistic legacy deployment uses UID members, so install one, as a
  // legacy operator would have.
  auto& node0 = legacy.node(0);
  cxi::CxiServiceDesc desc;
  desc.name = "legacy-uid-svc";
  desc.members = {{cxi::MemberType::kUid, 1000}};
  desc.vnis = {victim.status.vni};
  ASSERT_TRUE(node0.driver->svc_alloc(node0.root_pid, desc).is_ok());

  // Attacker container on node 0 setuid()s to 1000 and wins.
  auto uns = node0.kernel->create_user_namespace({{0, 300'000, 65'536}},
                                                 {{0, 300'000, 65'536}});
  auto netns = node0.kernel->create_net_namespace("evil");
  auto attacker = node0.kernel->spawn(
      {.creds = {0, 0}, .user_ns = uns, .net_ns = netns});
  ASSERT_TRUE(node0.kernel->setuid(attacker->pid(), 1000).is_ok());
  ofi::Domain dom(*node0.driver, legacy.fabric().nic(0),
                  legacy.fabric().timing(), attacker->pid());
  EXPECT_TRUE(dom.open_endpoint(victim.status.vni).is_ok())
      << "legacy mode must be spoofable (that is the paper's point)";
}

}  // namespace
}  // namespace shs::core
