// mpi_osu_test.cpp — mini-MPI semantics and OSU workload sanity: the
// bandwidth curve must saturate near 200 Gbps and latency must sit in the
// ~2 us regime for small messages (the shapes behind Figs 5 and 7).
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "cxi/driver.hpp"
#include "hsn/fabric.hpp"
#include "mpi/comm.hpp"
#include "ofi/domain.hpp"
#include "osu/osu.hpp"

namespace shs {
namespace {

using cxi::kDefaultVni;

/// Two hosts, default service, one endpoint per rank.
struct MpiFixture : ::testing::Test {
  void SetUp() override {
    fabric = hsn::Fabric::create(2);
    for (int i = 0; i < 2; ++i) {
      kernels.push_back(std::make_unique<linuxsim::Kernel>());
      drivers.push_back(std::make_unique<cxi::CxiDriver>(
          *kernels[i], fabric->nic(i),
          fabric->switch_for(static_cast<hsn::NicAddr>(i)),
          cxi::AuthMode::kNetnsExtended));
      pids.push_back(kernels[i]->spawn({})->pid());
      domains.push_back(std::make_unique<ofi::Domain>(
          *drivers[i], fabric->nic(i), fabric->timing(), pids[i]));
      auto ep = domains[i]->open_endpoint(kDefaultVni);
      ASSERT_TRUE(ep.is_ok());
      endpoints.push_back(std::move(ep).value());
    }
    comm = mpi::Communicator::create({endpoints[0].get(),
                                      endpoints[1].get()});
  }

  std::unique_ptr<hsn::Fabric> fabric;
  std::vector<std::unique_ptr<linuxsim::Kernel>> kernels;
  std::vector<std::unique_ptr<cxi::CxiDriver>> drivers;
  std::vector<linuxsim::Pid> pids;
  std::vector<std::unique_ptr<ofi::Domain>> domains;
  std::vector<std::unique_ptr<ofi::Endpoint>> endpoints;
  std::unique_ptr<mpi::Communicator> comm;
};

TEST_F(MpiFixture, SendRecvWithPayload) {
  const char msg[] = "mpi-hello";
  std::array<std::byte, 32> buf{};
  std::thread receiver([&] {
    auto r = comm->rank(1).recv(0, 7, buf);
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(r.value().size, sizeof(msg));
  });
  ASSERT_TRUE(comm->rank(0)
                  .send(1, 7, std::as_bytes(std::span(msg)), sizeof(msg))
                  .is_ok());
  receiver.join();
  EXPECT_EQ(std::memcmp(buf.data(), msg, sizeof(msg)), 0);
}

TEST_F(MpiFixture, SourceMatchingSeparatesSenders) {
  // Rank 1 receives specifically from rank 0 even if tags collide across
  // sources (wire tags encode the source rank).
  std::thread receiver([&] {
    auto r = comm->rank(1).recv(0, 5, {});
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(r.value().source, 0);
  });
  ASSERT_TRUE(comm->rank(0).send(1, 5, {}, 16).is_ok());
  receiver.join();
}

TEST_F(MpiFixture, BadRankRejected) {
  EXPECT_EQ(comm->rank(0).send(5, 1, {}, 8).code(), Code::kInvalidArgument);
  EXPECT_EQ(comm->rank(0).recv(-1, 1, {}).code(), Code::kInvalidArgument);
}

TEST_F(MpiFixture, VirtualClockMergesOnRecv) {
  std::thread receiver([&] {
    auto r = comm->rank(1).recv(0, 1, {});
    ASSERT_TRUE(r.is_ok());
    // After receiving, rank 1's clock includes the wire time.
    EXPECT_GT(comm->rank(1).vt(), from_micros(1));
  });
  ASSERT_TRUE(comm->rank(0).send(1, 1, {}, 4096).is_ok());
  receiver.join();
}

TEST_F(MpiFixture, BarrierSynchronizes) {
  std::atomic<int> phase{0};
  std::thread t1([&] {
    EXPECT_TRUE(comm->rank(1).barrier().is_ok());
    phase.fetch_add(1);
    EXPECT_TRUE(comm->rank(1).barrier().is_ok());
  });
  EXPECT_TRUE(comm->rank(0).barrier().is_ok());
  phase.fetch_add(1);
  EXPECT_TRUE(comm->rank(0).barrier().is_ok());
  t1.join();
  EXPECT_EQ(phase.load(), 2);
}

TEST_F(MpiFixture, RepeatedBarriersDoNotCrosstalk) {
  std::thread t1([&] {
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(comm->rank(1).barrier().is_ok());
    }
  });
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(comm->rank(0).barrier().is_ok());
  }
  t1.join();
}

// -- OSU workloads. -----------------------------------------------------------

TEST_F(MpiFixture, OsuBwSmallMessagesOverheadBound) {
  osu::BwOptions opts;
  opts.iterations = 100;
  opts.window = 16;
  auto bw = osu::run_osu_bw(*comm, 1, opts);
  ASSERT_TRUE(bw.is_ok());
  // ~1 B / ~0.3 us => a few MB/s.
  EXPECT_GT(bw.value(), 0.5);
  EXPECT_LT(bw.value(), 50.0);
}

TEST_F(MpiFixture, OsuBwLargeMessagesSaturateLineRate) {
  osu::BwOptions opts;
  opts.iterations = 40;
  opts.window = 16;
  auto bw = osu::run_osu_bw(*comm, 1 << 20, opts);
  ASSERT_TRUE(bw.is_ok());
  // 200 Gbps = 25'000 MB/s; expect within ~15 %.
  EXPECT_GT(bw.value(), 20'000.0);
  EXPECT_LT(bw.value(), 26'000.0);
}

TEST_F(MpiFixture, OsuBwMonotonicOverSizes) {
  osu::BwOptions opts;
  opts.iterations = 50;
  opts.window = 8;
  double prev = 0.0;
  for (std::uint64_t size : {1ULL << 4, 1ULL << 10, 1ULL << 16, 1ULL << 20}) {
    auto bw = osu::run_osu_bw(*comm, size, opts);
    ASSERT_TRUE(bw.is_ok());
    EXPECT_GT(bw.value(), prev) << "throughput must grow with size";
    prev = bw.value();
  }
}

TEST_F(MpiFixture, OsuLatencySmallMessagesFewMicroseconds) {
  osu::LatencyOptions opts;
  opts.iterations = 200;
  auto lat = osu::run_osu_latency(*comm, 1, opts);
  ASSERT_TRUE(lat.is_ok());
  EXPECT_GT(lat.value(), 1.0);
  EXPECT_LT(lat.value(), 4.0);  // Slingshot-class small-message latency
}

TEST_F(MpiFixture, OsuLatencyGrowsWithSize) {
  osu::LatencyOptions opts;
  opts.iterations = 100;
  auto small = osu::run_osu_latency(*comm, 1, opts);
  auto large = osu::run_osu_latency(*comm, 1 << 20, opts);
  ASSERT_TRUE(small.is_ok());
  ASSERT_TRUE(large.is_ok());
  EXPECT_GT(large.value(), small.value() * 5.0);
  // 1 MiB one-way ~= small-message latency + ~42 us serialization.
  EXPECT_NEAR(large.value(), small.value() + 42.3, 6.0);
}

TEST_F(MpiFixture, OsuRequiresTwoRanks) {
  auto solo = mpi::Communicator::create({endpoints[0].get()});
  EXPECT_EQ(osu::run_osu_bw(*solo, 1, {}).code(), Code::kInvalidArgument);
  EXPECT_EQ(osu::run_osu_latency(*solo, 1, {}).code(),
            Code::kInvalidArgument);
}

}  // namespace
}  // namespace shs
