// shard_engine_test.cpp — conservative-window parallel data plane
// (hsn::ShardEngine): domain partitioning, lookahead derivation, window
// accounting, and — the reason the barrier observer exists — coherent
// multi-field counter snapshots while worker threads are live.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "hsn/fabric.hpp"
#include "hsn/shard_engine.hpp"
#include "util/units.hpp"

namespace shs::hsn {
namespace {

constexpr Vni kVni = 42;

TimingConfig flat_timing() {
  TimingConfig t;
  t.jitter_amplitude = 0.0;
  t.run_bias_amplitude = 0.0;
  return t;
}

std::vector<EndpointId> open_endpoints(Fabric& f, std::size_t nodes) {
  std::vector<EndpointId> eps;
  eps.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    const auto addr = static_cast<NicAddr>(i);
    EXPECT_TRUE(f.switch_for(addr)->authorize_vni(addr, kVni).is_ok());
    eps.push_back(
        f.nic(addr).alloc_endpoint(kVni, TrafficClass::kBulkData).value());
  }
  return eps;
}

void post_all_pairs(ShardEngine& engine, const std::vector<EndpointId>& eps,
                    std::size_t nodes, int rounds) {
  const std::size_t half = nodes / 2;
  for (int k = 0; k < rounds; ++k) {
    for (std::size_t s = 0; s < half; ++s) {
      const auto dst = static_cast<NicAddr>(half + s);
      ASSERT_TRUE(engine
                      .post_send(static_cast<NicAddr>(s), eps[s], dst,
                                 eps[dst], static_cast<std::uint64_t>(k),
                                 16 * 1024, 0)
                      .is_ok());
    }
  }
}

TEST(ShardEngine, SingleSwitchCollapsesToOneInlineDomain) {
  TopologyConfig topo;  // kSingleSwitch
  auto f = Fabric::create(8, flat_timing(), 0x51, topo);
  ShardEngine engine(*f, 4);
  // One domain => nothing to overlap; the pool is never spawned and
  // every window runs inline on the driver thread.
  EXPECT_EQ(engine.domain_count(), 1u);
  EXPECT_EQ(engine.lookahead(), 0);  // no cross-domain link => unbounded

  const auto eps = open_endpoints(*f, 8);
  post_all_pairs(engine, eps, 8, 4);
  engine.flush();
  EXPECT_EQ(engine.in_flight(), 0u);
  EXPECT_EQ(f->total_counters().delivered, 4u * 4u);
  EXPECT_EQ(f->total_counters().dropped_total(), 0u);
  EXPECT_EQ(engine.attempts_injected(), 4u * 4u);
  // Unbounded window: the whole flush is a single barrier.
  EXPECT_EQ(engine.windows_run(), 1u);
}

TEST(ShardEngine, DragonflyPartitionsPerGroupWithPositiveLookahead) {
  TopologyConfig topo;
  topo.kind = TopologyKind::kDragonfly;
  topo.nodes_per_switch = 4;
  topo.switches_per_group = 4;
  auto f = Fabric::create(64, flat_timing(), 0x52, topo);
  ShardEngine engine(*f, 4);
  // 16 switches / 4 per group => 4 sequential domains.
  EXPECT_EQ(engine.domain_count(), 4u);
  EXPECT_EQ(engine.threads(), 4);
  EXPECT_GT(engine.lookahead(), 0);

  const auto eps = open_endpoints(*f, 64);
  post_all_pairs(engine, eps, 64, 8);
  engine.flush();
  EXPECT_EQ(engine.in_flight(), 0u);
  EXPECT_EQ(f->total_counters().delivered, 32u * 8u);
  EXPECT_EQ(f->total_counters().dropped_total(), 0u);
  // Bounded lookahead forces the flush through many conservative
  // windows, each one a real barrier.
  EXPECT_GT(engine.windows_run(), 4u);
}

TEST(ShardEngine, FlushWithNothingStagedIsANoOp) {
  TopologyConfig topo;
  topo.kind = TopologyKind::kDragonfly;
  topo.nodes_per_switch = 4;
  topo.switches_per_group = 4;
  auto f = Fabric::create(64, flat_timing(), 0x53, topo);
  ShardEngine engine(*f, 2);
  engine.flush();
  EXPECT_EQ(engine.windows_run(), 0u);
  EXPECT_EQ(engine.attempts_injected(), 0u);
}

TEST(ShardEngine, PostSendValidatesEndpointLikeTheNic) {
  TopologyConfig topo;
  auto f = Fabric::create(4, flat_timing(), 0x54, topo);
  const auto eps = open_endpoints(*f, 4);
  ShardEngine engine(*f, 1);
  // Bogus source endpoint is rejected at staging time, not at flush.
  EXPECT_FALSE(
      engine.post_send(0, static_cast<EndpointId>(9999), 1, eps[1], 7, 64, 0)
          .is_ok());
  EXPECT_EQ(engine.attempts_injected(), 0u);
}

// The tentpole satellite: counters are snapshotted only at window
// barriers, where the workers are quiescent — so a multi-field read
// (injected vs delivered vs per-reason drops) can never observe a torn
// in-between state.  This runs with 4 live worker threads, a lossy
// fault profile AND the retransmit protocol armed, and asserts the
// cross-field conservation law at every single barrier:
//
//   attempts_injected == delivered + dropped_total + in_flight
//
// (ACK-lost attempts count as delivered at the switch; each retransmit
// is a fresh counted attempt.)  At flush exit in_flight is zero and the
// law collapses to injected == delivered + sum-of-drop-reasons.
TEST(ShardEngine, CounterInvariantHoldsAtEveryBarrierWithWorkersLive) {
  TopologyConfig topo;
  topo.kind = TopologyKind::kDragonfly;
  topo.nodes_per_switch = 4;
  topo.switches_per_group = 4;
  topo.routing = RoutingPolicy::kUgal;
  auto f = Fabric::create(64, flat_timing(), 0x55, topo);

  FaultProfile lossy;
  lossy.drop_rate = 0.03;
  lossy.ack_loss_rate = 0.01;
  f->set_fault_profile(lossy);
  ReliabilityConfig rel;
  rel.enabled = true;
  f->set_reliability(rel);

  ShardEngine engine(*f, 4);
  ASSERT_EQ(engine.domain_count(), 4u);

  std::uint64_t barriers_checked = 0;
  engine.set_barrier_observer([&] {
    const auto totals = f->total_counters();
    ASSERT_EQ(engine.attempts_injected(),
              totals.delivered + totals.dropped_total() + engine.in_flight())
        << "torn snapshot at barrier " << barriers_checked;
    ++barriers_checked;
  });

  const auto eps = open_endpoints(*f, 64);
  post_all_pairs(engine, eps, 64, 12);
  engine.flush();

  EXPECT_EQ(barriers_checked, engine.windows_run());
  EXPECT_GT(barriers_checked, 4u);
  EXPECT_EQ(engine.in_flight(), 0u);
  const auto totals = f->total_counters();
  EXPECT_EQ(engine.attempts_injected(),
            totals.delivered + totals.dropped_total());
  // The episode actually exercised the loss + retransmit machinery.
  EXPECT_GT(f->reliability_totals().retransmits, 0u);
  EXPECT_GT(engine.attempts_injected(), 32u * 12u);
}

// Retransmits spawned by one flush may outlive the posts that caused
// them; flush() must not return while any attempt is still in flight.
TEST(ShardEngine, FlushDrainsRetransmitsBeforeReturning) {
  TopologyConfig topo;
  topo.kind = TopologyKind::kDragonfly;
  topo.nodes_per_switch = 4;
  topo.switches_per_group = 4;
  auto f = Fabric::create(64, flat_timing(), 0x56, topo);
  FaultProfile lossy;
  lossy.drop_rate = 0.05;
  f->set_fault_profile(lossy);
  ReliabilityConfig rel;
  rel.enabled = true;
  f->set_reliability(rel);

  ShardEngine engine(*f, 2);
  const auto eps = open_endpoints(*f, 64);
  for (int burst = 0; burst < 3; ++burst) {
    post_all_pairs(engine, eps, 64, 4);
    engine.flush();
    EXPECT_EQ(engine.in_flight(), 0u);
    const auto totals = f->total_counters();
    EXPECT_EQ(engine.attempts_injected(),
              totals.delivered + totals.dropped_total());
  }
  EXPECT_GT(f->reliability_totals().retransmits, 0u);
}

// A chaos burst grows the pooled staging (item pools, run-queue refs,
// outboxes, notice queues) to the burst's high-water mark; the
// post-flush trim must hand that memory back once smaller flushes prove
// it dead, instead of pinning O(burst) capacity for the engine's
// remaining lifetime.
TEST(ShardEngine, LossyBurstDoesNotPinStagingMemory) {
  TopologyConfig topo;
  topo.kind = TopologyKind::kDragonfly;
  topo.nodes_per_switch = 4;
  topo.switches_per_group = 4;
  topo.routing = RoutingPolicy::kUgal;
  auto f = Fabric::create(64, flat_timing(), 0x57, topo);
  FaultProfile lossy;
  lossy.drop_rate = 0.05;
  lossy.ack_loss_rate = 0.02;
  f->set_fault_profile(lossy);
  ReliabilityConfig rel;
  rel.enabled = true;
  f->set_reliability(rel);

  ShardEngine engine(*f, 2);
  const auto eps = open_endpoints(*f, 64);

  // Burst: a deep backlog staged in one go, flushed under armed loss so
  // retransmits and notices grow every staging container at once.
  post_all_pairs(engine, eps, 64, 64);
  engine.flush();
  EXPECT_EQ(engine.in_flight(), 0u);
  const std::size_t burst_bytes = engine.staging_bytes_reserved();
  ASSERT_GT(burst_bytes, 0u);

  // Steady state: small flushes.  The HWM trim needs one flush to
  // observe the smaller mark and later ones to release above it.
  for (int i = 0; i < 8; ++i) {
    post_all_pairs(engine, eps, 64, 1);
    engine.flush();
    EXPECT_EQ(engine.in_flight(), 0u);
  }
  const std::size_t steady_bytes = engine.staging_bytes_reserved();
  EXPECT_GT(engine.stats().staging_trims, 0u);
  // The burst backlog was 64x the steady-state flush; anything within
  // 2x of the burst capacity means the trim failed to release it.
  EXPECT_LT(steady_bytes, burst_bytes / 2);
}

}  // namespace
}  // namespace shs::hsn
