// topology_test.cpp — multi-switch fabric topologies: routing
// correctness (every NIC pair reachable under each topology),
// deterministic path selection for a fixed seed, cross-switch vs
// same-switch latency ordering, edge VNI enforcement across switches,
// and topology-aware pod placement through the full stack.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/stack.hpp"
#include "hsn/fabric.hpp"

namespace shs::hsn {
namespace {

constexpr Vni kVni = 777;

/// Deterministic timing (no jitter, no run bias) so latency comparisons
/// and path-equality checks are exact.
TimingConfig flat_timing() {
  TimingConfig t;
  t.jitter_amplitude = 0.0;
  t.run_bias_amplitude = 0.0;
  return t;
}

/// Authorizes `vni` for every NIC on its own edge switch.
void authorize_all(Fabric& f, Vni vni) {
  for (std::size_t i = 0; i < f.node_count(); ++i) {
    const auto addr = static_cast<NicAddr>(i);
    ASSERT_TRUE(f.switch_for(addr)->authorize_vni(addr, vni).is_ok());
  }
}

/// Opens one endpoint per NIC, all on `vni`.
std::vector<EndpointId> open_endpoints(Fabric& f, Vni vni) {
  std::vector<EndpointId> eps;
  for (std::size_t i = 0; i < f.node_count(); ++i) {
    auto ep = f.nic(static_cast<NicAddr>(i))
                  .alloc_endpoint(vni, TrafficClass::kBestEffort);
    EXPECT_TRUE(ep.is_ok());
    eps.push_back(ep.value());
  }
  return eps;
}

struct NamedTopology {
  const char* name;
  TopologyConfig config;
  std::size_t nodes;
  std::size_t expected_switches;
};

std::vector<NamedTopology> topologies_under_test() {
  TopologyConfig single;  // one switch regardless of size

  TopologyConfig fat_tree;
  fat_tree.kind = TopologyKind::kFatTree;
  fat_tree.nodes_per_switch = 4;
  fat_tree.spines = 2;  // 12 nodes -> 3 leaves + 2 spines

  TopologyConfig dragonfly;
  dragonfly.kind = TopologyKind::kDragonfly;
  dragonfly.nodes_per_switch = 2;
  dragonfly.switches_per_group = 2;  // 12 nodes -> 6 edge, 3 groups

  return {{"single-switch", single, 12, 1},
          {"fat-tree", fat_tree, 12, 5},
          {"dragonfly", dragonfly, 12, 6}};
}

TEST(Topology, EveryNicPairReachable) {
  for (const NamedTopology& t : topologies_under_test()) {
    SCOPED_TRACE(t.name);
    auto f = Fabric::create(t.nodes, flat_timing(), 0x70b0, t.config);
    EXPECT_EQ(f->switch_count(), t.expected_switches);
    authorize_all(*f, kVni);
    const auto eps = open_endpoints(*f, kVni);

    std::uint64_t delivered = 0;
    for (std::size_t i = 0; i < t.nodes; ++i) {
      for (std::size_t j = 0; j < t.nodes; ++j) {
        if (i == j) continue;
        auto sent = f->nic(static_cast<NicAddr>(i))
                        .post_send(eps[i], static_cast<NicAddr>(j), eps[j],
                                   /*tag=*/i * 100 + j, /*size=*/256, {},
                                   /*vt=*/0);
        ASSERT_TRUE(sent.is_ok()) << "send " << i << " -> " << j;
        auto pkt = f->nic(static_cast<NicAddr>(j)).wait_rx(eps[j], 1000);
        ASSERT_TRUE(pkt.is_ok()) << "recv " << i << " -> " << j;
        EXPECT_EQ(pkt.value().tag, i * 100 + j);
        const bool same_switch =
            f->home_switch(static_cast<NicAddr>(i)) ==
            f->home_switch(static_cast<NicAddr>(j));
        if (same_switch) {
          EXPECT_EQ(pkt.value().hops, 0) << i << " -> " << j;
        } else {
          EXPECT_GE(pkt.value().hops, 1) << i << " -> " << j;
          EXPECT_LE(pkt.value().hops, 3) << i << " -> " << j;
        }
        ++delivered;
      }
    }
    EXPECT_EQ(f->total_counters().delivered, delivered);
    EXPECT_EQ(f->total_counters().dropped_total(), 0u);
    if (t.expected_switches == 1) {
      EXPECT_EQ(f->cross_switch_bytes(), 0u);
    } else {
      EXPECT_GT(f->cross_switch_bytes(), 0u);
    }
  }
}

/// Replays a fixed cross-switch traffic pattern and returns the arrival
/// timestamps plus hop counts — the observable signature of the paths
/// taken.
std::vector<std::pair<SimTime, int>> path_signature(
    const TopologyConfig& topo, std::uint64_t seed) {
  auto f = Fabric::create(16, flat_timing(), seed, topo);
  authorize_all(*f, kVni);
  const auto eps = open_endpoints(*f, kVni);
  std::vector<std::pair<SimTime, int>> sig;
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < 16; j += 3) {
      if (i == j) continue;
      auto sent = f->nic(static_cast<NicAddr>(i))
                      .post_send(eps[i], static_cast<NicAddr>(j), eps[j],
                                 /*tag=*/1, /*size=*/4096, {}, /*vt=*/0);
      EXPECT_TRUE(sent.is_ok());
      auto pkt = f->nic(static_cast<NicAddr>(j)).wait_rx(eps[j], 1000);
      EXPECT_TRUE(pkt.is_ok());
      sig.emplace_back(pkt.value().arrival_vt,
                       static_cast<int>(pkt.value().hops));
    }
  }
  return sig;
}

TEST(Topology, PathSelectionIsDeterministicForFixedSeed) {
  TopologyConfig fat_tree;
  fat_tree.kind = TopologyKind::kFatTree;
  fat_tree.nodes_per_switch = 4;
  fat_tree.spines = 4;

  const auto a = path_signature(fat_tree, 0xfeed);
  const auto b = path_signature(fat_tree, 0xfeed);
  EXPECT_EQ(a, b);

  TopologyConfig dragonfly;
  dragonfly.kind = TopologyKind::kDragonfly;
  dragonfly.nodes_per_switch = 2;
  dragonfly.switches_per_group = 4;
  const auto c = path_signature(dragonfly, 0xbeef);
  const auto d = path_signature(dragonfly, 0xbeef);
  EXPECT_EQ(c, d);
}

TEST(Topology, CrossSwitchLatencyExceedsSameSwitch) {
  TopologyConfig fat_tree;
  fat_tree.kind = TopologyKind::kFatTree;
  fat_tree.nodes_per_switch = 4;
  fat_tree.spines = 2;
  auto f = Fabric::create(8, flat_timing(), 0x1a7, fat_tree);
  authorize_all(*f, kVni);
  const auto eps = open_endpoints(*f, kVni);

  // NICs 0 and 1 share leaf 0; NIC 4 sits on leaf 1.
  ASSERT_EQ(f->home_switch(0), f->home_switch(1));
  ASSERT_NE(f->home_switch(0), f->home_switch(4));

  ASSERT_TRUE(
      f->nic(0).post_send(eps[0], 1, eps[1], 1, 4096, {}, 0).is_ok());
  auto same = f->nic(1).wait_rx(eps[1], 1000);
  ASSERT_TRUE(same.is_ok());

  ASSERT_TRUE(
      f->nic(0).post_send(eps[0], 4, eps[4], 1, 4096, {}, 0).is_ok());
  auto cross = f->nic(4).wait_rx(eps[4], 1000);
  ASSERT_TRUE(cross.is_ok());

  EXPECT_EQ(same.value().hops, 0);
  EXPECT_EQ(cross.value().hops, 2);  // leaf -> spine -> leaf
  EXPECT_GT(cross.value().arrival_vt, same.value().arrival_vt);
}

TEST(Topology, VniEnforcementHoldsAcrossSwitches) {
  TopologyConfig fat_tree;
  fat_tree.kind = TopologyKind::kFatTree;
  fat_tree.nodes_per_switch = 2;
  fat_tree.spines = 1;
  auto f = Fabric::create(4, flat_timing(), 0x5ec, fat_tree);

  // Authorize only the source's edge port: the destination edge switch
  // must still drop the packet (edge enforcement on both ends).
  ASSERT_TRUE(f->switch_for(0)->authorize_vni(0, kVni).is_ok());
  auto ep0 = f->nic(0).alloc_endpoint(kVni, TrafficClass::kBestEffort);
  auto ep2 = f->nic(2).alloc_endpoint(kVni, TrafficClass::kBestEffort);
  auto sent = f->nic(0).post_send(ep0.value(), 2, ep2.value(), 1, 64, {}, 0);
  EXPECT_EQ(sent.code(), Code::kPermissionDenied);
  // The drop is accounted where it happened: the destination edge switch.
  EXPECT_EQ(f->switch_for(2)->counters().dropped_dst_unauthorized, 1u);
  EXPECT_EQ(f->total_counters().dropped_dst_unauthorized, 1u);
  EXPECT_EQ(f->total_counters().delivered, 0u);

  // Unauthorized *source* is refused before any cross-switch hop.
  auto ep1 = f->nic(1).alloc_endpoint(kVni, TrafficClass::kBestEffort);
  auto sent2 =
      f->nic(1).post_send(ep1.value(), 2, ep2.value(), 1, 64, {}, 0);
  EXPECT_EQ(sent2.code(), Code::kPermissionDenied);
  EXPECT_EQ(f->switch_for(1)->counters().dropped_src_unauthorized, 1u);
}

TEST(Topology, SchedulerPrefersSameSwitchForSpreadGroups) {
  core::StackConfig cfg;
  cfg.nodes = 8;
  cfg.topology.kind = TopologyKind::kFatTree;
  cfg.topology.nodes_per_switch = 4;
  cfg.topology.spines = 2;
  core::SlingshotStack stack(cfg);

  auto job = stack.submit_job({.name = "ranks",
                               .vni_annotation = "true",
                               .pods = 4,
                               .run_duration = 3600 * kSecond,
                               .spread_key = "ranks"});
  ASSERT_TRUE(job.is_ok());
  ASSERT_TRUE(stack.run_until(
      [&] {
        int running = 0;
        for (const auto& p : stack.pods_of_job(job.value())) {
          if (p.status.phase == k8s::PodPhase::kRunning) ++running;
        }
        return running == 4;
      },
      120 * kSecond));

  // Four pods, four distinct nodes, all attached to the same leaf switch.
  std::set<std::string> nodes;
  std::set<SwitchId> switches;
  for (const auto& p : stack.pods_of_job(job.value())) {
    nodes.insert(p.status.node);
    for (std::size_t n = 0; n < stack.node_count(); ++n) {
      if (stack.node(n).name == p.status.node) {
        switches.insert(stack.fabric().home_switch(stack.node(n).nic));
      }
    }
  }
  EXPECT_EQ(nodes.size(), 4u);
  EXPECT_EQ(switches.size(), 1u);
}

}  // namespace
}  // namespace shs::hsn
