// property_test.cpp — parameterized property sweeps (TEST_P) over the
// stack's invariants: VNI exclusivity under arbitrary acquire/release
// interleavings, switch isolation over random traffic matrices, timing
// monotonicity, and DB atomicity under random crash points.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/vni_registry.hpp"
#include "db/database.hpp"
#include "hsn/fabric.hpp"
#include "util/rng.hpp"

namespace shs {
namespace {

// ---------------------------------------------------------------------------
// Property: for any interleaving of acquire/release, (a) an allocated VNI
// is never double-granted, and (b) a released VNI is never re-granted
// within the quarantine window.

struct VniChurnCase {
  std::uint64_t seed;
  int steps;
};

class VniChurnProperty : public ::testing::TestWithParam<VniChurnCase> {};

TEST_P(VniChurnProperty, ExclusivityAndQuarantineHold) {
  const auto param = GetParam();
  Rng rng(param.seed);
  db::Database database;
  core::VniRegistryConfig cfg{.vni_min = 1, .vni_max = 40,
                              .quarantine = 30 * kSecond};
  core::VniRegistry reg(database, cfg);

  std::map<std::string, hsn::Vni> held;              // owner -> vni
  std::map<hsn::Vni, SimTime> released_at;           // vni -> release time
  SimTime now = 0;
  int next_owner = 0;

  for (int step = 0; step < param.steps; ++step) {
    now += static_cast<SimTime>(rng.uniform_u64(5 * kSecond));
    const bool do_acquire = held.empty() || rng.uniform() < 0.55;
    if (do_acquire) {
      const std::string owner = "own-" + std::to_string(next_owner++);
      auto vni = reg.acquire(owner, now);
      if (!vni.is_ok()) {
        ASSERT_EQ(vni.code(), Code::kResourceExhausted);
        continue;
      }
      // (a) No double grant among currently-held VNIs.
      for (const auto& [o, v] : held) {
        ASSERT_NE(v, vni.value()) << "VNI " << v << " double-granted";
      }
      // (b) Quarantine respected.
      const auto it = released_at.find(vni.value());
      if (it != released_at.end()) {
        ASSERT_GE(now - it->second, cfg.quarantine)
            << "VNI re-granted inside the quarantine window";
        released_at.erase(it);
      }
      held.emplace(owner, vni.value());
    } else {
      auto pick = held.begin();
      std::advance(pick,
                   static_cast<long>(rng.uniform_u64(held.size())));
      ASSERT_TRUE(reg.release(pick->first, now).is_ok());
      released_at[pick->second] = now;
      held.erase(pick);
    }
  }
  // Registry and model agree on the allocation count.
  EXPECT_EQ(reg.allocated_count(), held.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VniChurnProperty,
    ::testing::Values(VniChurnCase{1, 200}, VniChurnCase{2, 200},
                      VniChurnCase{3, 400}, VniChurnCase{5, 400},
                      VniChurnCase{8, 600}, VniChurnCase{13, 600},
                      VniChurnCase{21, 800}, VniChurnCase{34, 1000}));

// ---------------------------------------------------------------------------
// Property: for any random assignment of VNIs to ports and any random
// traffic matrix, the switch delivers a packet iff BOTH ports hold the
// packet's VNI; cross-VNI delivery count is always zero.

class SwitchIsolationProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SwitchIsolationProperty, DeliveryIffBothPortsAuthorized) {
  Rng rng(GetParam());
  constexpr std::size_t kNodes = 4;
  constexpr hsn::Vni kVnis[] = {10, 20, 30};
  auto fabric = hsn::Fabric::create(kNodes);

  // Random ACLs.
  std::set<std::pair<hsn::NicAddr, hsn::Vni>> acl;
  for (std::size_t port = 0; port < kNodes; ++port) {
    for (const hsn::Vni vni : kVnis) {
      if (rng.uniform() < 0.5) {
        const auto addr = static_cast<hsn::NicAddr>(port);
        ASSERT_TRUE(fabric->switch_for(addr)->authorize_vni(addr, vni)
                        .is_ok());
        acl.insert({static_cast<hsn::NicAddr>(port), vni});
      }
    }
  }
  // One endpoint per (node, vni).
  std::map<std::pair<std::size_t, hsn::Vni>, hsn::EndpointId> eps;
  for (std::size_t n = 0; n < kNodes; ++n) {
    for (const hsn::Vni vni : kVnis) {
      auto ep = fabric->nic(n).alloc_endpoint(
          vni, hsn::TrafficClass::kBestEffort);
      ASSERT_TRUE(ep.is_ok());
      eps[{n, vni}] = ep.value();
    }
  }

  // Random traffic matrix.
  for (int i = 0; i < 300; ++i) {
    const auto src = static_cast<std::size_t>(rng.uniform_u64(kNodes));
    auto dst = static_cast<std::size_t>(rng.uniform_u64(kNodes));
    if (dst == src) dst = (dst + 1) % kNodes;
    const hsn::Vni vni = kVnis[rng.uniform_u64(3)];
    const bool should_deliver =
        acl.contains({static_cast<hsn::NicAddr>(src), vni}) &&
        acl.contains({static_cast<hsn::NicAddr>(dst), vni});
    auto r = fabric->nic(src).post_send(
        eps[{src, vni}], static_cast<hsn::NicAddr>(dst), eps[{dst, vni}],
        /*tag=*/static_cast<std::uint64_t>(i), 64, {}, 0);
    EXPECT_EQ(r.is_ok(), should_deliver)
        << "src=" << src << " dst=" << dst << " vni=" << vni;
    if (should_deliver) {
      auto pkt = fabric->nic(dst).wait_rx(eps[{dst, vni}], 1000);
      ASSERT_TRUE(pkt.is_ok());
      EXPECT_EQ(pkt.value().vni, vni);
    }
  }
  // No NIC ever saw a packet for a foreign VNI.
  for (std::size_t n = 0; n < kNodes; ++n) {
    EXPECT_EQ(fabric->nic(n).counters().rx_vni_mismatch, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SwitchIsolationProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// ---------------------------------------------------------------------------
// Property: wire time is monotone in message size and superadditive-free:
// t(a) <= t(b) for a <= b, and jitter stays within the configured bounds.

class TimingMonotoneProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimingMonotoneProperty, SerializeTimeMonotone) {
  hsn::TimingModel tm({});
  std::uint64_t prev_size = 0;
  SimDuration prev_time = 0;
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t size = rng.uniform_u64(1 << 22);
    const SimDuration t = tm.serialize_time(size);
    if (size >= prev_size) {
      // monotone within jitter-free serialize_time
      EXPECT_GE(t + 1, prev_time * (size >= prev_size ? 1 : 0));
    }
    prev_size = size;
    prev_time = t;
    EXPECT_GE(t, 0);
  }
}

TEST_P(TimingMonotoneProperty, JitterStaysBounded) {
  hsn::TimingConfig cfg;
  cfg.jitter_amplitude = 0.01;
  cfg.run_bias_amplitude = 0.0;  // isolate per-sample jitter
  hsn::TimingModel tm(cfg, GetParam());
  for (int i = 0; i < 2000; ++i) {
    const SimDuration d = tm.jittered(kMicrosecond);
    EXPECT_GE(d, from_micros(0.99) - 1);
    EXPECT_LE(d, from_micros(1.01) + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TimingMonotoneProperty,
                         ::testing::Values(7, 14, 21, 28));

// ---------------------------------------------------------------------------
// Property: whatever the crash point, recovery restores exactly the set of
// journaled commits (atomicity + durability).

class CrashRecoveryProperty : public ::testing::TestWithParam<int> {};

TEST_P(CrashRecoveryProperty, RecoveryMatchesJournal) {
  const int crash_after = GetParam();
  db::Database database;
  ASSERT_TRUE(database.create_table({"t", {"n"}}).is_ok());
  int committed = 0;
  for (int i = 0; i < 10; ++i) {
    if (i == crash_after) database.crash_on_commit();
    auto txn = database.begin();
    for (int k = 0; k < 3; ++k) {
      ASSERT_TRUE(txn->insert("t", {std::int64_t{i * 3 + k}}).is_ok());
    }
    const Status st = txn->commit();
    if (i == crash_after) {
      ASSERT_FALSE(st.is_ok());
      break;
    }
    ASSERT_TRUE(st.is_ok());
    ++committed;
  }
  ASSERT_TRUE(database.recover().is_ok());
  // Every journaled commit (including the crashed one — it journaled
  // before applying) is fully present: multiples of 3 rows.
  EXPECT_EQ(database.row_count("t"),
            static_cast<std::size_t>((committed + 1) * 3));
}

INSTANTIATE_TEST_SUITE_P(Sweep, CrashRecoveryProperty,
                         ::testing::Values(0, 1, 2, 3, 5, 7, 9));

}  // namespace
}  // namespace shs
