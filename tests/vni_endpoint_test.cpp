// vni_endpoint_test.cpp — /sync and /finalize webhook semantics for both
// VNI ownership models (Per-Resource and Claims), idempotency, and
// endpoint unavailability.
#include <gtest/gtest.h>

#include "core/vni_endpoint.hpp"

namespace shs::core {
namespace {

k8s::Job make_job(const std::string& name, const std::string& vni_ann,
                  k8s::Uid uid, const std::string& ns = "default") {
  k8s::Job job;
  job.meta.name = name;
  job.meta.ns = ns;
  job.meta.uid = uid;
  if (!vni_ann.empty()) {
    job.meta.annotations[k8s::kVniAnnotation] = vni_ann;
  }
  return job;
}

k8s::VniClaim make_claim(const std::string& name, k8s::Uid uid,
                         const std::string& ns = "default") {
  k8s::VniClaim claim;
  claim.meta.name = name;
  claim.meta.ns = ns;
  claim.meta.uid = uid;
  claim.spec.claim_name = name;
  return claim;
}

struct EndpointFixture : ::testing::Test {
  db::Database database;
  sim::EventLoop loop;
  VniRegistry registry{database, {.vni_min = 200, .vni_max = 299,
                                  .quarantine = 30 * kSecond}};
  VniEndpoint endpoint{registry, loop};
};

// -- Per-Resource model (vni: true). -----------------------------------------

TEST_F(EndpointFixture, SyncJobPerResourceCreatesOwningChild) {
  const auto job = make_job("j1", "true", 11);
  auto children = endpoint.sync_job(job);
  ASSERT_TRUE(children.is_ok());
  ASSERT_EQ(children.value().size(), 1u);
  const k8s::VniObject& child = children.value()[0];
  EXPECT_EQ(child.meta.name, "j1-vni");
  EXPECT_EQ(child.bound_kind, "Job");
  EXPECT_EQ(child.bound_uid, 11u);
  EXPECT_FALSE(child.virtual_instance);
  EXPECT_GE(child.vni, 200u);
  EXPECT_EQ(registry.allocated_count(), 1u);
}

TEST_F(EndpointFixture, SyncJobIsIdempotent) {
  const auto job = make_job("j1", "true", 11);
  auto first = endpoint.sync_job(job);
  auto second = endpoint.sync_job(job);
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(first.value()[0].vni, second.value()[0].vni);
  EXPECT_EQ(registry.allocated_count(), 1u);
}

TEST_F(EndpointFixture, DistinctJobsGetDistinctVnis) {
  auto a = endpoint.sync_job(make_job("a", "true", 1));
  auto b = endpoint.sync_job(make_job("b", "true", 2));
  EXPECT_NE(a.value()[0].vni, b.value()[0].vni);
}

TEST_F(EndpointFixture, FinalizeJobReleasesVni) {
  const auto job = make_job("j1", "true", 11);
  auto children = endpoint.sync_job(job);
  const hsn::Vni vni = children.value()[0].vni;
  auto fin = endpoint.finalize_job(job);
  ASSERT_TRUE(fin.is_ok());
  EXPECT_TRUE(fin.value());
  EXPECT_EQ(registry.allocated_count(), 0u);
  EXPECT_EQ(registry.quarantined_count(loop.now()), 1u);
  (void)vni;
}

TEST_F(EndpointFixture, FinalizeIsIdempotent) {
  const auto job = make_job("j1", "true", 11);
  (void)endpoint.sync_job(job);
  EXPECT_TRUE(endpoint.finalize_job(job).value());
  EXPECT_TRUE(endpoint.finalize_job(job).value());
}

TEST_F(EndpointFixture, JobWithoutAnnotationYieldsNoChildren) {
  auto children = endpoint.sync_job(make_job("plain", "", 5));
  ASSERT_TRUE(children.is_ok());
  EXPECT_TRUE(children.value().empty());
  EXPECT_EQ(registry.allocated_count(), 0u);
}

// -- Claims model. ------------------------------------------------------------

TEST_F(EndpointFixture, SyncClaimAcquiresVni) {
  auto children = endpoint.sync_claim(make_claim("team-claim", 77));
  ASSERT_TRUE(children.is_ok());
  ASSERT_EQ(children.value().size(), 1u);
  EXPECT_EQ(children.value()[0].bound_kind, "VniClaim");
  EXPECT_FALSE(children.value()[0].virtual_instance);
  EXPECT_EQ(registry.allocated_count(), 1u);
}

TEST_F(EndpointFixture, RedeemingJobGetsVirtualChildAndBecomesUser) {
  auto claim_children = endpoint.sync_claim(make_claim("team-claim", 77));
  const hsn::Vni claim_vni = claim_children.value()[0].vni;

  const auto job = make_job("worker", "team-claim", 12);
  auto children = endpoint.sync_job(job);
  ASSERT_TRUE(children.is_ok());
  ASSERT_EQ(children.value().size(), 1u);
  EXPECT_TRUE(children.value()[0].virtual_instance);
  EXPECT_EQ(children.value()[0].vni, claim_vni);
  EXPECT_EQ(children.value()[0].claim_name, "team-claim");
  EXPECT_EQ(registry.users(claim_vni).size(), 1u);
  // Only the claim's acquisition counts as an allocation.
  EXPECT_EQ(registry.allocated_count(), 1u);
}

TEST_F(EndpointFixture, RedeemingUnknownClaimFails) {
  // "Jobs will fail to launch if no VNI claim with the annotated name has
  // been found."
  auto children = endpoint.sync_job(make_job("worker", "missing-claim", 9));
  EXPECT_EQ(children.code(), Code::kNotFound);
}

TEST_F(EndpointFixture, ClaimsAreNamespaced) {
  (void)endpoint.sync_claim(make_claim("shared", 1, "ns-a"));
  // Same claim name in another namespace is invisible.
  auto children =
      endpoint.sync_job(make_job("worker", "shared", 2, "ns-b"));
  EXPECT_EQ(children.code(), Code::kNotFound);
}

TEST_F(EndpointFixture, MultipleJobsShareTheClaimVni) {
  auto claim_children = endpoint.sync_claim(make_claim("c", 1));
  const hsn::Vni vni = claim_children.value()[0].vni;
  auto j1 = endpoint.sync_job(make_job("j1", "c", 2));
  auto j2 = endpoint.sync_job(make_job("j2", "c", 3));
  EXPECT_EQ(j1.value()[0].vni, vni);
  EXPECT_EQ(j2.value()[0].vni, vni);
  EXPECT_EQ(registry.users(vni).size(), 2u);
}

TEST_F(EndpointFixture, ClaimDeletionStallsWhileUsersRemain) {
  // "we track all jobs using a VNI claim and only allow VNI claim
  // deletion if all users of that claim have terminated their jobs."
  const auto claim = make_claim("c", 1);
  (void)endpoint.sync_claim(claim);
  const auto job = make_job("j1", "c", 2);
  (void)endpoint.sync_job(job);

  auto fin = endpoint.finalize_claim(claim);
  ASSERT_TRUE(fin.is_ok());
  EXPECT_FALSE(fin.value()) << "claim must not finalize while j1 uses it";

  // Job finishes -> user removed -> claim may finalize.
  EXPECT_TRUE(endpoint.finalize_job(job).value());
  auto fin2 = endpoint.finalize_claim(claim);
  ASSERT_TRUE(fin2.is_ok());
  EXPECT_TRUE(fin2.value());
  EXPECT_EQ(registry.allocated_count(), 0u);
}

TEST_F(EndpointFixture, FinalizeJobOfDeadClaimSucceeds) {
  const auto claim = make_claim("c", 1);
  (void)endpoint.sync_claim(claim);
  const auto job = make_job("j1", "c", 2);
  (void)endpoint.sync_job(job);
  (void)endpoint.finalize_job(job);
  (void)endpoint.finalize_claim(claim);
  // Finalizing the job again after the claim is gone must not error.
  EXPECT_TRUE(endpoint.finalize_job(job).value());
}

// -- Availability injection. --------------------------------------------------

TEST_F(EndpointFixture, UnavailableEndpointFailsEverything) {
  endpoint.set_available(false);
  EXPECT_EQ(endpoint.sync_job(make_job("j", "true", 1)).code(),
            Code::kUnavailable);
  EXPECT_EQ(endpoint.sync_claim(make_claim("c", 2)).code(),
            Code::kUnavailable);
  EXPECT_EQ(endpoint.finalize_job(make_job("j", "true", 1)).code(),
            Code::kUnavailable);
  endpoint.set_available(true);
  EXPECT_TRUE(endpoint.sync_job(make_job("j", "true", 1)).is_ok());
}

TEST_F(EndpointFixture, CountersTrackCalls) {
  (void)endpoint.sync_job(make_job("j", "true", 1));
  (void)endpoint.finalize_job(make_job("j", "true", 1));
  (void)endpoint.sync_claim(make_claim("c", 2));
  const auto& c = endpoint.counters();
  EXPECT_EQ(c.sync_job, 1u);
  EXPECT_EQ(c.finalize_job, 1u);
  EXPECT_EQ(c.sync_claim, 1u);
  EXPECT_EQ(c.acquisitions, 2u);
  EXPECT_EQ(c.releases, 1u);
}

}  // namespace
}  // namespace shs::core
