// cri_test.cpp — container runtime: sandbox namespaces, user-namespace
// mapping, CNI chain execution/idempotency, registry model, exec_in_pod.
#include <gtest/gtest.h>

#include "cri/bridge_cni.hpp"
#include "cri/runtime.hpp"

namespace shs::cri {
namespace {

k8s::Pod make_pod(const std::string& name, k8s::Uid uid,
                  const std::string& image = "alpine") {
  k8s::Pod pod;
  pod.meta.name = name;
  pod.meta.uid = uid;
  pod.spec.image = image;
  return pod;
}

struct CriFixture : ::testing::Test {
  linuxsim::Kernel kernel;
  k8s::K8sParams params;
  ContainerRuntime runtime{kernel, "node-0", params, Rng(1)};
};

TEST_F(CriFixture, SandboxCreatesNamespacesAndPause) {
  const auto pod = make_pod("p", 10);
  auto sb = runtime.create_sandbox(pod);
  ASSERT_TRUE(sb.is_ok());
  EXPECT_GT(sb.value().netns_inode, 0u);
  EXPECT_GT(sb.value().cost, 0);
  const Sandbox* state = runtime.sandbox(10);
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->netns->inode(), sb.value().netns_inode);
  ASSERT_NE(state->userns, nullptr);
  EXPECT_GT(state->pause_pid, 0u);
  // Pause process lives in the pod's netns, visible via procfs.
  EXPECT_EQ(kernel.proc_net_ns_inode(state->pause_pid).value(),
            sb.value().netns_inode);
}

TEST_F(CriFixture, SandboxIsIdempotent) {
  const auto pod = make_pod("p", 10);
  auto a = runtime.create_sandbox(pod);
  auto b = runtime.create_sandbox(pod);
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a.value().netns_inode, b.value().netns_inode);
  EXPECT_EQ(runtime.sandbox_count(), 1u);
}

TEST_F(CriFixture, UserNamespaceMapsRootUnprivileged) {
  const auto pod = make_pod("p", 10);
  ASSERT_TRUE(runtime.create_sandbox(pod).is_ok());
  const Sandbox* sb = runtime.sandbox(10);
  const auto pause = kernel.find(sb->pause_pid);
  ASSERT_NE(pause, nullptr);
  EXPECT_EQ(pause->creds().uid, linuxsim::kRootUid);  // root inside
  EXPECT_GE(pause->host_uid(), 100'000u);             // unprivileged outside
}

TEST_F(CriFixture, DistinctPodsGetDistinctHostUidRanges) {
  ASSERT_TRUE(runtime.create_sandbox(make_pod("a", 1)).is_ok());
  ASSERT_TRUE(runtime.create_sandbox(make_pod("b", 2)).is_ok());
  const auto a = kernel.find(runtime.sandbox(1)->pause_pid);
  const auto b = kernel.find(runtime.sandbox(2)->pause_pid);
  EXPECT_NE(a->host_uid(), b->host_uid());
}

TEST_F(CriFixture, AttachRequiresSandbox) {
  EXPECT_EQ(runtime.attach_networks(make_pod("ghost", 99)).code(),
            Code::kFailedPrecondition);
}

TEST_F(CriFixture, BridgeCniAttachesVeth) {
  runtime.add_cni_plugin(
      std::make_shared<BridgeCni>(kernel, params, Rng(2)));
  const auto pod = make_pod("p", 10);
  ASSERT_TRUE(runtime.create_sandbox(pod).is_ok());
  auto cni = runtime.attach_networks(pod);
  ASSERT_TRUE(cni.is_ok());
  EXPECT_GT(cni.value().cost, 0);
  const Sandbox* sb = runtime.sandbox(10);
  EXPECT_TRUE(sb->netns->has_device("eth0"));
  EXPECT_TRUE(sb->networks_attached);
  // Host end of the veth pair lives in the host namespace.
  EXPECT_FALSE(kernel.host_net_ns()->devices().empty());
}

TEST_F(CriFixture, CniChainIsIdempotentOnRetry) {
  auto bridge = std::make_shared<BridgeCni>(kernel, params, Rng(2));
  runtime.add_cni_plugin(bridge);
  const auto pod = make_pod("p", 10);
  ASSERT_TRUE(runtime.create_sandbox(pod).is_ok());
  ASSERT_TRUE(runtime.attach_networks(pod).is_ok());
  ASSERT_TRUE(runtime.attach_networks(pod).is_ok());  // retry
  EXPECT_EQ(bridge->veths_created(), 1u) << "retry must not duplicate veths";
}

TEST_F(CriFixture, DetachRunsChainInReverseAndIsIdempotent) {
  runtime.add_cni_plugin(
      std::make_shared<BridgeCni>(kernel, params, Rng(2)));
  const auto pod = make_pod("p", 10);
  ASSERT_TRUE(runtime.create_sandbox(pod).is_ok());
  ASSERT_TRUE(runtime.attach_networks(pod).is_ok());
  ASSERT_TRUE(runtime.detach_networks(pod).is_ok());
  EXPECT_FALSE(runtime.sandbox(10)->netns->has_device("eth0"));
  ASSERT_TRUE(runtime.detach_networks(pod).is_ok());  // DEL is idempotent
}

TEST_F(CriFixture, ImagePullLocalVsRemote) {
  auto local = runtime.pull_image(make_pod("a", 1, "alpine"));
  auto remote = runtime.pull_image(make_pod("b", 2, "some-remote-image"));
  ASSERT_TRUE(local.is_ok());
  ASSERT_TRUE(remote.is_ok());
  // The paper pulls from a local Harbor registry precisely to keep this
  // cost small; a remote pull would dominate the measurement.
  EXPECT_GT(remote.value(), local.value() * 10);
}

TEST_F(CriFixture, StartStopContainerLifecycle) {
  const auto pod = make_pod("p", 10);
  ASSERT_TRUE(runtime.create_sandbox(pod).is_ok());
  ASSERT_TRUE(runtime.start_container(pod).is_ok());
  const Sandbox* sb = runtime.sandbox(10);
  EXPECT_GT(sb->container_pid, 0u);
  const auto pid = sb->container_pid;
  EXPECT_NE(kernel.find(pid), nullptr);
  ASSERT_TRUE(runtime.stop_container(pod, from_seconds(30)).is_ok());
  EXPECT_EQ(kernel.find(pid), nullptr) << "container process must be gone";
}

TEST_F(CriFixture, StopCostBoundedByGrace) {
  const auto pod = make_pod("p", 10);
  ASSERT_TRUE(runtime.create_sandbox(pod).is_ok());
  ASSERT_TRUE(runtime.start_container(pod).is_ok());
  auto cost = runtime.stop_container(pod, from_millis(3));
  ASSERT_TRUE(cost.is_ok());
  EXPECT_LE(cost.value(), from_millis(3));
}

TEST_F(CriFixture, DestroySandboxKillsEverything) {
  const auto pod = make_pod("p", 10);
  ASSERT_TRUE(runtime.create_sandbox(pod).is_ok());
  ASSERT_TRUE(runtime.start_container(pod).is_ok());
  const auto pause = runtime.sandbox(10)->pause_pid;
  const auto container = runtime.sandbox(10)->container_pid;
  ASSERT_TRUE(runtime.destroy_sandbox(pod).is_ok());
  EXPECT_EQ(runtime.sandbox(10), nullptr);
  EXPECT_EQ(kernel.find(pause), nullptr);
  EXPECT_EQ(kernel.find(container), nullptr);
}

TEST_F(CriFixture, ExecInPodSharesNamespaces) {
  const auto pod = make_pod("p", 10);
  ASSERT_TRUE(runtime.create_sandbox(pod).is_ok());
  auto pid = runtime.exec_in_pod(10);
  ASSERT_TRUE(pid.is_ok());
  EXPECT_EQ(kernel.proc_net_ns_inode(pid.value()).value(),
            runtime.sandbox(10)->netns->inode());
  EXPECT_EQ(runtime.exec_in_pod(404).code(), Code::kNotFound);
}

TEST_F(CriFixture, OpsOnMissingSandboxAreGraceful) {
  const auto pod = make_pod("ghost", 77);
  EXPECT_TRUE(runtime.stop_container(pod, kSecond).is_ok());
  EXPECT_TRUE(runtime.detach_networks(pod).is_ok());
  EXPECT_TRUE(runtime.destroy_sandbox(pod).is_ok());
}

}  // namespace
}  // namespace shs::cri
