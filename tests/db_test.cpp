// db_test.cpp — ACID properties of the embedded store: atomicity,
// isolation (TOCTOU), durability via journal replay, fault injection.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "db/database.hpp"

namespace shs::db {
namespace {

TableSchema kv_schema() { return {"kv", {"key", "value"}}; }

TEST(Database, CreateTableOnce) {
  Database db;
  EXPECT_TRUE(db.create_table(kv_schema()).is_ok());
  EXPECT_EQ(db.create_table(kv_schema()).code(), Code::kAlreadyExists);
  EXPECT_TRUE(db.has_table("kv"));
  EXPECT_FALSE(db.has_table("nope"));
  EXPECT_EQ(db.table_names(), std::vector<std::string>{"kv"});
}

TEST(Database, EmptySchemaRejected) {
  Database db;
  EXPECT_EQ(db.create_table({"bad", {}}).code(), Code::kInvalidArgument);
}

TEST(Transaction, InsertGetScan) {
  Database db;
  ASSERT_TRUE(db.create_table(kv_schema()).is_ok());
  auto txn = db.begin();
  auto id = txn->insert("kv", {std::string("a"), std::int64_t{1}});
  ASSERT_TRUE(id.is_ok());
  // Own-writes visible before commit.
  auto row = txn->get("kv", id.value());
  ASSERT_TRUE(row.is_ok());
  EXPECT_EQ(as_text(row.value()[0]), "a");
  ASSERT_TRUE(txn->commit().is_ok());
  EXPECT_EQ(db.row_count("kv"), 1u);
}

TEST(Transaction, ColumnArityChecked) {
  Database db;
  ASSERT_TRUE(db.create_table(kv_schema()).is_ok());
  auto txn = db.begin();
  EXPECT_EQ(txn->insert("kv", {std::string("only-one")}).code(),
            Code::kInvalidArgument);
}

TEST(Transaction, RollbackDiscardsEverything) {
  Database db;
  ASSERT_TRUE(db.create_table(kv_schema()).is_ok());
  {
    auto txn = db.begin();
    ASSERT_TRUE(txn->insert("kv", {std::string("x"), std::int64_t{1}})
                    .is_ok());
    txn->rollback();
  }
  EXPECT_EQ(db.row_count("kv"), 0u);
}

TEST(Transaction, DestructorRollsBack) {
  Database db;
  ASSERT_TRUE(db.create_table(kv_schema()).is_ok());
  {
    auto txn = db.begin();
    ASSERT_TRUE(txn->insert("kv", {std::string("x"), std::int64_t{1}})
                    .is_ok());
    // no commit
  }
  EXPECT_EQ(db.row_count("kv"), 0u);
}

TEST(Transaction, UpdateAndErase) {
  Database db;
  ASSERT_TRUE(db.create_table(kv_schema()).is_ok());
  RowId id = 0;
  ASSERT_TRUE(db.with_transaction([&](Transaction& t) {
                  auto r = t.insert("kv", {std::string("k"), std::int64_t{1}});
                  id = r.value();
                  return r.status();
                }).is_ok());
  ASSERT_TRUE(db.with_transaction([&](Transaction& t) {
                  return t.update("kv", id,
                                  {std::string("k"), std::int64_t{2}});
                }).is_ok());
  auto rows = db.snapshot("kv");
  ASSERT_EQ(rows.value().size(), 1u);
  EXPECT_EQ(as_int(rows.value()[0].second[1]), 2);
  ASSERT_TRUE(db.with_transaction(
                    [&](Transaction& t) { return t.erase("kv", id); })
                  .is_ok());
  EXPECT_EQ(db.row_count("kv"), 0u);
}

TEST(Transaction, UpdateMissingRowFails) {
  Database db;
  ASSERT_TRUE(db.create_table(kv_schema()).is_ok());
  auto txn = db.begin();
  EXPECT_EQ(txn->update("kv", 42, {std::string("k"), std::int64_t{1}}).code(),
            Code::kNotFound);
  EXPECT_EQ(txn->erase("kv", 42).code(), Code::kNotFound);
}

TEST(Transaction, ScanSeesOverlay) {
  Database db;
  ASSERT_TRUE(db.create_table(kv_schema()).is_ok());
  RowId committed = 0;
  ASSERT_TRUE(db.with_transaction([&](Transaction& t) {
                  committed =
                      t.insert("kv", {std::string("old"), std::int64_t{1}})
                          .value();
                  return Status::ok();
                }).is_ok());
  auto txn = db.begin();
  ASSERT_TRUE(txn->erase("kv", committed).is_ok());
  ASSERT_TRUE(
      txn->insert("kv", {std::string("new"), std::int64_t{2}}).is_ok());
  auto rows = txn->scan("kv");
  ASSERT_EQ(rows.value().size(), 1u);
  EXPECT_EQ(as_text(rows.value()[0].second[0]), "new");
  txn->rollback();
  // After rollback the committed state is intact.
  EXPECT_EQ(db.row_count("kv"), 1u);
}

TEST(Transaction, ClosedTxnRejectsOps) {
  Database db;
  ASSERT_TRUE(db.create_table(kv_schema()).is_ok());
  auto txn = db.begin();
  ASSERT_TRUE(txn->commit().is_ok());
  EXPECT_EQ(txn->insert("kv", {std::string("x"), std::int64_t{0}}).code(),
            Code::kFailedPrecondition);
  EXPECT_EQ(txn->commit().code(), Code::kFailedPrecondition);
}

TEST(Isolation, ConcurrentAcquisitionNoDoubleGrant) {
  // The paper's TOCTOU scenario: N threads race to acquire a "free VNI"
  // (here: insert a unique integer after checking it is unused).  With
  // serializable transactions every value is granted exactly once.
  Database db;
  ASSERT_TRUE(db.create_table({"alloc", {"vni"}}).is_ok());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  std::vector<std::vector<std::int64_t>> granted(kThreads);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, &granted, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const Status st = db.with_transaction([&](Transaction& txn) {
          auto rows = txn.scan("alloc");
          if (!rows.is_ok()) return rows.status();
          std::set<std::int64_t> used;
          for (const auto& [id, row] : rows.value()) {
            used.insert(as_int(row[0]));
          }
          std::int64_t pick = 0;
          while (used.contains(pick)) ++pick;
          auto ins = txn.insert("alloc", {pick});
          if (!ins.is_ok()) return ins.status();
          granted[t].push_back(pick);
          return Status::ok();
        });
        EXPECT_TRUE(st.is_ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  std::set<std::int64_t> all;
  for (const auto& per_thread : granted) {
    for (const auto v : per_thread) {
      EXPECT_TRUE(all.insert(v).second) << "value " << v << " double-granted";
    }
  }
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(db.row_count("alloc"), all.size());
}

TEST(Durability, CrashMidCommitThenRecover) {
  Database db;
  ASSERT_TRUE(db.create_table(kv_schema()).is_ok());
  // Commit 1: survives untouched.
  ASSERT_TRUE(db.with_transaction([](Transaction& t) {
                  return t.insert("kv", {std::string("safe"),
                                         std::int64_t{1}})
                      .status();
                }).is_ok());
  // Commit 2: journals, then "loses power" halfway through applying.
  db.crash_on_commit();
  auto txn = db.begin();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        txn->insert("kv", {std::string("burst"), std::int64_t{i}}).is_ok());
  }
  EXPECT_EQ(txn->commit().code(), Code::kInternal);
  EXPECT_TRUE(db.crashed());

  // While crashed, the store refuses work.
  auto txn2 = db.begin();
  EXPECT_EQ(txn2->commit().code(), Code::kUnavailable);
  txn2.reset();

  // Recovery replays the journal: the journaled commit is COMPLETE (not
  // the half-applied prefix) — atomicity.
  ASSERT_TRUE(db.recover().is_ok());
  EXPECT_FALSE(db.crashed());
  EXPECT_EQ(db.row_count("kv"), 11u);
  EXPECT_EQ(db.journal_commits(), 2u);
}

TEST(Durability, RecoverIsIdempotent) {
  Database db;
  ASSERT_TRUE(db.create_table(kv_schema()).is_ok());
  ASSERT_TRUE(db.with_transaction([](Transaction& t) {
                  return t.insert("kv", {std::string("a"), std::int64_t{1}})
                      .status();
                }).is_ok());
  ASSERT_TRUE(db.recover().is_ok());
  ASSERT_TRUE(db.recover().is_ok());
  EXPECT_EQ(db.row_count("kv"), 1u);
}

TEST(Durability, RowIdsSurviveRecovery) {
  Database db;
  ASSERT_TRUE(db.create_table(kv_schema()).is_ok());
  RowId id1 = 0;
  ASSERT_TRUE(db.with_transaction([&](Transaction& t) {
                  id1 = t.insert("kv", {std::string("a"), std::int64_t{1}})
                            .value();
                  return Status::ok();
                }).is_ok());
  ASSERT_TRUE(db.recover().is_ok());
  // New inserts must not reuse id1.
  RowId id2 = 0;
  ASSERT_TRUE(db.with_transaction([&](Transaction& t) {
                  id2 = t.insert("kv", {std::string("b"), std::int64_t{2}})
                            .value();
                  return Status::ok();
                }).is_ok());
  EXPECT_GT(id2, id1);
}

TEST(WithTransaction, RetriesAborted) {
  Database db;
  ASSERT_TRUE(db.create_table(kv_schema()).is_ok());
  int attempts = 0;
  const Status st = db.with_transaction(
      [&](Transaction& t) -> Status {
        ++attempts;
        if (attempts < 3) return aborted("try again");
        return t.insert("kv", {std::string("x"), std::int64_t{1}}).status();
      },
      5);
  EXPECT_TRUE(st.is_ok());
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(db.row_count("kv"), 1u);
}

TEST(WithTransaction, GivesUpAfterMaxAttempts) {
  Database db;
  ASSERT_TRUE(db.create_table(kv_schema()).is_ok());
  const Status st = db.with_transaction(
      [](Transaction&) { return aborted("always"); }, 3);
  EXPECT_EQ(st.code(), Code::kAborted);
}

}  // namespace
}  // namespace shs::db
