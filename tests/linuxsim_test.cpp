// linuxsim_test.cpp — namespace and credential semantics, including the
// exact user-namespace behaviour that breaks UID-based authentication.
#include <gtest/gtest.h>

#include "linuxsim/kernel.hpp"

namespace shs::linuxsim {
namespace {

TEST(Kernel, HostNetNsExistsWithStableInode) {
  Kernel k;
  ASSERT_NE(k.host_net_ns(), nullptr);
  EXPECT_EQ(k.host_net_ns()->name(), "host");
  EXPECT_GT(k.host_net_ns()->inode(), 0u);
}

TEST(Kernel, NetNsInodesAreUnique) {
  Kernel k;
  auto a = k.create_net_namespace("a");
  auto b = k.create_net_namespace("b");
  EXPECT_NE(a->inode(), b->inode());
  EXPECT_NE(a->inode(), k.host_net_ns()->inode());
  EXPECT_EQ(k.net_ns_count(), 3u);
}

TEST(Kernel, SpawnDefaultsToHostNamespaces) {
  Kernel k;
  auto p = k.spawn({});
  EXPECT_EQ(p->net_ns()->inode(), k.host_net_ns()->inode());
  EXPECT_EQ(p->user_ns(), nullptr);
  EXPECT_EQ(p->host_uid(), kRootUid);
}

TEST(Kernel, ProcfsReportsNetNsInode) {
  Kernel k;
  auto ns = k.create_net_namespace("container");
  auto p = k.spawn({.creds = {}, .user_ns = nullptr, .net_ns = ns});
  auto inode = k.proc_net_ns_inode(p->pid());
  ASSERT_TRUE(inode.is_ok());
  EXPECT_EQ(inode.value(), ns->inode());
}

TEST(Kernel, ProcfsUnknownPidFails) {
  Kernel k;
  EXPECT_EQ(k.proc_net_ns_inode(9999).code(), shs::Code::kNotFound);
  EXPECT_EQ(k.proc_host_creds(9999).code(), shs::Code::kNotFound);
}

TEST(Kernel, KillRemovesProcess) {
  Kernel k;
  auto p = k.spawn({});
  const Pid pid = p->pid();
  EXPECT_TRUE(k.kill(pid).is_ok());
  EXPECT_EQ(k.find(pid), nullptr);
  EXPECT_EQ(k.kill(pid).code(), shs::Code::kNotFound);
}

// -- User namespaces: the vulnerability precondition (Section III). --------

TEST(UserNs, MapsContainerRootToUnprivilegedHostUid) {
  Kernel k;
  auto uns = k.create_user_namespace({{0, 100'000, 65'536}},
                                     {{0, 100'000, 65'536}});
  auto p = k.spawn({.creds = {0, 0}, .user_ns = uns, .net_ns = nullptr});
  EXPECT_EQ(p->creds().uid, kRootUid);   // root *inside*
  EXPECT_EQ(p->host_uid(), 100'000u);    // unprivileged on the host
}

TEST(UserNs, SetuidToAnyMappedIdSucceeds) {
  // "users can freely change their UID and GID inside the container" —
  // the core of the spoofing attack.
  Kernel k;
  auto uns = k.create_user_namespace({{0, 100'000, 65'536}},
                                     {{0, 100'000, 65'536}});
  auto p = k.spawn({.creds = {0, 0}, .user_ns = uns, .net_ns = nullptr});
  EXPECT_TRUE(k.setuid(p->pid(), 1234).is_ok());
  EXPECT_EQ(k.find(p->pid())->creds().uid, 1234u);
  EXPECT_TRUE(k.setgid(p->pid(), 4321).is_ok());
  EXPECT_EQ(k.find(p->pid())->creds().gid, 4321u);
}

TEST(UserNs, SetuidOutsideMappingFails) {
  Kernel k;
  auto uns = k.create_user_namespace({{0, 100'000, 1000}}, {{0, 100'000, 1000}});
  auto p = k.spawn({.creds = {0, 0}, .user_ns = uns, .net_ns = nullptr});
  EXPECT_EQ(k.setuid(p->pid(), 5000).code(), shs::Code::kPermissionDenied);
}

TEST(UserNs, UnmappedIdSurfacesAsOverflowUid) {
  Kernel k;
  auto uns = k.create_user_namespace({{0, 100'000, 10}}, {{0, 100'000, 10}});
  auto p = k.spawn({.creds = {99, 99}, .user_ns = uns, .net_ns = nullptr});
  EXPECT_EQ(p->host_uid(), kOverflowUid);
  EXPECT_EQ(p->host_gid(), kOverflowGid);
}

TEST(HostNs, SetuidRequiresRoot) {
  Kernel k;
  auto p = k.spawn({.creds = {1000, 1000}, .user_ns = nullptr,
                    .net_ns = nullptr});
  EXPECT_EQ(k.setuid(p->pid(), 0).code(), shs::Code::kPermissionDenied);
  auto root = k.spawn({});
  EXPECT_TRUE(k.setuid(root->pid(), 1000).is_ok());
}

TEST(HostNs, HostCredsViaProcfs) {
  Kernel k;
  auto uns = k.create_user_namespace({{0, 200'000, 65'536}},
                                     {{0, 200'000, 65'536}});
  auto p = k.spawn({.creds = {55, 66}, .user_ns = uns, .net_ns = nullptr});
  auto creds = k.proc_host_creds(p->pid());
  ASSERT_TRUE(creds.is_ok());
  EXPECT_EQ(creds.value().uid, 200'055u);
  EXPECT_EQ(creds.value().gid, 200'066u);
}

// -- Network namespace device management. ----------------------------------

TEST(NetNs, AttachDetachDevices) {
  Kernel k;
  auto ns = k.create_net_namespace("pod");
  EXPECT_TRUE(ns->attach_device("eth0").is_ok());
  EXPECT_EQ(ns->attach_device("eth0").code(), shs::Code::kAlreadyExists);
  EXPECT_TRUE(ns->has_device("eth0"));
  EXPECT_TRUE(ns->detach_device("eth0").is_ok());
  EXPECT_EQ(ns->detach_device("eth0").code(), shs::Code::kNotFound);
  EXPECT_FALSE(ns->has_device("eth0"));
}

TEST(NetNs, ProcessesSharingNamespaceSeeTheSameInode) {
  // "two processes sharing one network namespace automatically share all
  // Linux networking resources attached to that namespace" — the design
  // rationale for netns-based authorization.
  Kernel k;
  auto ns = k.create_net_namespace("shared");
  auto p1 = k.spawn({.creds = {}, .user_ns = nullptr, .net_ns = ns});
  auto p2 = k.spawn({.creds = {}, .user_ns = nullptr, .net_ns = ns});
  EXPECT_EQ(k.proc_net_ns_inode(p1->pid()).value(),
            k.proc_net_ns_inode(p2->pid()).value());
}

}  // namespace
}  // namespace shs::linuxsim
