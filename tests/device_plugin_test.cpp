// device_plugin_test.cpp — the device-plugin-only deployment (related
// work, Section V) vs. the paper's CNI-based integration: device access
// without service management yields shared, non-isolated RDMA.
#include <gtest/gtest.h>

#include "core/device_plugin.hpp"
#include "core/stack.hpp"

namespace shs::core {
namespace {

k8s::Pod pod_with_uid(k8s::Uid uid) {
  k8s::Pod pod;
  pod.meta.name = "pod-" + std::to_string(uid);
  pod.meta.uid = uid;
  return pod;
}

TEST(DevicePlugin, AllocatesUpToCapacity) {
  CxiDevicePlugin plugin("node-0", 2);
  EXPECT_EQ(plugin.capacity(), 2);
  auto a = plugin.allocate(pod_with_uid(1));
  auto b = plugin.allocate(pod_with_uid(2));
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a.value().device_path, "/dev/cxi0");
  EXPECT_EQ(plugin.allocated(), 2);
  EXPECT_EQ(plugin.allocate(pod_with_uid(3)).code(),
            Code::kResourceExhausted);
}

TEST(DevicePlugin, AllocationIsIdempotentPerPod) {
  CxiDevicePlugin plugin("node-0", 1);
  ASSERT_TRUE(plugin.allocate(pod_with_uid(1)).is_ok());
  ASSERT_TRUE(plugin.allocate(pod_with_uid(1)).is_ok());
  EXPECT_EQ(plugin.allocated(), 1);
}

TEST(DevicePlugin, ReleaseFreesShare) {
  CxiDevicePlugin plugin("node-0", 1);
  ASSERT_TRUE(plugin.allocate(pod_with_uid(1)).is_ok());
  ASSERT_TRUE(plugin.release(1).is_ok());
  ASSERT_TRUE(plugin.release(1).is_ok());  // idempotent
  EXPECT_FALSE(plugin.has_device(1));
  EXPECT_TRUE(plugin.allocate(pod_with_uid(2)).is_ok());
}

TEST(DevicePlugin, DeviceAccessAloneGivesNoIsolation) {
  // The paper's point about the device plugin: it mounts the device but
  // "does not handle CXI service management ... these externally managed
  // CXI services are not container-granular".  Demonstrate: two tenant
  // pods that only have device access can both authenticate against the
  // global default service — they share one VNI and can see each other's
  // traffic domain.
  SlingshotStack stack;
  CxiDevicePlugin plugin("node-0", 8);

  auto job_a = stack.submit_job({.name = "tenant-a", .pods = 1,
                                 .run_duration = 30 * kSecond});
  auto job_b = stack.submit_job({.name = "tenant-b", .pods = 1,
                                 .run_duration = 30 * kSecond});
  ASSERT_TRUE(stack.wait_job_start(job_a.value()));
  ASSERT_TRUE(stack.wait_job_start(job_b.value()));
  const auto pod_a = stack.pods_of_job(job_a.value()).front();
  const auto pod_b = stack.pods_of_job(job_b.value()).front();
  ASSERT_TRUE(plugin.allocate(pod_a).is_ok());
  ASSERT_TRUE(plugin.allocate(pod_b).is_ok());

  // Both pods authenticate against the unrestricted default service.
  auto ha = stack.exec_in_pod(pod_a.meta.uid).value();
  auto hb = stack.exec_in_pod(pod_b.meta.uid).value();
  auto ep_a = stack.domain_for(ha).value().open_endpoint(cxi::kDefaultVni);
  auto ep_b = stack.domain_for(hb).value().open_endpoint(cxi::kDefaultVni);
  ASSERT_TRUE(ep_a.is_ok());
  ASSERT_TRUE(ep_b.is_ok());
  // Same VNI: tenant A can message tenant B directly — no isolation.
  ASSERT_TRUE(ep_a.value()
                  ->tsend(ep_b.value()->addr(), 1, {}, 64, 0)
                  .is_ok());
  EXPECT_TRUE(ep_b.value()->trecv_sync(1, {}, 1000).is_ok())
      << "device-plugin-only pods share the global VNI";
}

TEST(DevicePlugin, CniIntegrationRestoresIsolation) {
  // Same scenario but through the paper's stack: per-job VNIs; the
  // cross-tenant send never arrives (see also integration_test).
  SlingshotStack stack;
  auto job_a = stack.submit_job({.name = "tenant-a",
                                 .vni_annotation = "true",
                                 .pods = 1,
                                 .run_duration = 30 * kSecond});
  auto job_b = stack.submit_job({.name = "tenant-b",
                                 .vni_annotation = "true",
                                 .pods = 1,
                                 .run_duration = 30 * kSecond});
  ASSERT_TRUE(stack.wait_job_start(job_a.value()));
  ASSERT_TRUE(stack.wait_job_start(job_b.value()));
  const auto pod_a = stack.pods_of_job(job_a.value()).front();
  const auto pod_b = stack.pods_of_job(job_b.value()).front();
  EXPECT_NE(pod_a.status.vni, pod_b.status.vni);

  auto ha = stack.exec_in_pod(pod_a.meta.uid).value();
  auto hb = stack.exec_in_pod(pod_b.meta.uid).value();
  auto ep_a =
      stack.domain_for(ha).value().open_endpoint(pod_a.status.vni).value();
  auto ep_b =
      stack.domain_for(hb).value().open_endpoint(pod_b.status.vni).value();
  (void)ep_a->tsend(ep_b->addr(), 1, {}, 64, 0);
  EXPECT_EQ(ep_b->trecv_sync(1, {}, 100).code(), Code::kTimeout)
      << "per-job VNIs must isolate the tenants";
}

}  // namespace
}  // namespace shs::core
