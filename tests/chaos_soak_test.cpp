// chaos_soak_test.cpp — seeded chaos soak over the reliable data plane.
//
// One harness drives a 64-node dragonfly (UGAL) through a randomized
// fault schedule — lossy periods, ACK loss, corruption, timed link
// flaps, a switch crash/restore cycle, and VNI authorization churn —
// with NIC-level reliable delivery armed, and proves the three
// invariants the paper's convergence story needs:
//
//   1. No silent loss: every op either completes (and its payload is
//      observed exactly once at the receiver) or returns a bounded-retry
//      Status failure.  Never a hang, never a vanished completion.
//   2. No isolation violation: chaos never routes one tenant's traffic
//      into another tenant's endpoint, and the NIC-side VNI double-check
//      never fires.
//   3. Bit-identical per-seed replay: the entire episode — outcomes,
//      received sets, every counter — digests to the same value when
//      rerun with the same seed, because faults draw from dedicated
//      seeded streams (fault_rng_ per switch, rel_rng_ per NIC).
//
// Runtime is bounded by construction: kRounds * kNodes * kOpsPerSender
// posts, each capped at 1 + max_retries attempts.  Registered under the
// `chaos` ctest label so CI can run it under ASan/UBSan on its own.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "db/database.hpp"
#include "hsn/fabric.hpp"
#include "hsn/shard_engine.hpp"
#include "util/rng.hpp"

namespace shs::hsn {
namespace {

constexpr Vni kTenantA = 100;
constexpr Vni kTenantB = 200;
constexpr std::size_t kNodes = 64;
constexpr std::size_t kSwitches = 16;
constexpr int kRounds = 16;
constexpr int kOpsPerSender = 2;

std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h;
}

struct SoakOutcome {
  std::uint64_t digest = 14695981039346656037ULL;
  std::uint64_t ok_ops = 0;
  std::uint64_t failed_ops = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t duplicates = 0;
};

/// Runs the full soak for `seed` and returns its observable signature.
/// All invariant checks EXPECT inside, so a violation fails the test at
/// the point of detection, not just via a digest mismatch.
SoakOutcome run_soak(std::uint64_t seed) {
  TimingConfig flat;
  flat.jitter_amplitude = 0.0;
  flat.run_bias_amplitude = 0.0;
  TopologyConfig topo;
  topo.kind = TopologyKind::kDragonfly;
  topo.nodes_per_switch = 4;
  topo.switches_per_group = 4;
  topo.routing = RoutingPolicy::kUgal;
  auto f = Fabric::create(kNodes, flat, seed, topo);
  f->manager().set_auto_repair(false);

  ReliabilityConfig rel;
  rel.enabled = true;
  rel.max_retries = 6;
  f->set_reliability(rel);
  // The control-plane half of the loop: from the third attempt on, the
  // retry window carries a pending fabric-manager repair, so ops that
  // first failed onto a dead element complete on the republished plan.
  f->set_retry_hook([&f](int attempt, SimDuration) {
    if (attempt >= 3) (void)f->manager().repair_if_pending();
  });

  // Two tenants, one endpoint each per node.  Tag parity encodes the
  // tenant (A even, B odd): a cross-tenant delivery would surface as a
  // parity violation in a receiver's set.
  std::vector<EndpointId> eps_a(kNodes), eps_b(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i) {
    const auto addr = static_cast<NicAddr>(i);
    EXPECT_TRUE(f->switch_for(addr)->authorize_vni(addr, kTenantA).is_ok());
    EXPECT_TRUE(f->switch_for(addr)->authorize_vni(addr, kTenantB).is_ok());
    eps_a[i] =
        f->nic(addr).alloc_endpoint(kTenantA, TrafficClass::kBulkData).value();
    eps_b[i] =
        f->nic(addr).alloc_endpoint(kTenantB, TrafficClass::kBulkData).value();
  }

  Rng rng(seed ^ 0xc4a05ULL);
  std::vector<bool> b_port_authorized(kNodes, true);
  bool switch_crashed = false;
  SwitchId crashed = 0;
  std::uint64_t next_tag = 0;
  std::set<std::uint64_t> ok_tags;      // ops whose post returned OK
  std::set<std::uint64_t> posted_tags;  // every op attempted
  SoakOutcome out;

  for (int round = 0; round < kRounds; ++round) {
    // -- One chaos action per round, drawn from the seeded stream.
    switch (rng.uniform_u64(6)) {
      case 0: {  // lossy period: randomized loss/ACK-loss/corruption
        FaultProfile p;
        p.drop_rate = 0.08 * rng.uniform();
        p.ack_loss_rate = 0.04 * rng.uniform();
        p.corrupt_rate = 0.02 * rng.uniform();
        f->set_fault_profile(p);
        break;
      }
      case 1:  // calm period: clears profiles and accumulated flaps
        f->clear_fault_profiles();
        break;
      case 2: {  // timed flap on a random intra-group link
        const auto a = static_cast<SwitchId>(rng.uniform_u64(kSwitches));
        const auto g = (a / 4) * 4;
        const auto b = static_cast<SwitchId>(
            g + (a % 4 + 1 + rng.uniform_u64(3)) % 4);
        const auto until =
            static_cast<SimTime>(from_micros(50 + rng.uniform_u64(250)));
        (void)f->add_link_flap(a, b, 0, until);
        break;
      }
      case 3:  // switch crash / restore cycle
        if (!switch_crashed) {
          crashed = static_cast<SwitchId>(rng.uniform_u64(kSwitches));
          EXPECT_TRUE(f->fail_switch(crashed).is_ok());
          switch_crashed = true;
        } else {
          EXPECT_TRUE(f->restore_switch(crashed).is_ok());
          (void)f->manager().repair_if_pending();
          switch_crashed = false;
        }
        break;
      default: {  // VNI churn: tenant B loses/regains a random port
        const auto port = static_cast<NicAddr>(rng.uniform_u64(kNodes));
        if (b_port_authorized[port]) {
          EXPECT_TRUE(
              f->switch_for(port)->revoke_vni(port, kTenantB).is_ok());
        } else {
          EXPECT_TRUE(
              f->switch_for(port)->authorize_vni(port, kTenantB).is_ok());
        }
        b_port_authorized[port] = !b_port_authorized[port];
        break;
      }
    }

    // -- Traffic: every node sends under both fault and churn pressure.
    for (std::size_t s = 0; s < kNodes; ++s) {
      for (int op = 0; op < kOpsPerSender; ++op) {
        const bool tenant_b = rng.uniform_u64(2) == 1;
        const auto d = static_cast<NicAddr>(
            (s + 1 + rng.uniform_u64(kNodes - 1)) % kNodes);
        const std::uint64_t tag = (next_tag++ << 1) | (tenant_b ? 1 : 0);
        posted_tags.insert(tag);
        const auto& eps = tenant_b ? eps_b : eps_a;
        auto r = f->nic(static_cast<NicAddr>(s))
                     .post_send(eps[s], d, eps[d], tag, 4096, {}, /*vt=*/0);
        if (r.is_ok()) {
          ok_tags.insert(tag);
          ++out.ok_ops;
        } else {
          ++out.failed_ops;
        }
        out.digest = fnv1a_mix(out.digest, tag);
        out.digest =
            fnv1a_mix(out.digest, static_cast<std::uint64_t>(r.code()));
      }
    }
  }

  // -- Invariant 1 + 2: drain everything and audit per tenant.
  std::set<std::uint64_t> received;
  std::uint64_t received_count = 0;
  for (std::size_t d = 0; d < kNodes; ++d) {
    const auto addr = static_cast<NicAddr>(d);
    for (const bool tenant_b : {false, true}) {
      while (true) {
        auto pkt =
            f->nic(addr).poll_rx(tenant_b ? eps_b[d] : eps_a[d]);
        if (!pkt.is_ok()) break;
        ++received_count;
        const std::uint64_t tag = pkt.value().tag;
        // Tenant isolation: the tag's parity must match the endpoint's
        // tenant — a B packet in an A ring (or vice versa) is a breach.
        EXPECT_EQ((tag & 1) != 0, tenant_b) << "isolation violation";
        EXPECT_TRUE(received.insert(tag).second)
            << "duplicate delivery of op " << tag;
        out.digest = fnv1a_mix(out.digest, tag);
      }
    }
  }
  // Exactly-once: no duplicate slipped past dedup...
  EXPECT_EQ(received_count, received.size());
  // ...nothing arrived that was never posted...
  for (const auto tag : received) EXPECT_TRUE(posted_tags.count(tag));
  // ...and — zero lost completions — every OK op's payload arrived.
  // (A *failed* op may still have landed if its final attempt delivered
  // but its ACK window closed; that is honest at-most-once leakage the
  // dedup layer bounds to one copy, audited above.)
  for (const auto tag : ok_tags) {
    EXPECT_TRUE(received.count(tag)) << "silently lost op " << tag;
  }

  // NIC-side isolation double-checks never fired.
  std::uint64_t vni_mismatch = 0;
  for (std::size_t i = 0; i < kNodes; ++i) {
    vni_mismatch += f->nic(static_cast<NicAddr>(i)).counters().rx_vni_mismatch;
  }
  EXPECT_EQ(vni_mismatch, 0u);

  // -- Invariant 3: fold the full accounting into the digest.
  const auto totals = f->total_counters();
  const auto rc = f->reliability_totals();
  for (const std::uint64_t v :
       {totals.delivered, totals.dropped_loss, totals.dropped_corrupt,
        totals.ack_lost, totals.dropped_link_down, totals.dropped_no_route,
        totals.dropped_src_unauthorized, totals.dropped_dst_unauthorized,
        rc.retransmits, rc.duplicates, rc.budget_exhausted, rc.recovered,
        rc.recovered_after_replan, f->total_rx_overflow(),
        f->plan_version()}) {
    out.digest = fnv1a_mix(out.digest, v);
  }
  out.retransmits = rc.retransmits;
  out.duplicates = rc.duplicates;
  return out;
}

// ---------------------------------------------------------------------------
// Control-plane chaos: staggered republishes, fabric-manager crashes at
// random crash points, restarts, and link churn race the sharded data
// plane.  Invariants: conservation (every injected attempt is delivered
// or counted — kStaleEpoch included, never silent), tenant isolation,
// and a digest that is bit-identical across 1/2/4 worker threads
// because publish waves drain only at the engine's deterministic
// window barriers.

struct ControlSoakOutcome {
  std::uint64_t digest = 14695981039346656037ULL;
  std::uint64_t posted = 0;
  std::uint64_t stale_epoch_drops = 0;
  std::size_t recovered = 0;
};

ControlSoakOutcome run_control_soak(std::uint64_t seed, int threads) {
  TimingConfig flat;
  flat.jitter_amplitude = 0.0;
  flat.run_bias_amplitude = 0.0;
  TopologyConfig topo;
  topo.kind = TopologyKind::kDragonfly;
  topo.nodes_per_switch = 4;
  topo.switches_per_group = 4;
  auto f = Fabric::create(kNodes, flat, seed, topo);
  FabricManager& fm = f->manager();
  db::Database journal;
  fm.attach_journal(journal);
  fm.set_publish_stagger(
      {.enabled = true, .max_delay = from_micros(60), .seed = seed ^ 0x57a6});
  ShardEngine engine(*f, threads);

  std::vector<EndpointId> eps_a(kNodes), eps_b(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i) {
    const auto addr = static_cast<NicAddr>(i);
    EXPECT_TRUE(f->switch_for(addr)->authorize_vni(addr, kTenantA).is_ok());
    EXPECT_TRUE(f->switch_for(addr)->authorize_vni(addr, kTenantB).is_ok());
    eps_a[i] =
        f->nic(addr).alloc_endpoint(kTenantA, TrafficClass::kBulkData).value();
    eps_b[i] =
        f->nic(addr).alloc_endpoint(kTenantB, TrafficClass::kBulkData).value();
  }

  Rng rng(seed ^ 0x5eedc0deULL);
  std::vector<std::pair<SwitchId, SwitchId>> down;
  std::vector<bool> b_port_authorized(kNodes, true);
  std::uint64_t next_tag = 0;
  std::set<std::uint64_t> posted_tags;
  ControlSoakOutcome out;

  for (int round = 0; round < kRounds; ++round) {
    switch (rng.uniform_u64(6)) {
      case 0: {  // a random intra-group link dies (repair restages waves)
        const auto a = static_cast<SwitchId>(rng.uniform_u64(kSwitches));
        const auto g = (a / 4) * 4;
        const auto b = static_cast<SwitchId>(
            g + (a % 4 + 1 + rng.uniform_u64(3)) % 4);
        if (f->fail_link(a, b).is_ok()) down.emplace_back(a, b);
        break;
      }
      case 1:  // a dead link comes back
        if (!down.empty()) {
          const auto idx = rng.uniform_u64(down.size());
          EXPECT_TRUE(
              f->restore_link(down[idx].first, down[idx].second).is_ok());
          down.erase(down.begin() + static_cast<std::ptrdiff_t>(idx));
        }
        break;
      case 2:  // the controller is armed to die mid-flight
        if (!fm.crashed()) {
          ControlPlaneFaultProfile p;
          p.point = static_cast<ControlPlaneFaultProfile::CrashPoint>(
              1 + rng.uniform_u64(5));
          p.publish_after_switches = rng.uniform_u64(kSwitches);
          fm.arm_crash(p);
        }
        break;
      case 3:  // ...and is eventually restarted
        if (fm.crashed()) {
          EXPECT_TRUE(fm.restart().is_ok());
          if (fm.repair_pending()) fm.repair();
        }
        break;
      default: {  // VNI churn: tenant B loses/regains a random port
        const auto port = static_cast<NicAddr>(rng.uniform_u64(kNodes));
        if (b_port_authorized[port]) {
          EXPECT_TRUE(
              f->switch_for(port)->revoke_vni(port, kTenantB).is_ok());
        } else {
          EXPECT_TRUE(
              f->switch_for(port)->authorize_vni(port, kTenantB).is_ok());
        }
        b_port_authorized[port] = !b_port_authorized[port];
        break;
      }
    }

    // Traffic through whatever epoch mix the fabric is routing; the
    // flush's window barriers drain at most one publish wave each, the
    // same schedule at every thread count.
    for (std::size_t s = 0; s < kNodes; ++s) {
      for (int op = 0; op < kOpsPerSender; ++op) {
        const bool tenant_b = rng.uniform_u64(2) == 1;
        const auto d = static_cast<NicAddr>(
            (s + 1 + rng.uniform_u64(kNodes - 1)) % kNodes);
        const std::uint64_t tag = (next_tag++ << 1) | (tenant_b ? 1 : 0);
        const auto& eps = tenant_b ? eps_b : eps_a;
        auto r = engine.post_send(static_cast<NicAddr>(s), eps[s], d,
                                  eps[d], tag, 4096, /*vt=*/0);
        if (r.is_ok()) {
          posted_tags.insert(tag);
          ++out.posted;
        }
        out.digest =
            fnv1a_mix(out.digest, static_cast<std::uint64_t>(r.code()));
      }
    }
    engine.flush();
    out.digest = fnv1a_mix(out.digest, f->plan_version());
    out.digest = fnv1a_mix(out.digest, fm.committed_epoch());
  }

  // Converge: revive the controller if it died in the last rounds, land
  // any outstanding repair, drain every staged wave.
  if (fm.crashed()) {
    EXPECT_TRUE(fm.restart().is_ok());
  }
  if (fm.repair_pending()) fm.repair();
  fm.apply_all_publishes();
  engine.flush();

  // Isolation + exactly-once at the receivers.
  std::set<std::uint64_t> received;
  std::uint64_t received_count = 0;
  for (std::size_t d = 0; d < kNodes; ++d) {
    const auto addr = static_cast<NicAddr>(d);
    for (const bool tenant_b : {false, true}) {
      while (true) {
        auto pkt = f->nic(addr).poll_rx(tenant_b ? eps_b[d] : eps_a[d]);
        if (!pkt.is_ok()) break;
        ++received_count;
        const std::uint64_t tag = pkt.value().tag;
        EXPECT_EQ((tag & 1) != 0, tenant_b) << "isolation violation";
        EXPECT_TRUE(received.insert(tag).second)
            << "duplicate delivery of op " << tag;
        EXPECT_TRUE(posted_tags.count(tag)) << "phantom op " << tag;
        out.digest = fnv1a_mix(out.digest, tag);
      }
    }
  }
  EXPECT_EQ(received_count, received.size());

  // Conservation — the zero-silent-loss invariant: every injected
  // attempt either reached its destination or died as a *counted* drop
  // (stale-epoch fencing included).  Overflowed receive rings are
  // counted separately from routing drops.
  const auto totals = f->total_counters();
  EXPECT_EQ(engine.attempts_injected(),
            totals.delivered + totals.dropped_total() +
                f->total_rx_overflow());
  std::uint64_t vni_mismatch = 0;
  for (std::size_t i = 0; i < kNodes; ++i) {
    vni_mismatch += f->nic(static_cast<NicAddr>(i)).counters().rx_vni_mismatch;
  }
  EXPECT_EQ(vni_mismatch, 0u);

  for (const std::uint64_t v :
       {totals.delivered, totals.dropped_link_down, totals.dropped_no_route,
        totals.dropped_stale_epoch, totals.dropped_src_unauthorized,
        totals.dropped_dst_unauthorized, f->total_rx_overflow(),
        f->plan_version(), fm.committed_epoch(),
        static_cast<std::uint64_t>(fm.recovered_publishes()),
        static_cast<std::uint64_t>(journal.journal_commits())}) {
    out.digest = fnv1a_mix(out.digest, v);
  }
  for (std::size_t s = 0; s < kSwitches; ++s) {
    out.digest = fnv1a_mix(out.digest, f->switch_at(s).applied_epoch());
  }
  out.stale_epoch_drops = totals.dropped_stale_epoch;
  out.recovered = fm.recovered_publishes();
  return out;
}

TEST(ChaosSoak, ControlPlaneChaosIsThreadInvariantAndConserves) {
  const ControlSoakOutcome t1 = run_control_soak(0xc0de5, 1);
  // The schedule actually exercised the control-plane machinery.
  EXPECT_GT(t1.posted, 0u);
  EXPECT_GT(t1.recovered, 0u);
  EXPECT_GT(t1.stale_epoch_drops, 0u);

  // Same seed at 2 and 4 worker threads: bit-identical signatures —
  // staggered publishing is fenced to the engine's window barriers.
  const ControlSoakOutcome t2 = run_control_soak(0xc0de5, 2);
  const ControlSoakOutcome t4 = run_control_soak(0xc0de5, 4);
  EXPECT_EQ(t1.digest, t2.digest);
  EXPECT_EQ(t1.digest, t4.digest);

  // Replay at one thread: bit-identical; new seed: a different episode.
  EXPECT_EQ(run_control_soak(0xc0de5, 1).digest, t1.digest);
  EXPECT_NE(run_control_soak(0xbead, 1).digest, t1.digest);
}

TEST(ChaosSoak, NoSilentLossNoIsolationBreachBitIdenticalPerSeed) {
  const SoakOutcome first = run_soak(0x50a7ed);
  // The schedule actually exercised the machinery under test.
  EXPECT_GT(first.ok_ops, 0u);
  EXPECT_GT(first.retransmits, 0u);
  EXPECT_GT(first.duplicates, 0u);

  // Same seed, fresh fabric, full replay: bit-identical signature.
  const SoakOutcome second = run_soak(0x50a7ed);
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(first.ok_ops, second.ok_ops);
  EXPECT_EQ(first.failed_ops, second.failed_ops);

  // A different seed reshuffles faults, churn, and traffic.
  EXPECT_NE(run_soak(0xd1ce).digest, first.digest);
}

}  // namespace
}  // namespace shs::hsn
