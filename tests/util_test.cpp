// util_test.cpp — unit tests for the shared utility layer.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "util/rng.hpp"
#include "util/spinlock.hpp"
#include "util/stats.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace shs {
namespace {

// ---------------------------------------------------------------------------
// Status / Result

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), Code::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, FactoryHelpersCarryCodeAndMessage) {
  const Status s = permission_denied("nope");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), Code::kPermissionDenied);
  EXPECT_EQ(s.message(), "nope");
  EXPECT_EQ(s.to_string(), "PERMISSION_DENIED: nope");
}

TEST(Status, CodeNamesAreStable) {
  EXPECT_EQ(code_name(Code::kOk), "OK");
  EXPECT_EQ(code_name(Code::kNotFound), "NOT_FOUND");
  EXPECT_EQ(code_name(Code::kAborted), "ABORTED");
  EXPECT_EQ(code_name(Code::kUnavailable), "UNAVAILABLE");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, HoldsError) {
  Result<int> r(not_found("missing"));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), Code::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

// ---------------------------------------------------------------------------
// Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, JitterBounded) {
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    const double j = rng.jitter(0.05);
    EXPECT_GE(j, 0.95);
    EXPECT_LE(j, 1.05);
  }
}

TEST(Rng, NormalRoughMoments) {
  Rng rng(13);
  OnlineStats stats;
  for (int i = 0; i < 50'000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(3);
  Rng child = a.fork();
  EXPECT_NE(a.next(), child.next());
}

// ---------------------------------------------------------------------------
// Stats

TEST(OnlineStats, MeanAndVariance) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.01);  // sample stddev
  EXPECT_EQ(s.count(), 8u);
}

TEST(SampleSet, PercentilesInterpolate) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(10), 10.9, 1e-9);
  EXPECT_NEAR(s.percentile(90), 90.1, 1e-9);
}

TEST(SampleSet, EmptyIsSafe) {
  SampleSet s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.percentile(50), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(SampleSet, BoxplotFiveNumberSummary) {
  SampleSet s;
  for (int i = 1; i <= 9; ++i) s.add(i);
  s.add(100.0);  // outlier
  const BoxplotStats b = s.boxplot();
  EXPECT_DOUBLE_EQ(b.min, 1.0);
  EXPECT_DOUBLE_EQ(b.max, 100.0);
  EXPECT_GT(b.q3, b.median);
  EXPECT_GT(b.median, b.q1);
  EXPECT_EQ(b.n_outliers, 1u);
  EXPECT_LE(b.whisker_hi, 9.0);
}

TEST(SampleSet, MergeCombines) {
  SampleSet a, b;
  a.add(1);
  b.add(3);
  a.merge(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

// ---------------------------------------------------------------------------
// Units

TEST(Units, Conversions) {
  EXPECT_EQ(from_seconds(1.5), 1'500'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(2 * kSecond), 2.0);
  EXPECT_DOUBLE_EQ(to_micros(kMillisecond), 1000.0);
  EXPECT_EQ(from_micros(2.5), 2500);
}

TEST(Units, DataRateTransferTime) {
  const DataRate r = DataRate::gbps(200.0);
  EXPECT_EQ(r.bps(), 200'000'000'000ULL);
  // 25 GB/s: 1 MiB should take ~41.9 us.
  const SimDuration t = r.transfer_time(1 << 20);
  EXPECT_NEAR(to_micros(t), 41.9, 0.3);
}

TEST(Units, FormatSizeMatchesOsuLabels) {
  EXPECT_EQ(format_size(1), "1 B");
  EXPECT_EQ(format_size(512), "512 B");
  EXPECT_EQ(format_size(1024), "1 kB");
  EXPECT_EQ(format_size(512 * 1024), "512 kB");
  EXPECT_EQ(format_size(1024 * 1024), "1 MB");
}

TEST(Units, FormatMmss) {
  EXPECT_EQ(format_mmss(0), "00:00");
  EXPECT_EQ(format_mmss(65 * kSecond), "01:05");
  EXPECT_EQ(format_mmss(600 * kSecond), "10:00");
}

// ---------------------------------------------------------------------------
// Strings

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, JoinRoundTrip) {
  EXPECT_EQ(join({"x", "y", "z"}, "/"), "x/y/z");
  EXPECT_EQ(join({}, "/"), "");
}

TEST(Strings, TrimWhitespace) {
  EXPECT_EQ(trim("  hello\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("vni:true", "vni:"));
  EXPECT_FALSE(starts_with("vn", "vni"));
}

TEST(Strings, Strfmt) {
  EXPECT_EQ(strfmt("%s-%d", "pod", 7), "pod-7");
  EXPECT_EQ(strfmt("%05u", 42u), "00042");
}

// ---------------------------------------------------------------------------
// SpinLock

TEST(SpinLock, TryLockAndUnlock) {
  SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());  // held
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(SpinLock, MutualExclusionUnderContention) {
  // Contention stress: many threads hammer one lock around a plain
  // (non-atomic) counter.  Any mutual-exclusion or visibility bug loses
  // increments; the long contended waits also regression-cover the
  // per-wait reset of the TTAS pause-burst counter (which previously
  // degenerated to yield-only after the first 64 pauses of a lock()
  // call, however many acquisition attempts followed).
  constexpr int kThreads = 4;
  constexpr int kIters = 25'000;
  SpinLock lock;
  long counter = 0;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      for (int i = 0; i < kIters; ++i) {
        std::lock_guard<SpinLock> guard(lock);
        ++counter;
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

}  // namespace
}  // namespace shs
