// traffic_class_test.cpp — per-class priority scheduling on the fabric:
// bulk traffic must not be able to stall higher-priority traffic by more
// than one frame, at the NIC injection stage and at the switch egress.
// This backs the paper's use-case 1 (latency-critical app co-scheduled
// with checkpointing).
#include <gtest/gtest.h>

#include "hsn/fabric.hpp"

namespace shs::hsn {
namespace {

struct TcFixture : ::testing::Test {
  void SetUp() override {
    fabric = Fabric::create(2);
    for (NicAddr p = 0; p < 2; ++p) {
      ASSERT_TRUE(fabric->switch_for(p)->authorize_vni(p, 9).is_ok());
    }
    ll_src = fabric->nic(0).alloc_endpoint(9, TrafficClass::kLowLatency)
                 .value();
    ll_dst = fabric->nic(1).alloc_endpoint(9, TrafficClass::kLowLatency)
                 .value();
    bulk_src = fabric->nic(0).alloc_endpoint(9, TrafficClass::kBulkData)
                   .value();
    bulk_dst = fabric->nic(1).alloc_endpoint(9, TrafficClass::kBulkData)
                   .value();
  }

  SimTime send_and_arrival(EndpointId src, EndpointId dst,
                           std::uint64_t size, SimTime vt) {
    auto r = fabric->nic(0).post_send(src, 1, dst, 1, size, {}, vt);
    EXPECT_TRUE(r.is_ok());
    auto pkt = fabric->nic(1).wait_rx(dst, 1000);
    EXPECT_TRUE(pkt.is_ok());
    return pkt.value().arrival_vt;
  }

  std::unique_ptr<Fabric> fabric;
  EndpointId ll_src = 0, ll_dst = 0, bulk_src = 0, bulk_dst = 0;
};

TEST_F(TcFixture, LowLatencyUnaffectedByIdleFabric) {
  const SimTime t = send_and_arrival(ll_src, ll_dst, 64, 0);
  // tx overhead + hop latency + tiny serialization: ~1.2 us.
  EXPECT_LT(t, from_micros(2.0));
}

TEST_F(TcFixture, BulkBacklogDelaysLowLatencyByAtMostOneFrame) {
  // Saturate the link with large bulk messages.
  SimTime bulk_vt = 0;
  for (int i = 0; i < 16; ++i) {
    auto r = fabric->nic(0).post_send(bulk_src, 1, bulk_dst, 1, 1 << 20, {},
                                      bulk_vt);
    ASSERT_TRUE(r.is_ok());
    bulk_vt = r.value();
  }
  // A low-latency message posted "now" (vt 0) must not wait for the ~670
  // us of queued bulk serialization — at most ~1 frame (~0.17 us) per
  // stage plus base costs.
  const SimTime t = send_and_arrival(ll_src, ll_dst, 64, 0);
  EXPECT_LT(t, from_micros(4.0))
      << "low-latency traffic must preempt bulk at frame granularity";
}

TEST_F(TcFixture, BulkWaitsBehindItsOwnClass) {
  SimTime bulk_vt = 0;
  for (int i = 0; i < 8; ++i) {
    auto r = fabric->nic(0).post_send(bulk_src, 1, bulk_dst, 1, 1 << 20, {},
                                      bulk_vt);
    ASSERT_TRUE(r.is_ok());
    bulk_vt = r.value();
  }
  // The 8th bulk message arrives after ~8 serializations (~340 us).
  SimTime last = 0;
  for (int i = 0; i < 8; ++i) {
    auto pkt = fabric->nic(1).wait_rx(bulk_dst, 1000);
    ASSERT_TRUE(pkt.is_ok());
    last = std::max(last, pkt.value().arrival_vt);
  }
  EXPECT_GT(last, from_micros(300.0));
}

TEST_F(TcFixture, HigherPriorityClassDelaysBulk) {
  // Queue low-latency traffic first; bulk posted at the same virtual
  // time must wait behind it (priority order), plus its own class queue.
  SimTime ll_vt = 0;
  for (int i = 0; i < 4; ++i) {
    auto r = fabric->nic(0).post_send(ll_src, 1, ll_dst, 1, 1 << 20, {},
                                      ll_vt);
    ASSERT_TRUE(r.is_ok());
    ll_vt = r.value();
  }
  auto bulk = fabric->nic(0).post_send(bulk_src, 1, bulk_dst, 1, 4096, {},
                                       0);
  ASSERT_TRUE(bulk.is_ok());
  auto pkt = fabric->nic(1).wait_rx(bulk_dst, 1000);
  ASSERT_TRUE(pkt.is_ok());
  // Four 1 MiB messages serialize ~170 us; the bulk packet of a LOWER
  // priority class cannot jump that queue.
  EXPECT_GT(pkt.value().arrival_vt, from_micros(150.0));
}

TEST_F(TcFixture, DedicatedAccessOutranksEverything) {
  auto da_src = fabric->nic(0)
                    .alloc_endpoint(9, TrafficClass::kDedicatedAccess)
                    .value();
  auto da_dst = fabric->nic(1)
                    .alloc_endpoint(9, TrafficClass::kDedicatedAccess)
                    .value();
  SimTime vt = 0;
  for (int i = 0; i < 8; ++i) {
    auto r = fabric->nic(0).post_send(ll_src, 1, ll_dst, 1, 1 << 20, {}, vt);
    ASSERT_TRUE(r.is_ok());
    vt = r.value();
  }
  const SimTime t = send_and_arrival(da_src, da_dst, 64, 0);
  EXPECT_LT(t, from_micros(4.0));
}

}  // namespace
}  // namespace shs::hsn
