// osu_property_test.cpp — parameterized sweeps over the OSU workloads:
// for every message size, throughput must respect physical bounds (never
// above line rate, never below the overhead-implied floor) and latency
// must decompose into base + serialization.  These pin the calibration
// that Figs 5-8 rely on.
#include <gtest/gtest.h>

#include "cxi/driver.hpp"
#include "hsn/fabric.hpp"
#include "mpi/comm.hpp"
#include "ofi/domain.hpp"
#include "osu/osu.hpp"

namespace shs {
namespace {

/// Shared two-host world, rebuilt per test (cheap).
struct OsuWorld {
  OsuWorld() {
    fabric = hsn::Fabric::create(2);
    for (int i = 0; i < 2; ++i) {
      kernels.push_back(std::make_unique<linuxsim::Kernel>());
      drivers.push_back(std::make_unique<cxi::CxiDriver>(
          *kernels[i], fabric->nic(i),
          fabric->switch_for(static_cast<hsn::NicAddr>(i)),
          cxi::AuthMode::kNetnsExtended));
      const auto pid = kernels[i]->spawn({})->pid();
      ofi::Domain dom(*drivers[i], fabric->nic(i), fabric->timing(), pid);
      endpoints.push_back(dom.open_endpoint(cxi::kDefaultVni).value());
    }
    comm = mpi::Communicator::create({endpoints[0].get(),
                                      endpoints[1].get()});
  }
  std::unique_ptr<hsn::Fabric> fabric;
  std::vector<std::unique_ptr<linuxsim::Kernel>> kernels;
  std::vector<std::unique_ptr<cxi::CxiDriver>> drivers;
  std::vector<std::unique_ptr<ofi::Endpoint>> endpoints;
  std::unique_ptr<mpi::Communicator> comm;
};

class OsuSizeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OsuSizeProperty, BandwidthWithinPhysicalBounds) {
  OsuWorld world;
  const std::uint64_t size = GetParam();
  osu::BwOptions opts;
  opts.iterations = 60;
  opts.window = 16;
  auto bw = osu::run_osu_bw(*world.comm, size, opts);
  ASSERT_TRUE(bw.is_ok());

  // Upper bound: the 200 Gbps line rate (25'000 MB/s), with margin for
  // jitter.
  EXPECT_LT(bw.value(), 25'500.0);
  // Lower bound: per message the sender pays tx overhead + serialization,
  // and each window pays one acknowledgement round trip (amortized over
  // `window` messages).
  const auto& cfg = world.fabric->timing()->config();
  const double rtt_s = 2.0 * to_seconds(cfg.tx_overhead + cfg.hop_latency +
                                        cfg.rx_overhead);
  const double per_msg_s =
      to_seconds(cfg.tx_overhead) +
      to_seconds(world.fabric->timing()->serialize_time(size)) +
      rtt_s / static_cast<double>(opts.window);
  const double floor_mbps =
      static_cast<double>(size) / per_msg_s / 1.0e6 * 0.85;
  EXPECT_GT(bw.value(), floor_mbps) << "size " << size;
}

TEST_P(OsuSizeProperty, LatencyDecomposesIntoBasePlusSerialization) {
  OsuWorld world;
  const std::uint64_t size = GetParam();
  osu::LatencyOptions opts;
  opts.iterations = 120;
  auto lat = osu::run_osu_latency(*world.comm, size, opts);
  ASSERT_TRUE(lat.is_ok());

  const auto& tm = *world.fabric->timing();
  const auto& cfg = tm.config();
  const double base_us = to_micros(cfg.tx_overhead + cfg.hop_latency +
                                   cfg.rx_overhead);
  const double ser_us = to_micros(tm.serialize_time(size));
  // One-way latency ~= base + serialization (+ TC penalty + jitter).
  EXPECT_NEAR(lat.value(), base_us + ser_us, (base_us + ser_us) * 0.15 + 0.5)
      << "size " << size;
}

TEST_P(OsuSizeProperty, BandwidthScalesWithWindow) {
  // More messages in flight can only help (or tie) small-message rates.
  OsuWorld world;
  const std::uint64_t size = GetParam();
  osu::BwOptions narrow;
  narrow.iterations = 40;
  narrow.window = 2;
  osu::BwOptions wide;
  wide.iterations = 40;
  wide.window = 32;
  auto bw_narrow = osu::run_osu_bw(*world.comm, size, narrow);
  OsuWorld world2;
  auto bw_wide = osu::run_osu_bw(*world2.comm, size, wide);
  ASSERT_TRUE(bw_narrow.is_ok());
  ASSERT_TRUE(bw_wide.is_ok());
  EXPECT_GT(bw_wide.value(), bw_narrow.value() * 0.95) << "size " << size;
}

INSTANTIATE_TEST_SUITE_P(SizeSweep, OsuSizeProperty,
                         ::testing::Values(1, 8, 64, 512, 4096, 32768,
                                           262144, 1048576));

// ---------------------------------------------------------------------------
// Determinism: identical seeds -> identical figures (the property the
// whole reproduction leans on).

class DeterminismProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(DeterminismProperty, SameSeedSameThroughput) {
  auto run_once = [&](std::uint64_t seed) {
    auto fabric = hsn::Fabric::create(2, {}, seed);
    linuxsim::Kernel k0, k1;
    cxi::CxiDriver d0(k0, fabric->nic(0), fabric->switch_for(0),
                      cxi::AuthMode::kNetnsExtended);
    cxi::CxiDriver d1(k1, fabric->nic(1), fabric->switch_for(1),
                      cxi::AuthMode::kNetnsExtended);
    ofi::Domain dom0(d0, fabric->nic(0), fabric->timing(),
                     k0.spawn({})->pid());
    ofi::Domain dom1(d1, fabric->nic(1), fabric->timing(),
                     k1.spawn({})->pid());
    auto e0 = dom0.open_endpoint(cxi::kDefaultVni).value();
    auto e1 = dom1.open_endpoint(cxi::kDefaultVni).value();
    auto comm = mpi::Communicator::create({e0.get(), e1.get()});
    osu::LatencyOptions opts;
    opts.iterations = 100;
    return osu::run_osu_latency(*comm, 1024, opts).value();
  };
  const double a = run_once(GetParam());
  const double b = run_once(GetParam());
  EXPECT_DOUBLE_EQ(a, b) << "same seed must give identical virtual time";
  const double c = run_once(GetParam() + 1);
  EXPECT_NE(a, c) << "different seeds must differ (jitter present)";
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, DeterminismProperty,
                         ::testing::Values(100, 200, 300));

}  // namespace
}  // namespace shs
