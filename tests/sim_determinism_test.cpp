// sim_determinism_test.cpp — EventLoop determinism properties the whole
// control-plane model depends on: equal-timestamp events fire in
// insertion order, a periodic task can cancel itself from inside its own
// callback, and two runs of an identical randomized schedule produce
// identical event traces.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "sim/event_loop.hpp"
#include "util/rng.hpp"

namespace shs::sim {
namespace {

TEST(EventLoopDeterminism, EqualTimestampsFireInInsertionOrder) {
  // Randomized schedule over a handful of timestamps so collisions are
  // plentiful; the property must hold regardless of submission pattern.
  Rng rng(0xdead);
  EventLoop loop;
  std::vector<std::pair<SimTime, int>> trace;
  std::vector<std::pair<SimTime, int>> expected;
  for (int i = 0; i < 500; ++i) {
    const SimTime t = static_cast<SimTime>(rng.uniform_u64(8)) * kMillisecond;
    expected.emplace_back(t, i);
    loop.schedule_at(t, [&trace, t, i] { trace.emplace_back(t, i); });
  }
  // Insertion order is the tie-breaker: a stable sort by time over the
  // submission sequence is exactly the required execution order.
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  loop.run_until_idle();
  EXPECT_EQ(trace, expected);
}

TEST(EventLoopDeterminism, PeriodicCancelFromOwnCallbackStopsFiring) {
  EventLoop loop;
  int fired = 0;
  EventLoop::TaskId id = EventLoop::kInvalidTask;
  id = loop.schedule_periodic(kMillisecond, [&] {
    ++fired;
    EXPECT_TRUE(loop.cancel(id));
  });
  loop.run_for(100 * kMillisecond);
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(loop.idle());

  // Cancelling from the callback of a *later* firing also works (the
  // re-armed queue entry must not resurrect the task).
  int count = 0;
  EventLoop::TaskId id2 = EventLoop::kInvalidTask;
  id2 = loop.schedule_periodic(kMillisecond, [&] {
    if (++count == 3) EXPECT_TRUE(loop.cancel(id2));
  });
  loop.run_for(100 * kMillisecond);
  EXPECT_EQ(count, 3);
  EXPECT_TRUE(loop.idle());
}

/// One randomized workload: immediate events, delayed events, nested
/// scheduling from inside callbacks, self-cancelling periodics — all
/// driven by a seeded Rng.  Returns the (time, label) execution trace.
std::vector<std::pair<SimTime, int>> run_workload(std::uint64_t seed) {
  Rng rng(seed);
  EventLoop loop;
  auto trace = std::make_shared<std::vector<std::pair<SimTime, int>>>();
  int label = 0;
  for (int i = 0; i < 200; ++i) {
    const int id = label++;
    const SimDuration delay =
        static_cast<SimDuration>(rng.uniform_u64(10)) * kMillisecond;
    switch (rng.uniform_u64(3)) {
      case 0:
        loop.schedule_after(delay, [&loop, trace, id] {
          trace->emplace_back(loop.now(), id);
        });
        break;
      case 1:
        // Nested: the callback schedules a follow-up event.
        loop.schedule_after(delay, [&loop, trace, id] {
          trace->emplace_back(loop.now(), id);
          loop.schedule_after(kMillisecond, [&loop, trace, id] {
            trace->emplace_back(loop.now(), 10'000 + id);
          });
        });
        break;
      default: {
        auto fired = std::make_shared<int>(0);
        auto task = std::make_shared<EventLoop::TaskId>(
            EventLoop::kInvalidTask);
        *task = loop.schedule_periodic(
            std::max<SimDuration>(delay, kMillisecond),
            [&loop, trace, id, fired, task] {
              trace->emplace_back(loop.now(), 20'000 + id);
              if (++*fired == 3) loop.cancel(*task);
            });
        break;
      }
    }
  }
  loop.run_until(kSecond);
  EXPECT_TRUE(loop.idle());
  return *trace;
}

TEST(EventLoopDeterminism, IdenticalSchedulesProduceIdenticalTraces) {
  const auto a = run_workload(0x5eed);
  const auto b = run_workload(0x5eed);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);

  // A different seed really does produce a different schedule (guards
  // against the workload collapsing to something seed-independent).
  const auto c = run_workload(0x07e4);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace shs::sim
