// sim_determinism_test.cpp — EventLoop determinism properties the whole
// control-plane model depends on: equal-timestamp events fire in
// insertion order, a periodic task can cancel itself from inside its own
// callback, and two runs of an identical randomized schedule produce
// identical event traces.  Also fabric-routing determinism: an identical
// traffic pattern on an identically seeded fabric yields bit-identical
// delivery traces under every RoutingPolicy (Valiant's intermediate
// choice draws from a seeded per-switch RNG, not ambient entropy).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "hsn/fabric.hpp"
#include "hsn/shard_engine.hpp"
#include "sim/event_loop.hpp"
#include "util/rng.hpp"

namespace shs::sim {
namespace {

TEST(EventLoopDeterminism, EqualTimestampsFireInInsertionOrder) {
  // Randomized schedule over a handful of timestamps so collisions are
  // plentiful; the property must hold regardless of submission pattern.
  Rng rng(0xdead);
  EventLoop loop;
  std::vector<std::pair<SimTime, int>> trace;
  std::vector<std::pair<SimTime, int>> expected;
  for (int i = 0; i < 500; ++i) {
    const SimTime t = static_cast<SimTime>(rng.uniform_u64(8)) * kMillisecond;
    expected.emplace_back(t, i);
    loop.schedule_at(t, [&trace, t, i] { trace.emplace_back(t, i); });
  }
  // Insertion order is the tie-breaker: a stable sort by time over the
  // submission sequence is exactly the required execution order.
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  loop.run_until_idle();
  EXPECT_EQ(trace, expected);
}

TEST(EventLoopDeterminism, PeriodicCancelFromOwnCallbackStopsFiring) {
  EventLoop loop;
  int fired = 0;
  EventLoop::TaskId id = EventLoop::kInvalidTask;
  id = loop.schedule_periodic(kMillisecond, [&] {
    ++fired;
    EXPECT_TRUE(loop.cancel(id));
  });
  loop.run_for(100 * kMillisecond);
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(loop.idle());

  // Cancelling from the callback of a *later* firing also works (the
  // re-armed queue entry must not resurrect the task).
  int count = 0;
  EventLoop::TaskId id2 = EventLoop::kInvalidTask;
  id2 = loop.schedule_periodic(kMillisecond, [&] {
    if (++count == 3) {
      EXPECT_TRUE(loop.cancel(id2));
    }
  });
  loop.run_for(100 * kMillisecond);
  EXPECT_EQ(count, 3);
  EXPECT_TRUE(loop.idle());
}

/// One randomized workload: immediate events, delayed events, nested
/// scheduling from inside callbacks, self-cancelling periodics — all
/// driven by a seeded Rng.  Returns the (time, label) execution trace.
std::vector<std::pair<SimTime, int>> run_workload(std::uint64_t seed) {
  Rng rng(seed);
  EventLoop loop;
  auto trace = std::make_shared<std::vector<std::pair<SimTime, int>>>();
  int label = 0;
  for (int i = 0; i < 200; ++i) {
    const int id = label++;
    const SimDuration delay =
        static_cast<SimDuration>(rng.uniform_u64(10)) * kMillisecond;
    switch (rng.uniform_u64(3)) {
      case 0:
        loop.schedule_after(delay, [&loop, trace, id] {
          trace->emplace_back(loop.now(), id);
        });
        break;
      case 1:
        // Nested: the callback schedules a follow-up event.
        loop.schedule_after(delay, [&loop, trace, id] {
          trace->emplace_back(loop.now(), id);
          loop.schedule_after(kMillisecond, [&loop, trace, id] {
            trace->emplace_back(loop.now(), 10'000 + id);
          });
        });
        break;
      default: {
        auto fired = std::make_shared<int>(0);
        auto task = std::make_shared<EventLoop::TaskId>(
            EventLoop::kInvalidTask);
        *task = loop.schedule_periodic(
            std::max<SimDuration>(delay, kMillisecond),
            [&loop, trace, id, fired, task] {
              trace->emplace_back(loop.now(), 20'000 + id);
              if (++*fired == 3) loop.cancel(*task);
            });
        break;
      }
    }
  }
  loop.run_until(kSecond);
  EXPECT_TRUE(loop.idle());
  return *trace;
}

TEST(EventLoopDeterminism, IdenticalSchedulesProduceIdenticalTraces) {
  const auto a = run_workload(0x5eed);
  const auto b = run_workload(0x5eed);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);

  // A different seed really does produce a different schedule (guards
  // against the workload collapsing to something seed-independent).
  const auto c = run_workload(0x07e4);
  EXPECT_NE(a, c);
}

/// Replays a fixed cross-switch traffic mix (light flows plus a hotspot
/// burst that pushes UGAL over its divert threshold) and returns the
/// (arrival, hops) delivery trace — the observable signature of every
/// routing decision taken.
std::vector<std::pair<SimTime, int>> routed_trace(
    const hsn::TopologyConfig& topo, std::size_t nodes,
    std::uint64_t seed) {
  hsn::TimingConfig flat;
  flat.jitter_amplitude = 0.0;
  flat.run_bias_amplitude = 0.0;
  auto f = hsn::Fabric::create(nodes, flat, seed, topo);
  constexpr hsn::Vni kVni = 99;
  std::vector<hsn::EndpointId> eps;
  for (std::size_t i = 0; i < nodes; ++i) {
    const auto addr = static_cast<hsn::NicAddr>(i);
    EXPECT_TRUE(f->switch_for(addr)->authorize_vni(addr, kVni).is_ok());
    eps.push_back(f->nic(addr)
                      .alloc_endpoint(kVni, hsn::TrafficClass::kBulkData)
                      .value());
  }
  const std::size_t half = nodes / 2;
  for (int k = 0; k < 24; ++k) {
    for (std::size_t s = 0; s < half; ++s) {
      const auto dst = static_cast<hsn::NicAddr>(half + s);
      EXPECT_TRUE(f->nic(static_cast<hsn::NicAddr>(s))
                      .post_send(eps[s], dst, eps[dst],
                                 static_cast<std::uint64_t>(k), 32 * 1024,
                                 {}, 0)
                      .is_ok());
    }
  }
  std::vector<std::pair<SimTime, int>> trace;
  for (std::size_t d = half; d < nodes; ++d) {
    while (true) {
      auto pkt =
          f->nic(static_cast<hsn::NicAddr>(d)).poll_rx(eps[d]);
      if (!pkt.is_ok()) break;
      trace.emplace_back(pkt.value().arrival_vt,
                         static_cast<int>(pkt.value().hops));
    }
  }
  EXPECT_EQ(f->total_counters().dropped_total(), 0u);
  return trace;
}

/// Replays a full failure/recovery episode — traffic, a mid-run element
/// failure with an open pre-repair loss window, the fabric-manager
/// repair, more traffic, restore, final traffic — and returns the
/// delivery trace plus the loss accounting.  Every piece (baseline
/// routing, seeded re-plan, drop set) must be bit-identical per seed.
struct FailureEpisode {
  std::vector<std::pair<SimTime, int>> trace;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_link_down = 0;
};

bool operator==(const FailureEpisode& a, const FailureEpisode& b) {
  return a.trace == b.trace && a.delivered == b.delivered &&
         a.dropped_link_down == b.dropped_link_down;
}

FailureEpisode failure_episode(const hsn::TopologyConfig& topo,
                               std::size_t nodes, bool fail_whole_switch,
                               hsn::SwitchId victim_a,
                               hsn::SwitchId victim_b,
                               std::uint64_t seed) {
  hsn::TimingConfig flat;
  flat.jitter_amplitude = 0.0;
  flat.run_bias_amplitude = 0.0;
  auto f = hsn::Fabric::create(nodes, flat, seed, topo);
  f->manager().set_auto_repair(false);
  constexpr hsn::Vni kVni = 99;
  std::vector<hsn::EndpointId> eps;
  for (std::size_t i = 0; i < nodes; ++i) {
    const auto addr = static_cast<hsn::NicAddr>(i);
    EXPECT_TRUE(f->switch_for(addr)->authorize_vni(addr, kVni).is_ok());
    eps.push_back(f->nic(addr)
                      .alloc_endpoint(kVni, hsn::TrafficClass::kBulkData)
                      .value());
  }
  const std::size_t half = nodes / 2;
  const auto burst = [&](int rounds, std::uint64_t tag_base) {
    for (int k = 0; k < rounds; ++k) {
      for (std::size_t s = 0; s < half; ++s) {
        const auto dst = static_cast<hsn::NicAddr>(half + s);
        // Sends may legitimately fail inside the loss window.
        (void)f->nic(static_cast<hsn::NicAddr>(s))
            .post_send(eps[s], dst, eps[dst], tag_base + k, 32 * 1024, {},
                       0);
      }
    }
  };

  burst(8, 0);  // healthy baseline
  if (fail_whole_switch) {
    EXPECT_TRUE(f->fail_switch(victim_a).is_ok());
  } else {
    EXPECT_TRUE(f->fail_link(victim_a, victim_b).is_ok());
  }
  burst(8, 100);          // open loss window: stale tables, dead element
  f->manager().repair();  // re-plan lands
  burst(8, 200);          // converged on the repaired routes
  if (fail_whole_switch) {
    EXPECT_TRUE(f->restore_switch(victim_a).is_ok());
  } else {
    EXPECT_TRUE(f->restore_link(victim_a, victim_b).is_ok());
  }
  f->manager().repair();
  burst(8, 300);  // back on pristine routing

  FailureEpisode episode;
  for (std::size_t d = half; d < nodes; ++d) {
    while (true) {
      auto pkt = f->nic(static_cast<hsn::NicAddr>(d)).poll_rx(eps[d]);
      if (!pkt.is_ok()) break;
      episode.trace.emplace_back(pkt.value().arrival_vt,
                                 static_cast<int>(pkt.value().hops));
    }
  }
  episode.delivered = f->total_counters().delivered;
  episode.dropped_link_down = f->total_counters().dropped_link_down;
  return episode;
}

TEST(FabricRoutingDeterminism, FailureRecoveryEpisodesAreDeterministic) {
  for (const auto policy :
       {hsn::RoutingPolicy::kMinimal, hsn::RoutingPolicy::kUgal}) {
    SCOPED_TRACE(hsn::routing_policy_name(policy));

    // Fat-tree: spine 5 of 4-leaves/4-spines dies mid-run.
    hsn::TopologyConfig fat_tree;
    fat_tree.kind = hsn::TopologyKind::kFatTree;
    fat_tree.nodes_per_switch = 8;
    fat_tree.spines = 4;
    fat_tree.routing = policy;
    const auto ft = failure_episode(fat_tree, 32, /*switch=*/true, 5, 0,
                                    0xfade);
    EXPECT_EQ(ft,
              failure_episode(fat_tree, 32, true, 5, 0, 0xfade));
    EXPECT_GT(ft.delivered, 0u);

    // Dragonfly: the (g0, g2) global gateway link (2, 8) dies mid-run —
    // squarely on the path of the group 0/1 -> group 2/3 traffic.
    hsn::TopologyConfig dragonfly;
    dragonfly.kind = hsn::TopologyKind::kDragonfly;
    dragonfly.nodes_per_switch = 4;
    dragonfly.switches_per_group = 4;
    dragonfly.routing = policy;
    const auto df = failure_episode(dragonfly, 64, /*switch=*/false, 2, 8,
                                    0xfade);
    EXPECT_EQ(df,
              failure_episode(dragonfly, 64, false, 2, 8, 0xfade));
    EXPECT_GT(df.delivered, 0u);
    if (policy == hsn::RoutingPolicy::kMinimal) {
      // Static routes cannot dodge the dead link before the repair: the
      // loss window really opened and was counted.
      EXPECT_GT(df.dropped_link_down, 0u);

      // A different seed reshuffles the baseline spine hash AND the
      // re-plan's seeded next hops — the static episode signature must
      // move with it.  (Adaptive policies steer by queue lag, so their
      // traces are legitimately hash-independent.)
      EXPECT_NE(ft, failure_episode(fat_tree, 32, true, 5, 0, 0x0bad));
    }
  }
}

// ---------------------------------------------------------------------------
// Golden digests: the flat-table data plane (compiled routing tables,
// dense port/uplink vectors, pre-resolved counter slabs) is a pure
// *representation* change — per-seed results must be bit-identical to
// the hash-table implementation it replaced.  These constants were
// recorded from the pre-refactor tree (unordered_map forwarding state)
// with the exact workloads below; any divergence means the data plane's
// behavior changed, not just its layout.

std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t trace_digest(
    const std::vector<std::pair<SimTime, int>>& trace) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const auto& [t, hops] : trace) {
    h = fnv1a_mix(h, static_cast<std::uint64_t>(t));
    h = fnv1a_mix(h, static_cast<std::uint64_t>(hops));
  }
  return h;
}

std::uint64_t episode_digest(const FailureEpisode& e) {
  std::uint64_t h = trace_digest(e.trace);
  h = fnv1a_mix(h, e.delivered);
  h = fnv1a_mix(h, e.dropped_link_down);
  return h;
}

TEST(FabricRoutingDeterminism, GoldenDigestsMatchPreFlatTableRecording) {
  struct Golden {
    hsn::RoutingPolicy policy;
    std::uint64_t fat_tree_route;
    std::uint64_t dragonfly_route;
    std::uint64_t fat_tree_fail;
    std::uint64_t dragonfly_fail;
  };
  // Recorded from the hash-table tree at PR-4 head (seed 0xd3ad routed
  // traffic, seed 0xfade failure episodes), zero-jitter timing.
  const Golden goldens[] = {
      {hsn::RoutingPolicy::kMinimal, 0x3b14b508480f6d75ULL,
       0x9b749cdb47a37e46ULL, 0x8ee07b7ef1e87d77ULL, 0xb344da764e087497ULL},
      {hsn::RoutingPolicy::kValiant, 0x926fe200a28f5443ULL,
       0x1130d8e76fc9a73fULL, 0xcc39dbbd28f96431ULL, 0x5afd436144dced58ULL},
      {hsn::RoutingPolicy::kUgal, 0x4b23c0d0195e2685ULL,
       0xd57b32e3c7933dacULL, 0x9b2ffbeb243f418fULL, 0xf851c9f772d79ff8ULL},
  };
  for (const Golden& g : goldens) {
    SCOPED_TRACE(hsn::routing_policy_name(g.policy));

    hsn::TopologyConfig fat_tree;
    fat_tree.kind = hsn::TopologyKind::kFatTree;
    fat_tree.nodes_per_switch = 8;
    fat_tree.spines = 4;
    fat_tree.routing = g.policy;
    EXPECT_EQ(trace_digest(routed_trace(fat_tree, 32, 0xd3ad)),
              g.fat_tree_route);
    EXPECT_EQ(episode_digest(failure_episode(fat_tree, 32, /*switch=*/true,
                                             5, 0, 0xfade)),
              g.fat_tree_fail);

    hsn::TopologyConfig dragonfly;
    dragonfly.kind = hsn::TopologyKind::kDragonfly;
    dragonfly.nodes_per_switch = 4;
    dragonfly.switches_per_group = 4;
    dragonfly.routing = g.policy;
    EXPECT_EQ(trace_digest(routed_trace(dragonfly, 64, 0xd3ad)),
              g.dragonfly_route);
    EXPECT_EQ(episode_digest(failure_episode(dragonfly, 64, /*switch=*/false,
                                             2, 8, 0xfade)),
              g.dragonfly_fail);
  }
}

// ---------------------------------------------------------------------------
// Lossy-fabric reliability determinism: with probabilistic loss,
// ACK loss, a timed link flap, and a mid-run link failure/re-route all
// armed — plus NIC-level retransmission recovering through it — the
// entire observable episode (delivery trace, loss accounting, retry
// accounting) must still be a pure function of the seed.  The fault
// draws come from a dedicated per-switch RNG stream and the backoff
// jitter from a per-NIC stream, so arming faults must not perturb the
// routing RNG (the goldens above prove that) and per-seed chaos must
// replay bit-identically (the goldens below prove this).

struct LossyEpisode {
  std::vector<std::pair<SimTime, int>> trace;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_loss = 0;
  std::uint64_t dropped_link_down = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t duplicates = 0;
};

std::uint64_t lossy_episode_digest(const LossyEpisode& e) {
  std::uint64_t h = trace_digest(e.trace);
  h = fnv1a_mix(h, e.delivered);
  h = fnv1a_mix(h, e.dropped_loss);
  h = fnv1a_mix(h, e.dropped_link_down);
  h = fnv1a_mix(h, e.retransmits);
  h = fnv1a_mix(h, e.duplicates);
  return h;
}

/// Dragonfly (4 nodes/switch, 4 switches/group, 64 nodes) under 2% link
/// loss + 1% ACK loss, a 500us flap of the (g0, g1) gateway, and a
/// mid-run (g0, g2) gateway failure repaired during the retry window
/// (the hook nudges the fabric manager from the third attempt on).
LossyEpisode lossy_failure_episode(hsn::RoutingPolicy policy,
                                   std::uint64_t seed) {
  hsn::TimingConfig flat;
  flat.jitter_amplitude = 0.0;
  flat.run_bias_amplitude = 0.0;
  hsn::TopologyConfig topo;
  topo.kind = hsn::TopologyKind::kDragonfly;
  topo.nodes_per_switch = 4;
  topo.switches_per_group = 4;
  topo.routing = policy;
  constexpr std::size_t nodes = 64;
  auto f = hsn::Fabric::create(nodes, flat, seed, topo);
  f->manager().set_auto_repair(false);

  hsn::FaultProfile lossy;
  lossy.drop_rate = 0.02;
  lossy.ack_loss_rate = 0.01;
  f->set_fault_profile(lossy);
  EXPECT_TRUE(f->add_link_flap(1, 4, 0, from_micros(500)).is_ok());
  hsn::ReliabilityConfig rel;
  rel.enabled = true;
  f->set_reliability(rel);
  f->set_retry_hook([&f](int attempt, SimDuration) {
    if (attempt >= 3) (void)f->manager().repair_if_pending();
  });

  constexpr hsn::Vni kVni = 99;
  std::vector<hsn::EndpointId> eps;
  for (std::size_t i = 0; i < nodes; ++i) {
    const auto addr = static_cast<hsn::NicAddr>(i);
    EXPECT_TRUE(f->switch_for(addr)->authorize_vni(addr, kVni).is_ok());
    eps.push_back(f->nic(addr)
                      .alloc_endpoint(kVni, hsn::TrafficClass::kBulkData)
                      .value());
  }
  const std::size_t half = nodes / 2;
  const auto burst = [&](int rounds, std::uint64_t tag_base) {
    for (int k = 0; k < rounds; ++k) {
      for (std::size_t s = 0; s < half; ++s) {
        const auto dst = static_cast<hsn::NicAddr>(half + s);
        // A rare budget exhaustion inside the windows is legitimate —
        // and, like everything else here, must replay per-seed.
        (void)f->nic(static_cast<hsn::NicAddr>(s))
            .post_send(eps[s], dst, eps[dst], tag_base + k, 32 * 1024, {},
                       0);
      }
    }
  };

  burst(8, 0);  // lossy + flapping baseline
  EXPECT_TRUE(f->fail_link(2, 8).is_ok());
  burst(8, 100);  // loss window: retransmits carry ops across the replan
  (void)f->manager().repair_if_pending();
  burst(8, 200);  // converged on repaired routes, still lossy
  EXPECT_TRUE(f->restore_link(2, 8).is_ok());
  (void)f->manager().repair_if_pending();
  burst(8, 300);  // pristine routing, faults still armed

  LossyEpisode e;
  for (std::size_t d = half; d < nodes; ++d) {
    while (true) {
      auto pkt = f->nic(static_cast<hsn::NicAddr>(d)).poll_rx(eps[d]);
      if (!pkt.is_ok()) break;
      e.trace.emplace_back(pkt.value().arrival_vt,
                           static_cast<int>(pkt.value().hops));
    }
  }
  const auto totals = f->total_counters();
  e.delivered = totals.delivered;
  e.dropped_loss = totals.dropped_loss;
  e.dropped_link_down = totals.dropped_link_down;
  const auto rc = f->reliability_totals();
  e.retransmits = rc.retransmits;
  e.duplicates = rc.duplicates;
  return e;
}

TEST(FabricRoutingDeterminism, LossyFailureEpisodesMatchPinnedDigests) {
  struct Golden {
    hsn::RoutingPolicy policy;
    std::uint64_t digest;
  };
  // Recorded at introduction (seed 0xfeed, zero-jitter timing).  A
  // divergence means the fault model or retransmit protocol changed
  // behaviorally — rerecord only with a data-plane change you can
  // explain.
  const Golden goldens[] = {
      {hsn::RoutingPolicy::kMinimal, 0x79e63db01ddab077ULL},
      {hsn::RoutingPolicy::kValiant, 0x55d0fc3d4face9fbULL},
      {hsn::RoutingPolicy::kUgal, 0xa497bc951a55e48bULL},
  };
  for (const Golden& g : goldens) {
    SCOPED_TRACE(hsn::routing_policy_name(g.policy));
    const LossyEpisode a = lossy_failure_episode(g.policy, 0xfeed);
    // The episode exercised what it claims: loss, recovery, dedup.
    EXPECT_GT(a.delivered, 0u);
    EXPECT_GT(a.dropped_loss, 0u);
    EXPECT_GT(a.retransmits, 0u);
    EXPECT_GT(a.duplicates, 0u);
    EXPECT_EQ(lossy_episode_digest(a), g.digest);
    // Bit-identical replay of the full chaos episode.
    const LossyEpisode b = lossy_failure_episode(g.policy, 0xfeed);
    EXPECT_EQ(lossy_episode_digest(b), lossy_episode_digest(a));
    // A different seed genuinely reshuffles the fault schedule.
    EXPECT_NE(lossy_episode_digest(lossy_failure_episode(g.policy, 0xbead)),
              lossy_episode_digest(a));
  }
}

// ---------------------------------------------------------------------------
// Sharded data-plane determinism: the conservative-window engine
// (hsn::ShardEngine) must produce bit-identical per-seed results no
// matter how many worker threads drive its domains — the domain
// partition, window boundaries, per-domain (vt, seq) processing order,
// and barrier merge order are all pure functions of the input.  The
// engine interleaves hops across packets in virtual-time order (unlike
// the legacy depth-first walk), so its schedule is compared against
// itself across thread counts, not against the legacy goldens above.

std::vector<std::pair<SimTime, int>> sharded_trace(
    const hsn::TopologyConfig& topo, std::size_t nodes, std::uint64_t seed,
    int threads) {
  hsn::TimingConfig flat;
  flat.jitter_amplitude = 0.0;
  flat.run_bias_amplitude = 0.0;
  auto f = hsn::Fabric::create(nodes, flat, seed, topo);
  hsn::ShardEngine engine(*f, threads);
  constexpr hsn::Vni kVni = 99;
  std::vector<hsn::EndpointId> eps;
  for (std::size_t i = 0; i < nodes; ++i) {
    const auto addr = static_cast<hsn::NicAddr>(i);
    EXPECT_TRUE(f->switch_for(addr)->authorize_vni(addr, kVni).is_ok());
    eps.push_back(f->nic(addr)
                      .alloc_endpoint(kVni, hsn::TrafficClass::kBulkData)
                      .value());
  }
  const std::size_t half = nodes / 2;
  for (int k = 0; k < 24; ++k) {
    for (std::size_t s = 0; s < half; ++s) {
      const auto dst = static_cast<hsn::NicAddr>(half + s);
      EXPECT_TRUE(engine
                      .post_send(static_cast<hsn::NicAddr>(s), eps[s], dst,
                                 eps[dst], static_cast<std::uint64_t>(k),
                                 32 * 1024, 0)
                      .is_ok());
    }
  }
  engine.flush();
  EXPECT_EQ(engine.in_flight(), 0u);
  std::vector<std::pair<SimTime, int>> trace;
  for (std::size_t d = half; d < nodes; ++d) {
    while (true) {
      auto pkt = f->nic(static_cast<hsn::NicAddr>(d)).poll_rx(eps[d]);
      if (!pkt.is_ok()) break;
      trace.emplace_back(pkt.value().arrival_vt,
                         static_cast<int>(pkt.value().hops));
    }
  }
  EXPECT_EQ(f->total_counters().dropped_total(), 0u);
  EXPECT_EQ(f->total_counters().delivered + f->total_counters().dropped_total(),
            engine.attempts_injected());
  return trace;
}

FailureEpisode sharded_failure_episode(const hsn::TopologyConfig& topo,
                                       std::size_t nodes,
                                       bool fail_whole_switch,
                                       hsn::SwitchId victim_a,
                                       hsn::SwitchId victim_b,
                                       std::uint64_t seed, int threads) {
  hsn::TimingConfig flat;
  flat.jitter_amplitude = 0.0;
  flat.run_bias_amplitude = 0.0;
  auto f = hsn::Fabric::create(nodes, flat, seed, topo);
  f->manager().set_auto_repair(false);
  hsn::ShardEngine engine(*f, threads);
  constexpr hsn::Vni kVni = 99;
  std::vector<hsn::EndpointId> eps;
  for (std::size_t i = 0; i < nodes; ++i) {
    const auto addr = static_cast<hsn::NicAddr>(i);
    EXPECT_TRUE(f->switch_for(addr)->authorize_vni(addr, kVni).is_ok());
    eps.push_back(f->nic(addr)
                      .alloc_endpoint(kVni, hsn::TrafficClass::kBulkData)
                      .value());
  }
  const std::size_t half = nodes / 2;
  // Control-plane mutations are only legal between flushes, so each
  // burst is posted and fully flushed before the next episode phase.
  const auto burst = [&](int rounds, std::uint64_t tag_base) {
    for (int k = 0; k < rounds; ++k) {
      for (std::size_t s = 0; s < half; ++s) {
        const auto dst = static_cast<hsn::NicAddr>(half + s);
        EXPECT_TRUE(engine
                        .post_send(static_cast<hsn::NicAddr>(s), eps[s], dst,
                                   eps[dst], tag_base + k, 32 * 1024, 0)
                        .is_ok());
      }
    }
    engine.flush();
  };

  burst(8, 0);  // healthy baseline
  if (fail_whole_switch) {
    EXPECT_TRUE(f->fail_switch(victim_a).is_ok());
  } else {
    EXPECT_TRUE(f->fail_link(victim_a, victim_b).is_ok());
  }
  burst(8, 100);          // open loss window: stale tables, dead element
  f->manager().repair();  // re-plan lands
  burst(8, 200);          // converged on the repaired routes
  if (fail_whole_switch) {
    EXPECT_TRUE(f->restore_switch(victim_a).is_ok());
  } else {
    EXPECT_TRUE(f->restore_link(victim_a, victim_b).is_ok());
  }
  f->manager().repair();
  burst(8, 300);  // back on pristine routing

  FailureEpisode episode;
  for (std::size_t d = half; d < nodes; ++d) {
    while (true) {
      auto pkt = f->nic(static_cast<hsn::NicAddr>(d)).poll_rx(eps[d]);
      if (!pkt.is_ok()) break;
      episode.trace.emplace_back(pkt.value().arrival_vt,
                                 static_cast<int>(pkt.value().hops));
    }
  }
  episode.delivered = f->total_counters().delivered;
  episode.dropped_link_down = f->total_counters().dropped_link_down;
  return episode;
}

/// The lossy chaos episode on the sharded engine: probabilistic loss +
/// ACK loss + a timed flap + a mid-run link failure, with the NIC
/// retransmit protocol recovering through it — retransmits are charged
/// at window barriers instead of inline.  No retry hook (the engine
/// forbids control-plane work mid-flush); the repair lands between
/// bursts instead, so ops failing inside a burst retry against stale
/// tables until their budget runs out — deterministically.
LossyEpisode sharded_lossy_episode(hsn::RoutingPolicy policy,
                                   std::uint64_t seed, int threads) {
  hsn::TimingConfig flat;
  flat.jitter_amplitude = 0.0;
  flat.run_bias_amplitude = 0.0;
  hsn::TopologyConfig topo;
  topo.kind = hsn::TopologyKind::kDragonfly;
  topo.nodes_per_switch = 4;
  topo.switches_per_group = 4;
  topo.routing = policy;
  constexpr std::size_t nodes = 64;
  auto f = hsn::Fabric::create(nodes, flat, seed, topo);
  f->manager().set_auto_repair(false);

  hsn::FaultProfile lossy;
  lossy.drop_rate = 0.02;
  lossy.ack_loss_rate = 0.01;
  f->set_fault_profile(lossy);
  EXPECT_TRUE(f->add_link_flap(1, 4, 0, from_micros(500)).is_ok());
  hsn::ReliabilityConfig rel;
  rel.enabled = true;
  f->set_reliability(rel);

  hsn::ShardEngine engine(*f, threads);
  constexpr hsn::Vni kVni = 99;
  std::vector<hsn::EndpointId> eps;
  for (std::size_t i = 0; i < nodes; ++i) {
    const auto addr = static_cast<hsn::NicAddr>(i);
    EXPECT_TRUE(f->switch_for(addr)->authorize_vni(addr, kVni).is_ok());
    eps.push_back(f->nic(addr)
                      .alloc_endpoint(kVni, hsn::TrafficClass::kBulkData)
                      .value());
  }
  const std::size_t half = nodes / 2;
  const auto burst = [&](int rounds, std::uint64_t tag_base) {
    for (int k = 0; k < rounds; ++k) {
      for (std::size_t s = 0; s < half; ++s) {
        const auto dst = static_cast<hsn::NicAddr>(half + s);
        EXPECT_TRUE(engine
                        .post_send(static_cast<hsn::NicAddr>(s), eps[s], dst,
                                   eps[dst], tag_base + k, 32 * 1024, 0)
                        .is_ok());
      }
    }
    engine.flush();
  };

  burst(8, 0);  // lossy + flapping baseline
  EXPECT_TRUE(f->fail_link(2, 8).is_ok());
  burst(8, 100);  // loss window: budgets may exhaust against stale tables
  (void)f->manager().repair_if_pending();
  burst(8, 200);  // converged on repaired routes, still lossy
  EXPECT_TRUE(f->restore_link(2, 8).is_ok());
  (void)f->manager().repair_if_pending();
  burst(8, 300);  // pristine routing, faults still armed

  LossyEpisode e;
  for (std::size_t d = half; d < nodes; ++d) {
    while (true) {
      auto pkt = f->nic(static_cast<hsn::NicAddr>(d)).poll_rx(eps[d]);
      if (!pkt.is_ok()) break;
      e.trace.emplace_back(pkt.value().arrival_vt,
                           static_cast<int>(pkt.value().hops));
    }
  }
  const auto totals = f->total_counters();
  e.delivered = totals.delivered;
  e.dropped_loss = totals.dropped_loss;
  e.dropped_link_down = totals.dropped_link_down;
  const auto rc = f->reliability_totals();
  e.retransmits = rc.retransmits;
  e.duplicates = rc.duplicates;
  return e;
}

// Pinned golden digests for the sharded single-thread episodes,
// recorded from the original heap-per-domain executor before the
// batched-run-queue/pooled-staging rework.  The rework is a pure
// storage and scheduling change under the same (domain, vt, seq) order,
// so every digest must stay bit-identical — and because each tN leg
// compares against the same t1 episode, the pins cover every thread
// count the tests run.
struct ShardedGoldens {
  std::uint64_t minimal;
  std::uint64_t valiant;
  std::uint64_t ugal;
  [[nodiscard]] std::uint64_t of(hsn::RoutingPolicy p) const {
    switch (p) {
      case hsn::RoutingPolicy::kMinimal:
        return minimal;
      case hsn::RoutingPolicy::kValiant:
        return valiant;
      case hsn::RoutingPolicy::kUgal:
        return ugal;
    }
    return 0;
  }
};
constexpr ShardedGoldens kRouteGoldenFt{0x3b14b508480f6d75ULL,
                                        0x40939aa2e5c2fb6aULL,
                                        0x4b23c0d0195e2685ULL};
constexpr ShardedGoldens kRouteGoldenDf{0x299449f1c8e79b1fULL,
                                        0x9ab87f2dd6f5c8ccULL,
                                        0xc618933480255169ULL};
constexpr ShardedGoldens kFailGoldenFt{0x8ee07b7ef1e87d77ULL,
                                       0x316b448f3d240991ULL,
                                       0x9b2ffbeb243f418fULL};
constexpr ShardedGoldens kFailGoldenDf{0x4d2af63239519ea2ULL,
                                       0x5896bb57027687f8ULL,
                                       0x9647b3427e08a2a5ULL};
constexpr ShardedGoldens kLossyGolden{0xacbb88a06ea6fb2bULL,
                                      0x70e2eafa2fa5e28dULL,
                                      0x96bcdd308b848508ULL};
constexpr ShardedGoldens kRmaGolden{0x0a7bc221f12cb93cULL,
                                    0xcadf950de5a226c7ULL,
                                    0xc4bdb7663ceea466ULL};
constexpr ShardedGoldens kRmaFailGolden{0xcbdea6c1505287f6ULL,
                                        0xde8019dc4520f813ULL,
                                        0x8fb8016be8e29336ULL};
constexpr ShardedGoldens kRmaLossyGolden{0xe05dbea1ff002d97ULL,
                                         0x439720fa8daf142aULL,
                                         0x3be12ac6902ba7bfULL};

TEST(ShardedDataPlaneDeterminism, RoutedTracesMatchAcrossThreadCounts) {
  for (const auto policy :
       {hsn::RoutingPolicy::kMinimal, hsn::RoutingPolicy::kValiant,
        hsn::RoutingPolicy::kUgal}) {
    SCOPED_TRACE(hsn::routing_policy_name(policy));

    hsn::TopologyConfig fat_tree;
    fat_tree.kind = hsn::TopologyKind::kFatTree;
    fat_tree.nodes_per_switch = 8;
    fat_tree.spines = 4;
    fat_tree.routing = policy;
    const auto ft1 = sharded_trace(fat_tree, 32, 0xd3ad, 1);
    EXPECT_FALSE(ft1.empty());
    EXPECT_EQ(trace_digest(ft1), kRouteGoldenFt.of(policy));
    EXPECT_EQ(ft1, sharded_trace(fat_tree, 32, 0xd3ad, 4));

    hsn::TopologyConfig dragonfly;
    dragonfly.kind = hsn::TopologyKind::kDragonfly;
    dragonfly.nodes_per_switch = 4;
    dragonfly.switches_per_group = 4;
    dragonfly.routing = policy;
    const auto df1 = sharded_trace(dragonfly, 64, 0xd3ad, 1);
    EXPECT_FALSE(df1.empty());
    EXPECT_EQ(trace_digest(df1), kRouteGoldenDf.of(policy));
    EXPECT_EQ(df1, sharded_trace(dragonfly, 64, 0xd3ad, 2));
    EXPECT_EQ(df1, sharded_trace(dragonfly, 64, 0xd3ad, 3));
    EXPECT_EQ(df1, sharded_trace(dragonfly, 64, 0xd3ad, 4));
    // A different seed still reshuffles results (guards against the
    // engine collapsing to something seed-independent).
    if (policy == hsn::RoutingPolicy::kValiant) {
      EXPECT_NE(df1, sharded_trace(dragonfly, 64, 0x0bad, 4));
    }
  }
}

TEST(ShardedDataPlaneDeterminism, FailureEpisodesMatchAcrossThreadCounts) {
  for (const auto policy :
       {hsn::RoutingPolicy::kMinimal, hsn::RoutingPolicy::kValiant,
        hsn::RoutingPolicy::kUgal}) {
    SCOPED_TRACE(hsn::routing_policy_name(policy));

    hsn::TopologyConfig fat_tree;
    fat_tree.kind = hsn::TopologyKind::kFatTree;
    fat_tree.nodes_per_switch = 8;
    fat_tree.spines = 4;
    fat_tree.routing = policy;
    const auto ft1 =
        sharded_failure_episode(fat_tree, 32, /*switch=*/true, 5, 0, 0xfade,
                                1);
    EXPECT_GT(ft1.delivered, 0u);
    EXPECT_EQ(episode_digest(ft1), kFailGoldenFt.of(policy));
    EXPECT_EQ(ft1, sharded_failure_episode(fat_tree, 32, true, 5, 0, 0xfade,
                                           4));

    hsn::TopologyConfig dragonfly;
    dragonfly.kind = hsn::TopologyKind::kDragonfly;
    dragonfly.nodes_per_switch = 4;
    dragonfly.switches_per_group = 4;
    dragonfly.routing = policy;
    const auto df1 = sharded_failure_episode(dragonfly, 64, /*switch=*/false,
                                             2, 8, 0xfade, 1);
    EXPECT_GT(df1.delivered, 0u);
    EXPECT_EQ(episode_digest(df1), kFailGoldenDf.of(policy));
    EXPECT_EQ(df1, sharded_failure_episode(dragonfly, 64, false, 2, 8,
                                           0xfade, 3));
    EXPECT_EQ(df1, sharded_failure_episode(dragonfly, 64, false, 2, 8,
                                           0xfade, 4));
    if (policy == hsn::RoutingPolicy::kMinimal) {
      // The loss window really opened on the static policy.
      EXPECT_GT(df1.dropped_link_down, 0u);
    }
  }
}

TEST(ShardedDataPlaneDeterminism, LossyEpisodesMatchAcrossThreadCounts) {
  for (const auto policy :
       {hsn::RoutingPolicy::kMinimal, hsn::RoutingPolicy::kValiant,
        hsn::RoutingPolicy::kUgal}) {
    SCOPED_TRACE(hsn::routing_policy_name(policy));
    const LossyEpisode a = sharded_lossy_episode(policy, 0xfeed, 1);
    // The episode exercised what it claims: loss, recovery, dedup.
    EXPECT_GT(a.delivered, 0u);
    EXPECT_GT(a.dropped_loss, 0u);
    EXPECT_GT(a.retransmits, 0u);
    EXPECT_GT(a.duplicates, 0u);
    EXPECT_EQ(lossy_episode_digest(a), kLossyGolden.of(policy));
    const LossyEpisode b = sharded_lossy_episode(policy, 0xfeed, 4);
    EXPECT_EQ(lossy_episode_digest(a),
              lossy_episode_digest(sharded_lossy_episode(policy, 0xfeed, 3)));
    EXPECT_EQ(lossy_episode_digest(a), lossy_episode_digest(b));
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.retransmits, b.retransmits);
    // A different seed genuinely reshuffles the fault schedule.
    EXPECT_NE(lossy_episode_digest(sharded_lossy_episode(policy, 0xbead, 4)),
              lossy_episode_digest(a));
  }
}

// ---------------------------------------------------------------------------
// RMA-inclusive sharded determinism: the engine now drives the full
// verb set — two-sided sends, one-sided writes and reads, their
// target-side completion traffic (ACKs, read responses, NACKs), and the
// reliable-delivery retransmits of all of the above — through the same
// (domain, vt, seq) merge order.  The observable episode (delivery
// traces, per-initiator completion-event streams, bytes landed in the
// target MRs, loss/retry accounting) must be bit-identical across
// thread counts for every routing policy.

struct RmaEpisode {
  std::vector<std::pair<SimTime, int>> trace;  ///< two-sided deliveries
  std::vector<std::uint64_t> events;  ///< per-initiator event stream hashes
  std::uint64_t mr_hash = 0;          ///< bytes landed in every target MR
  std::uint64_t delivered = 0;
  std::uint64_t dropped_loss = 0;
  std::uint64_t dropped_link_down = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t rma_denied = 0;
};

std::uint64_t rma_episode_digest(const RmaEpisode& e) {
  std::uint64_t h = trace_digest(e.trace);
  for (const auto v : e.events) h = fnv1a_mix(h, v);
  h = fnv1a_mix(h, e.mr_hash);
  h = fnv1a_mix(h, e.delivered);
  h = fnv1a_mix(h, e.dropped_loss);
  h = fnv1a_mix(h, e.dropped_link_down);
  h = fnv1a_mix(h, e.retransmits);
  h = fnv1a_mix(h, e.duplicates);
  h = fnv1a_mix(h, e.rma_denied);
  return h;
}

/// Dragonfly episode mixing all three verbs round-robin per (round,
/// source) plus one guaranteed-denied write per burst (unknown rkey →
/// target NACK → fail-fast kError at the initiator).  `with_failure`
/// adds a mid-run gateway failure and repair; `lossy` arms
/// probabilistic loss + ACK loss.  Reliability is always on, so RMA
/// requests *and* their completion replies ride the retransmit
/// protocol, charged at window barriers.
RmaEpisode sharded_rma_episode(hsn::RoutingPolicy policy, bool with_failure,
                               bool lossy, std::uint64_t seed, int threads) {
  hsn::TimingConfig flat;
  flat.jitter_amplitude = 0.0;
  flat.run_bias_amplitude = 0.0;
  hsn::TopologyConfig topo;
  topo.kind = hsn::TopologyKind::kDragonfly;
  topo.nodes_per_switch = 4;
  topo.switches_per_group = 4;
  topo.routing = policy;
  constexpr std::size_t nodes = 64;
  auto f = hsn::Fabric::create(nodes, flat, seed, topo);
  f->manager().set_auto_repair(false);
  if (lossy) {
    hsn::FaultProfile p;
    p.drop_rate = 0.02;
    p.ack_loss_rate = 0.01;
    f->set_fault_profile(p);
  }
  hsn::ReliabilityConfig rel;
  rel.enabled = true;
  f->set_reliability(rel);

  hsn::ShardEngine engine(*f, threads);
  constexpr hsn::Vni kVni = 99;
  std::vector<hsn::EndpointId> eps;
  for (std::size_t i = 0; i < nodes; ++i) {
    const auto addr = static_cast<hsn::NicAddr>(i);
    EXPECT_TRUE(f->switch_for(addr)->authorize_vni(addr, kVni).is_ok());
    eps.push_back(f->nic(addr)
                      .alloc_endpoint(kVni, hsn::TrafficClass::kBulkData)
                      .value());
  }
  const std::size_t half = nodes / 2;
  // One 4 KiB MR per target NIC, registered on its episode endpoint.
  std::vector<std::vector<std::byte>> regions(half,
                                              std::vector<std::byte>(4096));
  std::vector<hsn::RKey> rkeys(half);
  for (std::size_t s = 0; s < half; ++s) {
    const auto dst = static_cast<hsn::NicAddr>(half + s);
    rkeys[s] = f->nic(dst).register_mr(eps[dst], regions[s]).value();
  }

  std::uint64_t next_op = 1;
  const auto burst = [&](int rounds, std::uint64_t tag_base) {
    for (int k = 0; k < rounds; ++k) {
      for (std::size_t s = 0; s < half; ++s) {
        const auto src = static_cast<hsn::NicAddr>(s);
        const auto dst = static_cast<hsn::NicAddr>(half + s);
        const std::uint64_t off =
            (tag_base + static_cast<std::uint64_t>(k) * 128 + s * 8) % 4000;
        switch ((static_cast<std::size_t>(k) + s) % 3) {
          case 0:
            (void)engine.post_send(src, eps[s], dst, eps[dst], tag_base + k,
                                   32 * 1024, 0);
            break;
          case 1: {
            const std::vector<std::byte> data(
                64, static_cast<std::byte>((k * 31 + static_cast<int>(s)) &
                                           0xff));
            (void)engine.post_rma_write(src, eps[s], dst, rkeys[s], off, 64,
                                        data, 0, next_op++);
            break;
          }
          default:
            (void)engine.post_rma_read(src, eps[s], dst, rkeys[s], off, 64,
                                       0, next_op++);
            break;
        }
        if (k == 3 && s % 7 == 0) {
          // Unknown rkey: the target must deny and NACK — never silence.
          (void)engine.post_rma_write(src, eps[s], dst, 0xdeadbeefULL, 0, 8,
                                      {}, 0, next_op++);
        }
      }
    }
    engine.flush();
  };

  burst(8, 0);  // baseline
  if (with_failure) {
    EXPECT_TRUE(f->fail_link(2, 8).is_ok());
    burst(8, 100);  // loss window: stale tables
    (void)f->manager().repair_if_pending();
    burst(8, 200);  // converged on repaired routes
    EXPECT_TRUE(f->restore_link(2, 8).is_ok());
    (void)f->manager().repair_if_pending();
  }
  burst(8, 300);  // tail burst (pristine routing when failure episode)

  RmaEpisode e;
  for (std::size_t d = half; d < nodes; ++d) {
    while (true) {
      auto pkt = f->nic(static_cast<hsn::NicAddr>(d)).poll_rx(eps[d]);
      if (!pkt.is_ok()) break;
      e.trace.emplace_back(pkt.value().arrival_vt,
                           static_cast<int>(pkt.value().hops));
    }
  }
  // Per-initiator completion-event streams: order, correlation ids,
  // completion times, and read payload bytes all fold into the digest.
  for (std::size_t s = 0; s < half; ++s) {
    while (true) {
      auto ev = f->nic(static_cast<hsn::NicAddr>(s)).poll_event(eps[s]);
      if (!ev.is_ok()) break;
      const hsn::Event& v = ev.value();
      std::uint64_t h = fnv1a_mix(0x9e3779b97f4a7c15ULL, v.op_id);
      h = fnv1a_mix(h, static_cast<std::uint64_t>(v.type));
      h = fnv1a_mix(h, static_cast<std::uint64_t>(v.vt));
      h = fnv1a_mix(h, v.size);
      h = fnv1a_mix(h, static_cast<std::uint64_t>(v.status.code()));
      for (const auto b : v.data) {
        h = fnv1a_mix(h, static_cast<std::uint64_t>(b));
      }
      e.events.push_back(h);
    }
  }
  std::uint64_t mr_h = 0xcbf29ce484222325ULL;
  for (const auto& region : regions) {
    for (const auto b : region) {
      mr_h = fnv1a_mix(mr_h, static_cast<std::uint64_t>(b));
    }
  }
  e.mr_hash = mr_h;
  const auto totals = f->total_counters();
  e.delivered = totals.delivered;
  e.dropped_loss = totals.dropped_loss;
  e.dropped_link_down = totals.dropped_link_down;
  const auto rc = f->reliability_totals();
  e.retransmits = rc.retransmits;
  e.duplicates = rc.duplicates;
  for (std::size_t i = 0; i < nodes; ++i) {
    e.rma_denied +=
        f->nic(static_cast<hsn::NicAddr>(i)).counters().rma_denied;
  }
  return e;
}

TEST(ShardedDataPlaneDeterminism, RmaEpisodesMatchAcrossThreadCounts) {
  for (const auto policy :
       {hsn::RoutingPolicy::kMinimal, hsn::RoutingPolicy::kValiant,
        hsn::RoutingPolicy::kUgal}) {
    SCOPED_TRACE(hsn::routing_policy_name(policy));
    const RmaEpisode a = sharded_rma_episode(policy, /*with_failure=*/false,
                                             /*lossy=*/false, 0x51a, 1);
    EXPECT_FALSE(a.trace.empty());
    EXPECT_FALSE(a.events.empty());
    EXPECT_GT(a.rma_denied, 0u);
    const auto da = rma_episode_digest(a);
    EXPECT_EQ(da, kRmaGolden.of(policy));
    EXPECT_EQ(da, rma_episode_digest(sharded_rma_episode(
                      policy, false, false, 0x51a, 2)));
    EXPECT_EQ(da, rma_episode_digest(sharded_rma_episode(
                      policy, false, false, 0x51a, 3)));
    EXPECT_EQ(da, rma_episode_digest(sharded_rma_episode(
                      policy, false, false, 0x51a, 4)));
  }
}

TEST(ShardedDataPlaneDeterminism, RmaFailureEpisodesMatchAcrossThreadCounts) {
  for (const auto policy :
       {hsn::RoutingPolicy::kMinimal, hsn::RoutingPolicy::kValiant,
        hsn::RoutingPolicy::kUgal}) {
    SCOPED_TRACE(hsn::routing_policy_name(policy));
    const RmaEpisode a = sharded_rma_episode(policy, /*with_failure=*/true,
                                             /*lossy=*/false, 0x51b, 1);
    EXPECT_GT(a.delivered, 0u);
    const auto da = rma_episode_digest(a);
    EXPECT_EQ(da, kRmaFailGolden.of(policy));
    EXPECT_EQ(da, rma_episode_digest(sharded_rma_episode(
                      policy, true, false, 0x51b, 2)));
    EXPECT_EQ(da, rma_episode_digest(sharded_rma_episode(
                      policy, true, false, 0x51b, 3)));
    EXPECT_EQ(da, rma_episode_digest(sharded_rma_episode(
                      policy, true, false, 0x51b, 4)));
  }
}

TEST(ShardedDataPlaneDeterminism, LossyRmaEpisodesMatchAcrossThreadCounts) {
  for (const auto policy :
       {hsn::RoutingPolicy::kMinimal, hsn::RoutingPolicy::kValiant,
        hsn::RoutingPolicy::kUgal}) {
    SCOPED_TRACE(hsn::routing_policy_name(policy));
    const RmaEpisode a = sharded_rma_episode(policy, /*with_failure=*/true,
                                             /*lossy=*/true, 0x51c, 1);
    // The episode exercised what it claims: loss, recovery, denial.
    EXPECT_GT(a.delivered, 0u);
    EXPECT_GT(a.dropped_loss, 0u);
    EXPECT_GT(a.retransmits, 0u);
    EXPECT_GT(a.rma_denied, 0u);
    const auto da = rma_episode_digest(a);
    EXPECT_EQ(da, kRmaLossyGolden.of(policy));
    EXPECT_EQ(da, rma_episode_digest(sharded_rma_episode(
                      policy, true, true, 0x51c, 2)));
    EXPECT_EQ(da, rma_episode_digest(sharded_rma_episode(
                      policy, true, true, 0x51c, 3)));
    EXPECT_EQ(da, rma_episode_digest(sharded_rma_episode(
                      policy, true, true, 0x51c, 4)));
    // A different seed genuinely reshuffles the episode.
    EXPECT_NE(da, rma_episode_digest(sharded_rma_episode(
                      policy, true, true, 0xbead, 4)));
  }
}

TEST(FabricRoutingDeterminism, IdenticalSeedsIdenticalTracesPerPolicy) {
  for (const auto policy :
       {hsn::RoutingPolicy::kMinimal, hsn::RoutingPolicy::kValiant,
        hsn::RoutingPolicy::kUgal}) {
    SCOPED_TRACE(hsn::routing_policy_name(policy));

    hsn::TopologyConfig fat_tree;
    fat_tree.kind = hsn::TopologyKind::kFatTree;
    fat_tree.nodes_per_switch = 8;
    fat_tree.spines = 4;
    fat_tree.routing = policy;
    EXPECT_EQ(routed_trace(fat_tree, 32, 0xd3ad),
              routed_trace(fat_tree, 32, 0xd3ad));

    hsn::TopologyConfig dragonfly;
    dragonfly.kind = hsn::TopologyKind::kDragonfly;
    dragonfly.nodes_per_switch = 4;
    dragonfly.switches_per_group = 4;
    dragonfly.routing = policy;
    const auto a = routed_trace(dragonfly, 64, 0xd3ad);
    EXPECT_EQ(a, routed_trace(dragonfly, 64, 0xd3ad));
    EXPECT_FALSE(a.empty());

    // A different fabric seed reshuffles Valiant's intermediate choices
    // (guards against the per-switch RNG ignoring its seed).
    if (policy == hsn::RoutingPolicy::kValiant) {
      EXPECT_NE(a, routed_trace(dragonfly, 64, 0x0bad));
    }
  }
}

}  // namespace
}  // namespace shs::sim
