// vni_registry_test.cpp — VNI database semantics: exclusivity, the 30 s
// quarantine, user tracking, audit log, concurrency.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <thread>

#include "core/vni_registry.hpp"

namespace shs::core {
namespace {

struct RegistryFixture : ::testing::Test {
  db::Database database;
  VniRegistryConfig small_cfg{.vni_min = 100, .vni_max = 104,
                              .quarantine = 30 * kSecond};
};

TEST_F(RegistryFixture, AcquireGrantsDistinctVnis) {
  VniRegistry reg(database, small_cfg);
  auto a = reg.acquire("job/a", 0);
  auto b = reg.acquire("job/b", 0);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_NE(a.value(), b.value());
  EXPECT_GE(a.value(), 100u);
  EXPECT_LE(b.value(), 104u);
  EXPECT_EQ(reg.allocated_count(), 2u);
}

TEST_F(RegistryFixture, AcquireIsIdempotentPerOwner) {
  VniRegistry reg(database, small_cfg);
  auto first = reg.acquire("job/a", 0);
  auto again = reg.acquire("job/a", 5 * kSecond);
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(first.value(), again.value());
  EXPECT_EQ(reg.allocated_count(), 1u);
}

TEST_F(RegistryFixture, PoolExhaustion) {
  VniRegistry reg(database, small_cfg);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(reg.acquire("job/" + std::to_string(i), 0).is_ok());
  }
  EXPECT_EQ(reg.acquire("job/overflow", 0).code(),
            Code::kResourceExhausted);
}

TEST_F(RegistryFixture, FindByOwner) {
  VniRegistry reg(database, small_cfg);
  auto v = reg.acquire("job/a", 0);
  auto found = reg.find_by_owner("job/a");
  ASSERT_TRUE(found.is_ok());
  EXPECT_EQ(found.value(), v.value());
  EXPECT_EQ(reg.find_by_owner("job/unknown").code(), Code::kNotFound);
}

TEST_F(RegistryFixture, QuarantineBlocksReuseFor30s) {
  // "To avoid reusing still-active VNIs, we only hand out a VNI after it
  // has been released for more than 30 seconds."
  VniRegistryConfig one{.vni_min = 100, .vni_max = 100,
                        .quarantine = 30 * kSecond};
  VniRegistry reg(database, one);
  auto v = reg.acquire("job/a", 0);
  ASSERT_TRUE(v.is_ok());
  ASSERT_TRUE(reg.release("job/a", 10 * kSecond).is_ok());
  EXPECT_EQ(reg.quarantined_count(10 * kSecond), 1u);

  // Inside the window: the only VNI is quarantined -> exhausted.
  EXPECT_EQ(reg.acquire("job/b", 20 * kSecond).code(),
            Code::kResourceExhausted);
  EXPECT_EQ(reg.acquire("job/b", 39 * kSecond).code(),
            Code::kResourceExhausted);

  // After the window the VNI is reusable.
  auto again = reg.acquire("job/b", 41 * kSecond);
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again.value(), v.value());
}

TEST_F(RegistryFixture, ReleaseIsIdempotent) {
  VniRegistry reg(database, small_cfg);
  ASSERT_TRUE(reg.acquire("job/a", 0).is_ok());
  EXPECT_TRUE(reg.release("job/a", 1 * kSecond).is_ok());
  EXPECT_TRUE(reg.release("job/a", 2 * kSecond).is_ok());
  EXPECT_TRUE(reg.release("job/never-existed", 0).is_ok());
}

TEST_F(RegistryFixture, UsersAddRemoveIdempotent) {
  VniRegistry reg(database, small_cfg);
  auto v = reg.acquire("claim/c", 0);
  ASSERT_TRUE(v.is_ok());
  ASSERT_TRUE(reg.add_user(v.value(), "job/1", 0).is_ok());
  ASSERT_TRUE(reg.add_user(v.value(), "job/1", 0).is_ok());  // idempotent
  ASSERT_TRUE(reg.add_user(v.value(), "job/2", 0).is_ok());
  EXPECT_EQ(reg.users(v.value()),
            (std::vector<std::string>{"job/1", "job/2"}));
  ASSERT_TRUE(reg.remove_user(v.value(), "job/1", 0).is_ok());
  ASSERT_TRUE(reg.remove_user(v.value(), "job/1", 0).is_ok());  // idempotent
  EXPECT_EQ(reg.users(v.value()), std::vector<std::string>{"job/2"});
}

TEST_F(RegistryFixture, AddUserToUnallocatedVniFails) {
  VniRegistry reg(database, small_cfg);
  EXPECT_EQ(reg.add_user(100, "job/x", 0).code(),
            Code::kFailedPrecondition);
}

TEST_F(RegistryFixture, ReleaseDropsRemainingUsers) {
  VniRegistry reg(database, small_cfg);
  auto v = reg.acquire("claim/c", 0);
  ASSERT_TRUE(reg.add_user(v.value(), "job/1", 0).is_ok());
  ASSERT_TRUE(reg.release("claim/c", kSecond).is_ok());
  EXPECT_TRUE(reg.users(v.value()).empty());
}

TEST_F(RegistryFixture, AuditLogRecordsEverything) {
  // "we keep a log for all VNI allocation and release requests, as well
  // as VNI user addition and removal requests."
  VniRegistry reg(database, small_cfg);
  auto v = reg.acquire("job/a", kSecond);
  ASSERT_TRUE(reg.add_user(v.value(), "user/x", 2 * kSecond).is_ok());
  ASSERT_TRUE(reg.remove_user(v.value(), "user/x", 3 * kSecond).is_ok());
  ASSERT_TRUE(reg.release("job/a", 4 * kSecond).is_ok());
  const auto log = reg.audit_log();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0].op, "acquire");
  EXPECT_EQ(log[1].op, "add_user");
  EXPECT_EQ(log[2].op, "remove_user");
  EXPECT_EQ(log[3].op, "release");
  EXPECT_EQ(log[0].vni, v.value());
  EXPECT_EQ(log[0].ts, kSecond);
  EXPECT_EQ(log[3].ts, 4 * kSecond);
}

TEST_F(RegistryFixture, ConcurrentAcquisitionIsExclusive) {
  // The TOCTOU test at VNI-registry level: many threads acquire at once;
  // no VNI may be granted twice.
  VniRegistryConfig wide{.vni_min = 1, .vni_max = 10'000,
                         .quarantine = 30 * kSecond};
  VniRegistry reg(database, wide);
  constexpr int kThreads = 8;
  constexpr int kPer = 20;
  std::vector<std::vector<hsn::Vni>> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &got, t] {
      for (int i = 0; i < kPer; ++i) {
        auto v = reg.acquire(
            "job/" + std::to_string(t) + "-" + std::to_string(i), 0);
        EXPECT_TRUE(v.is_ok());
        if (v.is_ok()) got[t].push_back(v.value());
      }
    });
  }
  for (auto& th : threads) th.join();
  std::set<hsn::Vni> all;
  for (const auto& per : got) {
    for (const auto v : per) {
      EXPECT_TRUE(all.insert(v).second) << "VNI " << v << " double-granted";
    }
  }
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads * kPer));
}

// ---------------------------------------------------------------------------
// Crash-point recovery: kill the store at every op boundary of acquire's
// multi-op transaction (quarantine GC erase + alloc insert + audit
// insert) and verify the recovered registry is indistinguishable from a
// clean run.  The redo journal is written before any op applies, so the
// interrupted commit is durable: recovery replays it completely.

/// The registry-visible state a recovery must reproduce.
struct RegistrySnapshot {
  std::size_t allocated = 0;
  std::size_t quarantined = 0;
  std::size_t alloc_rows = 0;
  std::size_t audit_rows = 0;
  hsn::Vni owner_b = hsn::kInvalidVni;
  hsn::Vni next_grant = hsn::kInvalidVni;

  bool operator==(const RegistrySnapshot&) const = default;
};

RegistrySnapshot snapshot_registry(VniRegistry& reg, db::Database& db,
                                   SimTime now) {
  RegistrySnapshot s;
  s.allocated = reg.allocated_count();
  s.quarantined = reg.quarantined_count(now);
  s.alloc_rows = db.row_count("vni_alloc");
  s.audit_rows = db.row_count("audit_log");
  auto b = reg.find_by_owner("job/b");
  if (b.is_ok()) s.owner_b = b.value();
  auto probe = reg.acquire("job/probe", now);
  if (probe.is_ok()) s.next_grant = probe.value();
  return s;
}

/// acquire("job/a") at t=0, release at t=0 (quarantine), then
/// acquire("job/b") at t=31s — a transaction carrying the expired-row GC
/// erase, the new alloc insert, and the audit insert.
void seed_history(VniRegistry& reg) {
  ASSERT_TRUE(reg.acquire("job/a", 0).is_ok());
  ASSERT_TRUE(reg.release("job/a", 0).is_ok());
}

TEST_F(RegistryFixture, CrashAtEveryOpBoundaryRecoversToCleanRun) {
  // Clean run: the acquire commits normally.
  db::Database clean_db;
  VniRegistry clean(clean_db, small_cfg);
  seed_history(clean);
  ASSERT_TRUE(clean.acquire("job/b", 31 * kSecond).is_ok());
  const RegistrySnapshot want =
      snapshot_registry(clean, clean_db, 31 * kSecond);

  // The GC erase + insert + audit transaction has 3 ops; sweep past the
  // end so the "crash after everything applied" boundary is covered too.
  for (std::size_t boundary = 0; boundary <= 4; ++boundary) {
    SCOPED_TRACE(boundary);
    db::Database db;
    VniRegistry reg(db, small_cfg);
    seed_history(reg);

    db.crash_on_commit_after_ops(boundary);
    EXPECT_FALSE(reg.acquire("job/b", 31 * kSecond).is_ok());
    ASSERT_TRUE(db.crashed());

    // While the store is down the registry refuses to guess: the stale
    // index is never rebuilt from half-applied tables.
    EXPECT_EQ(reg.acquire("job/d", 31 * kSecond).code(),
              Code::kFailedPrecondition);

    ASSERT_TRUE(db.recover().is_ok());
    // The journaled commit replayed completely: the interrupted acquire
    // is durable, its owner mapping intact, and the rebuilt index hands
    // out exactly what the clean run would.
    EXPECT_EQ(snapshot_registry(reg, db, 31 * kSecond), want);
  }
}

TEST_F(RegistryFixture, FreshIndexOverRecoveredTablesMatchesSurvivor) {
  // A second registry instance built over the recovered tables (the
  // "process restart" shape) must agree with the surviving instance's
  // rebuilt index.
  db::Database db;
  auto reg = std::make_unique<VniRegistry>(db, small_cfg);
  seed_history(*reg);
  db.crash_on_commit_after_ops(1);  // die mid-GC
  EXPECT_FALSE(reg->acquire("job/b", 31 * kSecond).is_ok());
  ASSERT_TRUE(db.recover().is_ok());
  const RegistrySnapshot survivor =
      snapshot_registry(*reg, db, 31 * kSecond);

  db::Database db2;
  VniRegistry fresh(db2, small_cfg);
  seed_history(fresh);
  ASSERT_TRUE(fresh.acquire("job/b", 31 * kSecond).is_ok());
  EXPECT_EQ(snapshot_registry(fresh, db2, 31 * kSecond), survivor);
}

TEST_F(RegistryFixture, CrashNeverDoubleGrantsAcrossRecovery) {
  // The hazard the journal rules out: a crash between the alloc insert
  // and the audit insert must not let post-recovery acquires re-grant
  // the same VNI to a different owner.
  db::Database db;
  VniRegistry reg(db, small_cfg);
  db.crash_on_commit_after_ops(1);  // alloc row applied, audit row not
  EXPECT_FALSE(reg.acquire("job/b", 0).is_ok());
  ASSERT_TRUE(db.recover().is_ok());

  auto b = reg.find_by_owner("job/b");
  ASSERT_TRUE(b.is_ok());
  auto c = reg.acquire("job/c", 0);
  ASSERT_TRUE(c.is_ok());
  EXPECT_NE(b.value(), c.value());
  // Idempotent re-acquire by the interrupted owner returns its VNI.
  auto again = reg.acquire("job/b", 0);
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again.value(), b.value());
}

TEST_F(RegistryFixture, ExpiredQuarantineRowsAreGarbageCollected) {
  VniRegistryConfig one{.vni_min = 100, .vni_max = 101,
                        .quarantine = 30 * kSecond};
  VniRegistry reg(database, one);
  ASSERT_TRUE(reg.acquire("job/a", 0).is_ok());
  ASSERT_TRUE(reg.release("job/a", 0).is_ok());
  // After expiry, acquiring garbage-collects the quarantine row.
  ASSERT_TRUE(reg.acquire("job/b", 31 * kSecond).is_ok());
  EXPECT_EQ(reg.quarantined_count(31 * kSecond), 0u);
  EXPECT_EQ(reg.allocated_count(), 1u);
}

}  // namespace
}  // namespace shs::core
