// hsn_test.cpp — fabric model: switch VNI enforcement, NIC queues, RMA,
// and the timing model's bandwidth/latency behaviour.
#include <gtest/gtest.h>

#include <cstring>

#include "hsn/fabric.hpp"

namespace shs::hsn {
namespace {

/// Two-node fabric with both ports authorized for `vni`.
std::unique_ptr<Fabric> make_fabric(Vni vni = 100, std::size_t nodes = 2) {
  auto f = Fabric::create(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    const auto addr = static_cast<NicAddr>(i);
    EXPECT_TRUE(f->switch_for(addr)->authorize_vni(addr, vni).is_ok());
  }
  return f;
}

TEST(Switch, RoutesAuthorizedVni) {
  auto f = make_fabric();
  auto ep0 = f->nic(0).alloc_endpoint(100, TrafficClass::kBestEffort);
  auto ep1 = f->nic(1).alloc_endpoint(100, TrafficClass::kBestEffort);
  ASSERT_TRUE(ep0.is_ok());
  ASSERT_TRUE(ep1.is_ok());

  auto t = f->nic(0).post_send(ep0.value(), 1, ep1.value(), /*tag=*/7,
                               /*size=*/64, {}, /*vt=*/0);
  ASSERT_TRUE(t.is_ok());
  auto pkt = f->nic(1).wait_rx(ep1.value(), 1000);
  ASSERT_TRUE(pkt.is_ok());
  EXPECT_EQ(pkt.value().tag, 7u);
  EXPECT_EQ(pkt.value().size_bytes, 64u);
  EXPECT_GT(pkt.value().arrival_vt, 0);
  EXPECT_EQ(f->total_counters().delivered, 1u);
}

TEST(Switch, DropsWhenSrcUnauthorized) {
  auto f = Fabric::create(2);
  // Only the destination port is authorized.
  ASSERT_TRUE(f->switch_for(1)->authorize_vni(1, 100).is_ok());
  auto ep0 = f->nic(0).alloc_endpoint(100, TrafficClass::kBestEffort);
  auto ep1 = f->nic(1).alloc_endpoint(100, TrafficClass::kBestEffort);
  auto t = f->nic(0).post_send(ep0.value(), 1, ep1.value(), 1, 8, {}, 0);
  EXPECT_EQ(t.code(), Code::kPermissionDenied);
  EXPECT_EQ(f->total_counters().dropped_src_unauthorized, 1u);
  EXPECT_EQ(f->total_counters().delivered, 0u);
}

TEST(Switch, DropsWhenDstUnauthorized) {
  auto f = Fabric::create(2);
  ASSERT_TRUE(f->switch_for(0)->authorize_vni(0, 100).is_ok());
  auto ep0 = f->nic(0).alloc_endpoint(100, TrafficClass::kBestEffort);
  auto ep1 = f->nic(1).alloc_endpoint(100, TrafficClass::kBestEffort);
  auto t = f->nic(0).post_send(ep0.value(), 1, ep1.value(), 1, 8, {}, 0);
  EXPECT_EQ(t.code(), Code::kPermissionDenied);
  EXPECT_EQ(f->total_counters().dropped_dst_unauthorized, 1u);
}

TEST(Switch, EnforcementOffRoutesEverything) {
  auto f = Fabric::create(2);
  f->set_enforcement(false);
  auto ep0 = f->nic(0).alloc_endpoint(100, TrafficClass::kBestEffort);
  auto ep1 = f->nic(1).alloc_endpoint(100, TrafficClass::kBestEffort);
  auto t = f->nic(0).post_send(ep0.value(), 1, ep1.value(), 1, 8, {}, 0);
  EXPECT_TRUE(t.is_ok());
  EXPECT_TRUE(f->nic(1).wait_rx(ep1.value(), 1000).is_ok());
}

TEST(Switch, UnknownDestination) {
  auto f = make_fabric();
  auto ep0 = f->nic(0).alloc_endpoint(100, TrafficClass::kBestEffort);
  auto t = f->nic(0).post_send(ep0.value(), 55, 1, 1, 8, {}, 0);
  EXPECT_EQ(t.code(), Code::kNotFound);
  EXPECT_EQ(f->total_counters().dropped_unknown_dst, 1u);
}

TEST(Switch, PerVniCounters) {
  auto f = make_fabric(100);
  ASSERT_TRUE(f->switch_for(0)->authorize_vni(0, 200).is_ok());
  ASSERT_TRUE(f->switch_for(1)->authorize_vni(1, 200).is_ok());
  auto a0 = f->nic(0).alloc_endpoint(100, TrafficClass::kBestEffort);
  auto a1 = f->nic(1).alloc_endpoint(100, TrafficClass::kBestEffort);
  auto b0 = f->nic(0).alloc_endpoint(200, TrafficClass::kBestEffort);
  auto b1 = f->nic(1).alloc_endpoint(200, TrafficClass::kBestEffort);
  (void)f->nic(0).post_send(a0.value(), 1, a1.value(), 1, 8, {}, 0);
  (void)f->nic(0).post_send(b0.value(), 1, b1.value(), 1, 8, {}, 0);
  (void)f->nic(0).post_send(b0.value(), 1, b1.value(), 1, 8, {}, 0);
  EXPECT_EQ(f->total_counters_for_vni(100).delivered, 1u);
  EXPECT_EQ(f->total_counters_for_vni(200).delivered, 2u);
}

TEST(Switch, RevokeStopsTraffic) {
  auto f = make_fabric();
  auto ep0 = f->nic(0).alloc_endpoint(100, TrafficClass::kBestEffort);
  auto ep1 = f->nic(1).alloc_endpoint(100, TrafficClass::kBestEffort);
  ASSERT_TRUE(
      f->nic(0).post_send(ep0.value(), 1, ep1.value(), 1, 8, {}, 0).is_ok());
  ASSERT_TRUE(f->switch_for(1)->revoke_vni(1, 100).is_ok());
  EXPECT_EQ(f->nic(0).post_send(ep0.value(), 1, ep1.value(), 1, 8, {}, 0)
                .code(),
            Code::kPermissionDenied);
}

// -- NIC-level behaviour. ---------------------------------------------------

TEST(Nic, VniZeroIsReserved) {
  auto f = make_fabric();
  EXPECT_EQ(f->nic(0).alloc_endpoint(0, TrafficClass::kBestEffort).code(),
            Code::kInvalidArgument);
}

TEST(Nic, EndpointLimitEnforced) {
  auto timing = TimingConfig{};
  auto f = Fabric::create(1, timing);
  NicLimits limits;
  limits.max_endpoints = 4;
  // A standalone NIC wired straight to the switch (no Fabric::inject):
  // the unit-test form of the injection callback.
  CassiniNic nic(
      10,
      [sw = f->switch_ptr()](Packet&& p) { return sw->route(std::move(p)); },
      f->timing(), limits);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(nic.alloc_endpoint(1, TrafficClass::kBestEffort).is_ok());
  }
  EXPECT_EQ(nic.alloc_endpoint(1, TrafficClass::kBestEffort).code(),
            Code::kResourceExhausted);
}

TEST(Switch, CallbackDeliveryAndDisconnect) {
  // The generic DeliveryFn port path (custom rigs; Fabric-owned NICs
  // use the direct CassiniNic wiring instead) delivers and disconnects.
  auto f = Fabric::create(2);
  auto sw = f->switch_ptr();
  std::vector<Packet> got;
  ASSERT_TRUE(
      sw->connect(10, [&](Packet&& p) { got.push_back(std::move(p)); })
          .is_ok());
  ASSERT_TRUE(sw->authorize_vni(0, 300).is_ok());
  ASSERT_TRUE(sw->authorize_vni(10, 300).is_ok());
  Packet p;
  p.src = 0;
  p.dst = 10;
  p.vni = 300;
  p.size_bytes = 8;
  EXPECT_TRUE(sw->route(std::move(p)).delivered);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].dst, 10u);

  ASSERT_TRUE(sw->disconnect(10).is_ok());
  Packet q;
  q.src = 0;
  q.dst = 10;
  q.vni = 300;
  q.size_bytes = 8;
  const RouteResult rr = sw->route(std::move(q));
  EXPECT_FALSE(rr.delivered);
  EXPECT_EQ(rr.reason, DropReason::kUnknownDestination);

  // Absurd addresses are rejected instead of materializing port slots.
  EXPECT_EQ(sw->connect(0xfffffff0u, [](Packet&&) {}).code(),
            Code::kInvalidArgument);
}

TEST(Nic, FreedEndpointStopsReceiving) {
  auto f = make_fabric();
  auto ep0 = f->nic(0).alloc_endpoint(100, TrafficClass::kBestEffort);
  auto ep1 = f->nic(1).alloc_endpoint(100, TrafficClass::kBestEffort);
  ASSERT_TRUE(f->nic(1).free_endpoint(ep1.value()).is_ok());
  // The switch still routes (port authorized), but the NIC drops.
  ASSERT_TRUE(
      f->nic(0).post_send(ep0.value(), 1, ep1.value(), 1, 8, {}, 0).is_ok());
  EXPECT_EQ(f->nic(1).counters().rx_unknown_ep, 1u);
}

TEST(Nic, VniMismatchDroppedAtNic) {
  // Both ports authorized for both VNIs; the receiving *endpoint* is
  // bound to a different VNI -> the NIC itself refuses the packet.
  auto f = make_fabric(100);
  ASSERT_TRUE(f->switch_for(0)->authorize_vni(0, 200).is_ok());
  ASSERT_TRUE(f->switch_for(1)->authorize_vni(1, 200).is_ok());
  auto attacker = f->nic(0).alloc_endpoint(200, TrafficClass::kBestEffort);
  auto victim = f->nic(1).alloc_endpoint(100, TrafficClass::kBestEffort);
  ASSERT_TRUE(f->nic(0)
                  .post_send(attacker.value(), 1, victim.value(), 1, 8, {}, 0)
                  .is_ok());
  EXPECT_EQ(f->nic(1).counters().rx_vni_mismatch, 1u);
  EXPECT_EQ(f->nic(1).poll_rx(victim.value()).code(), Code::kUnavailable);
}

TEST(Nic, PayloadTravels) {
  auto f = make_fabric();
  auto ep0 = f->nic(0).alloc_endpoint(100, TrafficClass::kBestEffort);
  auto ep1 = f->nic(1).alloc_endpoint(100, TrafficClass::kBestEffort);
  const char msg[] = "slingshot";
  auto bytes = std::as_bytes(std::span(msg));
  ASSERT_TRUE(f->nic(0)
                  .post_send(ep0.value(), 1, ep1.value(), 1, sizeof(msg),
                             bytes, 0)
                  .is_ok());
  auto pkt = f->nic(1).wait_rx(ep1.value(), 1000);
  ASSERT_TRUE(pkt.is_ok());
  ASSERT_EQ(pkt.value().payload.size(), sizeof(msg));
  EXPECT_EQ(std::memcmp(pkt.value().payload.data(), msg, sizeof(msg)), 0);
}

TEST(Nic, WaitRxTimesOut) {
  auto f = make_fabric();
  auto ep = f->nic(0).alloc_endpoint(100, TrafficClass::kBestEffort);
  EXPECT_EQ(f->nic(0).wait_rx(ep.value(), 50).code(), Code::kTimeout);
}

// -- RMA. --------------------------------------------------------------------

TEST(Rma, WriteReachesRegisteredMemory) {
  auto f = make_fabric();
  auto ep0 = f->nic(0).alloc_endpoint(100, TrafficClass::kBestEffort);
  auto ep1 = f->nic(1).alloc_endpoint(100, TrafficClass::kBestEffort);
  std::vector<std::byte> target(64, std::byte{0});
  auto mr = f->nic(1).register_mr(ep1.value(), target);
  ASSERT_TRUE(mr.is_ok());

  const char data[] = "rdma-write";
  ASSERT_TRUE(f->nic(0)
                  .rdma_write(ep0.value(), 1, mr.value(), /*offset=*/8,
                              sizeof(data), std::as_bytes(std::span(data)),
                              0, /*op_id=*/42)
                  .is_ok());
  auto ev = f->nic(0).wait_event(ep0.value(), 1000);
  ASSERT_TRUE(ev.is_ok());
  EXPECT_EQ(ev.value().type, Event::Type::kRdmaWriteComplete);
  EXPECT_EQ(ev.value().op_id, 42u);
  EXPECT_EQ(std::memcmp(target.data() + 8, data, sizeof(data)), 0);
}

TEST(Rma, ReadReturnsData) {
  auto f = make_fabric();
  auto ep0 = f->nic(0).alloc_endpoint(100, TrafficClass::kBestEffort);
  auto ep1 = f->nic(1).alloc_endpoint(100, TrafficClass::kBestEffort);
  std::vector<std::byte> source(32);
  for (std::size_t i = 0; i < source.size(); ++i) {
    source[i] = static_cast<std::byte>(i);
  }
  auto mr = f->nic(1).register_mr(ep1.value(), source);
  ASSERT_TRUE(f->nic(0)
                  .rdma_read(ep0.value(), 1, mr.value(), 4, 8, 0, 7)
                  .is_ok());
  auto ev = f->nic(0).wait_event(ep0.value(), 1000);
  ASSERT_TRUE(ev.is_ok());
  EXPECT_EQ(ev.value().type, Event::Type::kRdmaReadComplete);
  ASSERT_EQ(ev.value().data.size(), 8u);
  EXPECT_EQ(ev.value().data[0], std::byte{4});
  EXPECT_EQ(ev.value().data[7], std::byte{11});
}

TEST(Rma, WrongVniMrIsDenied) {
  auto f = make_fabric(100);
  ASSERT_TRUE(f->switch_for(0)->authorize_vni(0, 200).is_ok());
  ASSERT_TRUE(f->switch_for(1)->authorize_vni(1, 200).is_ok());
  auto attacker = f->nic(0).alloc_endpoint(200, TrafficClass::kBestEffort);
  auto victim = f->nic(1).alloc_endpoint(100, TrafficClass::kBestEffort);
  std::vector<std::byte> target(64);
  auto mr = f->nic(1).register_mr(victim.value(), target);
  // The write rides VNI 200 but the MR belongs to VNI 100: denied, and
  // the target's NACK surfaces a terminal permission error — never an
  // ACK, never silence.
  ASSERT_TRUE(f->nic(0)
                  .rdma_write(attacker.value(), 1, mr.value(), 0, 8, {}, 0, 9)
                  .is_ok());
  EXPECT_EQ(f->nic(1).counters().rma_denied, 1u);
  auto ev = f->nic(0).wait_event(attacker.value(), 1000);
  ASSERT_TRUE(ev.is_ok());
  EXPECT_EQ(ev.value().type, Event::Type::kError);
  EXPECT_EQ(ev.value().status.code(), Code::kPermissionDenied);
  EXPECT_EQ(ev.value().op_id, 9u);
}

TEST(Rma, OutOfBoundsDenied) {
  auto f = make_fabric();
  auto ep0 = f->nic(0).alloc_endpoint(100, TrafficClass::kBestEffort);
  auto ep1 = f->nic(1).alloc_endpoint(100, TrafficClass::kBestEffort);
  std::vector<std::byte> target(16);
  auto mr = f->nic(1).register_mr(ep1.value(), target);
  ASSERT_TRUE(f->nic(0)
                  .rdma_write(ep0.value(), 1, mr.value(), 12, 8, {}, 0, 1)
                  .is_ok());
  EXPECT_EQ(f->nic(1).counters().rma_denied, 1u);
}

TEST(Rma, MrDiesWithEndpoint) {
  auto f = make_fabric();
  auto ep1 = f->nic(1).alloc_endpoint(100, TrafficClass::kBestEffort);
  std::vector<std::byte> target(16);
  ASSERT_TRUE(f->nic(1).register_mr(ep1.value(), target).is_ok());
  EXPECT_EQ(f->nic(1).mr_count(), 1u);
  ASSERT_TRUE(f->nic(1).free_endpoint(ep1.value()).is_ok());
  EXPECT_EQ(f->nic(1).mr_count(), 0u);
}

// -- Timing model. -----------------------------------------------------------

TEST(Timing, SerializeTimeScalesWithSize) {
  TimingModel tm({});
  EXPECT_LT(tm.serialize_time(64), tm.serialize_time(4096));
  EXPECT_LT(tm.serialize_time(4096), tm.serialize_time(1 << 20));
  // 1 MiB at 200 Gbps ~= 42 us (plus per-frame headers).
  EXPECT_NEAR(to_micros(tm.serialize_time(1 << 20)), 42.3, 1.0);
}

TEST(Timing, LargeTransfersApproachLineRate) {
  // Send a window of 1 MiB messages back-to-back; arrival spacing must
  // approach the serialization time (i.e. ~line rate), not the tx
  // overhead.
  auto f = make_fabric();
  auto ep0 = f->nic(0).alloc_endpoint(100, TrafficClass::kBestEffort);
  auto ep1 = f->nic(1).alloc_endpoint(100, TrafficClass::kBestEffort);
  SimTime vt = 0;
  for (int i = 0; i < 8; ++i) {
    auto r = f->nic(0).post_send(ep0.value(), 1, ep1.value(), 1, 1 << 20, {},
                                 vt);
    ASSERT_TRUE(r.is_ok());
    vt = r.value();
  }
  std::vector<SimTime> arrivals;
  for (int i = 0; i < 8; ++i) {
    auto p = f->nic(1).wait_rx(ep1.value(), 1000);
    ASSERT_TRUE(p.is_ok());
    arrivals.push_back(p.value().arrival_vt);
  }
  const double spacing_us =
      to_micros(arrivals.back() - arrivals.front()) / 7.0;
  EXPECT_NEAR(spacing_us, 42.3, 3.0);  // line-rate bound
}

TEST(Timing, TrafficClassPenaltyOrdering) {
  TimingModel tm(TimingConfig{.jitter_amplitude = 0.0});
  EXPECT_LT(tm.tc_penalty(TrafficClass::kDedicatedAccess),
            tm.tc_penalty(TrafficClass::kBestEffort));
  EXPECT_LT(tm.tc_penalty(TrafficClass::kLowLatency),
            tm.tc_penalty(TrafficClass::kBulkData));
}

// -- RX-ring backpressure. --------------------------------------------------

TEST(Nic, RxOverflowIsCountedTailDrop) {
  auto f = Fabric::create(1);
  NicLimits limits;
  limits.max_rx_queue_packets = 4;
  CassiniNic rx_nic(
      10,
      [sw = f->switch_ptr()](Packet&& p) { return sw->route(std::move(p)); },
      f->timing(), limits);
  ASSERT_TRUE(f->switch_ptr()->connect(10, rx_nic).is_ok());
  ASSERT_TRUE(f->switch_ptr()->authorize_vni(0, 100).is_ok());
  ASSERT_TRUE(f->switch_ptr()->authorize_vni(10, 100).is_ok());
  auto ep0 = f->nic(0).alloc_endpoint(100, TrafficClass::kBestEffort);
  auto ep1 = rx_nic.alloc_endpoint(100, TrafficClass::kBestEffort);

  // The undrained receiver fills at 4; the overflow packets are
  // tail-dropped and *counted* — never a silent loss, and never a
  // destroyed packet the receiver had already accepted.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        f->nic(0).post_send(ep0.value(), 10, ep1.value(), i, 8, {}, 0)
            .is_ok());
  }
  EXPECT_EQ(rx_nic.counters().rx_overflow, 2u);
  EXPECT_EQ(rx_nic.counters().rx_packets, 4u);
  // The oldest data survived (tail drop, not head drop).
  auto first = rx_nic.poll_rx(ep1.value());
  ASSERT_TRUE(first.is_ok());
  EXPECT_EQ(first.value().tag, 0u);
  // Draining restores acceptance.
  (void)rx_nic.drain_rx(ep1.value());
  ASSERT_TRUE(
      f->nic(0).post_send(ep0.value(), 10, ep1.value(), 9, 8, {}, 0)
          .is_ok());
  EXPECT_EQ(rx_nic.counters().rx_overflow, 2u);
}

// -- NIC-level reliable delivery. -------------------------------------------

TEST(Nic, ReliabilityRetransmitsThroughLoss) {
  auto f = make_fabric();
  FaultProfile lossy;
  lossy.drop_rate = 0.3;
  f->set_fault_profile(lossy);
  ReliabilityConfig rel;
  rel.enabled = true;
  f->set_reliability(rel);

  auto ep0 = f->nic(0).alloc_endpoint(100, TrafficClass::kBestEffort);
  auto ep1 = f->nic(1).alloc_endpoint(100, TrafficClass::kBestEffort);
  SimTime vt = 0;
  const int kSends = 200;
  for (int i = 0; i < kSends; ++i) {
    auto r = f->nic(0).post_send(ep0.value(), 1, ep1.value(), i, 64, {}, vt);
    ASSERT_TRUE(r.is_ok()) << r.status().message();
    vt = r.value();
  }
  // Every send completed despite 30% per-delivery loss; the receiver
  // holds exactly one copy of each.
  EXPECT_EQ(f->nic(1).counters().rx_packets, unsigned(kSends));
  const ReliabilityCounters rc = f->reliability_totals();
  EXPECT_GT(rc.retransmits, 0u);
  EXPECT_GT(rc.recovered, 0u);
  EXPECT_EQ(rc.budget_exhausted, 0u);
  EXPECT_GT(f->total_counters().dropped_loss, 0u);
}

TEST(Nic, ReliabilityAckLossYieldsSuppressedDuplicates) {
  auto f = make_fabric();
  FaultProfile p;
  p.ack_loss_rate = 0.5;
  f->set_fault_profile(p);
  ReliabilityConfig rel;
  rel.enabled = true;
  f->set_reliability(rel);

  auto ep0 = f->nic(0).alloc_endpoint(100, TrafficClass::kBestEffort);
  auto ep1 = f->nic(1).alloc_endpoint(100, TrafficClass::kBestEffort);
  SimTime vt = 0;
  const int kSends = 100;
  for (int i = 0; i < kSends; ++i) {
    auto r = f->nic(0).post_send(ep0.value(), 1, ep1.value(), i, 64, {}, vt);
    ASSERT_TRUE(r.is_ok());
    vt = r.value();
  }
  // ACK loss means the data arrived but the sender retransmitted — the
  // receiver must see each packet exactly once.
  EXPECT_EQ(f->nic(1).counters().rx_packets, unsigned(kSends));
  const ReliabilityCounters rc = f->reliability_totals();
  EXPECT_GT(rc.duplicates, 0u);
  EXPECT_GT(f->total_counters().ack_lost, 0u);
  // ack_lost is not a drop: the fabric delivered every wire copy it
  // admitted.
  EXPECT_EQ(f->total_counters().dropped_total(), 0u);
}

TEST(Nic, ReliabilityBudgetExhaustsIntoStatusNotHang) {
  auto f = make_fabric();
  FaultProfile dead;
  dead.drop_rate = 1.0;
  f->set_fault_profile(dead);
  ReliabilityConfig rel;
  rel.enabled = true;
  rel.max_retries = 3;
  f->set_reliability(rel);

  auto ep0 = f->nic(0).alloc_endpoint(100, TrafficClass::kBestEffort);
  auto ep1 = f->nic(1).alloc_endpoint(100, TrafficClass::kBestEffort);
  auto r = f->nic(0).post_send(ep0.value(), 1, ep1.value(), 1, 64, {}, 0,
                               /*op_id=*/77);
  EXPECT_EQ(r.code(), Code::kUnavailable);
  const ReliabilityCounters rc = f->reliability_totals();
  EXPECT_EQ(rc.retransmits, 3u);  // the configured budget, no more
  EXPECT_EQ(rc.budget_exhausted, 1u);
  // Graceful degradation: a kError completion carries the same status.
  auto e = f->nic(0).poll_event(ep0.value());
  ASSERT_TRUE(e.is_ok());
  EXPECT_EQ(e.value().type, Event::Type::kError);
  EXPECT_EQ(e.value().status.code(), Code::kUnavailable);
  EXPECT_EQ(e.value().op_id, 77u);
}

TEST(Nic, ReliabilityFailsFastOnNonTransientReasons) {
  auto f = Fabric::create(2);
  ASSERT_TRUE(f->switch_for(0)->authorize_vni(0, 100).is_ok());
  // Destination port never authorized: a retransmit cannot cure an
  // isolation violation, so no budget may be spent on it.
  ReliabilityConfig rel;
  rel.enabled = true;
  f->set_reliability(rel);
  auto ep0 = f->nic(0).alloc_endpoint(100, TrafficClass::kBestEffort);
  auto ep1 = f->nic(1).alloc_endpoint(100, TrafficClass::kBestEffort);
  auto r = f->nic(0).post_send(ep0.value(), 1, ep1.value(), 1, 8, {}, 0);
  EXPECT_EQ(r.code(), Code::kPermissionDenied);
  EXPECT_EQ(f->reliability_totals().retransmits, 0u);
}

TEST(Nic, ReliableRdmaWriteCompletesUnderAckLoss) {
  auto f = make_fabric();
  FaultProfile p;
  p.ack_loss_rate = 0.4;
  f->set_fault_profile(p);
  ReliabilityConfig rel;
  rel.enabled = true;
  f->set_reliability(rel);

  auto ep0 = f->nic(0).alloc_endpoint(100, TrafficClass::kBestEffort);
  auto ep1 = f->nic(1).alloc_endpoint(100, TrafficClass::kBestEffort);
  std::vector<std::byte> target(256);
  auto mr = f->nic(1).register_mr(ep1.value(), target);
  ASSERT_TRUE(mr.is_ok());
  std::vector<std::byte> data(256, std::byte{0xAB});

  for (int i = 0; i < 50; ++i) {
    auto r = f->nic(0).rdma_write(ep0.value(), 1, mr.value(), 0, 256, data,
                                  0, /*op_id=*/100 + i);
    ASSERT_TRUE(r.is_ok());
    auto e = f->nic(0).wait_event(ep0.value(), 1000);
    ASSERT_TRUE(e.is_ok());
    EXPECT_EQ(e.value().type, Event::Type::kRdmaWriteComplete);
    EXPECT_EQ(e.value().op_id, unsigned(100 + i));
  }
  EXPECT_EQ(std::memcmp(target.data(), data.data(), 256), 0);
}

TEST(Nic, DeniedRmaFailsFastEvenWithReliabilityOn) {
  // A denied one-sided op must surface a *terminal* completion with a
  // permanent status — the NACK is not a transient fault, so the
  // retransmit protocol must not burn budget retrying it, and the
  // initiator must never be left waiting in silence.
  auto f = make_fabric(100);
  ReliabilityConfig rel;
  rel.enabled = true;
  f->set_reliability(rel);
  auto ep0 = f->nic(0).alloc_endpoint(100, TrafficClass::kBestEffort);
  auto ep1 = f->nic(1).alloc_endpoint(100, TrafficClass::kBestEffort);
  std::vector<std::byte> target(16);
  auto mr = f->nic(1).register_mr(ep1.value(), target);
  ASSERT_TRUE(mr.is_ok());

  // Write past the end of the MR: denied at the target.
  ASSERT_TRUE(f->nic(0)
                  .rdma_write(ep0.value(), 1, mr.value(), 12, 8, {}, 0,
                              /*op_id=*/31)
                  .is_ok());
  auto e = f->nic(0).wait_event(ep0.value(), 1000);
  ASSERT_TRUE(e.is_ok());
  EXPECT_EQ(e.value().type, Event::Type::kError);
  EXPECT_EQ(e.value().status.code(), Code::kInvalidArgument);
  EXPECT_EQ(e.value().op_id, 31u);

  // Read against an rkey that was never registered: same contract.
  ASSERT_TRUE(f->nic(0)
                  .rdma_read(ep0.value(), 1, mr.value() + 999, 0, 8, 0,
                             /*op_id=*/32)
                  .is_ok());
  e = f->nic(0).wait_event(ep0.value(), 1000);
  ASSERT_TRUE(e.is_ok());
  EXPECT_EQ(e.value().type, Event::Type::kError);
  EXPECT_EQ(e.value().status.code(), Code::kNotFound);
  EXPECT_EQ(e.value().op_id, 32u);

  EXPECT_EQ(f->nic(1).counters().rma_denied, 2u);
  // Fail-fast: neither the denied requests nor their NACKs spent any
  // retransmit budget on a healthy fabric.
  EXPECT_EQ(f->reliability_totals().retransmits, 0u);
}

}  // namespace
}  // namespace shs::hsn
